// Fairness report: quantify the efficiency-fairness trade-off (§6.3) on a workload of your
// chosen size. For each policy, prints total grants, the fair-share composition of the
// grants, and how many fair-share tasks were left stranded — the quantities behind the
// paper's "DPF allocates 90% fair-share tasks, DPack 60%, but DPack allocates 45% more".
//
// Build & run:  ./build/examples/fairness_report [num_tasks]

#include <cstdio>
#include <cstdlib>

#include "src/common/cli.h"
#include "src/dpack/dpack.h"

using namespace dpack;  // Example code; the library itself never does this.

int main(int argc, char** argv) {
  size_t num_tasks =
      argc > 1 ? ParseSizeArg(argv[0], argv[1], "num_tasks", "fairness_report [num_tasks]")
               : 8000;
  const size_t num_blocks = 60;
  const int64_t fair_share_n = 50;

  AlphaGridPtr grid = AlphaGrid::Default();
  CurvePool pool(grid, BlockCapacityCurve(grid, 10.0, 1e-7));
  AlibabaConfig config;
  config.num_tasks = num_tasks;
  config.arrival_span = static_cast<double>(num_blocks);
  config.seed = 5;
  std::vector<Task> tasks = GenerateAlibabaDp(pool, config);

  std::printf("Fairness report: %zu tasks, %zu blocks, fair share = 1/%lld of block budget.\n\n",
              num_tasks, num_blocks, static_cast<long long>(fair_share_n));
  std::printf("%-8s %10s %18s %22s\n", "policy", "allocated", "fair-share grants",
              "stranded fair-share");
  size_t submitted_fair = 0;
  for (SchedulerKind kind : {SchedulerKind::kDpack, SchedulerKind::kDpf,
                             SchedulerKind::kFcfs}) {
    SimConfig sim;
    sim.num_blocks = num_blocks;
    sim.unlock_steps = 50;
    sim.fair_share_n = fair_share_n;
    SimResult result = RunOnlineSimulation(CreateScheduler(kind), tasks, sim);
    const AllocationMetrics& m = result.metrics;
    submitted_fair = m.submitted_fair_share();
    std::printf("%-8s %10zu %13zu (%2.0f%%) %22zu\n", SchedulerKindName(kind).c_str(),
                m.allocated(), m.allocated_fair_share(),
                100.0 * m.AllocatedFairShareFraction(),
                m.submitted_fair_share() - m.allocated_fair_share());
  }
  std::printf("\n(%zu of %zu submitted tasks qualify as fair-share.)\n", submitted_fair,
              num_tasks);
  std::printf("Efficiency costs fairness: DPack grants more tasks overall but a smaller share\n"
              "of them are the small 'fair share' tasks DPF is designed to protect.\n");
  return 0;
}
