// Online stream: the §3.4 operational model on a small synthetic stream.
//
// A new data block arrives every virtual day; a mixed workload of statistics and trainings
// arrives over time requesting the most recent blocks; budget unlocks in 1/N steps; a batch
// scheduler runs every T. Compares DPack, DPF, and FCFS end to end and prints the metrics a
// cluster operator would watch.
//
// Build & run:  ./build/examples/online_stream

#include <cstdio>

#include "src/dpack/dpack.h"

using namespace dpack;  // Example code; the library itself never does this.

namespace {

std::vector<Task> MakeStreamWorkload() {
  AlphaGridPtr grid = AlphaGrid::Default();
  Rng rng(2024);
  std::vector<Task> tasks;
  TaskId next_id = 0;
  // 15 virtual days; ~30 tasks arrive per day.
  for (int day = 0; day < 15; ++day) {
    for (int k = 0; k < 30; ++k) {
      bool training = rng.Bernoulli(0.3);
      RdpCurve demand =
          training
              ? SubsampledGaussianCurve(grid, rng.Uniform(1.0, 2.0), 0.01).Repeat(800)
              : LaplaceCurve(grid, rng.Uniform(6.0, 30.0));
      // Scale demand to a normalized size: trainings are big (5-20% of a block), statistics
      // small (0.5-3%).
      RdpCurve capacity = BlockCapacityCurve(grid, 10.0, 1e-7);
      double min_share = 1e300;
      for (size_t a = 0; a < grid->size(); ++a) {
        if (capacity.epsilon(a) > 0.0) {
          min_share = std::min(min_share, demand.epsilon(a) / capacity.epsilon(a));
        }
      }
      double target = training ? rng.Uniform(0.10, 0.35) : rng.Uniform(0.01, 0.08);
      Task task(next_id++, /*weight=*/1.0, demand.Scaled(target / min_share));
      task.arrival_time = day + rng.Uniform(0.0, 1.0);
      task.num_recent_blocks = training ? static_cast<size_t>(rng.UniformInt(3, 8)) : 1;
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

}  // namespace

int main() {
  std::vector<Task> tasks = MakeStreamWorkload();
  std::printf("Online stream: 15 daily blocks at (eps=10, delta=1e-7), %zu tasks, T=1, N=10.\n\n",
              tasks.size());
  std::printf("%-8s %10s %10s %12s %14s\n", "policy", "allocated", "pending", "median_delay",
              "runtime_ms");
  for (SchedulerKind kind : {SchedulerKind::kDpack, SchedulerKind::kDpf,
                             SchedulerKind::kFcfs}) {
    SimConfig config;
    config.num_blocks = 15;
    config.unlock_steps = 10;
    config.period = 1.0;
    SimResult result = RunOnlineSimulation(CreateScheduler(kind), tasks, config);
    const AllocationMetrics& m = result.metrics;
    std::printf("%-8s %10zu %10zu %12.2f %14.3f\n", SchedulerKindName(kind).c_str(),
                m.allocated(), result.pending_at_end,
                m.delays().count() > 0 ? m.delays().median() : 0.0,
                1000.0 * m.total_runtime_seconds());
  }
  std::printf(
      "\nOn a small, mildly heterogeneous stream the policies end up close (the Fig. 7(a)\n"
      "regime); the gaps open with workload heterogeneity and scale — see alibaba_sim and\n"
      "the bench/ harnesses. Delays differ: prioritizing schedulers grant cheap tasks at\n"
      "their first eligible cycle instead of queue position.\n");
  return 0;
}
