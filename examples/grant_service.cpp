// Grant service CLI: run a registered scenario through the multi-process service fleet
// (orchestrator daemon + crash-isolated scheduler workers), optionally SIGKILL a worker
// mid-run, and prove the grant trace byte-identical to the in-process engine.
//
//   example_grant_service list
//   example_grant_service <scenario> [--seed N] [--metric dpack|dpf|area|fcfs]
//                         [--workers N] [--shards N]
//                         [--kill-round R] [--kill-worker W]
//                         [--recovery reassign|respawn] [--differential]
//
// This is the binary the CI `service` job drives: it launches the daemon + N workers,
// injects the kill, and with --differential exits nonzero unless the (possibly recovered)
// service run granted the exact same task ids in the exact same order as an uninterrupted
// single-process run. The fleet demo at startup prints the worker pids so the job log shows
// the real processes that were spawned (and, with a kill, which one died).

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/common/cli.h"
#include "src/dpack/dpack.h"

namespace {

using namespace dpack;  // Example code; the library itself never does this.

constexpr char kUsage[] =
    "example_grant_service <scenario> [--seed N] [--metric dpack|dpf|area|fcfs]\n"
    "                      [--workers N] [--shards N] [--kill-round R] [--kill-worker W]\n"
    "                      [--recovery reassign|respawn] [--differential]";

int ListScenarios() {
  std::printf("registered scenarios (see src/README.md for the stress-axis catalogue):\n");
  for (const std::string& name : ScenarioRegistryNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

GreedyMetric ParseMetric(const std::string& value) {
  if (value == "dpack") return GreedyMetric::kDpack;
  if (value == "dpf") return GreedyMetric::kDpf;
  if (value == "area") return GreedyMetric::kArea;
  if (value == "fcfs") return GreedyMetric::kFcfs;
  std::fprintf(stderr, "unknown metric '%s' (want dpack|dpf|area|fcfs)\n", value.c_str());
  std::exit(2);
}

void PrintCounters(const ServiceCounters& c) {
  std::printf(
      "  counters: messages %llu sent / %llu received, bytes %llu / %llu, ring stalls %llu\n"
      "            score rounds %llu, recoveries %llu, respawns %llu, state replays %llu,\n"
      "            admission rejects %llu\n",
      static_cast<unsigned long long>(c.messages_sent),
      static_cast<unsigned long long>(c.messages_received),
      static_cast<unsigned long long>(c.bytes_sent),
      static_cast<unsigned long long>(c.bytes_received),
      static_cast<unsigned long long>(c.ring_stalls),
      static_cast<unsigned long long>(c.score_rounds),
      static_cast<unsigned long long>(c.recoveries),
      static_cast<unsigned long long>(c.respawns),
      static_cast<unsigned long long>(c.state_replays),
      static_cast<unsigned long long>(c.admission_rejects));
}

// Spins a tiny GrantService fleet just to show the daemon/worker process structure in the
// log: the real scenario run below builds an identical fleet inside the sim driver.
void FleetDemo(GreedyMetric metric, const ServiceConfig& service_config) {
  BlockManager blocks(AlphaGrid::Default(), /*eps_g=*/10.0, /*delta_g=*/1e-7);
  for (int b = 0; b < 4; ++b) blocks.AddBlock(/*arrival_time=*/0.0, /*unlocked=*/true);
  GrantServiceConfig config;
  config.service = service_config;
  config.service.kill_at_round = 0;  // The demo never injects the kill.
  GrantService service(metric, &blocks, config);
  RdpCurve capacity = BlockCapacityCurve(AlphaGrid::Default(), 10.0, 1e-7);
  for (int i = 0; i < 3; ++i) {
    Task task(i, /*weight=*/1.0, capacity.Scaled(0.2));
    task.blocks = {0, 1};
    task.arrival_time = 0.0;
    service.Submit(std::move(task));
  }
  size_t granted = service.RunCycle(/*now=*/0.0);
  ServiceTransport& transport = service.scheduler().transport();
  std::printf("fleet: daemon pid %lld, %zu workers\n",
              static_cast<long long>(getpid()), transport.num_workers());
  for (size_t w = 0; w < transport.num_workers(); ++w) {
    std::printf("  worker %zu: pid %lld %s\n", w, static_cast<long long>(transport.pid(w)),
                transport.alive(w) ? "alive" : "dead");
  }
  std::printf("  demo cycle granted %zu/3 probe tasks\n", granted);
}

// Returns the 0-based cycle index of the first divergence, or -1 when identical.
long long CompareTraces(const std::vector<std::vector<TaskId>>& service_trace,
                        const std::vector<std::vector<TaskId>>& reference_trace) {
  size_t cycles = std::max(service_trace.size(), reference_trace.size());
  for (size_t c = 0; c < cycles; ++c) {
    if (c >= service_trace.size() || c >= reference_trace.size() ||
        service_trace[c] != reference_trace[c]) {
      return static_cast<long long>(c);
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "list" || std::string(argv[1]) == "--help") {
    return ListScenarios();
  }
  std::string name = argv[1];
  uint64_t seed = 1;
  GreedyMetric metric = GreedyMetric::kDpack;
  ServiceConfig service_config;
  service_config.num_workers = 4;
  bool differential = false;
  uint64_t kill_round = 0;
  size_t kill_worker = 0;
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--differential") {
      differential = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag '%s' requires a value\n", flag.c_str());
      return 2;
    }
    std::string value = argv[++i];
    if (flag == "--seed") {
      seed = ParseUint64Arg(argv[0], value, "--seed", kUsage);
    } else if (flag == "--metric") {
      metric = ParseMetric(value);
    } else if (flag == "--workers") {
      service_config.num_workers = ParseSizeArg(argv[0], value, "--workers", kUsage);
    } else if (flag == "--shards") {
      service_config.num_shards = ParseSizeArg(argv[0], value, "--shards", kUsage);
    } else if (flag == "--kill-round") {
      kill_round = ParseUint64Arg(argv[0], value, "--kill-round", kUsage);
    } else if (flag == "--kill-worker") {
      kill_worker = ParseSizeArg(argv[0], value, "--kill-worker", kUsage);
    } else if (flag == "--recovery") {
      if (value == "reassign") {
        service_config.recovery = ServiceRecovery::kReassign;
      } else if (value == "respawn") {
        service_config.recovery = ServiceRecovery::kRespawn;
      } else {
        std::fprintf(stderr, "unknown recovery '%s' (want reassign|respawn)\n", value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return 2;
    }
  }
  service_config.kill_at_round = kill_round;
  service_config.kill_worker = kill_worker;
  if (kill_round > 0 && kill_worker >= service_config.num_workers) {
    std::fprintf(stderr, "--kill-worker %zu out of range for %zu workers\n", kill_worker,
                 service_config.num_workers);
    return 2;
  }

  AlphaGridPtr grid = AlphaGrid::Default();
  CurvePool pool(grid, BlockCapacityCurve(grid, 10.0, 1e-7));
  ScenarioWorkload workload = GenerateScenario(pool, ScenarioByName(name, seed));
  workload.sim.record_grant_trace = true;

  std::printf("scenario %s seed %llu: %zu tasks, %zu blocks, metric %s\n", name.c_str(),
              static_cast<unsigned long long>(seed), workload.tasks.size(),
              workload.sim.block_arrival_times.size(),
              metric == GreedyMetric::kDpack  ? "dpack"
              : metric == GreedyMetric::kDpf  ? "dpf"
              : metric == GreedyMetric::kArea ? "area"
                                              : "fcfs");
  FleetDemo(metric, service_config);

  if (kill_round > 0) {
    std::printf("kill plan: SIGKILL worker %zu at score round %llu (recovery=%s)\n",
                kill_worker, static_cast<unsigned long long>(kill_round),
                service_config.recovery == ServiceRecovery::kRespawn ? "respawn" : "reassign");
  }
  ServiceSimResult service_result =
      RunServiceSimulation(metric, workload.tasks, workload.sim, service_config);
  std::printf("service run: %zu cycles, %llu granted, pending %zu\n",
              service_result.sim.cycles_run,
              static_cast<unsigned long long>(service_result.sim.metrics.allocated()),
              service_result.sim.pending_at_end);
  PrintCounters(service_result.counters);
  if (kill_round > 0 && service_result.counters.recoveries == 0) {
    std::fprintf(stderr, "FAIL: kill was requested but no recovery was recorded\n");
    return 1;
  }

  if (!differential) return 0;

  GreedySchedulerOptions options;
  options.incremental = true;
  auto reference = std::make_unique<GreedyScheduler>(metric, options);
  SimResult reference_result =
      RunOnlineSimulation(std::move(reference), workload.tasks, workload.sim);
  long long diverged =
      CompareTraces(service_result.sim.grant_trace, reference_result.grant_trace);
  if (diverged >= 0) {
    std::fprintf(stderr,
                 "FAIL: grant trace diverged from the in-process engine at cycle %lld "
                 "(service %zu cycles, reference %zu cycles)\n",
                 diverged, service_result.sim.grant_trace.size(),
                 reference_result.grant_trace.size());
    return 1;
  }
  if (service_result.sim.metrics.allocated() != reference_result.metrics.allocated()) {
    std::fprintf(stderr, "FAIL: allocated %llu vs reference %llu\n",
                 static_cast<unsigned long long>(service_result.sim.metrics.allocated()),
                 static_cast<unsigned long long>(reference_result.metrics.allocated()));
    return 1;
  }
  std::printf("OK: grant trace byte-identical to the in-process engine (%zu cycles)\n",
              reference_result.grant_trace.size());
  return 0;
}
