// Grant service CLI: run a registered scenario through the multi-process service fleet
// (orchestrator daemon + crash-isolated scheduler workers), optionally SIGKILL a worker
// mid-run, and prove the grant trace byte-identical to the in-process engine.
//
//   example_grant_service list
//   example_grant_service <scenario> [--seed N] [--metric dpack|dpf|area|fcfs]
//                         [--workers N] [--shards N]
//                         [--kill-round R] [--kill-worker W]
//                         [--recovery reassign|respawn] [--differential]
//
// Remote client edge (src/service/net_transport.h): the same scenario driven over a
// checksummed socket instead of in-process calls, for the CI remote-client kill leg.
//
//   example_grant_service <scenario> --listen unix:/path|tcp:PORT
//                         [--serve-idle-budget N] [fleet flags as above]
//   example_grant_service <scenario> --connect unix:/path|tcp:PORT
//                         [--differential] [--shutdown]
//   example_grant_service <scenario> --kill-client unix:/path|tcp:PORT
//
// --listen serves the scenario's block-arrival schedule as a socket daemon until a client
// sends Shutdown (exit 0) or the idle budget expires (exit 1). --connect replays the
// scenario's workload remotely and, with --differential, exits nonzero unless the daemon's
// grants are byte-identical to an uninterrupted in-process run; --shutdown stops the daemon
// afterwards. --kill-client connects, writes a deliberately unfinished frame, and SIGKILLs
// itself mid-submission — the CI leg proving a vanishing client cannot wedge the daemon.
//
// This is the binary the CI `service` job drives: it launches the daemon + N workers,
// injects the kill, and with --differential exits nonzero unless the (possibly recovered)
// service run granted the exact same task ids in the exact same order as an uninterrupted
// single-process run. The fleet demo at startup prints the worker pids so the job log shows
// the real processes that were spawned (and, with a kill, which one died).

#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/common/cli.h"
#include "src/common/frame.h"
#include "src/common/sleep.h"
#include "src/dpack/dpack.h"

namespace {

using namespace dpack;  // Example code; the library itself never does this.

constexpr char kUsage[] =
    "example_grant_service <scenario> [--seed N] [--metric dpack|dpf|area|fcfs]\n"
    "                      [--workers N] [--shards N] [--kill-round R] [--kill-worker W]\n"
    "                      [--recovery reassign|respawn] [--differential]\n"
    "                      [--listen ADDR [--serve-idle-budget N]]\n"
    "                      [--connect ADDR [--shutdown]] [--kill-client ADDR]\n"
    "  ADDR is unix:<path> or tcp:<port> (loopback)";

int ListScenarios() {
  std::printf("registered scenarios (see src/README.md for the stress-axis catalogue):\n");
  for (const std::string& name : ScenarioRegistryNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

GreedyMetric ParseMetric(const std::string& value) {
  if (value == "dpack") return GreedyMetric::kDpack;
  if (value == "dpf") return GreedyMetric::kDpf;
  if (value == "area") return GreedyMetric::kArea;
  if (value == "fcfs") return GreedyMetric::kFcfs;
  std::fprintf(stderr, "unknown metric '%s' (want dpack|dpf|area|fcfs)\n", value.c_str());
  std::exit(2);
}

void PrintCounters(const ServiceCounters& c) {
  std::printf(
      "  counters: messages %llu sent / %llu received, bytes %llu / %llu, ring stalls %llu\n"
      "            score rounds %llu, recoveries %llu, respawns %llu, state replays %llu,\n"
      "            admission rejects %llu\n",
      static_cast<unsigned long long>(c.messages_sent),
      static_cast<unsigned long long>(c.messages_received),
      static_cast<unsigned long long>(c.bytes_sent),
      static_cast<unsigned long long>(c.bytes_received),
      static_cast<unsigned long long>(c.ring_stalls),
      static_cast<unsigned long long>(c.score_rounds),
      static_cast<unsigned long long>(c.recoveries),
      static_cast<unsigned long long>(c.respawns),
      static_cast<unsigned long long>(c.state_replays),
      static_cast<unsigned long long>(c.admission_rejects));
}

// Spins a tiny GrantService fleet just to show the daemon/worker process structure in the
// log: the real scenario run below builds an identical fleet inside the sim driver.
void FleetDemo(GreedyMetric metric, const ServiceConfig& service_config) {
  BlockManager blocks(AlphaGrid::Default(), /*eps_g=*/10.0, /*delta_g=*/1e-7);
  for (int b = 0; b < 4; ++b) blocks.AddBlock(/*arrival_time=*/0.0, /*unlocked=*/true);
  GrantServiceConfig config;
  config.service = service_config;
  config.service.kill_at_round = 0;  // The demo never injects the kill.
  GrantService service(metric, &blocks, config);
  RdpCurve capacity = BlockCapacityCurve(AlphaGrid::Default(), 10.0, 1e-7);
  for (int i = 0; i < 3; ++i) {
    Task task(i, /*weight=*/1.0, capacity.Scaled(0.2));
    task.blocks = {0, 1};
    task.arrival_time = 0.0;
    service.Submit(std::move(task));
  }
  size_t granted = service.RunCycle(/*now=*/0.0);
  ServiceTransport& transport = service.scheduler().transport();
  std::printf("fleet: daemon pid %lld, %zu workers\n",
              static_cast<long long>(getpid()), transport.num_workers());
  for (size_t w = 0; w < transport.num_workers(); ++w) {
    std::printf("  worker %zu: pid %lld %s\n", w, static_cast<long long>(transport.pid(w)),
                transport.alive(w) ? "alive" : "dead");
  }
  std::printf("  demo cycle granted %zu/3 probe tasks\n", granted);
}

// Returns the 0-based cycle index of the first divergence, or -1 when identical.
long long CompareTraces(const std::vector<std::vector<TaskId>>& service_trace,
                        const std::vector<std::vector<TaskId>>& reference_trace) {
  size_t cycles = std::max(service_trace.size(), reference_trace.size());
  for (size_t c = 0; c < cycles; ++c) {
    if (c >= service_trace.size() || c >= reference_trace.size() ||
        service_trace[c] != reference_trace[c]) {
      return static_cast<long long>(c);
    }
  }
  return -1;
}

void PrintNetCounters(const char* who, const NetCounters& c) {
  std::printf(
      "  %s net: accepts %llu, disconnects %llu (budget %llu), frames %llu sent / "
      "%llu received, bytes %llu / %llu,\n"
      "      protocol rejects %llu, submits %llu accepted / %llu rejected, cycles %llu\n",
      who, static_cast<unsigned long long>(c.accepts),
      static_cast<unsigned long long>(c.disconnects),
      static_cast<unsigned long long>(c.budget_disconnects),
      static_cast<unsigned long long>(c.frames_sent),
      static_cast<unsigned long long>(c.frames_received),
      static_cast<unsigned long long>(c.bytes_sent),
      static_cast<unsigned long long>(c.bytes_received),
      static_cast<unsigned long long>(c.protocol_rejects),
      static_cast<unsigned long long>(c.submits_accepted),
      static_cast<unsigned long long>(c.submits_rejected),
      static_cast<unsigned long long>(c.cycles_run));
}

// --listen: serve the scenario as a socket daemon — the scenario supplies the block-arrival
// schedule (applied through the advance hook as client request instants pass each arrival)
// while the tasks come from remote clients. Exits 0 on a clean client Shutdown.
int RunDaemon(const std::string& address_text, GreedyMetric metric,
              const ServiceConfig& service_config, const ScenarioWorkload& workload,
              uint64_t serve_idle_budget) {
  NetAddress address;
  std::string error;
  if (!ParseNetAddress(address_text, &address, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const SimConfig& sim = workload.sim;
  AlphaGridPtr grid = sim.grid != nullptr ? sim.grid : AlphaGrid::Default();
  BlockManager blocks(grid, sim.eps_g, sim.delta_g);
  // The same online-driver knobs RunOnlineSimulation would derive from this SimConfig, so
  // a remote replay of the workload is grant-identical to the in-process run.
  GrantServiceConfig config;
  config.service = service_config;
  config.admission_queue_capacity = sim.admission_queue_capacity;
  config.period = sim.period;
  config.unlock_steps = sim.unlock_steps;
  config.fair_share_n = sim.fair_share_n;
  GrantService service(metric, &blocks, config);
  // The worker fleet forks lazily on the first scheduling cycle; pids are printed after
  // serving, once the fleet existed.
  std::printf("daemon: pid %lld, %zu workers configured\n",
              static_cast<long long>(getpid()), service_config.num_workers);

  std::vector<double> schedule = BlockArrivalSchedule(sim);
  size_t next_block = 0;
  auto advance = [&blocks, &schedule, &next_block](double now) {
    while (next_block < schedule.size() && schedule[next_block] <= now) {
      blocks.AddBlock(schedule[next_block]);
      ++next_block;
    }
  };
  NetFrontConfig front_config;
  front_config.serve_idle_budget = serve_idle_budget;
  NetServiceFront front(&service, &blocks, grid, std::make_unique<NetListener>(address),
                        front_config, advance);
  std::printf("daemon: listening on %s\n", front.listener().address_string().c_str());
  std::fflush(stdout);

  bool clean_shutdown = front.ServeUntilShutdown();
  std::printf("daemon: served %zu remote cycles, %llu granted, %zu blocks arrived\n",
              front.grant_trace().size(),
              static_cast<unsigned long long>(service.metrics().allocated()), next_block);
  ServiceTransport& transport = service.scheduler().transport();
  if (transport.started()) {  // The fleet forks lazily on the first scheduling cycle.
    for (size_t w = 0; w < transport.num_workers(); ++w) {
      std::printf("  worker %zu: pid %lld %s\n", w, static_cast<long long>(transport.pid(w)),
                  transport.alive(w) ? "alive" : "dead");
    }
  }
  PrintNetCounters("daemon", front.counters());
  PrintCounters(service.counters());
  if (!clean_shutdown) {
    std::fprintf(stderr, "FAIL: serve idle budget expired without a client Shutdown\n");
    return 1;
  }
  return 0;
}

// --connect: replay the scenario's workload against a --listen daemon of the same scenario.
// With --differential the remote grant trace must be byte-identical to an uninterrupted
// in-process run; with --shutdown the daemon is stopped afterwards.
int RunRemoteClient(const std::string& address_text, GreedyMetric metric,
                    const ScenarioWorkload& workload, bool differential, bool shutdown) {
  ServiceClient client;
  std::string error;
  if (!client.Connect(address_text, &error)) {
    std::fprintf(stderr, "FAIL: %s\n", error.c_str());
    return 1;
  }
  std::printf("client: pid %lld connected to %s\n", static_cast<long long>(getpid()),
              address_text.c_str());
  RemoteRunResult result;
  if (!RunRemoteWorkload(client, workload.tasks, workload.sim, &result, &error)) {
    std::fprintf(stderr, "FAIL: remote run: %s\n", error.c_str());
    return 1;
  }
  uint64_t granted = 0;
  for (const std::vector<TaskId>& cycle : result.grant_trace) {
    granted += cycle.size();
  }
  std::printf("remote run: %zu cycles, %llu granted, %llu submitted "
              "(%llu accepted, %llu rejected)\n",
              result.cycles_run, static_cast<unsigned long long>(granted),
              static_cast<unsigned long long>(result.submitted),
              static_cast<unsigned long long>(result.accepted),
              static_cast<unsigned long long>(result.rejected));
  PrintNetCounters("client", client.counters());

  int exit_code = 0;
  if (differential) {
    GreedySchedulerOptions options;
    options.incremental = true;
    auto reference = std::make_unique<GreedyScheduler>(metric, options);
    SimConfig reference_config = workload.sim;
    reference_config.record_grant_trace = true;
    SimResult reference_result =
        RunOnlineSimulation(std::move(reference), workload.tasks, reference_config);
    long long diverged = CompareTraces(result.grant_trace, reference_result.grant_trace);
    if (diverged >= 0) {
      std::fprintf(stderr,
                   "FAIL: remote grant trace diverged from the in-process engine at cycle "
                   "%lld (remote %zu cycles, reference %zu cycles)\n",
                   diverged, result.grant_trace.size(),
                   reference_result.grant_trace.size());
      exit_code = 1;
    } else if (granted != reference_result.metrics.allocated()) {
      std::fprintf(stderr, "FAIL: remote allocated %llu vs reference %llu\n",
                   static_cast<unsigned long long>(granted),
                   static_cast<unsigned long long>(reference_result.metrics.allocated()));
      exit_code = 1;
    } else {
      std::printf("OK: remote grant trace byte-identical to the in-process engine "
                  "(%zu cycles)\n",
                  reference_result.grant_trace.size());
    }
  }
  if (shutdown) {
    if (!client.SendShutdown(&error)) {
      std::fprintf(stderr, "FAIL: shutdown: %s\n", error.c_str());
      return 1;
    }
    std::printf("client: sent Shutdown\n");
  }
  return exit_code;
}

// One blocking connect attempt for the kill client; returns the fd or -1 with errno set.
int BlockingConnect(const NetAddress& address) {
  if (address.is_unix) {
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, address.path.c_str(), address.path.size() + 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) return fd;
    int saved = errno;
    close(fd);
    errno = saved;
    return -1;
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(address.port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) return fd;
  int saved = errno;
  close(fd);
  errno = saved;
  return -1;
}

// --kill-client: connect, write the first half of a well-formed Submit frame, and SIGKILL
// ourselves mid-submission. The daemon must discard the partial bytes on the EOF and keep
// serving — the CI remote-client kill leg asserts exactly that.
int RunKillClient(const std::string& address_text) {
  NetAddress address;
  std::string error;
  if (!ParseNetAddress(address_text, &address, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  int fd = -1;
  for (int attempt = 0; attempt < 20000 && fd < 0; ++attempt) {
    fd = BlockingConnect(address);
    if (fd < 0) {
      if (errno != ECONNREFUSED && errno != ENOENT && errno != EINTR) break;
      SleepFullMicros(500);  // The daemon may still be binding.
    }
  }
  if (fd < 0) {
    std::fprintf(stderr, "FAIL: kill-client cannot connect to %s: %s\n",
                 address_text.c_str(), std::strerror(errno));
    return 1;
  }
  SubmitMsg msg;
  msg.seq = 1;  // Content is irrelevant: the frame never finishes.
  std::string frame;
  AppendFrame(&frame, EncodeMessage(ServiceMessage(msg)));
  size_t half = frame.size() / 2;
  ssize_t sent = send(fd, frame.data(), half, MSG_NOSIGNAL);
  std::printf("kill-client: pid %lld sent %zd/%zu frame bytes, raising SIGKILL\n",
              static_cast<long long>(getpid()), sent, frame.size());
  std::fflush(stdout);
  raise(SIGKILL);
  return 1;  // Unreachable.
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "list" || std::string(argv[1]) == "--help") {
    return ListScenarios();
  }
  std::string name = argv[1];
  uint64_t seed = 1;
  GreedyMetric metric = GreedyMetric::kDpack;
  ServiceConfig service_config;
  service_config.num_workers = 4;
  bool differential = false;
  uint64_t kill_round = 0;
  size_t kill_worker = 0;
  std::string listen_addr, connect_addr, kill_client_addr;
  uint64_t serve_idle_budget = 0;
  bool send_shutdown = false;
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--differential") {
      differential = true;
      continue;
    }
    if (flag == "--shutdown") {
      send_shutdown = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag '%s' requires a value\n", flag.c_str());
      return 2;
    }
    std::string value = argv[++i];
    if (flag == "--seed") {
      seed = ParseUint64Arg(argv[0], value, "--seed", kUsage);
    } else if (flag == "--metric") {
      metric = ParseMetric(value);
    } else if (flag == "--workers") {
      service_config.num_workers = ParseSizeArg(argv[0], value, "--workers", kUsage);
    } else if (flag == "--shards") {
      service_config.num_shards = ParseSizeArg(argv[0], value, "--shards", kUsage);
    } else if (flag == "--kill-round") {
      kill_round = ParseUint64Arg(argv[0], value, "--kill-round", kUsage);
    } else if (flag == "--kill-worker") {
      kill_worker = ParseSizeArg(argv[0], value, "--kill-worker", kUsage);
    } else if (flag == "--listen") {
      listen_addr = value;
    } else if (flag == "--connect") {
      connect_addr = value;
    } else if (flag == "--kill-client") {
      kill_client_addr = value;
    } else if (flag == "--serve-idle-budget") {
      serve_idle_budget = ParseUint64Arg(argv[0], value, "--serve-idle-budget", kUsage);
    } else if (flag == "--recovery") {
      if (value == "reassign") {
        service_config.recovery = ServiceRecovery::kReassign;
      } else if (value == "respawn") {
        service_config.recovery = ServiceRecovery::kRespawn;
      } else {
        std::fprintf(stderr, "unknown recovery '%s' (want reassign|respawn)\n", value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return 2;
    }
  }
  service_config.kill_at_round = kill_round;
  service_config.kill_worker = kill_worker;
  if (kill_round > 0 && kill_worker >= service_config.num_workers) {
    std::fprintf(stderr, "--kill-worker %zu out of range for %zu workers\n", kill_worker,
                 service_config.num_workers);
    return 2;
  }
  int socket_modes = (listen_addr.empty() ? 0 : 1) + (connect_addr.empty() ? 0 : 1) +
                     (kill_client_addr.empty() ? 0 : 1);
  if (socket_modes > 1) {
    std::fprintf(stderr, "--listen, --connect, and --kill-client are mutually exclusive\n");
    return 2;
  }
  if (!kill_client_addr.empty()) {
    return RunKillClient(kill_client_addr);  // Needs no workload: it dies mid-frame.
  }

  AlphaGridPtr grid = AlphaGrid::Default();
  CurvePool pool(grid, BlockCapacityCurve(grid, 10.0, 1e-7));
  ScenarioWorkload workload = GenerateScenario(pool, ScenarioByName(name, seed));
  workload.sim.record_grant_trace = true;

  std::printf("scenario %s seed %llu: %zu tasks, %zu blocks, metric %s\n", name.c_str(),
              static_cast<unsigned long long>(seed), workload.tasks.size(),
              workload.sim.block_arrival_times.size(),
              metric == GreedyMetric::kDpack  ? "dpack"
              : metric == GreedyMetric::kDpf  ? "dpf"
              : metric == GreedyMetric::kArea ? "area"
                                              : "fcfs");
  if (!listen_addr.empty()) {
    return RunDaemon(listen_addr, metric, service_config, workload, serve_idle_budget);
  }
  if (!connect_addr.empty()) {
    return RunRemoteClient(connect_addr, metric, workload, differential, send_shutdown);
  }
  FleetDemo(metric, service_config);

  if (kill_round > 0) {
    std::printf("kill plan: SIGKILL worker %zu at score round %llu (recovery=%s)\n",
                kill_worker, static_cast<unsigned long long>(kill_round),
                service_config.recovery == ServiceRecovery::kRespawn ? "respawn" : "reassign");
  }
  ServiceSimResult service_result =
      RunServiceSimulation(metric, workload.tasks, workload.sim, service_config);
  std::printf("service run: %zu cycles, %llu granted, pending %zu\n",
              service_result.sim.cycles_run,
              static_cast<unsigned long long>(service_result.sim.metrics.allocated()),
              service_result.sim.pending_at_end);
  PrintCounters(service_result.counters);
  if (kill_round > 0 && service_result.counters.recoveries == 0) {
    std::fprintf(stderr, "FAIL: kill was requested but no recovery was recorded\n");
    return 1;
  }

  if (!differential) return 0;

  GreedySchedulerOptions options;
  options.incremental = true;
  auto reference = std::make_unique<GreedyScheduler>(metric, options);
  SimResult reference_result =
      RunOnlineSimulation(std::move(reference), workload.tasks, workload.sim);
  long long diverged =
      CompareTraces(service_result.sim.grant_trace, reference_result.grant_trace);
  if (diverged >= 0) {
    std::fprintf(stderr,
                 "FAIL: grant trace diverged from the in-process engine at cycle %lld "
                 "(service %zu cycles, reference %zu cycles)\n",
                 diverged, service_result.sim.grant_trace.size(),
                 reference_result.grant_trace.size());
    return 1;
  }
  if (service_result.sim.metrics.allocated() != reference_result.metrics.allocated()) {
    std::fprintf(stderr, "FAIL: allocated %llu vs reference %llu\n",
                 static_cast<unsigned long long>(service_result.sim.metrics.allocated()),
                 static_cast<unsigned long long>(reference_result.metrics.allocated()));
    return 1;
  }
  std::printf("OK: grant trace byte-identical to the in-process engine (%zu cycles)\n",
              reference_result.grant_trace.size());
  return 0;
}
