// Mechanism tour: the RDP accounting API end to end.
//
// Builds the RDP curves of the mechanisms a DP ML platform runs (Laplace statistics,
// Gaussian histograms, DP-SGD's subsampled Gaussian), composes a day's workload, translates
// to traditional (eps, delta)-DP, and shows how a privacy block's filter admits computations
// until the budget is spent — the accounting substrate underneath the DPack scheduler.
//
// Build & run:  ./build/examples/mechanism_tour

#include <cstdio>

#include "src/dpack/dpack.h"

using namespace dpack;  // Example code; the library itself never does this.

int main() {
  AlphaGridPtr grid = AlphaGrid::Default();
  const double delta = 1e-6;

  // 1. One curve per mechanism.
  RdpCurve average = LaplaceCurve(grid, /*b=*/4.0);              // A DP average.
  RdpCurve histogram = GaussianCurve(grid, /*sigma=*/3.0);       // A DP histogram.
  RdpCurve training =                                            // 1,200 DP-SGD steps.
      SubsampledGaussianCurve(grid, /*sigma=*/1.1, /*q=*/0.01).Repeat(1200);

  std::printf("Per-mechanism RDP curves (eps at selected orders) and DP translations:\n");
  std::printf("%-22s %8s %8s %8s %8s   best_a   eps_dp@1e-6\n", "mechanism", "a=3", "a=5",
              "a=16", "a=64");
  for (auto [name, curve] : {std::pair<const char*, const RdpCurve*>{"laplace avg", &average},
                             {"gaussian histogram", &histogram},
                             {"dp-sgd training", &training}}) {
    DpTranslation t = curve->ToDp(delta);
    std::printf("%-22s %8.4g %8.4g %8.4g %8.4g   %6.4g   %.3f\n", name,
                curve->epsilon(grid->IndexOf(3.0)), curve->epsilon(grid->IndexOf(5.0)),
                curve->epsilon(grid->IndexOf(16.0)), curve->epsilon(grid->IndexOf(64.0)),
                t.alpha, t.epsilon);
  }

  // 2. Composition: run all three on the same data.
  RdpCurve day = average + histogram + training;
  DpTranslation composed = day.ToDp(delta);
  double naive = average.ToDp(delta).epsilon + histogram.ToDp(delta).epsilon +
                 training.ToDp(delta).epsilon;
  std::printf("\nComposing all three and translating once: (%.3f, 1e-6)-DP at alpha=%g\n",
              composed.epsilon, composed.alpha);
  std::printf("Naively adding the three translations:     %.3f  (RDP composition wins)\n",
              naive);

  // 3. A privacy block admits work through its Renyi filter until the budget is spent.
  PrivacyBlock block(/*id=*/0, grid, /*eps_g=*/8.0, /*delta_g=*/1e-6, /*arrival_time=*/0.0);
  int admitted = 0;
  while (block.CanAccept(histogram)) {
    block.Commit(histogram);
    ++admitted;
  }
  std::printf(
      "\nA block enforcing (8, 1e-6)-DP admits %d sigma=3 histograms before its filter\n"
      "rejects the next one; the budget is gone for posterity (non-replenishable).\n",
      admitted);
  return 0;
}
