// Quickstart: schedule DP tasks onto privacy blocks with DPack, DPF, and Optimal,
// reproducing the paper's Fig. 1 worked example in ~60 lines.
//
//   - 3 privacy blocks, each enforcing (eps = 10, delta = 1e-7)-DP;
//   - T1 requests 45% of the budget of ALL three blocks (a large model retraining);
//   - T2, T3, T4 each request 60% of ONE distinct block (daily statistics).
//
// DPF orders by dominant share (T1's 45% < 60%), schedules T1 first, and strands T2-T4.
// DPack's area metric sees that T1's total demand spans three blocks and packs the three
// single-block tasks instead: 3 allocations vs 1.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/dpack/dpack.h"

namespace {

using namespace dpack;  // Example code; the library itself never does this.

// Runs `kind` on a fresh copy of the system and reports what it allocated.
size_t RunScheduler(SchedulerKind kind, const std::vector<Task>& tasks) {
  BlockManager blocks(AlphaGrid::Default(), /*eps_g=*/10.0, /*delta_g=*/1e-7);
  for (int b = 0; b < 3; ++b) {
    blocks.AddBlock(/*arrival_time=*/0.0, /*unlocked=*/true);
  }
  std::unique_ptr<Scheduler> scheduler = CreateScheduler(kind);
  std::vector<Task> copy = tasks;
  std::vector<size_t> granted = scheduler->ScheduleBatch(copy, blocks);
  std::printf("%-8s allocated %zu of %zu tasks:", scheduler->name().c_str(), granted.size(),
              tasks.size());
  for (size_t idx : granted) {
    std::printf(" T%lld", static_cast<long long>(tasks[idx].id));
  }
  std::printf("\n");
  return granted.size();
}

}  // namespace

int main() {
  AlphaGridPtr grid = AlphaGrid::Default();
  RdpCurve capacity = BlockCapacityCurve(grid, 10.0, 1e-7);

  // Demands proportional to the block capacity curve: a task demanding fraction f has
  // normalized share f at every usable order, exactly the flat multi-block demands of Fig. 1.
  std::vector<Task> tasks;
  Task t1(1, /*weight=*/1.0, capacity.Scaled(0.45));
  t1.blocks = {0, 1, 2};
  tasks.push_back(t1);
  for (int i = 0; i < 3; ++i) {
    Task t(2 + i, /*weight=*/1.0, capacity.Scaled(0.60));
    t.blocks = {static_cast<BlockId>(i)};
    tasks.push_back(t);
  }

  std::printf("Privacy scheduling quickstart: 3 blocks at (eps=10, delta=1e-7), 4 tasks.\n");
  std::printf("T1 wants 45%% of every block; T2-T4 want 60%% of one block each.\n\n");
  size_t dpack_count = RunScheduler(SchedulerKind::kDpack, tasks);
  size_t dpf_count = RunScheduler(SchedulerKind::kDpf, tasks);
  RunScheduler(SchedulerKind::kOptimal, tasks);

  std::printf(
      "\nDPF schedules the block-hungry T1 first (its dominant share is smallest) and "
      "strands\nthe rest; DPack packs the three single-block statistics instead "
      "(%zu vs %zu tasks).\n",
      dpack_count, dpf_count);
  return 0;
}
