// Alibaba-DP simulation: generate the synthetic macro-workload derived from the Alibaba GPU
// cluster trace (§6.3), inspect its statistics, and run the full online scheduling pipeline
// with DPack.
//
// Build & run:  ./build/examples/alibaba_sim [num_tasks] [num_blocks]

#include <cstdio>
#include <cstdlib>

#include "src/common/cli.h"
#include "src/dpack/dpack.h"

using namespace dpack;  // Example code; the library itself never does this.

namespace {
constexpr char kUsage[] = "alibaba_sim [num_tasks] [num_blocks]";
}  // namespace

int main(int argc, char** argv) {
  size_t num_tasks =
      argc > 1 ? ParseSizeArg(argv[0], argv[1], "num_tasks", kUsage) : 10000;
  size_t num_blocks =
      argc > 2 ? ParseSizeArg(argv[0], argv[2], "num_blocks", kUsage) : 60;

  AlphaGridPtr grid = AlphaGrid::Default();
  RdpCurve capacity = BlockCapacityCurve(grid, 10.0, 1e-7);
  CurvePool pool(grid, capacity);

  AlibabaConfig config;
  config.num_tasks = num_tasks;
  config.arrival_span = static_cast<double>(num_blocks);
  config.seed = 1;
  std::vector<Task> tasks = GenerateAlibabaDp(pool, config);

  WorkloadStats stats = ComputeWorkloadStats(tasks, capacity);
  std::printf("Alibaba-DP workload (%zu tasks over %zu daily blocks):\n%s\n\n", num_tasks,
              num_blocks, stats.Summary(grid).c_str());

  SimConfig sim;
  sim.num_blocks = num_blocks;
  sim.unlock_steps = 50;
  sim.fair_share_n = 50;
  SimResult result = RunOnlineSimulation(CreateScheduler(SchedulerKind::kDpack), tasks, sim);
  const AllocationMetrics& m = result.metrics;
  std::printf("DPack online run: %s\n", m.Summary().c_str());
  std::printf("  scheduling cycles: %zu, total scheduler runtime: %.3f s\n", result.cycles_run,
              m.total_runtime_seconds());
  std::printf("  p50/p90/p99 scheduling delay (days): %.1f / %.1f / %.1f\n",
              m.delays().Quantile(0.5), m.delays().Quantile(0.9), m.delays().Quantile(0.99));
  std::printf("  fair-share tasks among grants: %.0f%%\n",
              100.0 * m.AllocatedFairShareFraction());
  return 0;
}
