// Scenario explorer: generate any registered scenario at any seed, inspect the stream,
// run it through a chosen engine shape, and optionally export it as a portable CSV trace
// (explicit block lists included — trace format v2).
//
//   example_scenario_explorer list
//   example_scenario_explorer <scenario> [--seed N] [--metric dpack|dpf|area|fcfs]
//                             [--engine recompute|incremental|async] [--shards N]
//                             [--export path.csv]
//
// Because scenarios are addressed by (name, seed), the exact stream this tool prints is
// the one the matrix/fuzz suites and bench/fig10_scenarios measure.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/common/cli.h"
#include "src/dpack/dpack.h"

namespace {

using namespace dpack;

constexpr char kUsage[] =
    "example_scenario_explorer <scenario> [--seed N] [--metric dpack|dpf|area|fcfs]\n"
    "                          [--engine recompute|incremental|async] [--shards N]\n"
    "                          [--export path.csv]";

int ListScenarios() {
  std::printf("registered scenarios (see src/README.md for the stress-axis catalogue):\n");
  for (const std::string& name : ScenarioRegistryNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

GreedyMetric ParseMetric(const std::string& value) {
  if (value == "dpack") return GreedyMetric::kDpack;
  if (value == "dpf") return GreedyMetric::kDpf;
  if (value == "area") return GreedyMetric::kArea;
  if (value == "fcfs") return GreedyMetric::kFcfs;
  std::fprintf(stderr, "unknown metric '%s' (want dpack|dpf|area|fcfs)\n", value.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "list" || std::string(argv[1]) == "--help") {
    return ListScenarios();
  }
  std::string name = argv[1];
  uint64_t seed = 1;
  GreedyMetric metric = GreedyMetric::kDpack;
  std::string engine = "incremental";
  size_t num_shards = 1;
  std::string export_path;
  for (int i = 2; i < argc; i += 2) {
    std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag '%s' requires a value\n", flag.c_str());
      return 2;
    }
    std::string value = argv[i + 1];
    if (flag == "--seed") {
      seed = ParseUint64Arg(argv[0], value, "--seed", kUsage);
    } else if (flag == "--metric") {
      metric = ParseMetric(value);
    } else if (flag == "--engine") {
      if (value != "recompute" && value != "incremental" && value != "async") {
        std::fprintf(stderr, "unknown engine '%s' (want recompute|incremental|async)\n",
                     value.c_str());
        return 2;
      }
      engine = value;
    } else if (flag == "--shards") {
      num_shards = ParseSizeArg(argv[0], value, "--shards", kUsage);
    } else if (flag == "--export") {
      export_path = value;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return 2;
    }
  }

  AlphaGridPtr grid = AlphaGrid::Default();
  CurvePool pool(grid, BlockCapacityCurve(grid, 10.0, 1e-7));
  ScenarioWorkload workload = GenerateScenario(pool, ScenarioByName(name, seed));

  std::printf("scenario %s seed %llu: %zu tasks over [0, %.2f), %zu blocks\n", name.c_str(),
              static_cast<unsigned long long>(seed), workload.tasks.size(),
              workload.tasks.empty() ? 0.0 : workload.tasks.back().arrival_time,
              workload.sim.block_arrival_times.size());
  size_t explicit_lists = 0;
  for (const Task& task : workload.tasks) {
    explicit_lists += task.blocks.empty() ? 0 : 1;
  }
  std::printf("  explicit block lists: %zu/%zu tasks\n", explicit_lists,
              workload.tasks.size());
  WorkloadStats stats = ComputeWorkloadStats(workload.tasks, pool.capacity());
  std::printf("%s\n", stats.Summary(grid).c_str());

  if (!export_path.empty()) {
    if (!WriteTraceFile(export_path, workload.tasks, grid)) {
      std::fprintf(stderr, "cannot write %s\n", export_path.c_str());
      return 1;
    }
    std::printf("exported trace to %s\n", export_path.c_str());
  }

  GreedySchedulerOptions options;
  options.incremental = engine != "recompute";
  options.num_shards = num_shards;
  options.async = engine == "async";
  auto scheduler = std::make_unique<GreedyScheduler>(metric, options);
  std::string metric_name = scheduler->name();
  SimResult result =
      RunOnlineSimulation(std::move(scheduler), workload.tasks, workload.sim);

  std::printf("\nengine=%s shards=%zu metric=%s: %zu cycles\n", engine.c_str(), num_shards,
              metric_name.c_str(), result.cycles_run);
  std::printf("%s\n", result.metrics.Summary().c_str());
  std::printf("pending at end: %zu\n", result.pending_at_end);
  const ScheduleContextStats& engine_stats = result.scheduler_stats;
  if (options.incremental && result.cycles_run > 0) {
    double cycles = static_cast<double>(result.cycles_run);
    std::printf("engine work per cycle: rescored %.1f reused %.1f refreshed %.1f\n",
                static_cast<double>(engine_stats.tasks_rescored) / cycles,
                static_cast<double>(engine_stats.tasks_reused) / cycles,
                static_cast<double>(engine_stats.blocks_refreshed) / cycles);
  }
  return 0;
}
