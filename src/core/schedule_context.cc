#include "src/core/schedule_context.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/check.h"

namespace dpack {

namespace {

constexpr uint64_t kNoReject = std::numeric_limits<uint64_t>::max();

// Sorts task indices by score descending, breaking ties by arrival time then id so results
// are deterministic. This is the recompute path's ordering; the incremental heaps'
// HeapEntryBefore reproduces it exactly for unique ids.
std::vector<size_t> OrderByScoreDesc(std::span<const Task> pending,
                                     std::span<const double> scores) {
  std::vector<size_t> order(pending.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) {
      return scores[a] > scores[b];
    }
    if (pending[a].arrival_time != pending[b].arrival_time) {
      return pending[a].arrival_time < pending[b].arrival_time;
    }
    return pending[a].id < pending[b].id;
  });
  return order;
}

std::vector<size_t> FcfsOrder(std::span<const Task> pending) {
  std::vector<size_t> order(pending.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (pending[a].arrival_time != pending[b].arrival_time) {
      return pending[a].arrival_time < pending[b].arrival_time;
    }
    return pending[a].id < pending[b].id;
  });
  return order;
}

}  // namespace

std::vector<size_t> AllocateInOrder(std::span<const Task> pending, BlockManager& blocks,
                                    std::span<const size_t> order) {
  std::vector<size_t> granted;
  for (size_t idx : order) {
    const Task& task = pending[idx];
    if (task.blocks.empty()) {
      continue;  // Unresolved block request (no blocks in the system yet).
    }
    bool can_run = true;
    for (BlockId j : task.blocks) {
      if (!blocks.block(j).CanAccept(task.demand)) {
        can_run = false;
        break;
      }
    }
    if (!can_run) {
      continue;
    }
    for (BlockId j : task.blocks) {
      blocks.block(j).Commit(task.demand);
    }
    granted.push_back(idx);
  }
  return granted;
}

std::vector<size_t> RecomputeScheduleBatch(GreedyMetric metric, double eta,
                                           std::span<const Task> pending,
                                           BlockManager& blocks) {
  if (pending.empty()) {
    return {};
  }
  if (metric == GreedyMetric::kFcfs) {
    // The paper's framework runs every policy through the same greedy loop (Alg. 1): FCFS is
    // the arrival-order metric with the same skip-infeasible allocation as the others.
    return AllocateInOrder(pending, blocks, FcfsOrder(pending));
  }

  CapacitySnapshot snapshot(blocks);
  std::vector<double> scores(pending.size(), 0.0);
  switch (metric) {
    case GreedyMetric::kDpf:
      for (size_t i = 0; i < pending.size(); ++i) {
        scores[i] = DpfEfficiency(pending[i], snapshot);
      }
      break;
    case GreedyMetric::kArea:
      for (size_t i = 0; i < pending.size(); ++i) {
        scores[i] = AreaEfficiency(pending[i], snapshot);
      }
      break;
    case GreedyMetric::kDpack: {
      std::vector<size_t> best_alpha = ComputeBestAlphas(pending, snapshot, eta);
      for (size_t i = 0; i < pending.size(); ++i) {
        scores[i] = DpackEfficiency(pending[i], snapshot, best_alpha);
      }
      break;
    }
    case GreedyMetric::kFcfs:
      break;  // Handled above.
  }
  return AllocateInOrder(pending, blocks, OrderByScoreDesc(pending, scores));
}

// --- TaskCacheMap (shared by ScheduleContext and ShardedScheduleContext) ------------------

TaskCacheMap::TaskCacheMap() { slots_.resize(1024); }

size_t TaskCacheMap::Probe(TaskId id) const {
  uint64_t h = static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 32;
  return static_cast<size_t>(h) & (slots_.size() - 1);
}

size_t TaskCacheMap::Find(TaskId id) const {
  size_t i = Probe(id);
  while (slots_[i].used) {
    if (slots_[i].id == id) {
      return i;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
  return kNpos;
}

size_t TaskCacheMap::FindOrInsert(TaskId id) {
  size_t i = Probe(id);
  while (slots_[i].used) {
    if (slots_[i].id == id) {
      return i;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
  DPACK_CHECK_MSG(2 * (size_ + 1) <= slots_.size(), "TaskCacheMap insert without Reserve");
  slots_[i].used = true;
  slots_[i].id = id;
  slots_[i].value = TaskCache{};
  ++size_;
  return i;
}

bool TaskCacheMap::Reserve(size_t additional) {
  size_t needed = 2 * (size_ + additional + 1);
  if (needed <= slots_.size()) {
    return false;
  }
  size_t capacity = slots_.size();
  while (capacity < needed) {
    capacity *= 2;
  }
  Rehash(capacity);
  return true;
}

void TaskCacheMap::Rehash(size_t new_capacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_capacity, Slot{});
  for (Slot& slot : old) {
    if (slot.used) {
      size_t i = Probe(slot.id);
      while (slots_[i].used) {
        i = (i + 1) & (slots_.size() - 1);
      }
      slots_[i] = std::move(slot);
    }
  }
}

void TaskCacheMap::PurgeNotSeen(uint64_t cycle) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size(), Slot{});
  size_ = 0;
  for (Slot& slot : old) {
    if (slot.used && slot.value.last_seen == cycle) {
      size_t i = Probe(slot.id);
      while (slots_[i].used) {
        i = (i + 1) & (slots_.size() - 1);
      }
      slots_[i] = std::move(slot);
      ++size_;
    }
  }
}

void TaskCacheMap::Clear() {
  slots_.assign(slots_.size(), Slot{});
  size_ = 0;
}

// --- Engine steps shared by ScheduleContext and ShardedScheduleContext --------------------

bool HeapEntryBefore(const HeapEntry& a, const HeapEntry& b) {
  if (a.score != b.score) {
    return a.score > b.score;
  }
  if (a.arrival != b.arrival) {
    return a.arrival < b.arrival;
  }
  return a.id < b.id;
}

double ScoreGreedyTask(GreedyMetric metric, const Task& task, const CapacitySnapshot& snapshot,
                       std::span<const size_t> best_alpha) {
  switch (metric) {
    case GreedyMetric::kDpf:
      return DpfEfficiency(task, snapshot);
    case GreedyMetric::kArea:
      return AreaEfficiency(task, snapshot);
    case GreedyMetric::kDpack:
      return DpackEfficiency(task, snapshot, best_alpha);
    case GreedyMetric::kFcfs:
      break;  // FCFS never scores.
  }
  DPACK_CHECK_MSG(false, "unscored metric");
  return 0.0;
}

bool ShouldRescore(TaskCache& cached, const Task& task, GreedyMetric metric,
                   uint64_t previous_cycle, uint64_t cycle_stamp, bool& needs_index) {
  needs_index = cached.last_seen != previous_cycle ||
                cached.blocks_ptr != task.blocks.data() ||
                cached.blocks_len != task.blocks.size();
  if (needs_index) {
    cached.reject_vsum = kNoReject;  // New or re-resolved task: no feasibility memo.
    return true;
  }
  // Live cached entry: trust it unless the reverse-index marking pass stamped it stale
  // this cycle. DPF never goes stale (scores read only total capacities).
  return metric != GreedyMetric::kDpf && cached.stale_stamp == cycle_stamp;
}

void MergeScoreHeap(std::vector<HeapEntry>& heap, std::vector<HeapEntry>& fresh,
                    std::vector<HeapEntry>& scratch, const TaskCacheMap& cache,
                    uint64_t cycle_stamp, bool& slots_moved, uint64_t& merge_allocs,
                    std::vector<size_t>* order_out) {
  std::sort(fresh.begin(), fresh.end(), HeapEntryBefore);
  size_t scratch_capacity = scratch.capacity();
  scratch.clear();
  size_t hi = 0;
  size_t fi = 0;
  while (hi < heap.size() || fi < fresh.size()) {
    bool take_heap;
    if (hi >= heap.size()) {
      take_heap = false;
    } else if (fi >= fresh.size()) {
      take_heap = true;
    } else {
      take_heap = HeapEntryBefore(heap[hi], fresh[fi]);
    }
    if (take_heap) {
      HeapEntry entry = heap[hi++];
      if (slots_moved) {
        size_t slot = cache.Find(entry.id);
        if (slot == TaskCacheMap::kNpos) {
          continue;  // Stale: purged.
        }
        entry.slot = slot;
      }
      const TaskCache& cached = cache.at(entry.slot);
      if (cached.last_seen != cycle_stamp || cached.generation != entry.generation) {
        continue;  // Stale: superseded, granted, or evicted.
      }
      if (order_out != nullptr) {
        order_out->push_back(cached.index);
      }
      scratch.push_back(entry);
    } else {
      const HeapEntry& entry = fresh[fi++];
      if (order_out != nullptr) {
        order_out->push_back(cache.at(entry.slot).index);
      }
      scratch.push_back(entry);
    }
  }
  // dpack-lint: allow(float-equality): size_t buffer-capacity bookkeeping, not a budget double.
  if (scratch.capacity() != scratch_capacity) {
    ++merge_allocs;  // Output buffer grew; steady-state cycles reuse the ping-pong pair.
  }
  heap.swap(scratch);
  fresh.clear();
  slots_moved = false;
}

// --- ScheduleContext -----------------------------------------------------------------------

ScheduleContext::ScheduleContext(GreedyMetric metric, double eta)
    : metric_(metric), eta_(eta) {
  DPACK_CHECK(eta_ > 0.0);
}

void ScheduleContext::Invalidate() {
  snapshot_.reset();
  last_version_.clear();
  version_now_.clear();
  group_seen_.clear();
  dirty_stamp_.clear();
  dirty_ids_.clear();
  member_sig_.clear();
  best_alpha_.clear();
  sig_scratch_.clear();
  touched_stamp_.clear();
  touched_ids_.clear();
  active_ids_.clear();
  rindex_.clear();
  cache_.Clear();
  heap_.clear();
  fresh_.clear();
  merged_.clear();
  order_.clear();
  slot_of_index_.clear();
  requesters_.clear();
  slots_moved_ = false;
  cycle_stamp_ = 0;
}

void ScheduleContext::SyncBlocks(const BlockManager& blocks) {
  if (!snapshot_.has_value()) {
    snapshot_.emplace(blocks.grid());
  }
  size_t count = blocks.block_count();
  size_t known = last_version_.size();
  DPACK_CHECK_MSG(count >= known, "blocks disappeared: use a fresh context per manager");
  dirty_ids_.clear();
  dirty_stamp_.resize(count, 0);
  for (size_t j = known; j < count; ++j) {
    const PrivacyBlock& b = blocks.block(static_cast<BlockId>(j));
    snapshot_->Append(b.AvailableCurve(), b.capacity());
    last_version_.push_back(b.version());
    version_now_.push_back(b.version());
    member_sig_.push_back(kMemberSigSeed);
    best_alpha_.push_back(0);
    requesters_.emplace_back();
    rindex_.emplace_back();
    MarkDirtyBlock(j);
  }
  // Drill into version-tree groups whose sum advanced since the last cycle — O(groups +
  // changed) instead of a version scan over every block. version_now_ (the allocation
  // walk's contiguous mirror) is persistent: the walk's commits keep it current, and this
  // drill re-syncs whatever changed outside the walk (unlocks), so after it
  // version_now_[j] == last_version_[j] == the block's current version for every j.
  const BlockVersionTree& tree = blocks.version_tree();
  group_seen_.resize(tree.group_count(), 0);
  for (size_t g = 0; g < group_seen_.size(); ++g) {
    uint64_t sum = tree.group_sum(g);
    if (sum == group_seen_[g]) {
      continue;
    }
    group_seen_[g] = sum;
    size_t begin = g << BlockVersionTree::kGroupShift;
    size_t end = std::min(begin + (size_t{1} << BlockVersionTree::kGroupShift), count);
    for (size_t j = begin; j < end; ++j) {
      const PrivacyBlock& b = blocks.block(static_cast<BlockId>(j));
      if (b.version() == last_version_[j]) {
        continue;
      }
      last_version_[j] = b.version();
      version_now_[j] = b.version();
      snapshot_->RefreshAvailable(static_cast<BlockId>(j), b.AvailableCurve());
      MarkDirtyBlock(j);
      ++stats_.blocks_refreshed;
    }
  }
}

void ScheduleContext::MarkMembershipDirty(std::span<const Task> pending) {
  size_t count = member_sig_.size();
  touched_stamp_.resize(count, 0);
  sig_scratch_.resize(count, kMemberSigSeed);  // Entries are (re)seeded lazily on touch.
  touched_ids_.clear();
  for (const Task& task : pending) {
    for (BlockId id : task.blocks) {
      size_t j = static_cast<size_t>(id);
      DPACK_CHECK(id >= 0 && j < count);
      if (touched_stamp_[j] != cycle_stamp_) {
        touched_stamp_[j] = cycle_stamp_;
        touched_ids_.push_back(id);
        sig_scratch_[j] = kMemberSigSeed;
      }
      sig_scratch_[j] = MemberSigMix(sig_scratch_[j], static_cast<uint64_t>(task.id));
    }
  }
  // Blocks with requesters last cycle but none this cycle reset to the seed signature —
  // the touched loop below cannot see them, so they are handled off the active list.
  for (BlockId id : active_ids_) {
    size_t j = static_cast<size_t>(id);
    if (touched_stamp_[j] != cycle_stamp_ && member_sig_[j] != kMemberSigSeed) {
      member_sig_[j] = kMemberSigSeed;
      MarkDirtyBlock(j);
    }
  }
  active_ids_.clear();
  for (BlockId id : touched_ids_) {
    size_t j = static_cast<size_t>(id);
    if (sig_scratch_[j] != member_sig_[j]) {
      member_sig_[j] = sig_scratch_[j];
      MarkDirtyBlock(j);
    }
    if (member_sig_[j] != kMemberSigSeed) {
      active_ids_.push_back(id);
    }
  }
}

void ScheduleContext::MarkStaleTasks(uint64_t previous_cycle) {
  for (BlockId id : dirty_ids_) {
    std::vector<TaskId>& tasks = rindex_[static_cast<size_t>(id)];
    for (size_t i = 0; i < tasks.size();) {
      size_t slot = cache_.Find(tasks[i]);
      if (slot == TaskCacheMap::kNpos || cache_.at(slot).last_seen != previous_cycle) {
        tasks[i] = tasks.back();  // Dead entry (granted, evicted, or purged): prune.
        tasks.pop_back();
        continue;
      }
      cache_.at(slot).stale_stamp = cycle_stamp_;
      ++i;
    }
  }
}

void ScheduleContext::RecomputeDirtyBestAlphas(std::span<const Task> pending) {
  if (dirty_ids_.empty()) {
    return;
  }
  for (BlockId id : dirty_ids_) {
    requesters_[static_cast<size_t>(id)].clear();
  }
  for (size_t i = 0; i < pending.size(); ++i) {
    for (BlockId id : pending[i].blocks) {
      if (dirty_stamp_[static_cast<size_t>(id)] == cycle_stamp_) {
        requesters_[static_cast<size_t>(id)].push_back(i);
      }
    }
  }
  // Per-block solves are independent, so dirty-list order (vs id order) changes nothing.
  for (BlockId id : dirty_ids_) {
    size_t j = static_cast<size_t>(id);
    best_alpha_[j] = BestAlphaForBlock(pending, requesters_[j],
                                       snapshot_->available(static_cast<BlockId>(j)), eta_);
    ++stats_.best_alpha_recomputes;
  }
}

double ScheduleContext::ScoreTask(const Task& task) const {
  return ScoreGreedyTask(metric_, task, *snapshot_, best_alpha_);
}

void ScheduleContext::PopHeapIntoOrder() {
  // Pop = in-order merge of the surviving sorted entries (heap_) with this cycle's rescored
  // ones (fresh_) under the reference sort's total order, emitting batch indices into
  // order_; see MergeScoreHeap.
  order_.clear();
  MergeScoreHeap(heap_, fresh_, merged_, cache_, cycle_stamp_, slots_moved_,
                 stats_.merge_allocs, &order_);
}

std::vector<size_t> ScheduleContext::AllocateWithMemos(std::span<const Task> pending,
                                                       BlockManager& blocks) {
  return RunAllocationWalk(pending, blocks, order_, version_now_, [&](size_t idx) -> TaskCache& {
    return cache_.at(slot_of_index_[idx]);
  });
}

std::vector<size_t> ScheduleContext::ScheduleBatch(std::span<const Task> pending,
                                                   BlockManager& blocks) {
  if (pending.empty()) {
    return {};
  }
  ++stats_.cycles;
  if (metric_ == GreedyMetric::kFcfs) {
    // Arrival order needs no scores, hence no cache: the engine is a pass-through.
    return AllocateInOrder(pending, blocks, FcfsOrder(pending));
  }

  ScheduleContextStats stats_at_entry = stats_;
  uint64_t previous_cycle = cycle_stamp_;
  ++cycle_stamp_;

  SyncBlocks(blocks);
  if (metric_ == GreedyMetric::kDpack) {
    MarkMembershipDirty(pending);
  }
  if (metric_ != GreedyMetric::kDpf) {
    // Dirty set complete (capacity + membership): stamp affected cached tasks stale.
    MarkStaleTasks(previous_cycle);
  }
  if (metric_ == GreedyMetric::kDpack) {
    RecomputeDirtyBestAlphas(pending);
  }

  // Reserving up front means no slot moves mid-cycle: slot indices collected by the score
  // pass stay valid through the pop and the allocation walk.
  slots_moved_ |= cache_.Reserve(pending.size());

  // Score pass: one cache lookup per task decides between reuse and rescore; rescored tasks
  // contribute a fresh entry under a new generation, lazily superseding their old one.
  slot_of_index_.resize(pending.size());
  bool duplicate_ids = false;
  for (size_t i = 0; i < pending.size(); ++i) {
    const Task& task = pending[i];
    size_t slot = cache_.FindOrInsert(task.id);
    slot_of_index_[i] = slot;
    TaskCache& cached = cache_.at(slot);
    if (cached.last_seen == cycle_stamp_) {
      duplicate_ids = true;
      break;
    }
    bool needs_index = false;
    bool rescore =
        ShouldRescore(cached, task, metric_, previous_cycle, cycle_stamp_, needs_index);
    cached.last_seen = cycle_stamp_;
    cached.index = i;
    if (!rescore) {
      ++stats_.tasks_reused;
      continue;
    }
    if (needs_index && metric_ != GreedyMetric::kDpf) {
      // New or re-resolved block list: register the task with each block so future dirty
      // blocks reach it through the reverse index. (DPF never consults the index.)
      for (BlockId j : task.blocks) {
        rindex_[static_cast<size_t>(j)].push_back(task.id);
      }
    }
    cached.score = ScoreTask(task);
    cached.generation = next_generation_++;
    cached.blocks_ptr = task.blocks.data();
    cached.blocks_len = task.blocks.size();
    fresh_.push_back({cached.score, task.arrival_time, task.id, cached.generation, slot});
    ++stats_.tasks_rescored;
  }
  if (duplicate_ids) {
    // Id-keyed caches cannot reproduce the recompute path's tie-breaking between tasks that
    // share an id; recompute this batch from scratch and start the cache over. The partial
    // pass's work is discarded, so its counters are too.
    Invalidate();
    stats_ = stats_at_entry;
    ++stats_.full_recomputes;
    return RecomputeScheduleBatch(metric_, eta_, pending, blocks);
  }

  PopHeapIntoOrder();
  std::vector<size_t> granted = AllocateWithMemos(pending, blocks);

  // Bound cache growth: once dead entries (granted or evicted tasks) dominate — long runs
  // with churn — rebuild keeping only the live ones. Heap entries re-resolve lazily.
  if (cache_.size() > 2 * pending.size() + 64) {
    cache_.PurgeNotSeen(cycle_stamp_);
    slots_moved_ = true;
  }
  return granted;
}

}  // namespace dpack
