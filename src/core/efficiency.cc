#include "src/core/efficiency.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/knapsack/single_dim.h"

namespace dpack {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

CapacitySnapshot::CapacitySnapshot(const BlockManager& blocks) : grid_(blocks.grid()) {
  available_.reserve(blocks.block_count());
  total_.reserve(blocks.block_count());
  for (size_t j = 0; j < blocks.block_count(); ++j) {
    available_.push_back(blocks.block(static_cast<BlockId>(j)).AvailableCurve());
    total_.push_back(blocks.block(static_cast<BlockId>(j)).capacity());
  }
}

CapacitySnapshot::CapacitySnapshot(AlphaGridPtr grid) : grid_(std::move(grid)) {
  DPACK_CHECK(grid_ != nullptr);
}

void CapacitySnapshot::Append(RdpCurve available, RdpCurve total) {
  available_.push_back(std::move(available));
  total_.push_back(std::move(total));
}

void CapacitySnapshot::RefreshAvailable(BlockId id, RdpCurve available) {
  DPACK_CHECK(id >= 0 && static_cast<size_t>(id) < available_.size());
  available_[static_cast<size_t>(id)] = std::move(available);
}

const RdpCurve& CapacitySnapshot::available(BlockId id) const {
  DPACK_CHECK(id >= 0 && static_cast<size_t>(id) < available_.size());
  return available_[static_cast<size_t>(id)];
}

const RdpCurve& CapacitySnapshot::total(BlockId id) const {
  DPACK_CHECK(id >= 0 && static_cast<size_t>(id) < total_.size());
  return total_[static_cast<size_t>(id)];
}

double DominantShare(const Task& task, const CapacitySnapshot& snapshot) {
  double dominant = 0.0;
  for (BlockId j : task.blocks) {
    const RdpCurve& cap = snapshot.total(j);
    bool usable = false;
    for (size_t a = 0; a < cap.size(); ++a) {
      if (cap.epsilon(a) > 0.0) {
        usable = true;
        dominant = std::max(dominant, task.demand.epsilon(a) / cap.epsilon(a));
      }
    }
    if (!usable && !task.demand.IsZero()) {
      return kInfinity;
    }
  }
  return dominant;
}

double DpfEfficiency(const Task& task, const CapacitySnapshot& snapshot) {
  double share = DominantShare(task, snapshot);
  if (share == 0.0) {
    return kInfinity;
  }
  if (share == kInfinity) {
    return 0.0;
  }
  return task.weight / share;
}

double AreaEfficiency(const Task& task, const CapacitySnapshot& snapshot) {
  double area = 0.0;
  for (BlockId j : task.blocks) {
    const RdpCurve& cap = snapshot.available(j);
    for (size_t a = 0; a < cap.size(); ++a) {
      double d = task.demand.epsilon(a);
      if (d == 0.0) {
        continue;
      }
      if (cap.epsilon(a) <= 0.0) {
        // Demand on an unusable order contributes nothing under the exists-alpha semantic;
        // the traditional interpretation (all orders binding) would make this infinite.
        // We skip it so the metric degrades gracefully on RDP instances.
        continue;
      }
      area += d / cap.epsilon(a);
    }
  }
  if (area == 0.0) {
    return kInfinity;
  }
  return task.weight / area;
}

double DpackEfficiency(const Task& task, const CapacitySnapshot& snapshot,
                       std::span<const size_t> best_alpha) {
  double cost = 0.0;
  for (BlockId j : task.blocks) {
    DPACK_CHECK(static_cast<size_t>(j) < best_alpha.size());
    size_t a = best_alpha[static_cast<size_t>(j)];
    double d = task.demand.epsilon(a);
    if (d == 0.0) {
      continue;
    }
    double c = snapshot.available(j).epsilon(a);
    if (c <= 0.0) {
      return 0.0;  // Demands budget at a depleted best order: least attractive.
    }
    cost += d / c;
  }
  if (cost == 0.0) {
    return kInfinity;
  }
  return task.weight / cost;
}

std::vector<size_t> ComputeBestAlphas(std::span<const Task> tasks,
                                      const CapacitySnapshot& snapshot, double eta) {
  DPACK_CHECK(eta > 0.0);
  size_t num_blocks = snapshot.block_count();

  // Group pending tasks by requested block.
  std::vector<std::vector<size_t>> tasks_of_block(num_blocks);
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (BlockId j : tasks[i].blocks) {
      DPACK_CHECK(static_cast<size_t>(j) < num_blocks);
      tasks_of_block[static_cast<size_t>(j)].push_back(i);
    }
  }

  std::vector<size_t> best_alpha(num_blocks, 0);
  for (size_t j = 0; j < num_blocks; ++j) {
    best_alpha[j] = BestAlphaForBlock(tasks, tasks_of_block[j],
                                      snapshot.available(static_cast<BlockId>(j)), eta);
  }
  return best_alpha;
}

size_t BestAlphaForBlock(std::span<const Task> tasks, std::span<const size_t> requesters,
                         const RdpCurve& available, double eta) {
  DPACK_CHECK(eta > 0.0);
  size_t num_orders = available.size();
  if (requesters.empty()) {
    // No demand: pick the order with the largest available capacity.
    size_t best = 0;
    for (size_t a = 1; a < num_orders; ++a) {
      if (available.epsilon(a) > available.epsilon(best)) {
        best = a;
      }
    }
    return best;
  }
  double best_value = -1.0;
  size_t best = 0;
  std::vector<KnapsackItem> items;
  items.reserve(requesters.size());
  for (size_t a = 0; a < num_orders; ++a) {
    if (available.epsilon(a) <= 0.0) {
      continue;
    }
    items.clear();
    for (size_t i : requesters) {
      items.push_back({tasks[i].weight, tasks[i].demand.epsilon(a)});
    }
    KnapsackSolution sol = SolveSingleBlock(items, available.epsilon(a), 2.0 / 3.0 * eta);
    if (sol.total_profit > best_value) {
      best_value = sol.total_profit;
      best = a;
    }
  }
  if (best_value < 0.0) {
    // Block fully depleted at every order; keep order 0 (tasks demanding it score 0).
    best = 0;
  }
  return best;
}

}  // namespace dpack
