// Online batch scheduling driver (§3.4): tasks and blocks arrive over virtual time, a batch
// scheduler runs every T time units against the unlocked fraction of block budgets, ungranted
// tasks wait (until their timeout), and unused unlocked budget carries over.
//
// The inner scheduler instance is owned by this driver and persists across RunCycle calls —
// deliberately, because an incremental GreedyScheduler carries a ScheduleContext whose cached
// scores and best-alpha solutions only pay off when the same context sees every consecutive
// cycle. The driver also never mutates a pending task between cycles (late block resolution
// excepted), which is the immutability contract the context's id-keyed cache relies on.

#ifndef SRC_CORE_ONLINE_SCHEDULER_H_
#define SRC_CORE_ONLINE_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/block/block_manager.h"
#include "src/core/metrics.h"
#include "src/core/scheduler.h"
#include "src/core/task.h"

namespace dpack {

struct OnlineSchedulerConfig {
  // Scheduling period T, in virtual time units (one block arrives per unit in the paper's
  // online experiments).
  double period = 1.0;
  // Unlocking denominator N: each scheduling step unlocks an additional 1/N of capacity.
  int64_t unlock_steps = 50;
  // Fair-share denominator for metrics; defaults to unlock_steps as in §6.3.
  int64_t fair_share_n = 0;
  // Shard count for the inner GreedyScheduler's incremental engine. 0 = auto: resolved at
  // construction by ResolveNumShards (scheduler.h) — hardware concurrency capped by the
  // blocks known at construction, so a driver built before any block arrives (every fresh
  // simulation) resolves to 1. The constructor is the single resolution point: it rewrites
  // this field with the resolved count (config().num_shards is always >= 1 afterwards) and
  // reshards the scheduler to it, so no downstream reader interprets 0 ad hoc.
  size_t num_shards = 0;
  // When set and the inner scheduler is a GreedyScheduler, switch its incremental engine to
  // the async per-shard-thread engine at construction (GreedySchedulerOptions::async).
  // false leaves the scheduler as constructed.
  bool async = false;
  // Admission control (the grant-service backpressure bound): when > 0, Submit rejects new
  // tasks while the pending queue already holds this many. 0 = unbounded (the library
  // default; the long-running service always sets a bound). Rejected tasks never enter the
  // queue or the metrics — the caller is told to retry/shed, and admission_rejected()
  // counts the rejections.
  size_t admission_queue_capacity = 0;
};

class OnlineScheduler {
 public:
  // `blocks` must outlive this object. Metrics accumulate internally; read via metrics().
  OnlineScheduler(std::unique_ptr<Scheduler> inner, BlockManager* blocks,
                  OnlineSchedulerConfig config);

  // Submits a task at task.arrival_time. If task.blocks is empty, requests the
  // task.num_recent_blocks most recent blocks (resolved now, or at the next cycle if no
  // block has arrived yet). Returns false — and absorbs nothing — when the admission bound
  // (config.admission_queue_capacity) is reached; unbounded configs always return true.
  bool Submit(Task task);

  // Runs one scheduling cycle at virtual time `now`: unlocks budget, evicts timed-out tasks,
  // runs the inner scheduler over the pending batch, and records metrics.
  // Returns the number of tasks granted this cycle.
  size_t RunCycle(double now);

  size_t pending_count() const { return pending_.size(); }
  // The pending queue in arrival (submission) order — read by the checkpoint subsystem.
  const std::vector<Task>& pending() const { return pending_; }
  // Ids of the tasks granted by the most recent RunCycle, in grant order. Cleared and
  // refilled every cycle; used to trace grant sequences for the recovery proofs.
  const std::vector<TaskId>& last_granted() const { return last_granted_; }
  const AllocationMetrics& metrics() const { return metrics_; }
  // Tasks turned away by the admission bound (kept out of AllocationMetrics: the snapshot
  // schema captures cluster state, and a rejected task never became cluster state).
  uint64_t admission_rejected() const { return admission_rejected_; }
  Scheduler& inner() { return *inner_; }
  const OnlineSchedulerConfig& config() const { return config_; }

  // Incremental-engine statistics of the inner scheduler, when it is a GreedyScheduler
  // running on an incremental engine; nullptr otherwise (recompute mode, Optimal, wrappers).
  const ScheduleContextStats* context_stats() const;

  // Returns ownership of the inner scheduler so it can outlive this driver (e.g. across
  // orchestrator runs), invalidating any incremental engine first — its caches are bound to
  // this driver's block manager. The driver must not be used after this call.
  std::unique_ptr<Scheduler> ReleaseInner();

  // Seeds the driver from checkpointed state: replaces the pending queue (in its captured
  // arrival order) and the cumulative metrics. Must run before any Submit/RunCycle on this
  // instance; the block manager passed at construction must hold the matching restored
  // block state (the queue references its block ids).
  void RestoreState(std::vector<Task> pending, AllocationMetrics metrics);

 private:
  void ResolveBlocks(Task& task);

  std::unique_ptr<Scheduler> inner_;
  BlockManager* blocks_;
  OnlineSchedulerConfig config_;
  std::vector<Task> pending_;
  std::vector<TaskId> last_granted_;
  AllocationMetrics metrics_;
  uint64_t admission_rejected_ = 0;
};

}  // namespace dpack

#endif  // SRC_CORE_ONLINE_SCHEDULER_H_
