#include "src/core/fairness.h"

#include "src/common/check.h"

namespace dpack {

bool IsFairShareTask(const Task& task, const BlockManager& blocks, int64_t fair_share_n) {
  DPACK_CHECK(fair_share_n >= 1);
  for (BlockId j : task.blocks) {
    const RdpCurve& capacity = blocks.block(j).capacity();
    bool within = false;
    for (size_t a = 0; a < capacity.size(); ++a) {
      double cap = capacity.epsilon(a);
      if (cap <= 0.0) {
        continue;
      }
      if (task.demand.epsilon(a) <= cap / static_cast<double>(fair_share_n)) {
        within = true;
        break;
      }
    }
    if (!within) {
      return false;
    }
  }
  return !task.blocks.empty();
}

}  // namespace dpack
