#include "src/core/metrics.h"

#include <sstream>

namespace dpack {

AllocationMetrics AllocationMetrics::Restore(size_t submitted, size_t allocated,
                                             size_t evicted, double submitted_weight,
                                             double allocated_weight,
                                             size_t submitted_fair_share,
                                             size_t allocated_fair_share,
                                             std::span<const double> delay_samples,
                                             const RunningStat::State& cycle_runtime) {
  AllocationMetrics metrics;
  metrics.submitted_ = submitted;
  metrics.allocated_ = allocated;
  metrics.evicted_ = evicted;
  metrics.submitted_weight_ = submitted_weight;
  metrics.allocated_weight_ = allocated_weight;
  metrics.submitted_fair_share_ = submitted_fair_share;
  metrics.allocated_fair_share_ = allocated_fair_share;
  metrics.delays_.Reserve(delay_samples.size());
  for (double delay : delay_samples) {
    metrics.delays_.Add(delay);
  }
  metrics.cycle_runtime_seconds_ = RunningStat::FromState(cycle_runtime);
  return metrics;
}

void AllocationMetrics::RecordSubmission(double weight, bool fair_share) {
  ++submitted_;
  submitted_weight_ += weight;
  if (fair_share) {
    ++submitted_fair_share_;
  }
}

void AllocationMetrics::RecordAllocation(double weight, double delay, bool fair_share) {
  ++allocated_;
  allocated_weight_ += weight;
  delays_.Add(delay);
  if (fair_share) {
    ++allocated_fair_share_;
  }
}

void AllocationMetrics::RecordEviction(double /*weight*/) { ++evicted_; }

void AllocationMetrics::RecordCycleRuntime(double seconds) {
  cycle_runtime_seconds_.Add(seconds);
}

double AllocationMetrics::AllocatedFairShareFraction() const {
  if (allocated_ == 0) {
    return 0.0;
  }
  return static_cast<double>(allocated_fair_share_) / static_cast<double>(allocated_);
}

std::string AllocationMetrics::Summary() const {
  std::ostringstream os;
  os << "submitted=" << submitted_ << " allocated=" << allocated_ << " evicted=" << evicted_
     << " allocated_weight=" << allocated_weight_;
  if (delays_.count() > 0) {
    os << " median_delay=" << delays_.median();
  }
  return os.str();
}

}  // namespace dpack
