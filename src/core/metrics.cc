#include "src/core/metrics.h"

#include <sstream>

namespace dpack {

void AllocationMetrics::RecordSubmission(double weight, bool fair_share) {
  ++submitted_;
  submitted_weight_ += weight;
  if (fair_share) {
    ++submitted_fair_share_;
  }
}

void AllocationMetrics::RecordAllocation(double weight, double delay, bool fair_share) {
  ++allocated_;
  allocated_weight_ += weight;
  delays_.Add(delay);
  if (fair_share) {
    ++allocated_fair_share_;
  }
}

void AllocationMetrics::RecordEviction(double /*weight*/) { ++evicted_; }

void AllocationMetrics::RecordCycleRuntime(double seconds) {
  cycle_runtime_seconds_.Add(seconds);
}

double AllocationMetrics::AllocatedFairShareFraction() const {
  if (allocated_ == 0) {
    return 0.0;
  }
  return static_cast<double>(allocated_fair_share_) / static_cast<double>(allocated_);
}

std::string AllocationMetrics::Summary() const {
  std::ostringstream os;
  os << "submitted=" << submitted_ << " allocated=" << allocated_ << " evicted=" << evicted_
     << " allocated_weight=" << allocated_weight_;
  if (delays_.count() > 0) {
    os << " median_delay=" << delays_.median();
  }
  return os.str();
}

}  // namespace dpack
