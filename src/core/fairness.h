// Fair-share classification used by the efficiency-fairness analysis (§6.3).
//
// DPF guarantees allocation (budget permitting) to tasks whose demand does not exceed their
// "fair share": 1/N of the epsilon-normalized block budget, where N is the unlocking
// denominator. A task qualifies when, on every block it requests, some usable order alpha
// has demand(alpha) <= capacity(alpha) / N.

#ifndef SRC_CORE_FAIRNESS_H_
#define SRC_CORE_FAIRNESS_H_

#include <cstdint>

#include "src/block/block_manager.h"
#include "src/core/task.h"

namespace dpack {

// True iff `task` demands no more than the 1/fair_share_n fraction of every requested
// block's total capacity at some order. Requires resolved task.blocks.
bool IsFairShareTask(const Task& task, const BlockManager& blocks, int64_t fair_share_n);

}  // namespace dpack

#endif  // SRC_CORE_FAIRNESS_H_
