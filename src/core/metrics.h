// Experiment metrics collected across a scheduling run (§6.1): global efficiency (count and
// weighted), scheduling delay, scheduler runtime, and fair-share breakdown.

#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <cstddef>
#include <span>
#include <string>

#include "src/common/stats.h"

namespace dpack {

class AllocationMetrics {
 public:
  // Rebuilds a metrics accumulator from checkpointed state (see
  // src/orchestrator/checkpoint.h). `delay_samples` are re-added in the given order, so a
  // capture taken before any quantile query (which sorts the sample set in place) restores
  // the delays byte-identically; the cycle-runtime accumulator is restored field-exact.
  static AllocationMetrics Restore(size_t submitted, size_t allocated, size_t evicted,
                                   double submitted_weight, double allocated_weight,
                                   size_t submitted_fair_share, size_t allocated_fair_share,
                                   std::span<const double> delay_samples,
                                   const RunningStat::State& cycle_runtime);

  void RecordSubmission(double weight, bool fair_share);
  // `delay` is allocation time minus arrival time, in virtual time units.
  void RecordAllocation(double weight, double delay, bool fair_share);
  void RecordEviction(double weight);
  void RecordCycleRuntime(double seconds);

  size_t submitted() const { return submitted_; }
  size_t allocated() const { return allocated_; }
  size_t evicted() const { return evicted_; }
  double submitted_weight() const { return submitted_weight_; }
  double allocated_weight() const { return allocated_weight_; }

  size_t submitted_fair_share() const { return submitted_fair_share_; }
  size_t allocated_fair_share() const { return allocated_fair_share_; }
  // Fraction of allocated tasks that are fair-share tasks (§6.3's fairness measure).
  double AllocatedFairShareFraction() const;

  const SampleSet& delays() const { return delays_; }
  const RunningStat& cycle_runtime_seconds() const { return cycle_runtime_seconds_; }
  double total_runtime_seconds() const { return cycle_runtime_seconds_.sum(); }

  std::string Summary() const;

 private:
  size_t submitted_ = 0;
  size_t allocated_ = 0;
  size_t evicted_ = 0;
  double submitted_weight_ = 0.0;
  double allocated_weight_ = 0.0;
  size_t submitted_fair_share_ = 0;
  size_t allocated_fair_share_ = 0;
  SampleSet delays_;
  RunningStat cycle_runtime_seconds_;
};

}  // namespace dpack

#endif  // SRC_CORE_METRICS_H_
