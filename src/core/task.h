// A DP task: one computation (model training, statistic) demanding RDP budget from a set of
// privacy blocks (§2.3).

#ifndef SRC_CORE_TASK_H_
#define SRC_CORE_TASK_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/block/privacy_block.h"
#include "src/rdp/rdp_curve.h"

namespace dpack {

using TaskId = int64_t;

struct Task {
  TaskId id = 0;
  // Utility to the organization if scheduled (w_i); 1 when maximizing task count.
  double weight = 1.0;
  double arrival_time = 0.0;
  // Maximum time the task may wait in the pending queue before eviction (§3.4), in virtual
  // time units. Infinity = never evicted.
  double timeout = std::numeric_limits<double>::infinity();
  // The task's RDP demand curve, charged to every requested block (d_{i j alpha} = demand for
  // all j in `blocks`, zero elsewhere).
  RdpCurve demand;
  // Requested block ids. The paper's workloads request the most recent blocks; generators
  // leave this empty and set `num_recent_blocks`, resolved at submission time.
  std::vector<BlockId> blocks;
  // When `blocks` is empty: number of most-recent blocks to request at submission.
  size_t num_recent_blocks = 0;

  Task(TaskId task_id, double task_weight, RdpCurve task_demand)
      : id(task_id), weight(task_weight), demand(std::move(task_demand)) {}

  std::string DebugString() const;
};

}  // namespace dpack

#endif  // SRC_CORE_TASK_H_
