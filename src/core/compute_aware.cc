#include "src/core/compute_aware.h"

#include "src/common/check.h"

namespace dpack {

void ComputeDemandMap::Set(TaskId id, double gpu_hours) {
  DPACK_CHECK(gpu_hours >= 0.0);
  demand_[id] = gpu_hours;
}

double ComputeDemandMap::Get(TaskId id) const {
  auto it = demand_.find(id);
  return it == demand_.end() ? 0.0 : it->second;
}

ComputeAwareScheduler::ComputeAwareScheduler(std::unique_ptr<Scheduler> inner,
                                             const ComputeDemandMap* demands,
                                             ComputeAwareOptions options)
    : inner_(std::move(inner)), demands_(demands), options_(options) {
  DPACK_CHECK(inner_ != nullptr);
  DPACK_CHECK(demands_ != nullptr);
  DPACK_CHECK(options_.gpu_hours_per_cycle > 0.0);
}

std::vector<size_t> ComputeAwareScheduler::ScheduleBatch(std::span<const Task> pending,
                                                         BlockManager& blocks) {
  // Obtain the inner policy's grant sequence on a scratch copy of the block state, then
  // replay it against the real blocks under the compute cap. Tasks the inner policy would
  // grant but the cap rejects are deferred: their privacy budget stays uncommitted, so they
  // compete again next cycle.
  BlockManager scratch = blocks.Clone();
  std::vector<size_t> inner_grants = inner_->ScheduleBatch(pending, scratch);

  last_cycle_gpu_hours_ = 0.0;
  last_cycle_compute_deferred_ = 0;
  std::vector<size_t> granted;
  granted.reserve(inner_grants.size());
  for (size_t idx : inner_grants) {
    const Task& task = pending[idx];
    bool privacy_ok = true;
    for (BlockId j : task.blocks) {
      if (!blocks.block(j).CanAccept(task.demand)) {
        privacy_ok = false;
        break;
      }
    }
    if (!privacy_ok) {
      continue;  // Can only happen when earlier compute-skips reshuffled feasibility.
    }
    double gpu = demands_->Get(task.id);
    if (last_cycle_gpu_hours_ + gpu > options_.gpu_hours_per_cycle) {
      ++last_cycle_compute_deferred_;
      continue;
    }
    for (BlockId j : task.blocks) {
      blocks.block(j).Commit(task.demand);
    }
    last_cycle_gpu_hours_ += gpu;
    granted.push_back(idx);
  }
  return granted;
}

}  // namespace dpack
