#include "src/core/sharded_schedule_context.h"

#include <algorithm>

#include "src/common/check.h"

namespace dpack {

ShardedScheduleContext::ShardedScheduleContext(GreedyMetric metric, double eta,
                                               size_t num_shards, BlockPartition partition)
    : ShardedScheduleContext(metric, eta, num_shards,
                             /*pool_workers=*/num_shards >= 1 ? num_shards - 1 : 0,
                             partition) {}

ShardedScheduleContext::ShardedScheduleContext(GreedyMetric metric, double eta,
                                               size_t num_shards, size_t pool_workers,
                                               BlockPartition partition)
    : metric_(metric),
      eta_(eta),
      num_shards_(num_shards),
      partition_mode_(partition),
      pool_(pool_workers),
      shards_(num_shards) {
  DPACK_CHECK(eta_ > 0.0);
  DPACK_CHECK_MSG(num_shards_ >= 1, "ShardedScheduleContext needs at least one shard");
  stats_.shards = num_shards_;
}

void ShardedScheduleContext::Invalidate() {
  bound_ = nullptr;
  partition_.reset();
  snapshot_.reset();
  last_version_.clear();
  version_now_.clear();
  dirty_stamp_.clear();
  member_sig_.clear();
  sig_scratch_.clear();
  touched_stamp_.clear();
  best_alpha_.clear();
  shards_.assign(num_shards_, ShardContext{});
  slot_of_index_.clear();
  order_.clear();
  cursor_.clear();
  cycle_stamp_ = 0;
}

void ShardedScheduleContext::BindManager(BlockManager& blocks) {
  if (bound_ == &blocks) {
    return;
  }
  DPACK_CHECK_MSG(bound_ == nullptr,
                  "engine already bound to another manager: call Invalidate() first");
  bound_ = &blocks;
  partition_.emplace(&blocks, num_shards_, partition_mode_);
  snapshot_.emplace(blocks.grid());
}

void ShardedScheduleContext::SyncArrivals(BlockManager& blocks) {
  partition_->Sync();
  size_t count = blocks.block_count();
  size_t known = last_version_.size();
  for (ShardContext& shard : shards_) {
    shard.dirty_ids.clear();
  }
  dirty_stamp_.resize(count, 0);
  touched_stamp_.resize(count, 0);
  sig_scratch_.resize(count, kMemberSigSeed);
  for (size_t g = known; g < count; ++g) {
    const PrivacyBlock& b = blocks.block(static_cast<BlockId>(g));
    snapshot_->Append(b.AvailableCurve(), b.capacity());
    last_version_.push_back(b.version());
    version_now_.push_back(b.version());
    member_sig_.push_back(kMemberSigSeed);
    best_alpha_.push_back(0);
    MarkShardDirty(static_cast<BlockId>(g));
  }
}

void ShardedScheduleContext::SyncShardBlocks(size_t s, const BlockManager& blocks,
                                             std::span<const Task> pending,
                                             size_t refresh_limit) {
  ShardContext& shard = shards_[s];
  // The partition's Sync computed the exact changed-id list per shard — O(changed), via
  // the manager's version tree — so the refresh touches only those snapshot entries.
  // Arrivals were appended fresh (and marked dirty) by SyncArrivals; the changed list
  // never contains them.
  for (BlockId g : partition_->shard_changed(s)) {
    size_t gi = static_cast<size_t>(g);
    DPACK_CHECK(gi < refresh_limit);
    const PrivacyBlock& b = blocks.block(g);
    last_version_[gi] = b.version();
    version_now_[gi] = b.version();
    snapshot_->RefreshAvailable(g, b.AvailableCurve());
    MarkShardDirty(g);
    ++shard.partial.blocks_refreshed;
  }
  if (metric_ != GreedyMetric::kDpack) {
    return;
  }
  // Membership signatures for owned blocks: best alphas depend on the requester set, so a
  // membership change (arrival, grant, eviction) dirties a block even when no capacity
  // changed. Every shard scans the whole batch but mixes only its owned blocks, so the
  // per-block signature streams are identical to the single-shard engine's. Touched
  // entries are seeded lazily, and blocks that *lost* all requesters are handled off the
  // owned active list — O(batch refs + prev active), never O(members).
  shard.touched_ids.clear();
  for (const Task& task : pending) {
    for (BlockId j : task.blocks) {
      size_t ji = static_cast<size_t>(j);
      DPACK_CHECK(j >= 0 && ji < sig_scratch_.size());
      if (partition_->ShardOf(j) != s) {
        continue;
      }
      if (touched_stamp_[ji] != cycle_stamp_) {
        touched_stamp_[ji] = cycle_stamp_;
        shard.touched_ids.push_back(j);
        sig_scratch_[ji] = kMemberSigSeed;
      }
      sig_scratch_[ji] = MemberSigMix(sig_scratch_[ji], static_cast<uint64_t>(task.id));
    }
  }
  for (BlockId g : shard.active_ids) {
    size_t gi = static_cast<size_t>(g);
    if (touched_stamp_[gi] != cycle_stamp_ && member_sig_[gi] != kMemberSigSeed) {
      member_sig_[gi] = kMemberSigSeed;
      MarkShardDirty(g);
    }
  }
  shard.active_ids.clear();
  for (BlockId g : shard.touched_ids) {
    size_t gi = static_cast<size_t>(g);
    if (sig_scratch_[gi] != member_sig_[gi]) {
      member_sig_[gi] = sig_scratch_[gi];
      MarkShardDirty(g);
    }
    if (member_sig_[gi] != kMemberSigSeed) {
      shard.active_ids.push_back(g);
    }
  }
  // Requester lists and best-alpha subproblems for the dirty owned blocks. Requesters are
  // collected in batch order, matching ComputeBestAlphas' item order exactly.
  if (shard.dirty_ids.empty()) {
    return;
  }
  if (shard.requesters.size() < partition_->shard_members(s).size()) {
    shard.requesters.resize(partition_->shard_members(s).size());
  }
  for (BlockId g : shard.dirty_ids) {
    shard.requesters[partition_->LocalIndex(g)].clear();
  }
  for (size_t i = 0; i < pending.size(); ++i) {
    for (BlockId j : pending[i].blocks) {
      if (partition_->ShardOf(j) == s &&
          dirty_stamp_[static_cast<size_t>(j)] == cycle_stamp_) {
        shard.requesters[partition_->LocalIndex(j)].push_back(i);
      }
    }
  }
  // Per-block solves are independent, so dirty-list order (vs member order) is immaterial.
  for (BlockId g : shard.dirty_ids) {
    size_t gi = static_cast<size_t>(g);
    best_alpha_[gi] = BestAlphaForBlock(pending, shard.requesters[partition_->LocalIndex(g)],
                                        snapshot_->available(g), eta_);
    ++shard.partial.best_alpha_recomputes;
  }
}

double ShardedScheduleContext::ScoreTask(const Task& task) const {
  return ScoreGreedyTask(metric_, task, *snapshot_, best_alpha_);
}

bool ShardedScheduleContext::ScoreOneTask(ShardContext& shard, std::span<const Task> pending,
                                          size_t i, uint64_t previous_cycle) {
  const Task& task = pending[i];
  size_t slot = shard.cache.FindOrInsert(task.id);
  slot_of_index_[i] = slot;
  TaskCache& cached = shard.cache.at(slot);
  if (cached.last_seen == cycle_stamp_) {
    // Duplicate ids map to the same home shard, so local detection covers the batch.
    shard.duplicate = true;
    return false;
  }
  bool needs_index = false;
  bool rescore =
      ShouldRescore(cached, task, metric_, previous_cycle, cycle_stamp_, needs_index);
  cached.last_seen = cycle_stamp_;
  cached.index = i;
  if (!rescore) {
    ++shard.partial.tasks_reused;
    return true;
  }
  if (needs_index && metric_ != GreedyMetric::kDpf) {
    // New or re-resolved block list: register the task in its home shard's reverse index
    // under each requested block (any shard's block — the index is task-sharded).
    for (BlockId j : task.blocks) {
      shard.rindex[static_cast<size_t>(j)].push_back(task.id);
    }
  }
  cached.score = ScoreTask(task);
  cached.generation = shard.next_generation++;
  cached.blocks_ptr = task.blocks.data();
  cached.blocks_len = task.blocks.size();
  shard.fresh.push_back({cached.score, task.arrival_time, task.id, cached.generation, slot});
  ++shard.partial.tasks_rescored;
  return true;
}

void ShardedScheduleContext::MarkStaleShardTasks(ShardContext& shard,
                                                 std::span<const BlockId> dirty_ids,
                                                 uint64_t previous_cycle) {
  for (BlockId id : dirty_ids) {
    std::vector<TaskId>& tasks = shard.rindex[static_cast<size_t>(id)];
    for (size_t i = 0; i < tasks.size();) {
      size_t slot = shard.cache.Find(tasks[i]);
      if (slot == TaskCacheMap::kNpos || shard.cache.at(slot).last_seen != previous_cycle) {
        tasks[i] = tasks.back();  // Dead entry (granted, evicted, or purged): prune.
        tasks.pop_back();
        continue;
      }
      shard.cache.at(slot).stale_stamp = cycle_stamp_;
      ++i;
    }
  }
}

void ShardedScheduleContext::ScoreShardTasks(size_t s, std::span<const Task> pending,
                                             uint64_t previous_cycle) {
  ShardContext& shard = shards_[s];
  if (metric_ != GreedyMetric::kDpf) {
    // Every shard's phase-2 dirty list is complete and visible (the pool join): stamp this
    // shard's affected home tasks stale before their reuse-vs-rescore decisions.
    if (shard.rindex.size() < last_version_.size()) {
      shard.rindex.resize(last_version_.size());
    }
    for (size_t src = 0; src < num_shards_; ++src) {
      MarkStaleShardTasks(shard, shards_[src].dirty_ids, previous_cycle);
    }
  }
  shard.slots_moved |= shard.cache.Reserve(shard.task_indices.size());
  for (size_t i : shard.task_indices) {
    if (!ScoreOneTask(shard, pending, i, previous_cycle)) {
      return;
    }
  }
  MergeShardHeap(shard);
}

void ShardedScheduleContext::MergeShardHeap(ShardContext& shard) {
  // The per-shard half of the single-shard engine's PopHeapIntoOrder (shared
  // MergeScoreHeap); no order is emitted here — the global order comes from MergeOrder's
  // N-way merge over the shard heaps.
  MergeScoreHeap(shard.heap, shard.fresh, shard.merged, shard.cache, cycle_stamp_,
                 shard.slots_moved, shard.partial.merge_allocs, /*order_out=*/nullptr);
}

void ShardedScheduleContext::MergeOrder() {
  // Deterministic N-way merge of the per-shard heaps (each fully sorted, all entries live
  // this cycle). HeapEntryBefore is a strict total order for unique task ids, so the merged
  // sequence is the unique reference sort order — independent of shard count and timing.
  order_.clear();
  cursor_.assign(num_shards_, 0);
  while (true) {
    size_t best = num_shards_;
    for (size_t s = 0; s < num_shards_; ++s) {
      if (cursor_[s] >= shards_[s].heap.size()) {
        continue;
      }
      if (best == num_shards_ ||
          HeapEntryBefore(shards_[s].heap[cursor_[s]], shards_[best].heap[cursor_[best]])) {
        best = s;
      }
    }
    if (best == num_shards_) {
      break;
    }
    const HeapEntry& entry = shards_[best].heap[cursor_[best]++];
    order_.push_back(shards_[best].cache.at(entry.slot).index);
  }
}

std::vector<size_t> ShardedScheduleContext::AllocateWithMemos(std::span<const Task> pending,
                                                              BlockManager& blocks) {
  // The shared CANRUN walk, with the reject memos living in each task's home-shard cache.
  // Sequential: the walk's commits are order-dependent.
  return RunAllocationWalk(pending, blocks, order_, version_now_, [&](size_t idx) -> TaskCache& {
    return shards_[HomeShard(pending[idx].id)].cache.at(slot_of_index_[idx]);
  });
}

bool ShardedScheduleContext::RunPhases(std::span<const Task> pending,
                                       const BlockManager& blocks, size_t refresh_limit,
                                       uint64_t previous_cycle) {
  // Phase 2: per-shard block refresh (disjoint writes into the shared id-indexed arrays;
  // the pool join publishes them to the scoring phase).
  pool_.ParallelFor(num_shards_,
                    [&](size_t s) { SyncShardBlocks(s, blocks, pending, refresh_limit); });
  // Phase 3: per-shard score pass and local heap merge.
  pool_.ParallelFor(num_shards_,
                    [&](size_t s) { ScoreShardTasks(s, pending, previous_cycle); });
  return true;
}

std::vector<size_t> ShardedScheduleContext::ScheduleBatch(std::span<const Task> pending,
                                                          BlockManager& blocks) {
  if (pending.empty()) {
    return {};
  }
  ++stats_.cycles;
  if (metric_ == GreedyMetric::kFcfs) {
    // Arrival order needs no scores, hence no shards: the engine is a pass-through.
    return RecomputeScheduleBatch(metric_, eta_, pending, blocks);
  }

  ScheduleContextStats stats_at_entry = stats_;
  uint64_t previous_cycle = cycle_stamp_;
  ++cycle_stamp_;

  BindManager(blocks);
  size_t refresh_limit = last_version_.size();
  SyncArrivals(blocks);

  // Partition the batch by home shard, sequentially, so each shard can reserve its cache up
  // front (no slot moves mid-cycle). Done before the phases fan out: the score pass reads
  // its shard's task_indices, and the async engine's threads start from them directly.
  for (ShardContext& shard : shards_) {
    shard.task_indices.clear();
    shard.duplicate = false;
  }
  for (size_t i = 0; i < pending.size(); ++i) {
    shards_[HomeShard(pending[i].id)].task_indices.push_back(i);
  }
  slot_of_index_.resize(pending.size());

  bool phases_ok = RunPhases(pending, blocks, refresh_limit, previous_cycle);

  bool duplicate_ids = false;
  for (const ShardContext& shard : shards_) {
    duplicate_ids |= shard.duplicate;
  }
  if (!phases_ok || duplicate_ids) {
    // Duplicates: id-keyed caches cannot reproduce the recompute path's tie-breaking
    // between tasks that share an id. Stale publication (async engine): the cycle's shard
    // work is untrustworthy. Either way, recompute this batch from scratch and start the
    // caches over — grants stay exactly the reference sequence.
    Invalidate();
    stats_ = stats_at_entry;
    ++stats_.full_recomputes;
    stats_.async_stale_publishes += pending_stale_publishes_;
    stats_.async_wasted_rescores += pending_wasted_rescores_;
    pending_stale_publishes_ = 0;
    pending_wasted_rescores_ = 0;
    return RecomputeScheduleBatch(metric_, eta_, pending, blocks);
  }

  // version_now_ is already current: arrivals appended it, phase 2 overwrote exactly the
  // changed entries (owner-written; published by RunPhases returning), and the previous
  // walk's commits kept it in sync in between — no O(blocks) mirror copy.
  MergeOrder();
  std::vector<size_t> granted = AllocateWithMemos(pending, blocks);

  for (ShardContext& shard : shards_) {
    // Bound cache growth per shard, as the single-shard engine does globally.
    if (shard.cache.size() > 2 * shard.task_indices.size() + 64) {
      shard.cache.PurgeNotSeen(cycle_stamp_);
      shard.slots_moved = true;
    }
    stats_.Accumulate(shard.partial);
    shard.partial = ScheduleContextStats{};
  }
  return granted;
}

}  // namespace dpack
