#include "src/core/async_schedule_engine.h"

#include "src/common/check.h"
#include "src/common/cpu_affinity.h"

namespace dpack {

AsyncScheduleEngine::AsyncScheduleEngine(GreedyMetric metric, double eta, size_t num_shards,
                                         BlockPartition partition, HeapPublishMode publish,
                                         bool pin_threads)
    : ShardedScheduleContext(metric, eta, num_shards, /*pool_workers=*/0, partition),
      publish_(publish),
      pin_threads_(pin_threads),
      stamps_(num_shards),
      ring_stamps_(num_shards),
      late_(num_shards) {
  rings_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    rings_.push_back(std::make_unique<SpscRing<ClockStamp>>());
  }
  threads_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    threads_.emplace_back([this, s] { ShardLoop(s); });
  }
}

AsyncScheduleEngine::~AsyncScheduleEngine() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  dispatch_cv_.NotifyAll();
  barrier_cv_.NotifyAll();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

bool AsyncScheduleEngine::AllBlocksHome(const Task& task, size_t s) const {
  for (BlockId j : task.blocks) {
    if (partition_->ShardOf(j) != s) {
      return false;
    }
  }
  return true;
}

void AsyncScheduleEngine::ShardLoop(size_t s) {
  // Pin before any scheduling work (best-effort; see cpu_affinity.h). Running pinned means
  // every buffer this thread grows from here on — its shard's heap, merge scratch, cache —
  // is first-touched from its core, so default first-touch placement keeps the shard's
  // working set local. A denial is counted, never fatal: the loop below is identical
  // pinned or not.
  if (pin_threads_) {
    int core = PickShardCore(s);
    if (core < 0 || !PinCurrentThreadToCore(core)) {
      pin_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  uint64_t seen = 0;
  MutexLock lock(mu_);
  while (true) {
    while (!stop_ && dispatch_seq_ == seen) {
      dispatch_cv_.Wait(mu_);
    }
    if (stop_) {
      return;  // `lock` releases mu_.
    }
    seen = dispatch_seq_;
    std::span<const Task> pending = cycle_pending_;
    const BlockManager* blocks = cycle_blocks_;
    size_t refresh_limit = cycle_refresh_limit_;
    uint64_t previous_cycle = cycle_previous_;
    lock.Unlock();

    // Stamp the shard's clocks (lock-free atomic reads) before touching any capacity
    // state; the publication step revalidates the stamp — the quiesce proof that no Sync
    // ran while this snapshot was built.
    ClockStamp stamp;
    stamp.epoch = partition_->shard_epoch(s);
    stamp.version = partition_->shard_version(s);

    // Phase 2 body: refresh owned blocks (shard-owned writes only).
    SyncShardBlocks(s, *blocks, pending, refresh_limit);

    // Early score pass, before the refresh fence: tasks whose inputs this shard already
    // owns. DPF reads only total capacities (immutable after the sequential arrival
    // append), so every DPF home task qualifies; for the capacity-aware metrics only tasks
    // whose block list lives entirely in this shard do (their snapshot entries, dirty
    // flags, and best alphas were finalized by this thread's own refresh).
    ShardContext& shard = shards_[s];
    std::vector<size_t>& late = late_[s];
    late.clear();
    if (metric_ != GreedyMetric::kDpf) {
      // This shard's own dirty list is complete (its refresh above, plus the arrivals the
      // driver appended before dispatch): mark its home tasks stale before the early pass.
      // That covers every early-eligible task — all of its blocks live in this shard, so no
      // foreign dirty list can affect its score. Foreign lists are walked after the fence.
      if (shard.rindex.size() < last_version_.size()) {
        shard.rindex.resize(last_version_.size());
      }
      MarkStaleShardTasks(shard, shard.dirty_ids, previous_cycle);
    }
    shard.slots_moved |= shard.cache.Reserve(shard.task_indices.size());
    bool scoring_ok = true;
    for (size_t i : shard.task_indices) {
      if (metric_ == GreedyMetric::kDpf || AllBlocksHome(pending[i], s)) {
        uint64_t rescored_before = shard.partial.tasks_rescored;
        if (!ScoreOneTask(shard, pending, i, previous_cycle)) {
          scoring_ok = false;  // Duplicate id; flag is set, batch will fall back.
          break;
        }
        shard.partial.async_early_scores += shard.partial.tasks_rescored - rescored_before;
      } else {
        late.push_back(i);
      }
    }

    // Refresh fence: every shard's phase-2 writes must happen-before any cross-shard
    // scoring reads. The last thread through releases the others.
    lock.Lock();
    if (++refresh_done_ == num_shards_) {
      barrier_cv_.NotifyAll();
    } else {
      while (refresh_done_ != num_shards_ && !stop_) {
        barrier_cv_.Wait(mu_);
      }
      if (stop_) {
        return;  // `lock` releases mu_.
      }
    }
    lock.Unlock();

    // Foreign shards' dirty lists are now visible (their phase-2 writes happened-before
    // the fence): finish the marking pass, then the late score pass and local heap merge.
    if (metric_ != GreedyMetric::kDpf) {
      for (size_t src = 0; src < num_shards_; ++src) {
        if (src != s) {
          MarkStaleShardTasks(shard, shards_[src].dirty_ids, previous_cycle);
        }
      }
    }
    if (scoring_ok) {
      for (size_t i : late) {
        if (!ScoreOneTask(shard, pending, i, previous_cycle)) {
          scoring_ok = false;
          break;
        }
      }
    }
    if (scoring_ok && !shard.duplicate) {
      MergeShardHeap(shard);
    }

    // Revalidate the clock stamp: versions are monotone, so unchanged (epoch, version)
    // proves the shard's whole capacity state is still exactly what the scores saw.
    stamp.valid = stamp.epoch == partition_->shard_epoch(s) &&
                  stamp.version == partition_->shard_version(s);

    if (publish_ == HeapPublishMode::kRing) {
      // Publish, ring mode: one epoch-stamped push onto this shard's private SPSC ring.
      // The push's release store makes the heap, the counters (incremented before the
      // push), and the stamp visible to the driver's acquire pop — no lock from the fence
      // to the next dispatch wait. The ring can only be full if a driver stopped draining
      // (a protocol violation); the retry spin is counted so the bench gate would catch it.
      ++shard.partial.ring_publishes;
      while (!rings_[s]->TryPush(seen, stamp)) {
        ++shard.partial.ring_retries;
        std::this_thread::yield();
      }
      lock.Lock();
    } else {
      // Publish, mutex mode: heap + stamp become visible through the mutex handoff.
      lock.Lock();
      stamps_[s] = stamp;
      if (++published_ == num_shards_) {
        done_cv_.NotifyOne();
      }
    }
  }
}

bool AsyncScheduleEngine::RunPhases(std::span<const Task> pending, const BlockManager& blocks,
                                    size_t refresh_limit, uint64_t previous_cycle) {
  uint64_t seq = 0;
  {
    MutexLock lock(mu_);
    cycle_pending_ = pending;
    cycle_blocks_ = &blocks;
    cycle_refresh_limit_ = refresh_limit;
    cycle_previous_ = previous_cycle;
    refresh_done_ = 0;
    published_ = 0;
    seq = ++dispatch_seq_;
  }
  dispatch_cv_.NotifyAll();

  // Quiesce: consume every shard's publication for this cycle, then validate every stamp.
  uint64_t stale = 0;
  if (publish_ == HeapPublishMode::kRing) {
    // Pop each ring until this cycle's frame (epoch == seq) arrives. A frame from any
    // other epoch is a stale publication — impossible under the cycle protocol, handled
    // exactly like a stale stamp: counted, discarded, cycle abandoned below.
    ring_done_.assign(num_shards_, 0);
    size_t remaining = num_shards_;
    while (remaining > 0) {
      bool progressed = false;
      for (size_t s = 0; s < num_shards_; ++s) {
        if (ring_done_[s] != 0) {
          continue;
        }
        uint64_t epoch = 0;
        ClockStamp stamp;
        while (rings_[s]->TryPop(&epoch, &stamp)) {
          progressed = true;
          if (epoch == seq) {
            ring_stamps_[s] = stamp;
            ring_done_[s] = 1;
            --remaining;
            break;
          }
          ++stale;
        }
      }
      if (!progressed) {
        std::this_thread::yield();
      }
    }
    MutexLock lock(mu_);
    cycle_pending_ = {};
    cycle_blocks_ = nullptr;
    for (const ClockStamp& stamp : ring_stamps_) {
      if (!stamp.valid) {
        ++stale;
      }
    }
  } else {
    MutexLock lock(mu_);
    while (published_ != num_shards_) {
      done_cv_.Wait(mu_);
    }
    cycle_pending_ = {};
    cycle_blocks_ = nullptr;
    for (const ClockStamp& stamp : stamps_) {
      if (!stamp.valid) {
        ++stale;
      }
    }
  }

  // Every shard published this cycle, and each thread's pin attempt preceded its first
  // publication — so this read is complete once any cycle finishes. Re-read every cycle
  // (idempotent) so the fallback path's stats restore can never lose it for good.
  stats_.pin_failures = pin_failures_.load(std::memory_order_relaxed);

  if (stale > 0) {
    // A Sync ran while snapshots were being built — the cycle protocol was violated.
    // Abandon the cycle (ScheduleBatch falls back to the recompute reference) and account
    // for the discarded speculation.
    pending_stale_publishes_ = stale;
    uint64_t wasted = 0;
    for (const ShardContext& shard : shards_) {
      wasted += shard.partial.tasks_rescored;
    }
    pending_wasted_rescores_ = wasted;
    return false;
  }
  return true;
}

}  // namespace dpack
