// Sharded incremental scheduling engine (the ROADMAP's "sharded BlockManager" item): the
// multi-core successor of ScheduleContext, partitioning the incremental engine's state
// across N shards and running the per-cycle refresh/rescore work on a worker pool, while
// producing *exactly* the same grant sequence as the single-shard engine (and hence as
// RecomputeScheduleBatch) — pinned by tests/core/incremental_equivalence_test.cc.
//
// Partitioning (see src/block/sharded_block_manager.h for the block side):
//   - Blocks: assigned to shards by the configured BlockPartition (round-robin g mod N, or
//     64-block id-range chunks for locality). Each shard owns its blocks' dirty detection,
//     snapshot refreshes, membership signatures, and best-alpha recomputes; all of it
//     writes only shard-owned entries of the shared, id-indexed arrays, so phases need no
//     locks. The partition never feeds the merge order, so grants are byte-identical under
//     either mode.
//   - Tasks: task i's home shard is id mod N. Each shard owns its home tasks' score cache
//     and score heap — a per-shard ScheduleContext slice — and rescoring reads the shared
//     capacity snapshot that the block phase published (the pool's join is the barrier).
//
// Cycle = four phases:
//   1. (sequential) ShardedBlockManager::Sync absorbs arrivals; new blocks are appended to
//      the shared snapshot and marked dirty.
//   2. (parallel, one item per shard) each shard refreshes changed owned blocks in the
//      snapshot; for DPack it recomputes owned membership signatures and solves the dirty
//      owned blocks' best-alpha subproblems. Shards whose block-side clocks are clean skip
//      the version scan entirely (the per-shard epoch/version invariant).
//   3. (parallel, one item per shard) each shard runs the score pass over its home tasks —
//      the same reuse-vs-rescore decision as ScheduleContext — then merges its sorted heap
//      with the cycle's rescored entries, dropping stale entries at pop time.
//   4. (sequential) a deterministic N-way merge over the per-shard heaps under
//      HeapEntryBefore yields the global allocation order. HeapEntryBefore is a strict
//      total order for unique task ids and every score is computed by the same function on
//      bit-identical inputs as the single-shard engine, so the merged order equals the
//      reference sort regardless of shard count or thread timing. The CANRUN walk with
//      feasibility memos then commits grants, exactly as ScheduleContext's.
//
// How phases 2 and 3 are *driven* is an engine property, factored behind the virtual
// RunPhases hook: this class runs them as two fork-join ParallelFor barriers on a worker
// pool; AsyncScheduleEngine (src/core/async_schedule_engine.h) overrides RunPhases to run
// both phases on persistent per-shard scheduler threads under a publish/quiesce protocol.
// Everything the grant sequence depends on — the phase *bodies* (SyncShardBlocks,
// ScoreOneTask, MergeShardHeap) and the sequential merge + walk — is shared, single-
// definition code, which is what keeps every driver's grants byte-identical.
//
// The cross-phase visibility contract RunPhases implementations must provide:
//   - Phase 2 writes only shard-owned entries of the shared id-indexed arrays (snapshot
//     curves, dirty flags, last_version_, member signatures, best alphas).
//   - Phase 3's score pass for shard s may read *any* shard's phase-2 state, so every
//     shard's phase-2 writes must happen-before every shard's phase-3 reads (the pool join
//     here; the refresh fence in the async engine).
//   - All shard state must happen-before ScheduleBatch's sequential tail (merge + walk);
//     RunPhases returning is that publication point.
//
// Batches with duplicate task ids fall back to RecomputeScheduleBatch (duplicates land in
// the same home shard, so each shard detects them locally, like the single-shard engine).
// RunPhases may also return false — the async engine's stale-publication escape hatch — in
// which case the cycle falls back to the recompute reference the same way.

#ifndef SRC_CORE_SHARDED_SCHEDULE_CONTEXT_H_
#define SRC_CORE_SHARDED_SCHEDULE_CONTEXT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/block/block_manager.h"
#include "src/block/sharded_block_manager.h"
#include "src/common/worker_pool.h"
#include "src/core/efficiency.h"
#include "src/core/schedule_context.h"
#include "src/core/task.h"

namespace dpack {

class ShardedScheduleContext : public ScheduleEngine {
 public:
  // `eta` is DPack's approximation parameter (> 0); `num_shards` >= 1. The pool spawns
  // num_shards - 1 worker threads (the caller is the remaining executor), independent of the
  // core count, so the engine behaves identically — just timesliced — when oversubscribed.
  // `partition` selects the block-to-shard assignment (grants are byte-identical under
  // either; see src/block/sharded_block_manager.h).
  ShardedScheduleContext(GreedyMetric metric, double eta, size_t num_shards,
                         BlockPartition partition = BlockPartition::kRoundRobin);

  // Same cycle protocol as ScheduleContext::ScheduleBatch: immutable pending tasks per id
  // between cycles (late block resolution excepted), the same BlockManager every cycle, all
  // block mutation through version-bumping mutators. Call Invalidate() before switching the
  // engine to a different manager.
  std::vector<size_t> ScheduleBatch(std::span<const Task> pending,
                                    BlockManager& blocks) override;

  void Invalidate() override;

  GreedyMetric metric() const override { return metric_; }
  const ScheduleContextStats& stats() const override { return stats_; }
  size_t num_shards() const override { return num_shards_; }

 protected:
  // Subclass constructor: `pool_workers` is the worker-pool thread count (the async engine
  // passes 0 — it brings its own per-shard threads and never touches the pool).
  ShardedScheduleContext(GreedyMetric metric, double eta, size_t num_shards,
                         size_t pool_workers, BlockPartition partition);
  // One shard's slice of the engine: the task-side ScheduleContext state for its home tasks
  // plus scratch for its owned blocks' best-alpha subproblems. Counters accumulate into the
  // engine-wide ScheduleContextStats after every cycle.
  struct ShardContext {
    TaskCacheMap cache;
    std::vector<HeapEntry> heap;    // Persistent, fully sorted (live + lazily-stale).
    std::vector<HeapEntry> fresh;   // This cycle's rescored entries, pre-merge.
    std::vector<HeapEntry> merged;  // Scratch for the merge.
    std::vector<size_t> task_indices;  // Batch indices of home tasks, this cycle.
    std::vector<std::vector<size_t>> requesters;  // Per owned block (local index), DPack.
    // This cycle's dirty *owned* blocks (capacity or membership), duplicate-free via the
    // shared dirty_stamp_. Written by the owning shard in phase 2 (arrivals are appended
    // sequentially in phase 1); read by every shard's phase-3 marking pass.
    std::vector<BlockId> dirty_ids;
    // DPack membership bookkeeping for owned blocks (see ScheduleContext): blocks whose
    // signature was folded this cycle, and blocks whose current signature is non-seed.
    std::vector<BlockId> touched_ids;
    std::vector<BlockId> active_ids;
    // Reverse index over *home tasks*: per global block id, the ids of this shard's home
    // tasks requesting it. Only ever touched by the owning task shard.
    std::vector<std::vector<TaskId>> rindex;
    uint64_t next_generation = 1;
    bool slots_moved = false;  // Set on rehash/purge; entries re-resolve at next merge.
    bool duplicate = false;    // Home batch contained a repeated task id this cycle.
    ScheduleContextStats partial;  // This cycle's counters; drained after the cycle.
  };

  size_t HomeShard(TaskId id) const {
    return static_cast<size_t>(static_cast<uint64_t>(id) % num_shards_);
  }

  // Runs phases 2 and 3 for every shard, upholding the cross-phase visibility contract in
  // the file comment. Returns false to abandon the cycle (all shard-side work discarded,
  // batch recomputed from scratch) — used by the async engine when a published snapshot
  // fails quiesce validation. The base implementation (two fork-join barriers on the
  // worker pool) always returns true.
  virtual bool RunPhases(std::span<const Task> pending, const BlockManager& blocks,
                         size_t refresh_limit, uint64_t previous_cycle);

  void BindManager(BlockManager& blocks);
  // Phase 1: absorb arrivals into the partition and the snapshot (sequential).
  void SyncArrivals(BlockManager& blocks);
  // Phase 2 body for one shard: refresh owned dirty blocks; DPack signatures + best alphas.
  void SyncShardBlocks(size_t s, const BlockManager& blocks, std::span<const Task> pending,
                       size_t refresh_limit);
  // Phase 3 body for one shard: score pass over home tasks, then the local heap merge.
  void ScoreShardTasks(size_t s, std::span<const Task> pending, uint64_t previous_cycle);
  // Stamps `shard`'s home tasks stale through its reverse index for every block in
  // `dirty_ids` (one source shard's dirty list). Touches only `shard`'s own cache and
  // rindex, so a task shard may run it against any source shard's list once that list's
  // phase-2 writes are visible (the pool join / the async refresh fence).
  void MarkStaleShardTasks(ShardContext& shard, std::span<const BlockId> dirty_ids,
                           uint64_t previous_cycle);
  // Records owned block `id` as dirty this cycle on its owning shard's list, once.
  // Phase-2 callers must own `id`'s shard (disjoint writes); phase 1 calls sequentially.
  void MarkShardDirty(BlockId id) {
    size_t j = static_cast<size_t>(id);
    if (dirty_stamp_[j] != cycle_stamp_) {
      dirty_stamp_[j] = cycle_stamp_;
      shards_[partition_->ShardOf(id)].dirty_ids.push_back(id);
    }
  }
  // One task of the score pass: the reuse-vs-rescore decision, cache update, and fresh-heap
  // append. Returns false when the task's id was already seen this cycle (duplicate batch:
  // the caller must stop and let ScheduleBatch fall back). `i` must be a home task of
  // `shard`; requires a prior cache Reserve covering the cycle's inserts.
  bool ScoreOneTask(ShardContext& shard, std::span<const Task> pending, size_t i,
                    uint64_t previous_cycle);
  void MergeShardHeap(ShardContext& shard);
  double ScoreTask(const Task& task) const;
  // Phase 4: deterministic N-way merge into order_, then the memoized CANRUN walk.
  void MergeOrder();
  std::vector<size_t> AllocateWithMemos(std::span<const Task> pending, BlockManager& blocks);

  GreedyMetric metric_;
  double eta_;
  size_t num_shards_;
  BlockPartition partition_mode_;
  ScheduleContextStats stats_;
  uint64_t cycle_stamp_ = 0;

  WorkerPool pool_;

  // The bound manager and its shard partition; (re)created on first use after Invalidate.
  BlockManager* bound_ = nullptr;
  std::optional<ShardedBlockManager> partition_;

  // Shared block-side state, indexed by global block id. During phase 2 every entry is
  // written only by its owning shard; the pool join publishes it to every reader.
  std::optional<CapacitySnapshot> snapshot_;
  std::vector<uint64_t> last_version_;  // Size doubles as the known-block count.
  // Contiguous version mirror for the allocation walk. Persistent: arrivals append,
  // phase-2 refreshes overwrite changed entries (owner-written), walk commits update.
  std::vector<uint64_t> version_now_;
  std::vector<uint64_t> dirty_stamp_;  // Per block: cycle stamp when last marked dirty.
  std::vector<uint64_t> member_sig_;   // DPack: per-block requester-set signature.
  std::vector<uint64_t> sig_scratch_;  // Per-cycle signature accumulator (lazily seeded).
  std::vector<uint64_t> touched_stamp_;  // Per block: cycle stamp of last signature fold.
  std::vector<size_t> best_alpha_;     // DPack: cached best order per block.

  std::vector<ShardContext> shards_;
  std::vector<size_t> slot_of_index_;  // Home-shard cache slot per batch index, per cycle.
  std::vector<size_t> order_;          // Merged allocation order (batch indices).
  std::vector<size_t> cursor_;         // Per-shard merge cursors (scratch).

  // Set by a RunPhases override that returns false (stale publication): how many shard
  // publications failed quiesce validation, and how many rescores that discarded.
  // ScheduleBatch folds them into stats_ on the fallback path and resets them.
  uint64_t pending_stale_publishes_ = 0;
  uint64_t pending_wasted_rescores_ = 0;
};

}  // namespace dpack

#endif  // SRC_CORE_SHARDED_SCHEDULE_CONTEXT_H_
