// Async scheduling engine (the ROADMAP's "async per-shard scheduler threads" item): the
// continuously-concurrent successor of ShardedScheduleContext's fork-join cycle. One
// persistent scheduler thread per shard watches for work against its shard's (epoch,
// version) clocks in ShardedBlockManager (lock-free atomic reads), rescores its home tasks,
// and publishes a freshest-heap snapshot; a scheduling cycle then only performs the
// deterministic N-way heap merge + sequential CANRUN walk over the published snapshots.
// Grants are byte-identical to the synchronous sharded engine (and hence to the single-
// shard engine and RecomputeScheduleBatch) — pinned by the async differential traces in
// tests/core/incremental_equivalence_test.cc and raced by tests/core/async_engine_soak_test.
//
// Publication protocol (overrides ShardedScheduleContext::RunPhases; the phase *bodies*
// are the shared single-definition steps of the base class):
//
//   dispatch   The driver thread finishes the sequential prologue (ShardedBlockManager::
//              Sync absorbs arrivals and advances the atomic per-shard clocks; the batch is
//              partitioned by home shard) and bumps the dispatch sequence. Shard threads
//              wake; each stamps its shard's (epoch, version) clocks lock-free.
//   refresh    Each thread refreshes its owned blocks in the shared capacity snapshot and
//              solves its dirty owned best-alpha subproblems (phase 2 body), writing only
//              shard-owned entries.
//   early      Before any fence, the thread rescores the home tasks whose inputs it already
//              owns: every task whose requested blocks all live in this shard — and, for
//              DPF, every task, since DPF scores read only total capacities, which are
//              immutable after the (sequential) arrival append. This overlaps scoring with
//              the other shards' refresh work; counted as async_early_scores.
//   fence      A single barrier among the shard threads: every shard's refresh (snapshot
//              entries, dirty flags, best alphas) happens-before every shard's cross-shard
//              scoring reads.
//   late       The thread scores its remaining home tasks (cross-shard block lists), merges
//              its sorted heap with the cycle's rescored entries (shared MergeScoreHeap),
//              and revalidates its clock stamp: unchanged (epoch, version) proves no Sync
//              intervened since work started — the shard's capacity state is exactly the
//              state the scores were computed from.
//   publish    The thread publishes heap + stamp and goes back to watching. In the default
//              HeapPublishMode::kRing, publication is one push onto the shard's private
//              lock-free SPSC ring (src/common/spsc_ring.h), epoch-stamped with the cycle's
//              dispatch sequence; the push's release store is the publication edge for the
//              heap and counters, so no lock is taken between the fence and the next
//              dispatch. kMutex keeps the original mutex/condvar handoff for comparison.
//   quiesce    The driver's fence: it consumes every shard's publication for this cycle —
//              ring mode spin-pops each ring until the frame stamped with this dispatch
//              sequence arrives (acquire-consume); mutex mode waits on the publication
//              count — then validates every stamp. A stale publication (a frame from
//              another epoch, or a stamp whose clock moved; impossible under the cycle
//              protocol; counted as async_stale_publishes) abandons the cycle to the
//              recompute reference, so grants stay correct even if a caller violates the
//              protocol. The merge + CANRUN walk then run over the published heaps exactly
//              as in the synchronous engine.
//
// Pinning and placement: with `pin_threads` (the default) each shard thread pins itself to
// an allowed core at startup — core s % |cpuset| via src/common/cpu_affinity.h — so a
// shard's refresh/score working set stays on one core, and the heap/merge buffers it grows
// are first-touched (hence placed) by that pinned thread. Pinning is best-effort: a denied
// cpuset degrades to the unpinned engine with stats().pin_failures counting the denials,
// never an error (the CI-container fallback).
//
// Determinism: every score is computed by the same function on bit-identical snapshot state
// as the synchronous engine — the early/late split only reorders score *computation* within
// a shard (generation numbers differ, but generations never influence the merge order, only
// staleness detection). The N-way merge under HeapEntryBefore (a strict total order for
// unique task ids) and the sequential walk are unchanged — rings and pinning change how and
// where heaps are built and moved, never the merge order — so the grant sequence is
// byte-identical for every shard count, publish mode, partition mode, and thread timing.

#ifndef SRC_CORE_ASYNC_SCHEDULE_ENGINE_H_
#define SRC_CORE_ASYNC_SCHEDULE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "src/common/spsc_ring.h"
#include "src/common/thread_annotations.h"
#include "src/core/sharded_schedule_context.h"

namespace dpack {

class AsyncScheduleEngine : public ShardedScheduleContext {
 public:
  // Spawns `num_shards` persistent scheduler threads (>= 1). Same cycle protocol as the
  // synchronous engines; the caller must not run ScheduleBatch concurrently with itself.
  // `partition`, `publish`, and `pin_threads` are pure performance knobs — grants are
  // byte-identical under every combination.
  AsyncScheduleEngine(GreedyMetric metric, double eta, size_t num_shards,
                      BlockPartition partition = BlockPartition::kRoundRobin,
                      HeapPublishMode publish = HeapPublishMode::kRing,
                      bool pin_threads = true);
  ~AsyncScheduleEngine() override;

  HeapPublishMode publish_mode() const { return publish_; }

 protected:
  bool RunPhases(std::span<const Task> pending, const BlockManager& blocks,
                 size_t refresh_limit, uint64_t previous_cycle) override;

 private:
  // A shard thread's lock-free clock reading at work start, revalidated at publication.
  struct ClockStamp {
    uint64_t epoch = 0;
    uint64_t version = 0;
    bool valid = true;
  };

  void ShardLoop(size_t s) EXCLUDES(mu_);
  bool AllBlocksHome(const Task& task, size_t s) const;

  const HeapPublishMode publish_;
  const bool pin_threads_;
  // Shard threads that failed to pin (each increments once, at startup, before its first
  // publication — so any completed cycle's quiesce happens-after every increment). The
  // driver re-reads it into stats_.pin_failures after each quiesce.
  std::atomic<uint64_t> pin_failures_{0};

  Mutex mu_;
  CondVar dispatch_cv_;  // Shard threads wait here for a new cycle.
  CondVar barrier_cv_;   // The refresh fence among shard threads.
  CondVar done_cv_;      // kMutex publication: the driver waits here for all publications.

  // Cycle inputs and progress; all guarded by mu_ (machine-checked). Dispatch and the
  // refresh fence always run under mu_; in kMutex publish mode the mutex handoff is also
  // what establishes happens-before for the unguarded shared engine state (base-class
  // arrays), per the visibility contract in sharded_schedule_context.h. In kRing mode that
  // edge is the ring push/pop instead.
  uint64_t dispatch_seq_ GUARDED_BY(mu_) = 0;
  std::span<const Task> cycle_pending_ GUARDED_BY(mu_);
  const BlockManager* cycle_blocks_ GUARDED_BY(mu_) = nullptr;
  size_t cycle_refresh_limit_ GUARDED_BY(mu_) = 0;
  uint64_t cycle_previous_ GUARDED_BY(mu_) = 0;
  // Shards past the refresh + early-score step.
  size_t refresh_done_ GUARDED_BY(mu_) = 0;
  // kMutex publication state: shards that published this cycle, and their stamps.
  size_t published_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<ClockStamp> stamps_ GUARDED_BY(mu_);  // Per shard; written at publication.

  // kRing publication state. Each shard thread produces into its own ring; the driver is
  // the only consumer. ring_stamps_/ring_done_ are driver-only quiesce scratch (the popped
  // frames), touched by no shard thread.
  std::vector<std::unique_ptr<SpscRing<ClockStamp>>> rings_;
  std::vector<ClockStamp> ring_stamps_;
  std::vector<uint8_t> ring_done_;

  std::vector<std::vector<size_t>> late_;  // Per shard: cross-shard home tasks; each entry
                                           // is touched only by its own shard thread.
  std::vector<std::thread> threads_;
};

}  // namespace dpack

#endif  // SRC_CORE_ASYNC_SCHEDULE_ENGINE_H_
