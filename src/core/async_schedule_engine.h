// Async scheduling engine (the ROADMAP's "async per-shard scheduler threads" item): the
// continuously-concurrent successor of ShardedScheduleContext's fork-join cycle. One
// persistent scheduler thread per shard watches for work against its shard's (epoch,
// version) clocks in ShardedBlockManager (lock-free atomic reads), rescores its home tasks,
// and publishes a freshest-heap snapshot; a scheduling cycle then only performs the
// deterministic N-way heap merge + sequential CANRUN walk over the published snapshots.
// Grants are byte-identical to the synchronous sharded engine (and hence to the single-
// shard engine and RecomputeScheduleBatch) — pinned by the async differential traces in
// tests/core/incremental_equivalence_test.cc and raced by tests/core/async_engine_soak_test.
//
// Publication protocol (overrides ShardedScheduleContext::RunPhases; the phase *bodies*
// are the shared single-definition steps of the base class):
//
//   dispatch   The driver thread finishes the sequential prologue (ShardedBlockManager::
//              Sync absorbs arrivals and advances the atomic per-shard clocks; the batch is
//              partitioned by home shard) and bumps the dispatch sequence. Shard threads
//              wake; each stamps its shard's (epoch, version) clocks lock-free.
//   refresh    Each thread refreshes its owned blocks in the shared capacity snapshot and
//              solves its dirty owned best-alpha subproblems (phase 2 body), writing only
//              shard-owned entries.
//   early      Before any fence, the thread rescores the home tasks whose inputs it already
//              owns: every task whose requested blocks all live in this shard — and, for
//              DPF, every task, since DPF scores read only total capacities, which are
//              immutable after the (sequential) arrival append. This overlaps scoring with
//              the other shards' refresh work; counted as async_early_scores.
//   fence      A single barrier among the shard threads: every shard's refresh (snapshot
//              entries, dirty flags, best alphas) happens-before every shard's cross-shard
//              scoring reads.
//   late       The thread scores its remaining home tasks (cross-shard block lists), merges
//              its sorted heap with the cycle's rescored entries (shared MergeScoreHeap),
//              and revalidates its clock stamp: unchanged (epoch, version) proves no Sync
//              intervened since work started — the shard's capacity state is exactly the
//              state the scores were computed from.
//   publish    The thread publishes heap + stamp (mutex handoff) and goes back to watching.
//   quiesce    The driver's fence: it waits until every shard has published this cycle's
//              snapshot, then validates every stamp. Any stale stamp (impossible under the
//              cycle protocol; counted as async_stale_publishes) abandons the cycle to the
//              recompute reference, so grants stay correct even if a caller violates the
//              protocol. The merge + CANRUN walk then run over the published heaps exactly
//              as in the synchronous engine.
//
// Determinism: every score is computed by the same function on bit-identical snapshot state
// as the synchronous engine — the early/late split only reorders score *computation* within
// a shard (generation numbers differ, but generations never influence the merge order, only
// staleness detection). The N-way merge under HeapEntryBefore (a strict total order for
// unique task ids) and the sequential walk are unchanged, so the grant sequence is
// byte-identical for every shard count and thread timing.

#ifndef SRC_CORE_ASYNC_SCHEDULE_ENGINE_H_
#define SRC_CORE_ASYNC_SCHEDULE_ENGINE_H_

#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/core/sharded_schedule_context.h"

namespace dpack {

class AsyncScheduleEngine : public ShardedScheduleContext {
 public:
  // Spawns `num_shards` persistent scheduler threads (>= 1). Same cycle protocol as the
  // synchronous engines; the caller must not run ScheduleBatch concurrently with itself.
  AsyncScheduleEngine(GreedyMetric metric, double eta, size_t num_shards);
  ~AsyncScheduleEngine() override;

 protected:
  bool RunPhases(std::span<const Task> pending, const BlockManager& blocks,
                 size_t refresh_limit, uint64_t previous_cycle) override;

 private:
  // A shard thread's lock-free clock reading at work start, revalidated at publication.
  struct ClockStamp {
    uint64_t epoch = 0;
    uint64_t version = 0;
    bool valid = true;
  };

  void ShardLoop(size_t s) EXCLUDES(mu_);
  bool AllBlocksHome(const Task& task, size_t s) const;

  Mutex mu_;
  CondVar dispatch_cv_;  // Shard threads wait here for a new cycle.
  CondVar barrier_cv_;   // The refresh fence among shard threads.
  CondVar done_cv_;      // The driver waits here for all publications.

  // Cycle inputs and progress; all guarded by mu_ (machine-checked). The mutex handoffs
  // are what establish happens-before for the unguarded shared engine state (base-class
  // arrays), per the visibility contract in sharded_schedule_context.h.
  uint64_t dispatch_seq_ GUARDED_BY(mu_) = 0;
  std::span<const Task> cycle_pending_ GUARDED_BY(mu_);
  const BlockManager* cycle_blocks_ GUARDED_BY(mu_) = nullptr;
  size_t cycle_refresh_limit_ GUARDED_BY(mu_) = 0;
  uint64_t cycle_previous_ GUARDED_BY(mu_) = 0;
  // Shards past the refresh + early-score step.
  size_t refresh_done_ GUARDED_BY(mu_) = 0;
  // Shards that published their heap this cycle.
  size_t published_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<ClockStamp> stamps_ GUARDED_BY(mu_);  // Per shard; written at publication.

  std::vector<std::vector<size_t>> late_;  // Per shard: cross-shard home tasks; each entry
                                           // is touched only by its own shard thread.
  std::vector<std::thread> threads_;
};

}  // namespace dpack

#endif  // SRC_CORE_ASYNC_SCHEDULE_ENGINE_H_
