// Task efficiency metrics for greedy privacy scheduling (§3.1–§3.3).
//
// All metrics normalize a task's demand by the *available* (unlocked, un-consumed) capacity
// of the blocks it requests at scheduling time — the c_{j alpha} of Eqs. 4 and 6. Orders with
// zero available capacity are unusable under the global guarantee and are skipped when
// looking for dominant shares / best alphas.

#ifndef SRC_CORE_EFFICIENCY_H_
#define SRC_CORE_EFFICIENCY_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/block/block_manager.h"
#include "src/core/task.h"

namespace dpack {

// Snapshot of per-block capacity taken once per scheduling cycle. Carries both the block's
// total capacity (DPF normalizes dominant shares against the fixed global budget, as in
// PrivateKube, where shares are computed once per task) and the remaining available capacity
// (Eqs. 4 and 6 normalize by remaining capacity).
class CapacitySnapshot {
 public:
  explicit CapacitySnapshot(const BlockManager& blocks);

  // Empty snapshot for incremental maintenance (ScheduleContext): blocks are appended as
  // they arrive and their available curves refreshed in place when their version changes.
  // A snapshot kept in sync this way is bit-identical to one rebuilt from scratch, because
  // a block whose version is unchanged recomputes the exact same AvailableCurve().
  explicit CapacitySnapshot(AlphaGridPtr grid);

  // Appends the state of the next block (id == block_count() before the call).
  void Append(RdpCurve available, RdpCurve total);
  // Replaces the available curve of an existing block (after a commit or unlock).
  void RefreshAvailable(BlockId id, RdpCurve available);

  // Available capacity curve of block `id` (max(0, unlocked - consumed) per order).
  const RdpCurve& available(BlockId id) const;
  // Total capacity curve of block `id` (the fixed per-order global budget).
  const RdpCurve& total(BlockId id) const;
  size_t block_count() const { return available_.size(); }
  const AlphaGridPtr& grid() const { return grid_; }

 private:
  AlphaGridPtr grid_;
  std::vector<RdpCurve> available_;
  std::vector<RdpCurve> total_;
};

// DPF's metric (§3.1/§3.2): e_i = w_i / max_{j, alpha} (d_{i j alpha} / c_{j alpha}), the
// weighted inverse dominant share, with c the block's *total* budget (PrivateKube computes
// each task's dominant share once, against the fixed global budget). Returns 0 if some
// requested block has no usable order (dominant share is infinite).
double DpfEfficiency(const Task& task, const CapacitySnapshot& snapshot);

// The dominant share itself: max_{j, alpha: c > 0} d / c over total capacity; +infinity if a
// positive demand meets a block with no usable order.
double DominantShare(const Task& task, const CapacitySnapshot& snapshot);

// Area metric for traditional multidimensional knapsack (Eq. 4), summing the demand share at
// *every* order of every requested block. Used by the ablation scheduler that is
// block-aware but not best-alpha-aware.
double AreaEfficiency(const Task& task, const CapacitySnapshot& snapshot);

// DPack's metric (Eq. 6): demand shares counted only at each block's best alpha.
// `best_alpha` maps BlockId -> order index. Returns 0 when a requested block's best order
// has zero capacity while the task demands budget there.
double DpackEfficiency(const Task& task, const CapacitySnapshot& snapshot,
                       std::span<const size_t> best_alpha);

// COMPUTE_BESTALPHA (Alg. 1): for every block, solves one single-block knapsack per order
// over the pending tasks requesting that block (profit w_i, demand d_i(alpha), capacity
// c_{j alpha}) and returns the order index maximizing the (approximate) attainable weight
// w-hat-max. Blocks requested by no task get their largest-capacity order.
// `eta` is DPack's approximation parameter; the subproblems are solved to (2/3) eta.
std::vector<size_t> ComputeBestAlphas(std::span<const Task> tasks,
                                      const CapacitySnapshot& snapshot, double eta);

// One block's COMPUTE_BESTALPHA subproblem: `requesters` indexes into `tasks` the pending
// tasks requesting the block, in batch order. Returns the order maximizing the (approximate)
// attainable weight against `available`; the largest-capacity order when `requesters` is
// empty; order 0 when every order is depleted. Both ComputeBestAlphas and the incremental
// engine call this, so cached and recomputed best alphas are identical by construction.
size_t BestAlphaForBlock(std::span<const Task> tasks, std::span<const size_t> requesters,
                         const RdpCurve& available, double eta);

}  // namespace dpack

#endif  // SRC_CORE_EFFICIENCY_H_
