#include "src/core/task.h"

#include <sstream>

namespace dpack {

std::string Task::DebugString() const {
  std::ostringstream os;
  os << "Task{id=" << id << ", w=" << weight << ", arrival=" << arrival_time << ", blocks=[";
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << blocks[i];
  }
  os << "], demand=" << demand.DebugString() << "}";
  return os.str();
}

}  // namespace dpack
