// Batch scheduling algorithms for privacy budget (§3): DPack (Alg. 1), DPF, FCFS, the area
// heuristic (Eq. 4 ablation), and the exact Optimal baseline.
//
// A `Scheduler` examines one batch of pending tasks, commits the demands of the tasks it
// grants to the block manager (through the per-block privacy filters), and reports which
// tasks were granted. The online driver (`OnlineScheduler`) repeatedly invokes it as tasks
// and blocks arrive; calling it once on a fully-unlocked system is the offline setting.

#ifndef SRC_CORE_SCHEDULER_H_
#define SRC_CORE_SCHEDULER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/block/block_manager.h"
#include "src/block/sharded_block_manager.h"
#include "src/core/schedule_context.h"
#include "src/core/task.h"
#include "src/knapsack/privacy_knapsack.h"

namespace dpack {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // Tries to allocate tasks from `pending` given current block state. Grants are committed
  // to `blocks` (budget consumed) before returning. Returns indices into `pending` of the
  // granted tasks, in grant order.
  virtual std::vector<size_t> ScheduleBatch(std::span<const Task> pending,
                                            BlockManager& blocks) = 0;
};

// Greedy allocation shared by DPF / area / DPack / FCFS: score every pending task, order by
// score descending (ties: earlier arrival, then lower id), then walk the order granting every
// task whose full demand the filters of all its requested blocks accept (CANRUN of Alg. 1).
// `GreedyMetric` itself is declared in schedule_context.h.
struct GreedySchedulerOptions {
  // DPack's approximation parameter eta (> 0): best-alpha subproblems are solved to
  // (2/3) eta (Prop. 5 uses the 1/2 + eta bound).
  double eta = 0.05;
  // When set (the default) the scheduler runs on the incremental engine (ScheduleContext):
  // scoring state persists across ScheduleBatch calls and only tasks touching changed blocks
  // are rescored. When cleared, every batch is recomputed from scratch (the reference path —
  // identical grants, used by the differential tests and as the benchmarks' baseline).
  bool incremental = true;
  // Shard count for the incremental engine (>= 1). With 1 the scheduler runs on the
  // single-threaded ScheduleContext; with more it runs on ShardedScheduleContext, which
  // partitions blocks and tasks across `num_shards` shards and rescoring across a worker
  // pool, granting byte-identical task sequences (see src/core/sharded_schedule_context.h).
  // Ignored when incremental is false (the recompute reference is single-threaded) and for
  // FCFS (which never scores, so there is nothing to parallelize).
  size_t num_shards = 1;
  // When set, the incremental engine runs on AsyncScheduleEngine: one persistent scheduler
  // thread per shard rescoring against lock-free per-shard clock reads and publishing heap
  // snapshots, with a quiesce/fence keeping grants byte-identical to the synchronous
  // sharded engine (see src/core/async_schedule_engine.h). Applies to any num_shards >= 1;
  // ignored when incremental is false and for FCFS.
  bool async = false;
  // Block-to-shard assignment of the sharded engines (sharded + async): round-robin, or
  // 64-block id-range chunks for contiguous per-shard block state (see
  // src/block/sharded_block_manager.h). A pure locality knob — grants are byte-identical
  // under either mode. Ignored by the single-shard and recompute paths.
  BlockPartition partition = BlockPartition::kRoundRobin;
  // How the async engine's shard threads publish their heap snapshots to the driver:
  // the lock-free per-shard SPSC ring (the default), or the pre-ring mutex/condvar handoff
  // (kept for comparison benches). Grants are byte-identical under either. Ignored by the
  // synchronous engines, which have no publication step.
  HeapPublishMode publish = HeapPublishMode::kRing;
  // When set (the default) each async shard thread pins itself to an allowed core at
  // startup (best-effort: a denied cpuset runs unpinned and counts
  // stats().pin_failures; see src/common/cpu_affinity.h). Ignored by the synchronous
  // engines, whose worker pool is owned by the caller's threads.
  bool pin_threads = true;
};

class GreedyScheduler : public Scheduler {
 public:
  GreedyScheduler(GreedyMetric metric, GreedySchedulerOptions options = {});

  std::string name() const override;
  std::vector<size_t> ScheduleBatch(std::span<const Task> pending,
                                    BlockManager& blocks) override;

  GreedyMetric metric() const { return metric_; }

  // Reshards the incremental engine (>= 1). Rebuilds the engine, dropping all cached state,
  // so call it between runs, not mid-run. No-op when the count is unchanged or when the
  // scheduler runs the recompute path.
  void set_num_shards(size_t num_shards);

  // Switches the incremental engine between the synchronous drivers and the async
  // per-shard-thread engine. Rebuilds the engine (dropping all cached state), so call it
  // between runs, not mid-run. No-op when unchanged or on the recompute path.
  void set_async(bool async);

  // The incremental engine (single-shard or sharded), for cache control and stats. Non-null
  // iff options.incremental.
  ScheduleEngine* engine() { return engine_.get(); }
  const ScheduleEngine* engine() const { return engine_.get(); }

 private:
  void RebuildEngine();

  GreedyMetric metric_;
  GreedySchedulerOptions options_;
  std::unique_ptr<ScheduleEngine> engine_;
};

// The Optimal baseline: maps the batch to a privacy-knapsack instance over the blocks'
// available capacity and solves it exactly (branch and bound). Falls back to the incumbent
// when the node/time budget is exhausted; `last_solve_optimal()` reports whether the last
// batch was solved to proven optimality.
class OptimalScheduler : public Scheduler {
 public:
  explicit OptimalScheduler(PkOptions options = {});

  std::string name() const override { return "Optimal"; }
  std::vector<size_t> ScheduleBatch(std::span<const Task> pending,
                                    BlockManager& blocks) override;

  bool last_solve_optimal() const { return last_solve_optimal_; }
  uint64_t last_nodes_explored() const { return last_nodes_explored_; }

 private:
  PkOptions options_;
  // Knapsack instance reused across batches: the blocks×orders capacity matrix is resized
  // only when the system grows, avoiding a per-cycle reallocation (values are refilled each
  // cycle — consumption and unlocking change them).
  PkInstance instance_;
  std::vector<size_t> batch_index_;
  bool last_solve_optimal_ = true;
  uint64_t last_nodes_explored_ = 0;
};

enum class SchedulerKind {
  kDpack,
  kDpf,
  kArea,
  kFcfs,
  kOptimal,
};

std::string SchedulerKindName(SchedulerKind kind);

// Factory covering every algorithm in the evaluation. `num_shards` > 1 runs the greedy
// policies on the sharded incremental engine; `async` runs them on the async per-shard
// thread engine (both ignored for Optimal).
std::unique_ptr<Scheduler> CreateScheduler(SchedulerKind kind, double eta = 0.05,
                                           PkOptions optimal_options = {},
                                           size_t num_shards = 1, bool async = false);

// The single definition of the "num_shards == 0 means auto" convention shared by every
// shard-count config (OnlineSchedulerConfig, SimConfig, OrchestratorConfig): an explicit
// request wins verbatim; 0 resolves to the hardware concurrency (at least 1) capped by the
// blocks known when the driver is built (`known_blocks`; an empty manager resolves to 1,
// so drivers built before any block arrives — every fresh simulation — keep their
// scheduler single-shard exactly as an explicit 1 would). OnlineScheduler's constructor is
// the one resolution point: it rewrites its config with the resolved count, so every
// downstream reader (snapshot metadata, orchestrator results) sees a value >= 1 and no
// call site re-interprets 0 ad hoc. `hardware_hint` overrides the queried concurrency so
// tests pin the rule on every machine; 0 queries std::thread::hardware_concurrency().
size_t ResolveNumShards(size_t requested, size_t known_blocks, size_t hardware_hint = 0);

}  // namespace dpack

#endif  // SRC_CORE_SCHEDULER_H_
