#include "src/core/online_scheduler.h"

#include <algorithm>
#include <chrono>

#include "src/common/check.h"
#include "src/core/fairness.h"

namespace dpack {

OnlineScheduler::OnlineScheduler(std::unique_ptr<Scheduler> inner, BlockManager* blocks,
                                 OnlineSchedulerConfig config)
    : inner_(std::move(inner)), blocks_(blocks), config_(config) {
  DPACK_CHECK(inner_ != nullptr);
  DPACK_CHECK(blocks_ != nullptr);
  DPACK_CHECK(config_.period > 0.0);
  DPACK_CHECK(config_.unlock_steps >= 1);
  if (config_.fair_share_n <= 0) {
    config_.fair_share_n = config_.unlock_steps;
  }
  // The one place the "0 = auto" shard-count convention is resolved (see ResolveNumShards):
  // every later reader — snapshot metadata, orchestrator results — uses the rewritten
  // config, which is always >= 1 from here on.
  config_.num_shards = ResolveNumShards(config_.num_shards, blocks_->block_count());
  if (auto* greedy = dynamic_cast<GreedyScheduler*>(inner_.get())) {
    greedy->set_num_shards(config_.num_shards);
    if (config_.async) {
      greedy->set_async(true);
    }
  }
}

const ScheduleContextStats* OnlineScheduler::context_stats() const {
  const auto* greedy = dynamic_cast<const GreedyScheduler*>(inner_.get());
  if (greedy == nullptr || greedy->engine() == nullptr) {
    return nullptr;
  }
  return &greedy->engine()->stats();
}

void OnlineScheduler::RestoreState(std::vector<Task> pending, AllocationMetrics metrics) {
  DPACK_CHECK_MSG(pending_.empty() && metrics_.submitted() == 0,
                  "RestoreState requires a fresh driver");
  for (const Task& task : pending) {
    for (BlockId id : task.blocks) {
      DPACK_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < blocks_->block_count(),
                      "restored pending task references an unknown block");
    }
  }
  pending_ = std::move(pending);
  metrics_ = std::move(metrics);
}

std::unique_ptr<Scheduler> OnlineScheduler::ReleaseInner() {
  if (auto* greedy = dynamic_cast<GreedyScheduler*>(inner_.get())) {
    if (greedy->engine() != nullptr) {
      greedy->engine()->Invalidate();
    }
  }
  return std::move(inner_);
}

void OnlineScheduler::ResolveBlocks(Task& task) {
  if (!task.blocks.empty() || task.num_recent_blocks == 0) {
    return;
  }
  if (blocks_->block_count() == 0) {
    return;  // Retry at the next cycle.
  }
  task.blocks = blocks_->MostRecentBlocks(task.num_recent_blocks);
}

bool OnlineScheduler::Submit(Task task) {
  if (config_.admission_queue_capacity > 0 &&
      pending_.size() >= config_.admission_queue_capacity) {
    ++admission_rejected_;
    return false;
  }
  ResolveBlocks(task);
  bool fair = !task.blocks.empty() &&
              IsFairShareTask(task, *blocks_, config_.fair_share_n);
  metrics_.RecordSubmission(task.weight, fair);
  pending_.push_back(std::move(task));
  return true;
}

size_t OnlineScheduler::RunCycle(double now) {
  blocks_->UpdateUnlocks(now, config_.period, config_.unlock_steps);

  // Late block-request resolution for tasks submitted before any block existed.
  for (Task& task : pending_) {
    ResolveBlocks(task);
  }

  // Evict tasks that waited past their timeout.
  auto evict_it = std::remove_if(pending_.begin(), pending_.end(), [&](const Task& task) {
    bool timed_out = now - task.arrival_time > task.timeout;
    if (timed_out) {
      metrics_.RecordEviction(task.weight);
    }
    return timed_out;
  });
  pending_.erase(evict_it, pending_.end());

  // Wall-clock reads below time the cycle for AllocationMetrics only; the measured
  // duration never feeds scoring, ordering, or feasibility, so grants stay deterministic.
  // dpack-lint: allow(nondeterministic-source): metrics-only cycle timing, never feeds grants.
  auto start = std::chrono::steady_clock::now();
  std::vector<size_t> granted = inner_->ScheduleBatch(pending_, *blocks_);
  // dpack-lint: allow(nondeterministic-source): metrics-only cycle timing, never feeds grants.
  double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  metrics_.RecordCycleRuntime(seconds);

  // Record grants and drop them from the queue (preserving arrival order of the rest).
  last_granted_.clear();
  std::vector<bool> taken(pending_.size(), false);
  for (size_t idx : granted) {
    taken[idx] = true;
    const Task& task = pending_[idx];
    bool fair = IsFairShareTask(task, *blocks_, config_.fair_share_n);
    metrics_.RecordAllocation(task.weight, now - task.arrival_time, fair);
    last_granted_.push_back(task.id);
  }
  std::vector<Task> rest;
  rest.reserve(pending_.size() - granted.size());
  for (size_t i = 0; i < pending_.size(); ++i) {
    if (!taken[i]) {
      rest.push_back(std::move(pending_[i]));
    }
  }
  pending_ = std::move(rest);

  // Retire blocks that can provably never change again (exhausted with the full budget
  // unlocked), compacting them out of the hot slab. Run after every cycle so the slab
  // layout is a deterministic function of the commit/unlock history — identical across
  // engines, and across checkpoint/resume, since snapshots are captured between cycles
  // (i.e. after a sweep).
  blocks_->RetireNewlyExhausted();
  return granted.size();
}

}  // namespace dpack
