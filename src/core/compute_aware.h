// Compute-aware privacy scheduling — the paper's §8 extension direction ("better scheduling
// of traditional computing resources alongside privacy blocks").
//
// DP tasks consume two very different resource kinds: the non-replenishable privacy budget
// of the blocks they read, and replenishable cluster compute (GPU-hours per scheduling
// cycle). `ComputeAwareScheduler` wraps any inner batch scheduler and additionally enforces
// a per-cycle compute capacity: tasks are considered in the inner scheduler's order, but a
// task is granted only if both its privacy filters AND the cycle's remaining compute admit
// it. Privacy budget is only committed for granted tasks, so compute-deferred tasks retry
// next cycle with their budget intact.

#ifndef SRC_CORE_COMPUTE_AWARE_H_
#define SRC_CORE_COMPUTE_AWARE_H_

#include <memory>
#include <unordered_map>

#include "src/core/scheduler.h"

namespace dpack {

// Per-task compute demand, registered by task id. Tasks without an entry are assumed free.
class ComputeDemandMap {
 public:
  void Set(TaskId id, double gpu_hours);
  double Get(TaskId id) const;
  size_t size() const { return demand_.size(); }

 private:
  // Lookup-only by construction: the only reads are point lookups in Get() (Set() inserts;
  // size() is a count), so no hash-iteration order can reach a grant decision. The
  // grant *order* is the inner scheduler's; this map only prices each granted task.
  // dpack-lint: allow(unordered-member): lookup-only — Get()/Set() point access, never iterated.
  std::unordered_map<TaskId, double> demand_;
};

struct ComputeAwareOptions {
  // GPU-hours available per scheduling cycle (> 0).
  double gpu_hours_per_cycle = 100.0;
};

class ComputeAwareScheduler : public Scheduler {
 public:
  // `demands` must outlive the scheduler.
  ComputeAwareScheduler(std::unique_ptr<Scheduler> inner, const ComputeDemandMap* demands,
                        ComputeAwareOptions options);

  std::string name() const override { return inner_->name() + "+compute"; }

  std::vector<size_t> ScheduleBatch(std::span<const Task> pending,
                                    BlockManager& blocks) override;

  // GPU-hours consumed by the grants of the most recent cycle.
  double last_cycle_gpu_hours() const { return last_cycle_gpu_hours_; }
  // Tasks that were privacy-admissible but deferred on compute in the most recent cycle.
  size_t last_cycle_compute_deferred() const { return last_cycle_compute_deferred_; }

 private:
  std::unique_ptr<Scheduler> inner_;
  const ComputeDemandMap* demands_;
  ComputeAwareOptions options_;
  double last_cycle_gpu_hours_ = 0.0;
  size_t last_cycle_compute_deferred_ = 0;
};

}  // namespace dpack

#endif  // SRC_CORE_COMPUTE_AWARE_H_
