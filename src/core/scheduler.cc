#include "src/core/scheduler.h"

#include <algorithm>
#include <thread>

#include "src/common/check.h"
#include "src/core/async_schedule_engine.h"
#include "src/core/sharded_schedule_context.h"

namespace dpack {

GreedyScheduler::GreedyScheduler(GreedyMetric metric, GreedySchedulerOptions options)
    : metric_(metric), options_(options) {
  DPACK_CHECK(options_.eta > 0.0);
  DPACK_CHECK(options_.num_shards >= 1);
  RebuildEngine();
}

void GreedyScheduler::RebuildEngine() {
  if (!options_.incremental) {
    engine_.reset();
    return;
  }
  // FCFS never scores, so the sharded and async engines would be pass-throughs dragging
  // idle threads; keep it on the single-shard engine regardless of the knobs.
  if (metric_ == GreedyMetric::kFcfs) {
    engine_ = std::make_unique<ScheduleContext>(metric_, options_.eta);
  } else if (options_.async) {
    engine_ = std::make_unique<AsyncScheduleEngine>(metric_, options_.eta,
                                                    options_.num_shards, options_.partition,
                                                    options_.publish, options_.pin_threads);
  } else if (options_.num_shards > 1) {
    engine_ = std::make_unique<ShardedScheduleContext>(metric_, options_.eta,
                                                       options_.num_shards,
                                                       options_.partition);
  } else {
    engine_ = std::make_unique<ScheduleContext>(metric_, options_.eta);
  }
}

void GreedyScheduler::set_num_shards(size_t num_shards) {
  DPACK_CHECK(num_shards >= 1);
  if (num_shards == options_.num_shards) {
    return;
  }
  options_.num_shards = num_shards;
  RebuildEngine();
}

void GreedyScheduler::set_async(bool async) {
  if (async == options_.async) {
    return;
  }
  options_.async = async;
  RebuildEngine();
}

std::string GreedyScheduler::name() const {
  switch (metric_) {
    case GreedyMetric::kDpf:
      return "DPF";
    case GreedyMetric::kArea:
      return "Area";
    case GreedyMetric::kDpack:
      return "DPack";
    case GreedyMetric::kFcfs:
      return "FCFS";
  }
  return "Greedy";
}

std::vector<size_t> GreedyScheduler::ScheduleBatch(std::span<const Task> pending,
                                                   BlockManager& blocks) {
  if (engine_ != nullptr) {
    return engine_->ScheduleBatch(pending, blocks);
  }
  return RecomputeScheduleBatch(metric_, options_.eta, pending, blocks);
}

OptimalScheduler::OptimalScheduler(PkOptions options) : options_(options) {}

std::vector<size_t> OptimalScheduler::ScheduleBatch(std::span<const Task> pending,
                                                    BlockManager& blocks) {
  if (pending.empty()) {
    return {};
  }
  size_t num_blocks = blocks.block_count();
  size_t num_orders = blocks.grid()->size();
  instance_.tasks.clear();
  if (instance_.num_blocks != num_blocks || instance_.num_orders != num_orders) {
    instance_.num_blocks = num_blocks;
    instance_.num_orders = num_orders;
    instance_.capacity.resize(num_blocks * num_orders);
  }
  // Refill the available capacity in place (consumption and unlocking move every cycle).
  for (size_t j = 0; j < num_blocks; ++j) {
    const PrivacyBlock& block = blocks.block(static_cast<BlockId>(j));
    for (size_t a = 0; a < num_orders; ++a) {
      instance_.capacity[j * num_orders + a] = block.AvailableAt(a);
    }
  }
  // Map batch tasks (skipping unresolved ones) to instance tasks.
  batch_index_.clear();
  for (size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].blocks.empty()) {
      continue;
    }
    PkTask pk;
    pk.weight = pending[i].weight;
    pk.blocks.reserve(pending[i].blocks.size());
    for (BlockId j : pending[i].blocks) {
      pk.blocks.push_back(static_cast<size_t>(j));
    }
    pk.demand = pending[i].demand.epsilons();
    instance_.tasks.push_back(std::move(pk));
    batch_index_.push_back(i);
  }
  if (instance_.tasks.empty()) {
    return {};
  }
  PkResult result = SolvePrivacyKnapsackExact(instance_, options_);
  last_solve_optimal_ = result.optimal;
  last_nodes_explored_ = result.nodes_explored;

  // Commit the solution. The set fits at some order per block, so sequential commits pass
  // the filters (feasibility of the exists-alpha constraint is subset-monotone).
  std::vector<size_t> granted;
  granted.reserve(result.selected.size());
  for (size_t k : result.selected) {
    size_t i = batch_index_[k];
    const Task& task = pending[i];
    for (BlockId j : task.blocks) {
      DPACK_CHECK_MSG(blocks.block(j).CanAccept(task.demand),
                      "optimal solution rejected by filter");
    }
    for (BlockId j : task.blocks) {
      blocks.block(j).Commit(task.demand);
    }
    granted.push_back(i);
  }
  return granted;
}

std::string SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kDpack:
      return "DPack";
    case SchedulerKind::kDpf:
      return "DPF";
    case SchedulerKind::kArea:
      return "Area";
    case SchedulerKind::kFcfs:
      return "FCFS";
    case SchedulerKind::kOptimal:
      return "Optimal";
  }
  return "unknown";
}

std::unique_ptr<Scheduler> CreateScheduler(SchedulerKind kind, double eta,
                                           PkOptions optimal_options, size_t num_shards,
                                           bool async) {
  GreedySchedulerOptions greedy_options;
  greedy_options.num_shards = num_shards;
  greedy_options.async = async;
  switch (kind) {
    case SchedulerKind::kDpack:
      greedy_options.eta = eta;
      return std::make_unique<GreedyScheduler>(GreedyMetric::kDpack, greedy_options);
    case SchedulerKind::kDpf:
      return std::make_unique<GreedyScheduler>(GreedyMetric::kDpf, greedy_options);
    case SchedulerKind::kArea:
      return std::make_unique<GreedyScheduler>(GreedyMetric::kArea, greedy_options);
    case SchedulerKind::kFcfs:
      return std::make_unique<GreedyScheduler>(GreedyMetric::kFcfs, greedy_options);
    case SchedulerKind::kOptimal:
      return std::make_unique<OptimalScheduler>(optimal_options);
  }
  DPACK_CHECK_MSG(false, "unhandled scheduler kind");
  return nullptr;
}

size_t ResolveNumShards(size_t requested, size_t known_blocks, size_t hardware_hint) {
  if (requested > 0) {
    return requested;
  }
  size_t hardware = hardware_hint > 0
                        ? hardware_hint
                        : static_cast<size_t>(std::thread::hardware_concurrency());
  if (hardware == 0) {
    hardware = 1;  // hardware_concurrency() may legitimately report "unknown".
  }
  return std::max<size_t>(1, std::min(hardware, known_blocks));
}

}  // namespace dpack
