#include "src/core/scheduler.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/check.h"
#include "src/core/efficiency.h"

namespace dpack {

namespace {

// Grants tasks in `order` whose demands all requested blocks accept, committing as it goes.
// With `head_of_line` set (FCFS semantics), allocation stops at the first task that cannot
// run: a first-come-first-serve queue does not backfill past its head, which is why FCFS
// does not prioritize low-demand tasks under contention (§6.3).
std::vector<size_t> AllocateInOrder(std::span<const Task> pending, BlockManager& blocks,
                                    std::span<const size_t> order, bool head_of_line = false) {
  std::vector<size_t> granted;
  for (size_t idx : order) {
    const Task& task = pending[idx];
    if (task.blocks.empty()) {
      continue;  // Unresolved block request (no blocks in the system yet).
    }
    bool can_run = true;
    for (BlockId j : task.blocks) {
      if (!blocks.block(j).CanAccept(task.demand)) {
        can_run = false;
        break;
      }
    }
    if (!can_run) {
      if (head_of_line) {
        break;
      }
      continue;
    }
    for (BlockId j : task.blocks) {
      blocks.block(j).Commit(task.demand);
    }
    granted.push_back(idx);
  }
  return granted;
}

// Sorts task indices by score descending, breaking ties by arrival time then id so results
// are deterministic.
std::vector<size_t> OrderByScoreDesc(std::span<const Task> pending,
                                     std::span<const double> scores) {
  std::vector<size_t> order(pending.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) {
      return scores[a] > scores[b];
    }
    if (pending[a].arrival_time != pending[b].arrival_time) {
      return pending[a].arrival_time < pending[b].arrival_time;
    }
    return pending[a].id < pending[b].id;
  });
  return order;
}

}  // namespace

GreedyScheduler::GreedyScheduler(GreedyMetric metric, GreedySchedulerOptions options)
    : metric_(metric), options_(options) {
  DPACK_CHECK(options_.eta > 0.0);
}

std::string GreedyScheduler::name() const {
  switch (metric_) {
    case GreedyMetric::kDpf:
      return "DPF";
    case GreedyMetric::kArea:
      return "Area";
    case GreedyMetric::kDpack:
      return "DPack";
    case GreedyMetric::kFcfs:
      return "FCFS";
  }
  return "Greedy";
}

std::vector<size_t> GreedyScheduler::ScheduleBatch(std::span<const Task> pending,
                                                   BlockManager& blocks) {
  if (pending.empty()) {
    return {};
  }
  if (metric_ == GreedyMetric::kFcfs) {
    std::vector<size_t> order(pending.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (pending[a].arrival_time != pending[b].arrival_time) {
        return pending[a].arrival_time < pending[b].arrival_time;
      }
      return pending[a].id < pending[b].id;
    });
    // The paper's framework runs every policy through the same greedy loop (Alg. 1): FCFS is
    // the arrival-order metric with the same skip-infeasible allocation as the others.
    return AllocateInOrder(pending, blocks, order);
  }

  CapacitySnapshot snapshot(blocks);
  std::vector<double> scores(pending.size(), 0.0);
  switch (metric_) {
    case GreedyMetric::kDpf:
      for (size_t i = 0; i < pending.size(); ++i) {
        scores[i] = DpfEfficiency(pending[i], snapshot);
      }
      break;
    case GreedyMetric::kArea:
      for (size_t i = 0; i < pending.size(); ++i) {
        scores[i] = AreaEfficiency(pending[i], snapshot);
      }
      break;
    case GreedyMetric::kDpack: {
      std::vector<size_t> best_alpha = ComputeBestAlphas(pending, snapshot, options_.eta);
      for (size_t i = 0; i < pending.size(); ++i) {
        scores[i] = DpackEfficiency(pending[i], snapshot, best_alpha);
      }
      break;
    }
    case GreedyMetric::kFcfs:
      break;  // Handled above.
  }
  return AllocateInOrder(pending, blocks, OrderByScoreDesc(pending, scores));
}

OptimalScheduler::OptimalScheduler(PkOptions options) : options_(options) {}

std::vector<size_t> OptimalScheduler::ScheduleBatch(std::span<const Task> pending,
                                                    BlockManager& blocks) {
  if (pending.empty()) {
    return {};
  }
  CapacitySnapshot snapshot(blocks);
  size_t num_orders = snapshot.grid()->size();
  PkInstance instance;
  instance.num_blocks = snapshot.block_count();
  instance.num_orders = num_orders;
  instance.capacity.resize(instance.num_blocks * num_orders);
  for (size_t j = 0; j < instance.num_blocks; ++j) {
    for (size_t a = 0; a < num_orders; ++a) {
      instance.capacity[j * num_orders + a] = snapshot.available(static_cast<BlockId>(j)).epsilon(a);
    }
  }
  // Map batch tasks (skipping unresolved ones) to instance tasks.
  std::vector<size_t> batch_index;
  for (size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].blocks.empty()) {
      continue;
    }
    PkTask pk;
    pk.weight = pending[i].weight;
    pk.blocks.reserve(pending[i].blocks.size());
    for (BlockId j : pending[i].blocks) {
      pk.blocks.push_back(static_cast<size_t>(j));
    }
    pk.demand = pending[i].demand.epsilons();
    instance.tasks.push_back(std::move(pk));
    batch_index.push_back(i);
  }
  if (instance.tasks.empty()) {
    return {};
  }
  PkResult result = SolvePrivacyKnapsackExact(instance, options_);
  last_solve_optimal_ = result.optimal;
  last_nodes_explored_ = result.nodes_explored;

  // Commit the solution. The set fits at some order per block, so sequential commits pass
  // the filters (feasibility of the exists-alpha constraint is subset-monotone).
  std::vector<size_t> granted;
  granted.reserve(result.selected.size());
  for (size_t k : result.selected) {
    size_t i = batch_index[k];
    const Task& task = pending[i];
    for (BlockId j : task.blocks) {
      DPACK_CHECK_MSG(blocks.block(j).CanAccept(task.demand),
                      "optimal solution rejected by filter");
    }
    for (BlockId j : task.blocks) {
      blocks.block(j).Commit(task.demand);
    }
    granted.push_back(i);
  }
  return granted;
}

std::string SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kDpack:
      return "DPack";
    case SchedulerKind::kDpf:
      return "DPF";
    case SchedulerKind::kArea:
      return "Area";
    case SchedulerKind::kFcfs:
      return "FCFS";
    case SchedulerKind::kOptimal:
      return "Optimal";
  }
  return "unknown";
}

std::unique_ptr<Scheduler> CreateScheduler(SchedulerKind kind, double eta,
                                           PkOptions optimal_options) {
  switch (kind) {
    case SchedulerKind::kDpack:
      return std::make_unique<GreedyScheduler>(GreedyMetric::kDpack,
                                               GreedySchedulerOptions{eta});
    case SchedulerKind::kDpf:
      return std::make_unique<GreedyScheduler>(GreedyMetric::kDpf);
    case SchedulerKind::kArea:
      return std::make_unique<GreedyScheduler>(GreedyMetric::kArea);
    case SchedulerKind::kFcfs:
      return std::make_unique<GreedyScheduler>(GreedyMetric::kFcfs);
    case SchedulerKind::kOptimal:
      return std::make_unique<OptimalScheduler>(optimal_options);
  }
  DPACK_CHECK_MSG(false, "unhandled scheduler kind");
  return nullptr;
}

}  // namespace dpack
