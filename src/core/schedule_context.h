// Incremental scheduling engine (§6.4 Q4 scalability): persists scoring state across
// scheduling cycles instead of recomputing every task's score from scratch.
//
// The recompute path (`RecomputeScheduleBatch`, the original GreedyScheduler behavior) costs
// O(pending × blocks × orders) per cycle — including DPack's per-(block, order) knapsack
// subproblems — even when almost nothing changed between cycles. In the online steady state
// only a few blocks change per cycle (the ones that received commits or unlocked more
// budget), so most cached scores are still exact. `ScheduleContext` exploits this:
//
//   - Dirty-block detection. `PrivacyBlock::version()` and `BlockManager::epoch()` are
//     monotonic counters bumped on commits, effective unlocks, and block arrivals. The
//     context remembers the last version it observed per block; a changed version marks the
//     block dirty and refreshes its entry in an incrementally-maintained CapacitySnapshot.
//     New arrivals are detected through the dense id space (block count growth); the epoch
//     is the coarse manager-level change signal for external consumers.
//     For DPack, a per-block signature over the ids of the pending tasks requesting the
//     block additionally marks membership changes dirty (best alphas depend on the
//     requester set, not just capacity).
//   - Cached scores. Each pending task's score is cached by task id and reused while every
//     input to it is provably unchanged: DPF scores depend only on total capacities (never
//     dirty), Area scores on the available curves of the task's blocks, DPack scores on
//     those curves plus the blocks' cached best-alpha solutions. Only tasks touching dirty
//     blocks (plus new tasks and tasks whose block list was re-resolved) are rescored.
//   - Lazily-revalidated score heap. Scored entries live in a priority structure ordered
//     exactly like the recompute path's sort (score desc, arrival asc, id asc). Because
//     every cycle pops the entire structure (the CANRUN walk visits every pending task), it
//     is kept in fully-sorted array form — which is itself a valid binary max-heap — and
//     each cycle's freshly-rescored entries are sorted and merged in. Stale entries —
//     superseded generations, granted or evicted tasks — are detected and dropped at pop
//     time during the merge, never eagerly.
//   - Feasibility memos in the allocation walk. A task whose CANRUN check failed remembers
//     the sum of its blocks' versions at rejection time. Versions are monotone
//     non-decreasing, so an unchanged sum proves every one of its blocks is unchanged —
//     the task is still infeasible and the per-order filter scan is skipped. Commits made
//     earlier in the same walk bump versions and so re-enable the scan, preserving exact
//     recompute-path semantics.
//
// Equivalence guarantee: for a batch with unique task ids the engine grants exactly the
// same task set as `RecomputeScheduleBatch` (see tests/core/incremental_equivalence_test.cc).
// Scores are computed by the same functions on bit-identical inputs, and the pop order is a
// merge of sorted runs under the same total order as the reference sort. Batches with
// duplicate ids fall back to the recompute path (the tie-broken sort is not reproducible
// from id-keyed caches).
//
// The engine lives inside `GreedyScheduler`, whose instance persists across
// `OnlineScheduler::RunCycle` calls — that persistence is what makes the cache pay off.

#ifndef SRC_CORE_SCHEDULE_CONTEXT_H_
#define SRC_CORE_SCHEDULE_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/block/block_manager.h"
#include "src/core/efficiency.h"
#include "src/core/task.h"

namespace dpack {

// Greedy allocation metrics shared by DPF / area / DPack / FCFS (§3).
enum class GreedyMetric {
  kDpf,    // Inverse dominant share (fairness-oriented, §3.1).
  kArea,   // Eq. 4: all-order demand area (block-aware, not best-alpha-aware).
  kDpack,  // Eq. 6: demand at each block's best alpha (Alg. 1).
  kFcfs,   // Arrival order.
};

// How AsyncScheduleEngine moves a shard thread's finished heap snapshot to the driver.
// Both modes produce byte-identical grants — publication only changes *how* heaps become
// visible, never the merge order (see src/core/async_schedule_engine.h).
enum class HeapPublishMode {
  kRing,   // Lock-free per-shard SPSC ring (src/common/spsc_ring.h); the default.
  kMutex,  // The pre-ring mutex/condvar handoff, kept for comparison benches and tests.
};

// Grants tasks in `order` whose demands all requested blocks accept, committing as it goes —
// the CANRUN loop of Alg. 1. Infeasible tasks are skipped, never block the later ones: every
// policy, including FCFS, backfills past tasks whose filters reject (which is why FCFS does
// not prioritize low-demand tasks under contention, §6.3). Tasks with an unresolved (empty)
// block list are skipped. Shared by the recompute and incremental paths (the incremental
// path layers feasibility memos on the same walk).
std::vector<size_t> AllocateInOrder(std::span<const Task> pending, BlockManager& blocks,
                                    std::span<const size_t> order);

// Reference recompute-everything scheduling pass: snapshot every block, score every pending
// task, sort, allocate. This is the pre-incremental `GreedyScheduler::ScheduleBatch`; the
// differential tests and benchmarks use it as the baseline, and `ScheduleContext` falls back
// to it when a batch has duplicate task ids.
std::vector<size_t> RecomputeScheduleBatch(GreedyMetric metric, double eta,
                                           std::span<const Task> pending,
                                           BlockManager& blocks);

// Counters describing how much work the engine reused vs redid. Monotonic over the context's
// lifetime. A sharded engine (ShardedScheduleContext) aggregates its per-shard counters into
// this struct, so consumers read one summary regardless of the shard count.
struct ScheduleContextStats {
  uint64_t cycles = 0;                 // ScheduleBatch calls (non-empty batches).
  uint64_t tasks_rescored = 0;         // Scores computed.
  uint64_t tasks_reused = 0;           // Scores served from cache.
  uint64_t blocks_refreshed = 0;       // Snapshot entries refreshed (version changes).
  uint64_t best_alpha_recomputes = 0;  // Per-block best-alpha subproblems solved.
  uint64_t full_recomputes = 0;        // Fallbacks to RecomputeScheduleBatch.
  // Heap-merge buffer growths (MergeScoreHeap scratch / the sharded N-way merge output).
  // The merge buffers persist across cycles, so steady-state cycles perform zero merge
  // allocations — pinned by tests and gated at zero in bench/baseline.json.
  uint64_t merge_allocs = 0;
  uint64_t shards = 1;                 // Shard count of the engine that produced these stats.

  // Async engine (AsyncScheduleEngine) counters; zero for the synchronous engines.
  //   - async_early_scores: rescores a shard thread computed *before* the global refresh
  //     fence, overlapped with the other shards' block refreshes (provably safe: the task's
  //     inputs are entirely shard-owned, or the metric is DPF, whose scores read only total
  //     capacities, which are immutable after arrival).
  //   - async_stale_publishes: published heap snapshots whose (epoch, version) clock stamp
  //     failed quiesce validation at the fence. Expected 0 under the cycle protocol; any
  //     occurrence means a concurrent Sync was caught and the batch fell back to the
  //     recompute reference (grants stay correct).
  //   - async_wasted_rescores: rescores discarded because their cycle's publication was
  //     stale (the work thrown away by a fallback).
  uint64_t async_early_scores = 0;
  uint64_t async_stale_publishes = 0;
  uint64_t async_wasted_rescores = 0;

  // Lock-free publication and pinning counters (AsyncScheduleEngine; zero elsewhere):
  //   - ring_publishes: heap snapshots delivered through the per-shard SPSC rings
  //     (HeapPublishMode::kRing). Exactly num_shards per cycle in ring mode, 0 in mutex
  //     mode — deterministic, so bench/baseline.json gates it.
  //   - ring_retries: producer-side full-ring retries. Zero by construction (the driver
  //     drains every ring each cycle and a shard publishes once per dispatch); gated at
  //     zero so a protocol regression that makes producers spin is caught.
  //   - pin_failures: shard threads that could not be pinned to their chosen core. A gauge,
  //     not a flow counter — set once per engine at thread startup (idempotently re-read
  //     each cycle), 0 on hosts whose cpuset permits pinning, and excluded from Accumulate/
  //     Delta so the fallback path cannot double- or zero-count it.
  uint64_t ring_publishes = 0;
  uint64_t ring_retries = 0;
  uint64_t pin_failures = 0;

  // Per-shard counters are summed into the run-wide totals above.
  void Accumulate(const ScheduleContextStats& other) {
    tasks_rescored += other.tasks_rescored;
    tasks_reused += other.tasks_reused;
    blocks_refreshed += other.blocks_refreshed;
    best_alpha_recomputes += other.best_alpha_recomputes;
    merge_allocs += other.merge_allocs;
    async_early_scores += other.async_early_scores;
    ring_publishes += other.ring_publishes;
    ring_retries += other.ring_retries;
  }

  // Counters are monotonic over an engine's lifetime; subtracting an earlier snapshot
  // isolates one run's (or one timed loop's) work. `shards` is carried over, not
  // subtracted — it identifies the engine, it is not a counter. The single definition all
  // delta consumers (orchestrator results, bench reports) must share, so a future counter
  // cannot be forgotten in one of them.
  ScheduleContextStats Delta(const ScheduleContextStats& before) const {
    ScheduleContextStats delta = *this;
    delta.cycles -= before.cycles;
    delta.tasks_rescored -= before.tasks_rescored;
    delta.tasks_reused -= before.tasks_reused;
    delta.blocks_refreshed -= before.blocks_refreshed;
    delta.best_alpha_recomputes -= before.best_alpha_recomputes;
    delta.full_recomputes -= before.full_recomputes;
    delta.merge_allocs -= before.merge_allocs;
    delta.async_early_scores -= before.async_early_scores;
    delta.async_stale_publishes -= before.async_stale_publishes;
    delta.async_wasted_rescores -= before.async_wasted_rescores;
    delta.ring_publishes -= before.ring_publishes;
    delta.ring_retries -= before.ring_retries;
    // pin_failures is a gauge (like shards): carried, not subtracted.
    return delta;
  }
};

// --- Engine internals shared by the single-shard and sharded engines -----------------------

// Cached per-task scoring state, keyed by task id.
struct TaskCache {
  double score = 0.0;
  uint64_t generation = 0;  // Matches the live heap entry for this task.
  // Version sum at last CANRUN rejection; ~0 = no memo.
  uint64_t reject_vsum = ~0ULL;
  // Cycle stamp: live iff == current cycle. ~0 = never pending (fresh entry; stamps are
  // small counters, so it matches no cycle); 0 = dead (granted).
  uint64_t last_seen = ~0ULL;
  // Set to the current cycle stamp by the reverse-index marking pass when one of the
  // task's blocks went dirty this cycle — the O(changed) replacement for scanning the
  // task's block list against a dirty bitmap. 0 (the default) matches no cycle.
  uint64_t stale_stamp = 0;
  size_t index = 0;          // Position in the current cycle's batch.
  // Identity of the task's resolved block list, for change detection: the block vector's
  // buffer travels with the task on moves, so an unchanged (pointer, size) pair means an
  // unchanged list under the immutability protocol. Late resolution reallocates (empty ->
  // non-empty) and is therefore always caught.
  const BlockId* blocks_ptr = nullptr;
  size_t blocks_len = 0;
};

// One scored entry of the lazily-revalidated score heap.
struct HeapEntry {
  double score = 0.0;
  double arrival = 0.0;
  TaskId id = 0;
  uint64_t generation = 0;
  size_t slot = 0;  // Cache slot index; revalidated via Find when slots have moved.
};

// True if `a` precedes `b` in allocation order (score desc, arrival asc, id asc) — exactly
// the recompute path's sort order. A strict total order for unique task ids, which is what
// makes the sharded engine's N-way heap merge deterministic.
bool HeapEntryBefore(const HeapEntry& a, const HeapEntry& b);

// DPack requester-set signatures: single-multiply sequence mix (splitmix64-style avalanche
// on the value, then a multiply fold). Sequence-sensitive, so a reordering of the same ids —
// which would change the item order fed to the best-alpha knapsacks — also changes the
// signature. Shared by the engines so per-block signature streams are comparable.
inline constexpr uint64_t kMemberSigSeed = 1469598103934665603ULL;
inline uint64_t MemberSigMix(uint64_t sig, uint64_t value) {
  value *= 0x9E3779B97F4A7C15ULL;
  value ^= value >> 29;
  return (sig ^ value) * 0xBF58476D1CE4E5B9ULL;
}

// Open-addressing map TaskId -> TaskCache. The engine does a couple of lookups per
// pending task per cycle, which makes std::unordered_map's indirections the bottleneck
// for cheap metrics; a flat linear-probe table keeps the overhead below the recompute
// path's scoring cost. Slot indices are stable except across Reserve/Purge rehashes,
// which the engines track to lazily re-resolve heap entries.
class TaskCacheMap {
 public:
  static constexpr size_t kNpos = static_cast<size_t>(-1);

  TaskCacheMap();
  size_t Find(TaskId id) const;  // kNpos when absent.
  // Returns the slot for `id`, inserting a default entry if absent. Requires a prior
  // Reserve covering the insert (so slots never move mid-cycle).
  size_t FindOrInsert(TaskId id);
  TaskCache& at(size_t slot) { return slots_[slot].value; }
  const TaskCache& at(size_t slot) const { return slots_[slot].value; }
  size_t size() const { return size_; }
  // Ensures capacity for `additional` more inserts without rehashing. Returns true if the
  // table rehashed (all slot indices invalidated).
  bool Reserve(size_t additional);
  // Drops every entry whose last_seen != `cycle`. Invalidates slot indices.
  void PurgeNotSeen(uint64_t cycle);
  void Clear();

 private:
  struct Slot {
    TaskId id = 0;
    bool used = false;
    TaskCache value;
  };
  size_t Probe(TaskId id) const;
  void Rehash(size_t new_capacity);

  std::vector<Slot> slots_;  // Power-of-two size.
  size_t size_ = 0;
};

// The per-cycle engine steps shared verbatim by ScheduleContext and
// ShardedScheduleContext. Keeping these as single definitions is what makes the two
// engines' grant sequences identical by construction: any change to the reuse, memo,
// ordering, or tolerance rules lands in both at once.

// Scores one task under `metric` against `snapshot` (and `best_alpha` for DPack). FCFS
// never scores (DPACK_CHECKs).
double ScoreGreedyTask(GreedyMetric metric, const Task& task, const CapacitySnapshot& snapshot,
                       std::span<const size_t> best_alpha);

// The score pass's reuse-vs-rescore decision for one task: a cache entry is only
// trustworthy if the task was pending in the immediately preceding cycle (last_seen) with
// an unchanged block list (the vector buffer travels with the task on moves; reallocation
// on late resolution changes the pointer), and — for the capacity-aware metrics — the
// reverse-index marking pass did not stamp it stale this cycle (DPF scores depend only on
// total capacities, which never change for a fixed block list, so DPF ignores dirtiness).
// Sets `needs_index` when the entry is new or re-resolved — the caller must (re)insert the
// task into the per-block reverse index so future marking passes reach it — and clears the
// feasibility memo in that case.
bool ShouldRescore(TaskCache& cached, const Task& task, GreedyMetric metric,
                   uint64_t previous_cycle, uint64_t cycle_stamp, bool& needs_index);

// Merges `heap` (persistent, fully sorted) with `fresh` (this cycle's rescored entries)
// under HeapEntryBefore — exactly the reference sort's total order — dropping stale
// entries (superseded generations, granted or evicted tasks) at pop time; when
// `slots_moved`, entries re-resolve their cache slot via Find. The merged live entries
// replace `heap` (via `scratch`), `fresh` is cleared, `slots_moved` reset. When
// `order_out` is non-null, each surviving entry's batch index is appended in merge order.
// `merge_allocs` is incremented when the merge had to grow its output buffer — the
// ping-pong scratch persists across cycles, so steady-state cycles increment it zero times.
void MergeScoreHeap(std::vector<HeapEntry>& heap, std::vector<HeapEntry>& fresh,
                    std::vector<HeapEntry>& scratch, const TaskCacheMap& cache,
                    uint64_t cycle_stamp, bool& slots_moved, uint64_t& merge_allocs,
                    std::vector<size_t>* order_out);

// The CANRUN walk over `order` with feasibility memos — identical grants to
// AllocateInOrder on the same order. Version sums are monotone (each version only grows),
// so an unchanged sum proves every requested block unchanged since a task's last
// rejection: still infeasible, skip the per-order filter scans. Commits made earlier in
// the walk bump `version_now`, so the memo can never mask newly-created contention.
// `cache_of_index` resolves a batch index to its TaskCache entry (engine-specific);
// templated so the per-task resolution inlines on this hot path.
template <typename CacheOfIndex>
std::vector<size_t> RunAllocationWalk(std::span<const Task> pending, BlockManager& blocks,
                                      std::span<const size_t> order,
                                      std::span<uint64_t> version_now,
                                      CacheOfIndex&& cache_of_index) {
  std::vector<size_t> granted;
  for (size_t idx : order) {
    const Task& task = pending[idx];
    if (task.blocks.empty()) {
      continue;  // Unresolved block request.
    }
    TaskCache& cached = cache_of_index(idx);
    uint64_t vsum = 0;
    for (BlockId j : task.blocks) {
      vsum += version_now[static_cast<size_t>(j)];
    }
    if (cached.reject_vsum == vsum) {
      continue;
    }
    bool can_run = true;
    for (BlockId j : task.blocks) {
      if (!blocks.block(j).CanAccept(task.demand)) {
        can_run = false;
        break;
      }
    }
    if (!can_run) {
      cached.reject_vsum = vsum;
      continue;
    }
    for (BlockId j : task.blocks) {
      blocks.block(j).Commit(task.demand);
      version_now[static_cast<size_t>(j)] = blocks.block(j).version();
    }
    cached.last_seen = 0;  // The grant removes the task from the queue.
    granted.push_back(idx);
  }
  return granted;
}

// Abstract incremental scheduling engine: the interface `GreedyScheduler` drives, with two
// implementations — the single-threaded `ScheduleContext` below and the multi-shard
// `ShardedScheduleContext` (src/core/sharded_schedule_context.h). Both grant exactly the
// same task sets as `RecomputeScheduleBatch` under the cycle protocol documented on
// ScheduleContext::ScheduleBatch.
class ScheduleEngine {
 public:
  virtual ~ScheduleEngine() = default;

  virtual std::vector<size_t> ScheduleBatch(std::span<const Task> pending,
                                            BlockManager& blocks) = 0;

  // Drops all cached state; the next cycle rebuilds from scratch. Required before pointing
  // the engine at a different BlockManager.
  virtual void Invalidate() = 0;

  virtual const ScheduleContextStats& stats() const = 0;
  virtual GreedyMetric metric() const = 0;
  virtual size_t num_shards() const { return 1; }
};

class ScheduleContext : public ScheduleEngine {
 public:
  // `eta` is DPack's approximation parameter (> 0); unused by the other metrics.
  explicit ScheduleContext(GreedyMetric metric, double eta = 0.05);

  // One scheduling cycle: refreshes dirty state, rescores affected tasks, and allocates in
  // score order, committing grants to `blocks`. Returns indices into `pending` of the
  // granted tasks, in grant order — identical to RecomputeScheduleBatch on the same state.
  //
  // Correct reuse assumes the cycle protocol of OnlineScheduler: between calls, pending
  // tasks are immutable per id (late block resolution excepted — it is detected, because it
  // reallocates the task's block vector), the same `blocks` manager is passed every cycle,
  // and all block mutation goes through Commit / SetUnlockedFraction / AddBlock so versions
  // advance. Call Invalidate() if any of this is violated (e.g. switching the context to a
  // different manager).
  std::vector<size_t> ScheduleBatch(std::span<const Task> pending,
                                    BlockManager& blocks) override;

  // Drops all cached state; the next cycle rebuilds from scratch.
  void Invalidate() override;

  GreedyMetric metric() const override { return metric_; }
  const ScheduleContextStats& stats() const override { return stats_; }

 private:
  void SyncBlocks(const BlockManager& blocks);
  void MarkMembershipDirty(std::span<const Task> pending);
  // Walks this cycle's dirty blocks and stamps their live home tasks stale through the
  // per-block reverse index — O(dirty blocks + their tasks), replacing the old
  // per-pending-task dirty-bitmap scan. Dead index entries (granted/evicted tasks, or
  // entries whose task was not pending last cycle) are swap-popped as they are met.
  void MarkStaleTasks(uint64_t previous_cycle);
  void RecomputeDirtyBestAlphas(std::span<const Task> pending);
  // Records block `j` as dirty this cycle, once (dirty_ids_ stays duplicate-free).
  void MarkDirtyBlock(size_t j) {
    if (dirty_stamp_[j] != cycle_stamp_) {
      dirty_stamp_[j] = cycle_stamp_;
      dirty_ids_.push_back(static_cast<BlockId>(j));
    }
  }
  double ScoreTask(const Task& task) const;
  // Pops the heap into order_ by merging the surviving sorted entries with the cycle's
  // freshly-rescored ones, dropping stale entries at pop time.
  void PopHeapIntoOrder();
  // The CANRUN walk over `order_` with feasibility memos; identical grants to
  // AllocateInOrder on the same order.
  std::vector<size_t> AllocateWithMemos(std::span<const Task> pending, BlockManager& blocks);

  GreedyMetric metric_;
  double eta_;
  ScheduleContextStats stats_;
  uint64_t cycle_stamp_ = 0;  // Incremented per ScheduleBatch; task cache liveness clock.

  // Block-side cache. The snapshot is created on the first cycle (it needs the manager's
  // grid) and then maintained incrementally. Dirty state is tracked as an explicit id list
  // (stamp-deduplicated) fed by the version-tree drill-down and the membership pass, so
  // per-cycle cost scales with the number of changed blocks, never the block count.
  std::optional<CapacitySnapshot> snapshot_;
  std::vector<uint64_t> last_version_;  // Size doubles as the known-block count.
  std::vector<uint64_t> version_now_;  // Contiguous mirror of block versions for the walk.
  std::vector<uint64_t> group_seen_;   // Version-tree group sums at the last sync.
  std::vector<uint64_t> dirty_stamp_;  // Per block: cycle stamp when last marked dirty.
  std::vector<BlockId> dirty_ids_;     // This cycle's dirty blocks, duplicate-free.
  std::vector<uint64_t> member_sig_;   // DPack: per-block requester-set signature.
  std::vector<size_t> best_alpha_;     // DPack: cached best order per block.
  std::vector<uint64_t> sig_scratch_;  // Per-cycle membership signature accumulator.
  // DPack membership bookkeeping, O(touched) per cycle: blocks whose signature was folded
  // this cycle (stamp-deduplicated), and blocks whose current signature is non-seed (the
  // only ones that can go dirty by *losing* all requesters).
  std::vector<uint64_t> touched_stamp_;
  std::vector<BlockId> touched_ids_;
  std::vector<BlockId> active_ids_;
  // Reverse index: per block, the ids of pending tasks requesting it. Tasks are inserted
  // when (re)scored with a new or re-resolved block list — so every live cached score has
  // its entries present — and lazily swap-popped when found dead by the marking pass.
  std::vector<std::vector<TaskId>> rindex_;

  // Task-side cache and score heap. heap_ holds the persistent entries in fully-sorted
  // (hence heap-ordered) form; fresh_ collects this cycle's rescored entries before the
  // merge-pop.
  TaskCacheMap cache_;
  std::vector<HeapEntry> heap_;
  std::vector<HeapEntry> fresh_;
  uint64_t next_generation_ = 1;
  bool slots_moved_ = false;  // Set on rehash/purge; entries re-resolve at next pop.

  // Scratch buffers reused across cycles to avoid per-cycle allocation.
  std::vector<HeapEntry> merged_;
  std::vector<size_t> order_;
  std::vector<size_t> slot_of_index_;            // Cache slot per batch index, per cycle.
  std::vector<std::vector<size_t>> requesters_;  // Per dirty block, for best-alpha solves.
};

}  // namespace dpack

#endif  // SRC_CORE_SCHEDULE_CONTEXT_H_
