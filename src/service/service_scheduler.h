// The multi-process scheduling engine: a daemon-side Scheduler that farms each cycle's
// scoring out to crash-isolated worker processes over the shared-memory transport and
// merges their replies into the exact grant sequence of the in-process engines.
//
// Grant-equivalence argument (pinned by tests/service/grant_service_test.cc and the crash
// matrix in tests/service/service_recovery_test.cc):
//   1. Workers score with the same pure functions the in-process engines call
//      (ScoreGreedyTask, BestAlphaForBlock) against replica curves shipped as raw IEEE-754
//      bits — so every (task, score) pair is bit-identical to what the daemon would have
//      computed itself, whichever worker computes it and however often it is recomputed.
//   2. The daemon merges all reply entries under HeapEntryBefore (score desc, arrival asc,
//      id asc) — the same strict total order as the reference sort — and walks
//      AllocateInOrder, the one shared CANRUN loop. Same scores + same total order + same
//      walk => byte-identical grants. FCFS ships as uniform zero scores, which collapses
//      the merge order to exactly FcfsOrder.
//   3. Crash recovery re-requests a dead worker's outstanding shards — from survivors
//      (kReassign) or from a respawned, checkpoint-restored replacement (kRespawn) — and by
//      (1) the recomputed entries are bit-identical to what the dead worker would have
//      sent. Block state cannot drift mid-round: the daemon mutates blocks only in
//      AllocateInOrder, after every reply is in, so the state a recovering worker restores
//      equals the state the round was broadcast against.
//
// Death detection is two-pronged (waitpid for corpses, a shared heartbeat for hangs), and
// every wait is an iteration budget at a fixed poll sleep — no clock reads anywhere on the
// scheduling path (scripts/dpack_lint.py enforces the same nondeterminism rules here as in
// src/core).

#ifndef SRC_SERVICE_SERVICE_SCHEDULER_H_
#define SRC_SERVICE_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/core/scheduler.h"
#include "src/service/messages.h"
#include "src/service/transport.h"
#include "src/service/worker.h"

namespace dpack {

// What the daemon does about a dead worker.
enum class ServiceRecovery {
  // Permanently reassign the dead worker's shards to the survivors (ascending round-robin)
  // and re-request any outstanding scores from them. The slot stays dead.
  kReassign,
  // Fork a replacement into the same slot: reset its rings (the daemon owns both ends of a
  // dead worker's rings, so stale in-flight frames are discarded, never double-applied),
  // re-bind, replay state through the checkpoint codec, and re-request.
  kRespawn,
};

struct ServiceConfig {
  size_t num_workers = 2;
  // Task-home shard count; 0 = num_workers. Fixed for the service lifetime so that shard
  // reassignment moves whole shards between workers without re-homing any task.
  size_t num_shards = 0;
  double eta = 0.05;  // DPack approximation parameter (kDpack only).
  ServiceRecovery recovery = ServiceRecovery::kReassign;
  // Transport tuning (see TransportConfig).
  size_t ring_bytes = 1 << 20;
  unsigned int poll_sleep_us = 50;
  uint64_t stall_budget = 40000;
  // Fault injection for the crash suites: after the score requests of round `kill_at_round`
  // (1-based; 0 = never) have been sent, SIGKILL worker `kill_worker` directly by pid —
  // bypassing the transport bookkeeping, so the daemon's own detection path (waitpid +
  // heartbeat) is what finds the corpse. Fires once.
  uint64_t kill_at_round = 0;
  size_t kill_worker = 0;
  // When set, the final counter values are copied here at destruction (the sim driver owns
  // the scheduler through a unique_ptr it destroys before reporting).
  ServiceCounters* counters_sink = nullptr;
};

class ServiceScheduler : public Scheduler {
 public:
  ServiceScheduler(GreedyMetric metric, ServiceConfig config = {});
  ~ServiceScheduler() override;

  std::string name() const override;

  // One distributed scheduling cycle. The worker fleet starts lazily on the first call
  // (the grid travels in the Bind message and comes from `blocks`). Batches with duplicate
  // task ids fall back to the recompute reference, exactly like the incremental engines.
  std::vector<size_t> ScheduleBatch(std::span<const Task> pending,
                                    BlockManager& blocks) override;

  // Clean fleet shutdown (also run by the destructor).
  void Shutdown();

  GreedyMetric metric() const { return metric_; }
  size_t num_shards() const { return num_shards_; }
  ServiceCounters& counters() { return transport_.counters(); }
  const ServiceCounters& counters() const { return transport_.counters(); }
  // Test access: pids for external kill injection, liveness, heartbeat inspection.
  ServiceTransport& transport() { return transport_; }

 private:
  void EnsureStarted(const BlockManager& blocks);
  void BindWorker(size_t w, const BlockManager& blocks);
  // Blocks until worker w's Hello arrives (budgeted; a worker dying mid-handshake is fatal).
  void AwaitHello(size_t w);
  // Ships the block/task diffs since the previous round to every live worker.
  void BroadcastDiffs(std::span<const Task> pending, const BlockManager& blocks);
  // Sends a score request for `shards` to worker w, registering it as outstanding first so
  // a send-time death hands it to recovery. Never call with empty `shards`.
  void SendScoreRequest(size_t w, std::vector<uint32_t> shards);
  // Handles one dead worker (slot already marked dead): reassign or respawn, re-requesting
  // whatever was outstanding. Requires round state (batch ids, pending, blocks) to be set.
  void RecoverWorker(size_t w);
  // Drains score replies until no request is outstanding, detecting deaths (waitpid) and
  // hangs (heartbeat stall over the iteration budget) as it waits.
  void CollectReplies();

  GreedyMetric metric_;
  ServiceConfig config_;
  size_t num_shards_ = 0;
  ServiceTransport transport_;
  bool kill_fired_ = false;

  // Diff bookkeeping (versions recorded at broadcast time, before the round's commits, so
  // allocation-phase changes are shipped at the next round).
  std::vector<uint64_t> last_version_;
  std::map<TaskId, size_t> sent_tasks_;  // id -> block-list length at last upsert.

  // Round state.
  uint64_t round_ = 0;
  std::vector<int64_t> batch_ids_;
  std::span<const Task> pending_;  // Valid during ScheduleBatch only.
  BlockManager* blocks_ = nullptr;  // Valid during ScheduleBatch only.
  std::vector<size_t> owner_of_shard_;
  // Outstanding score requests per worker: the shard set of each unanswered request, FIFO
  // (rings preserve order, so replies match front-first).
  std::vector<std::vector<std::vector<uint32_t>>> outstanding_;
  std::vector<bool> dead_handled_;  // Recovery ran for this (still-dead) slot.
  std::vector<ScoreReplyMsg::Entry> entries_;
};

}  // namespace dpack

#endif  // SRC_SERVICE_SERVICE_SCHEDULER_H_
