// The socket front of the grant service: remote tenants Submit grant requests and drive
// scheduling cycles over a Unix-domain or loopback-TCP stream, speaking the versioned
// ServiceMessage schema (src/service/messages.h) inside the exact frame contract the shm
// rings use — [u64 length][u64 FNV-1a][payload] (src/common/frame.h) — now reassembled from
// a byte stream instead of popped from shared memory.
//
// The daemon side is a single-threaded, event-driven accept loop: one PollOnce() step
// accepts pending connections, drains readable bytes, dispatches complete frames into the
// GrantService, and flushes reply bytes, all on nonblocking sockets — no new threads, no
// mutexes, and no clock reads anywhere near the scheduling path. Liveness is iteration
// budgets, exactly like the shm transport: a connection that holds a partial frame or an
// unflushed reply without making progress for `progress_budget` consecutive polls is
// disconnected.
//
// Clients are never trusted (the self-stabilizing stance: correctness must survive
// arbitrarily misbehaving peers):
//   - a frame length beyond max_frame_bytes is rejected the instant the header arrives,
//     never awaited;
//   - a checksum mismatch, an undecodable message, a worker-protocol message, a malformed
//     task payload, or a time-regressing request poisons the connection — the client is
//     dropped with a diagnostic, never resynchronized past the damage;
//   - a peer that vanishes mid-frame (SIGKILL, crash) is an EOF with a partial buffer:
//     the bytes are discarded and the daemon keeps scheduling;
//   - writes use MSG_NOSIGNAL, so a client closing its read end can never SIGPIPE the
//     daemon; an unflushable reply backlog beyond the out-buffer bound is a disconnect.
//
// Submissions funnel into the same bounded-queue admission control as in-process callers
// (GrantService::Submit; refusals counted in admission_rejects and reported per batch in
// SubmitReplyMsg). Because each request carries its virtual-time instant and the daemon
// applies its block-arrival schedule up to that instant before acting (advance hook), a
// remote workload's grant trace is byte-identical to the in-process sim driver's — proven
// by tests/service/net_transport_test.cc and the CI remote-client kill leg.

#ifndef SRC_SERVICE_NET_TRANSPORT_H_
#define SRC_SERVICE_NET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/block/block_manager.h"
#include "src/core/task.h"
#include "src/rdp/alpha_grid.h"
#include "src/service/grant_service.h"
#include "src/service/messages.h"

namespace dpack {

// A listen/connect endpoint: "unix:<path>" or "tcp:<port>" (loopback only — the service
// carries privacy budgets, so cross-machine transport is a federation-layer concern).
struct NetAddress {
  bool is_unix = false;
  std::string path;    // unix
  uint16_t port = 0;   // tcp (0 = ephemeral, resolved at Listen)
};

// Parses "unix:<path>" / "tcp:<port>". Returns false with a diagnostic on anything else.
bool ParseNetAddress(std::string_view text, NetAddress* out, std::string* error);

// Deterministic traffic counters of one socket endpoint (daemon front or client). Frame
// and byte counts are pure functions of the message sequence, so the fig12 bench gates
// them like every other engine-work counter; disconnect counters are only nonzero under
// injected faults.
struct NetCounters {
  uint64_t accepts = 0;             // Connections accepted.
  uint64_t disconnects = 0;         // Connections closed for any reason (EOF included).
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_sent = 0;          // Whole-frame bytes (header + payload).
  uint64_t bytes_received = 0;
  uint64_t protocol_rejects = 0;    // Corrupt/undecodable/malformed/hostile input dropped.
  uint64_t budget_disconnects = 0;  // Progress-budget exhaustions (slow-loris clients).
  uint64_t submits_accepted = 0;    // Tasks admitted through the socket edge.
  uint64_t submits_rejected = 0;    // Tasks refused by the admission bound.
  uint64_t cycles_run = 0;          // Scheduling cycles driven by remote RunCycle.
};

// One nonblocking stream socket with frame reassembly: partial reads accumulate into an
// input buffer until a complete checksum-clean frame is present; partial writes drain an
// output buffer as the kernel accepts bytes. EINTR is retried, EAGAIN means "no progress
// this poll", EOF/EPIPE/ECONNRESET mark the socket dead. Used by both the daemon front and
// the client (the client simply wraps its polls in budgeted wait loops).
class FrameSocket {
 public:
  // Takes ownership of `fd` and switches it to nonblocking mode.
  explicit FrameSocket(int fd);
  ~FrameSocket();
  FrameSocket(FrameSocket&&) = delete;  // Connections live behind unique_ptr.
  FrameSocket& operator=(FrameSocket&&) = delete;

  // Queues one frame for sending (header + payload appended to the output buffer).
  void QueueFrame(std::string_view payload);

  // Writes as much queued output as the kernel accepts. Returns true if any bytes moved.
  bool FlushSome();

  // Reads as much pending input as available. Returns true if any bytes arrived.
  bool ReadSome();

  // Extracts the next complete frame's payload, if present. kCorrupt poisons the socket
  // (dead() becomes true); the caller must drop the peer.
  enum class Next { kFrame, kNone, kCorrupt };
  Next NextFrame(std::string* payload, size_t max_frame_bytes, std::string* error);

  bool dead() const { return dead_; }
  // True while the peer owes us bytes (a partial frame is buffered) or we owe the kernel
  // bytes (unflushed output) — the states the progress budget meters.
  bool has_partial_input() const { return !in_.empty(); }
  size_t pending_output() const { return out_.size() - out_pos_; }

 private:
  int fd_ = -1;
  bool dead_ = false;
  std::string in_;
  std::string out_;
  size_t out_pos_ = 0;  // Flushed prefix of out_ (compacted when fully drained).
};

struct NetFrontConfig {
  // Maximum frame payload the front will buffer. Mirrors the shm transport's "message must
  // fit the ring" bound; a header declaring more is rejected immediately.
  size_t max_frame_bytes = 1 << 20;
  size_t max_connections = 8;
  // Reply bytes a connection may leave unread before it is dropped (backpressure bound,
  // the out-buffer analogue of the admission queue).
  size_t max_output_backlog = 4 << 20;
  // Consecutive no-progress polls a connection may hold a partial frame or unflushed
  // output; exhaustion is a disconnect (counted in budget_disconnects).
  uint64_t progress_budget = 40000;
  // Sleep between idle PollOnce() iterations in ServeUntilShutdown (microseconds; routed
  // through SleepFullMicros so EINTR never shortens the budget arithmetic).
  unsigned int poll_sleep_us = 200;
  // ServeUntilShutdown gives up after this many consecutive totally-idle polls (no
  // connections, no bytes). 0 = serve forever; harnesses set a bound so an orphaned
  // daemon exits instead of leaking.
  uint64_t serve_idle_budget = 0;
};

// Listening socket (Unix-domain path or loopback TCP). For tcp:0 the kernel assigns an
// ephemeral port, readable via address() after construction — tests bind without racing.
class NetListener {
 public:
  // DPACK_CHECKs on bind/listen failure (daemon startup, not hostile input). Unix paths
  // are unlinked before bind and on destruction.
  explicit NetListener(const NetAddress& address);
  ~NetListener();
  NetListener(const NetListener&) = delete;
  NetListener& operator=(const NetListener&) = delete;

  // Accepts one pending connection (nonblocking); -1 when none is waiting.
  int Accept();

  const NetAddress& address() const { return address_; }
  // The printable form clients connect to ("unix:<path>" / "tcp:<resolved port>").
  std::string address_string() const;

 private:
  int fd_ = -1;
  NetAddress address_;
};

// The daemon-side front: accepts tenant connections and funnels their Submit/RunCycle
// requests into `service`. `advance` is the daemon's block-arrival hook — called with each
// request's virtual-time instant before the request is applied, it adds every scheduled
// block with arrival <= now, reproducing the sim driver's block-before-task-before-cycle
// event order (src/sim/sim_driver.cc) so remote grants match in-process runs byte for byte.
class NetServiceFront {
 public:
  // `service`, `blocks`, and `grid` must outlive the front. `blocks` is the same manager
  // the service schedules against; the front uses it only to validate client block ids.
  NetServiceFront(GrantService* service, const BlockManager* blocks, AlphaGridPtr grid,
                  std::unique_ptr<NetListener> listener, NetFrontConfig config,
                  std::function<void(double)> advance);
  ~NetServiceFront();

  // One event-loop step: accept, read, dispatch, flush. Returns true if any connection
  // made progress (the caller sleeps only when nothing moved).
  bool PollOnce();

  // Runs PollOnce until a client sends Shutdown (returns true) or the idle budget runs out
  // (returns false; only with serve_idle_budget > 0). Remaining replies are flushed on a
  // budget before returning.
  bool ServeUntilShutdown();

  bool shutdown_received() const { return shutdown_received_; }
  const NetCounters& counters() const { return counters_; }
  const NetListener& listener() const { return *listener_; }
  // Granted ids of every remotely driven cycle, in cycle order (the remote grant trace).
  const std::vector<std::vector<TaskId>>& grant_trace() const { return grant_trace_; }

 private:
  struct Connection {
    std::unique_ptr<FrameSocket> socket;
    uint64_t no_progress_polls = 0;
  };

  void AcceptPending();
  // Processes every complete frame buffered on `conn`. Returns true on progress; sets
  // *drop when the connection must be closed (corruption, protocol violation, backlog).
  bool DrainFrames(Connection& conn, bool* drop);
  bool HandleMessage(Connection& conn, const ServiceMessage& message, bool* drop);
  void HandleSubmit(Connection& conn, const SubmitMsg& msg, bool* drop);
  void HandleRunCycle(Connection& conn, const RunCycleMsg& msg);
  // Validates one remote task payload against the daemon's grid and block population.
  // Returns false with a diagnostic for anything that could poison grant ordering or
  // crash the scheduler (wrong curve width, non-finite values, unknown or unsorted
  // block ids).
  bool ValidateEntry(const SubmitMsg::Entry& entry, std::string* error) const;
  void SendMessage(Connection& conn, const ServiceMessage& message);
  void CloseConnection(size_t index, const char* reason);

  GrantService* service_;
  const BlockManager* blocks_;
  AlphaGridPtr grid_;
  std::unique_ptr<NetListener> listener_;
  NetFrontConfig config_;
  std::function<void(double)> advance_;
  std::vector<Connection> connections_;
  NetCounters counters_;
  std::vector<std::vector<TaskId>> grant_trace_;
  // Virtual time is daemon-global and monotone: a request instant below the high-water
  // mark would rewind budget unlocking, so it is a protocol violation, not a replay.
  double time_high_water_ = 0.0;
  bool shutdown_received_ = false;
};

}  // namespace dpack

#endif  // SRC_SERVICE_NET_TRANSPORT_H_
