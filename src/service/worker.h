// Scheduler-worker process logic of the grant service: a curve/task replica maintained from
// the daemon's diff messages, a pure scoring round over it, and the serve loop
// ServiceWorkerMain runs inside each forked worker.
//
// Determinism contract (the service's half of the grant-equivalence invariant): every score
// the worker produces is a pure function of (replica curve bits, the round's batch ids in
// batch order, the requested shard set, the bound metric/eta). The daemon ships curves as
// raw IEEE-754 bits and the worker scores with the very same functions the in-process
// engines call (ScoreGreedyTask, BestAlphaForBlock), so a replica fed the same state
// computes bit-identical scores — whichever worker computes them, and however many times a
// shard is re-requested after a crash. No clocks, no randomness, no unordered iteration
// (std::map only): scripts/dpack_lint.py enforces the same rules here as in src/core.

#ifndef SRC_SERVICE_WORKER_H_
#define SRC_SERVICE_WORKER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/efficiency.h"
#include "src/core/task.h"
#include "src/rdp/alpha_grid.h"
#include "src/service/messages.h"
#include "src/service/transport.h"

namespace dpack {

// The worker-side mirror of the cluster state a scoring round reads: a dense-by-id
// CapacitySnapshot (same type the in-process engines score against) plus the pending-task
// payloads, keyed by id in an ordered map.
class WorkerReplica {
 public:
  // Bind: fixes the scoring configuration and resets the replica (a respawned worker is
  // re-bound before being re-fed state).
  void ApplyBind(const BindMsg& msg);

  // New blocks, in id order; ids must extend the replica densely (DPACK_CHECKs — the
  // protocol ships upserts in order and never skips).
  void ApplyBlockUpsert(const BlockUpsertMsg& msg);

  // Available-curve refreshes for known blocks.
  void ApplyBlockRefresh(const BlockRefreshMsg& msg);

  // Task payload upserts (new arrivals; re-sent on late block resolution).
  void ApplyTaskUpsert(const TaskUpsertMsg& msg);

  // Cold start from a checkpoint-codec snapshot blob: restores a byte-identical
  // BlockManager with the recovery subsystem's own codec, rebuilds the curve replica from
  // it, and adopts the snapshot's pending queue as the task payloads. Returns false with
  // *error set on a corrupt/mismatched blob.
  bool ApplyState(const StateMsg& msg, std::string* error);

  // Scores one round: rebuilds the batch from `batch_ids` (every id must be a known
  // payload), drops payloads not in the batch (granted or evicted tasks never return), and
  // returns entries for the tasks homed to the requested shards, in batch order.
  // Pure: identical replica state + identical request => bit-identical reply.
  ScoreReplyMsg ScoreRound(const ScoreRequestMsg& msg);

  bool bound() const { return bound_; }
  size_t block_count() const { return snapshot_ ? snapshot_->block_count() : 0; }
  size_t task_count() const { return tasks_.size(); }

 private:
  bool bound_ = false;
  uint32_t num_shards_ = 1;
  GreedyMetric metric_ = GreedyMetric::kDpack;
  double eta_ = 0.05;
  AlphaGridPtr grid_;
  std::optional<CapacitySnapshot> snapshot_;
  std::map<TaskId, Task> tasks_;  // Ordered: purge iteration must not depend on hash order.

  // Per-round scratch (persisted to avoid per-round allocation growth).
  std::vector<Task> batch_;
  std::vector<size_t> best_alpha_;
  std::vector<uint64_t> needed_stamp_;
  std::vector<std::vector<size_t>> requesters_;
  uint64_t round_stamp_ = 0;
};

// The serve loop: applies daemon messages to a fresh replica until Shutdown (exit 0), ring
// corruption or a protocol violation (exit 2), or a lost daemon (exit 3). Publishes kReady
// after the Bind handshake and kExited before a clean return.
int ServiceWorkerMain(WorkerEndpoint& endpoint);

}  // namespace dpack

#endif  // SRC_SERVICE_WORKER_H_
