#include "src/service/net_transport.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/common/cli.h"
#include "src/common/frame.h"
#include "src/common/sleep.h"

namespace dpack {

namespace {

constexpr char kUnixPrefix[] = "unix:";
constexpr char kTcpPrefix[] = "tcp:";

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  DPACK_CHECK(flags >= 0);
  DPACK_CHECK(fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

bool ParseNetAddress(std::string_view text, NetAddress* out, std::string* error) {
  if (text.rfind(kUnixPrefix, 0) == 0) {
    std::string_view path = text.substr(sizeof(kUnixPrefix) - 1);
    if (path.empty()) {
      *error = "unix address needs a path (unix:/some/path)";
      return false;
    }
    sockaddr_un probe;
    if (path.size() >= sizeof(probe.sun_path)) {
      *error = "unix socket path too long";
      return false;
    }
    out->is_unix = true;
    out->path.assign(path);
    return true;
  }
  if (text.rfind(kTcpPrefix, 0) == 0) {
    std::string_view port_text = text.substr(sizeof(kTcpPrefix) - 1);
    std::optional<uint64_t> port = TryParseUint64(port_text);
    if (!port.has_value() || *port > 65535) {
      *error = "tcp address needs a port in [0, 65535] (tcp:7001; 0 = ephemeral)";
      return false;
    }
    out->is_unix = false;
    out->port = static_cast<uint16_t>(*port);
    return true;
  }
  *error = "address must start with unix: or tcp:";
  return false;
}

// --- FrameSocket ---------------------------------------------------------------------------

FrameSocket::FrameSocket(int fd) : fd_(fd) {
  DPACK_CHECK(fd >= 0);
  SetNonBlocking(fd_);
}

FrameSocket::~FrameSocket() {
  if (fd_ >= 0) {
    close(fd_);
  }
}

void FrameSocket::QueueFrame(std::string_view payload) { AppendFrame(&out_, payload); }

bool FrameSocket::FlushSome() {
  bool progress = false;
  while (!dead_ && out_pos_ < out_.size()) {
    // MSG_NOSIGNAL: a peer that closed its read end yields EPIPE here, never a SIGPIPE
    // that would take the daemon down.
    ssize_t n = send(fd_, out_.data() + out_pos_, out_.size() - out_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<size_t>(n);
      progress = true;
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    dead_ = true;  // EPIPE, ECONNRESET, or any other terminal send failure.
  }
  if (out_pos_ == out_.size() && out_pos_ > 0) {
    out_.clear();
    out_pos_ = 0;
  }
  return progress;
}

bool FrameSocket::ReadSome() {
  bool progress = false;
  char buf[64 * 1024];
  while (!dead_) {
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.append(buf, static_cast<size_t>(n));
      progress = true;
      continue;
    }
    if (n == 0) {
      dead_ = true;  // Orderly EOF (or the tail end of a peer crash).
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    dead_ = true;  // ECONNRESET and friends.
  }
  return progress;
}

FrameSocket::Next FrameSocket::NextFrame(std::string* payload, size_t max_frame_bytes,
                                         std::string* error) {
  std::string_view body;
  size_t consumed = 0;
  switch (DecodeFrame(in_, max_frame_bytes, &body, &consumed, error)) {
    case FrameDecodeStatus::kOk:
      payload->assign(body);
      in_.erase(0, consumed);
      return Next::kFrame;
    case FrameDecodeStatus::kNeedMore:
      return Next::kNone;
    case FrameDecodeStatus::kCorrupt:
      // A stream reader cannot know where the next frame boundary is once one frame is
      // damaged — the connection is poison, exactly like a corrupt shm ring.
      dead_ = true;
      return Next::kCorrupt;
  }
  DPACK_CHECK(false);
  return Next::kCorrupt;
}

// --- NetListener ---------------------------------------------------------------------------

NetListener::NetListener(const NetAddress& address) : address_(address) {
  if (address_.is_unix) {
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    DPACK_CHECK(fd_ >= 0);
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    DPACK_CHECK(address_.path.size() < sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, address_.path.c_str(), address_.path.size() + 1);
    unlink(address_.path.c_str());  // A stale socket file from a dead daemon.
    DPACK_CHECK_MSG(bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                    "cannot bind unix socket " << address_.path);
  } else {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    DPACK_CHECK(fd_ >= 0);
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(address_.port);
    DPACK_CHECK_MSG(bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                    "cannot bind tcp port " << address_.port);
    socklen_t len = sizeof(addr);
    DPACK_CHECK(getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
    address_.port = ntohs(addr.sin_port);  // Resolve tcp:0 to the assigned port.
  }
  DPACK_CHECK(listen(fd_, 16) == 0);
  SetNonBlocking(fd_);
}

NetListener::~NetListener() {
  if (fd_ >= 0) {
    close(fd_);
  }
  if (address_.is_unix) {
    unlink(address_.path.c_str());
  }
}

int NetListener::Accept() {
  while (true) {
    int fd = accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      return fd;
    }
    if (errno == EINTR) {
      continue;
    }
    return -1;  // EAGAIN (nothing pending) or a transient accept failure.
  }
}

std::string NetListener::address_string() const {
  if (address_.is_unix) {
    return std::string(kUnixPrefix) + address_.path;
  }
  return std::string(kTcpPrefix) + std::to_string(address_.port);
}

// --- NetServiceFront -----------------------------------------------------------------------

NetServiceFront::NetServiceFront(GrantService* service, const BlockManager* blocks,
                                 AlphaGridPtr grid, std::unique_ptr<NetListener> listener,
                                 NetFrontConfig config, std::function<void(double)> advance)
    : service_(service),
      blocks_(blocks),
      grid_(std::move(grid)),
      listener_(std::move(listener)),
      config_(config),
      advance_(std::move(advance)) {
  DPACK_CHECK(service_ != nullptr);
  DPACK_CHECK(blocks_ != nullptr);
  DPACK_CHECK(grid_ != nullptr);
  DPACK_CHECK(listener_ != nullptr);
  DPACK_CHECK(config_.max_frame_bytes >= kFrameHeaderBytes);
  DPACK_CHECK(config_.progress_budget >= 1);
}

NetServiceFront::~NetServiceFront() = default;

void NetServiceFront::AcceptPending() {
  while (true) {
    int fd = listener_->Accept();
    if (fd < 0) {
      return;
    }
    if (connections_.size() >= config_.max_connections) {
      // Over the cap: refuse outright. Accept-then-close beats leaving the backlog to
      // fill — the client sees a deterministic EOF instead of a hang.
      close(fd);
      ++counters_.protocol_rejects;
      std::fprintf(stderr, "net: connection refused (cap %zu reached)\n",
                   config_.max_connections);
      continue;
    }
    Connection conn;
    conn.socket = std::make_unique<FrameSocket>(fd);
    connections_.push_back(std::move(conn));
    ++counters_.accepts;
  }
}

bool NetServiceFront::ValidateEntry(const SubmitMsg::Entry& entry, std::string* error) const {
  if (entry.demand.size() != grid_->size()) {
    *error = "demand curve width " + std::to_string(entry.demand.size()) +
             " does not match the service grid (" + std::to_string(grid_->size()) + ")";
    return false;
  }
  for (double eps : entry.demand) {
    if (!std::isfinite(eps) || eps < 0.0) {
      *error = "demand epsilon must be finite and non-negative";
      return false;
    }
  }
  if (!std::isfinite(entry.weight) || entry.weight <= 0.0) {
    *error = "weight must be finite and positive";
    return false;
  }
  if (!std::isfinite(entry.arrival_time) || entry.arrival_time < 0.0) {
    *error = "arrival_time must be finite and non-negative";
    return false;
  }
  // +inf (never evicted) is the one sanctioned non-finite; NaN would poison every eviction
  // comparison and a negative deadline is meaningless.
  if (std::isnan(entry.timeout) || entry.timeout < 0.0) {
    *error = "timeout must be non-negative or +inf";
    return false;
  }
  int64_t known_blocks = static_cast<int64_t>(blocks_->block_count());
  for (size_t b = 0; b < entry.blocks.size(); ++b) {
    if (entry.blocks[b] < 0 || entry.blocks[b] >= known_blocks) {
      *error = "block id " + std::to_string(entry.blocks[b]) + " outside the known range";
      return false;
    }
    // Strictly ascending is the canonical encoding (trace_io enforces the same): a
    // duplicate id would double-charge that block's budget on grant.
    if (b > 0 && entry.blocks[b - 1] >= entry.blocks[b]) {
      *error = "block list must be sorted and distinct";
      return false;
    }
  }
  return true;
}

void NetServiceFront::SendMessage(Connection& conn, const ServiceMessage& message) {
  std::string payload = EncodeMessage(message);
  conn.socket->QueueFrame(payload);
  ++counters_.frames_sent;
  counters_.bytes_sent += kFrameHeaderBytes + payload.size();
}

void NetServiceFront::HandleSubmit(Connection& conn, const SubmitMsg& msg, bool* drop) {
  if (!std::isfinite(msg.now) || msg.now < time_high_water_) {
    std::fprintf(stderr, "net: submit instant %f regresses virtual time %f; dropping peer\n",
                 msg.now, time_high_water_);
    ++counters_.protocol_rejects;
    *drop = true;
    return;
  }
  // Block arrivals at or before this instant fire first (the sim driver's event order:
  // kBlockArrival < kTaskArrival), and validation runs against the advanced population.
  advance_(msg.now);
  time_high_water_ = msg.now;
  for (const SubmitMsg::Entry& entry : msg.entries) {
    std::string error;
    if (!ValidateEntry(entry, &error)) {
      std::fprintf(stderr, "net: malformed submission (task %lld): %s; dropping peer\n",
                   static_cast<long long>(entry.id), error.c_str());
      ++counters_.protocol_rejects;
      *drop = true;
      return;
    }
  }
  SubmitReplyMsg reply;
  reply.seq = msg.seq;
  for (const SubmitMsg::Entry& entry : msg.entries) {
    Task task(entry.id, entry.weight, RdpCurve(grid_, entry.demand));
    task.arrival_time = entry.arrival_time;
    task.timeout = entry.timeout;
    task.num_recent_blocks = static_cast<size_t>(entry.num_recent_blocks);
    task.blocks.reserve(entry.blocks.size());
    for (int64_t b : entry.blocks) {
      task.blocks.push_back(static_cast<BlockId>(b));
    }
    if (service_->Submit(std::move(task))) {
      ++reply.accepted;
      ++counters_.submits_accepted;
    } else {
      ++reply.rejected;  // The admission bound refused it; mirrored in admission_rejects.
      ++counters_.submits_rejected;
    }
  }
  SendMessage(conn, reply);
}

void NetServiceFront::HandleRunCycle(Connection& conn, const RunCycleMsg& msg) {
  advance_(msg.now);
  time_high_water_ = msg.now;
  service_->RunCycle(msg.now);
  grant_trace_.push_back(service_->last_granted());
  ++counters_.cycles_run;
  CycleReplyMsg reply;
  reply.seq = msg.seq;
  reply.cycle = grant_trace_.size() - 1;
  reply.granted.reserve(grant_trace_.back().size());
  for (TaskId id : grant_trace_.back()) {
    reply.granted.push_back(static_cast<int64_t>(id));
  }
  SendMessage(conn, reply);
}

bool NetServiceFront::HandleMessage(Connection& conn, const ServiceMessage& message,
                                    bool* drop) {
  if (const auto* submit = std::get_if<SubmitMsg>(&message)) {
    HandleSubmit(conn, *submit, drop);
    return true;
  }
  if (const auto* cycle = std::get_if<RunCycleMsg>(&message)) {
    if (!std::isfinite(cycle->now) || cycle->now < time_high_water_) {
      std::fprintf(stderr, "net: cycle instant %f regresses virtual time %f; dropping peer\n",
                   cycle->now, time_high_water_);
      ++counters_.protocol_rejects;
      *drop = true;
      return true;
    }
    HandleRunCycle(conn, *cycle);
    return true;
  }
  if (std::holds_alternative<ShutdownMsg>(message)) {
    shutdown_received_ = true;
    return true;
  }
  // Worker-protocol or reply-typed messages have no business arriving from a tenant.
  std::fprintf(stderr, "net: unexpected message type %zu from client; dropping peer\n",
               message.index());
  ++counters_.protocol_rejects;
  *drop = true;
  return true;
}

bool NetServiceFront::DrainFrames(Connection& conn, bool* drop) {
  bool progress = false;
  std::string payload;
  std::string error;
  while (!*drop && !shutdown_received_) {
    FrameSocket::Next next = conn.socket->NextFrame(&payload, config_.max_frame_bytes,
                                                    &error);
    if (next == FrameSocket::Next::kNone) {
      break;
    }
    progress = true;
    if (next == FrameSocket::Next::kCorrupt) {
      std::fprintf(stderr, "net: corrupt frame from client: %s; dropping peer\n",
                   error.c_str());
      ++counters_.protocol_rejects;
      *drop = true;
      break;
    }
    ++counters_.frames_received;
    counters_.bytes_received += kFrameHeaderBytes + payload.size();
    ServiceMessage message;
    if (!DecodeMessage(payload, &message, &error)) {
      std::fprintf(stderr, "net: undecodable message from client: %s; dropping peer\n",
                   error.c_str());
      ++counters_.protocol_rejects;
      *drop = true;
      break;
    }
    HandleMessage(conn, message, drop);
  }
  if (!*drop && conn.socket->pending_output() > config_.max_output_backlog) {
    std::fprintf(stderr, "net: client not draining replies (%zu bytes queued); dropping\n",
                 conn.socket->pending_output());
    ++counters_.protocol_rejects;
    *drop = true;
  }
  return progress;
}

void NetServiceFront::CloseConnection(size_t index, const char* reason) {
  Connection& conn = connections_[index];
  if (conn.socket->has_partial_input()) {
    // The SIGKILL-mid-frame shape: the peer vanished with a frame half-sent. The partial
    // bytes are discarded, never interpreted.
    std::fprintf(stderr, "net: dropping %s connection with a partial frame buffered\n",
                 reason);
  }
  ++counters_.disconnects;
  connections_.erase(connections_.begin() + static_cast<ptrdiff_t>(index));
}

bool NetServiceFront::PollOnce() {
  size_t before = connections_.size();
  AcceptPending();
  bool progress = connections_.size() != before;
  for (size_t i = 0; i < connections_.size();) {
    Connection& conn = connections_[i];
    bool moved = false;
    moved |= conn.socket->FlushSome();
    moved |= conn.socket->ReadSome();
    bool drop = false;
    // Drain even when the socket already hit EOF: complete frames that arrived before the
    // peer died (a final Shutdown, say) must still be applied.
    moved |= DrainFrames(conn, &drop);
    moved |= conn.socket->FlushSome();
    if (drop || conn.socket->dead()) {
      CloseConnection(i, drop ? "misbehaving" : "closed");
      progress = true;
      continue;
    }
    bool has_pending_work =
        conn.socket->has_partial_input() || conn.socket->pending_output() > 0;
    if (moved || !has_pending_work) {
      conn.no_progress_polls = 0;
    } else if (++conn.no_progress_polls >= config_.progress_budget) {
      std::fprintf(stderr,
                   "net: connection stalled for %llu polls (budget exhausted); dropping\n",
                   static_cast<unsigned long long>(conn.no_progress_polls));
      ++counters_.budget_disconnects;
      CloseConnection(i, "stalled");
      progress = true;
      continue;
    }
    progress |= moved;
    ++i;
  }
  return progress;
}

bool NetServiceFront::ServeUntilShutdown() {
  uint64_t idle_polls = 0;
  while (!shutdown_received_) {
    if (PollOnce()) {
      idle_polls = 0;
      continue;
    }
    if (config_.serve_idle_budget > 0 && ++idle_polls >= config_.serve_idle_budget) {
      std::fprintf(stderr, "net: serve idle budget exhausted; stopping\n");
      return false;
    }
    SleepFullMicros(config_.poll_sleep_us);
  }
  // Flush the replies still owed to well-behaved clients, on the same progress budget a
  // single connection gets; whoever has not drained by then is dropped with the daemon.
  for (uint64_t i = 0; i < config_.progress_budget; ++i) {
    bool any_pending = false;
    for (Connection& conn : connections_) {
      conn.socket->FlushSome();
      any_pending |= !conn.socket->dead() && conn.socket->pending_output() > 0;
    }
    if (!any_pending) {
      break;
    }
    SleepFullMicros(config_.poll_sleep_us);
  }
  counters_.disconnects += connections_.size();
  connections_.clear();
  return true;
}

}  // namespace dpack
