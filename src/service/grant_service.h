// The grant-request API of the multi-process service: one facade owning the online driver
// with a ServiceScheduler inner, fronted by admission control with a bounded queue.
//
// This is the long-running deployment shape (the paper's PrivateKube scheduler runs as a
// control-plane service): clients Submit grant requests, the daemon runs a scheduling cycle
// per period, and worker processes do the scoring — crash-isolated, so a worker SIGKILL
// never takes the service (or a byte of grant-order determinism) with it. Backpressure is
// explicit: when the pending queue is at capacity, Submit refuses (the caller sheds or
// retries) instead of queueing unboundedly; rejections are counted, never silently dropped.

#ifndef SRC_SERVICE_GRANT_SERVICE_H_
#define SRC_SERVICE_GRANT_SERVICE_H_

#include <memory>

#include "src/block/block_manager.h"
#include "src/core/online_scheduler.h"
#include "src/service/service_scheduler.h"

namespace dpack {

struct GrantServiceConfig {
  ServiceConfig service;
  // Pending-queue bound for admission control; 0 = unbounded (tests and differential runs
  // that must absorb every submission).
  size_t admission_queue_capacity = 0;
  double period = 1.0;
  int64_t unlock_steps = 50;
  int64_t fair_share_n = 0;
};

class GrantService {
 public:
  // `blocks` must outlive the service.
  GrantService(GreedyMetric metric, BlockManager* blocks, GrantServiceConfig config);

  // Admission-controlled submission: false when the queue is at capacity (counted in
  // counters().admission_rejects; the task is absorbed nowhere).
  bool Submit(Task task);

  // One service scheduling cycle at virtual time `now`; returns the number of grants.
  size_t RunCycle(double now);

  size_t pending_count() const { return online_->pending_count(); }
  const std::vector<TaskId>& last_granted() const { return online_->last_granted(); }
  const AllocationMetrics& metrics() const { return online_->metrics(); }

  // Transport + service counters, with admission_rejects mirrored in.
  ServiceCounters counters() const;

  // The distributed engine, for fleet introspection (pids, liveness) in tests.
  ServiceScheduler& scheduler() { return *scheduler_; }

 private:
  ServiceScheduler* scheduler_;  // Owned by online_'s inner scheduler slot.
  std::unique_ptr<OnlineScheduler> online_;
};

}  // namespace dpack

#endif  // SRC_SERVICE_GRANT_SERVICE_H_
