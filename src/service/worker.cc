#include "src/service/worker.h"

#include <algorithm>
#include <utility>

#include "src/block/block_manager.h"
#include "src/common/check.h"
#include "src/core/schedule_context.h"
#include "src/orchestrator/checkpoint.h"

namespace dpack {

namespace {

// Task-home shard, normalized so negative ids land in [0, num_shards) too.
uint32_t HomeShard(TaskId id, uint32_t num_shards) {
  int64_t m = id % static_cast<int64_t>(num_shards);
  if (m < 0) {
    m += static_cast<int64_t>(num_shards);
  }
  return static_cast<uint32_t>(m);
}

}  // namespace

void WorkerReplica::ApplyBind(const BindMsg& msg) {
  DPACK_CHECK(msg.num_shards >= 1);
  DPACK_CHECK(!msg.alpha_orders.empty());
  num_shards_ = msg.num_shards;
  metric_ = msg.metric;
  eta_ = msg.eta;
  grid_ = AlphaGrid::Create(msg.alpha_orders);
  snapshot_.emplace(grid_);
  tasks_.clear();
  best_alpha_.clear();
  needed_stamp_.clear();
  requesters_.clear();
  round_stamp_ = 0;
  bound_ = true;
}

void WorkerReplica::ApplyBlockUpsert(const BlockUpsertMsg& msg) {
  DPACK_CHECK(bound_);
  for (const BlockUpsertMsg::Entry& e : msg.entries) {
    DPACK_CHECK_MSG(e.id >= 0 &&
                        static_cast<size_t>(e.id) == snapshot_->block_count(),
                    "block upsert out of order: id " << e.id << " with "
                                                     << snapshot_->block_count()
                                                     << " blocks known");
    snapshot_->Append(RdpCurve(grid_, e.available), RdpCurve(grid_, e.total));
  }
}

void WorkerReplica::ApplyBlockRefresh(const BlockRefreshMsg& msg) {
  DPACK_CHECK(bound_);
  for (const BlockRefreshMsg::Entry& e : msg.entries) {
    DPACK_CHECK_MSG(e.id >= 0 && static_cast<size_t>(e.id) < snapshot_->block_count(),
                    "block refresh for unknown id " << e.id);
    snapshot_->RefreshAvailable(static_cast<BlockId>(e.id), RdpCurve(grid_, e.available));
  }
}

void WorkerReplica::ApplyTaskUpsert(const TaskUpsertMsg& msg) {
  DPACK_CHECK(bound_);
  for (const TaskUpsertMsg::Entry& e : msg.entries) {
    Task task(static_cast<TaskId>(e.id), e.weight, RdpCurve(grid_, e.demand));
    task.arrival_time = e.arrival_time;
    task.blocks.reserve(e.blocks.size());
    for (int64_t b : e.blocks) {
      task.blocks.push_back(static_cast<BlockId>(b));
    }
    tasks_.insert_or_assign(task.id, std::move(task));
  }
}

bool WorkerReplica::ApplyState(const StateMsg& msg, std::string* error) {
  DPACK_CHECK(bound_);
  SnapshotParseResult parsed = DecodeSnapshot(msg.snapshot);
  if (!parsed.ok) {
    *error = parsed.error;
    return false;
  }
  if (!SameGrid(AlphaGrid::Create(parsed.snapshot.grid_orders), grid_)) {
    *error = "state snapshot grid does not match the bound grid";
    return false;
  }
  // The recovery subsystem's restore rebuilds a byte-identical BlockManager; snapshotting
  // that manager with the engines' own CapacitySnapshot ctor reproduces the exact curve
  // bits the daemon's live manager would yield — cold start and recovery share one format.
  BlockManager restored = RestoreBlockManager(parsed.snapshot, grid_);
  snapshot_.emplace(restored);
  tasks_.clear();
  for (Task& task : RestorePendingTasks(parsed.snapshot, grid_)) {
    TaskId id = task.id;
    tasks_.insert_or_assign(id, std::move(task));
  }
  return true;
}

ScoreReplyMsg WorkerReplica::ScoreRound(const ScoreRequestMsg& msg) {
  DPACK_CHECK(bound_);
  ScoreReplyMsg reply;
  reply.round = msg.round;

  // Rebuild the batch, in batch order, from the payload map.
  batch_.clear();
  batch_.reserve(msg.batch_ids.size());
  for (int64_t id : msg.batch_ids) {
    auto it = tasks_.find(static_cast<TaskId>(id));
    DPACK_CHECK_MSG(it != tasks_.end(), "score request references unknown task " << id);
    batch_.push_back(it->second);
  }

  // Drop payloads absent from the batch: a granted or evicted task never reappears, and
  // the purge keeps replica memory proportional to the live queue. (Ordered map + sorted
  // id probe: no hash-order dependence anywhere near the scoring path.)
  std::vector<int64_t> sorted_ids = msg.batch_ids;
  std::sort(sorted_ids.begin(), sorted_ids.end());
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    if (std::binary_search(sorted_ids.begin(), sorted_ids.end(),
                           static_cast<int64_t>(it->first))) {
      ++it;
    } else {
      it = tasks_.erase(it);
    }
  }

  // The shard set this round assigns to this worker (explicit in the request, so shard
  // reassignment after a crash re-requests the same pure computation from a survivor).
  std::vector<bool> home_shard(num_shards_, false);
  for (uint32_t s : msg.shards) {
    DPACK_CHECK_MSG(s < num_shards_, "score request shard " << s << " out of range");
    home_shard[s] = true;
  }
  auto is_home = [&](const Task& task) { return home_shard[HomeShard(task.id, num_shards_)]; };

  if (metric_ == GreedyMetric::kFcfs) {
    // FCFS never scores; uniform zero scores make the daemon's merge order (score desc,
    // arrival asc, id asc) collapse to exactly FcfsOrder (arrival asc, id asc).
    for (const Task& task : batch_) {
      if (is_home(task)) {
        reply.entries.push_back({0.0, task.arrival_time, task.id});
      }
    }
    return reply;
  }

  std::span<const Task> batch_span(batch_);
  std::span<const size_t> best_alpha_span;
  if (metric_ == GreedyMetric::kDpack) {
    // Solve best alphas only for blocks some home task requests — but with requester lists
    // drawn from the FULL batch in batch order, exactly the inputs ComputeBestAlphas feeds
    // BestAlphaForBlock, so the per-block solutions are bit-identical to the reference.
    ++round_stamp_;
    size_t block_count = snapshot_->block_count();
    best_alpha_.assign(block_count, 0);
    needed_stamp_.resize(block_count, 0);
    requesters_.resize(block_count);
    std::vector<BlockId> needed;
    for (const Task& task : batch_) {
      if (!is_home(task)) {
        continue;
      }
      for (BlockId j : task.blocks) {
        DPACK_CHECK_MSG(j >= 0 && static_cast<size_t>(j) < block_count,
                        "task references unknown block " << j);
        if (needed_stamp_[static_cast<size_t>(j)] != round_stamp_) {
          needed_stamp_[static_cast<size_t>(j)] = round_stamp_;
          needed.push_back(j);
          requesters_[static_cast<size_t>(j)].clear();
        }
      }
    }
    for (size_t i = 0; i < batch_.size(); ++i) {
      for (BlockId j : batch_[i].blocks) {
        if (j >= 0 && static_cast<size_t>(j) < block_count &&
            needed_stamp_[static_cast<size_t>(j)] == round_stamp_) {
          requesters_[static_cast<size_t>(j)].push_back(i);
        }
      }
    }
    for (BlockId j : needed) {
      best_alpha_[static_cast<size_t>(j)] =
          BestAlphaForBlock(batch_span, requesters_[static_cast<size_t>(j)],
                            snapshot_->available(j), eta_);
    }
    best_alpha_span = std::span<const size_t>(best_alpha_);
  }

  for (const Task& task : batch_) {
    if (!is_home(task)) {
      continue;
    }
    double score = ScoreGreedyTask(metric_, task, *snapshot_, best_alpha_span);
    reply.entries.push_back({score, task.arrival_time, task.id});
  }
  return reply;
}

int ServiceWorkerMain(WorkerEndpoint& endpoint) {
  WorkerReplica replica;
  ServiceMessage msg;
  while (endpoint.Receive(&msg)) {
    if (auto* bind = std::get_if<BindMsg>(&msg)) {
      replica.ApplyBind(*bind);
      if (!endpoint.Send(HelloMsg{static_cast<uint32_t>(endpoint.index())})) {
        return 3;
      }
      endpoint.SetLifeState(WorkerLifeState::kReady);
    } else if (auto* blocks = std::get_if<BlockUpsertMsg>(&msg)) {
      replica.ApplyBlockUpsert(*blocks);
    } else if (auto* refresh = std::get_if<BlockRefreshMsg>(&msg)) {
      replica.ApplyBlockRefresh(*refresh);
    } else if (auto* tasks = std::get_if<TaskUpsertMsg>(&msg)) {
      replica.ApplyTaskUpsert(*tasks);
    } else if (auto* state = std::get_if<StateMsg>(&msg)) {
      std::string error;
      if (!replica.ApplyState(*state, &error)) {
        return 2;
      }
    } else if (auto* request = std::get_if<ScoreRequestMsg>(&msg)) {
      if (!endpoint.Send(replica.ScoreRound(*request))) {
        return 3;
      }
    } else if (std::get_if<ShutdownMsg>(&msg) != nullptr) {
      endpoint.SetLifeState(WorkerLifeState::kExited);
      return 0;
    } else {
      return 2;  // ScoreReply/Hello arriving at a worker is a protocol violation.
    }
  }
  return 2;  // Corrupt inbound ring, undecodable frame, or orphaned by a dead daemon.
}

}  // namespace dpack
