#include "src/service/service_scheduler.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/core/metrics.h"
#include "src/core/schedule_context.h"
#include "src/orchestrator/checkpoint.h"

namespace dpack {

namespace {

TransportConfig TransportConfigFor(const ServiceConfig& config) {
  TransportConfig t;
  t.num_workers = config.num_workers;
  t.ring_bytes = config.ring_bytes;
  t.poll_sleep_us = config.poll_sleep_us;
  t.stall_budget = config.stall_budget;
  return t;
}

}  // namespace

ServiceScheduler::ServiceScheduler(GreedyMetric metric, ServiceConfig config)
    : metric_(metric),
      config_(config),
      num_shards_(config.num_shards > 0 ? config.num_shards : config.num_workers),
      transport_(TransportConfigFor(config),
                 [](WorkerEndpoint& endpoint) { return ServiceWorkerMain(endpoint); }) {
  DPACK_CHECK(config_.num_workers >= 1);
  DPACK_CHECK(num_shards_ >= 1);
}

ServiceScheduler::~ServiceScheduler() {
  Shutdown();
  if (config_.counters_sink != nullptr) {
    *config_.counters_sink = transport_.counters();
  }
}

std::string ServiceScheduler::name() const {
  switch (metric_) {
    case GreedyMetric::kDpf:
      return "ServiceDPF";
    case GreedyMetric::kArea:
      return "ServiceArea";
    case GreedyMetric::kDpack:
      return "ServiceDPack";
    case GreedyMetric::kFcfs:
      return "ServiceFCFS";
  }
  return "Service";
}

void ServiceScheduler::Shutdown() {
  if (transport_.started()) {
    transport_.ShutdownAll();
  }
}

void ServiceScheduler::BindWorker(size_t w, const BlockManager& blocks) {
  BindMsg bind;
  bind.worker_index = static_cast<uint32_t>(w);
  bind.num_workers = static_cast<uint32_t>(config_.num_workers);
  bind.num_shards = static_cast<uint32_t>(num_shards_);
  bind.metric = metric_;
  bind.eta = config_.eta;
  bind.alpha_orders = blocks.grid()->orders();
  DPACK_CHECK_MSG(transport_.Send(w, bind), "worker " << w << " died before binding");
  AwaitHello(w);
}

void ServiceScheduler::AwaitHello(size_t w) {
  uint64_t polls = 0;
  while (true) {
    ServiceMessage msg;
    std::string error;
    RingPopStatus status = transport_.TryReceive(w, &msg, &error);
    if (status == RingPopStatus::kOk) {
      auto* hello = std::get_if<HelloMsg>(&msg);
      DPACK_CHECK_MSG(hello != nullptr && hello->worker_index == w,
                      "worker " << w << " answered Bind with the wrong message");
      return;
    }
    DPACK_CHECK_MSG(status != RingPopStatus::kCorrupt,
                    "worker " << w << " ring corrupt during bind: " << error);
    DPACK_CHECK_MSG(transport_.Poll(w) == ChildState::kRunning,
                    "worker " << w << " died during the bind handshake");
    DPACK_CHECK_MSG(++polls < config_.stall_budget,
                    "worker " << w << " never answered Bind (stall budget exhausted)");
    if (config_.poll_sleep_us > 0) {
      usleep(config_.poll_sleep_us);
    }
  }
}

void ServiceScheduler::EnsureStarted(const BlockManager& blocks) {
  if (transport_.started()) {
    return;
  }
  transport_.Start();
  outstanding_.resize(config_.num_workers);
  dead_handled_.assign(config_.num_workers, false);
  owner_of_shard_.resize(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    owner_of_shard_[s] = s % config_.num_workers;
  }
  for (size_t w = 0; w < config_.num_workers; ++w) {
    BindWorker(w, blocks);
  }
}

void ServiceScheduler::BroadcastDiffs(std::span<const Task> pending,
                                      const BlockManager& blocks) {
  BlockUpsertMsg upserts;
  BlockRefreshMsg refreshes;
  size_t count = blocks.block_count();
  for (size_t j = 0; j < count; ++j) {
    const PrivacyBlock& b = blocks.block(static_cast<BlockId>(j));
    if (j >= last_version_.size()) {
      upserts.entries.push_back({static_cast<int64_t>(j), b.AvailableCurve().epsilons(),
                                 b.capacity().epsilons()});
      last_version_.push_back(b.version());
    } else if (b.version() != last_version_[j]) {
      refreshes.entries.push_back({static_cast<int64_t>(j), b.AvailableCurve().epsilons()});
      last_version_[j] = b.version();
    }
  }

  TaskUpsertMsg tasks;
  for (const Task& task : pending) {
    auto it = sent_tasks_.find(task.id);
    // Re-send on a block-list length change: late resolution (empty -> resolved) is the one
    // sanctioned post-submission mutation, and it always changes the length.
    if (it != sent_tasks_.end() && it->second == task.blocks.size()) {
      continue;
    }
    TaskUpsertMsg::Entry entry;
    entry.id = task.id;
    entry.weight = task.weight;
    entry.arrival_time = task.arrival_time;
    entry.demand = task.demand.epsilons();
    entry.blocks.reserve(task.blocks.size());
    for (BlockId b : task.blocks) {
      entry.blocks.push_back(static_cast<int64_t>(b));
    }
    tasks.entries.push_back(std::move(entry));
    sent_tasks_[task.id] = task.blocks.size();
  }
  // Forget tasks no longer pending (granted or evicted; they never return).
  std::vector<int64_t> sorted_ids = batch_ids_;
  std::sort(sorted_ids.begin(), sorted_ids.end());
  for (auto it = sent_tasks_.begin(); it != sent_tasks_.end();) {
    if (std::binary_search(sorted_ids.begin(), sorted_ids.end(),
                           static_cast<int64_t>(it->first))) {
      ++it;
    } else {
      it = sent_tasks_.erase(it);
    }
  }

  for (size_t w = 0; w < config_.num_workers; ++w) {
    if (!transport_.alive(w)) {
      continue;
    }
    // A send failure means the worker died mid-broadcast; recovery (pre-request) rebuilds
    // its replica from a post-diff snapshot, so skipping the rest of its diff is safe.
    if (!upserts.entries.empty() && !transport_.Send(w, upserts)) {
      continue;
    }
    if (!refreshes.entries.empty() && !transport_.Send(w, refreshes)) {
      continue;
    }
    if (!tasks.entries.empty()) {
      transport_.Send(w, tasks);
    }
  }
}

void ServiceScheduler::SendScoreRequest(size_t w, std::vector<uint32_t> shards) {
  DPACK_CHECK(!shards.empty());
  ScoreRequestMsg request;
  request.round = round_;
  request.batch_ids = batch_ids_;
  request.shards = shards;
  // Register before sending: if the worker dies under the send, RecoverWorker finds the
  // request among its orphans and re-routes it.
  outstanding_[w].push_back(std::move(shards));
  if (!transport_.Send(w, request)) {
    RecoverWorker(w);
  }
}

void ServiceScheduler::RecoverWorker(size_t w) {
  DPACK_CHECK(!transport_.alive(w));
  if (dead_handled_[w]) {
    return;
  }
  dead_handled_[w] = true;
  ++transport_.counters().recoveries;

  // Everything this worker still owed the current round.
  std::vector<uint32_t> orphans;
  for (const std::vector<uint32_t>& shards : outstanding_[w]) {
    orphans.insert(orphans.end(), shards.begin(), shards.end());
  }
  outstanding_[w].clear();

  if (config_.recovery == ServiceRecovery::kRespawn) {
    // The daemon owns both ends of a dead worker's rings: resetting them discards stale
    // in-flight frames a replacement must never double-apply.
    transport_.ResetRings(w);
    transport_.Respawn(w);
    dead_handled_[w] = false;  // Alive again.
    DPACK_CHECK(blocks_ != nullptr);
    BindWorker(w, *blocks_);
    // Cold start through the checkpoint codec: the replica the replacement restores is
    // byte-identical to the state the round was broadcast against, because blocks mutate
    // only in AllocateInOrder — after every reply is in — never mid-round.
    AllocationMetrics metrics;
    SnapshotMeta meta;
    meta.period = 1.0;
    meta.unlock_steps = 1;
    meta.num_shards = 1;
    for (const Task& task : pending_) {
      metrics.RecordSubmission(task.weight, false);
      meta.checkpoint_time = std::max(meta.checkpoint_time, task.arrival_time);
    }
    meta.next_cycle_time = meta.checkpoint_time;
    StateMsg state;
    state.snapshot = EncodeSnapshotBinary(CaptureSnapshot(*blocks_, pending_, metrics, meta));
    ++transport_.counters().state_replays;
    if (transport_.Send(w, state)) {
      if (!orphans.empty()) {
        SendScoreRequest(w, std::move(orphans));
      }
      return;
    }
    // The replacement died immediately (double fault); fall through to reassignment so the
    // round still completes.
    dead_handled_[w] = false;
    RecoverWorker(w);
    return;
  }

  // kReassign: every shard the dead worker owned moves to the survivors, permanently,
  // ascending round-robin — a deterministic function of (owner map, liveness), so repeated
  // runs with the same fault schedule re-derive the same assignment.
  std::vector<size_t> survivors;
  for (size_t v = 0; v < config_.num_workers; ++v) {
    if (transport_.alive(v)) {
      survivors.push_back(v);
    }
  }
  DPACK_CHECK_MSG(!survivors.empty(), "every scheduler worker is dead; cannot recover");
  size_t next = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    if (owner_of_shard_[s] == w) {
      owner_of_shard_[s] = survivors[next++ % survivors.size()];
    }
  }
  if (!orphans.empty()) {
    // Scoring is pure, so a survivor re-scoring the orphaned shards against its replica
    // produces bit-identical entries to what the dead worker would have sent.
    std::map<size_t, std::vector<uint32_t>> reroute;
    for (uint32_t s : orphans) {
      reroute[owner_of_shard_[s]].push_back(s);
    }
    for (auto& [owner, shards] : reroute) {
      SendScoreRequest(owner, std::move(shards));
    }
  }
}

void ServiceScheduler::CollectReplies() {
  entries_.clear();
  size_t workers = config_.num_workers;
  std::vector<uint64_t> last_heartbeat(workers, 0);
  std::vector<uint64_t> stalled_polls(workers, 0);
  for (size_t w = 0; w < workers; ++w) {
    if (transport_.alive(w)) {
      last_heartbeat[w] = transport_.heartbeat(w);
    }
  }
  auto outstanding_total = [&] {
    size_t total = 0;
    for (const auto& queue : outstanding_) {
      total += queue.size();
    }
    return total;
  };
  while (outstanding_total() > 0) {
    bool progress = false;
    for (size_t w = 0; w < workers; ++w) {
      if (outstanding_[w].empty() || !transport_.alive(w)) {
        continue;
      }
      ServiceMessage msg;
      std::string error;
      RingPopStatus status = transport_.TryReceive(w, &msg, &error);
      if (status == RingPopStatus::kEmpty) {
        continue;
      }
      if (status == RingPopStatus::kCorrupt) {
        // A poisoned ring is indistinguishable from a corrupted worker: replace it and
        // re-request, exactly like a death.
        transport_.Kill(w, SIGKILL);
        RecoverWorker(w);
        progress = true;
        continue;
      }
      if (auto* reply = std::get_if<ScoreReplyMsg>(&msg)) {
        DPACK_CHECK_MSG(reply->round == round_, "worker " << w << " answered round "
                                                          << reply->round << " in round "
                                                          << round_);
        entries_.insert(entries_.end(), reply->entries.begin(), reply->entries.end());
        outstanding_[w].erase(outstanding_[w].begin());  // FIFO: front request answered.
        progress = true;
      } else {
        DPACK_CHECK_MSG(false, "unexpected message type from worker " << w);
      }
    }
    // A worker marked dead with requests still registered (send-time detection outside
    // RecoverWorker) is handed to recovery here.
    for (size_t w = 0; w < workers; ++w) {
      if (!outstanding_[w].empty() && !transport_.alive(w) && !dead_handled_[w]) {
        RecoverWorker(w);
        progress = true;
      }
    }
    if (progress) {
      continue;
    }
    // No frame anywhere: look for corpses (waitpid) and hangs (heartbeat stalled for the
    // whole iteration budget — the heartbeat advances on every worker poll, so a stall of
    // budget * poll_sleep_us with a live pid means SIGSTOP or a wedge, and the daemon
    // replaces the worker the same way it replaces a corpse).
    for (size_t w = 0; w < workers; ++w) {
      if (outstanding_[w].empty() || !transport_.alive(w)) {
        continue;
      }
      if (transport_.Poll(w) != ChildState::kRunning) {
        RecoverWorker(w);
        continue;
      }
      uint64_t beat = transport_.heartbeat(w);
      if (beat != last_heartbeat[w]) {
        last_heartbeat[w] = beat;
        stalled_polls[w] = 0;
      } else if (++stalled_polls[w] >= config_.stall_budget) {
        transport_.Kill(w, SIGKILL);
        RecoverWorker(w);
      }
    }
    if (config_.poll_sleep_us > 0) {
      usleep(config_.poll_sleep_us);
    }
  }
}

std::vector<size_t> ServiceScheduler::ScheduleBatch(std::span<const Task> pending,
                                                    BlockManager& blocks) {
  if (pending.empty()) {
    return {};  // No round — matches the reference (and keeps counters workload-pure).
  }
  // Duplicate ids cannot be keyed by id across the wire; fall back to the recompute
  // reference exactly like the incremental engines do. Diff bookkeeping self-heals: the
  // fallback's commits bump block versions (shipped next round) and granted ids purge.
  batch_ids_.clear();
  batch_ids_.reserve(pending.size());
  for (const Task& task : pending) {
    batch_ids_.push_back(task.id);
  }
  std::vector<int64_t> sorted_ids = batch_ids_;
  std::sort(sorted_ids.begin(), sorted_ids.end());
  if (std::adjacent_find(sorted_ids.begin(), sorted_ids.end()) != sorted_ids.end()) {
    return RecomputeScheduleBatch(metric_, config_.eta, pending, blocks);
  }

  EnsureStarted(blocks);
  pending_ = pending;
  blocks_ = &blocks;

  // Cheap pre-broadcast corpse sweep: deaths since the last cycle are found now and
  // recovered (post-diff) before any request goes out.
  for (size_t w = 0; w < config_.num_workers; ++w) {
    if (transport_.alive(w)) {
      transport_.Poll(w);
    }
  }

  BroadcastDiffs(pending, blocks);
  ++round_;
  ++transport_.counters().score_rounds;

  // Recover any dead worker before requesting: a respawned replacement restores the
  // post-diff state; a reassignment re-homes its shards so every shard has a live owner.
  for (size_t w = 0; w < config_.num_workers; ++w) {
    if (!transport_.alive(w) && !dead_handled_[w]) {
      RecoverWorker(w);
    }
  }

  for (size_t w = 0; w < config_.num_workers; ++w) {
    if (!transport_.alive(w)) {
      continue;
    }
    std::vector<uint32_t> shards;
    for (size_t s = 0; s < num_shards_; ++s) {
      if (owner_of_shard_[s] == w) {
        shards.push_back(static_cast<uint32_t>(s));
      }
    }
    if (!shards.empty()) {
      SendScoreRequest(w, std::move(shards));
    }
  }

  // Fault injection: SIGKILL by raw pid, after the requests are in flight, bypassing the
  // transport bookkeeping — the daemon must *discover* the death through its own
  // waitpid/heartbeat path, which is the machinery under test.
  if (!kill_fired_ && config_.kill_at_round == round_ &&
      config_.kill_worker < config_.num_workers) {
    kill_fired_ = true;
    if (transport_.alive(config_.kill_worker)) {
      KillChild(transport_.pid(config_.kill_worker), SIGKILL);
    }
  }

  CollectReplies();

  DPACK_CHECK_MSG(entries_.size() == pending.size(),
                  "merged " << entries_.size() << " score entries for a batch of "
                            << pending.size());
  std::vector<HeapEntry> merged;
  merged.reserve(entries_.size());
  for (const ScoreReplyMsg::Entry& e : entries_) {
    HeapEntry entry;
    entry.score = e.score;
    entry.arrival = e.arrival_time;
    entry.id = static_cast<TaskId>(e.id);
    merged.push_back(entry);
  }
  // HeapEntryBefore is the reference sort's exact total order (score desc, arrival asc,
  // id asc) — strict for unique ids, so the merged order is deterministic regardless of
  // which worker produced which entry.
  std::sort(merged.begin(), merged.end(), HeapEntryBefore);
  std::map<TaskId, size_t> index_of_id;
  for (size_t i = 0; i < pending.size(); ++i) {
    index_of_id.emplace(pending[i].id, i);
  }
  std::vector<size_t> order;
  order.reserve(merged.size());
  for (const HeapEntry& entry : merged) {
    auto it = index_of_id.find(entry.id);
    DPACK_CHECK_MSG(it != index_of_id.end(), "worker scored unknown task " << entry.id);
    order.push_back(it->second);
  }
  std::vector<size_t> granted = AllocateInOrder(pending, blocks, order);
  pending_ = {};
  blocks_ = nullptr;
  return granted;
}

}  // namespace dpack
