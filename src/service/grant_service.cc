#include "src/service/grant_service.h"

#include <utility>

#include "src/common/check.h"

namespace dpack {

GrantService::GrantService(GreedyMetric metric, BlockManager* blocks,
                           GrantServiceConfig config) {
  DPACK_CHECK(blocks != nullptr);
  auto scheduler = std::make_unique<ServiceScheduler>(metric, config.service);
  scheduler_ = scheduler.get();
  OnlineSchedulerConfig online_config;
  online_config.period = config.period;
  online_config.unlock_steps = config.unlock_steps;
  online_config.fair_share_n = config.fair_share_n;
  online_config.admission_queue_capacity = config.admission_queue_capacity;
  online_ = std::make_unique<OnlineScheduler>(std::move(scheduler), blocks, online_config);
}

bool GrantService::Submit(Task task) {
  if (!online_->Submit(std::move(task))) {
    ++scheduler_->counters().admission_rejects;
    return false;
  }
  return true;
}

size_t GrantService::RunCycle(double now) { return online_->RunCycle(now); }

ServiceCounters GrantService::counters() const { return scheduler_->counters(); }

}  // namespace dpack
