#include "src/service/messages.h"

#include "src/common/check.h"
#include "src/common/wire.h"

namespace dpack {

namespace {

constexpr char kServiceMagic[4] = {'D', 'S', 'V', 'C'};

enum class MsgType : uint8_t {
  kBind = 1,
  kBlockUpsert = 2,
  kBlockRefresh = 3,
  kTaskUpsert = 4,
  kState = 5,
  kScoreRequest = 6,
  kScoreReply = 7,
  kHello = 8,
  kShutdown = 9,
  kSubmit = 10,
  kSubmitReply = 11,
  kRunCycle = 12,
  kCycleReply = 13,
};

void EncodeBody(BinaryWriter& w, const BindMsg& m) {
  w.U32(m.worker_index);
  w.U32(m.num_workers);
  w.U32(m.num_shards);
  w.U8(static_cast<uint8_t>(m.metric));
  w.F64(m.eta);
  w.F64Vec(m.alpha_orders);
}

void EncodeBody(BinaryWriter& w, const BlockUpsertMsg& m) {
  w.U64(m.entries.size());
  for (const auto& e : m.entries) {
    w.I64(e.id);
    w.F64Vec(e.available);
    w.F64Vec(e.total);
  }
}

void EncodeBody(BinaryWriter& w, const BlockRefreshMsg& m) {
  w.U64(m.entries.size());
  for (const auto& e : m.entries) {
    w.I64(e.id);
    w.F64Vec(e.available);
  }
}

void EncodeBody(BinaryWriter& w, const TaskUpsertMsg& m) {
  w.U64(m.entries.size());
  for (const auto& e : m.entries) {
    w.I64(e.id);
    w.F64(e.weight);
    w.F64(e.arrival_time);
    w.F64Vec(e.demand);
    w.I64Vec(e.blocks);
  }
}

void EncodeBody(BinaryWriter& w, const StateMsg& m) {
  w.U64(m.snapshot.size());
  w.Bytes(m.snapshot);
}

void EncodeBody(BinaryWriter& w, const ScoreRequestMsg& m) {
  w.U64(m.round);
  w.I64Vec(m.batch_ids);
  w.U64(m.shards.size());
  for (uint32_t s : m.shards) {
    w.U32(s);
  }
}

void EncodeBody(BinaryWriter& w, const ScoreReplyMsg& m) {
  w.U64(m.round);
  w.U64(m.entries.size());
  for (const auto& e : m.entries) {
    w.F64(e.score);
    w.F64(e.arrival_time);
    w.I64(e.id);
  }
}

void EncodeBody(BinaryWriter& w, const HelloMsg& m) { w.U32(m.worker_index); }

void EncodeBody(BinaryWriter&, const ShutdownMsg&) {}

void EncodeBody(BinaryWriter& w, const SubmitMsg& m) {
  w.U64(m.seq);
  w.F64(m.now);
  w.U64(m.entries.size());
  for (const auto& e : m.entries) {
    w.I64(e.id);
    w.F64(e.weight);
    w.F64(e.arrival_time);
    w.F64(e.timeout);
    w.U64(e.num_recent_blocks);
    w.F64Vec(e.demand);
    w.I64Vec(e.blocks);
  }
}

void EncodeBody(BinaryWriter& w, const SubmitReplyMsg& m) {
  w.U64(m.seq);
  w.U64(m.accepted);
  w.U64(m.rejected);
}

void EncodeBody(BinaryWriter& w, const RunCycleMsg& m) {
  w.U64(m.seq);
  w.F64(m.now);
}

void EncodeBody(BinaryWriter& w, const CycleReplyMsg& m) {
  w.U64(m.seq);
  w.U64(m.cycle);
  w.I64Vec(m.granted);
}

MsgType TypeOf(const ServiceMessage& message) {
  switch (message.index()) {
    case 0:
      return MsgType::kBind;
    case 1:
      return MsgType::kBlockUpsert;
    case 2:
      return MsgType::kBlockRefresh;
    case 3:
      return MsgType::kTaskUpsert;
    case 4:
      return MsgType::kState;
    case 5:
      return MsgType::kScoreRequest;
    case 6:
      return MsgType::kScoreReply;
    case 7:
      return MsgType::kHello;
    case 8:
      return MsgType::kShutdown;
    case 9:
      return MsgType::kSubmit;
    case 10:
      return MsgType::kSubmitReply;
    case 11:
      return MsgType::kRunCycle;
    case 12:
      return MsgType::kCycleReply;
    default:
      DPACK_CHECK(false);
      return MsgType::kShutdown;
  }
}

bool DecodeBody(BinaryReader& r, BindMsg* m) {
  uint8_t metric = 0;
  if (!r.U32(&m->worker_index, "bind.worker_index") ||
      !r.U32(&m->num_workers, "bind.num_workers") ||
      !r.U32(&m->num_shards, "bind.num_shards") || !r.U8(&metric, "bind.metric") ||
      !r.F64(&m->eta, "bind.eta") || !r.F64Vec(&m->alpha_orders, "bind.alpha_orders")) {
    return false;
  }
  if (metric > static_cast<uint8_t>(GreedyMetric::kFcfs)) {
    r.FailWith("bind.metric out of range");
    return false;
  }
  m->metric = static_cast<GreedyMetric>(metric);
  return true;
}

bool DecodeBody(BinaryReader& r, BlockUpsertMsg* m) {
  uint64_t count = 0;
  if (!r.Count(&count, 8 + 8 + 8, "block_upsert.entries")) {
    return false;
  }
  m->entries.resize(static_cast<size_t>(count));
  for (auto& e : m->entries) {
    if (!r.I64(&e.id, "block_upsert.id") || !r.F64Vec(&e.available, "block_upsert.available") ||
        !r.F64Vec(&e.total, "block_upsert.total")) {
      return false;
    }
  }
  return true;
}

bool DecodeBody(BinaryReader& r, BlockRefreshMsg* m) {
  uint64_t count = 0;
  if (!r.Count(&count, 8 + 8, "block_refresh.entries")) {
    return false;
  }
  m->entries.resize(static_cast<size_t>(count));
  for (auto& e : m->entries) {
    if (!r.I64(&e.id, "block_refresh.id") ||
        !r.F64Vec(&e.available, "block_refresh.available")) {
      return false;
    }
  }
  return true;
}

bool DecodeBody(BinaryReader& r, TaskUpsertMsg* m) {
  uint64_t count = 0;
  if (!r.Count(&count, 8 * 5, "task_upsert.entries")) {
    return false;
  }
  m->entries.resize(static_cast<size_t>(count));
  for (auto& e : m->entries) {
    if (!r.I64(&e.id, "task_upsert.id") || !r.F64(&e.weight, "task_upsert.weight") ||
        !r.F64(&e.arrival_time, "task_upsert.arrival_time") ||
        !r.F64Vec(&e.demand, "task_upsert.demand") ||
        !r.I64Vec(&e.blocks, "task_upsert.blocks")) {
      return false;
    }
  }
  return true;
}

bool DecodeBody(BinaryReader& r, StateMsg* m) {
  uint64_t size = 0;
  if (!r.Count(&size, 1, "state.snapshot")) {
    return false;
  }
  std::string_view bytes;
  if (!r.BytesView(static_cast<size_t>(size), &bytes, "state.snapshot")) {
    return false;
  }
  m->snapshot.assign(bytes);
  return true;
}

bool DecodeBody(BinaryReader& r, ScoreRequestMsg* m) {
  if (!r.U64(&m->round, "score_request.round") ||
      !r.I64Vec(&m->batch_ids, "score_request.batch_ids")) {
    return false;
  }
  uint64_t count = 0;
  if (!r.Count(&count, 4, "score_request.shards")) {
    return false;
  }
  m->shards.resize(static_cast<size_t>(count));
  for (auto& s : m->shards) {
    if (!r.U32(&s, "score_request.shard")) {
      return false;
    }
  }
  return true;
}

bool DecodeBody(BinaryReader& r, ScoreReplyMsg* m) {
  if (!r.U64(&m->round, "score_reply.round")) {
    return false;
  }
  uint64_t count = 0;
  if (!r.Count(&count, 8 * 3, "score_reply.entries")) {
    return false;
  }
  m->entries.resize(static_cast<size_t>(count));
  for (auto& e : m->entries) {
    if (!r.F64(&e.score, "score_reply.score") ||
        !r.F64(&e.arrival_time, "score_reply.arrival_time") ||
        !r.I64(&e.id, "score_reply.id")) {
      return false;
    }
  }
  return true;
}

bool DecodeBody(BinaryReader& r, HelloMsg* m) {
  return r.U32(&m->worker_index, "hello.worker_index");
}

bool DecodeBody(BinaryReader&, ShutdownMsg*) { return true; }

bool DecodeBody(BinaryReader& r, SubmitMsg* m) {
  if (!r.U64(&m->seq, "submit.seq") || !r.F64(&m->now, "submit.now")) {
    return false;
  }
  uint64_t count = 0;
  if (!r.Count(&count, 8 * 7, "submit.entries")) {
    return false;
  }
  m->entries.resize(static_cast<size_t>(count));
  for (auto& e : m->entries) {
    if (!r.I64(&e.id, "submit.id") || !r.F64(&e.weight, "submit.weight") ||
        !r.F64(&e.arrival_time, "submit.arrival_time") ||
        !r.F64(&e.timeout, "submit.timeout") ||
        !r.U64(&e.num_recent_blocks, "submit.num_recent_blocks") ||
        !r.F64Vec(&e.demand, "submit.demand") || !r.I64Vec(&e.blocks, "submit.blocks")) {
      return false;
    }
  }
  return true;
}

bool DecodeBody(BinaryReader& r, SubmitReplyMsg* m) {
  return r.U64(&m->seq, "submit_reply.seq") && r.U64(&m->accepted, "submit_reply.accepted") &&
         r.U64(&m->rejected, "submit_reply.rejected");
}

bool DecodeBody(BinaryReader& r, RunCycleMsg* m) {
  return r.U64(&m->seq, "run_cycle.seq") && r.F64(&m->now, "run_cycle.now");
}

bool DecodeBody(BinaryReader& r, CycleReplyMsg* m) {
  return r.U64(&m->seq, "cycle_reply.seq") && r.U64(&m->cycle, "cycle_reply.cycle") &&
         r.I64Vec(&m->granted, "cycle_reply.granted");
}

template <typename Msg>
bool DecodeInto(BinaryReader& r, ServiceMessage* out) {
  Msg m;
  if (!DecodeBody(r, &m)) {
    return false;
  }
  *out = std::move(m);
  return true;
}

}  // namespace

std::string EncodeMessage(const ServiceMessage& message) {
  BinaryWriter w;
  w.Bytes(std::string_view(kServiceMagic, sizeof(kServiceMagic)));
  w.U32(kServiceWireVersion);
  w.U8(static_cast<uint8_t>(TypeOf(message)));
  std::visit([&w](const auto& m) { EncodeBody(w, m); }, message);
  return std::move(w.data());
}

bool DecodeMessage(std::string_view bytes, ServiceMessage* out, std::string* error) {
  BinaryReader r(bytes);
  auto fail = [&](const std::string& message) {
    *error = message;
    return false;
  };
  std::string_view magic;
  if (!r.BytesView(sizeof(kServiceMagic), &magic, "message magic")) {
    return fail(r.error());
  }
  if (magic != std::string_view(kServiceMagic, sizeof(kServiceMagic))) {
    return fail("not a service message (bad magic)");
  }
  uint32_t version = 0;
  if (!r.U32(&version, "message version")) {
    return fail(r.error());
  }
  if (version != kServiceWireVersion) {
    return fail("unsupported service message version " + std::to_string(version));
  }
  uint8_t type = 0;
  if (!r.U8(&type, "message type")) {
    return fail(r.error());
  }
  bool ok = false;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kBind:
      ok = DecodeInto<BindMsg>(r, out);
      break;
    case MsgType::kBlockUpsert:
      ok = DecodeInto<BlockUpsertMsg>(r, out);
      break;
    case MsgType::kBlockRefresh:
      ok = DecodeInto<BlockRefreshMsg>(r, out);
      break;
    case MsgType::kTaskUpsert:
      ok = DecodeInto<TaskUpsertMsg>(r, out);
      break;
    case MsgType::kState:
      ok = DecodeInto<StateMsg>(r, out);
      break;
    case MsgType::kScoreRequest:
      ok = DecodeInto<ScoreRequestMsg>(r, out);
      break;
    case MsgType::kScoreReply:
      ok = DecodeInto<ScoreReplyMsg>(r, out);
      break;
    case MsgType::kHello:
      ok = DecodeInto<HelloMsg>(r, out);
      break;
    case MsgType::kShutdown:
      ok = DecodeInto<ShutdownMsg>(r, out);
      break;
    case MsgType::kSubmit:
      ok = DecodeInto<SubmitMsg>(r, out);
      break;
    case MsgType::kSubmitReply:
      ok = DecodeInto<SubmitReplyMsg>(r, out);
      break;
    case MsgType::kRunCycle:
      ok = DecodeInto<RunCycleMsg>(r, out);
      break;
    case MsgType::kCycleReply:
      ok = DecodeInto<CycleReplyMsg>(r, out);
      break;
    default:
      return fail("unknown service message type " + std::to_string(type));
  }
  if (!ok) {
    return fail(r.error());
  }
  if (r.remaining() > 0) {
    return fail("trailing bytes after service message");
  }
  return true;
}

}  // namespace dpack
