// The tenant side of the grant service's socket edge (src/service/net_transport.h): a
// strict request/reply client speaking checksum-framed ServiceMessages, plus the remote
// workload driver that replays the sim driver's exact event order over the wire.
//
// Blocking waits follow the service discipline — iteration budgets over a fixed poll sleep
// (SleepFullMicros, so EINTR never shortens a deadline), no clock reads. Every failure path
// (daemon gone, corrupt reply, budget exhausted, reply out of sequence) returns false with
// a diagnostic; the client never spins forever on a dead daemon.

#ifndef SRC_SERVICE_CLIENT_H_
#define SRC_SERVICE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/task.h"
#include "src/service/messages.h"
#include "src/service/net_transport.h"
#include "src/sim/sim_driver.h"

namespace dpack {

struct NetClientConfig {
  size_t max_frame_bytes = 1 << 20;   // Replies beyond this are corruption, not patience.
  unsigned int poll_sleep_us = 200;
  // Poll iterations to wait for connect / a reply before giving up. At the default sleep
  // this is tens of seconds of daemon silence — a dead daemon, not a slow one.
  uint64_t io_budget = 100000;
};

class ServiceClient {
 public:
  explicit ServiceClient(NetClientConfig config = {});
  ~ServiceClient();

  // Connects to "unix:<path>" / "tcp:<port>" (loopback), retrying on connection-refused
  // within the io budget so a client raced against daemon startup still binds.
  bool Connect(const std::string& address, std::string* error);

  // Submits a batch of tasks arriving at virtual-time instant `now`. On success reports
  // the daemon's admission split (accepted + rejected == tasks.size()).
  bool Submit(double now, const std::vector<Task>& tasks, uint64_t* accepted,
              uint64_t* rejected, std::string* error);

  // Drives one scheduling cycle at instant `now`; *granted receives the grant order.
  bool RunCycle(double now, std::vector<TaskId>* granted, std::string* error);

  // Asks the daemon to stop serving and shut its fleet down (fire and forget: the frame is
  // flushed, there is no reply).
  bool SendShutdown(std::string* error);

  void Close();
  bool connected() const { return socket_ != nullptr && !socket_->dead(); }
  const NetCounters& counters() const { return counters_; }

 private:
  bool SendRequest(const ServiceMessage& message, std::string* error);
  // Waits (budgeted) for the next frame and decodes it. Any transport damage is terminal.
  bool ReceiveReply(ServiceMessage* out, std::string* error);

  NetClientConfig config_;
  std::unique_ptr<FrameSocket> socket_;
  NetCounters counters_;
  uint64_t next_seq_ = 1;
};

// What a remotely driven workload run produced; grant_trace is the byte-comparable signal
// to diff against an in-process RunOnlineSimulation of the same workload and config.
struct RemoteRunResult {
  std::vector<std::vector<TaskId>> grant_trace;
  size_t cycles_run = 0;
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;  // Admission-bound refusals observed by this client.
};

// Replays RunOnlineSimulation's event structure over `client`: the same cycle instants
// (CycleInstants over the same horizon), with every task submitted at its arrival instant
// before the first cycle at or after it — batched per distinct arrival time, preserving
// workload order within a batch, which is exactly the event queue's stable
// (time, priority, insertion) order. The daemon applies its block schedule up to each
// instant first, so grants come out byte-identical to the in-process run. Tasks arriving
// after the final cycle are still submitted (they affect pending counts, never grants).
bool RunRemoteWorkload(ServiceClient& client, std::vector<Task> tasks,
                       const SimConfig& config, RemoteRunResult* result, std::string* error);

}  // namespace dpack

#endif  // SRC_SERVICE_CLIENT_H_
