#include "src/service/transport.h"

#include <signal.h>
#include <unistd.h>

#include <new>
#include <utility>

#include "src/common/check.h"
#include "src/common/sleep.h"

namespace dpack {

namespace {

// Region layout: one cache-line-aligned control block, then the two rings back to back.
// mmap returns page-aligned memory, so offset 0 satisfies the control block's alignment and
// the ring offsets only need to keep the 64-byte ring headers aligned.
constexpr size_t kControlBytes = (sizeof(WorkerControlBlock) + 63) / 64 * 64;

size_t RegionBytes(const TransportConfig& config) {
  return kControlBytes + 2 * config.ring_bytes;
}

char* ToWorkerBase(void* region) { return static_cast<char*>(region) + kControlBytes; }

char* FromWorkerBase(void* region, const TransportConfig& config) {
  return ToWorkerBase(region) + config.ring_bytes;
}

// True once this child has been reparented — its daemon is gone, so every blocking wait
// must end rather than spin orphaned. getppid is a pure process-tree read, not a clock.
bool DaemonGone() { return getppid() == 1; }

}  // namespace

// ---------------------------------------------------------------------------
// WorkerEndpoint (child side)
// ---------------------------------------------------------------------------

WorkerEndpoint::WorkerEndpoint(size_t index, WorkerControlBlock* control, ShmRing in,
                               ShmRing out, unsigned int poll_sleep_us)
    : index_(index),
      control_(control),
      in_(in),
      out_(out),
      poll_sleep_us_(poll_sleep_us) {}

bool WorkerEndpoint::Receive(ServiceMessage* out) {
  std::string frame;
  while (true) {
    control_->heartbeat.fetch_add(1, std::memory_order_relaxed);
    RingPopStatus status = in_.TryPop(&frame);
    if (status == RingPopStatus::kOk) {
      break;
    }
    if (status == RingPopStatus::kCorrupt) {
      return false;
    }
    if (DaemonGone()) {
      return false;
    }
    SleepFullMicros(poll_sleep_us_);
  }
  std::string error;
  return DecodeMessage(frame, out, &error);
}

bool WorkerEndpoint::Send(const ServiceMessage& message) {
  std::string frame = EncodeMessage(message);
  while (!out_.TryPush(frame)) {
    if (DaemonGone()) {
      return false;
    }
    control_->heartbeat.fetch_add(1, std::memory_order_relaxed);
    SleepFullMicros(poll_sleep_us_);
  }
  return true;
}

void WorkerEndpoint::SetLifeState(WorkerLifeState state) {
  control_->life_state.store(static_cast<uint32_t>(state), std::memory_order_release);
}

// ---------------------------------------------------------------------------
// ServiceTransport (daemon side)
// ---------------------------------------------------------------------------

ServiceTransport::ServiceTransport(TransportConfig config, WorkerBody body)
    : config_(config), body_(std::move(body)) {
  DPACK_CHECK(config_.num_workers >= 1);
  DPACK_CHECK(config_.ring_bytes >= ShmRing::MinBytes());
  DPACK_CHECK(config_.stall_budget >= 1);
  DPACK_CHECK(body_ != nullptr);
}

ServiceTransport::~ServiceTransport() {
  for (size_t w = 0; w < slots_.size(); ++w) {
    if (slots_[w].alive) {
      KillChild(slots_[w].pid, SIGKILL);
      WaitChild(slots_[w].pid);
      slots_[w].alive = false;
    }
  }
}

void ServiceTransport::InitSlotMemory(Slot& slot) {
  new (slot.region.data()) WorkerControlBlock();
  slot.control = static_cast<WorkerControlBlock*>(slot.region.data());
  slot.control->heartbeat.store(0, std::memory_order_relaxed);
  slot.control->life_state.store(static_cast<uint32_t>(WorkerLifeState::kStarting),
                                 std::memory_order_relaxed);
  slot.to_worker = std::make_unique<ShmRing>(ToWorkerBase(slot.region.data()),
                                             config_.ring_bytes, /*initialize=*/true);
  slot.from_worker = std::make_unique<ShmRing>(FromWorkerBase(slot.region.data(), config_),
                                               config_.ring_bytes, /*initialize=*/true);
}

void ServiceTransport::ForkWorker(size_t w) {
  Slot& slot = slots_[w];
  // Build everything the child needs before forking; the child attaches fresh ring handles
  // over the same (inherited, same-address) memory, with the push/pop directions flipped.
  void* region = slot.region.data();
  size_t ring_bytes = config_.ring_bytes;
  unsigned int sleep_us = config_.poll_sleep_us;
  const TransportConfig config = config_;
  WorkerBody body = body_;
  slot.pid = SpawnChild([w, region, ring_bytes, sleep_us, config, body]() {
    auto* control = static_cast<WorkerControlBlock*>(region);
    ShmRing in(ToWorkerBase(region), ring_bytes, /*initialize=*/false);
    ShmRing out(FromWorkerBase(region, config), ring_bytes, /*initialize=*/false);
    WorkerEndpoint endpoint(w, control, in, out, sleep_us);
    return body(endpoint);
  });
  slot.alive = true;
}

void ServiceTransport::Start() {
  DPACK_CHECK_MSG(!started_, "ServiceTransport::Start called twice");
  started_ = true;
  slots_.resize(config_.num_workers);
  // Map and initialize every region BEFORE the first fork: each child inherits all
  // mappings at the same addresses, so respawned workers can reuse their slot unchanged.
  for (Slot& slot : slots_) {
    slot.region = ShmRegion(RegionBytes(config_));
    InitSlotMemory(slot);
  }
  for (size_t w = 0; w < slots_.size(); ++w) {
    ForkWorker(w);
  }
}

bool ServiceTransport::alive(size_t w) const {
  DPACK_CHECK(w < slots_.size());
  return slots_[w].alive;
}

pid_t ServiceTransport::pid(size_t w) const {
  DPACK_CHECK(w < slots_.size());
  return slots_[w].pid;
}

uint64_t ServiceTransport::heartbeat(size_t w) const {
  DPACK_CHECK(w < slots_.size());
  return slots_[w].control->heartbeat.load(std::memory_order_relaxed);
}

WorkerLifeState ServiceTransport::life_state(size_t w) const {
  DPACK_CHECK(w < slots_.size());
  return static_cast<WorkerLifeState>(
      slots_[w].control->life_state.load(std::memory_order_acquire));
}

bool ServiceTransport::Send(size_t w, const ServiceMessage& message) {
  DPACK_CHECK(w < slots_.size());
  Slot& slot = slots_[w];
  if (!slot.alive) {
    return false;
  }
  std::string frame = EncodeMessage(message);
  DPACK_CHECK_MSG(frame.size() + 16 <= config_.ring_bytes,
                  "service message larger than a whole ring; raise ring_bytes");
  uint64_t stalls = 0;
  while (!slot.to_worker->TryPush(frame)) {
    ++counters_.ring_stalls;
    if (Poll(w) != ChildState::kRunning) {
      return false;
    }
    ++stalls;
    DPACK_CHECK_MSG(stalls < config_.stall_budget,
                    "worker " << w << " stopped draining its ring (stall budget "
                              << config_.stall_budget << " exhausted)");
    SleepFullMicros(config_.poll_sleep_us);
  }
  ++counters_.messages_sent;
  counters_.bytes_sent += frame.size();
  return true;
}

RingPopStatus ServiceTransport::TryReceive(size_t w, ServiceMessage* out,
                                           std::string* error) {
  DPACK_CHECK(w < slots_.size());
  std::string frame;
  RingPopStatus status = slots_[w].from_worker->TryPop(&frame);
  if (status != RingPopStatus::kOk) {
    return status;
  }
  ++counters_.messages_received;
  counters_.bytes_received += frame.size();
  if (!DecodeMessage(frame, out, error)) {
    // A complete, checksum-clean frame that does not decode is a framing bug or a hostile
    // writer — same severity as ring corruption for the caller.
    return RingPopStatus::kCorrupt;
  }
  return RingPopStatus::kOk;
}

ChildState ServiceTransport::Poll(size_t w) {
  DPACK_CHECK(w < slots_.size());
  Slot& slot = slots_[w];
  if (!slot.alive) {
    return ChildState::kExited;
  }
  ChildStatus status = PollChild(slot.pid);
  if (status.state != ChildState::kRunning) {
    slot.alive = false;  // Reaped by PollChild; never poll this pid again.
  }
  return status.state;
}

void ServiceTransport::Kill(size_t w, int signal) {
  DPACK_CHECK(w < slots_.size());
  Slot& slot = slots_[w];
  if (!slot.alive) {
    return;
  }
  KillChild(slot.pid, signal);
  WaitChild(slot.pid);
  slot.alive = false;
}

void ServiceTransport::ResetRings(size_t w) {
  DPACK_CHECK(w < slots_.size());
  Slot& slot = slots_[w];
  DPACK_CHECK_MSG(!slot.alive, "ResetRings on a live worker would race its ring cursors");
  InitSlotMemory(slot);
}

void ServiceTransport::Respawn(size_t w) {
  DPACK_CHECK(w < slots_.size());
  DPACK_CHECK_MSG(!slots_[w].alive, "Respawn requires a dead slot");
  ForkWorker(w);
  ++counters_.respawns;
}

void ServiceTransport::ShutdownAll() {
  for (size_t w = 0; w < slots_.size(); ++w) {
    if (slots_[w].alive) {
      Send(w, ShutdownMsg{});
    }
  }
  for (size_t w = 0; w < slots_.size(); ++w) {
    Slot& slot = slots_[w];
    uint64_t polls = 0;
    while (slot.alive && Poll(w) == ChildState::kRunning) {
      if (++polls >= config_.stall_budget) {
        Kill(w, SIGKILL);
        break;
      }
      SleepFullMicros(config_.poll_sleep_us);
    }
  }
}

}  // namespace dpack
