// Versioned message schema of the grant service's daemon <-> worker protocol.
//
// Every message is one ring frame (src/common/shm_ring.h adds length + FNV-1a framing);
// inside the frame, messages carry their own magic tag, format version, and type byte, and
// are encoded with the checkpoint codec's discipline (src/common/wire.h: fixed-width
// little-endian fields, doubles as raw IEEE-754 bit patterns). Raw double bits are what
// make the protocol exact: a worker scoring against shipped curve bits computes the very
// same IEEE-754 values the daemon would, so the merged grant order is byte-identical to the
// single-process engines (see src/service/service_scheduler.h).
//
// Decoding rejects — with a diagnostic, never a crash or a silently-wrong score — bad
// magic, unknown versions or types, truncation, implausible element counts, and trailing
// bytes. The corruption property tests (tests/service/messages_test.cc) mirror
// checkpoint_test.cc's truncate/bit-flip suites over every message type.
//
// Protocol (daemon drives; see src/README.md "Grant service" for the cycle walkthrough):
//   daemon -> worker: Bind, BlockUpsert, BlockRefresh, TaskUpsert, State, ScoreRequest,
//                     Shutdown
//   worker -> daemon: Hello (once, after Bind is applied), ScoreReply
//
// The remote client edge (src/service/net_transport.h, src/README.md "Remote client edge")
// reuses the same envelope over sockets — client-driven request/reply:
//   client -> daemon: Submit, RunCycle, Shutdown
//   daemon -> client: SubmitReply, CycleReply
// Each client request carries the virtual-time instant it fires at, so the daemon can
// replay the sim driver's exact event order (block arrivals at or before the instant first,
// then the request) and keep remote grants byte-identical to in-process Submit.

#ifndef SRC_SERVICE_MESSAGES_H_
#define SRC_SERVICE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/core/schedule_context.h"

namespace dpack {

inline constexpr uint32_t kServiceWireVersion = 2;  // v2: client-edge messages (ISSUE 10).

// Daemon -> worker, once per worker lifetime (first message after fork/respawn): the
// scheduling configuration every score must be computed under.
struct BindMsg {
  uint32_t worker_index = 0;
  uint32_t num_workers = 0;
  // Task-home shard count (fixed for the service lifetime; tasks home to id % num_shards).
  // Decoupled from the worker count so shard reassignment after a crash moves whole shards.
  uint32_t num_shards = 0;
  GreedyMetric metric = GreedyMetric::kDpack;
  double eta = 0.0;
  std::vector<double> alpha_orders;  // The AlphaGrid the replica curves live on.
};

// Daemon -> worker: newly arrived blocks, in id order (ids are dense; the first entry's id
// must equal the replica's current block count). Curves are per-order epsilons as raw bits.
struct BlockUpsertMsg {
  struct Entry {
    int64_t id = 0;
    std::vector<double> available;
    std::vector<double> total;
  };
  std::vector<Entry> entries;
};

// Daemon -> worker: available-curve refreshes for blocks whose version advanced.
struct BlockRefreshMsg {
  struct Entry {
    int64_t id = 0;
    std::vector<double> available;
  };
  std::vector<Entry> entries;
};

// Daemon -> worker: pending-task payloads the worker does not yet hold (new arrivals, and
// tasks whose block list was late-resolved — the one sanctioned post-submission mutation).
struct TaskUpsertMsg {
  struct Entry {
    int64_t id = 0;
    double weight = 1.0;
    double arrival_time = 0.0;
    std::vector<double> demand;
    std::vector<int64_t> blocks;
  };
  std::vector<Entry> entries;
};

// Daemon -> worker (respawn cold start): the full cluster state as a checkpoint-codec
// snapshot blob (EncodeSnapshotBinary). The worker decodes it with the same codec the
// recovery subsystem uses, restores a byte-identical BlockManager, and rebuilds its curve
// replica and task payloads from it — recovery and cold start share one state format.
struct StateMsg {
  std::string snapshot;
};

// Daemon -> worker: score one cycle. Carries the full batch in batch order (ids reference
// payloads shipped via TaskUpsert/State) and the shard set this worker owns this round —
// explicit, so the daemon can re-request a dead worker's shards from a survivor and get
// bit-identical entries (scoring is a pure function of replica state + batch + shard set).
struct ScoreRequestMsg {
  uint64_t round = 0;
  std::vector<int64_t> batch_ids;
  std::vector<uint32_t> shards;
};

// Worker -> daemon: the scored entries of the requested shards, in batch order. Scores and
// arrivals travel as raw bits; the daemon merges all replies under HeapEntryBefore.
struct ScoreReplyMsg {
  uint64_t round = 0;
  struct Entry {
    double score = 0.0;
    double arrival_time = 0.0;
    int64_t id = 0;
  };
  std::vector<Entry> entries;
};

// Worker -> daemon: bind acknowledged, replica ready.
struct HelloMsg {
  uint32_t worker_index = 0;
};

// Daemon -> worker: exit the serve loop (clean shutdown; workers killed by the crash tests
// never see it). Also client -> daemon on the socket edge: stop serving and shut the fleet
// down cleanly (no reply; the daemon flushes pending replies and exits its serve loop).
struct ShutdownMsg {};

// Client -> daemon: submit grant requests at virtual-time instant `now` (the tasks' arrival
// instant; the daemon applies block arrivals <= now first, then funnels every entry through
// the same admission-controlled GrantService::Submit as in-process callers). Unlike the
// worker-facing TaskUpsertMsg — which ships already-admitted queue state — entries here are
// full task payloads including the eviction timeout and the unresolved most-recent-blocks
// request, because submission (and its late block resolution) has not happened yet.
struct SubmitMsg {
  uint64_t seq = 0;  // Echoed in SubmitReplyMsg; lets a pipelining client match replies.
  double now = 0.0;
  struct Entry {
    int64_t id = 0;
    double weight = 1.0;
    double arrival_time = 0.0;
    double timeout = 0.0;  // Raw bits on the wire; +inf = never evicted, as in Task.
    uint64_t num_recent_blocks = 0;
    std::vector<double> demand;
    std::vector<int64_t> blocks;
  };
  std::vector<Entry> entries;
};

// Daemon -> client: per-batch admission outcome (accepted + rejected = entries shipped).
struct SubmitReplyMsg {
  uint64_t seq = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;  // Admission-bound refusals, mirrored in admission_rejects.
};

// Client -> daemon: run one scheduling cycle at virtual-time instant `now`.
struct RunCycleMsg {
  uint64_t seq = 0;
  double now = 0.0;
};

// Daemon -> client: the granted task ids of the cycle just run, in grant order — the
// byte-comparable signal the remote differential proofs diff against in-process runs.
struct CycleReplyMsg {
  uint64_t seq = 0;
  uint64_t cycle = 0;  // 0-based index of the cycle this reply reports.
  std::vector<int64_t> granted;
};

using ServiceMessage = std::variant<BindMsg, BlockUpsertMsg, BlockRefreshMsg, TaskUpsertMsg,
                                    StateMsg, ScoreRequestMsg, ScoreReplyMsg, HelloMsg,
                                    ShutdownMsg, SubmitMsg, SubmitReplyMsg, RunCycleMsg,
                                    CycleReplyMsg>;

std::string EncodeMessage(const ServiceMessage& message);

// Decodes one message. On failure returns false and sets *error to a diagnostic naming the
// corruption (*out is unspecified). Trailing bytes after a well-formed message are an error.
bool DecodeMessage(std::string_view bytes, ServiceMessage* out, std::string* error);

}  // namespace dpack

#endif  // SRC_SERVICE_MESSAGES_H_
