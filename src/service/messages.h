// Versioned message schema of the grant service's daemon <-> worker protocol.
//
// Every message is one ring frame (src/common/shm_ring.h adds length + FNV-1a framing);
// inside the frame, messages carry their own magic tag, format version, and type byte, and
// are encoded with the checkpoint codec's discipline (src/common/wire.h: fixed-width
// little-endian fields, doubles as raw IEEE-754 bit patterns). Raw double bits are what
// make the protocol exact: a worker scoring against shipped curve bits computes the very
// same IEEE-754 values the daemon would, so the merged grant order is byte-identical to the
// single-process engines (see src/service/service_scheduler.h).
//
// Decoding rejects — with a diagnostic, never a crash or a silently-wrong score — bad
// magic, unknown versions or types, truncation, implausible element counts, and trailing
// bytes. The corruption property tests (tests/service/messages_test.cc) mirror
// checkpoint_test.cc's truncate/bit-flip suites over every message type.
//
// Protocol (daemon drives; see src/README.md "Grant service" for the cycle walkthrough):
//   daemon -> worker: Bind, BlockUpsert, BlockRefresh, TaskUpsert, State, ScoreRequest,
//                     Shutdown
//   worker -> daemon: Hello (once, after Bind is applied), ScoreReply

#ifndef SRC_SERVICE_MESSAGES_H_
#define SRC_SERVICE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/core/schedule_context.h"

namespace dpack {

inline constexpr uint32_t kServiceWireVersion = 1;

// Daemon -> worker, once per worker lifetime (first message after fork/respawn): the
// scheduling configuration every score must be computed under.
struct BindMsg {
  uint32_t worker_index = 0;
  uint32_t num_workers = 0;
  // Task-home shard count (fixed for the service lifetime; tasks home to id % num_shards).
  // Decoupled from the worker count so shard reassignment after a crash moves whole shards.
  uint32_t num_shards = 0;
  GreedyMetric metric = GreedyMetric::kDpack;
  double eta = 0.0;
  std::vector<double> alpha_orders;  // The AlphaGrid the replica curves live on.
};

// Daemon -> worker: newly arrived blocks, in id order (ids are dense; the first entry's id
// must equal the replica's current block count). Curves are per-order epsilons as raw bits.
struct BlockUpsertMsg {
  struct Entry {
    int64_t id = 0;
    std::vector<double> available;
    std::vector<double> total;
  };
  std::vector<Entry> entries;
};

// Daemon -> worker: available-curve refreshes for blocks whose version advanced.
struct BlockRefreshMsg {
  struct Entry {
    int64_t id = 0;
    std::vector<double> available;
  };
  std::vector<Entry> entries;
};

// Daemon -> worker: pending-task payloads the worker does not yet hold (new arrivals, and
// tasks whose block list was late-resolved — the one sanctioned post-submission mutation).
struct TaskUpsertMsg {
  struct Entry {
    int64_t id = 0;
    double weight = 1.0;
    double arrival_time = 0.0;
    std::vector<double> demand;
    std::vector<int64_t> blocks;
  };
  std::vector<Entry> entries;
};

// Daemon -> worker (respawn cold start): the full cluster state as a checkpoint-codec
// snapshot blob (EncodeSnapshotBinary). The worker decodes it with the same codec the
// recovery subsystem uses, restores a byte-identical BlockManager, and rebuilds its curve
// replica and task payloads from it — recovery and cold start share one state format.
struct StateMsg {
  std::string snapshot;
};

// Daemon -> worker: score one cycle. Carries the full batch in batch order (ids reference
// payloads shipped via TaskUpsert/State) and the shard set this worker owns this round —
// explicit, so the daemon can re-request a dead worker's shards from a survivor and get
// bit-identical entries (scoring is a pure function of replica state + batch + shard set).
struct ScoreRequestMsg {
  uint64_t round = 0;
  std::vector<int64_t> batch_ids;
  std::vector<uint32_t> shards;
};

// Worker -> daemon: the scored entries of the requested shards, in batch order. Scores and
// arrivals travel as raw bits; the daemon merges all replies under HeapEntryBefore.
struct ScoreReplyMsg {
  uint64_t round = 0;
  struct Entry {
    double score = 0.0;
    double arrival_time = 0.0;
    int64_t id = 0;
  };
  std::vector<Entry> entries;
};

// Worker -> daemon: bind acknowledged, replica ready.
struct HelloMsg {
  uint32_t worker_index = 0;
};

// Daemon -> worker: exit the serve loop (clean shutdown; workers killed by the crash tests
// never see it).
struct ShutdownMsg {};

using ServiceMessage = std::variant<BindMsg, BlockUpsertMsg, BlockRefreshMsg, TaskUpsertMsg,
                                    StateMsg, ScoreRequestMsg, ScoreReplyMsg, HelloMsg,
                                    ShutdownMsg>;

std::string EncodeMessage(const ServiceMessage& message);

// Decodes one message. On failure returns false and sets *error to a diagnostic naming the
// corruption (*out is unspecified). Trailing bytes after a well-formed message are an error.
bool DecodeMessage(std::string_view bytes, ServiceMessage* out, std::string* error);

}  // namespace dpack

#endif  // SRC_SERVICE_MESSAGES_H_
