#include "src/service/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <utility>

#include "src/common/check.h"
#include "src/common/frame.h"
#include "src/common/sleep.h"

namespace dpack {

namespace {

// One blocking-style connect attempt; returns the connected fd or -1 with errno set.
int TryConnect(const NetAddress& address) {
  if (address.is_unix) {
    int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, address.path.c_str(), address.path.size() + 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    int saved = errno;
    close(fd);
    errno = saved;
    return -1;
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(address.port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    return fd;
  }
  int saved = errno;
  close(fd);
  errno = saved;
  return -1;
}

}  // namespace

ServiceClient::ServiceClient(NetClientConfig config) : config_(config) {
  DPACK_CHECK(config_.io_budget >= 1);
}

ServiceClient::~ServiceClient() = default;

bool ServiceClient::Connect(const std::string& address_text, std::string* error) {
  NetAddress address;
  if (!ParseNetAddress(address_text, &address, error)) {
    return false;
  }
  for (uint64_t attempt = 0; attempt < config_.io_budget; ++attempt) {
    int fd = TryConnect(address);
    if (fd >= 0) {
      socket_ = std::make_unique<FrameSocket>(fd);
      return true;
    }
    // The daemon may still be binding (harnesses launch both processes at once): refused /
    // not-yet-created are retried on the budget; anything else is a real failure.
    if (errno != ECONNREFUSED && errno != ENOENT && errno != EINTR) {
      break;
    }
    SleepFullMicros(config_.poll_sleep_us);
  }
  *error = std::string("cannot connect to ") + address_text + ": " + std::strerror(errno);
  return false;
}

void ServiceClient::Close() { socket_.reset(); }

bool ServiceClient::SendRequest(const ServiceMessage& message, std::string* error) {
  if (!connected()) {
    *error = "not connected";
    return false;
  }
  std::string payload = EncodeMessage(message);
  socket_->QueueFrame(payload);
  ++counters_.frames_sent;
  counters_.bytes_sent += kFrameHeaderBytes + payload.size();
  for (uint64_t poll = 0; poll < config_.io_budget; ++poll) {
    socket_->FlushSome();
    if (socket_->dead()) {
      *error = "daemon closed the connection mid-send";
      return false;
    }
    if (socket_->pending_output() == 0) {
      return true;
    }
    SleepFullMicros(config_.poll_sleep_us);
  }
  *error = "send budget exhausted (daemon not draining)";
  return false;
}

bool ServiceClient::ReceiveReply(ServiceMessage* out, std::string* error) {
  std::string payload;
  for (uint64_t poll = 0; poll < config_.io_budget; ++poll) {
    socket_->ReadSome();
    switch (socket_->NextFrame(&payload, config_.max_frame_bytes, error)) {
      case FrameSocket::Next::kFrame: {
        ++counters_.frames_received;
        counters_.bytes_received += kFrameHeaderBytes + payload.size();
        if (!DecodeMessage(payload, out, error)) {
          ++counters_.protocol_rejects;
          socket_.reset();  // Same poison rule as the daemon: never read past damage.
          return false;
        }
        return true;
      }
      case FrameSocket::Next::kCorrupt:
        ++counters_.protocol_rejects;
        socket_.reset();
        return false;
      case FrameSocket::Next::kNone:
        break;
    }
    if (socket_->dead()) {
      *error = "daemon closed the connection";
      return false;
    }
    SleepFullMicros(config_.poll_sleep_us);
  }
  *error = "reply budget exhausted (daemon silent)";
  return false;
}

bool ServiceClient::Submit(double now, const std::vector<Task>& tasks, uint64_t* accepted,
                           uint64_t* rejected, std::string* error) {
  SubmitMsg msg;
  msg.seq = next_seq_++;
  msg.now = now;
  msg.entries.reserve(tasks.size());
  for (const Task& task : tasks) {
    SubmitMsg::Entry entry;
    entry.id = task.id;
    entry.weight = task.weight;
    entry.arrival_time = task.arrival_time;
    entry.timeout = task.timeout;
    entry.num_recent_blocks = task.num_recent_blocks;
    entry.demand = task.demand.epsilons();
    entry.blocks.reserve(task.blocks.size());
    for (BlockId b : task.blocks) {
      entry.blocks.push_back(static_cast<int64_t>(b));
    }
    msg.entries.push_back(std::move(entry));
  }
  ServiceMessage reply;
  if (!SendRequest(msg, error) || !ReceiveReply(&reply, error)) {
    return false;
  }
  const auto* submit_reply = std::get_if<SubmitReplyMsg>(&reply);
  if (submit_reply == nullptr || submit_reply->seq != msg.seq) {
    *error = "daemon reply out of protocol (expected SubmitReply seq " +
             std::to_string(msg.seq) + ")";
    socket_.reset();
    return false;
  }
  *accepted = submit_reply->accepted;
  *rejected = submit_reply->rejected;
  return true;
}

bool ServiceClient::RunCycle(double now, std::vector<TaskId>* granted, std::string* error) {
  RunCycleMsg msg;
  msg.seq = next_seq_++;
  msg.now = now;
  ServiceMessage reply;
  if (!SendRequest(msg, error) || !ReceiveReply(&reply, error)) {
    return false;
  }
  const auto* cycle_reply = std::get_if<CycleReplyMsg>(&reply);
  if (cycle_reply == nullptr || cycle_reply->seq != msg.seq) {
    *error = "daemon reply out of protocol (expected CycleReply seq " +
             std::to_string(msg.seq) + ")";
    socket_.reset();
    return false;
  }
  granted->clear();
  granted->reserve(cycle_reply->granted.size());
  for (int64_t id : cycle_reply->granted) {
    granted->push_back(static_cast<TaskId>(id));
  }
  return true;
}

bool ServiceClient::SendShutdown(std::string* error) {
  return SendRequest(ShutdownMsg{}, error);
}

bool RunRemoteWorkload(ServiceClient& client, std::vector<Task> tasks,
                       const SimConfig& config, RemoteRunResult* result, std::string* error) {
  std::vector<double> block_schedule = BlockArrivalSchedule(config);
  double horizon = SimulationHorizon(config, tasks, block_schedule);
  double next_after_horizon = 0.0;
  std::vector<double> cycle_instants = CycleInstants(config, horizon, &next_after_horizon);

  // The event queue fires same-instant events in insertion order; a stable sort by arrival
  // reproduces exactly that order for the task stream (workloads are already arrival-sorted,
  // making this a no-op in practice).
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const Task& a, const Task& b) { return a.arrival_time < b.arrival_time; });

  // Submits every task with arrival <= cutoff that has not been submitted yet, batched per
  // distinct arrival instant (each batch is one Submit carrying its instant, so the daemon
  // advances its block schedule to that instant first — the block-before-task event order).
  size_t next_task = 0;
  auto submit_through = [&](double cutoff) {
    while (next_task < tasks.size() && tasks[next_task].arrival_time <= cutoff) {
      double instant = tasks[next_task].arrival_time;
      std::vector<Task> batch;
      while (next_task < tasks.size() && tasks[next_task].arrival_time == instant) {
        batch.push_back(tasks[next_task]);
        ++next_task;
      }
      uint64_t accepted = 0, rejected = 0;
      if (!client.Submit(instant, batch, &accepted, &rejected, error)) {
        return false;
      }
      result->submitted += batch.size();
      result->accepted += accepted;
      result->rejected += rejected;
    }
    return true;
  };

  for (double t : cycle_instants) {
    if (!submit_through(t)) {
      return false;
    }
    std::vector<TaskId> granted;
    if (!client.RunCycle(t, &granted, error)) {
      return false;
    }
    result->grant_trace.push_back(std::move(granted));
    ++result->cycles_run;
  }
  // Stragglers past the last cycle: the in-process driver still submits them (they sit in
  // the pending queue and in the submission metrics), so the remote run does too.
  if (!submit_through(std::numeric_limits<double>::infinity())) {
    return false;
  }
  return true;
}

}  // namespace dpack
