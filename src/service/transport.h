// Process transport for the multi-process grant service: the daemon owns one shared-memory
// region per worker slot — [control block][daemon→worker ring][worker→daemon ring] — maps
// every region while still single-threaded, then forks the workers so each child inherits
// the mappings at the same addresses (src/common/subprocess.h explains why fork-without-exec
// is safe here).
//
// The daemon side (ServiceTransport) tracks liveness two ways: waitpid for death (a killed
// worker) and the shared heartbeat counter for hangs (a stopped or wedged worker whose pid
// is still live). Both are driven by *iteration budgets*, not wall-clock deadlines — the
// scheduling path stays free of clock reads (scripts/dpack_lint.py nondeterministic-source),
// and a stall budget of N polls at a fixed sleep is a deadline all the same.
//
// Crash isolation contract: a worker may die (SIGKILL) at any instant. The rings only ever
// expose complete checksummed frames (src/common/shm_ring.h), Send() to a dead worker
// returns false instead of wedging, and a dead worker's rings may be re-initialized by the
// daemon (ResetRings) because the daemon then owns both ends. The scheduler layer on top
// (src/service/service_scheduler.h) turns these primitives into byte-identical recovery.

#ifndef SRC_SERVICE_TRANSPORT_H_
#define SRC_SERVICE_TRANSPORT_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/shm_ring.h"
#include "src/common/subprocess.h"
#include "src/service/messages.h"

namespace dpack {

// Deterministic transport/service counters: pure functions of the workload and the injected
// fault schedule, never of wall time — asserted exactly by tests and gated as bench metrics
// (bench/baseline.json). Stalls are loop iterations, not durations.
struct ServiceCounters {
  uint64_t messages_sent = 0;      // Frames the daemon pushed (to all workers).
  uint64_t messages_received = 0;  // Frames the daemon popped.
  uint64_t bytes_sent = 0;         // Payload bytes pushed by the daemon.
  uint64_t bytes_received = 0;     // Payload bytes popped by the daemon.
  uint64_t ring_stalls = 0;        // Full-ring waits observed while sending.
  uint64_t score_rounds = 0;       // Distributed scoring rounds completed.
  uint64_t recoveries = 0;         // Worker deaths detected and recovered from.
  uint64_t respawns = 0;           // Replacement workers forked (kRespawn policy).
  uint64_t state_replays = 0;      // Snapshot (State) messages sent to cold workers.
  uint64_t admission_rejects = 0;  // Submissions refused by the admission bound.
};

struct TransportConfig {
  size_t num_workers = 2;
  // Bytes per ring direction (two rings per worker). One megabyte holds any test-sized
  // refresh batch; a full ring is a counted stall, not an error.
  size_t ring_bytes = 1 << 20;
  // Sleep per empty/full poll iteration, microseconds. Iteration counts, not elapsed time,
  // bound every wait: budget * sleep is the effective deadline.
  unsigned int poll_sleep_us = 50;
  // Poll iterations a blocking daemon-side wait may spin before declaring the peer hung.
  uint64_t stall_budget = 40000;
};

// The child-process side of one worker slot: pops daemon→worker frames, pushes
// worker→daemon frames, bumps the shared heartbeat on every poll so the daemon can tell a
// hung worker from a merely idle one. Constructed inside the forked child by
// ServiceTransport; user code receives it through the WorkerBody callback.
class WorkerEndpoint {
 public:
  WorkerEndpoint(size_t index, WorkerControlBlock* control, ShmRing in, ShmRing out,
                 unsigned int poll_sleep_us);

  size_t index() const { return index_; }

  // Blocks until one message arrives from the daemon (bumping the heartbeat every poll) and
  // decodes it. Returns false on ring corruption or an undecodable frame — the worker
  // should exit nonzero; the daemon sees the death and recovers. If the daemon itself dies
  // (the worker is reparented), the wait ends and false is returned instead of spinning
  // orphaned forever.
  bool Receive(ServiceMessage* out);

  // Pushes one message toward the daemon, blocking while the ring is full. Returns false
  // only on the orphaned-daemon condition above.
  bool Send(const ServiceMessage& message);

  // Publishes the worker's lifecycle state (kReady after Bind, kExited before a clean exit).
  void SetLifeState(WorkerLifeState state);

 private:
  size_t index_;
  WorkerControlBlock* control_;
  ShmRing in_;   // Daemon → worker; this side pops.
  ShmRing out_;  // Worker → daemon; this side pushes.
  unsigned int poll_sleep_us_;
};

// What a worker process runs; its return value becomes the child's exit status.
using WorkerBody = std::function<int(WorkerEndpoint&)>;

// Daemon-side owner of the worker fleet: regions, rings, pids, liveness bookkeeping, and
// the transport counters. Not thread-safe — the daemon drives it from its single
// scheduling thread (which is also what makes fork-without-exec sound).
class ServiceTransport {
 public:
  ServiceTransport(TransportConfig config, WorkerBody body);
  // Kills (SIGKILL) and reaps any still-live worker. Prefer an explicit ShutdownAll() for
  // clean exits; the destructor is the crash-path backstop.
  ~ServiceTransport();

  ServiceTransport(const ServiceTransport&) = delete;
  ServiceTransport& operator=(const ServiceTransport&) = delete;

  // Maps all regions, initializes rings and control blocks, forks every worker. Call once,
  // from a single-threaded process.
  void Start();
  bool started() const { return started_; }

  size_t num_workers() const { return config_.num_workers; }
  // Liveness as last observed (Poll/Kill/ShutdownAll update it); a worker that died since
  // the last Poll still reads true here.
  bool alive(size_t w) const;
  pid_t pid(size_t w) const;
  uint64_t heartbeat(size_t w) const;
  WorkerLifeState life_state(size_t w) const;

  // Blocking push to worker w's inbound ring. A full ring is polled (counting ring_stalls)
  // until space frees, the worker is found dead (returns false), or the stall budget is
  // exhausted (DPACK_CHECK failure: a live, bound worker that stops draining its ring for
  // budget * poll_sleep_us is a bug, not backpressure).
  bool Send(size_t w, const ServiceMessage& message);

  // Non-blocking pop from worker w's outbound ring. kOk decodes into *out (an undecodable
  // frame reports kCorrupt with *error set); kEmpty/kCorrupt leave *out untouched.
  RingPopStatus TryReceive(size_t w, ServiceMessage* out, std::string* error);

  // Re-checks worker w's process state via waitpid. A terminal result (exit or signal)
  // reaps the child and marks the slot dead; safe to call repeatedly afterwards.
  ChildState Poll(size_t w);

  // Sends `signal` to worker w, then reaps it and marks the slot dead. The fault-injection
  // path (service_scheduler's kill hook) instead signals pid(w) directly and lets the
  // normal Poll-based detection find the corpse — that is the code path being proven.
  void Kill(size_t w, int signal);

  // Re-initializes both rings and the control block of a DEAD worker slot (DPACK_CHECKs
  // liveness): with the child gone the daemon owns both ring ends, so stale in-flight
  // frames — which a respawned worker must never double-apply — are discarded wholesale.
  void ResetRings(size_t w);

  // Forks a replacement worker into a dead, ring-reset slot. The new child starts cold
  // (kStarting, heartbeat 0) and must be re-bound and re-fed state by the scheduler layer.
  void Respawn(size_t w);

  // Clean shutdown: Shutdown message to every live worker, a budgeted wait for voluntary
  // exits, SIGKILL for stragglers, and a reap of everything. Idempotent.
  void ShutdownAll();

  ServiceCounters& counters() { return counters_; }
  const ServiceCounters& counters() const { return counters_; }
  const TransportConfig& config() const { return config_; }

 private:
  struct Slot {
    ShmRegion region;
    WorkerControlBlock* control = nullptr;
    // Daemon-side ring handles (the child constructs its own over the same memory).
    std::unique_ptr<ShmRing> to_worker;    // Daemon pushes.
    std::unique_ptr<ShmRing> from_worker;  // Daemon pops.
    pid_t pid = -1;
    bool alive = false;
  };

  void InitSlotMemory(Slot& slot);
  void ForkWorker(size_t w);

  TransportConfig config_;
  WorkerBody body_;
  std::vector<Slot> slots_;
  ServiceCounters counters_;
  bool started_ = false;
};

}  // namespace dpack

#endif  // SRC_SERVICE_TRANSPORT_H_
