// Exact solver for the privacy knapsack problem (Eq. 5) — the paper's "Optimal" baseline.
//
//   max  sum_i w_i x_i   s.t.  for every block j there EXISTS an order alpha with
//                              sum_i d_{i j alpha} x_i <= c_{j alpha}.
//
// The problem is NP-hard (Prop. 1) and has no FPTAS for >= 2 blocks (Prop. 3); this solver is
// a depth-first branch-and-bound intended for small instances, mirroring the paper's use of
// Gurobi: exact on a few hundred tasks, intractable beyond (Fig. 5a). A node/time budget
// bounds the search; when exhausted the best incumbent is returned with `optimal == false`.
//
// Feasibility is monotone: demands are non-negative, so any subset of a feasible set is
// feasible; depth-first construction with incremental filter checks therefore enumerates
// exactly the feasible sets.

#ifndef SRC_KNAPSACK_PRIVACY_KNAPSACK_H_
#define SRC_KNAPSACK_PRIVACY_KNAPSACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dpack {

// One task of a privacy-knapsack instance. `demand[alpha]` is charged to every block in
// `blocks` (the paper's workloads demand the same RDP curve from each requested block).
struct PkTask {
  double weight = 1.0;
  std::vector<size_t> blocks;   // Indices in [0, num_blocks).
  std::vector<double> demand;   // One entry per order; size == num_orders.
};

struct PkInstance {
  size_t num_blocks = 0;
  size_t num_orders = 0;
  // capacity[j * num_orders + alpha] = c_{j alpha}.
  std::vector<double> capacity;
  std::vector<PkTask> tasks;

  double CapacityAt(size_t block, size_t order) const {
    return capacity[block * num_orders + order];
  }
};

struct PkOptions {
  uint64_t max_nodes = 50'000'000;  // Search-node budget.
  double time_limit_seconds = 60.0;  // Wall-clock budget.
};

struct PkResult {
  double total_weight = 0.0;
  std::vector<size_t> selected;  // Task indices, ascending.
  bool optimal = false;          // True iff the search completed within budget.
  uint64_t nodes_explored = 0;
  double elapsed_seconds = 0.0;
};

// Runs the branch-and-bound. Deterministic for a fixed instance (the time limit only stops
// the search; the incumbent sequence itself is deterministic).
PkResult SolvePrivacyKnapsackExact(const PkInstance& instance, const PkOptions& options = {});

// Exhaustive 2^n reference for tests. Requires instance.tasks.size() <= 25.
PkResult SolvePrivacyKnapsackBruteForce(const PkInstance& instance);

}  // namespace dpack

#endif  // SRC_KNAPSACK_PRIVACY_KNAPSACK_H_
