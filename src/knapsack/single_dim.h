// Single-dimension 0/1 knapsack solvers.
//
// DPack's COMPUTE_BESTALPHA step (Alg. 1) solves one single-block knapsack per (block, order)
// pair: maximize total profit subject to sum of demands <= capacity. The paper uses a
// (2/3) eta FPTAS (Prop. 2); we provide an exact max-cardinality fast path for uniform
// profits, a profit-scaling FPTAS for weighted instances, a density greedy (the classical
// 1/2-approximation), and an exact branch-and-bound used by tests and small instances.

#ifndef SRC_KNAPSACK_SINGLE_DIM_H_
#define SRC_KNAPSACK_SINGLE_DIM_H_

#include <cstddef>
#include <span>
#include <vector>

namespace dpack {

// One candidate item: non-negative profit and demand.
struct KnapsackItem {
  double profit = 0.0;
  double demand = 0.0;
};

struct KnapsackSolution {
  double total_profit = 0.0;
  std::vector<size_t> selected;  // Indices into the input span, ascending.
};

// True if all items have the same profit (within exact equality; workload profits are exact).
bool UniformProfits(std::span<const KnapsackItem> items);

// Exact solver for uniform-profit instances: picks the maximum number of items that fit
// (sort ascending by demand, take the longest feasible prefix). O(n log n).
KnapsackSolution MaxCardinalityKnapsack(std::span<const KnapsackItem> items, double capacity);

// Classical greedy by profit density with the best-single-item fix: a 1/2-approximation.
// O(n log n).
KnapsackSolution GreedyDensityKnapsack(std::span<const KnapsackItem> items, double capacity);

// Upper bound from the LP relaxation (fractional knapsack): optimum <= returned value.
double FractionalKnapsackBound(std::span<const KnapsackItem> items, double capacity);

// Profit-scaling FPTAS: returns a solution with profit >= optimum / (1 + eta).
// Runs the dynamic program over scaled profits; cost O(n^2 / eta). `max_states` caps the DP
// table size; when exceeded the solver falls back to GreedyDensityKnapsack (still 1/2-approx).
KnapsackSolution FptasKnapsack(std::span<const KnapsackItem> items, double capacity, double eta,
                               size_t max_states = 50'000'000);

// Exact branch-and-bound (fractional bound pruning). Exponential worst case; intended for
// tests and small instances (n up to a few hundred).
KnapsackSolution ExactKnapsack(std::span<const KnapsackItem> items, double capacity);

// Dispatcher used by DPack's single-block subproblems: exact max-cardinality when profits are
// uniform, otherwise the FPTAS with the given eta.
KnapsackSolution SolveSingleBlock(std::span<const KnapsackItem> items, double capacity,
                                  double eta);

}  // namespace dpack

#endif  // SRC_KNAPSACK_SINGLE_DIM_H_
