#include "src/knapsack/privacy_knapsack.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/check.h"
#include "src/knapsack/single_dim.h"

namespace dpack {

namespace {

constexpr double kTinyCapacity = 1e-12;

void ValidateInstance(const PkInstance& instance) {
  DPACK_CHECK(instance.num_blocks > 0);
  DPACK_CHECK(instance.num_orders > 0);
  DPACK_CHECK(instance.capacity.size() == instance.num_blocks * instance.num_orders);
  for (double c : instance.capacity) {
    DPACK_CHECK_MSG(c >= 0.0, "capacities must be non-negative");
  }
  for (const auto& task : instance.tasks) {
    DPACK_CHECK_MSG(task.weight >= 0.0, "weights must be non-negative");
    DPACK_CHECK_MSG(task.demand.size() == instance.num_orders, "demand size mismatch");
    DPACK_CHECK_MSG(!task.blocks.empty(), "task must request at least one block");
    for (size_t j : task.blocks) {
      DPACK_CHECK_MSG(j < instance.num_blocks, "block index out of range");
    }
    for (double d : task.demand) {
      DPACK_CHECK_MSG(d >= 0.0, "demands must be non-negative");
    }
  }
}

// Optimistic per-task normalized size: for each requested block, the demand share at the
// most favourable order. Used only for search ordering, not for correctness.
double OptimisticShare(const PkInstance& instance, const PkTask& task) {
  double total = 0.0;
  for (size_t j : task.blocks) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < instance.num_orders; ++a) {
      double cap = instance.CapacityAt(j, a);
      double share = cap > kTinyCapacity ? task.demand[a] / cap
                                         : (task.demand[a] == 0.0
                                                ? 0.0
                                                : std::numeric_limits<double>::infinity());
      best = std::min(best, share);
    }
    total += best;
  }
  return total;
}

class Search {
 public:
  Search(const PkInstance& instance, const PkOptions& options)
      : instance_(instance), options_(options), start_(std::chrono::steady_clock::now()) {
    n_ = instance.tasks.size();
    consumed_.assign(instance.num_blocks * instance.num_orders, 0.0);
    BuildOrder();
    BuildSuffixSums();
    ChooseBoundBlock();
    BuildBoundLists();
  }

  PkResult Run() {
    // Seed the incumbent with a feasible greedy pass so pruning bites immediately.
    GreedyIncumbent();
    aborted_ = false;
    Dfs(0, 0.0);
    PkResult result;
    result.total_weight = best_weight_;
    result.selected = best_set_;
    std::sort(result.selected.begin(), result.selected.end());
    result.optimal = !aborted_;
    result.nodes_explored = nodes_;
    result.elapsed_seconds = ElapsedSeconds();
    return result;
  }

 private:
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  void BuildOrder() {
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), 0);
    std::vector<double> share(n_);
    for (size_t i = 0; i < n_; ++i) {
      share[i] = OptimisticShare(instance_, instance_.tasks[i]);
    }
    std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
      double da = share[a] > 0.0 ? instance_.tasks[a].weight / share[a]
                                 : std::numeric_limits<double>::infinity();
      double db = share[b] > 0.0 ? instance_.tasks[b].weight / share[b]
                                 : std::numeric_limits<double>::infinity();
      if (da != db) {
        return da > db;
      }
      return a < b;
    });
  }

  void BuildSuffixSums() {
    suffix_weight_.assign(n_ + 1, 0.0);
    for (size_t pos = n_; pos-- > 0;) {
      suffix_weight_[pos] = suffix_weight_[pos + 1] + instance_.tasks[order_[pos]].weight;
    }
  }

  // Picks the most contended block for the fractional bound: highest total optimistic demand
  // share across tasks.
  void ChooseBoundBlock() {
    std::vector<double> contention(instance_.num_blocks, 0.0);
    for (const auto& task : instance_.tasks) {
      for (size_t j : task.blocks) {
        double best = std::numeric_limits<double>::infinity();
        for (size_t a = 0; a < instance_.num_orders; ++a) {
          double cap = instance_.CapacityAt(j, a);
          double share = cap > kTinyCapacity
                             ? task.demand[a] / cap
                             : (task.demand[a] == 0.0
                                    ? 0.0
                                    : std::numeric_limits<double>::infinity());
          best = std::min(best, share);
        }
        if (std::isfinite(best)) {
          contention[j] += best;
        } else {
          contention[j] += 1.0;
        }
      }
    }
    bound_block_ = static_cast<size_t>(
        std::max_element(contention.begin(), contention.end()) - contention.begin());
    suffix_weight_not_req_.assign(n_ + 1, 0.0);
    for (size_t pos = n_; pos-- > 0;) {
      const auto& task = instance_.tasks[order_[pos]];
      bool requests = std::find(task.blocks.begin(), task.blocks.end(), bound_block_) !=
                      task.blocks.end();
      suffix_weight_not_req_[pos] =
          suffix_weight_not_req_[pos + 1] + (requests ? 0.0 : task.weight);
    }
  }

  // For each order alpha, the tasks requesting bound_block_ sorted by weight/demand density,
  // tagged with their DFS position so a node can restrict to its suffix.
  void BuildBoundLists() {
    std::vector<size_t> pos_of(n_);
    for (size_t pos = 0; pos < n_; ++pos) {
      pos_of[order_[pos]] = pos;
    }
    bound_lists_.assign(instance_.num_orders, {});
    for (size_t i = 0; i < n_; ++i) {
      const auto& task = instance_.tasks[i];
      if (std::find(task.blocks.begin(), task.blocks.end(), bound_block_) == task.blocks.end()) {
        continue;
      }
      for (size_t a = 0; a < instance_.num_orders; ++a) {
        bound_lists_[a].push_back(
            {pos_of[i], instance_.tasks[i].weight, instance_.tasks[i].demand[a]});
      }
    }
    for (auto& list : bound_lists_) {
      std::sort(list.begin(), list.end(), [](const BoundEntry& x, const BoundEntry& y) {
        bool x_free = x.demand == 0.0;
        bool y_free = y.demand == 0.0;
        if (x_free != y_free) {
          return x_free;
        }
        if (x_free) {
          return x.weight > y.weight;
        }
        double dx = x.weight / x.demand;
        double dy = y.weight / y.demand;
        if (dx != dy) {
          return dx > dy;
        }
        return x.pos < y.pos;
      });
    }
  }

  bool CanAdd(const PkTask& task) const {
    for (size_t j : task.blocks) {
      bool fits = false;
      for (size_t a = 0; a < instance_.num_orders; ++a) {
        double cap = instance_.CapacityAt(j, a);
        if (cap <= 0.0) {
          continue;  // Unusable order: cannot certify the guarantee (filter semantics).
        }
        if (consumed_[j * instance_.num_orders + a] + task.demand[a] <= cap) {
          fits = true;
          break;
        }
      }
      if (!fits) {
        return false;
      }
    }
    return true;
  }

  void Apply(const PkTask& task, double sign) {
    for (size_t j : task.blocks) {
      for (size_t a = 0; a < instance_.num_orders; ++a) {
        consumed_[j * instance_.num_orders + a] += sign * task.demand[a];
      }
    }
  }

  void GreedyIncumbent() {
    std::vector<size_t> picked;
    double weight = 0.0;
    for (size_t pos = 0; pos < n_; ++pos) {
      const auto& task = instance_.tasks[order_[pos]];
      if (CanAdd(task)) {
        Apply(task, +1.0);
        picked.push_back(order_[pos]);
        weight += task.weight;
      }
    }
    for (size_t idx : picked) {
      Apply(instance_.tasks[idx], -1.0);
    }
    best_weight_ = weight;
    best_set_ = std::move(picked);
  }

  // Upper bound on the weight attainable from positions >= pos given current consumption:
  // tasks not touching the bound block contribute fully; tasks touching it are bounded by the
  // best single-order fractional fill (valid because the final set must fit at SOME order).
  double UpperBound(size_t pos) const {
    double best_fill = 0.0;
    for (size_t a = 0; a < instance_.num_orders; ++a) {
      double cap = instance_.CapacityAt(bound_block_, a);
      if (cap <= 0.0) {
        continue;  // Unusable order.
      }
      double remaining = cap - consumed_[bound_block_ * instance_.num_orders + a];
      if (remaining < 0.0) {
        remaining = 0.0;
      }
      double fill = 0.0;
      for (const auto& entry : bound_lists_[a]) {
        if (entry.pos < pos) {
          continue;
        }
        if (entry.demand == 0.0) {
          fill += entry.weight;
          continue;
        }
        if (remaining <= 0.0) {
          break;
        }
        if (entry.demand <= remaining) {
          remaining -= entry.demand;
          fill += entry.weight;
        } else {
          fill += entry.weight * (remaining / entry.demand);
          remaining = 0.0;
          break;
        }
      }
      best_fill = std::max(best_fill, fill);
      if (best_fill >= suffix_weight_[pos] - suffix_weight_not_req_[pos]) {
        break;  // Cannot exceed the total requesting-weight anyway.
      }
    }
    return suffix_weight_not_req_[pos] + best_fill;
  }

  void Dfs(size_t pos, double weight) {
    if (aborted_) {
      return;
    }
    ++nodes_;
    if (nodes_ > options_.max_nodes) {
      aborted_ = true;
      return;
    }
    if ((nodes_ & 0xFFF) == 0 && ElapsedSeconds() > options_.time_limit_seconds) {
      aborted_ = true;
      return;
    }
    if (weight > best_weight_) {
      best_weight_ = weight;
      best_set_ = current_;
    }
    if (pos == n_) {
      return;
    }
    if (weight + suffix_weight_[pos] <= best_weight_) {
      return;  // Even taking everything cannot beat the incumbent.
    }
    if (weight + UpperBound(pos) <= best_weight_) {
      return;
    }
    const auto& task = instance_.tasks[order_[pos]];
    if (CanAdd(task)) {
      Apply(task, +1.0);
      current_.push_back(order_[pos]);
      Dfs(pos + 1, weight + task.weight);
      current_.pop_back();
      Apply(task, -1.0);
    }
    Dfs(pos + 1, weight);
  }

  struct BoundEntry {
    size_t pos;
    double weight;
    double demand;
  };

  const PkInstance& instance_;
  const PkOptions& options_;
  std::chrono::steady_clock::time_point start_;
  size_t n_ = 0;
  std::vector<size_t> order_;
  std::vector<double> suffix_weight_;
  std::vector<double> suffix_weight_not_req_;
  size_t bound_block_ = 0;
  std::vector<std::vector<BoundEntry>> bound_lists_;
  std::vector<double> consumed_;
  std::vector<size_t> current_;
  std::vector<size_t> best_set_;
  double best_weight_ = 0.0;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

namespace {

bool UniformWeights(const PkInstance& instance) {
  for (const auto& task : instance.tasks) {
    if (task.weight != instance.tasks[0].weight) {
      return false;
    }
  }
  return true;
}

// Single-block instances decompose exactly: a set is feasible iff it fits at SOME order, so
// the optimum is the max over orders of the single-dimension optimum at that order. With
// uniform weights each per-order problem is max-cardinality (sort by demand) — polynomial.
PkResult SolveSingleBlockUniform(const PkInstance& instance) {
  auto start = std::chrono::steady_clock::now();
  PkResult best;
  best.optimal = true;
  for (size_t a = 0; a < instance.num_orders; ++a) {
    if (instance.CapacityAt(0, a) <= 0.0) {
      continue;  // Unusable order (filter semantics).
    }
    std::vector<KnapsackItem> items;
    items.reserve(instance.tasks.size());
    for (const auto& task : instance.tasks) {
      items.push_back({task.weight, task.demand[a]});
    }
    KnapsackSolution sol = MaxCardinalityKnapsack(items, instance.CapacityAt(0, a));
    if (sol.total_profit > best.total_weight) {
      best.total_weight = sol.total_profit;
      best.selected = std::move(sol.selected);
    }
  }
  best.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return best;
}

}  // namespace

PkResult SolvePrivacyKnapsackExact(const PkInstance& instance, const PkOptions& options) {
  ValidateInstance(instance);
  if (instance.tasks.empty()) {
    PkResult result;
    result.optimal = true;
    return result;
  }
  if (instance.num_blocks == 1 && UniformWeights(instance)) {
    return SolveSingleBlockUniform(instance);
  }
  Search search(instance, options);
  return search.Run();
}

PkResult SolvePrivacyKnapsackBruteForce(const PkInstance& instance) {
  ValidateInstance(instance);
  DPACK_CHECK_MSG(instance.tasks.size() <= 25, "brute force limited to 25 tasks");
  size_t n = instance.tasks.size();
  PkResult best;
  best.optimal = true;
  std::vector<double> consumed(instance.num_blocks * instance.num_orders);
  std::vector<bool> touched(instance.num_blocks);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    std::fill(consumed.begin(), consumed.end(), 0.0);
    std::fill(touched.begin(), touched.end(), false);
    double weight = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        weight += instance.tasks[i].weight;
        for (size_t j : instance.tasks[i].blocks) {
          touched[j] = true;
          for (size_t a = 0; a < instance.num_orders; ++a) {
            consumed[j * instance.num_orders + a] += instance.tasks[i].demand[a];
          }
        }
      }
    }
    if (weight <= best.total_weight) {
      continue;
    }
    // A block constrains only the tasks that request it; usable orders need capacity > 0.
    bool feasible = true;
    for (size_t j = 0; j < instance.num_blocks && feasible; ++j) {
      if (!touched[j]) {
        continue;
      }
      bool block_ok = false;
      for (size_t a = 0; a < instance.num_orders; ++a) {
        if (instance.CapacityAt(j, a) > 0.0 &&
            consumed[j * instance.num_orders + a] <= instance.CapacityAt(j, a)) {
          block_ok = true;
          break;
        }
      }
      feasible = block_ok;
    }
    if (feasible) {
      best.total_weight = weight;
      best.selected.clear();
      for (size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) {
          best.selected.push_back(i);
        }
      }
    }
  }
  return best;
}

}  // namespace dpack
