#include "src/knapsack/single_dim.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "src/common/check.h"

namespace dpack {

namespace {

void ValidateItems(std::span<const KnapsackItem> items) {
  for (const auto& item : items) {
    DPACK_CHECK_MSG(item.profit >= 0.0, "profits must be non-negative");
    DPACK_CHECK_MSG(item.demand >= 0.0, "demands must be non-negative");
  }
}

// Indices sorted by profit density descending; zero-demand items first (infinite density),
// ties broken by smaller demand.
std::vector<size_t> DensityOrder(std::span<const KnapsackItem> items) {
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const auto& ia = items[a];
    const auto& ib = items[b];
    bool a_free = ia.demand == 0.0;
    bool b_free = ib.demand == 0.0;
    if (a_free != b_free) {
      return a_free;
    }
    if (a_free && b_free) {
      return ia.profit > ib.profit;
    }
    double da = ia.profit / ia.demand;
    double db = ib.profit / ib.demand;
    if (da != db) {
      return da > db;
    }
    return ia.demand < ib.demand;
  });
  return order;
}

}  // namespace

bool UniformProfits(std::span<const KnapsackItem> items) {
  for (size_t i = 1; i < items.size(); ++i) {
    if (items[i].profit != items[0].profit) {
      return false;
    }
  }
  return true;
}

KnapsackSolution MaxCardinalityKnapsack(std::span<const KnapsackItem> items, double capacity) {
  ValidateItems(items);
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return items[a].demand < items[b].demand; });
  KnapsackSolution solution;
  double used = 0.0;
  for (size_t idx : order) {
    if (used + items[idx].demand <= capacity) {
      used += items[idx].demand;
      solution.total_profit += items[idx].profit;
      solution.selected.push_back(idx);
    } else {
      break;  // Sorted ascending: nothing further fits either.
    }
  }
  std::sort(solution.selected.begin(), solution.selected.end());
  return solution;
}

KnapsackSolution GreedyDensityKnapsack(std::span<const KnapsackItem> items, double capacity) {
  ValidateItems(items);
  KnapsackSolution greedy;
  double used = 0.0;
  for (size_t idx : DensityOrder(items)) {
    if (used + items[idx].demand <= capacity) {
      used += items[idx].demand;
      greedy.total_profit += items[idx].profit;
      greedy.selected.push_back(idx);
    }
  }
  // Best single item: together with the greedy prefix this yields the 1/2 guarantee.
  size_t best_single = items.size();
  double best_single_profit = 0.0;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].demand <= capacity && items[i].profit > best_single_profit) {
      best_single_profit = items[i].profit;
      best_single = i;
    }
  }
  if (best_single != items.size() && best_single_profit > greedy.total_profit) {
    greedy.total_profit = best_single_profit;
    greedy.selected.assign(1, best_single);
  }
  std::sort(greedy.selected.begin(), greedy.selected.end());
  return greedy;
}

double FractionalKnapsackBound(std::span<const KnapsackItem> items, double capacity) {
  ValidateItems(items);
  double remaining = capacity;
  double bound = 0.0;
  for (size_t idx : DensityOrder(items)) {
    const auto& item = items[idx];
    if (item.demand == 0.0) {
      bound += item.profit;
      continue;
    }
    if (remaining <= 0.0) {
      break;
    }
    if (item.demand <= remaining) {
      remaining -= item.demand;
      bound += item.profit;
    } else {
      bound += item.profit * (remaining / item.demand);
      remaining = 0.0;
      break;
    }
  }
  return bound;
}

KnapsackSolution FptasKnapsack(std::span<const KnapsackItem> items, double capacity, double eta,
                               size_t max_states) {
  ValidateItems(items);
  DPACK_CHECK(eta > 0.0);
  if (items.empty()) {
    return {};
  }
  double max_profit = 0.0;
  for (const auto& item : items) {
    if (item.demand <= capacity) {
      max_profit = std::max(max_profit, item.profit);
    }
  }
  if (max_profit == 0.0) {
    return {};  // Nothing fits, or everything that fits has zero profit.
  }
  // Profit scaling: scaled_i = floor(profit_i / k) with k = eta * max_profit / n guarantees
  // a (1 + eta) approximation (Kellerer et al., ch. 2).
  const double k = eta * max_profit / static_cast<double>(items.size());
  std::vector<int64_t> scaled(items.size(), 0);
  int64_t total_scaled = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].demand > capacity) {
      scaled[i] = -1;  // Can never be packed.
      continue;
    }
    scaled[i] = static_cast<int64_t>(std::floor(items[i].profit / k));
    total_scaled += scaled[i];
  }
  size_t states = static_cast<size_t>(total_scaled) + 1;
  // The DP costs O(n * states) time, not just O(states) memory: fall back to the greedy
  // 1/2-approximation when either the table or the work would be excessive (large scheduler
  // batches hit this every cycle; greedy keeps DPack's per-cycle cost near-linear).
  constexpr size_t kMaxWork = 64'000'000;
  if (states > max_states || states == 0 || states > kMaxWork / std::max<size_t>(1, items.size())) {
    return GreedyDensityKnapsack(items, capacity);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> min_demand(states, kInf);
  min_demand[0] = 0.0;
  // Reconstruction: a node pool of (item, parent) links; node_of[s] is the chain giving the
  // min_demand[s] set. Chains are snapshots, so later dp updates cannot corrupt them.
  struct Node {
    uint32_t item;
    int32_t parent;
  };
  std::vector<Node> pool;
  std::vector<int32_t> node_of(states, -1);

  int64_t reachable = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    if (scaled[i] < 0) {
      continue;
    }
    reachable += scaled[i];
    int64_t upper = std::min<int64_t>(reachable, static_cast<int64_t>(states) - 1);
    for (int64_t s = upper; s >= scaled[i]; --s) {
      int64_t p = s - scaled[i];
      if (min_demand[static_cast<size_t>(p)] == kInf) {
        continue;
      }
      double candidate = min_demand[static_cast<size_t>(p)] + items[i].demand;
      if (candidate < min_demand[static_cast<size_t>(s)] && candidate <= capacity) {
        min_demand[static_cast<size_t>(s)] = candidate;
        pool.push_back({static_cast<uint32_t>(i), node_of[static_cast<size_t>(p)]});
        node_of[static_cast<size_t>(s)] = static_cast<int32_t>(pool.size()) - 1;
      }
    }
  }

  // Best reachable scaled profit within capacity.
  size_t best_state = 0;
  for (size_t s = states; s-- > 0;) {
    if (min_demand[s] <= capacity) {
      best_state = s;
      break;
    }
  }
  KnapsackSolution solution;
  for (int32_t node = node_of[best_state]; node >= 0;
       node = pool[static_cast<size_t>(node)].parent) {
    size_t item = pool[static_cast<size_t>(node)].item;
    solution.selected.push_back(item);
    solution.total_profit += items[item].profit;
  }
  std::sort(solution.selected.begin(), solution.selected.end());
  return solution;
}

namespace {

struct BranchAndBoundState {
  std::span<const KnapsackItem> items;
  std::vector<size_t> order;  // Density order.
  double capacity = 0.0;
  double best_profit = 0.0;
  std::vector<size_t> best_set;
  std::vector<size_t> current;

  void Dfs(size_t pos, double used, double profit) {
    if (profit > best_profit) {
      best_profit = profit;
      best_set = current;
    }
    if (pos == order.size()) {
      return;
    }
    // Fractional bound over the remaining suffix.
    double bound = profit;
    double remaining = capacity - used;
    for (size_t i = pos; i < order.size() && remaining > 0.0; ++i) {
      const auto& item = items[order[i]];
      if (item.demand <= remaining) {
        remaining -= item.demand;
        bound += item.profit;
      } else if (item.demand > 0.0) {
        bound += item.profit * (remaining / item.demand);
        remaining = 0.0;
      }
    }
    if (bound <= best_profit) {
      return;
    }
    const auto& item = items[order[pos]];
    if (used + item.demand <= capacity) {
      current.push_back(order[pos]);
      Dfs(pos + 1, used + item.demand, profit + item.profit);
      current.pop_back();
    }
    Dfs(pos + 1, used, profit);
  }
};

}  // namespace

KnapsackSolution ExactKnapsack(std::span<const KnapsackItem> items, double capacity) {
  ValidateItems(items);
  BranchAndBoundState state;
  state.items = items;
  state.order = DensityOrder(items);
  state.capacity = capacity;
  state.Dfs(0, 0.0, 0.0);
  KnapsackSolution solution;
  solution.total_profit = state.best_profit;
  solution.selected = std::move(state.best_set);
  std::sort(solution.selected.begin(), solution.selected.end());
  return solution;
}

KnapsackSolution SolveSingleBlock(std::span<const KnapsackItem> items, double capacity,
                                  double eta) {
  if (UniformProfits(items)) {
    return MaxCardinalityKnapsack(items, capacity);
  }
  return FptasKnapsack(items, capacity, eta);
}

}  // namespace dpack
