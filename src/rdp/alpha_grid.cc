#include "src/rdp/alpha_grid.h"

#include "src/common/check.h"

namespace dpack {

AlphaGridPtr AlphaGrid::Create(std::vector<double> orders) {
  DPACK_CHECK(!orders.empty());
  for (size_t i = 0; i < orders.size(); ++i) {
    DPACK_CHECK_MSG(orders[i] > 1.0, "RDP orders must be > 1");
    if (i > 0) {
      DPACK_CHECK_MSG(orders[i] > orders[i - 1], "RDP orders must be strictly increasing");
    }
  }
  return AlphaGridPtr(new AlphaGrid(std::move(orders)));
}

AlphaGridPtr AlphaGrid::Default() {
  static const AlphaGridPtr kDefault =
      Create({1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 16.0, 32.0, 64.0});
  return kDefault;
}

AlphaGridPtr AlphaGrid::TraditionalDp() {
  static const AlphaGridPtr kTraditional = Create({2.0});
  return kTraditional;
}

size_t AlphaGrid::IndexOf(double alpha) const {
  for (size_t i = 0; i < orders_.size(); ++i) {
    if (orders_[i] == alpha) {
      return i;
    }
  }
  return orders_.size();
}

bool SameGrid(const AlphaGridPtr& a, const AlphaGridPtr& b) {
  if (a == b) {
    return true;
  }
  if (a == nullptr || b == nullptr) {
    return false;
  }
  return a->orders() == b->orders();
}

}  // namespace dpack
