#include "src/rdp/accountant.h"

#include "src/common/check.h"

namespace dpack {

PrivacyFilter::PrivacyFilter(const AlphaGridPtr& grid, double eps_g, double delta_g)
    : PrivacyFilter(BlockCapacityCurve(grid, eps_g, delta_g)) {}

PrivacyFilter::PrivacyFilter(RdpCurve budget)
    : budget_(std::move(budget)), consumed_(budget_.grid()) {}

bool PrivacyFilter::CanCharge(const RdpCurve& loss) const {
  DPACK_CHECK_MSG(SameGrid(loss.grid(), budget_.grid()), "grid mismatch");
  for (size_t i = 0; i < budget_.size(); ++i) {
    double cap = budget_.epsilon(i);
    if (cap <= 0.0) {
      continue;  // Unusable order.
    }
    double slack = 1e-9 * (1.0 + cap);
    if (consumed_.epsilon(i) + loss.epsilon(i) <= cap + slack) {
      return true;
    }
  }
  return false;
}

bool PrivacyFilter::TryCharge(const RdpCurve& loss) {
  if (!CanCharge(loss)) {
    return false;
  }
  consumed_.Accumulate(loss);
  ++charges_;
  return true;
}

bool PrivacyFilter::Exhausted() const {
  for (size_t i = 0; i < budget_.size(); ++i) {
    double cap = budget_.epsilon(i);
    if (cap <= 0.0) {
      continue;  // Unusable order.
    }
    // Same tolerance as CanCharge: remaining budget within the admission slack is not
    // actionable, so a filter filled to within float noise of capacity must report
    // exhausted rather than holding an uncommittable sliver open forever.
    double slack = 1e-9 * (1.0 + cap);
    if (consumed_.epsilon(i) + slack < cap) {
      return false;
    }
  }
  return true;
}

PrivacyOdometer::PrivacyOdometer(AlphaGridPtr grid) : consumed_(std::move(grid)) {}

void PrivacyOdometer::Charge(const RdpCurve& loss) {
  consumed_.Accumulate(loss);
  ++charges_;
}

}  // namespace dpack
