// Rényi privacy filters and odometers: adaptive-composition accounting (§3.4).
//
// A *filter* enforces a preset RDP budget over an adaptively chosen sequence of
// computations: each charge is accepted only if the cumulative loss stays within budget at
// some Rényi order, which (via Eq. 2) certifies the preset (eps_g, delta_g)-DP guarantee for
// the whole sequence — Property 6 of the paper, following Feldman-Zrnic / Lécuyer.
//
// An *odometer* tracks the running loss of an unbounded sequence and reports the tightest
// (eps, delta)-DP translation so far, without enforcing a bound.
//
// `PrivacyBlock` couples this accounting with data-block capacity and unlocking; the
// standalone classes here serve per-task, per-user, or per-pipeline accounting.

#ifndef SRC_RDP_ACCOUNTANT_H_
#define SRC_RDP_ACCOUNTANT_H_

#include <cstdint>

#include "src/rdp/rdp_curve.h"

namespace dpack {

class PrivacyFilter {
 public:
  // A filter enforcing (eps_g, delta_g)-DP: the per-order budget is eps_g - log(1/delta_g)
  // / (alpha - 1), exactly a block's capacity curve.
  PrivacyFilter(const AlphaGridPtr& grid, double eps_g, double delta_g);

  // A filter with an explicit per-order RDP budget.
  explicit PrivacyFilter(RdpCurve budget);

  // True iff charging `loss` keeps the cumulative consumption within budget at >= 1 usable
  // order. Does not charge.
  bool CanCharge(const RdpCurve& loss) const;

  // Charges `loss` if admissible; returns whether it was charged. Once a charge is
  // rejected, later smaller charges may still be accepted (the filter is not "halted") —
  // rejection simply means that computation must not run.
  bool TryCharge(const RdpCurve& loss);

  const RdpCurve& budget() const { return budget_; }
  const RdpCurve& consumed() const { return consumed_; }
  uint64_t charges() const { return charges_; }

  // Remaining budget per order, clamped at zero.
  RdpCurve Remaining() const { return budget_.SaturatingSubtract(consumed_); }

  // True when every usable order's remaining budget is within the admission tolerance of
  // CanCharge (1e-9 * (1 + cap)) — i.e. no meaningful charge can ever be accepted again.
  bool Exhausted() const;

 private:
  RdpCurve budget_;
  RdpCurve consumed_;
  uint64_t charges_ = 0;
};

class PrivacyOdometer {
 public:
  explicit PrivacyOdometer(AlphaGridPtr grid);

  // Unconditionally accumulates `loss`.
  void Charge(const RdpCurve& loss);

  const RdpCurve& consumed() const { return consumed_; }
  uint64_t charges() const { return charges_; }

  // Tightest traditional-DP translation of the loss so far (Eq. 2). Requires 0 < delta < 1.
  DpTranslation CurrentDp(double delta) const { return consumed_.ToDp(delta); }

 private:
  RdpCurve consumed_;
  uint64_t charges_ = 0;
};

}  // namespace dpack

#endif  // SRC_RDP_ACCOUNTANT_H_
