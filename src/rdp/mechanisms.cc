#include "src/rdp/mechanisms.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "src/common/check.h"

namespace dpack {

namespace {

// log(e^a + e^b) without overflow.
double LogSumExp2(double a, double b) {
  double m = std::max(a, b);
  if (m == -std::numeric_limits<double>::infinity()) {
    return m;
  }
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

double LogSumExp(const std::vector<double>& xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) {
    m = std::max(m, x);
  }
  if (m == -std::numeric_limits<double>::infinity()) {
    return m;
  }
  double s = 0.0;
  for (double x : xs) {
    s += std::exp(x - m);
  }
  return m + std::log(s);
}

// log C(n, k) for integers 0 <= k <= n.
double LogChoose(int64_t n, int64_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) - std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

// Laplace RDP epsilon at a (possibly fractional) order alpha > 1, scale b > 0, computed in
// the log domain for stability at large alpha / small b. [Mironov '17, Prop. 6]
double LaplaceEpsilonAt(double alpha, double b) {
  double t1 = std::log(alpha / (2.0 * alpha - 1.0)) + (alpha - 1.0) / b;
  double t2 = std::log((alpha - 1.0) / (2.0 * alpha - 1.0)) - alpha / b;
  return LogSumExp2(t1, t2) / (alpha - 1.0);
}

// log A(alpha) of the subsampled mechanism at integer order alpha >= 2, where A is the
// binomially-expanded moment (see header).
double SubsampledLogMoment(int64_t alpha, double q,
                           const std::function<double(int64_t)>& base_epsilon_at) {
  std::vector<double> terms;
  terms.reserve(static_cast<size_t>(alpha) + 1);
  double log_q = q > 0.0 ? std::log(q) : -std::numeric_limits<double>::infinity();
  double log_1mq = q < 1.0 ? std::log1p(-q) : -std::numeric_limits<double>::infinity();
  for (int64_t k = 0; k <= alpha; ++k) {
    double log_moment_k = 0.0;  // log M_k; M_0 = M_1 = 1.
    if (k >= 2) {
      log_moment_k = (static_cast<double>(k) - 1.0) * base_epsilon_at(k);
    }
    double log_coeff = LogChoose(alpha, k);
    double log_qk = (k == 0) ? 0.0 : static_cast<double>(k) * log_q;
    double log_q1k = (alpha == k) ? 0.0 : static_cast<double>(alpha - k) * log_1mq;
    if (std::isinf(log_qk) || std::isinf(log_q1k)) {
      continue;  // Zero-probability term.
    }
    terms.push_back(log_coeff + log_qk + log_q1k + log_moment_k);
  }
  DPACK_CHECK(!terms.empty());
  // A(alpha) >= (1-q)^alpha + alpha q (1-q)^(alpha-1) + ... >= probability mass, and the
  // k=0/k=1 terms alone sum to something <= 1, so log A can be slightly negative only through
  // floating-point slack; the bound is still valid but we clamp to zero (RDP eps >= 0).
  return std::max(0.0, LogSumExp(terms));
}

}  // namespace

RdpCurve GaussianCurve(const AlphaGridPtr& grid, double sigma) {
  DPACK_CHECK(sigma > 0.0);
  std::vector<double> eps(grid->size());
  for (size_t i = 0; i < grid->size(); ++i) {
    eps[i] = grid->order(i) / (2.0 * sigma * sigma);
  }
  return RdpCurve(grid, std::move(eps));
}

RdpCurve LaplaceCurve(const AlphaGridPtr& grid, double b) {
  DPACK_CHECK(b > 0.0);
  std::vector<double> eps(grid->size());
  for (size_t i = 0; i < grid->size(); ++i) {
    eps[i] = LaplaceEpsilonAt(grid->order(i), b);
  }
  return RdpCurve(grid, std::move(eps));
}

RdpCurve SubsampledCurve(const AlphaGridPtr& grid, double q,
                         const std::function<double(int64_t)>& base_epsilon_at) {
  DPACK_CHECK(q >= 0.0 && q <= 1.0);
  if (q == 0.0) {
    return RdpCurve(grid);
  }
  // Cache log A at the integer orders we need: 1..ceil(max grid order).
  int64_t max_int = static_cast<int64_t>(std::ceil(grid->order(grid->size() - 1)));
  std::vector<double> log_moment(static_cast<size_t>(max_int) + 1, 0.0);  // log A(1) = 0.
  for (int64_t a = 2; a <= max_int; ++a) {
    log_moment[static_cast<size_t>(a)] = SubsampledLogMoment(a, q, base_epsilon_at);
  }
  std::vector<double> eps(grid->size());
  for (size_t i = 0; i < grid->size(); ++i) {
    double alpha = grid->order(i);
    double floor_a = std::floor(alpha);
    double log_a;
    if (floor_a == alpha) {
      log_a = log_moment[static_cast<size_t>(alpha)];
    } else {
      // Linear interpolation of the convex log-moment function between integer orders
      // (upper-bounds the true log-moment, hence yields valid RDP).
      double lo = log_moment[static_cast<size_t>(floor_a)];
      double hi = log_moment[static_cast<size_t>(floor_a) + 1];
      double frac = alpha - floor_a;
      log_a = lo * (1.0 - frac) + hi * frac;
    }
    eps[i] = log_a / (alpha - 1.0);
  }
  return RdpCurve(grid, std::move(eps));
}

RdpCurve SubsampledGaussianCurve(const AlphaGridPtr& grid, double sigma, double q) {
  DPACK_CHECK(sigma > 0.0);
  return SubsampledCurve(grid, q, [sigma](int64_t k) {
    return static_cast<double>(k) / (2.0 * sigma * sigma);
  });
}

RdpCurve SubsampledLaplaceCurve(const AlphaGridPtr& grid, double b, double q) {
  DPACK_CHECK(b > 0.0);
  return SubsampledCurve(grid, q, [b](int64_t k) {
    return LaplaceEpsilonAt(static_cast<double>(k), b);
  });
}

std::string MechanismTypeName(MechanismType type) {
  switch (type) {
    case MechanismType::kLaplace:
      return "laplace";
    case MechanismType::kGaussian:
      return "gaussian";
    case MechanismType::kSubsampledLaplace:
      return "subsampled_laplace";
    case MechanismType::kSubsampledGaussian:
      return "subsampled_gaussian";
    case MechanismType::kLaplaceGaussianComposition:
      return "laplace_gaussian_composition";
    case MechanismType::kComposedSubsampledGaussian:
      return "composed_subsampled_gaussian";
    case MechanismType::kComposedGaussian:
      return "composed_gaussian";
    case MechanismType::kCalibratedVShape:
      return "calibrated_v_shape";
  }
  return "unknown";
}

RdpCurve MechanismSpec::BuildCurve(const AlphaGridPtr& grid) const {
  switch (type) {
    case MechanismType::kLaplace:
      return LaplaceCurve(grid, noise);
    case MechanismType::kGaussian:
      return GaussianCurve(grid, noise);
    case MechanismType::kSubsampledLaplace:
      return SubsampledLaplaceCurve(grid, noise, sampling_q);
    case MechanismType::kSubsampledGaussian:
      return SubsampledGaussianCurve(grid, noise, sampling_q);
    case MechanismType::kLaplaceGaussianComposition:
      return LaplaceCurve(grid, noise) + GaussianCurve(grid, noise);
    case MechanismType::kComposedSubsampledGaussian:
      return SubsampledGaussianCurve(grid, noise, sampling_q).Repeat(compositions);
    case MechanismType::kComposedGaussian:
      return GaussianCurve(grid, noise).Repeat(compositions);
    case MechanismType::kCalibratedVShape:
      DPACK_CHECK_MSG(false,
                      "calibrated curves are built by CurvePool against a block capacity");
      break;
  }
  DPACK_CHECK_MSG(false, "unhandled mechanism type");
  return RdpCurve(grid);
}

std::string MechanismSpec::DebugString() const {
  std::ostringstream os;
  os << MechanismTypeName(type) << "{noise=" << noise << ", q=" << sampling_q
     << ", k=" << compositions << "}";
  return os.str();
}

}  // namespace dpack
