#include "src/rdp/rdp_curve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/common/check.h"

namespace dpack {

RdpCurve::RdpCurve(AlphaGridPtr grid) : grid_(std::move(grid)) {
  DPACK_CHECK(grid_ != nullptr);
  epsilons_.assign(grid_->size(), 0.0);
}

RdpCurve::RdpCurve(AlphaGridPtr grid, std::vector<double> epsilons)
    : grid_(std::move(grid)), epsilons_(std::move(epsilons)) {
  DPACK_CHECK(grid_ != nullptr);
  DPACK_CHECK_MSG(epsilons_.size() == grid_->size(), "epsilon vector must match grid size");
  for (double e : epsilons_) {
    DPACK_CHECK_MSG(e >= 0.0, "RDP epsilons must be non-negative");
  }
}

bool RdpCurve::IsZero() const {
  return std::all_of(epsilons_.begin(), epsilons_.end(), [](double e) { return e == 0.0; });
}

RdpCurve& RdpCurve::Accumulate(const RdpCurve& other) {
  DPACK_CHECK_MSG(SameGrid(grid_, other.grid_), "cannot compose curves on different grids");
  for (size_t i = 0; i < epsilons_.size(); ++i) {
    epsilons_[i] += other.epsilons_[i];
  }
  return *this;
}

RdpCurve operator+(RdpCurve lhs, const RdpCurve& rhs) {
  lhs.Accumulate(rhs);
  return lhs;
}

RdpCurve RdpCurve::Scaled(double factor) const {
  DPACK_CHECK(factor >= 0.0);
  std::vector<double> scaled(epsilons_.size());
  for (size_t i = 0; i < epsilons_.size(); ++i) {
    scaled[i] = epsilons_[i] * factor;
  }
  return RdpCurve(grid_, std::move(scaled));
}

RdpCurve RdpCurve::SaturatingSubtract(const RdpCurve& other) const {
  DPACK_CHECK_MSG(SameGrid(grid_, other.grid_), "grid mismatch");
  std::vector<double> diff(epsilons_.size());
  for (size_t i = 0; i < epsilons_.size(); ++i) {
    diff[i] = std::max(0.0, epsilons_[i] - other.epsilons_[i]);
  }
  return RdpCurve(grid_, std::move(diff));
}

bool RdpCurve::DominatedBy(const RdpCurve& other) const {
  DPACK_CHECK_MSG(SameGrid(grid_, other.grid_), "grid mismatch");
  for (size_t i = 0; i < epsilons_.size(); ++i) {
    if (epsilons_[i] > other.epsilons_[i]) {
      return false;
    }
  }
  return true;
}

DpTranslation RdpCurve::ToDp(double delta) const {
  DPACK_CHECK(delta > 0.0 && delta < 1.0);
  DpTranslation best;
  best.epsilon = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < epsilons_.size(); ++i) {
    double alpha = grid_->order(i);
    double eps_dp = epsilons_[i] + std::log(1.0 / delta) / (alpha - 1.0);
    if (eps_dp < best.epsilon) {
      best.epsilon = eps_dp;
      best.alpha_index = i;
      best.alpha = alpha;
    }
  }
  return best;
}

double RdpCurve::MinEpsilon() const { return epsilons_[MinEpsilonIndex()]; }

size_t RdpCurve::MinEpsilonIndex() const {
  size_t best = 0;
  for (size_t i = 1; i < epsilons_.size(); ++i) {
    if (epsilons_[i] < epsilons_[best]) {
      best = i;
    }
  }
  return best;
}

std::string RdpCurve::DebugString() const {
  std::ostringstream os;
  os << "RdpCurve{";
  for (size_t i = 0; i < epsilons_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << "a=" << grid_->order(i) << ":" << epsilons_[i];
  }
  os << "}";
  return os.str();
}

RdpCurve BlockCapacityCurve(const AlphaGridPtr& grid, double eps_g, double delta_g) {
  DPACK_CHECK(eps_g > 0.0);
  DPACK_CHECK(delta_g > 0.0 && delta_g < 1.0);
  std::vector<double> capacity(grid->size());
  for (size_t i = 0; i < grid->size(); ++i) {
    double alpha = grid->order(i);
    capacity[i] = std::max(0.0, eps_g - std::log(1.0 / delta_g) / (alpha - 1.0));
  }
  return RdpCurve(grid, std::move(capacity));
}

RdpCurve ComposeCurves(std::span<const RdpCurve> curves) {
  DPACK_CHECK(!curves.empty());
  RdpCurve total = curves[0];
  for (size_t i = 1; i < curves.size(); ++i) {
    total.Accumulate(curves[i]);
  }
  return total;
}

}  // namespace dpack
