// The discrete grid of Rényi orders on which dpack performs RDP accounting.
//
// Following Mironov [44] and the paper (§3.2), RDP epsilons are tracked at a small fixed set
// of orders alpha > 1; composition is additive per order and translation to (eps, delta)-DP
// picks the most favourable order. Traditional DP is modelled as a grid with a single order.

#ifndef SRC_RDP_ALPHA_GRID_H_
#define SRC_RDP_ALPHA_GRID_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace dpack {

class AlphaGrid;
using AlphaGridPtr = std::shared_ptr<const AlphaGrid>;

// An immutable, strictly increasing list of Rényi orders, each > 1.
class AlphaGrid {
 public:
  // Creates a grid from the given orders. Requires all orders > 1 and strictly increasing.
  static AlphaGridPtr Create(std::vector<double> orders);

  // The standard 12-order grid used by DP ML platforms and the paper:
  // {1.5, 1.75, 2, 2.5, 3, 4, 5, 6, 8, 16, 32, 64}. Returns a process-wide shared instance.
  static AlphaGridPtr Default();

  // A single-order grid modelling traditional (non-Rényi) DP accounting. The order value is
  // irrelevant for scheduling semantics (there is no "exists alpha" choice); we use 2.
  static AlphaGridPtr TraditionalDp();

  size_t size() const { return orders_.size(); }
  double order(size_t i) const { return orders_[i]; }
  const std::vector<double>& orders() const { return orders_; }

  // Returns the index of `alpha` in the grid, or size() if absent (exact comparison).
  size_t IndexOf(double alpha) const;

 private:
  explicit AlphaGrid(std::vector<double> orders) : orders_(std::move(orders)) {}

  std::vector<double> orders_;
};

// True if the two grids are the same object or contain identical orders.
bool SameGrid(const AlphaGridPtr& a, const AlphaGridPtr& b);

}  // namespace dpack

#endif  // SRC_RDP_ALPHA_GRID_H_
