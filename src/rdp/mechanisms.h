// Analytic RDP curves for the DP mechanisms used in the paper's workloads (§6.2, Fig. 2):
// Laplace, Gaussian, their Poisson-subsampled variants, and compositions.
//
// All formulas assume sensitivity-1 queries and add/remove-one neighbouring datasets.
//   Gaussian(sigma):      eps(alpha) = alpha / (2 sigma^2)                      [Mironov '17]
//   Laplace(b):           eps(alpha) = log( a/(2a-1) e^{(a-1)/b}
//                                           + (a-1)/(2a-1) e^{-a/b} ) / (a-1)   [Mironov '17]
//   Subsampled(base, q):  integer-moment binomial bound
//       A(alpha) = sum_{k=0..alpha} C(alpha,k) q^k (1-q)^{alpha-k} M_k,
//       M_0 = M_1 = 1, M_k = exp((k-1) eps_base(k)),
//       eps(alpha) = log A(alpha) / (alpha - 1)  for integer alpha >= 2.
//   For fractional grid orders, the log-moment log A(alpha) is interpolated linearly in alpha
//   between neighbouring integers (with log A(1) = 0). Because the log-moment function is
//   convex in alpha, linear interpolation yields a valid RDP upper bound.

#ifndef SRC_RDP_MECHANISMS_H_
#define SRC_RDP_MECHANISMS_H_

#include <cstddef>
#include <functional>
#include <string>

#include "src/rdp/rdp_curve.h"

namespace dpack {

// RDP curve of the Gaussian mechanism with noise standard deviation `sigma` > 0.
RdpCurve GaussianCurve(const AlphaGridPtr& grid, double sigma);

// RDP curve of the Laplace mechanism with scale `b` > 0. (A pure-DP guarantee of eps
// corresponds to b = 1 / eps.)
RdpCurve LaplaceCurve(const AlphaGridPtr& grid, double b);

// RDP curve of a Poisson-subsampled mechanism with sampling probability q in [0, 1].
// `base_epsilon_at` must return the base mechanism's RDP epsilon at any *integer* order
// k >= 2 (orders 0 and 1 are handled internally). q == 0 yields the zero curve; q == 1
// falls back to evaluating the base directly on the grid's integer envelope.
RdpCurve SubsampledCurve(const AlphaGridPtr& grid, double q,
                         const std::function<double(int64_t)>& base_epsilon_at);

// Subsampled Gaussian (the DP-SGD accountant curve): sampling rate q, noise sigma.
RdpCurve SubsampledGaussianCurve(const AlphaGridPtr& grid, double sigma, double q);

// Subsampled Laplace: sampling rate q, scale b.
RdpCurve SubsampledLaplaceCurve(const AlphaGridPtr& grid, double b, double q);

// The mechanism families appearing in the paper's workloads.
enum class MechanismType {
  kLaplace,
  kGaussian,
  kSubsampledLaplace,
  kSubsampledGaussian,
  kLaplaceGaussianComposition,   // microbenchmark family 5 (§6.2)
  kComposedSubsampledGaussian,   // DP-SGD training: k-fold subsampled Gaussian (§6.3)
  kComposedGaussian,             // DP-FTRL-style training: k-fold Gaussian (§6.3)
  kCalibratedVShape,             // Synthetic pool curve pinned to a chosen best alpha; built
                                 // by CurvePool against a capacity, not via BuildCurve.
};

std::string MechanismTypeName(MechanismType type);

// Declarative mechanism description; `BuildCurve` produces the RDP curve.
struct MechanismSpec {
  MechanismType type = MechanismType::kGaussian;
  double noise = 1.0;        // sigma for Gaussian-family, scale b for Laplace-family.
  double sampling_q = 0.01;  // Subsampling probability (subsampled variants only).
  size_t compositions = 1;   // Number of self-compositions (composed variants only).

  RdpCurve BuildCurve(const AlphaGridPtr& grid) const;
  std::string DebugString() const;
};

}  // namespace dpack

#endif  // SRC_RDP_MECHANISMS_H_
