// RDP curves: per-order privacy-loss bounds with composition and DP translation.
//
// An `RdpCurve` stores epsilon(alpha) for every order alpha of an `AlphaGrid`. Curves compose
// additively per order (§2.2); translation to traditional (eps, delta)-DP uses Eq. 2 of the
// paper, picking the order that minimizes eps(alpha) + log(1/delta) / (alpha - 1).

#ifndef SRC_RDP_RDP_CURVE_H_
#define SRC_RDP_RDP_CURVE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/rdp/alpha_grid.h"

namespace dpack {

// Result of translating an RDP curve to traditional DP at a fixed delta.
struct DpTranslation {
  double epsilon = 0.0;     // Tightest traditional-DP epsilon across orders.
  size_t alpha_index = 0;   // Index of the order achieving it (the "best alpha").
  double alpha = 0.0;       // The order value itself.
};

class RdpCurve {
 public:
  // Zero curve (no privacy loss) on `grid`.
  explicit RdpCurve(AlphaGridPtr grid);

  // Curve with explicit epsilons, one per grid order. Requires matching sizes and
  // non-negative, finite-or-infinite values.
  RdpCurve(AlphaGridPtr grid, std::vector<double> epsilons);

  const AlphaGridPtr& grid() const { return grid_; }
  size_t size() const { return epsilons_.size(); }
  double epsilon(size_t alpha_index) const { return epsilons_[alpha_index]; }
  const std::vector<double>& epsilons() const { return epsilons_; }

  bool IsZero() const;

  // Pointwise sum: the RDP cost of running both computations (adaptive composition).
  RdpCurve& Accumulate(const RdpCurve& other);
  friend RdpCurve operator+(RdpCurve lhs, const RdpCurve& rhs);

  // Pointwise scale by `factor` >= 0; `Repeat(k)` is the k-fold self-composition.
  RdpCurve Scaled(double factor) const;
  RdpCurve Repeat(size_t k) const { return Scaled(static_cast<double>(k)); }

  // Pointwise difference clamped at zero (used to compute remaining capacity).
  RdpCurve SaturatingSubtract(const RdpCurve& other) const;

  // True if this curve is pointwise <= other at every order.
  bool DominatedBy(const RdpCurve& other) const;

  // Translation to (epsilon, delta)-DP via Eq. 2 (best order). Requires 0 < delta < 1.
  DpTranslation ToDp(double delta) const;

  // Minimum epsilon across orders (used for normalized-demand statistics, §6.2's eps_min).
  double MinEpsilon() const;
  size_t MinEpsilonIndex() const;

  std::string DebugString() const;

 private:
  AlphaGridPtr grid_;
  std::vector<double> epsilons_;
};

// The per-order RDP budget of a block enforcing a global (eps_g, delta_g)-DP guarantee
// (§3.4): capacity(alpha) = eps_g - log(1/delta_g) / (alpha - 1). Orders where this is
// negative get zero capacity (unusable: any positive demand is rejected there).
RdpCurve BlockCapacityCurve(const AlphaGridPtr& grid, double eps_g, double delta_g);

// Sum of a sequence of curves (adaptive composition across computations).
RdpCurve ComposeCurves(std::span<const RdpCurve> curves);

}  // namespace dpack

#endif  // SRC_RDP_RDP_CURVE_H_
