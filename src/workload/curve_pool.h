// The microbenchmark's RDP curve pool (§6.2): 620 curves drawn from five mechanism families
// {Laplace, Subsampled Laplace, Gaussian, Subsampled Gaussian, Laplace+Gaussian composition},
// bucketed by "best alpha" — the order minimizing the capacity-normalized demand d(a)/c(a)
// against a reference block budget — and rescalable to any target eps_min (the minimum
// normalized demand).
//
// Rescaling is multiplicative, which preserves each curve's best alpha exactly (the paper
// shifts curves up or down with the same intent).

#ifndef SRC_WORKLOAD_CURVE_POOL_H_
#define SRC_WORKLOAD_CURVE_POOL_H_

#include <cstddef>
#include <vector>

#include "src/rdp/mechanisms.h"
#include "src/rdp/rdp_curve.h"

namespace dpack {

class CurvePool {
 public:
  // Builds the pool against `capacity` (the per-order budget of a reference block, e.g.
  // BlockCapacityCurve(grid, 10, 1e-7)). Buckets cover every usable order (capacity > 0).
  CurvePool(AlphaGridPtr grid, RdpCurve capacity);

  size_t size() const { return curves_.size(); }
  const AlphaGridPtr& grid() const { return grid_; }
  const RdpCurve& capacity() const { return capacity_; }
  const RdpCurve& curve(size_t i) const { return curves_[i]; }
  const MechanismSpec& spec(size_t i) const { return specs_[i]; }

  // Grid-order index minimizing d(a)/c(a) over usable orders for curve i.
  size_t BestAlphaIndex(size_t i) const { return best_alpha_[i]; }

  // Bucketing by best alpha: bucket_orders()[b] is the grid-order index of bucket b;
  // bucket(b) lists curve indices whose best alpha is that order. Only non-empty buckets are
  // kept, in increasing order.
  size_t bucket_count() const { return buckets_.size(); }
  const std::vector<size_t>& bucket(size_t b) const { return buckets_[b]; }
  size_t bucket_order_index(size_t b) const { return bucket_order_index_[b]; }
  double bucket_alpha(size_t b) const;

  // Index of the bucket whose order is nearest to `alpha` (the paper centers sampling on the
  // alpha = 5 bucket).
  size_t BucketNearestAlpha(double alpha) const;

  // Curve i scaled (multiplicatively) so its minimum normalized demand min_a d(a)/c(a)
  // equals eps_min (> 0). Preserves the normalized *shape* exactly.
  RdpCurve ScaledToEpsMin(size_t i, double eps_min) const;

  // Curve i shifted vertically in normalized-share space so the minimum share equals
  // eps_min: share'(a) = max(0, share(a) - (min share - eps_min)). This is the paper's
  // rescaling (§6.2, "shifting the curves up or down"): it preserves the best alpha and the
  // *absolute* share gaps between orders, so small eps_min targets yield high diversity in
  // eps(alpha) — the regime where best-alpha heterogeneity matters (Fig. 4(b)).
  RdpCurve ShiftedToEpsMin(size_t i, double eps_min) const;

  // Minimum normalized demand of an arbitrary curve against this pool's capacity.
  double NormalizedEpsMin(const RdpCurve& curve) const;

 private:
  void AddCurve(MechanismSpec spec);
  // Adds a synthetic V-shaped curve whose best alpha is usable_orders[min_rank].
  void AddCalibratedCurve(const std::vector<size_t>& usable_orders, size_t min_rank,
                          double slope_per_rank);

  AlphaGridPtr grid_;
  RdpCurve capacity_;
  std::vector<RdpCurve> curves_;
  std::vector<MechanismSpec> specs_;
  std::vector<size_t> best_alpha_;
  std::vector<std::vector<size_t>> buckets_;
  std::vector<size_t> bucket_order_index_;
};

}  // namespace dpack

#endif  // SRC_WORKLOAD_CURVE_POOL_H_
