// Descriptive statistics of a generated workload, used to verify that synthetic generators
// reproduce the marginals the paper reports (block-request skew, best-alpha distribution,
// demand heterogeneity) and to populate EXPERIMENTS.md.

#ifndef SRC_WORKLOAD_WORKLOAD_STATS_H_
#define SRC_WORKLOAD_WORKLOAD_STATS_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/core/task.h"
#include "src/rdp/rdp_curve.h"

namespace dpack {

struct WorkloadStats {
  size_t num_tasks = 0;
  RunningStat blocks_per_task;       // Resolved blocks or num_recent_blocks.
  RunningStat eps_min;               // Normalized min demand share vs `capacity`.
  std::vector<size_t> best_alpha_counts;  // Per grid-order counts of tasks' best alpha.
  double FractionRequestingAtMost(size_t k) const;  // Fraction with <= k blocks.
  std::vector<size_t> block_count_histogram;        // Index = #blocks (0 unused).

  std::string Summary(const AlphaGridPtr& grid) const;
};

// Computes stats against a reference per-block capacity curve (best alpha = argmin d/c over
// usable orders).
WorkloadStats ComputeWorkloadStats(std::span<const Task> tasks, const RdpCurve& capacity);

}  // namespace dpack

#endif  // SRC_WORKLOAD_WORKLOAD_STATS_H_
