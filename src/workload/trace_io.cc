#include "src/workload/trace_io.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/common/check.h"

namespace dpack {

namespace {

constexpr char kMagic[] = "dpack_trace_v1";

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) {
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace

bool WriteTrace(std::ostream& os, std::span<const Task> tasks, const AlphaGridPtr& grid) {
  os << kMagic;
  for (double alpha : grid->orders()) {
    os << "," << alpha;
  }
  os << "\n";
  os << "id,weight,arrival_time,timeout,num_recent_blocks";
  for (size_t a = 0; a < grid->size(); ++a) {
    os << ",eps_a" << grid->order(a);
  }
  os << "\n";
  os.precision(17);
  for (const Task& task : tasks) {
    DPACK_CHECK_MSG(SameGrid(task.demand.grid(), grid), "task grid mismatch");
    size_t recent = task.blocks.empty() ? task.num_recent_blocks : task.blocks.size();
    os << task.id << "," << task.weight << "," << task.arrival_time << ","
       << (std::isinf(task.timeout) ? -1.0 : task.timeout) << "," << recent;
    for (size_t a = 0; a < grid->size(); ++a) {
      os << "," << task.demand.epsilon(a);
    }
    os << "\n";
  }
  return static_cast<bool>(os);
}

bool WriteTraceFile(const std::string& path, std::span<const Task> tasks,
                    const AlphaGridPtr& grid) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  return WriteTrace(out, tasks, grid);
}

std::vector<Task> ReadTrace(std::istream& is, const AlphaGridPtr& grid) {
  std::string line;
  DPACK_CHECK_MSG(std::getline(is, line), "empty trace");
  std::vector<std::string> header = SplitCsvLine(line);
  DPACK_CHECK_MSG(!header.empty() && header[0] == kMagic, "not a dpack trace");
  DPACK_CHECK_MSG(header.size() == grid->size() + 1, "trace grid size mismatch");
  for (size_t a = 0; a < grid->size(); ++a) {
    DPACK_CHECK_MSG(std::stod(header[a + 1]) == grid->order(a), "trace grid order mismatch");
  }
  DPACK_CHECK_MSG(std::getline(is, line), "missing column header");

  std::vector<Task> tasks;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::vector<std::string> cells = SplitCsvLine(line);
    DPACK_CHECK_MSG(cells.size() == 5 + grid->size(), "malformed trace row");
    std::vector<double> eps(grid->size());
    for (size_t a = 0; a < grid->size(); ++a) {
      eps[a] = std::stod(cells[5 + a]);
    }
    Task task(static_cast<TaskId>(std::stoll(cells[0])), std::stod(cells[1]),
              RdpCurve(grid, std::move(eps)));
    task.arrival_time = std::stod(cells[2]);
    double timeout = std::stod(cells[3]);
    task.timeout = timeout < 0.0 ? std::numeric_limits<double>::infinity() : timeout;
    task.num_recent_blocks = static_cast<size_t>(std::stoull(cells[4]));
    tasks.push_back(std::move(task));
  }
  return tasks;
}

std::vector<Task> ReadTraceFile(const std::string& path, const AlphaGridPtr& grid) {
  std::ifstream in(path);
  DPACK_CHECK_MSG(static_cast<bool>(in), "cannot open trace file");
  return ReadTrace(in, grid);
}

}  // namespace dpack
