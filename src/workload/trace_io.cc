#include "src/workload/trace_io.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/common/check.h"
#include "src/common/wire.h"

namespace dpack {

namespace {

// Format v2 (current): adds the explicit `blocks` column between num_recent_blocks and the
// demand curve. v1 files (fixed 5-column prefix, no explicit lists) remain loadable.
constexpr char kMagicV1[] = "dpack_trace_v1";
constexpr char kMagicV2[] = "dpack_trace_v2";

// Separator inside the blocks cell: the cell must not contain the CSV delimiter.
constexpr char kBlockSep = ';';

// Exception-free checked numeric parsing. A bare std::stod/stoll/stoull on a malformed
// cell ("abc" where a number belongs) throws an uncaught std::invalid_argument — a crash,
// not the diagnostic rejection the rest of this reader promises. These helpers accept a
// cell only when strtod/strtoll consume it entirely (no leading whitespace, no trailing
// junk, no overflow) and otherwise fail through DPACK_CHECK_MSG naming the 1-based row and
// column, like every other malformed-trace diagnostic here.
double ParseDoubleCell(const std::string& cell, size_t row, size_t column) {
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(cell.c_str(), &end);
  bool overflow = errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL);
  DPACK_CHECK_MSG(!cell.empty() && !std::isspace(static_cast<unsigned char>(cell[0])) &&
                      end == cell.c_str() + cell.size() && !overflow,
                  "malformed numeric cell at trace row " << row << " column " << column);
  return value;
}

int64_t ParseInt64Cell(const std::string& cell, size_t row, size_t column) {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(cell.c_str(), &end, 10);
  DPACK_CHECK_MSG(!cell.empty() && !std::isspace(static_cast<unsigned char>(cell[0])) &&
                      end == cell.c_str() + cell.size() && errno != ERANGE,
                  "malformed integer cell at trace row " << row << " column " << column);
  return static_cast<int64_t>(value);
}

uint64_t ParseUint64Cell(const std::string& cell, size_t row, size_t column) {
  // strtoull silently wraps a leading '-' into a huge positive value, so only digit-pure
  // cells are even attempted.
  DPACK_CHECK_MSG(!cell.empty() &&
                      cell.find_first_not_of("0123456789") == std::string::npos,
                  "malformed count cell at trace row " << row << " column " << column);
  errno = 0;
  char* end = nullptr;
  unsigned long long value = std::strtoull(cell.c_str(), &end, 10);
  DPACK_CHECK_MSG(end == cell.c_str() + cell.size() && errno != ERANGE,
                  "malformed count cell at trace row " << row << " column " << column);
  return static_cast<uint64_t>(value);
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) {
    cells.push_back(cell);
  }
  return cells;
}

// Parses a ';'-separated list of block ids; empty cell = no explicit list. The list must
// be strictly ascending (sorted, distinct) — the canonical order WriteTrace enforces. A
// duplicate id would double-commit the task's demand to that block on grant, silently
// overcharging its privacy budget, so it is malformed input, not a tolerable variation.
std::vector<BlockId> ParseBlocksCell(const std::string& cell) {
  std::vector<BlockId> blocks;
  if (cell.empty()) {
    return blocks;
  }
  DPACK_CHECK_MSG(cell.back() != kBlockSep, "malformed blocks cell");
  std::istringstream stream(cell);
  std::string token;
  while (std::getline(stream, token, kBlockSep)) {
    // 18 digits keeps the value well inside int64 — stoll can never throw. Leading zeros
    // are rejected too: only the canonical encoding is readable, so a reload-and-reexport
    // cycle is always byte-identical.
    DPACK_CHECK_MSG(!token.empty() && token.size() <= 18 &&
                        token.find_first_not_of("0123456789") == std::string::npos &&
                        (token.size() == 1 || token[0] != '0'),
                    "malformed blocks cell");
    BlockId id = static_cast<BlockId>(std::stoll(token));
    DPACK_CHECK_MSG(blocks.empty() || blocks.back() < id, "malformed blocks cell");
    blocks.push_back(id);
  }
  DPACK_CHECK_MSG(!blocks.empty(), "malformed blocks cell");
  return blocks;
}

}  // namespace

bool WriteTrace(std::ostream& os, std::span<const Task> tasks, const AlphaGridPtr& grid) {
  // Precision 17 roundtrips every double exactly — set before the order header so the
  // reader's bit-pattern grid check holds for any grid, not just short-decimal orders.
  os.precision(17);
  os << kMagicV2;
  for (double alpha : grid->orders()) {
    os << "," << alpha;
  }
  os << "\n";
  os << "id,weight,arrival_time,timeout,num_recent_blocks,blocks";
  for (size_t a = 0; a < grid->size(); ++a) {
    os << ",eps_a" << grid->order(a);
  }
  os << "\n";
  for (const Task& task : tasks) {
    DPACK_CHECK_MSG(SameGrid(task.demand.grid(), grid), "task grid mismatch");
    os << task.id << "," << task.weight << "," << task.arrival_time << ","
       << (std::isinf(task.timeout) ? -1.0 : task.timeout) << "," << task.num_recent_blocks
       << ",";
    for (size_t b = 0; b < task.blocks.size(); ++b) {
      DPACK_CHECK_MSG(task.blocks[b] >= 0, "negative block id in trace");
      // Strictly ascending is the canonical (and only readable) encoding: a duplicate id
      // would double-charge the block on grant.
      DPACK_CHECK_MSG(b == 0 || task.blocks[b - 1] < task.blocks[b],
                      "block list must be sorted and distinct");
      if (b > 0) {
        os << kBlockSep;
      }
      os << task.blocks[b];
    }
    for (size_t a = 0; a < grid->size(); ++a) {
      os << "," << task.demand.epsilon(a);
    }
    os << "\n";
  }
  return static_cast<bool>(os);
}

bool WriteTraceFile(const std::string& path, std::span<const Task> tasks,
                    const AlphaGridPtr& grid) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  return WriteTrace(out, tasks, grid);
}

std::vector<Task> ReadTrace(std::istream& is, const AlphaGridPtr& grid) {
  std::string line;
  DPACK_CHECK_MSG(std::getline(is, line), "empty trace");
  std::vector<std::string> header = SplitCsvLine(line);
  DPACK_CHECK_MSG(!header.empty() && (header[0] == kMagicV1 || header[0] == kMagicV2),
                  "not a dpack trace");
  bool v2 = header[0] == kMagicV2;
  DPACK_CHECK_MSG(header.size() == grid->size() + 1, "trace grid size mismatch");
  for (size_t a = 0; a < grid->size(); ++a) {
    // Bit-pattern equality (the snapshot codec's convention): the writer prints orders at
    // precision 17, which roundtrips doubles exactly, so the reparsed bits must match the
    // grid's bits exactly — a tolerance here could silently accept a neighboring grid.
    double parsed = ParseDoubleCell(header[a + 1], /*row=*/1, /*column=*/a + 2);
    DPACK_CHECK_MSG(BitsOfDouble(parsed) == BitsOfDouble(grid->order(a)),
                    "trace grid order mismatch");
  }
  DPACK_CHECK_MSG(std::getline(is, line), "missing column header");
  std::vector<std::string> columns = SplitCsvLine(line);
  bool claims_blocks =
      std::find(columns.begin(), columns.end(), "blocks") != columns.end();
  // A v1 file never defined explicit-list semantics; one that claims the column was
  // written by a confused producer, and silently guessing its row layout could misread a
  // privacy demand — reject instead.
  DPACK_CHECK_MSG(v2 || !claims_blocks, "v1 trace cannot carry explicit block lists");
  DPACK_CHECK_MSG(!v2 || claims_blocks, "v2 trace missing the blocks column");
  // The fixed columns must sit at their exact positions: a reordered header would make
  // the positional row parse below read a demand or a block list out of the wrong cell.
  const std::vector<std::string> expected_prefix =
      v2 ? std::vector<std::string>{"id", "weight", "arrival_time", "timeout",
                                    "num_recent_blocks", "blocks"}
         : std::vector<std::string>{"id", "weight", "arrival_time", "timeout",
                                    "num_recent_blocks"};
  size_t fixed_columns = expected_prefix.size();
  DPACK_CHECK_MSG(columns.size() == fixed_columns + grid->size(),
                  "trace column header mismatch");
  for (size_t c = 0; c < fixed_columns; ++c) {
    DPACK_CHECK_MSG(columns[c] == expected_prefix[c], "trace column header mismatch");
  }

  std::vector<Task> tasks;
  size_t row = 2;  // 1-based file line; the two header lines came first.
  while (std::getline(is, line)) {
    ++row;
    if (line.empty()) {
      continue;
    }
    // A row whose blocks cell is empty drops the empty trailing token under the CSV
    // splitter only when the cell is last — it never is (the demand columns follow), so
    // every well-formed row splits to the exact column count.
    std::vector<std::string> cells = SplitCsvLine(line);
    DPACK_CHECK_MSG(cells.size() == fixed_columns + grid->size(), "malformed trace row");
    std::vector<double> eps(grid->size());
    for (size_t a = 0; a < grid->size(); ++a) {
      eps[a] = ParseDoubleCell(cells[fixed_columns + a], row, fixed_columns + a + 1);
    }
    Task task(static_cast<TaskId>(ParseInt64Cell(cells[0], row, 1)),
              ParseDoubleCell(cells[1], row, 2), RdpCurve(grid, std::move(eps)));
    task.arrival_time = ParseDoubleCell(cells[2], row, 3);
    double timeout = ParseDoubleCell(cells[3], row, 4);
    task.timeout = timeout < 0.0 ? std::numeric_limits<double>::infinity() : timeout;
    task.num_recent_blocks = static_cast<size_t>(ParseUint64Cell(cells[4], row, 5));
    if (v2) {
      task.blocks = ParseBlocksCell(cells[5]);
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

std::vector<Task> ReadTraceFile(const std::string& path, const AlphaGridPtr& grid) {
  std::ifstream in(path);
  DPACK_CHECK_MSG(static_cast<bool>(in), "cannot open trace file");
  return ReadTrace(in, grid);
}

}  // namespace dpack
