#include "src/workload/workload_stats.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "src/common/check.h"

namespace dpack {

double WorkloadStats::FractionRequestingAtMost(size_t k) const {
  if (num_tasks == 0) {
    return 0.0;
  }
  size_t count = 0;
  for (size_t b = 0; b < block_count_histogram.size() && b <= k; ++b) {
    count += block_count_histogram[b];
  }
  return static_cast<double>(count) / static_cast<double>(num_tasks);
}

std::string WorkloadStats::Summary(const AlphaGridPtr& grid) const {
  std::ostringstream os;
  os << "tasks=" << num_tasks << " mean_blocks=" << blocks_per_task.mean()
     << " blocks_cv=" << blocks_per_task.variation_coefficient()
     << " mean_eps_min=" << eps_min.mean() << "\nbest alpha distribution:";
  for (size_t a = 0; a < best_alpha_counts.size(); ++a) {
    if (best_alpha_counts[a] > 0) {
      os << " a=" << grid->order(a) << ":"
         << (100.0 * static_cast<double>(best_alpha_counts[a]) /
             static_cast<double>(num_tasks))
         << "%";
    }
  }
  return os.str();
}

WorkloadStats ComputeWorkloadStats(std::span<const Task> tasks, const RdpCurve& capacity) {
  WorkloadStats stats;
  stats.num_tasks = tasks.size();
  stats.best_alpha_counts.assign(capacity.size(), 0);
  size_t max_blocks = 1;
  for (const Task& task : tasks) {
    max_blocks = std::max(max_blocks,
                          std::max(task.blocks.size(), task.num_recent_blocks));
  }
  stats.block_count_histogram.assign(max_blocks + 1, 0);

  for (const Task& task : tasks) {
    size_t blocks = task.blocks.empty() ? task.num_recent_blocks : task.blocks.size();
    stats.blocks_per_task.Add(static_cast<double>(blocks));
    ++stats.block_count_histogram[blocks];

    double best_share = std::numeric_limits<double>::infinity();
    size_t best_alpha = 0;
    for (size_t a = 0; a < capacity.size(); ++a) {
      if (capacity.epsilon(a) <= 0.0) {
        continue;
      }
      double share = task.demand.epsilon(a) / capacity.epsilon(a);
      if (share < best_share) {
        best_share = share;
        best_alpha = a;
      }
    }
    stats.eps_min.Add(best_share);
    ++stats.best_alpha_counts[best_alpha];
  }
  return stats;
}

}  // namespace dpack
