// Scenario workload subsystem: a seeded, declarative generator of diverse online workloads
// (ISSUE 5). The paper evaluates on two heterogeneity knobs plus two traces; the scenario
// registry opens the workload *space*: every axis the online system reacts to — task
// arrival process, block arrival pattern, mechanism mix over the 620-curve pool, demand and
// weight distributions, block-selection policy, and timeout regime — is a composable knob,
// and every (spec, seed) pair generates a bit-reproducible stream. Tests, benches, and
// examples address the same workloads through the registry by name, so the engine-matrix
// differential harness (tests/integration/scenario_matrix_test.cc) proves byte-identical
// grants for every engine on every registered scenario, and the fuzzer
// (tests/integration/scenario_fuzz_test.cc) sweeps randomized specs for global invariants.

#ifndef SRC_WORKLOAD_SCENARIO_H_
#define SRC_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/task.h"
#include "src/sim/sim_driver.h"
#include "src/workload/curve_pool.h"

namespace dpack {

// Task arrival process over [0, task_span). Stochastic processes are sampled by Lewis
// thinning against the process's peak rate, so every process is exact and reproducible.
enum class ArrivalProcess {
  kFixedRate,    // Deterministic arrivals every 1 / task_rate.
  kPoisson,      // Homogeneous Poisson at task_rate.
  kBurstyOnOff,  // Alternating on/off phases: task_rate on, task_rate * burst_floor off.
  kDiurnalRamp,  // Sinusoidal rate: task_rate * (1 + diurnal_amplitude * sin(2 pi t / P)).
};

// Block arrival pattern over the block stream.
enum class BlockArrivalPattern {
  kFixedInterval,   // One block every block_interval (the paper's online setting).
  kBatchedCohorts,  // cohort_size blocks arrive together, cohorts at the same mean rate.
  kJittered,        // Fixed interval plus uniform jitter of +/- jitter_fraction * interval.
};

// How each task's RDP curve is drawn from the 620-curve pool.
enum class MechanismMix {
  kGaussianBuckets,  // Truncated discrete Gaussian over best-alpha buckets (§6.2's knob 2).
  kUniformPool,      // Uniform over every pooled curve, ignoring buckets.
  kSkewedBestAlpha,  // Zipf over bucket rank: low-alpha buckets dominate the population.
};

// Distribution of the per-task eps_min target (normalized demand at the best alpha).
enum class DemandDistribution {
  kFixedEpsMin,        // Every task demands eps_min.
  kUniformEpsMin,      // Uniform in [eps_min_lo, eps_min_hi].
  kZipfEpsMin,         // Zipf over a log-spaced ladder of zipf_levels values in [lo, hi].
  kParetoEpsMin,       // Pareto(eps_min_lo, pareto_shape) truncated to [lo, hi].
  kCapacityFraction,   // Every task demands capacity / capacity_divisor at *every* order —
                       // the one demand shape under which capacity_divisor grants exhaust a
                       // block at every usable order simultaneously (the admission slack
                       // absorbs the summation round-off), driving block retirement.
};

enum class WeightDistribution {
  kUnitWeight,    // All weights 1 (max-cardinality objective).
  kUniformWeight, // Uniform in [weight_lo, weight_hi] (drives the FPTAS best-alpha path).
  kParetoWeight,  // Pareto(weight_lo, weight_pareto_shape) truncated to [lo, hi].
};

// How each task picks its requested blocks.
enum class BlockSelectionPolicy {
  kMostRecentK,  // num_recent_blocks = k, resolved at submission (the paper's convention).
  kUniformList,  // Explicit list: k distinct blocks uniform over those arrived by now.
  kHotSpotList,  // Explicit list skewed toward the hotspot_blocks earliest blocks.
};

enum class TimeoutRegime {
  kNoTimeout,     // Tasks wait forever.
  kFixedTimeout,  // Every task evicts after `timeout` time units in the queue.
  kMixedTimeout,  // timeout_fraction of tasks draw a timeout around `timeout`; rest wait.
};

// A declarative scenario: one value per knob plus the simulation parameters the scenario
// pins. Same spec + same seed => byte-identical task and block streams (pinned by
// tests/workload/scenario_test.cc).
struct ScenarioSpec {
  std::string name = "custom";
  uint64_t seed = 1;

  // Block stream.
  BlockArrivalPattern block_pattern = BlockArrivalPattern::kFixedInterval;
  size_t num_blocks = 10;
  double block_interval = 1.0;  // Mean inter-arrival; patterns reshape, not rescale, it.
  size_t cohort_size = 3;       // kBatchedCohorts.
  double jitter_fraction = 0.4; // kJittered, in (0, 1): jitter in +/- fraction * interval.

  // Task arrival process.
  ArrivalProcess arrival = ArrivalProcess::kFixedRate;
  double task_span = 15.0;  // Tasks arrive in [0, task_span).
  double task_rate = 4.0;   // Peak (on-phase / deterministic) rate, tasks per time unit.
  double burst_on = 2.0;    // kBurstyOnOff phase lengths.
  double burst_off = 3.0;
  double burst_floor = 0.0;       // Off-phase rate as a fraction of task_rate, in [0, 1].
  double diurnal_period = 8.0;    // kDiurnalRamp.
  double diurnal_amplitude = 0.9; // In [0, 1].

  // Mechanism mix.
  MechanismMix mix = MechanismMix::kGaussianBuckets;
  double center_alpha = 5.0;   // kGaussianBuckets center (the paper's alpha = 5 bucket).
  double sigma_alpha = 2.0;    // kGaussianBuckets bucket-index stddev.
  double best_alpha_skew = 2.0; // kSkewedBestAlpha Zipf exponent (> 0).

  // Demand distribution.
  DemandDistribution demand = DemandDistribution::kFixedEpsMin;
  double eps_min = 0.1;
  double eps_min_lo = 0.02;
  double eps_min_hi = 0.4;
  double zipf_exponent = 1.2;
  size_t zipf_levels = 8;
  double pareto_shape = 0.8;
  size_t capacity_divisor = 8;  // kCapacityFraction: grants needed to exhaust one block.

  // Weights.
  WeightDistribution weights = WeightDistribution::kUnitWeight;
  double weight_lo = 0.5;
  double weight_hi = 8.0;
  double weight_pareto_shape = 1.1;

  // Block selection.
  BlockSelectionPolicy selection = BlockSelectionPolicy::kMostRecentK;
  double mu_blocks = 3.0;    // Requested-block count: discrete Gaussian ...
  double sigma_blocks = 1.5; // ... clamped to [1, min(max_blocks_per_task, num_blocks)].
  size_t max_blocks_per_task = 6;
  double hotspot_fraction = 0.7; // kHotSpotList: chance each pick targets a hot block.
  size_t hotspot_blocks = 2;     // Number of hot blocks (the earliest arrivals).

  // Timeouts.
  TimeoutRegime timeouts = TimeoutRegime::kNoTimeout;
  double timeout = 5.0;          // Virtual time units in the queue before eviction.
  double timeout_fraction = 0.5; // kMixedTimeout share of tasks with a finite timeout.

  // Simulation parameters the scenario pins (copied into ScenarioWorkload::sim).
  double eps_g = 10.0;
  double delta_g = 1e-7;
  double period = 1.0;
  int64_t unlock_steps = 8;
  double drain_margin = 1.0;
  double horizon_override = 0.0;
};

// A generated workload plus the SimConfig that drives it: pass `tasks` and `sim` straight
// to RunOnlineSimulation / ResumeOnlineSimulation. `sim.block_arrival_times` carries the
// generated block stream; explicit-block-list tasks reference only blocks that have
// arrived by their arrival instant (block events fire before task events at equal times).
struct ScenarioWorkload {
  std::vector<Task> tasks;  // Arrival-ordered, ids 0..n-1.
  SimConfig sim;
};

// Generates the workload for `spec` against `pool` (which fixes the grid and the reference
// block budget the demand curves are normalized by). Deterministic in (spec, seed).
ScenarioWorkload GenerateScenario(const CurvePool& pool, const ScenarioSpec& spec);

// --- Registry ------------------------------------------------------------------------------
//
// Named scenarios covering distinct stress axes (catalogued in src/README.md). Tests sweep
// the registry so every new scenario is automatically proven across the engine matrix.

// Registered scenario names, in a fixed order.
std::vector<std::string> ScenarioRegistryNames();

// The spec registered under `name`, with its seed replaced by `seed`. Aborts (DPACK_CHECK)
// on an unknown name.
ScenarioSpec ScenarioByName(const std::string& name, uint64_t seed = 1);

}  // namespace dpack

#endif  // SRC_WORKLOAD_SCENARIO_H_
