#include "src/workload/microbenchmark.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/distributions.h"
#include "src/common/rng.h"

namespace dpack {

std::vector<Task> GenerateMicrobenchmark(const CurvePool& pool,
                                         const MicrobenchmarkConfig& config) {
  DPACK_CHECK(config.num_tasks > 0);
  DPACK_CHECK(config.num_blocks > 0);
  DPACK_CHECK(config.eps_min > 0.0);
  Rng rng(config.seed);
  size_t center_bucket = pool.BucketNearestAlpha(config.center_alpha);

  std::vector<Task> tasks;
  tasks.reserve(config.num_tasks);
  for (size_t i = 0; i < config.num_tasks; ++i) {
    // Knob 2: best-alpha bucket from a truncated discrete Gaussian over bucket indexes.
    size_t bucket = TruncatedDiscreteGaussianIndex(rng, pool.bucket_count(),
                                                   static_cast<double>(center_bucket),
                                                   config.sigma_alpha);
    const std::vector<size_t>& candidates = pool.bucket(bucket);
    size_t curve_idx = candidates[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    // Vertical share-shift rescaling (§6.2): preserves the absolute share gaps between
    // orders, so small eps_min targets keep high diversity in eps(alpha).
    RdpCurve demand = pool.ShiftedToEpsMin(curve_idx, config.eps_min);

    Task task(static_cast<TaskId>(i), /*weight=*/1.0, std::move(demand));

    // Knob 1: number of requested blocks from a discrete Gaussian, blocks chosen uniformly
    // without replacement.
    int64_t k = DiscreteGaussian(rng, config.mu_blocks, config.sigma_blocks, 1,
                                 static_cast<int64_t>(config.num_blocks));
    std::vector<size_t> picked =
        rng.SampleWithoutReplacement(config.num_blocks, static_cast<size_t>(k));
    task.blocks.reserve(picked.size());
    for (size_t b : picked) {
      task.blocks.push_back(static_cast<BlockId>(b));
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

}  // namespace dpack
