#include "src/workload/alibaba.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace dpack {

namespace {

// Draws a Pareto value truncated to [lo, hi] by rejection, clamping after `max_tries`.
double TruncatedPareto(Rng& rng, double scale, double shape, double lo, double hi,
                       int max_tries = 64) {
  for (int t = 0; t < max_tries; ++t) {
    double x = rng.Pareto(scale, shape);
    if (x >= lo && x <= hi) {
      return x;
    }
  }
  return std::clamp(rng.Pareto(scale, shape), lo, hi);
}

// CPU tasks: statistics / analytics / lightweight ML mechanisms.
MechanismSpec SampleCpuMechanism(Rng& rng) {
  MechanismSpec spec;
  switch (rng.UniformInt(0, 2)) {
    case 0:
      // Wide scale range: small scales have best alpha at large orders, large scales at mid
      // orders — the best-alpha heterogeneity real statistic mixes exhibit (Fig. 2).
      spec.type = MechanismType::kLaplace;
      spec.noise = std::clamp(rng.LogNormal(std::log(3.0), 0.9), 1.2, 100.0);
      break;
    case 1:
      spec.type = MechanismType::kGaussian;
      spec.noise = rng.LogNormal(std::log(4.0), 0.7);  // Sigma.
      break;
    default:
      spec.type = MechanismType::kSubsampledLaplace;
      spec.noise = std::clamp(rng.LogNormal(std::log(1.5), 0.8), 0.8, 50.0);
      spec.sampling_q = rng.LogNormal(std::log(0.05), 1.2);
      spec.sampling_q = std::clamp(spec.sampling_q, 1e-4, 0.5);
      break;
  }
  return spec;
}

// GPU tasks: deep-learning training mechanisms (DP-SGD / DP-FTRL style compositions).
MechanismSpec SampleGpuMechanism(Rng& rng) {
  MechanismSpec spec;
  if (rng.Bernoulli(0.7)) {
    spec.type = MechanismType::kComposedSubsampledGaussian;
    // DP-SGD-style parameters: moderate noise and small sampling rates keep the high-order
    // moment blow-up bounded for most tasks while preserving best-alpha heterogeneity.
    spec.noise = rng.Uniform(2.2, 4.0);
    spec.sampling_q = std::clamp(rng.LogNormal(std::log(0.004), 0.9), 1e-4, 0.02);
    spec.compositions = static_cast<size_t>(rng.LogNormal(std::log(1000.0), 0.8));
  } else {
    spec.type = MechanismType::kComposedGaussian;
    spec.noise = rng.Uniform(2.0, 12.0);
    spec.compositions = static_cast<size_t>(rng.LogNormal(std::log(200.0), 0.8));
  }
  spec.compositions = std::clamp<size_t>(spec.compositions, 10, 50'000);
  return spec;
}

}  // namespace

std::vector<Task> GenerateAlibabaDp(const CurvePool& pool, const AlibabaConfig& config) {
  DPACK_CHECK(config.num_tasks > 0);
  DPACK_CHECK(config.arrival_span > 0.0);
  Rng rng(config.seed);

  std::vector<Task> tasks;
  tasks.reserve(config.num_tasks);
  for (size_t i = 0; i < config.num_tasks; ++i) {
    bool gpu = rng.Bernoulli(config.gpu_fraction);
    MechanismSpec spec = gpu ? SampleGpuMechanism(rng) : SampleCpuMechanism(rng);
    RdpCurve curve = spec.BuildCurve(pool.grid());

    // Memory -> privacy proxy: rescale the curve to a heavy-tailed normalized eps_min,
    // truncated to [eps_min_lo, eps_min_hi] (the paper's workload truncation).
    double eps_min = TruncatedPareto(rng, config.eps_pareto_scale, config.eps_pareto_shape,
                                     config.eps_min_lo, config.eps_min_hi);
    if (gpu) {
      eps_min = std::min(eps_min * config.gpu_eps_multiplier, config.eps_min_hi);
    }
    double current = pool.NormalizedEpsMin(curve);
    DPACK_CHECK(current > 0.0);
    RdpCurve demand = curve.Scaled(eps_min / current);

    Task task(static_cast<TaskId>(i), /*weight=*/1.0, std::move(demand));

    // Network-bytes -> blocks proxy: heavy-tailed count of most-recent blocks, in [1, 100].
    double raw_blocks = TruncatedPareto(rng, config.blocks_pareto_scale,
                                        config.blocks_pareto_shape, 1.0,
                                        static_cast<double>(config.max_blocks_per_task));
    task.num_recent_blocks = static_cast<size_t>(std::llround(raw_blocks));
    task.num_recent_blocks = std::clamp<size_t>(task.num_recent_blocks, 1,
                                                config.max_blocks_per_task);

    task.arrival_time = rng.Uniform(0.0, config.arrival_span);
    task.timeout = config.task_timeout;
    tasks.push_back(std::move(task));
  }
  // Sort by arrival so downstream drivers see a chronological stream.
  std::sort(tasks.begin(), tasks.end(),
            [](const Task& a, const Task& b) { return a.arrival_time < b.arrival_time; });
  return tasks;
}

}  // namespace dpack
