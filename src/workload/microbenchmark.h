// The tunable offline microbenchmark of §6.2, exposing two heterogeneity knobs:
//   sigma_blocks — stddev of the discrete-Gaussian number of requested blocks;
//   sigma_alpha  — stddev of the truncated discrete Gaussian over best-alpha buckets,
//                  centered at the alpha = 5 bucket.
// All tasks share a fixed normalized eps_min (minimum capacity share at the best alpha) and
// weight 1; requested blocks are drawn uniformly without replacement.

#ifndef SRC_WORKLOAD_MICROBENCHMARK_H_
#define SRC_WORKLOAD_MICROBENCHMARK_H_

#include <cstdint>
#include <vector>

#include "src/core/task.h"
#include "src/workload/curve_pool.h"

namespace dpack {

struct MicrobenchmarkConfig {
  size_t num_tasks = 200;
  size_t num_blocks = 30;      // Blocks in the (offline) system.
  double mu_blocks = 10.0;     // Mean requested blocks.
  double sigma_blocks = 0.0;   // Heterogeneity knob 1.
  double sigma_alpha = 0.0;    // Heterogeneity knob 2 (bucket-index stddev).
  double center_alpha = 5.0;   // Bucket the alpha distribution is centered on.
  double eps_min = 0.1;        // Normalized demand at best alpha, constant across tasks.
  uint64_t seed = 1;
};

// Generates the microbenchmark tasks against `pool` (which fixes grid and block budget).
// Task ids are 0..n-1, weights 1, arrival times 0 (offline).
std::vector<Task> GenerateMicrobenchmark(const CurvePool& pool,
                                         const MicrobenchmarkConfig& config);

}  // namespace dpack

#endif  // SRC_WORKLOAD_MICROBENCHMARK_H_
