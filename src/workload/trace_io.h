// Workload (de)serialization: export generated task traces to CSV and load them back.
//
// The paper releases Alibaba-DP as a standalone benchmark; this module gives the same
// portability to any generated workload. One row per task (format v2):
//   id, weight, arrival_time, timeout, num_recent_blocks, blocks, eps(alpha_0), ...
// The header records the format version and the grid orders, so a loaded trace is validated
// against the grid it was written with. The `blocks` column carries the task's explicit
// block-id list (';'-separated, ascending) when `task.blocks` is set, and is empty for
// most-recent-blocks tasks — so any generated scenario (src/workload/scenario.h) round-trips
// exactly. v1 traces (no blocks column) still load; a v1 header claiming a blocks column is
// rejected, since v1 never defined explicit-list semantics.

#ifndef SRC_WORKLOAD_TRACE_IO_H_
#define SRC_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/core/task.h"
#include "src/rdp/alpha_grid.h"

namespace dpack {

// Writes `tasks` as CSV. Returns false on I/O failure.
bool WriteTrace(std::ostream& os, std::span<const Task> tasks, const AlphaGridPtr& grid);
bool WriteTraceFile(const std::string& path, std::span<const Task> tasks,
                    const AlphaGridPtr& grid);

// Parses a trace written by WriteTrace. Aborts (DPACK_CHECK) on malformed input or a grid
// mismatch; returns the tasks in file order.
std::vector<Task> ReadTrace(std::istream& is, const AlphaGridPtr& grid);
std::vector<Task> ReadTraceFile(const std::string& path, const AlphaGridPtr& grid);

}  // namespace dpack

#endif  // SRC_WORKLOAD_TRACE_IO_H_
