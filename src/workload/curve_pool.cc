#include "src/workload/curve_pool.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace dpack {

namespace {

// 5 analytic families x 120 + 20 calibrated curves = 620 curves (§6.2).
constexpr size_t kNumFamilies = 5;
constexpr size_t kCurvesPerFamily = 120;
constexpr size_t kCalibratedCurves = 20;
// Subsampled families sweep kCurvesPerFamily / kSamplingRates noise parameters per rate.
constexpr size_t kSamplingRates = 4;
static_assert(kCurvesPerFamily % kSamplingRates == 0,
              "subsampled families must tile kCurvesPerFamily exactly");
static_assert(kNumFamilies * kCurvesPerFamily + kCalibratedCurves == 620,
              "family counts must sum to the paper's 620-curve pool");

// Log-spaced parameter sweep: count values from lo to hi inclusive.
std::vector<double> LogSpace(double lo, double hi, size_t count) {
  DPACK_CHECK(lo > 0.0 && hi > lo && count >= 2);
  std::vector<double> values(count);
  double step = std::log(hi / lo) / static_cast<double>(count - 1);
  for (size_t i = 0; i < count; ++i) {
    values[i] = lo * std::exp(step * static_cast<double>(i));
  }
  return values;
}

}  // namespace

CurvePool::CurvePool(AlphaGridPtr grid, RdpCurve capacity)
    : grid_(std::move(grid)), capacity_(std::move(capacity)) {
  DPACK_CHECK(SameGrid(grid_, capacity_.grid()));
  curves_.reserve(kNumFamilies * kCurvesPerFamily + kCalibratedCurves);

  // Family 1: Laplace. Small scales are tight at large alpha, large scales at mid alpha.
  for (double b : LogSpace(0.05, 50.0, kCurvesPerFamily)) {
    AddCurve({MechanismType::kLaplace, b, 0.0, 1});
  }
  // Family 2: Gaussian. Best alpha moves with sigma against the capacity profile.
  for (double sigma : LogSpace(0.3, 60.0, kCurvesPerFamily)) {
    AddCurve({MechanismType::kGaussian, sigma, 0.0, 1});
  }
  // Family 3: Subsampled Gaussian (DP-SGD-like): 30 sigmas x 4 sampling rates.
  {
    std::vector<double> qs = {0.001, 0.01, 0.05, 0.2};
    DPACK_CHECK(qs.size() == kSamplingRates);
    for (double sigma : LogSpace(0.5, 20.0, kCurvesPerFamily / kSamplingRates)) {
      for (double q : qs) {
        AddCurve({MechanismType::kSubsampledGaussian, sigma, q, 1});
      }
    }
  }
  // Family 4: Subsampled Laplace: 30 scales x 4 sampling rates.
  {
    std::vector<double> qs = {0.001, 0.01, 0.05, 0.2};
    DPACK_CHECK(qs.size() == kSamplingRates);
    for (double b : LogSpace(0.1, 20.0, kCurvesPerFamily / kSamplingRates)) {
      for (double q : qs) {
        AddCurve({MechanismType::kSubsampledLaplace, b, q, 1});
      }
    }
  }
  // Family 5: composition of one Laplace and one Gaussian at a shared noise parameter.
  for (double noise : LogSpace(0.2, 40.0, kCurvesPerFamily)) {
    AddCurve({MechanismType::kLaplaceGaussianComposition, noise, 0.0, 1});
  }
  // Calibrated curves guaranteeing that every usable order anchors a non-empty bucket (the
  // paper enforces at least one curve per best alpha in {3,...,64}). V-shaped in normalized
  // share space: the minimum sits at the pinned order, with a configurable slope per rank
  // step, and a base level of 0.08 (above the 0.05 outlier threshold).
  {
    std::vector<size_t> usable;
    for (size_t a = 0; a < grid_->size(); ++a) {
      if (capacity_.epsilon(a) > 0.0) {
        usable.push_back(a);
      }
    }
    DPACK_CHECK(!usable.empty());
    size_t added = 0;
    for (double slope : {0.03, 0.06}) {
      for (size_t rank = 0; rank < usable.size() && added < kCalibratedCurves; ++rank) {
        AddCalibratedCurve(usable, rank, slope);
        ++added;
      }
    }
    // Top up to the exact count by revisiting orders with a third slope.
    for (size_t rank = 0; added < kCalibratedCurves; ++rank) {
      AddCalibratedCurve(usable, rank % usable.size(), 0.10);
      ++added;
    }
  }
  DPACK_CHECK(curves_.size() == kNumFamilies * kCurvesPerFamily + kCalibratedCurves);

  // Bucket curves by best alpha over the usable orders. Outliers with a raw normalized
  // eps_min below 0.05 are dropped from the buckets (the paper's rule, §6.2): keeping only
  // high-level curves means the vertical shift to a small eps_min target leaves large
  // absolute share gaps between orders — the "high diversity in eps(alpha)" regime.
  constexpr double kOutlierEpsMin = 0.05;
  std::vector<std::vector<size_t>> by_order(grid_->size());
  for (size_t i = 0; i < curves_.size(); ++i) {
    if (NormalizedEpsMin(curves_[i]) < kOutlierEpsMin) {
      continue;
    }
    by_order[best_alpha_[i]].push_back(i);
  }
  for (size_t a = 0; a < grid_->size(); ++a) {
    if (!by_order[a].empty()) {
      bucket_order_index_.push_back(a);
      buckets_.push_back(std::move(by_order[a]));
    }
  }
  DPACK_CHECK_MSG(!buckets_.empty(), "curve pool produced no usable curves");
}

void CurvePool::AddCalibratedCurve(const std::vector<size_t>& usable_orders, size_t min_rank,
                                   double slope_per_rank) {
  constexpr double kBaseShare = 0.08;
  std::vector<double> demand(grid_->size(), 0.0);
  for (size_t r = 0; r < usable_orders.size(); ++r) {
    size_t a = usable_orders[r];
    double rank_distance = static_cast<double>(r > min_rank ? r - min_rank : min_rank - r);
    double share = kBaseShare + slope_per_rank * rank_distance;
    demand[a] = share * capacity_.epsilon(a);
  }
  curves_.push_back(RdpCurve(grid_, std::move(demand)));
  MechanismSpec spec;
  spec.type = MechanismType::kCalibratedVShape;
  spec.noise = slope_per_rank;
  specs_.push_back(spec);
  best_alpha_.push_back(usable_orders[min_rank]);
}

void CurvePool::AddCurve(MechanismSpec spec) {
  RdpCurve curve = spec.BuildCurve(grid_);
  // Best alpha against the reference capacity: argmin over usable orders of d/c.
  size_t best = grid_->size();
  double best_share = std::numeric_limits<double>::infinity();
  for (size_t a = 0; a < grid_->size(); ++a) {
    double c = capacity_.epsilon(a);
    if (c <= 0.0) {
      continue;
    }
    double share = curve.epsilon(a) / c;
    if (share < best_share) {
      best_share = share;
      best = a;
    }
  }
  DPACK_CHECK_MSG(best < grid_->size(), "no usable order under the reference capacity");
  curves_.push_back(std::move(curve));
  specs_.push_back(spec);
  best_alpha_.push_back(best);
}

double CurvePool::bucket_alpha(size_t b) const {
  DPACK_CHECK(b < bucket_order_index_.size());
  return grid_->order(bucket_order_index_[b]);
}

size_t CurvePool::BucketNearestAlpha(double alpha) const {
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t b = 0; b < bucket_order_index_.size(); ++b) {
    double dist = std::abs(bucket_alpha(b) - alpha);
    if (dist < best_dist) {
      best_dist = dist;
      best = b;
    }
  }
  return best;
}

RdpCurve CurvePool::ScaledToEpsMin(size_t i, double eps_min) const {
  DPACK_CHECK(i < curves_.size());
  DPACK_CHECK(eps_min > 0.0);
  double current = NormalizedEpsMin(curves_[i]);
  DPACK_CHECK_MSG(current > 0.0, "cannot rescale a zero curve");
  return curves_[i].Scaled(eps_min / current);
}

RdpCurve CurvePool::ShiftedToEpsMin(size_t i, double eps_min) const {
  DPACK_CHECK(i < curves_.size());
  DPACK_CHECK(eps_min > 0.0);
  double shift = NormalizedEpsMin(curves_[i]) - eps_min;
  std::vector<double> demand(grid_->size(), 0.0);
  for (size_t a = 0; a < grid_->size(); ++a) {
    double c = capacity_.epsilon(a);
    if (c <= 0.0) {
      // Unusable order: keep the raw demand (it can never be the packing order anyway).
      demand[a] = curves_[i].epsilon(a);
      continue;
    }
    double share = curves_[i].epsilon(a) / c - shift;
    demand[a] = std::max(0.0, share) * c;
  }
  return RdpCurve(grid_, std::move(demand));
}

double CurvePool::NormalizedEpsMin(const RdpCurve& curve) const {
  double best = std::numeric_limits<double>::infinity();
  for (size_t a = 0; a < grid_->size(); ++a) {
    double c = capacity_.epsilon(a);
    if (c <= 0.0) {
      continue;
    }
    best = std::min(best, curve.epsilon(a) / c);
  }
  return best;
}

}  // namespace dpack
