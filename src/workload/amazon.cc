#include "src/workload/amazon.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/distributions.h"
#include "src/common/rng.h"

namespace dpack {

std::vector<AmazonTaskType> AmazonTaskCatalog() {
  std::vector<AmazonTaskType> catalog;
  catalog.reserve(42);

  // 24 neural-network types: compositions of subsampled Gaussians. Block counts follow the
  // published skew (together with the 18 single-block statistics types: ~67% of types at 1
  // block, ~93% at <= 5, max 50).
  const size_t nn_blocks[24] = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1,   // 10 types at 1 block
                                2, 2, 3, 3, 4, 4, 5, 5, 5, 2,   // 10 types at 2-5 blocks
                                3,                               // 1 more small multi-block
                                10, 20, 50};                     // heavy retraining types
  for (size_t i = 0; i < 24; ++i) {
    AmazonTaskType type;
    type.mechanism.type = MechanismType::kComposedSubsampledGaussian;
    // Sigma in [1.0, 2.1], sampling rate in [0.004, 0.02], steps in [200, 2500]: parameters
    // chosen so normalized best alphas concentrate on orders 4-6 against the (10, 1e-7)
    // block budget, as reported for this workload.
    type.mechanism.noise = 1.0 + 0.05 * static_cast<double>(i % 12);
    type.mechanism.sampling_q = 0.004 + 0.002 * static_cast<double>(i % 8);
    type.mechanism.compositions = 200 + 100 * (i % 24);
    // NN tasks are the workload's big consumers: eps_min log-spread over [0.05, 0.5].
    type.eps_min = 0.05 * std::pow(10.0, static_cast<double>(i % 6) / 5.0);
    type.num_recent_blocks = nn_blocks[i];
    type.is_large = true;
    catalog.push_back(type);
  }

  // 18 statistics types: Laplace mechanisms on the latest block. Scales in [5, 22] place the
  // normalized best alpha at mid orders (4-6).
  for (size_t i = 0; i < 18; ++i) {
    AmazonTaskType type;
    type.mechanism.type = MechanismType::kLaplace;
    type.mechanism.noise = 5.0 + 1.0 * static_cast<double>(i);
    type.eps_min = 0.005 * std::pow(10.0, static_cast<double>(i % 5) / 4.0);
    type.num_recent_blocks = 1;
    type.is_large = false;
    catalog.push_back(type);
  }
  DPACK_CHECK(catalog.size() == 42);
  return catalog;
}

std::vector<Task> GenerateAmazon(const CurvePool& pool, const AmazonConfig& config) {
  DPACK_CHECK(config.mean_tasks_per_block > 0.0);
  DPACK_CHECK(config.arrival_span > 0.0);
  Rng rng(config.seed);
  PoissonProcess arrivals(rng.Fork(1), config.mean_tasks_per_block);

  std::vector<AmazonTaskType> catalog = AmazonTaskCatalog();
  // Pre-build the demand curve of each type (rescaled to its eps_min).
  std::vector<RdpCurve> type_curves;
  type_curves.reserve(catalog.size());
  for (const AmazonTaskType& type : catalog) {
    RdpCurve curve = type.mechanism.BuildCurve(pool.grid());
    double current = pool.NormalizedEpsMin(curve);
    DPACK_CHECK(current > 0.0);
    type_curves.push_back(curve.Scaled(type.eps_min / current));
  }

  const std::vector<double> kLargeWeights = {10.0, 50.0, 100.0, 500.0};
  const std::vector<double> kSmallWeights = {1.0, 5.0, 10.0, 50.0};

  std::vector<Task> tasks;
  TaskId next_id = 0;
  double t = 0.0;
  while (true) {
    t += arrivals.InterArrival();
    if (t >= config.arrival_span) {
      break;
    }
    size_t type_idx =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(catalog.size()) - 1));
    const AmazonTaskType& type = catalog[type_idx];
    double weight = 1.0;
    if (config.weighted) {
      const auto& grid_weights = type.is_large ? kLargeWeights : kSmallWeights;
      weight = grid_weights[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(grid_weights.size()) - 1))];
    }
    Task task(next_id++, weight, type_curves[type_idx]);
    task.arrival_time = t;
    task.num_recent_blocks = type.num_recent_blocks;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

}  // namespace dpack
