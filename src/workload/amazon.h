// The Amazon-Reviews-style macrobenchmark from PrivateKube [40], as summarized in §6.3:
// 42 task types — 24 neural-network trainings (compositions of subsampled Gaussians) and 18
// summary statistics (Laplace mechanisms) — arriving as a Poisson process and requesting the
// most recent blocks. The published marginals this generator reproduces:
//   ~63% of tasks request exactly 1 block, ~95% request <= 5, max 50;
//   best alphas concentrate on {4, 5}, ~81% at 5;
//   optional weights: large (NN) tasks uniform {10, 50, 100, 500}, small (statistics) tasks
//   uniform {1, 5, 10, 50} (Fig. 7(b)).

#ifndef SRC_WORKLOAD_AMAZON_H_
#define SRC_WORKLOAD_AMAZON_H_

#include <cstdint>
#include <vector>

#include "src/core/task.h"
#include "src/workload/curve_pool.h"

namespace dpack {

struct AmazonConfig {
  // Mean task arrivals per block interval (the x-axis of Fig. 7).
  double mean_tasks_per_block = 500.0;
  // Arrival window in block intervals; total tasks ~ mean_tasks_per_block * arrival_span.
  double arrival_span = 20.0;
  // When true, tasks get the paper's random weight grids; otherwise weight 1.
  bool weighted = false;
  uint64_t seed = 1;
};

// One of the 42 fixed task types.
struct AmazonTaskType {
  MechanismSpec mechanism;
  double eps_min = 0.01;        // Normalized demand at best alpha.
  size_t num_recent_blocks = 1;
  bool is_large = false;        // NN (large) vs statistics (small).
};

// The fixed catalog of 42 task types (24 NN + 18 statistics).
std::vector<AmazonTaskType> AmazonTaskCatalog();

// Generates tasks by sampling types uniformly at Poisson arrival times.
std::vector<Task> GenerateAmazon(const CurvePool& pool, const AmazonConfig& config);

}  // namespace dpack

#endif  // SRC_WORKLOAD_AMAZON_H_
