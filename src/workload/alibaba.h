// Alibaba-DP: the paper's macrobenchmark derived from the Alibaba 2022 GPU cluster trace
// (§6.3), reproduced here as a seeded synthetic generator (see DESIGN.md, substitution 3).
//
// Mapping (as in the paper):
//   machine type (CPU/GPU)   -> mechanism family: CPU tasks draw from {Laplace, Gaussian,
//                               Subsampled Laplace}; GPU tasks from {composition of
//                               Subsampled Gaussians, composition of Gaussians};
//   memory GB-hours          -> privacy demand: the normalized eps_min follows a heavy-tailed
//                               (Pareto) distribution truncated to [0.001, 1];
//   network bytes read       -> number of requested blocks: heavy-tailed, truncated to
//                               [1, 100]; tasks request the most recent blocks;
//   weight                   -> 1 for all tasks.
// Arrivals are uniform over the trace window (one block arrives per time unit).

#ifndef SRC_WORKLOAD_ALIBABA_H_
#define SRC_WORKLOAD_ALIBABA_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/task.h"
#include "src/workload/curve_pool.h"

namespace dpack {

struct AlibabaConfig {
  size_t num_tasks = 60'000;
  // Arrival window in virtual time (block inter-arrival units). Tasks arrive uniformly over
  // [0, arrival_span).
  double arrival_span = 90.0;
  double gpu_fraction = 0.35;           // Trace-level CPU/GPU mix.
  // Heavy-tailed eps_min proxy (memory GB-hours -> privacy): Pareto(scale, shape) truncated.
  double eps_pareto_scale = 0.01;
  double eps_pareto_shape = 0.7;
  double eps_min_lo = 0.001;            // Paper's truncation: eps_min in [0.001, 1].
  double eps_min_hi = 1.0;
  // Deep-learning (GPU) tasks consume more privacy per run than statistics: their eps_min
  // draw is scaled up by this factor (then re-truncated). Mirrors the memory-usage gap
  // between GPU and CPU jobs in the trace.
  double gpu_eps_multiplier = 4.0;
  // Heavy-tailed block-count proxy (network bytes -> blocks): Pareto truncated to [1, 100].
  double blocks_pareto_scale = 1.0;
  double blocks_pareto_shape = 0.9;
  size_t max_blocks_per_task = 100;     // Paper's truncation.
  // Per-task eviction timeout (§3.4), in block-interval units.
  double task_timeout = std::numeric_limits<double>::infinity();
  uint64_t seed = 1;
};

// Generates Alibaba-DP tasks against `pool`'s grid and block budget. The pool is only used
// for eps_min normalization; mechanisms are instantiated fresh per task. Tasks carry
// `num_recent_blocks` (resolved at submission) and arrival times; ids are 0..n-1.
std::vector<Task> GenerateAlibabaDp(const CurvePool& pool, const AlibabaConfig& config);

}  // namespace dpack

#endif  // SRC_WORKLOAD_ALIBABA_H_
