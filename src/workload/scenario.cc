#include "src/workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/common/distributions.h"
#include "src/common/rng.h"

namespace dpack {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Sub-stream ids for Rng::Fork: each generation axis draws from its own deterministic
// stream, so changing one knob never perturbs the draws of another.
enum : uint64_t { kBlockStream = 1, kArrivalStream = 2, kTaskStream = 3 };

void ValidateSpec(const ScenarioSpec& spec) {
  DPACK_CHECK_MSG(spec.num_blocks > 0, "scenario needs at least one block");
  DPACK_CHECK(spec.block_interval > 0.0);
  DPACK_CHECK(spec.cohort_size > 0);
  DPACK_CHECK(spec.jitter_fraction >= 0.0 && spec.jitter_fraction < 1.0);
  DPACK_CHECK(spec.task_span > 0.0);
  DPACK_CHECK(spec.task_rate > 0.0);
  DPACK_CHECK(spec.burst_on > 0.0 && spec.burst_off >= 0.0);
  DPACK_CHECK(spec.burst_floor >= 0.0 && spec.burst_floor <= 1.0);
  DPACK_CHECK(spec.diurnal_period > 0.0);
  DPACK_CHECK(spec.diurnal_amplitude >= 0.0 && spec.diurnal_amplitude <= 1.0);
  DPACK_CHECK(spec.sigma_alpha >= 0.0);
  DPACK_CHECK(spec.best_alpha_skew > 0.0);
  DPACK_CHECK(spec.eps_min > 0.0);
  DPACK_CHECK(spec.eps_min_lo > 0.0 && spec.eps_min_lo <= spec.eps_min_hi);
  DPACK_CHECK(spec.zipf_levels >= 1);
  DPACK_CHECK(spec.zipf_exponent > 0.0);
  DPACK_CHECK(spec.pareto_shape > 0.0);
  DPACK_CHECK(spec.capacity_divisor >= 1);
  DPACK_CHECK(spec.weight_lo > 0.0 && spec.weight_lo <= spec.weight_hi);
  DPACK_CHECK(spec.weight_pareto_shape > 0.0);
  DPACK_CHECK(spec.mu_blocks > 0.0);
  DPACK_CHECK(spec.sigma_blocks >= 0.0);
  DPACK_CHECK(spec.max_blocks_per_task >= 1);
  DPACK_CHECK(spec.hotspot_fraction >= 0.0 && spec.hotspot_fraction <= 1.0);
  DPACK_CHECK(spec.hotspot_blocks >= 1);
  DPACK_CHECK(spec.timeout > 0.0);
  DPACK_CHECK(spec.timeout_fraction >= 0.0 && spec.timeout_fraction <= 1.0);
  DPACK_CHECK(spec.eps_g > 0.0);
  DPACK_CHECK(spec.delta_g > 0.0 && spec.delta_g < 1.0);
  DPACK_CHECK(spec.period > 0.0);
  DPACK_CHECK(spec.unlock_steps >= 1);
}

std::vector<double> GenerateBlockArrivals(const ScenarioSpec& spec, Rng rng) {
  std::vector<double> times;
  times.reserve(spec.num_blocks);
  switch (spec.block_pattern) {
    case BlockArrivalPattern::kFixedInterval:
      for (size_t b = 0; b < spec.num_blocks; ++b) {
        times.push_back(static_cast<double>(b) * spec.block_interval);
      }
      break;
    case BlockArrivalPattern::kBatchedCohorts: {
      // Whole cohorts arrive together; cohort instants keep the mean block rate, so the
      // same total capacity lands in coarser, later steps.
      double cohort_gap = static_cast<double>(spec.cohort_size) * spec.block_interval;
      for (size_t b = 0; b < spec.num_blocks; ++b) {
        times.push_back(static_cast<double>(b / spec.cohort_size) * cohort_gap);
      }
      break;
    }
    case BlockArrivalPattern::kJittered: {
      double j = spec.jitter_fraction * spec.block_interval;
      for (size_t b = 0; b < spec.num_blocks; ++b) {
        double t = static_cast<double>(b) * spec.block_interval;
        if (j > 0.0) {
          t = std::max(0.0, t + rng.Uniform(-j, j));
        }
        times.push_back(t);
      }
      std::sort(times.begin(), times.end());
      break;
    }
  }
  return times;
}

// Instantaneous task arrival rate at virtual time t. The peak over all t is spec.task_rate
// for every process except the diurnal ramp, whose peak is task_rate * (1 + amplitude).
double ArrivalRateAt(const ScenarioSpec& spec, double t) {
  switch (spec.arrival) {
    case ArrivalProcess::kFixedRate:
    case ArrivalProcess::kPoisson:
      return spec.task_rate;
    case ArrivalProcess::kBurstyOnOff: {
      double phase = std::fmod(t, spec.burst_on + spec.burst_off);
      return phase < spec.burst_on ? spec.task_rate : spec.task_rate * spec.burst_floor;
    }
    case ArrivalProcess::kDiurnalRamp:
      return spec.task_rate *
             (1.0 + spec.diurnal_amplitude * std::sin(2.0 * kPi * t / spec.diurnal_period));
  }
  return spec.task_rate;
}

std::vector<double> GenerateTaskArrivals(const ScenarioSpec& spec, Rng rng) {
  std::vector<double> arrivals;
  if (spec.arrival == ArrivalProcess::kFixedRate) {
    for (double t = 0.0; t < spec.task_span; t += 1.0 / spec.task_rate) {
      arrivals.push_back(t);
    }
    return arrivals;
  }
  // Lewis thinning: candidates from a homogeneous Poisson at the peak rate, each accepted
  // with probability rate(t) / peak. Exact for any bounded rate function, and every draw
  // comes from the explicit stream, so the schedule is reproducible bit-for-bit.
  double peak = spec.task_rate;
  if (spec.arrival == ArrivalProcess::kDiurnalRamp) {
    peak = spec.task_rate * (1.0 + spec.diurnal_amplitude);
  }
  double t = 0.0;
  while (true) {
    t += rng.Exponential(peak);
    if (t >= spec.task_span) {
      break;
    }
    if (spec.arrival == ArrivalProcess::kPoisson ||
        rng.Uniform() * peak < ArrivalRateAt(spec, t)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

// Zipf masses 1 / rank^exponent over `size` ranks.
std::vector<double> ZipfWeights(size_t size, double exponent) {
  std::vector<double> weights(size);
  for (size_t k = 0; k < size; ++k) {
    weights[k] = 1.0 / std::pow(static_cast<double>(k + 1), exponent);
  }
  return weights;
}

// Per-generation sampling tables: pure functions of (pool, spec), hoisted out of the
// per-task loop. Draw sequences are unchanged (WeightedIndex consumes one uniform).
struct SamplingTables {
  size_t center_bucket = 0;          // kGaussianBuckets.
  std::vector<double> bucket_zipf;   // kSkewedBestAlpha: Zipf over bucket rank.
  std::vector<double> demand_zipf;   // kZipfEpsMin: Zipf over the eps ladder rungs.
};

SamplingTables BuildSamplingTables(const CurvePool& pool, const ScenarioSpec& spec) {
  SamplingTables tables;
  if (spec.mix == MechanismMix::kGaussianBuckets) {
    tables.center_bucket = pool.BucketNearestAlpha(spec.center_alpha);
  }
  if (spec.mix == MechanismMix::kSkewedBestAlpha) {
    tables.bucket_zipf = ZipfWeights(pool.bucket_count(), spec.best_alpha_skew);
  }
  if (spec.demand == DemandDistribution::kZipfEpsMin) {
    tables.demand_zipf = ZipfWeights(spec.zipf_levels, spec.zipf_exponent);
  }
  return tables;
}

size_t SampleCurveIndex(const CurvePool& pool, const ScenarioSpec& spec,
                        const SamplingTables& tables, Rng& rng) {
  switch (spec.mix) {
    case MechanismMix::kGaussianBuckets: {
      size_t bucket = TruncatedDiscreteGaussianIndex(
          rng, pool.bucket_count(), static_cast<double>(tables.center_bucket),
          spec.sigma_alpha);
      const std::vector<size_t>& candidates = pool.bucket(bucket);
      return candidates[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    }
    case MechanismMix::kUniformPool:
      return static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1));
    case MechanismMix::kSkewedBestAlpha: {
      // Zipf over bucket rank: the lowest-alpha buckets dominate, skewing the best-alpha
      // population the way a fleet of low-order mechanisms would.
      size_t bucket = rng.WeightedIndex(tables.bucket_zipf);
      const std::vector<size_t>& candidates = pool.bucket(bucket);
      return candidates[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    }
  }
  return 0;
}

double SampleEpsMin(const ScenarioSpec& spec, const SamplingTables& tables, Rng& rng) {
  switch (spec.demand) {
    case DemandDistribution::kFixedEpsMin:
      return spec.eps_min;
    case DemandDistribution::kUniformEpsMin:
      return spec.eps_min_lo == spec.eps_min_hi
                 ? spec.eps_min_lo
                 : rng.Uniform(spec.eps_min_lo, spec.eps_min_hi);
    case DemandDistribution::kZipfEpsMin: {
      // Log-spaced ladder from lo to hi; Zipf mass on the rungs, smallest demand first.
      size_t level = rng.WeightedIndex(tables.demand_zipf);
      if (spec.zipf_levels == 1) {
        return spec.eps_min_lo;
      }
      double frac = static_cast<double>(level) / static_cast<double>(spec.zipf_levels - 1);
      return spec.eps_min_lo * std::pow(spec.eps_min_hi / spec.eps_min_lo, frac);
    }
    case DemandDistribution::kParetoEpsMin:
      return std::min(spec.eps_min_hi, rng.Pareto(spec.eps_min_lo, spec.pareto_shape));
    case DemandDistribution::kCapacityFraction:
      break;  // Demands are built in GenerateScenario; this sampler is never consulted.
  }
  return spec.eps_min;
}

double SampleWeight(const ScenarioSpec& spec, Rng& rng) {
  switch (spec.weights) {
    case WeightDistribution::kUnitWeight:
      return 1.0;
    case WeightDistribution::kUniformWeight:
      return spec.weight_lo == spec.weight_hi ? spec.weight_lo
                                              : rng.Uniform(spec.weight_lo, spec.weight_hi);
    case WeightDistribution::kParetoWeight:
      return std::min(spec.weight_hi, rng.Pareto(spec.weight_lo, spec.weight_pareto_shape));
  }
  return 1.0;
}

// k distinct block ids from [0, arrived) under per-id weights, in sorted order (the
// canonical order every generator emits). Weights are consumed destructively.
std::vector<BlockId> WeightedDistinctBlocks(Rng& rng, std::vector<double> weights, size_t k) {
  std::vector<BlockId> picked;
  picked.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t idx = rng.WeightedIndex(weights);
    picked.push_back(static_cast<BlockId>(idx));
    weights[idx] = 0.0;
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

void AssignBlocks(Task& task, const ScenarioSpec& spec,
                  const std::vector<double>& block_times, Rng& rng) {
  size_t max_k = std::min<size_t>(spec.max_blocks_per_task, spec.num_blocks);
  size_t k = static_cast<size_t>(DiscreteGaussian(rng, spec.mu_blocks, spec.sigma_blocks, 1,
                                                  static_cast<int64_t>(max_k)));
  // Blocks visible to this task: arrivals at or before its instant (block events fire
  // before task events at equal timestamps, see EventPriority).
  size_t arrived = static_cast<size_t>(
      std::upper_bound(block_times.begin(), block_times.end(), task.arrival_time) -
      block_times.begin());
  if (spec.selection == BlockSelectionPolicy::kMostRecentK || arrived == 0) {
    // The paper's convention — or the explicit policies' fallback for tasks arriving
    // before any block exists (their list is resolved most-recent at the next cycle).
    task.num_recent_blocks = k;
    return;
  }
  size_t kk = std::min(k, arrived);
  if (spec.selection == BlockSelectionPolicy::kUniformList) {
    for (size_t idx : rng.SampleWithoutReplacement(arrived, kk)) {
      task.blocks.push_back(static_cast<BlockId>(idx));
    }
    return;
  }
  // Hot-spot skew: each pick lands on one of the `hot` earliest blocks with probability
  // hotspot_fraction, spreading the rest uniformly — per-id weights chosen so a single
  // draw hits the hot set with exactly that probability.
  size_t hot = std::min<size_t>(spec.hotspot_blocks, arrived);
  std::vector<double> weights(arrived, 1.0);
  if (hot < arrived && spec.hotspot_fraction > 0.0) {
    double f = std::min(spec.hotspot_fraction, 1.0 - 1e-9);
    double hot_weight = f * static_cast<double>(arrived - hot) /
                        ((1.0 - f) * static_cast<double>(hot));
    for (size_t h = 0; h < hot; ++h) {
      weights[h] = hot_weight;
    }
  }
  task.blocks = WeightedDistinctBlocks(rng, std::move(weights), kk);
}

double SampleTimeout(const ScenarioSpec& spec, Rng& rng) {
  switch (spec.timeouts) {
    case TimeoutRegime::kNoTimeout:
      return std::numeric_limits<double>::infinity();
    case TimeoutRegime::kFixedTimeout:
      return spec.timeout;
    case TimeoutRegime::kMixedTimeout:
      return rng.Bernoulli(spec.timeout_fraction)
                 ? rng.Uniform(0.5 * spec.timeout, 1.5 * spec.timeout)
                 : std::numeric_limits<double>::infinity();
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

ScenarioWorkload GenerateScenario(const CurvePool& pool, const ScenarioSpec& spec) {
  ValidateSpec(spec);
  Rng root(spec.seed);
  std::vector<double> block_times = GenerateBlockArrivals(spec, root.Fork(kBlockStream));
  std::vector<double> task_times = GenerateTaskArrivals(spec, root.Fork(kArrivalStream));
  Rng task_rng = root.Fork(kTaskStream);
  SamplingTables tables = BuildSamplingTables(pool, spec);

  // kCapacityFraction demands bypass the mechanism pool: every task charges an exact
  // 1/capacity_divisor share of the block capacity curve at every order.
  std::vector<double> fraction_eps;
  if (spec.demand == DemandDistribution::kCapacityFraction) {
    fraction_eps = BlockCapacityCurve(pool.grid(), spec.eps_g, spec.delta_g).epsilons();
    for (double& eps : fraction_eps) {
      eps /= static_cast<double>(spec.capacity_divisor);
    }
  }

  ScenarioWorkload workload;
  workload.tasks.reserve(task_times.size());
  for (size_t i = 0; i < task_times.size(); ++i) {
    RdpCurve demand = [&] {
      if (spec.demand == DemandDistribution::kCapacityFraction) {
        return RdpCurve(pool.grid(), fraction_eps);
      }
      size_t curve = SampleCurveIndex(pool, spec, tables, task_rng);
      double eps = SampleEpsMin(spec, tables, task_rng);
      return pool.ShiftedToEpsMin(curve, eps);
    }();
    Task task(static_cast<TaskId>(i), SampleWeight(spec, task_rng), std::move(demand));
    task.arrival_time = task_times[i];
    task.timeout = SampleTimeout(spec, task_rng);
    AssignBlocks(task, spec, block_times, task_rng);
    workload.tasks.push_back(std::move(task));
  }

  workload.sim.grid = pool.grid();
  workload.sim.eps_g = spec.eps_g;
  workload.sim.delta_g = spec.delta_g;
  workload.sim.num_blocks = block_times.size();
  workload.sim.block_interval = spec.block_interval;
  workload.sim.block_arrival_times = std::move(block_times);
  workload.sim.period = spec.period;
  workload.sim.unlock_steps = spec.unlock_steps;
  workload.sim.drain_margin = spec.drain_margin;
  workload.sim.horizon_override = spec.horizon_override;
  return workload;
}

// --- Registry ------------------------------------------------------------------------------

namespace {

// Each registered scenario stresses one distinct axis of the online system; the engine
// matrix and fuzz suites sweep the registry, so adding an entry here automatically extends
// every differential proof to the new workload shape. Catalogued in src/README.md.

ScenarioSpec SteadyPoisson() {
  ScenarioSpec spec;
  spec.name = "steady_poisson";
  spec.arrival = ArrivalProcess::kPoisson;
  spec.task_span = 14.0;
  spec.task_rate = 4.0;
  spec.num_blocks = 10;
  spec.mix = MechanismMix::kUniformPool;
  spec.demand = DemandDistribution::kFixedEpsMin;
  spec.eps_min = 0.08;
  spec.selection = BlockSelectionPolicy::kMostRecentK;
  spec.mu_blocks = 3.0;
  spec.sigma_blocks = 1.5;
  spec.unlock_steps = 8;
  return spec;
}

ScenarioSpec BurstyHotspot() {
  ScenarioSpec spec;
  spec.name = "bursty_hotspot";
  spec.arrival = ArrivalProcess::kBurstyOnOff;
  spec.task_span = 15.0;
  spec.task_rate = 6.0;
  spec.burst_on = 2.0;
  spec.burst_off = 3.0;
  spec.burst_floor = 0.1;
  spec.num_blocks = 10;
  spec.mix = MechanismMix::kGaussianBuckets;
  spec.sigma_alpha = 3.0;
  spec.demand = DemandDistribution::kUniformEpsMin;
  spec.eps_min_lo = 0.03;
  spec.eps_min_hi = 0.3;
  spec.weights = WeightDistribution::kParetoWeight;
  spec.selection = BlockSelectionPolicy::kHotSpotList;
  spec.hotspot_fraction = 0.75;
  spec.hotspot_blocks = 2;
  spec.mu_blocks = 3.0;
  spec.sigma_blocks = 1.0;
  spec.timeouts = TimeoutRegime::kMixedTimeout;
  spec.timeout = 6.0;
  spec.timeout_fraction = 0.4;
  spec.unlock_steps = 8;
  return spec;
}

ScenarioSpec DiurnalZipf() {
  ScenarioSpec spec;
  spec.name = "diurnal_zipf";
  spec.arrival = ArrivalProcess::kDiurnalRamp;
  spec.task_span = 16.0;
  spec.task_rate = 5.0;
  spec.diurnal_period = 8.0;
  spec.diurnal_amplitude = 0.9;
  spec.num_blocks = 12;
  spec.mix = MechanismMix::kGaussianBuckets;
  spec.sigma_alpha = 2.0;
  spec.demand = DemandDistribution::kZipfEpsMin;
  spec.eps_min_lo = 0.02;
  spec.eps_min_hi = 0.5;
  spec.zipf_exponent = 1.3;
  spec.selection = BlockSelectionPolicy::kMostRecentK;
  spec.mu_blocks = 4.0;
  spec.sigma_blocks = 2.0;
  spec.timeouts = TimeoutRegime::kFixedTimeout;
  spec.timeout = 6.0;
  spec.unlock_steps = 8;
  return spec;
}

ScenarioSpec CohortSkew() {
  ScenarioSpec spec;
  spec.name = "cohort_skew";
  spec.arrival = ArrivalProcess::kFixedRate;
  spec.task_span = 12.0;
  spec.task_rate = 4.0;
  spec.block_pattern = BlockArrivalPattern::kBatchedCohorts;
  spec.num_blocks = 12;
  spec.cohort_size = 4;
  spec.mix = MechanismMix::kSkewedBestAlpha;
  spec.best_alpha_skew = 2.5;
  spec.demand = DemandDistribution::kFixedEpsMin;
  spec.eps_min = 0.12;
  spec.weights = WeightDistribution::kUniformWeight;
  spec.weight_lo = 0.5;
  spec.weight_hi = 6.0;
  spec.selection = BlockSelectionPolicy::kUniformList;
  spec.mu_blocks = 3.0;
  spec.sigma_blocks = 1.0;
  spec.unlock_steps = 6;
  return spec;
}

ScenarioSpec JitteredHeavy() {
  ScenarioSpec spec;
  spec.name = "jittered_heavy";
  spec.arrival = ArrivalProcess::kPoisson;
  spec.task_span = 14.0;
  spec.task_rate = 4.0;
  spec.block_pattern = BlockArrivalPattern::kJittered;
  spec.num_blocks = 10;
  spec.jitter_fraction = 0.45;
  spec.mix = MechanismMix::kUniformPool;
  spec.demand = DemandDistribution::kParetoEpsMin;
  spec.eps_min_lo = 0.02;
  spec.eps_min_hi = 0.6;
  spec.pareto_shape = 0.7;
  spec.weights = WeightDistribution::kParetoWeight;
  spec.selection = BlockSelectionPolicy::kUniformList;
  spec.mu_blocks = 2.0;
  spec.sigma_blocks = 1.0;
  spec.timeouts = TimeoutRegime::kMixedTimeout;
  spec.timeout = 5.0;
  spec.timeout_fraction = 0.4;
  spec.unlock_steps = 8;
  return spec;
}

ScenarioSpec TrickleDrain() {
  ScenarioSpec spec;
  spec.name = "trickle_drain";
  spec.arrival = ArrivalProcess::kFixedRate;
  spec.task_span = 12.0;
  spec.task_rate = 1.5;
  spec.num_blocks = 8;
  spec.mix = MechanismMix::kGaussianBuckets;
  spec.sigma_alpha = 1.0;
  spec.demand = DemandDistribution::kFixedEpsMin;
  spec.eps_min = 0.03;
  spec.selection = BlockSelectionPolicy::kMostRecentK;
  spec.mu_blocks = 2.0;
  spec.sigma_blocks = 0.0;
  spec.unlock_steps = 4;
  return spec;
}

ScenarioSpec RetirementChurn() {
  // Stress for the block-retirement path: capacity-fraction demands make every block
  // exhaustible in exactly capacity_divisor grants, most-recent-k selection concentrates
  // commits on the newest blocks, and fast unlocking (unlock_steps = 2) makes exhausted
  // blocks eligible to retire while the run is still granting — so the hot slab compacts
  // continuously under load, including across the matrix harness's kill+resume trials.
  ScenarioSpec spec;
  spec.name = "retirement_churn";
  spec.arrival = ArrivalProcess::kPoisson;
  spec.task_span = 14.0;
  spec.task_rate = 8.0;
  spec.num_blocks = 24;
  spec.block_interval = 0.5;
  spec.mix = MechanismMix::kUniformPool;  // Ignored by kCapacityFraction; kept canonical.
  spec.demand = DemandDistribution::kCapacityFraction;
  spec.capacity_divisor = 6;
  spec.selection = BlockSelectionPolicy::kMostRecentK;
  spec.mu_blocks = 2.0;
  spec.sigma_blocks = 1.0;
  spec.timeouts = TimeoutRegime::kFixedTimeout;
  spec.timeout = 3.0;
  spec.unlock_steps = 2;
  return spec;
}

using ScenarioFactory = ScenarioSpec (*)();

struct RegistryEntry {
  const char* name;
  ScenarioFactory factory;
};

constexpr RegistryEntry kRegistry[] = {
    {"steady_poisson", &SteadyPoisson},     {"bursty_hotspot", &BurstyHotspot},
    {"diurnal_zipf", &DiurnalZipf},         {"cohort_skew", &CohortSkew},
    {"jittered_heavy", &JitteredHeavy},     {"trickle_drain", &TrickleDrain},
    {"retirement_churn", &RetirementChurn},
};

}  // namespace

std::vector<std::string> ScenarioRegistryNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kRegistry));
  for (const RegistryEntry& entry : kRegistry) {
    names.push_back(entry.name);
  }
  return names;
}

ScenarioSpec ScenarioByName(const std::string& name, uint64_t seed) {
  for (const RegistryEntry& entry : kRegistry) {
    if (name == entry.name) {
      ScenarioSpec spec = entry.factory();
      spec.seed = seed;
      return spec;
    }
  }
  DPACK_CHECK_MSG(false, "unknown scenario: " << name);
  return ScenarioSpec{};
}

}  // namespace dpack
