#include "src/common/frame.h"

#include "src/common/wire.h"

namespace dpack {

uint64_t LoadU64Le(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

void StoreU64Le(char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void WriteFrameHeader(char* header, std::string_view payload) {
  StoreU64Le(header, payload.size());
  StoreU64Le(header + 8, Fnv1a64(payload));
}

void AppendFrame(std::string* out, std::string_view payload) {
  char header[kFrameHeaderBytes];
  WriteFrameHeader(header, payload);
  out->append(header, kFrameHeaderBytes);
  out->append(payload);
}

FrameDecodeStatus DecodeFrame(std::string_view buffer, size_t max_payload,
                              std::string_view* payload, size_t* consumed,
                              std::string* error) {
  if (buffer.size() < kFrameHeaderBytes) {
    return FrameDecodeStatus::kNeedMore;
  }
  uint64_t length = LoadU64Le(buffer.data());
  // The length bound comes before the availability check: a hostile length must be rejected
  // immediately, never held as "need more bytes" while the peer feeds the buffer forever.
  if (length > max_payload) {
    *error = "frame length " + std::to_string(length) + " exceeds the maximum payload " +
             std::to_string(max_payload);
    return FrameDecodeStatus::kCorrupt;
  }
  if (buffer.size() - kFrameHeaderBytes < length) {
    return FrameDecodeStatus::kNeedMore;
  }
  uint64_t checksum = LoadU64Le(buffer.data() + 8);
  std::string_view body = buffer.substr(kFrameHeaderBytes, static_cast<size_t>(length));
  if (Fnv1a64(body) != checksum) {
    *error = "frame checksum mismatch";
    return FrameDecodeStatus::kCorrupt;
  }
  *payload = body;
  *consumed = kFrameHeaderBytes + static_cast<size_t>(length);
  return FrameDecodeStatus::kOk;
}

}  // namespace dpack
