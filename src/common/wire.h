// Binary wire codec primitives shared by every durable/IPC encoding in dpack: the
// checkpoint codec (src/orchestrator/checkpoint.cc) and the grant-service message framing
// (src/service/messages.h) write the same fixed-width little-endian fields, doubles as raw
// IEEE-754 bit patterns, and FNV-1a checksums — one encode discipline, so corruption
// rejection and byte-exactness proofs carry across subsystems.
//
// BinaryReader is bounds-checked: it never reads past the payload, and a corrupted length
// field can never trigger a huge allocation (CheckCount caps declared element counts by the
// bytes actually remaining). On failure the reader latches a diagnostic naming the field.

#ifndef SRC_COMMON_WIRE_H_
#define SRC_COMMON_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace dpack {

// Raw IEEE-754 bit pattern of a double — the lossless way every codec moves floats.
inline uint64_t BitsOfDouble(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

inline double DoubleOfBits(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// FNV-1a over the payload bytes: the checksum both the checkpoint codec and the service
// message framing append, so a flipped bit anywhere in a payload is always detected.
uint64_t Fnv1a64(std::string_view data);

// Appends fixed-width little-endian fields to an owned byte string.
class BinaryWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(BitsOfDouble(v)); }
  void F64Vec(const std::vector<double>& v) {
    U64(v.size());
    for (double x : v) {
      F64(x);
    }
  }
  void I64Vec(const std::vector<int64_t>& v) {
    U64(v.size());
    for (int64_t x : v) {
      I64(x);
    }
  }
  // Appends raw bytes verbatim (length is NOT written; frame it yourself when needed).
  void Bytes(std::string_view bytes) { out_.append(bytes); }

  std::string& data() { return out_; }

 private:
  std::string out_;
};

// Bounds-checked reader over a byte view; never reads past the payload. Each accessor
// returns false (and latches an error naming `what`) on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* out, const char* what) {
    if (!Need(1, what)) {
      return false;
    }
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool U32(uint32_t* out, const char* what) {
    if (!Need(4, what)) {
      return false;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }
  bool U64(uint64_t* out, const char* what) {
    if (!Need(8, what)) {
      return false;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }
  bool I64(int64_t* out, const char* what) {
    uint64_t v;
    if (!U64(&v, what)) {
      return false;
    }
    *out = static_cast<int64_t>(v);
    return true;
  }
  bool F64(double* out, const char* what) {
    uint64_t bits;
    if (!U64(&bits, what)) {
      return false;
    }
    *out = DoubleOfBits(bits);
    return true;
  }
  bool F64Vec(std::vector<double>* out, const char* what) {
    uint64_t count;
    if (!U64(&count, what) || !CheckCount(count, 8, what)) {
      return false;
    }
    out->resize(static_cast<size_t>(count));
    for (auto& x : *out) {
      if (!F64(&x, what)) {
        return false;
      }
    }
    return true;
  }
  bool I64Vec(std::vector<int64_t>* out, const char* what) {
    uint64_t count;
    if (!U64(&count, what) || !CheckCount(count, 8, what)) {
      return false;
    }
    out->resize(static_cast<size_t>(count));
    for (auto& x : *out) {
      if (!I64(&x, what)) {
        return false;
      }
    }
    return true;
  }
  // Reads an element count for records of at least `min_record_bytes`.
  bool Count(uint64_t* out, size_t min_record_bytes, const char* what) {
    return U64(out, what) && CheckCount(*out, min_record_bytes, what);
  }
  // Reads `bytes` raw bytes into a view over the underlying buffer.
  bool BytesView(size_t bytes, std::string_view* out, const char* what) {
    if (!Need(bytes, what)) {
      return false;
    }
    *out = data_.substr(pos_, bytes);
    pos_ += bytes;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  const std::string& error() const { return error_; }
  bool failed() const { return !error_.empty(); }
  // Latches an external structural error (same channel as truncation diagnostics).
  void FailWith(std::string message) {
    if (error_.empty()) {
      error_ = std::move(message);
    }
  }

 private:
  bool Need(size_t bytes, const char* what) {
    if (failed()) {
      return false;
    }
    if (data_.size() - pos_ < bytes) {
      error_ = std::string("truncated input while reading ") + what;
      return false;
    }
    return true;
  }
  // A declared element count must fit in the remaining bytes, so a corrupted length field
  // can never trigger a huge allocation.
  bool CheckCount(uint64_t count, size_t min_record_bytes, const char* what) {
    if (failed()) {
      return false;
    }
    if (count > remaining() / min_record_bytes) {
      error_ = std::string("implausible element count for ") + what;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace dpack

#endif  // SRC_COMMON_WIRE_H_
