#include "src/common/log.h"

#include <atomic>
#include <cstdio>

#include "src/common/thread_annotations.h"

namespace dpack {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
Mutex g_log_mutex;  // Serializes whole log lines onto stderr.

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, message.c_str());
}

}  // namespace internal

}  // namespace dpack
