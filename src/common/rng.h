// Deterministic pseudo-random number generation.
//
// Every stochastic component in dpack (workload generators, arrival processes, simulators)
// draws randomness through an explicitly seeded `Rng` so experiments are reproducible
// bit-for-bit across runs. No component may touch global random state.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "src/common/check.h"

namespace dpack {

// A seeded 64-bit Mersenne-Twister wrapper exposing the distribution draws dpack needs.
//
// `Rng` is cheap to construct and intentionally copyable so callers can fork deterministic
// sub-streams (`Fork`) for independent components without coupling their draw sequences.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  // Returns the seed this generator was constructed with.
  uint64_t seed() const { return seed_; }

  // Returns a new generator whose stream is a deterministic function of this generator's
  // seed and `stream_id`, independent of how many draws have been made so far.
  Rng Fork(uint64_t stream_id) const;

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi). Requires lo < hi.
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  // Standard normal draw scaled to N(mean, stddev^2).
  double Gaussian(double mean, double stddev);

  // Log-normal draw: exp(N(log_mean, log_stddev^2)).
  double LogNormal(double log_mean, double log_stddev);

  // Pareto (power-law) draw with scale x_min > 0 and shape alpha > 0.
  double Pareto(double x_min, double alpha);

  // Exponential draw with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  // Poisson draw with the given mean >= 0.
  int64_t Poisson(double mean);

  // Picks an index in [0, weights.size()) proportionally to the non-negative weights.
  // Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Shuffles `items` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Samples `k` distinct indices from [0, n) uniformly at random (k <= n), in sorted order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace dpack

#endif  // SRC_COMMON_RNG_H_
