#include "src/common/rng.h"

#include <algorithm>
#include <cmath>

namespace dpack {

namespace {

// SplitMix64 finalizer, used to derive well-separated child seeds.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::Fork(uint64_t stream_id) const { return Rng(Mix(seed_ ^ Mix(stream_id))); }

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  DPACK_CHECK(lo < hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DPACK_CHECK(lo <= hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

bool Rng::Bernoulli(double p) {
  DPACK_CHECK(p >= 0.0 && p <= 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  DPACK_CHECK(stddev >= 0.0);
  if (stddev == 0.0) {
    return mean;
  }
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::LogNormal(double log_mean, double log_stddev) {
  DPACK_CHECK(log_stddev >= 0.0);
  return std::exp(Gaussian(log_mean, log_stddev));
}

double Rng::Pareto(double x_min, double alpha) {
  DPACK_CHECK(x_min > 0.0 && alpha > 0.0);
  // Inverse-CDF sampling; 1 - U is in (0, 1].
  double u = 1.0 - Uniform();
  return x_min / std::pow(u, 1.0 / alpha);
}

double Rng::Exponential(double rate) {
  DPACK_CHECK(rate > 0.0);
  return std::exponential_distribution<double>(rate)(engine_);
}

int64_t Rng::Poisson(double mean) {
  DPACK_CHECK(mean >= 0.0);
  if (mean == 0.0) {
    return 0;
  }
  return std::poisson_distribution<int64_t>(mean)(engine_);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    DPACK_CHECK(w >= 0.0);
    total += w;
  }
  DPACK_CHECK(total > 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) {
      return i;
    }
  }
  // Floating-point slack: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) {
      return i - 1;
    }
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DPACK_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<size_t> picked;
  picked.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (std::find(picked.begin(), picked.end(), t) == picked.end()) {
      picked.push_back(t);
    } else {
      picked.push_back(j);
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace dpack
