// Full-duration poll sleep for the service transports' liveness deadlines.
//
// Every blocking wait in the service is an iteration budget: `budget` polls separated by a
// fixed `poll_sleep_us` sleep, so the deadline is budget * poll_sleep_us of real time with
// no clock read on the scheduling path. `usleep` breaks that arithmetic: it returns early
// on EINTR (any signal — and the daemon fields SIGCHLD from its worker fleet constantly),
// silently shrinking the deadline by however often signals land. SleepFullMicros resumes
// `nanosleep` with the kernel-reported remaining time until the full duration has elapsed,
// so a poll interval means what the budget arithmetic assumes it means.

#ifndef SRC_COMMON_SLEEP_H_
#define SRC_COMMON_SLEEP_H_

namespace dpack {

// Sleeps for the full `micros` microseconds, resuming across EINTR. A no-op for 0.
void SleepFullMicros(unsigned int micros);

}  // namespace dpack

#endif  // SRC_COMMON_SLEEP_H_
