#include "src/common/cli.h"

#include <cstdio>
#include <cstdlib>

namespace dpack {

std::optional<uint64_t> TryParseUint64(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return std::nullopt;  // Overflow.
    }
    value = value * 10 + digit;
  }
  return value;
}

std::optional<size_t> TryParseSize(std::string_view text) {
  std::optional<uint64_t> value = TryParseUint64(text);
  if (!value.has_value() || *value > SIZE_MAX) {
    return std::nullopt;
  }
  return static_cast<size_t>(*value);
}

namespace {
[[noreturn]] void DieBadArg(const char* prog, std::string_view text, std::string_view what,
                            std::string_view usage) {
  std::fprintf(stderr, "%s: invalid %.*s '%.*s'\nusage: %.*s\n", prog,
               static_cast<int>(what.size()), what.data(), static_cast<int>(text.size()),
               text.data(), static_cast<int>(usage.size()), usage.data());
  std::exit(2);
}
}  // namespace

size_t ParseSizeArg(const char* prog, std::string_view text, std::string_view what,
                    std::string_view usage) {
  std::optional<size_t> value = TryParseSize(text);
  if (!value.has_value()) {
    DieBadArg(prog, text, what, usage);
  }
  return *value;
}

uint64_t ParseUint64Arg(const char* prog, std::string_view text, std::string_view what,
                        std::string_view usage) {
  std::optional<uint64_t> value = TryParseUint64(text);
  if (!value.has_value()) {
    DieBadArg(prog, text, what, usage);
  }
  return *value;
}

}  // namespace dpack
