// Streaming statistics, percentile summaries, and empirical CDFs for experiment metrics.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dpack {

// Constant-memory accumulator for mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  // The accumulator's full internal state, exposed for checkpointing: Welford updates are
  // order-sensitive, so replaying samples cannot reproduce the accumulator bit-exactly —
  // only restoring these fields can.
  struct State {
    size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };

  void Add(double x);

  State state() const;
  static RunningStat FromState(const State& state);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample variance (n - 1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }
  // Coefficient of variation: stddev / mean (0 when mean is 0).
  double variation_coefficient() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores all samples; answers quantile and CDF queries. Suited to experiment-scale data
// (millions of points), not unbounded streams.
class SampleSet {
 public:
  void Add(double x);
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }
  double sum() const;
  double mean() const;
  // Quantile in [0, 1] by linear interpolation; requires at least one sample.
  double Quantile(double q) const;
  double median() const { return Quantile(0.5); }

  // Fraction of samples <= x (empirical CDF).
  double CdfAt(double x) const;

  // Evenly spaced (value, cumulative fraction) points suitable for plotting a CDF.
  // Returns up to `max_points` points spanning the full sample range.
  std::vector<std::pair<double, double>> CdfPoints(size_t max_points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t bucket_count() const { return counts_.size(); }
  size_t bucket(size_t i) const { return counts_[i]; }
  // Inclusive lower edge of bucket i.
  double BucketLow(size_t i) const;
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }
  size_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<size_t> counts_;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t total_ = 0;
};

}  // namespace dpack

#endif  // SRC_COMMON_STATS_H_
