// Clang Thread Safety Analysis wrappers — the compile-time half of the concurrency
// contract (see src/README.md, "Concurrency contract").
//
// Every mutex and condition variable in dpack goes through the `Mutex`/`MutexLock`/
// `CondVar` wrappers below, and every field a mutex guards is annotated `GUARDED_BY(mu_)`.
// Under clang, `-Wthread-safety -Werror=thread-safety` then *proves* the lock discipline on
// every build: a guarded field touched without its mutex, an unbalanced Lock/Unlock path,
// or a CondVar::Wait without the required capability is a compile error, before any
// interleaving runs. TSan stays on in CI as the dynamic backstop (it sees the interleavings
// a run explores; this analysis rules the rest out by construction). Under compilers
// without the attributes (gcc) the annotations expand to nothing and the wrappers are
// zero-cost veneers over std::mutex / std::condition_variable.
//
// dpack-lint's `raw-mutex` rule (scripts/dpack_lint.py) keeps this the *only* file allowed
// to name std::mutex / std::condition_variable, so no lock can bypass the analysis.
//
// Style notes for annotated code:
//   - Prefer `MutexLock lock(mu_);` (scoped). Use its Unlock()/Lock() pair for the
//     fork-join "work outside the lock" pattern; the destructor releases if still held,
//     which keeps exceptional exits balanced.
//   - CondVar::Wait takes the Mutex itself and REQUIRES it held. Write wait loops as
//     `while (!cond) cv_.Wait(mu_);` — the analysis sees through this form, whereas a
//     predicate lambda would be analyzed as an unlocked separate function.

#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define DPACK_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DPACK_THREAD_ANNOTATION_(x)  // no-op
#endif

#define CAPABILITY(x) DPACK_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY DPACK_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) DPACK_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) DPACK_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) DPACK_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) DPACK_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) DPACK_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) DPACK_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RELEASE(...) DPACK_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) DPACK_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) DPACK_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) DPACK_THREAD_ANNOTATION_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS DPACK_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace dpack {

class CondVar;

// An annotated std::mutex. Lock discipline on this type is machine-checked under clang.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;  // Wait() needs the native handle to build an adopting lock.
  std::mutex mu_;
};

// Scoped lock: acquires in the constructor, releases in the destructor. Unlock()/Lock()
// support the fork-join pattern (drop the lock around the parallel work, retake it for the
// join bookkeeping); the destructor releases only if currently held, so early returns and
// exceptions stay balanced on every path.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) { mu_.Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) {
      mu_.Unlock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

// An annotated condition variable bound to `Mutex`. Wait() REQUIRES the mutex held — the
// analysis rejects a wait outside the critical section — and atomically releases/reacquires
// it around the block, exactly like std::condition_variable::wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // The caller's scope still owns the (reacquired) mutex.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dpack

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
