// A small persistent thread pool for the sharded scheduling engine's fork-join phases.
//
// One pool lives as long as its owner (the engine), so worker threads are spawned once, not
// per cycle; each ParallelFor is a fork-join barrier: work items are claimed atomically by
// the workers and the calling thread, and the call returns only once every item has
// finished. The mutex handoff at the join establishes happens-before between a phase's
// writes and the next phase's reads, which is what lets the engine publish per-shard state
// (snapshot refreshes, dirty bits, best alphas) without per-element synchronization.
//
// Lock discipline is machine-checked: every generation/completion field is GUARDED_BY(mu_)
// and clang's -Wthread-safety proves ParallelFor/WorkerLoop never touch them unlocked.

#ifndef SRC_COMMON_WORKER_POOL_H_
#define SRC_COMMON_WORKER_POOL_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace dpack {

class WorkerPool {
 public:
  // Spawns `num_workers` threads (0 is allowed: every ParallelFor then runs inline on the
  // caller). Workers beyond the machine's core count still provide correct fork-join
  // semantics — they just timeslice — so shard counts exceeding the hardware are safe.
  explicit WorkerPool(size_t num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  // Runs fn(i) for every i in [0, n), distributing items over the workers and the calling
  // thread, and returns when all items completed. `fn` must not call back into this pool
  // (no nested ParallelFor). Only one thread may drive the pool.
  //
  // If an item throws, the exception is captured, the *remaining items still run* (each
  // item is independent; a failed one never blocks the drain), and the first captured
  // exception is rethrown here once every item has finished. The pool stays usable
  // afterwards — a later ParallelFor starts with a clean slate.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_cv_;  // Workers wait here for a new generation.
  CondVar done_cv_;  // The caller waits here for completion / drain.
  const std::function<void(size_t)>* fn_ GUARDED_BY(mu_) = nullptr;
  size_t n_ GUARDED_BY(mu_) = 0;
  size_t completed_ GUARDED_BY(mu_) = 0;  // Items finished.
  size_t executing_ GUARDED_BY(mu_) = 0;  // Workers inside a claim loop.
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::exception_ptr error_ GUARDED_BY(mu_);  // First exception thrown by an item.
  std::atomic<size_t> next_{0};              // Next unclaimed item (lock-free claim ticket).
};

}  // namespace dpack

#endif  // SRC_COMMON_WORKER_POOL_H_
