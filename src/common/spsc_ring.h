// Bounded lock-free single-producer single-consumer ring for in-process snapshot
// publication — the in-memory sibling of the cross-process byte ring in shm_ring.h, and
// deliberately the same cursor discipline: a producer-owned write cursor and a
// consumer-owned read cursor, both monotonically increasing slot counts (never wrapped;
// slot offsets are cursor % capacity), each on its own cache line so the two sides never
// false-share.
//
// Visibility is by construction: TryPush fills the whole slot (epoch + payload) and only
// then publishes the write cursor with a release store; TryPop reads the cursor with an
// acquire load before touching the slot. Everything the producer wrote before a successful
// push — the slot, and any plain memory it filled earlier (a heap snapshot, per-shard
// counters) — therefore happens-before the consumer's pop of that slot. This edge is what
// lets AsyncScheduleEngine retire its mutex publication handoff: the ring pop is the
// publication point.
//
// Slots carry an explicit epoch stamp chosen by the producer (the engine uses its cycle's
// dispatch sequence number). A consumer that pops a slot whose epoch is not the one it is
// waiting for has detected a stale publication — a frame from a cycle whose protocol was
// violated — and handles it exactly as the engine's `async_stale_publishes` quiesce check
// demands: count it, discard it, abandon the cycle to the recompute reference.
//
// No syscalls, no waiting: full/empty are returned to the caller, whose loop owns the
// spin/yield policy and the retry counters (see async_schedule_engine.cc; torture-raced by
// tests/common/spsc_ring_test.cc on the TSan CI leg).

#ifndef SRC_COMMON_SPSC_RING_H_
#define SRC_COMMON_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dpack {

// `T` must be trivially copyable in spirit (it is memcpy'd into and out of slots by plain
// assignment with no synchronization of its own); `kCapacity` a power of two >= 2. The ring
// never allocates after construction.
template <typename T, size_t kCapacity = 4>
class SpscRing {
  static_assert(kCapacity >= 2 && (kCapacity & (kCapacity - 1)) == 0,
                "capacity must be a power of two >= 2");
  static_assert(std::atomic<uint64_t>::is_always_lock_free,
                "publication cursors must be lock-free");

 public:
  SpscRing() = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Publishes one epoch-stamped value; returns false (ring unchanged) when
  // all kCapacity slots hold unconsumed frames. The release store is the publication edge
  // for the slot *and* for every plain write the producer made before the call.
  bool TryPush(uint64_t epoch, const T& value) {
    uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) >= kCapacity) {
      return false;
    }
    Slot& slot = slots_[t & (kCapacity - 1)];
    slot.epoch = epoch;
    slot.value = value;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Pops the oldest published frame into (*epoch_out, *out); returns false
  // when no frame is published. Epoch validation is the caller's: the ring delivers frames
  // in publication order and never invents or drops one.
  bool TryPop(uint64_t* epoch_out, T* out) {
    uint64_t h = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == h) {
      return false;
    }
    const Slot& slot = slots_[h & (kCapacity - 1)];
    *epoch_out = slot.epoch;
    *out = slot.value;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  // Frames currently published and unconsumed. Exact from either owning thread; racy (but
  // always a valid recent value) from anywhere else.
  size_t size() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }
  static constexpr size_t capacity() { return kCapacity; }

 private:
  struct Slot {
    uint64_t epoch = 0;
    T value{};
  };

  // The shm_ring.h Header discipline: cursors on separate cache lines, monotone, never
  // wrapped.
  alignas(64) std::atomic<uint64_t> tail_{0};  // Producer-owned write cursor.
  alignas(64) std::atomic<uint64_t> head_{0};  // Consumer-owned read cursor.
  alignas(64) Slot slots_[kCapacity];
};

}  // namespace dpack

#endif  // SRC_COMMON_SPSC_RING_H_
