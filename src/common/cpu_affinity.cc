#include "src/common/cpu_affinity.h"

#include <atomic>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dpack {

namespace {
std::atomic<bool> g_pin_fail_for_testing{false};
}  // namespace

void SetPinFailForTesting(bool fail) {
  g_pin_fail_for_testing.store(fail, std::memory_order_relaxed);
}

#if defined(__linux__)

std::vector<int> AllowedCores() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) {
    return {};
  }
  std::vector<int> cores;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &set)) {
      cores.push_back(c);
    }
  }
  return cores;
}

bool PinCurrentThreadToCore(int core) {
  if (core < 0 || g_pin_fail_for_testing.load(std::memory_order_relaxed)) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

#else  // !defined(__linux__)

std::vector<int> AllowedCores() { return {}; }

bool PinCurrentThreadToCore(int core) {
  (void)core;
  return false;
}

#endif

int PickShardCore(size_t shard_index) {
  std::vector<int> allowed = AllowedCores();
  if (allowed.empty()) {
    return -1;
  }
  return allowed[shard_index % allowed.size()];
}

}  // namespace dpack
