#include "src/common/distributions.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dpack {

int64_t DiscreteGaussian(Rng& rng, double mean, double stddev, int64_t lo, int64_t hi) {
  DPACK_CHECK(lo <= hi);
  double draw = rng.Gaussian(mean, stddev);
  int64_t rounded = static_cast<int64_t>(std::llround(draw));
  return std::clamp(rounded, lo, hi);
}

std::vector<double> TruncatedDiscreteGaussianPmf(size_t size, double center, double stddev) {
  DPACK_CHECK(size > 0);
  std::vector<double> pmf(size, 0.0);
  if (stddev == 0.0) {
    int64_t idx = std::clamp<int64_t>(static_cast<int64_t>(std::llround(center)), 0,
                                      static_cast<int64_t>(size) - 1);
    pmf[static_cast<size_t>(idx)] = 1.0;
    return pmf;
  }
  double total = 0.0;
  for (size_t i = 0; i < size; ++i) {
    double z = (static_cast<double>(i) - center) / stddev;
    pmf[i] = std::exp(-0.5 * z * z);
    total += pmf[i];
  }
  for (double& p : pmf) {
    p /= total;
  }
  return pmf;
}

size_t TruncatedDiscreteGaussianIndex(Rng& rng, size_t size, double center, double stddev) {
  std::vector<double> pmf = TruncatedDiscreteGaussianPmf(size, center, stddev);
  return rng.WeightedIndex(pmf);
}

double PoissonProcess::InterArrival() {
  if (rate_ <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return rng_.Exponential(rate_);
}

}  // namespace dpack
