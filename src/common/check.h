// Lightweight runtime assertion macros used across the dpack libraries.
//
// DPACK_CHECK is always on (release included): scheduling correctness depends on invariants
// such as "a task is only charged to a block the filter accepted", and silently continuing
// would corrupt privacy accounting. Failures print the condition and abort.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace dpack {

namespace internal {

// Aborts the process after printing `message` to stderr. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& message);

}  // namespace internal

}  // namespace dpack

#define DPACK_CHECK(condition)                                                            \
  do {                                                                                    \
    if (!(condition)) {                                                                   \
      ::dpack::internal::CheckFailed(__FILE__, __LINE__, "DPACK_CHECK failed: " #condition); \
    }                                                                                     \
  } while (false)

#define DPACK_CHECK_MSG(condition, msg)                                            \
  do {                                                                             \
    if (!(condition)) {                                                            \
      std::ostringstream dpack_check_stream_;                                      \
      dpack_check_stream_ << "DPACK_CHECK failed: " #condition << ": " << msg;     \
      ::dpack::internal::CheckFailed(__FILE__, __LINE__, dpack_check_stream_.str()); \
    }                                                                              \
  } while (false)

#endif  // SRC_COMMON_CHECK_H_
