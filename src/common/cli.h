// Checked command-line number parsing for the examples and harness mains. `std::atoi`
// silently turns garbage into 0 and negatives into huge counts once cast to size_t; every
// argv site goes through these helpers instead, so bad input becomes a usage message and a
// nonzero exit, never a silently-wrong simulation size.

#ifndef SRC_COMMON_CLI_H_
#define SRC_COMMON_CLI_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace dpack {

// Parses a non-negative decimal integer. Rejects (nullopt): empty input, any non-digit
// character (signs, whitespace, trailing junk, hex), and values that overflow uint64_t.
std::optional<uint64_t> TryParseUint64(std::string_view text);

// TryParseUint64 narrowed to size_t (rejects values above SIZE_MAX on 32-bit targets).
std::optional<size_t> TryParseSize(std::string_view text);

// Parses argument `text` as a size_t or terminates: on bad input prints
// "<prog>: invalid <what> '<text>'" plus `usage` to stderr and exits 2. `what` names the
// argument ("num-tasks"); `usage` is the program's one-line usage string.
size_t ParseSizeArg(const char* prog, std::string_view text, std::string_view what,
                    std::string_view usage);

// ParseSizeArg for uint64_t arguments (seeds).
uint64_t ParseUint64Arg(const char* prog, std::string_view text, std::string_view what,
                        std::string_view usage);

}  // namespace dpack

#endif  // SRC_COMMON_CLI_H_
