// Thin fork/waitpid/kill helpers for the grant service's worker processes.
//
// Workers are forked WITHOUT exec: the daemon maps its shared-memory regions while still
// single-threaded, forks, and each child inherits the mappings at the same addresses — no
// path/serialization handshake, and the child runs ordinary library code against the shared
// rings. The daemon must therefore not fork service workers from a multi-threaded state
// (see src/service/transport.cc, which forks only at service start and respawn, both on the
// daemon's single scheduling thread).

#ifndef SRC_COMMON_SUBPROCESS_H_
#define SRC_COMMON_SUBPROCESS_H_

#include <sys/types.h>

#include <functional>

namespace dpack {

// Forks; the child runs `body` and _exit()s with its return value (never returns to the
// caller's stack beyond `body`, and never runs the parent's atexit handlers or static
// destructors — the shared mappings and file descriptors it inherited stay owned by the
// parent). Returns the child pid in the parent; DPACK_CHECKs on fork failure.
pid_t SpawnChild(const std::function<int()>& body);

enum class ChildState {
  kRunning,   // Still alive (or stopped); no status change to report.
  kExited,    // Terminated normally; exit_code holds the status.
  kSignaled,  // Terminated by a signal (e.g. SIGKILL); term_signal holds it.
};

struct ChildStatus {
  ChildState state = ChildState::kRunning;
  int exit_code = 0;
  int term_signal = 0;
};

// Non-blocking waitpid(WNOHANG). Once a child has been reported kExited/kSignaled it is
// reaped — polling it again DPACK_CHECKs (track terminal states caller-side).
ChildStatus PollChild(pid_t pid);

// Blocking waitpid; same reap-once contract as PollChild.
ChildStatus WaitChild(pid_t pid);

// Sends `signal` (e.g. SIGKILL) to the child. Harmless on already-dead children.
void KillChild(pid_t pid, int signal);

}  // namespace dpack

#endif  // SRC_COMMON_SUBPROCESS_H_
