// Thread-to-core pinning for the per-shard scheduler threads (AsyncScheduleEngine): the
// single place in the tree allowed to touch the raw affinity syscalls
// (scripts/dpack_lint.py bans pthread_setaffinity_np / sched_setaffinity everywhere else,
// the same single-definition discipline as the thread_annotations.h mutex wrapper).
//
// Pinning is always best-effort. Target cores are chosen from the *allowed* cpuset (what
// sched_getaffinity reports), so a container restricted to a subset of the machine — or to
// a single core, as in CI — still pins successfully to cores it may use. When the cpuset
// cannot be read, the platform lacks the syscalls, or setaffinity is denied outright, every
// call degrades to a counted no-op: the engine runs exactly as before, unpinned, and
// reports the denial through its `pin_failures` counter instead of failing
// (tests/common/cpu_affinity_test.cc pins the fallback via the test-only denial hook).

#ifndef SRC_COMMON_CPU_AFFINITY_H_
#define SRC_COMMON_CPU_AFFINITY_H_

#include <cstddef>
#include <vector>

namespace dpack {

// Core ids the calling thread is allowed to run on (the cpuset), ascending. Empty when the
// allowed set cannot be determined — callers must treat that as "pinning unavailable".
std::vector<int> AllowedCores();

// The deterministic core choice for shard `shard_index`: allowed core s % |allowed|, so
// shards spread round-robin over whatever the cpuset grants (all shards share the one core
// of a single-core container). Returns -1 when no allowed core is known.
int PickShardCore(size_t shard_index);

// Pins the calling thread to `core`. Returns false — leaving the thread's affinity
// untouched — on a negative core, an unavailable platform, a denied syscall, or when the
// test-only denial below is armed.
bool PinCurrentThreadToCore(int core);

// Test-only: force every subsequent PinCurrentThreadToCore to fail (true) or restore real
// behavior (false). Lets tests prove the engine's unpinned fallback without a cpuset that
// actually denies the syscall.
void SetPinFailForTesting(bool fail);

}  // namespace dpack

#endif  // SRC_COMMON_CPU_AFFINITY_H_
