#include "src/common/worker_pool.h"

namespace dpack {

WorkerPool::WorkerPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty()) {
    // Inline path, same exception semantics as the pooled one: every item runs, the first
    // exception is rethrown after the drain.
    std::exception_ptr error;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (error == nullptr) {
          error = std::current_exception();
        }
      }
    }
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
    return;
  }
  MutexLock lock(mu_);
  // Drain stragglers from the previous generation: a worker that claimed nothing may still
  // be between its (empty) claim loop and its bookkeeping; resetting `next_` under it would
  // let it steal items from this generation with the old callable.
  while (executing_ != 0) {
    done_cv_.Wait(mu_);
  }
  fn_ = &fn;
  n_ = n;
  completed_ = 0;
  error_ = nullptr;
  next_.store(0, std::memory_order_relaxed);
  ++generation_;
  lock.Unlock();
  work_cv_.NotifyAll();

  // The caller participates instead of blocking idle.
  size_t mine = 0;
  for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      fn(i);
    } catch (...) {
      MutexLock error_lock(mu_);
      if (error_ == nullptr) {
        error_ = std::current_exception();
      }
    }
    ++mine;
  }
  lock.Lock();
  completed_ += mine;
  while (completed_ != n_) {
    done_cv_.Wait(mu_);
  }
  fn_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);  // `lock` releases mu_ during unwind.
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen = 0;
  MutexLock lock(mu_);
  while (true) {
    while (!stop_ && generation_ == seen) {
      work_cv_.Wait(mu_);
    }
    if (stop_) {
      return;  // `lock` releases mu_.
    }
    seen = generation_;
    const std::function<void(size_t)>* fn = fn_;
    size_t n = n_;
    ++executing_;
    lock.Unlock();
    size_t mine = 0;
    for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      try {
        (*fn)(i);
      } catch (...) {
        MutexLock error_lock(mu_);
        if (error_ == nullptr) {
          error_ = std::current_exception();
        }
      }
      ++mine;
    }
    lock.Lock();
    completed_ += mine;
    --executing_;
    if (completed_ == n_ || executing_ == 0) {
      done_cv_.NotifyAll();
    }
  }
}

}  // namespace dpack
