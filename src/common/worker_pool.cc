#include "src/common/worker_pool.h"

namespace dpack {

WorkerPool::WorkerPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkerPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty()) {
    // Inline path, same exception semantics as the pooled one: every item runs, the first
    // exception is rethrown after the drain.
    std::exception_ptr error;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (error == nullptr) {
          error = std::current_exception();
        }
      }
    }
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  // Drain stragglers from the previous generation: a worker that claimed nothing may still
  // be between its (empty) claim loop and its bookkeeping; resetting `next_` under it would
  // let it steal items from this generation with the old callable.
  done_cv_.wait(lock, [&] { return executing_ == 0; });
  fn_ = &fn;
  n_ = n;
  completed_ = 0;
  error_ = nullptr;
  next_.store(0, std::memory_order_relaxed);
  ++generation_;
  lock.unlock();
  work_cv_.notify_all();

  // The caller participates instead of blocking idle.
  size_t mine = 0;
  for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> error_lock(mu_);
      if (error_ == nullptr) {
        error_ = std::current_exception();
      }
    }
    ++mine;
  }
  lock.lock();
  completed_ += mine;
  done_cv_.wait(lock, [&] { return completed_ == n_; });
  fn_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) {
      return;
    }
    seen = generation_;
    const std::function<void(size_t)>* fn = fn_;
    size_t n = n_;
    ++executing_;
    lock.unlock();
    size_t mine = 0;
    for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> error_lock(mu_);
        if (error_ == nullptr) {
          error_ = std::current_exception();
        }
      }
      ++mine;
    }
    lock.lock();
    completed_ += mine;
    --executing_;
    if (completed_ == n_ || executing_ == 0) {
      done_cv_.notify_all();
    }
  }
}

}  // namespace dpack
