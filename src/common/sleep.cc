#include "src/common/sleep.h"

#include <cerrno>
#include <ctime>

namespace dpack {

void SleepFullMicros(unsigned int micros) {
  if (micros == 0) {
    return;
  }
  // nanosleep writes the unslept remainder into its second argument on EINTR, so resuming
  // with req = remainder accumulates to the full duration without reading a clock.
  struct timespec req;
  req.tv_sec = micros / 1000000u;
  req.tv_nsec = static_cast<long>(micros % 1000000u) * 1000;
  while (nanosleep(&req, &req) != 0 && errno == EINTR) {
  }
}

}  // namespace dpack
