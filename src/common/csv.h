// Tabular experiment output.
//
// Every bench harness emits its figure/table as a `CsvTable`: a header row plus data rows,
// printable both as aligned text (for terminals) and CSV (for plotting scripts).

#ifndef SRC_COMMON_CSV_H_
#define SRC_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace dpack {

class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  // Starts a new row. Subsequent Add* calls append cells to it.
  CsvTable& NewRow();
  CsvTable& Add(const std::string& cell);
  CsvTable& Add(double value);
  CsvTable& Add(int64_t value);
  CsvTable& Add(size_t value);

  size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  // Writes comma-separated values, header first.
  void WriteCsv(std::ostream& os) const;

  // Writes a column-aligned plain-text table.
  void WriteAligned(std::ostream& os) const;

  // Writes the aligned form to stdout with a title banner.
  void Print(const std::string& title) const;

  // Writes the CSV form to `path`, creating/overwriting the file. Returns false on I/O error.
  bool SaveCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double compactly (up to 6 significant digits, no trailing zeros).
std::string FormatDouble(double value);

}  // namespace dpack

#endif  // SRC_COMMON_CSV_H_
