#include "src/common/shm_ring.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>
#include <new>

#include "src/common/check.h"
#include "src/common/frame.h"  // The [len][FNV-1a][payload] frame codec, shared with sockets.
#include "src/common/wire.h"

namespace dpack {

// --- ShmRegion -----------------------------------------------------------------------------

ShmRegion::ShmRegion(size_t bytes) : bytes_(bytes) {
  DPACK_CHECK(bytes > 0);
  mem_ = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  DPACK_CHECK(mem_ != MAP_FAILED);
}

ShmRegion::~ShmRegion() {
  if (mem_ != nullptr) {
    munmap(mem_, bytes_);
  }
}

ShmRegion::ShmRegion(ShmRegion&& other) noexcept : mem_(other.mem_), bytes_(other.bytes_) {
  other.mem_ = nullptr;
  other.bytes_ = 0;
}

ShmRegion& ShmRegion::operator=(ShmRegion&& other) noexcept {
  if (this != &other) {
    if (mem_ != nullptr) {
      munmap(mem_, bytes_);
    }
    mem_ = other.mem_;
    bytes_ = other.bytes_;
    other.mem_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

// --- ShmRing -------------------------------------------------------------------------------

size_t ShmRing::MinBytes() { return sizeof(Header) + 64; }

ShmRing::ShmRing(void* mem, size_t bytes, bool initialize) {
  DPACK_CHECK(mem != nullptr);
  DPACK_CHECK(bytes >= MinBytes());
  if (initialize) {
    // Placement-new establishes the atomics' lifetimes in the zeroed shared page.
    header_ = new (mem) Header;
    header_->tail.store(0, std::memory_order_relaxed);
    header_->head.store(0, std::memory_order_relaxed);
    header_->capacity = bytes - sizeof(Header);
  } else {
    header_ = static_cast<Header*>(mem);
    DPACK_CHECK(header_->capacity == bytes - sizeof(Header));
  }
  buf_ = static_cast<char*>(mem) + sizeof(Header);
  cap_ = header_->capacity;
}

void ShmRing::CopyIn(uint64_t cursor, const char* src, size_t n) {
  size_t offset = static_cast<size_t>(cursor % cap_);
  size_t first = std::min(n, cap_ - offset);
  std::memcpy(buf_ + offset, src, first);
  if (first < n) {
    std::memcpy(buf_, src + first, n - first);
  }
}

void ShmRing::CopyOut(uint64_t cursor, char* dst, size_t n) const {
  size_t offset = static_cast<size_t>(cursor % cap_);
  size_t first = std::min(n, cap_ - offset);
  std::memcpy(dst, buf_ + offset, first);
  if (first < n) {
    std::memcpy(dst + first, buf_, n - first);
  }
}

bool ShmRing::TryPush(std::string_view payload) {
  uint64_t tail = header_->tail.load(std::memory_order_relaxed);  // Producer-owned.
  uint64_t head = header_->head.load(std::memory_order_acquire);
  uint64_t need = kFrameHeaderBytes + payload.size();
  DPACK_CHECK(need <= cap_);  // A message larger than the ring can never succeed.
  if (cap_ - (tail - head) < need) {
    return false;
  }
  char frame_header[kFrameHeaderBytes];
  WriteFrameHeader(frame_header, payload);
  CopyIn(tail, frame_header, kFrameHeaderBytes);
  CopyIn(tail + kFrameHeaderBytes, payload.data(), payload.size());
  // The release publish is what makes a mid-write SIGKILL invisible: until this store the
  // consumer's acquire load cannot observe any byte of the frame.
  header_->tail.store(tail + need, std::memory_order_release);
  return true;
}

RingPopStatus ShmRing::TryPop(std::string* out) {
  uint64_t head = header_->head.load(std::memory_order_relaxed);  // Consumer-owned.
  uint64_t tail = header_->tail.load(std::memory_order_acquire);
  uint64_t available = tail - head;
  if (available == 0) {
    return RingPopStatus::kEmpty;
  }
  if (available < kFrameHeaderBytes) {
    return RingPopStatus::kCorrupt;  // A published frame is never smaller than its header.
  }
  char frame_header[kFrameHeaderBytes];
  CopyOut(head, frame_header, kFrameHeaderBytes);
  uint64_t length = LoadU64Le(frame_header);
  uint64_t checksum = LoadU64Le(frame_header + 8);
  if (length > cap_ || kFrameHeaderBytes + length > available) {
    return RingPopStatus::kCorrupt;  // Length field damaged (or truncated publish).
  }
  out->resize(static_cast<size_t>(length));
  CopyOut(head + kFrameHeaderBytes, out->data(), static_cast<size_t>(length));
  if (Fnv1a64(*out) != checksum) {
    return RingPopStatus::kCorrupt;  // Payload bit-flip.
  }
  header_->head.store(head + kFrameHeaderBytes + length, std::memory_order_release);
  return RingPopStatus::kOk;
}

size_t ShmRing::used() const {
  return static_cast<size_t>(header_->tail.load(std::memory_order_acquire) -
                             header_->head.load(std::memory_order_acquire));
}

uint64_t ShmRing::head_cursor() const { return header_->head.load(std::memory_order_acquire); }

uint64_t ShmRing::tail_cursor() const { return header_->tail.load(std::memory_order_acquire); }

}  // namespace dpack
