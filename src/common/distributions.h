// Discrete distributions used by the paper's workload generators.
//
// The microbenchmark (§6.2) samples the number of requested blocks from a *discrete* Gaussian
// and picks best-alpha buckets from a *truncated* discrete Gaussian over bucket indexes; the
// Alibaba-DP generator (§6.3) uses heavy-tailed draws. These helpers implement the discrete
// distributions on top of `Rng`.

#ifndef SRC_COMMON_DISTRIBUTIONS_H_
#define SRC_COMMON_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace dpack {

// Samples from a Gaussian N(mean, stddev^2) rounded to the nearest integer and clamped to
// [lo, hi]. With stddev == 0 this deterministically returns round(mean) clamped.
int64_t DiscreteGaussian(Rng& rng, double mean, double stddev, int64_t lo, int64_t hi);

// Probability mass of a truncated discrete Gaussian centered at `center` over indexes
// [0, size): mass[i] proportional to exp(-(i - center)^2 / (2 stddev^2)). With stddev == 0,
// all mass sits on round(center) (clamped into range).
std::vector<double> TruncatedDiscreteGaussianPmf(size_t size, double center, double stddev);

// Samples an index in [0, size) from TruncatedDiscreteGaussianPmf.
size_t TruncatedDiscreteGaussianIndex(Rng& rng, size_t size, double center, double stddev);

// A Poisson arrival process over continuous virtual time: successive InterArrival() draws are
// i.i.d. Exponential(rate). With rate == 0 the process never fires (returns +infinity).
class PoissonProcess {
 public:
  PoissonProcess(Rng rng, double rate) : rng_(rng), rate_(rate) {}

  // Time until the next arrival.
  double InterArrival();

  double rate() const { return rate_; }

 private:
  Rng rng_;
  double rate_;
};

}  // namespace dpack

#endif  // SRC_COMMON_DISTRIBUTIONS_H_
