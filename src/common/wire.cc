#include "src/common/wire.h"

namespace dpack {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace dpack
