// Minimal leveled logging to stderr.
//
// Intended for operational messages from long-running harnesses (progress, warnings), not for
// experiment data — data goes through `CsvTable`.

#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace dpack {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets the minimum level that is emitted. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Emits one formatted log line; thread-safe.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace dpack

#define DPACK_LOG(level) ::dpack::internal::LogStream(::dpack::LogLevel::level, __FILE__, __LINE__)

#endif  // SRC_COMMON_LOG_H_
