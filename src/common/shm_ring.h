// Shared-memory IPC primitives for the multi-process grant service (src/service/):
// an anonymous MAP_SHARED region created by the daemon *before* forking its workers, a
// bounded SPSC byte ring carrying checksum-framed messages across the process boundary, and
// a per-worker control block for heartbeat/liveness signalling.
//
// Crash safety is by construction, not recovery code: a producer publishes its write cursor
// only after the whole frame is in place, and a consumer advances its read cursor only after
// the whole payload is copied out and its checksum verified. A process killed (SIGKILL) at
// any instant therefore leaves the ring in a state where every visible frame is complete —
// the surviving side either sees the message entirely or never sees it.
//
// Frames are [u64 payload length][u64 FNV-1a checksum][payload bytes] (little-endian, the
// wire.h discipline). A frame whose length exceeds what the producer published, or whose
// checksum does not match the payload, is reported as corruption — the same
// reject-don't-trust contract as the checkpoint codec (tests/service/shm_ring_test.cc
// mirrors checkpoint_test.cc's truncation/bit-flip suite).
//
// The ring makes no syscalls on push/pop (pure shared-memory atomics); blocking waits are
// the caller's loop (see src/service/transport.h, which owns the deadlines and counters).

#ifndef SRC_COMMON_SHM_RING_H_
#define SRC_COMMON_SHM_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dpack {

// Anonymous MAP_SHARED mapping, created while the process is still single-threaded and
// inherited by every subsequently forked child at the same address. Move-only RAII.
class ShmRegion {
 public:
  ShmRegion() = default;
  // Maps `bytes` of zero-initialized shared memory; DPACK_CHECKs on mmap failure.
  explicit ShmRegion(size_t bytes);
  ~ShmRegion();

  ShmRegion(ShmRegion&& other) noexcept;
  ShmRegion& operator=(ShmRegion&& other) noexcept;
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;

  void* data() const { return mem_; }
  size_t size() const { return bytes_; }
  bool valid() const { return mem_ != nullptr; }

 private:
  void* mem_ = nullptr;
  size_t bytes_ = 0;
};

enum class RingPopStatus {
  kOk,       // One message popped into *out.
  kEmpty,    // No published frame.
  kCorrupt,  // Framing or checksum violation; the ring is poisoned (see TryPop).
};

// Single-producer single-consumer byte ring over caller-provided memory (a slice of an
// ShmRegion, or plain heap memory in unit tests). Exactly one process pushes and exactly
// one process pops; the two sides may be (and in the service are) different processes.
class ShmRing {
 public:
  // Minimum usable memory: the cursor header plus room for at least one small frame.
  static size_t MinBytes();

  // Lays out a ring in `mem` (`initialize` = true; call once, pre-fork) or attaches to an
  // already-initialized ring (`initialize` = false; the child side after fork, or a second
  // handle in-process). Attach validates the stored capacity against `bytes`.
  ShmRing(void* mem, size_t bytes, bool initialize);

  // Appends one frame. Returns false when the ring lacks space (caller decides whether to
  // spin, count a stall, or fail); the ring is unchanged in that case.
  bool TryPush(std::string_view payload);

  // Pops the next frame into *out. On kCorrupt the cursors are left untouched so the
  // damage stays observable (every subsequent pop reports corruption too — a poisoned
  // transport, never silently-resynchronized garbage).
  RingPopStatus TryPop(std::string* out);

  size_t capacity() const { return cap_; }
  // Bytes currently published and unconsumed (racy across processes; exact when quiescent).
  size_t used() const;

  // Raw buffer access for corruption-injection tests (the buffer begins at the returned
  // pointer and wraps modulo capacity()).
  char* raw_buffer() { return buf_; }
  uint64_t head_cursor() const;
  uint64_t tail_cursor() const;

 private:
  struct Header {
    // Producer-owned write cursor and consumer-owned read cursor, both monotonically
    // increasing byte counts (never wrapped; buffer offsets are cursor % capacity).
    alignas(64) std::atomic<uint64_t> tail;
    alignas(64) std::atomic<uint64_t> head;
    alignas(64) uint64_t capacity;
  };
  static_assert(std::atomic<uint64_t>::is_always_lock_free,
                "shared-memory cursors must be lock-free across processes");

  void CopyIn(uint64_t cursor, const char* src, size_t n);
  void CopyOut(uint64_t cursor, char* dst, size_t n) const;

  Header* header_ = nullptr;
  char* buf_ = nullptr;
  size_t cap_ = 0;
};

// Worker lifecycle as observed through shared memory (daemon side reads, worker writes).
enum class WorkerLifeState : uint32_t {
  kStarting = 0,  // Forked, not yet bound.
  kReady = 1,     // Bound and serving score rounds.
  kExited = 2,    // Clean shutdown (a crashed worker never reaches this).
};

// Per-worker shared control block: the heartbeat counter advances every worker poll
// iteration, so a stalled counter with a live pid is a hung worker (distinct from a dead
// one, which waitpid reports). Lives in the same pre-fork ShmRegion as the rings.
struct WorkerControlBlock {
  alignas(64) std::atomic<uint64_t> heartbeat;
  alignas(64) std::atomic<uint32_t> life_state;
};

}  // namespace dpack

#endif  // SRC_COMMON_SHM_RING_H_
