#include "src/common/csv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/common/check.h"

namespace dpack {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return std::string(buf);
}

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {
  DPACK_CHECK(!header_.empty());
}

CsvTable& CsvTable::NewRow() {
  rows_.emplace_back();
  return *this;
}

CsvTable& CsvTable::Add(const std::string& cell) {
  DPACK_CHECK(!rows_.empty());
  DPACK_CHECK_MSG(rows_.back().size() < header_.size(), "row wider than header");
  rows_.back().push_back(cell);
  return *this;
}

CsvTable& CsvTable::Add(double value) { return Add(FormatDouble(value)); }

CsvTable& CsvTable::Add(int64_t value) { return Add(std::to_string(value)); }

CsvTable& CsvTable::Add(size_t value) { return Add(std::to_string(value)); }

void CsvTable::WriteCsv(std::ostream& os) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    os << header_[i] << (i + 1 < header_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << row[i] << (i + 1 < row.size() ? "," : "");
    }
    os << "\n";
  }
}

void CsvTable::WriteAligned(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) {
    write_row(row);
  }
}

void CsvTable::Print(const std::string& title) const {
  std::cout << "\n== " << title << " ==\n";
  WriteAligned(std::cout);
  std::cout.flush();
}

bool CsvTable::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteCsv(out);
  return static_cast<bool>(out);
}

}  // namespace dpack
