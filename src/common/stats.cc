#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace dpack {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

RunningStat::State RunningStat::state() const {
  return State{count_, mean_, m2_, min_, max_, sum_};
}

RunningStat RunningStat::FromState(const State& state) {
  RunningStat stat;
  stat.count_ = state.count;
  stat.mean_ = state.mean;
  stat.m2_ = state.m2;
  stat.min_ = state.min;
  stat.max_ = state.max;
  stat.sum_ = state.sum;
  return stat;
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const {
  DPACK_CHECK(count_ > 0);
  return min_;
}

double RunningStat::max() const {
  DPACK_CHECK(count_ > 0);
  return max_;
}

double RunningStat::variation_coefficient() const {
  if (count_ == 0 || mean_ == 0.0) {
    return 0.0;
  }
  return stddev() / mean_;
}

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::sum() const {
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s;
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return sum() / static_cast<double>(samples_.size());
}

double SampleSet::Quantile(double q) const {
  DPACK_CHECK(!samples_.empty());
  DPACK_CHECK(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  double pos = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::CdfAt(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::CdfPoints(size_t max_points) const {
  std::vector<std::pair<double, double>> points;
  if (samples_.empty() || max_points == 0) {
    return points;
  }
  EnsureSorted();
  size_t n = samples_.size();
  size_t step = std::max<size_t>(1, n / max_points);
  for (size_t i = 0; i < n; i += step) {
    points.emplace_back(samples_[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (points.back().first != samples_.back()) {
    points.emplace_back(samples_.back(), 1.0);
  }
  return points;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  DPACK_CHECK(hi > lo);
  DPACK_CHECK(buckets > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  size_t idx = static_cast<size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::BucketLow(size_t i) const {
  DPACK_CHECK(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace dpack
