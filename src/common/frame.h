// The checksum frame every dpack transport speaks: [u64 payload length][u64 FNV-1a
// checksum][payload bytes], all little-endian (the wire.h discipline). Originally private
// to the shm ring (src/common/shm_ring.cc); hoisted here so the socket transport
// (src/service/net_transport.h) frames its byte stream with the exact same contract — one
// frame codec, one corruption-rejection discipline, shared by shared memory and sockets.
//
// Decoding never trusts the length field: DecodeFrame bounds it by both the bytes actually
// buffered and a caller-supplied maximum, so a hostile or damaged header can neither trigger
// a huge allocation nor convince a reader to wait forever for bytes that are never coming.
// A checksum mismatch is reported distinctly from "need more bytes" — stream transports must
// treat it as poison (drop the peer), never resynchronize past it.

#ifndef SRC_COMMON_FRAME_H_
#define SRC_COMMON_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dpack {

// u64 payload length + u64 FNV-1a checksum.
inline constexpr size_t kFrameHeaderBytes = 16;

// Fixed-width little-endian loads/stores (byte-order independent, alignment-safe).
uint64_t LoadU64Le(const char* p);
void StoreU64Le(char* p, uint64_t v);

// Writes the 16-byte frame header for `payload` into `header` (at least kFrameHeaderBytes).
void WriteFrameHeader(char* header, std::string_view payload);

// Appends one complete frame (header + payload) to `out`.
void AppendFrame(std::string* out, std::string_view payload);

enum class FrameDecodeStatus {
  kOk,        // One complete, checksum-clean frame; *payload set, *consumed advanced.
  kNeedMore,  // `buffer` holds a frame prefix; read more bytes and retry.
  kCorrupt,   // Length exceeds `max_payload` or the checksum fails; *error names which.
};

// Decodes the frame at the front of `buffer`. On kOk, *payload views the payload bytes
// inside `buffer` (valid only while `buffer` lives) and *consumed is the total frame size
// to drop from the front. On kCorrupt the buffer is poison: a stream reader cannot know
// where the next frame boundary is, so the only safe reaction is to discard the peer.
FrameDecodeStatus DecodeFrame(std::string_view buffer, size_t max_payload,
                              std::string_view* payload, size_t* consumed,
                              std::string* error);

}  // namespace dpack

#endif  // SRC_COMMON_FRAME_H_
