#include "src/common/subprocess.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/common/check.h"

namespace dpack {

namespace {

ChildStatus StatusOf(int wait_status) {
  ChildStatus status;
  if (WIFEXITED(wait_status)) {
    status.state = ChildState::kExited;
    status.exit_code = WEXITSTATUS(wait_status);
  } else if (WIFSIGNALED(wait_status)) {
    status.state = ChildState::kSignaled;
    status.term_signal = WTERMSIG(wait_status);
  }
  return status;  // Stopped/continued children stay kRunning.
}

}  // namespace

pid_t SpawnChild(const std::function<int()>& body) {
  pid_t pid = fork();
  DPACK_CHECK(pid >= 0);
  if (pid == 0) {
    // _exit skips the parent's atexit/static-destructor chain: this child shares the
    // parent's inherited heap snapshot and must not tear it down. Leak checkers treat
    // children that _exit as uninteresting, so a worker's live state is not a "leak".
    _exit(body());
  }
  return pid;
}

ChildStatus PollChild(pid_t pid) {
  int wait_status = 0;
  pid_t r = waitpid(pid, &wait_status, WNOHANG);
  DPACK_CHECK(r >= 0);  // r < 0 (ECHILD) means the child was already reaped: a caller bug.
  if (r == 0) {
    return ChildStatus{};
  }
  return StatusOf(wait_status);
}

ChildStatus WaitChild(pid_t pid) {
  int wait_status = 0;
  pid_t r = waitpid(pid, &wait_status, 0);
  DPACK_CHECK(r == pid);
  return StatusOf(wait_status);
}

void KillChild(pid_t pid, int signal) {
  DPACK_CHECK(pid > 0);  // Never signal process groups / every-process targets.
  kill(pid, signal);
}

}  // namespace dpack
