#include "src/orchestrator/checkpoint.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/common/wire.h"

namespace dpack {

namespace {

// BinaryWriter/BinaryReader/Fnv1a64/double-bit helpers live in src/common/wire.h now —
// the same encode discipline backs the service message framing (src/service/messages.h).

constexpr char kBinaryMagic[8] = {'D', 'P', 'C', 'K', 'S', 'N', 'A', 'P'};
constexpr char kJsonFormatTag[] = "dpack-snapshot";

// --- Minimal strict JSON model -------------------------------------------------------------
//
// The snapshot's JSON encoding only needs objects, arrays, unsigned/negative integers,
// booleans, and plain strings (doubles travel as 64-bit patterns in decimal), so the parser
// covers exactly that subset: no floats, no null, no escapes — anything else is rejected.

struct JsonValue {
  enum class Kind { kObject, kArray, kNumber, kBool, kString };
  Kind kind = Kind::kNumber;
  bool negative = false;
  uint64_t magnitude = 0;
  bool boolean = false;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the top-level value");
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  static constexpr int kMaxDepth = 24;

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      std::ostringstream os;
      os << "JSON parse error at byte " << pos_ << ": " << message;
      error_ = os.str();
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out, depth);
    }
    if (c == '[') {
      return ParseArray(out, depth);
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->text);
    }
    if (c == 't' || c == 'f') {
      return ParseBool(out);
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      return ParseNumber(out);
    }
    return Fail("unexpected character");
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->items.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\' || static_cast<unsigned char>(c) < 0x20) {
        return Fail("unsupported character in string");
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseBool(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return Fail("expected 'true' or 'false'");
  }

  bool ParseNumber(JsonValue* out) {
    out->kind = JsonValue::Kind::kNumber;
    if (text_[pos_] == '-') {
      out->negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Fail("expected digits");
    }
    uint64_t magnitude = 0;
    size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      uint64_t digit = static_cast<uint64_t>(text_[pos_] - '0');
      if (magnitude > (UINT64_MAX - digit) / 10) {
        return Fail("integer overflow");
      }
      magnitude = magnitude * 10 + digit;
      ++pos_;
      ++digits;
    }
    if (digits > 1 && text_[pos_ - digits] == '0') {
      return Fail("leading zero");
    }
    out->magnitude = magnitude;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

// --- JSON field extraction (strict: every key required, no unknown keys) -------------------

const JsonValue* FindMember(const JsonValue& obj, std::string_view key) {
  for (const auto& [name, value] : obj.members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

bool ExpectObject(const JsonValue& v, const char* what, std::string* error) {
  if (v.kind != JsonValue::Kind::kObject) {
    *error = std::string(what) + ": expected an object";
    return false;
  }
  return true;
}

// Rejects duplicate and unknown keys; missing keys are caught by the Get* lookups.
bool CheckOnlyKeys(const JsonValue& obj, std::initializer_list<std::string_view> keys,
                   const char* what, std::string* error) {
  for (size_t i = 0; i < obj.members.size(); ++i) {
    const std::string& name = obj.members[i].first;
    bool known = false;
    for (std::string_view key : keys) {
      if (name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      *error = std::string(what) + ": unknown key \"" + name + "\"";
      return false;
    }
    for (size_t j = i + 1; j < obj.members.size(); ++j) {
      if (obj.members[j].first == name) {
        *error = std::string(what) + ": duplicate key \"" + name + "\"";
        return false;
      }
    }
  }
  return true;
}

bool GetU64(const JsonValue& obj, const char* key, uint64_t* out, std::string* error) {
  const JsonValue* v = FindMember(obj, key);
  if (v == nullptr) {
    *error = std::string("missing key \"") + key + "\"";
    return false;
  }
  if (v->kind != JsonValue::Kind::kNumber || v->negative) {
    *error = std::string("key \"") + key + "\": expected an unsigned integer";
    return false;
  }
  *out = v->magnitude;
  return true;
}

bool GetI64(const JsonValue& obj, const char* key, int64_t* out, std::string* error) {
  const JsonValue* v = FindMember(obj, key);
  if (v == nullptr) {
    *error = std::string("missing key \"") + key + "\"";
    return false;
  }
  if (v->kind != JsonValue::Kind::kNumber) {
    *error = std::string("key \"") + key + "\": expected an integer";
    return false;
  }
  if (v->negative) {
    if (v->magnitude > 9223372036854775808ULL) {
      *error = std::string("key \"") + key + "\": integer out of range";
      return false;
    }
    *out = v->magnitude == 9223372036854775808ULL
               ? INT64_MIN
               : -static_cast<int64_t>(v->magnitude);
  } else {
    if (v->magnitude > static_cast<uint64_t>(INT64_MAX)) {
      *error = std::string("key \"") + key + "\": integer out of range";
      return false;
    }
    *out = static_cast<int64_t>(v->magnitude);
  }
  return true;
}

// Doubles are stored as their IEEE-754 bit pattern in an unsigned decimal.
bool GetF64(const JsonValue& obj, const char* key, double* out, std::string* error) {
  uint64_t bits;
  if (!GetU64(obj, key, &bits, error)) {
    return false;
  }
  *out = DoubleOfBits(bits);
  return true;
}

bool GetBool(const JsonValue& obj, const char* key, bool* out, std::string* error) {
  const JsonValue* v = FindMember(obj, key);
  if (v == nullptr) {
    *error = std::string("missing key \"") + key + "\"";
    return false;
  }
  if (v->kind != JsonValue::Kind::kBool) {
    *error = std::string("key \"") + key + "\": expected a boolean";
    return false;
  }
  *out = v->boolean;
  return true;
}

bool GetArray(const JsonValue& obj, const char* key, const JsonValue** out,
              std::string* error) {
  const JsonValue* v = FindMember(obj, key);
  if (v == nullptr) {
    *error = std::string("missing key \"") + key + "\"";
    return false;
  }
  if (v->kind != JsonValue::Kind::kArray) {
    *error = std::string("key \"") + key + "\": expected an array";
    return false;
  }
  *out = v;
  return true;
}

bool GetF64Array(const JsonValue& obj, const char* key, std::vector<double>* out,
                 std::string* error) {
  const JsonValue* array;
  if (!GetArray(obj, key, &array, error)) {
    return false;
  }
  out->clear();
  out->reserve(array->items.size());
  for (const JsonValue& item : array->items) {
    if (item.kind != JsonValue::Kind::kNumber || item.negative) {
      *error = std::string("key \"") + key + "\": expected unsigned bit patterns";
      return false;
    }
    out->push_back(DoubleOfBits(item.magnitude));
  }
  return true;
}

bool GetI64Array(const JsonValue& obj, const char* key, std::vector<int64_t>* out,
                 std::string* error) {
  const JsonValue* array;
  if (!GetArray(obj, key, &array, error)) {
    return false;
  }
  out->clear();
  out->reserve(array->items.size());
  for (const JsonValue& item : array->items) {
    if (item.kind != JsonValue::Kind::kNumber ||
        (!item.negative && item.magnitude > static_cast<uint64_t>(INT64_MAX)) ||
        (item.negative && item.magnitude > 9223372036854775808ULL)) {
      *error = std::string("key \"") + key + "\": expected integers";
      return false;
    }
    int64_t value = item.negative ? (item.magnitude == 9223372036854775808ULL
                                         ? INT64_MIN
                                         : -static_cast<int64_t>(item.magnitude))
                                  : static_cast<int64_t>(item.magnitude);
    out->push_back(value);
  }
  return true;
}

// --- JSON writer ---------------------------------------------------------------------------

void AppendF64(std::string& out, double v) { out += std::to_string(BitsOfDouble(v)); }

void AppendF64Array(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    AppendF64(out, values[i]);
  }
  out += ']';
}

void AppendI64Array(std::string& out, const std::vector<int64_t>& values) {
  out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(values[i]);
  }
  out += ']';
}

bool NotNan(double v) { return !std::isnan(v); }
bool FiniteValue(double v) { return std::isfinite(v); }

}  // namespace

// --- Capture -------------------------------------------------------------------------------

ClusterSnapshot CaptureSnapshot(const BlockManager& blocks, std::span<const Task> pending,
                                const AllocationMetrics& metrics, const SnapshotMeta& meta) {
  DPACK_CHECK(meta.num_shards >= 1);
  ClusterSnapshot snapshot;
  snapshot.meta = meta;
  snapshot.grid_orders = blocks.grid()->orders();
  snapshot.eps_g = blocks.eps_g();
  snapshot.delta_g = blocks.delta_g();
  snapshot.manager_epoch = blocks.epoch();

  snapshot.blocks.reserve(blocks.block_count());
  snapshot.shard_clocks.assign(static_cast<size_t>(meta.num_shards), SnapshotShardClock{});
  for (size_t j = 0; j < blocks.block_count(); ++j) {
    const PrivacyBlock& block = blocks.block(static_cast<BlockId>(j));
    SnapshotBlockState state;
    state.id = block.id();
    state.arrival_time = block.arrival_time();
    state.unlocked_fraction = block.unlocked_fraction();
    state.version = block.version();
    BlockPlacement placement = blocks.placement_of(static_cast<BlockId>(j));
    state.retired = placement.retired;
    state.slot = placement.slot;
    state.capacity = block.capacity().epsilons();
    state.consumed = block.consumed().epsilons();
    snapshot.blocks.push_back(std::move(state));
    // Derived per-shard clocks under the round-robin partition: what a freshly Sync()ed
    // ShardedBlockManager over this manager would report.
    SnapshotShardClock& clock = snapshot.shard_clocks[j % snapshot.shard_clocks.size()];
    clock.epoch += 1;
    clock.version += block.version();
  }

  snapshot.pending.reserve(pending.size());
  for (const Task& task : pending) {
    SnapshotTaskState state;
    state.id = task.id;
    state.weight = task.weight;
    state.arrival_time = task.arrival_time;
    state.timeout = task.timeout;
    state.demand = task.demand.epsilons();
    state.blocks = task.blocks;
    state.num_recent_blocks = task.num_recent_blocks;
    snapshot.pending.push_back(std::move(state));
  }

  SnapshotMetricsState& m = snapshot.metrics;
  m.submitted = metrics.submitted();
  m.allocated = metrics.allocated();
  m.evicted = metrics.evicted();
  m.submitted_weight = metrics.submitted_weight();
  m.allocated_weight = metrics.allocated_weight();
  m.submitted_fair_share = metrics.submitted_fair_share();
  m.allocated_fair_share = metrics.allocated_fair_share();
  m.delay_samples = metrics.delays().samples();
  m.cycle_runtime = metrics.cycle_runtime_seconds().state();
  return snapshot;
}

// --- Validation ----------------------------------------------------------------------------

std::string ValidateSnapshot(const ClusterSnapshot& snapshot) {
  const SnapshotMeta& meta = snapshot.meta;
  if (!FiniteValue(meta.period) || meta.period <= 0.0) {
    return "meta.period must be positive and finite";
  }
  if (meta.unlock_steps < 1) {
    return "meta.unlock_steps must be >= 1";
  }
  if (meta.fair_share_n < 0) {
    return "meta.fair_share_n must be >= 0";
  }
  if (meta.num_shards < 1) {
    return "meta.num_shards must be >= 1";
  }
  if (!FiniteValue(meta.checkpoint_time) || !FiniteValue(meta.next_cycle_time) ||
      meta.next_cycle_time < meta.checkpoint_time) {
    return "meta checkpoint/next-cycle times inconsistent";
  }
  if (snapshot.grid_orders.empty()) {
    return "grid_orders must be non-empty";
  }
  for (size_t i = 0; i < snapshot.grid_orders.size(); ++i) {
    double order = snapshot.grid_orders[i];
    if (!FiniteValue(order) || order <= 1.0 ||
        (i > 0 && order <= snapshot.grid_orders[i - 1])) {
      return "grid_orders must be finite, > 1, and strictly increasing";
    }
  }
  if (!FiniteValue(snapshot.eps_g) || !FiniteValue(snapshot.delta_g) || snapshot.eps_g <= 0.0 ||
      snapshot.delta_g <= 0.0 || snapshot.delta_g >= 1.0) {
    return "global guarantee (eps_g, delta_g) out of range";
  }
  if (snapshot.manager_epoch != snapshot.blocks.size()) {
    return "manager_epoch must equal the block count";
  }

  size_t orders = snapshot.grid_orders.size();
  std::vector<bool> hot_slot_seen;
  std::vector<bool> retired_slot_seen;
  size_t hot_total = 0;
  size_t retired_total = 0;
  for (const SnapshotBlockState& block : snapshot.blocks) {
    (block.retired ? retired_total : hot_total) += 1;
  }
  hot_slot_seen.assign(hot_total, false);
  retired_slot_seen.assign(retired_total, false);
  for (size_t j = 0; j < snapshot.blocks.size(); ++j) {
    const SnapshotBlockState& block = snapshot.blocks[j];
    if (block.id != static_cast<BlockId>(j)) {
      return "block ids must be dense and ordered";
    }
    if (!FiniteValue(block.arrival_time) || block.arrival_time < 0.0) {
      return "block arrival_time out of range";
    }
    if (!FiniteValue(block.unlocked_fraction) || block.unlocked_fraction < 0.0 ||
        block.unlocked_fraction > 1.0) {
      return "block unlocked_fraction out of [0, 1]";
    }
    if (block.capacity.size() != orders || block.consumed.size() != orders) {
      return "block curve sizes must match the grid";
    }
    for (size_t a = 0; a < orders; ++a) {
      if (!NotNan(block.capacity[a]) || block.capacity[a] < 0.0 ||
          !NotNan(block.consumed[a]) || block.consumed[a] < 0.0) {
        return "block curves must be non-negative and not NaN";
      }
    }
    // Each tier's slots must form a dense permutation (the slab layout Restore rebuilds).
    std::vector<bool>& seen = block.retired ? retired_slot_seen : hot_slot_seen;
    if (block.slot >= seen.size()) {
      return "block slot out of range for its tier";
    }
    if (seen[static_cast<size_t>(block.slot)]) {
      return "duplicate block slot within a tier";
    }
    seen[static_cast<size_t>(block.slot)] = true;
    if (block.retired) {
      // Retirement requires provable immutability: the full budget unlocked and every
      // usable order consumed to within the admission slack (PrivacyBlock::Exhausted).
      if (block.unlocked_fraction != 1.0) {
        return "retired block must be fully unlocked";
      }
      for (size_t a = 0; a < orders; ++a) {
        double cap = block.capacity[a];
        if (cap <= 0.0) {
          continue;
        }
        if (block.consumed[a] + 1e-9 * (1.0 + cap) < cap) {
          return "retired block must be exhausted";
        }
      }
    }
  }

  if (snapshot.shard_clocks.size() != static_cast<size_t>(meta.num_shards)) {
    return "shard_clocks must have num_shards entries";
  }
  std::vector<SnapshotShardClock> derived(snapshot.shard_clocks.size());
  for (size_t j = 0; j < snapshot.blocks.size(); ++j) {
    derived[j % derived.size()].epoch += 1;
    derived[j % derived.size()].version += snapshot.blocks[j].version;
  }
  for (size_t s = 0; s < derived.size(); ++s) {
    if (derived[s].epoch != snapshot.shard_clocks[s].epoch ||
        derived[s].version != snapshot.shard_clocks[s].version) {
      return "shard clocks inconsistent with block states";
    }
  }

  for (const SnapshotTaskState& task : snapshot.pending) {
    if (!FiniteValue(task.weight) || task.weight <= 0.0) {
      return "pending task weight out of range";
    }
    if (!FiniteValue(task.arrival_time) || task.arrival_time < 0.0 ||
        task.arrival_time > meta.checkpoint_time) {
      return "pending task arrival_time out of range";
    }
    if (std::isnan(task.timeout) || task.timeout < 0.0) {
      return "pending task timeout out of range";
    }
    if (task.demand.size() != orders) {
      return "pending task demand size must match the grid";
    }
    for (double eps : task.demand) {
      if (!NotNan(eps) || eps < 0.0) {
        return "pending task demand must be non-negative and not NaN";
      }
    }
    for (BlockId id : task.blocks) {
      if (id < 0 || static_cast<size_t>(id) >= snapshot.blocks.size()) {
        return "pending task references an unknown block";
      }
    }
  }

  const SnapshotMetricsState& m = snapshot.metrics;
  if (m.allocated > m.submitted || m.evicted > m.submitted - m.allocated) {
    return "metrics counts inconsistent";
  }
  if (m.submitted - m.allocated - m.evicted != snapshot.pending.size()) {
    return "metrics counts inconsistent with the pending queue";
  }
  if (m.submitted_fair_share > m.submitted || m.allocated_fair_share > m.allocated) {
    return "metrics fair-share counts inconsistent";
  }
  if (!FiniteValue(m.submitted_weight) || !FiniteValue(m.allocated_weight) ||
      m.submitted_weight < 0.0 || m.allocated_weight < 0.0) {
    return "metrics weights out of range";
  }
  if (m.delay_samples.size() != m.allocated) {
    return "metrics delay sample count must equal allocated";
  }
  for (double delay : m.delay_samples) {
    if (!FiniteValue(delay) || delay < 0.0) {
      return "metrics delay sample out of range";
    }
  }
  const RunningStat::State& rt = m.cycle_runtime;
  if (std::isnan(rt.mean) || std::isnan(rt.m2) || std::isnan(rt.min) || std::isnan(rt.max) ||
      std::isnan(rt.sum) || rt.m2 < 0.0 || (rt.count > 0 && rt.min > rt.max)) {
    return "metrics cycle-runtime accumulator inconsistent";
  }
  return "";
}

// --- Binary codec --------------------------------------------------------------------------

namespace {

// The canonical payload bytes both wire formats hash: the binary codec frames them
// directly; the JSON codec re-derives them from the parsed fields to verify its own
// checksum, so field tampering in either encoding is caught even though JSON carries no
// raw byte stream.
std::string EncodePayload(const ClusterSnapshot& snapshot) {
  BinaryWriter payload;
  const SnapshotMeta& meta = snapshot.meta;
  payload.U64(meta.cycles_completed);
  payload.F64(meta.checkpoint_time);
  payload.F64(meta.next_cycle_time);
  payload.F64(meta.period);
  payload.I64(meta.unlock_steps);
  payload.I64(meta.fair_share_n);
  payload.U64(meta.num_shards);
  payload.U8(meta.async ? 1 : 0);

  payload.F64Vec(snapshot.grid_orders);
  payload.F64(snapshot.eps_g);
  payload.F64(snapshot.delta_g);
  payload.U64(snapshot.manager_epoch);

  payload.U64(snapshot.blocks.size());
  for (const SnapshotBlockState& block : snapshot.blocks) {
    payload.I64(block.id);
    payload.F64(block.arrival_time);
    payload.F64(block.unlocked_fraction);
    payload.U64(block.version);
    payload.U8(block.retired ? 1 : 0);
    payload.U64(block.slot);
    payload.F64Vec(block.capacity);
    payload.F64Vec(block.consumed);
  }

  payload.U64(snapshot.shard_clocks.size());
  for (const SnapshotShardClock& clock : snapshot.shard_clocks) {
    payload.U64(clock.epoch);
    payload.U64(clock.version);
  }

  payload.U64(snapshot.pending.size());
  for (const SnapshotTaskState& task : snapshot.pending) {
    payload.I64(task.id);
    payload.F64(task.weight);
    payload.F64(task.arrival_time);
    payload.F64(task.timeout);
    payload.F64Vec(task.demand);
    payload.I64Vec(task.blocks);
    payload.U64(task.num_recent_blocks);
  }

  const SnapshotMetricsState& m = snapshot.metrics;
  payload.U64(m.submitted);
  payload.U64(m.allocated);
  payload.U64(m.evicted);
  payload.F64(m.submitted_weight);
  payload.F64(m.allocated_weight);
  payload.U64(m.submitted_fair_share);
  payload.U64(m.allocated_fair_share);
  payload.F64Vec(m.delay_samples);
  payload.U64(m.cycle_runtime.count);
  payload.F64(m.cycle_runtime.mean);
  payload.F64(m.cycle_runtime.m2);
  payload.F64(m.cycle_runtime.min);
  payload.F64(m.cycle_runtime.max);
  payload.F64(m.cycle_runtime.sum);
  return std::move(payload.data());
}

}  // namespace

std::string EncodeSnapshotBinary(const ClusterSnapshot& snapshot) {
  std::string payload = EncodePayload(snapshot);
  BinaryWriter out;
  out.data().append(kBinaryMagic, sizeof(kBinaryMagic));
  out.U32(kSnapshotFormatVersion);
  out.U64(payload.size());
  out.data() += payload;
  out.U64(Fnv1a64(payload));
  return std::move(out.data());
}

SnapshotParseResult DecodeSnapshotBinary(std::string_view bytes) {
  SnapshotParseResult result;
  constexpr size_t kHeaderBytes = sizeof(kBinaryMagic) + 4 + 8;
  if (bytes.size() < kHeaderBytes + 8) {
    result.error = "snapshot too short for header";
    return result;
  }
  if (std::memcmp(bytes.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    result.error = "bad snapshot magic";
    return result;
  }
  BinaryReader header(bytes.substr(sizeof(kBinaryMagic)));
  uint32_t version = 0;
  uint64_t payload_size = 0;
  if (!header.U32(&version, "format version") || !header.U64(&payload_size, "payload size")) {
    result.error = header.error();
    return result;
  }
  if (version != kSnapshotFormatVersion) {
    std::ostringstream os;
    os << "unsupported snapshot format version " << version << " (expected "
       << kSnapshotFormatVersion << ")";
    result.error = os.str();
    return result;
  }
  if (payload_size != bytes.size() - kHeaderBytes - 8) {
    result.error = "payload size does not match the input length";
    return result;
  }
  std::string_view payload = bytes.substr(kHeaderBytes, static_cast<size_t>(payload_size));
  BinaryReader checksum_reader(bytes.substr(kHeaderBytes + static_cast<size_t>(payload_size)));
  uint64_t stored_checksum = 0;
  if (!checksum_reader.U64(&stored_checksum, "checksum")) {
    result.error = checksum_reader.error();
    return result;
  }
  if (Fnv1a64(payload) != stored_checksum) {
    result.error = "snapshot checksum mismatch (corrupted payload)";
    return result;
  }

  BinaryReader r(payload);
  ClusterSnapshot& s = result.snapshot;
  uint8_t async = 0;
  bool ok = r.U64(&s.meta.cycles_completed, "meta.cycles_completed") &&
            r.F64(&s.meta.checkpoint_time, "meta.checkpoint_time") &&
            r.F64(&s.meta.next_cycle_time, "meta.next_cycle_time") &&
            r.F64(&s.meta.period, "meta.period") &&
            r.I64(&s.meta.unlock_steps, "meta.unlock_steps") &&
            r.I64(&s.meta.fair_share_n, "meta.fair_share_n") &&
            r.U64(&s.meta.num_shards, "meta.num_shards") && r.U8(&async, "meta.async") &&
            r.F64Vec(&s.grid_orders, "grid_orders") && r.F64(&s.eps_g, "eps_g") &&
            r.F64(&s.delta_g, "delta_g") && r.U64(&s.manager_epoch, "manager_epoch");
  if (ok && async > 1) {
    result.error = "meta.async must be 0 or 1";
    return result;
  }
  s.meta.async = async == 1;

  uint64_t count = 0;
  if (ok && (ok = r.Count(&count, 8 * 6 + 9, "block count"))) {
    s.blocks.resize(static_cast<size_t>(count));
    for (SnapshotBlockState& block : s.blocks) {
      uint8_t retired = 0;
      ok = r.I64(&block.id, "block.id") && r.F64(&block.arrival_time, "block.arrival_time") &&
           r.F64(&block.unlocked_fraction, "block.unlocked_fraction") &&
           r.U64(&block.version, "block.version") && r.U8(&retired, "block.retired") &&
           r.U64(&block.slot, "block.slot") && r.F64Vec(&block.capacity, "block.capacity") &&
           r.F64Vec(&block.consumed, "block.consumed");
      if (!ok) {
        break;
      }
      if (retired > 1) {
        result.error = "block.retired must be 0 or 1";
        return result;
      }
      block.retired = retired == 1;
    }
  }
  if (ok && (ok = r.Count(&count, 8 * 2, "shard clock count"))) {
    s.shard_clocks.resize(static_cast<size_t>(count));
    for (SnapshotShardClock& clock : s.shard_clocks) {
      ok = r.U64(&clock.epoch, "shard.epoch") && r.U64(&clock.version, "shard.version");
      if (!ok) {
        break;
      }
    }
  }
  if (ok && (ok = r.Count(&count, 8 * 7, "pending task count"))) {
    s.pending.resize(static_cast<size_t>(count));
    for (SnapshotTaskState& task : s.pending) {
      ok = r.I64(&task.id, "task.id") && r.F64(&task.weight, "task.weight") &&
           r.F64(&task.arrival_time, "task.arrival_time") &&
           r.F64(&task.timeout, "task.timeout") && r.F64Vec(&task.demand, "task.demand") &&
           r.I64Vec(&task.blocks, "task.blocks") &&
           r.U64(&task.num_recent_blocks, "task.num_recent_blocks");
      if (!ok) {
        break;
      }
    }
  }
  if (ok) {
    SnapshotMetricsState& m = s.metrics;
    ok = r.U64(&m.submitted, "metrics.submitted") && r.U64(&m.allocated, "metrics.allocated") &&
         r.U64(&m.evicted, "metrics.evicted") &&
         r.F64(&m.submitted_weight, "metrics.submitted_weight") &&
         r.F64(&m.allocated_weight, "metrics.allocated_weight") &&
         r.U64(&m.submitted_fair_share, "metrics.submitted_fair_share") &&
         r.U64(&m.allocated_fair_share, "metrics.allocated_fair_share") &&
         r.F64Vec(&m.delay_samples, "metrics.delay_samples") &&
         r.U64(&m.cycle_runtime.count, "metrics.cycle_runtime.count") &&
         r.F64(&m.cycle_runtime.mean, "metrics.cycle_runtime.mean") &&
         r.F64(&m.cycle_runtime.m2, "metrics.cycle_runtime.m2") &&
         r.F64(&m.cycle_runtime.min, "metrics.cycle_runtime.min") &&
         r.F64(&m.cycle_runtime.max, "metrics.cycle_runtime.max") &&
         r.F64(&m.cycle_runtime.sum, "metrics.cycle_runtime.sum");
  }
  if (!ok) {
    result.error = r.error().empty() ? "malformed snapshot payload" : r.error();
    return result;
  }
  if (r.remaining() != 0) {
    result.error = "trailing bytes after the snapshot payload";
    return result;
  }
  std::string validation = ValidateSnapshot(s);
  if (!validation.empty()) {
    result.error = "snapshot failed validation: " + validation;
    return result;
  }
  result.ok = true;
  return result;
}

// --- JSON codec ----------------------------------------------------------------------------

std::string EncodeSnapshotJson(const ClusterSnapshot& snapshot) {
  const SnapshotMeta& meta = snapshot.meta;
  std::string out;
  out.reserve(1024 + 64 * (snapshot.blocks.size() + snapshot.pending.size()));
  out += "{\"format\":\"";
  out += kJsonFormatTag;
  out += "\",\"version\":";
  out += std::to_string(kSnapshotFormatVersion);
  out += ",\"meta\":{\"cycles_completed\":";
  out += std::to_string(meta.cycles_completed);
  out += ",\"checkpoint_time\":";
  AppendF64(out, meta.checkpoint_time);
  out += ",\"next_cycle_time\":";
  AppendF64(out, meta.next_cycle_time);
  out += ",\"period\":";
  AppendF64(out, meta.period);
  out += ",\"unlock_steps\":";
  out += std::to_string(meta.unlock_steps);
  out += ",\"fair_share_n\":";
  out += std::to_string(meta.fair_share_n);
  out += ",\"num_shards\":";
  out += std::to_string(meta.num_shards);
  out += ",\"async\":";
  out += meta.async ? "true" : "false";
  out += "},\"grid_orders\":";
  AppendF64Array(out, snapshot.grid_orders);
  out += ",\"eps_g\":";
  AppendF64(out, snapshot.eps_g);
  out += ",\"delta_g\":";
  AppendF64(out, snapshot.delta_g);
  out += ",\"manager_epoch\":";
  out += std::to_string(snapshot.manager_epoch);
  out += ",\"blocks\":[";
  for (size_t j = 0; j < snapshot.blocks.size(); ++j) {
    const SnapshotBlockState& block = snapshot.blocks[j];
    if (j > 0) {
      out += ',';
    }
    out += "{\"id\":";
    out += std::to_string(block.id);
    out += ",\"arrival_time\":";
    AppendF64(out, block.arrival_time);
    out += ",\"unlocked_fraction\":";
    AppendF64(out, block.unlocked_fraction);
    out += ",\"version\":";
    out += std::to_string(block.version);
    out += ",\"retired\":";
    out += block.retired ? "true" : "false";
    out += ",\"slot\":";
    out += std::to_string(block.slot);
    out += ",\"capacity\":";
    AppendF64Array(out, block.capacity);
    out += ",\"consumed\":";
    AppendF64Array(out, block.consumed);
    out += '}';
  }
  out += "],\"shard_clocks\":[";
  for (size_t s = 0; s < snapshot.shard_clocks.size(); ++s) {
    if (s > 0) {
      out += ',';
    }
    out += "{\"epoch\":";
    out += std::to_string(snapshot.shard_clocks[s].epoch);
    out += ",\"version\":";
    out += std::to_string(snapshot.shard_clocks[s].version);
    out += '}';
  }
  out += "],\"pending\":[";
  for (size_t i = 0; i < snapshot.pending.size(); ++i) {
    const SnapshotTaskState& task = snapshot.pending[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"id\":";
    out += std::to_string(task.id);
    out += ",\"weight\":";
    AppendF64(out, task.weight);
    out += ",\"arrival_time\":";
    AppendF64(out, task.arrival_time);
    out += ",\"timeout\":";
    AppendF64(out, task.timeout);
    out += ",\"demand\":";
    AppendF64Array(out, task.demand);
    out += ",\"blocks\":";
    AppendI64Array(out, task.blocks);
    out += ",\"num_recent_blocks\":";
    out += std::to_string(task.num_recent_blocks);
    out += '}';
  }
  const SnapshotMetricsState& m = snapshot.metrics;
  out += "],\"metrics\":{\"submitted\":";
  out += std::to_string(m.submitted);
  out += ",\"allocated\":";
  out += std::to_string(m.allocated);
  out += ",\"evicted\":";
  out += std::to_string(m.evicted);
  out += ",\"submitted_weight\":";
  AppendF64(out, m.submitted_weight);
  out += ",\"allocated_weight\":";
  AppendF64(out, m.allocated_weight);
  out += ",\"submitted_fair_share\":";
  out += std::to_string(m.submitted_fair_share);
  out += ",\"allocated_fair_share\":";
  out += std::to_string(m.allocated_fair_share);
  out += ",\"delay_samples\":";
  AppendF64Array(out, m.delay_samples);
  out += ",\"cycle_runtime\":{\"count\":";
  out += std::to_string(m.cycle_runtime.count);
  out += ",\"mean\":";
  AppendF64(out, m.cycle_runtime.mean);
  out += ",\"m2\":";
  AppendF64(out, m.cycle_runtime.m2);
  out += ",\"min\":";
  AppendF64(out, m.cycle_runtime.min);
  out += ",\"max\":";
  AppendF64(out, m.cycle_runtime.max);
  out += ",\"sum\":";
  AppendF64(out, m.cycle_runtime.sum);
  out += "}},\"checksum\":";
  out += std::to_string(Fnv1a64(EncodePayload(snapshot)));
  out += '}';
  return out;
}

SnapshotParseResult DecodeSnapshotJson(std::string_view text) {
  SnapshotParseResult result;
  JsonValue root;
  JsonParser parser(text);
  if (!parser.Parse(&root)) {
    result.error = parser.error();
    return result;
  }
  std::string& error = result.error;
  if (!ExpectObject(root, "snapshot", &error) ||
      !CheckOnlyKeys(root,
                     {"format", "version", "meta", "grid_orders", "eps_g", "delta_g",
                      "manager_epoch", "blocks", "shard_clocks", "pending", "metrics",
                      "checksum"},
                     "snapshot", &error)) {
    return result;
  }

  const JsonValue* format = FindMember(root, "format");
  if (format == nullptr || format->kind != JsonValue::Kind::kString ||
      format->text != kJsonFormatTag) {
    error = "missing or wrong \"format\" tag";
    return result;
  }
  uint64_t version = 0;
  if (!GetU64(root, "version", &version, &error)) {
    return result;
  }
  if (version != kSnapshotFormatVersion) {
    std::ostringstream os;
    os << "unsupported snapshot format version " << version << " (expected "
       << kSnapshotFormatVersion << ")";
    error = os.str();
    return result;
  }

  ClusterSnapshot& s = result.snapshot;
  const JsonValue* meta = FindMember(root, "meta");
  if (meta == nullptr || !ExpectObject(*meta, "meta", &error) ||
      !CheckOnlyKeys(*meta,
                     {"cycles_completed", "checkpoint_time", "next_cycle_time", "period",
                      "unlock_steps", "fair_share_n", "num_shards", "async"},
                     "meta", &error) ||
      !GetU64(*meta, "cycles_completed", &s.meta.cycles_completed, &error) ||
      !GetF64(*meta, "checkpoint_time", &s.meta.checkpoint_time, &error) ||
      !GetF64(*meta, "next_cycle_time", &s.meta.next_cycle_time, &error) ||
      !GetF64(*meta, "period", &s.meta.period, &error) ||
      !GetI64(*meta, "unlock_steps", &s.meta.unlock_steps, &error) ||
      !GetI64(*meta, "fair_share_n", &s.meta.fair_share_n, &error) ||
      !GetU64(*meta, "num_shards", &s.meta.num_shards, &error) ||
      !GetBool(*meta, "async", &s.meta.async, &error)) {
    return result;
  }

  if (!GetF64Array(root, "grid_orders", &s.grid_orders, &error) ||
      !GetF64(root, "eps_g", &s.eps_g, &error) ||
      !GetF64(root, "delta_g", &s.delta_g, &error) ||
      !GetU64(root, "manager_epoch", &s.manager_epoch, &error)) {
    return result;
  }

  const JsonValue* blocks;
  if (!GetArray(root, "blocks", &blocks, &error)) {
    return result;
  }
  s.blocks.resize(blocks->items.size());
  for (size_t j = 0; j < blocks->items.size(); ++j) {
    const JsonValue& item = blocks->items[j];
    SnapshotBlockState& block = s.blocks[j];
    if (!ExpectObject(item, "block", &error) ||
        !CheckOnlyKeys(item,
                       {"id", "arrival_time", "unlocked_fraction", "version", "retired",
                        "slot", "capacity", "consumed"},
                       "block", &error) ||
        !GetI64(item, "id", &block.id, &error) ||
        !GetF64(item, "arrival_time", &block.arrival_time, &error) ||
        !GetF64(item, "unlocked_fraction", &block.unlocked_fraction, &error) ||
        !GetU64(item, "version", &block.version, &error) ||
        !GetBool(item, "retired", &block.retired, &error) ||
        !GetU64(item, "slot", &block.slot, &error) ||
        !GetF64Array(item, "capacity", &block.capacity, &error) ||
        !GetF64Array(item, "consumed", &block.consumed, &error)) {
      return result;
    }
  }

  const JsonValue* clocks;
  if (!GetArray(root, "shard_clocks", &clocks, &error)) {
    return result;
  }
  s.shard_clocks.resize(clocks->items.size());
  for (size_t c = 0; c < clocks->items.size(); ++c) {
    const JsonValue& item = clocks->items[c];
    if (!ExpectObject(item, "shard clock", &error) ||
        !CheckOnlyKeys(item, {"epoch", "version"}, "shard clock", &error) ||
        !GetU64(item, "epoch", &s.shard_clocks[c].epoch, &error) ||
        !GetU64(item, "version", &s.shard_clocks[c].version, &error)) {
      return result;
    }
  }

  const JsonValue* pending;
  if (!GetArray(root, "pending", &pending, &error)) {
    return result;
  }
  s.pending.resize(pending->items.size());
  for (size_t i = 0; i < pending->items.size(); ++i) {
    const JsonValue& item = pending->items[i];
    SnapshotTaskState& task = s.pending[i];
    if (!ExpectObject(item, "pending task", &error) ||
        !CheckOnlyKeys(item,
                       {"id", "weight", "arrival_time", "timeout", "demand", "blocks",
                        "num_recent_blocks"},
                       "pending task", &error) ||
        !GetI64(item, "id", &task.id, &error) ||
        !GetF64(item, "weight", &task.weight, &error) ||
        !GetF64(item, "arrival_time", &task.arrival_time, &error) ||
        !GetF64(item, "timeout", &task.timeout, &error) ||
        !GetF64Array(item, "demand", &task.demand, &error) ||
        !GetI64Array(item, "blocks", &task.blocks, &error) ||
        !GetU64(item, "num_recent_blocks", &task.num_recent_blocks, &error)) {
      return result;
    }
  }

  const JsonValue* metrics = FindMember(root, "metrics");
  SnapshotMetricsState& m = s.metrics;
  if (metrics == nullptr || !ExpectObject(*metrics, "metrics", &error) ||
      !CheckOnlyKeys(*metrics,
                     {"submitted", "allocated", "evicted", "submitted_weight",
                      "allocated_weight", "submitted_fair_share", "allocated_fair_share",
                      "delay_samples", "cycle_runtime"},
                     "metrics", &error) ||
      !GetU64(*metrics, "submitted", &m.submitted, &error) ||
      !GetU64(*metrics, "allocated", &m.allocated, &error) ||
      !GetU64(*metrics, "evicted", &m.evicted, &error) ||
      !GetF64(*metrics, "submitted_weight", &m.submitted_weight, &error) ||
      !GetF64(*metrics, "allocated_weight", &m.allocated_weight, &error) ||
      !GetU64(*metrics, "submitted_fair_share", &m.submitted_fair_share, &error) ||
      !GetU64(*metrics, "allocated_fair_share", &m.allocated_fair_share, &error) ||
      !GetF64Array(*metrics, "delay_samples", &m.delay_samples, &error)) {
    return result;
  }
  const JsonValue* runtime = FindMember(*metrics, "cycle_runtime");
  uint64_t runtime_count = 0;
  if (runtime == nullptr || !ExpectObject(*runtime, "cycle_runtime", &error) ||
      !CheckOnlyKeys(*runtime, {"count", "mean", "m2", "min", "max", "sum"}, "cycle_runtime",
                     &error) ||
      !GetU64(*runtime, "count", &runtime_count, &error) ||
      !GetF64(*runtime, "mean", &m.cycle_runtime.mean, &error) ||
      !GetF64(*runtime, "m2", &m.cycle_runtime.m2, &error) ||
      !GetF64(*runtime, "min", &m.cycle_runtime.min, &error) ||
      !GetF64(*runtime, "max", &m.cycle_runtime.max, &error) ||
      !GetF64(*runtime, "sum", &m.cycle_runtime.sum, &error)) {
    return result;
  }
  m.cycle_runtime.count = static_cast<size_t>(runtime_count);

  uint64_t checksum = 0;
  if (!GetU64(root, "checksum", &checksum, &error)) {
    return result;
  }
  if (checksum != Fnv1a64(EncodePayload(s))) {
    error = "snapshot checksum mismatch (corrupted or edited fields)";
    return result;
  }

  std::string validation = ValidateSnapshot(s);
  if (!validation.empty()) {
    error = "snapshot failed validation: " + validation;
    return result;
  }
  result.ok = true;
  return result;
}

SnapshotParseResult DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() >= sizeof(kBinaryMagic) &&
      std::memcmp(bytes.data(), kBinaryMagic, sizeof(kBinaryMagic)) == 0) {
    return DecodeSnapshotBinary(bytes);
  }
  size_t first = bytes.find_first_not_of(" \t\r\n");
  if (first != std::string_view::npos && bytes[first] == '{') {
    return DecodeSnapshotJson(bytes);
  }
  SnapshotParseResult result;
  result.error = "unrecognized snapshot encoding (neither binary magic nor JSON object)";
  return result;
}

// --- Restore -------------------------------------------------------------------------------

namespace {

AlphaGridPtr GridForSnapshot(const ClusterSnapshot& snapshot, AlphaGridPtr grid) {
  if (grid == nullptr) {
    return AlphaGrid::Create(snapshot.grid_orders);
  }
  DPACK_CHECK_MSG(grid->orders() == snapshot.grid_orders,
                  "restore grid does not match the snapshot's orders");
  return grid;
}

}  // namespace

BlockManager RestoreBlockManager(const ClusterSnapshot& snapshot, AlphaGridPtr grid) {
  std::string validation = ValidateSnapshot(snapshot);
  DPACK_CHECK_MSG(validation.empty(), "RestoreBlockManager on an invalid snapshot: "
                                          << validation);
  grid = GridForSnapshot(snapshot, std::move(grid));
  std::vector<PrivacyBlock> blocks;
  blocks.reserve(snapshot.blocks.size());
  std::vector<BlockPlacement> placements;
  placements.reserve(snapshot.blocks.size());
  for (const SnapshotBlockState& state : snapshot.blocks) {
    blocks.push_back(PrivacyBlock::Restore(state.id, RdpCurve(grid, state.capacity),
                                           state.arrival_time, state.unlocked_fraction,
                                           RdpCurve(grid, state.consumed), state.version));
    placements.push_back({state.retired, state.slot});
  }
  return BlockManager::Restore(std::move(grid), snapshot.eps_g, snapshot.delta_g,
                               snapshot.manager_epoch, std::move(blocks),
                               std::move(placements));
}

std::vector<Task> RestorePendingTasks(const ClusterSnapshot& snapshot, AlphaGridPtr grid) {
  std::string validation = ValidateSnapshot(snapshot);
  DPACK_CHECK_MSG(validation.empty(), "RestorePendingTasks on an invalid snapshot: "
                                          << validation);
  grid = GridForSnapshot(snapshot, std::move(grid));
  std::vector<Task> pending;
  pending.reserve(snapshot.pending.size());
  for (const SnapshotTaskState& state : snapshot.pending) {
    Task task(state.id, state.weight, RdpCurve(grid, state.demand));
    task.arrival_time = state.arrival_time;
    task.timeout = state.timeout;
    task.blocks = state.blocks;
    task.num_recent_blocks = static_cast<size_t>(state.num_recent_blocks);
    pending.push_back(std::move(task));
  }
  return pending;
}

AllocationMetrics RestoreMetrics(const SnapshotMetricsState& state) {
  return AllocationMetrics::Restore(
      static_cast<size_t>(state.submitted), static_cast<size_t>(state.allocated),
      static_cast<size_t>(state.evicted), state.submitted_weight, state.allocated_weight,
      static_cast<size_t>(state.submitted_fair_share),
      static_cast<size_t>(state.allocated_fair_share), state.delay_samples,
      state.cycle_runtime);
}

}  // namespace dpack
