// Checkpoint/recovery subsystem: a versioned snapshot codec for the full cluster state.
//
// The paper's PrivateKube deployment (§6.4) persists claims and privacy blocks in the
// Kubernetes API server, so the scheduler can crash and resume without violating the global
// privacy guarantee. `ClusterSnapshot` is our equivalent of that durable state: every
// privacy block's per-order consumed budget, unlock progress, arrival time, and monotonic
// version; the block manager's arrival epoch; the derived per-shard (epoch, version) clocks
// of the sharded partition; the pending task queue in arrival order; and the cumulative
// allocation metrics.
//
// Recovery invariant (pinned by tests/orchestrator/recovery_test.cc): restoring a snapshot
// rebuilds a byte-identical BlockManager — same epoch, same per-block versions, bit-equal
// capacity/consumed curves — and re-seeds the online driver with the captured queue and
// metrics. The scheduling engines start cold (their caches are process state, not cluster
// state), but every score is a pure function of the bit-identical snapshot state, so the
// first post-restore cycle — and every one after it — grants exactly what the uninterrupted
// run would have granted.
//
// Two wire encodings share one schema version:
//   - binary (authoritative): fixed-width little-endian fields, doubles as raw IEEE-754
//     bits, guarded by a magic tag, a format version, a payload length, and an FNV-1a
//     checksum. Truncated, bit-flipped, or wrong-version inputs are rejected with a
//     diagnostic, never a crash or a silently-wrong budget.
//   - JSON (debuggable, diffable): the same fields with doubles encoded as their 64-bit
//     IEEE-754 bit patterns in decimal — lossless, and parseable without any float
//     grammar. Strict: unknown or missing keys are errors.
//
// Both decoders run the same structural validation (`ValidateSnapshot`) before returning.

#ifndef SRC_ORCHESTRATOR_CHECKPOINT_H_
#define SRC_ORCHESTRATOR_CHECKPOINT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/block/block_manager.h"
#include "src/common/stats.h"
#include "src/core/metrics.h"
#include "src/core/task.h"
#include "src/rdp/alpha_grid.h"

namespace dpack {

// Bump on any schema change; decoders reject other versions.
// v2: per-block slab placement (retired tier + dense slot), added with block retirement.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

// One privacy block's durable state. `capacity` / `consumed` are per-order epsilons on the
// snapshot's grid. `retired` / `slot` are the block's slab placement (see
// src/block/block_manager.h): each tier's slots form a dense permutation, validated by
// ValidateSnapshot, and a retired block must be provably immutable (fully unlocked and
// exhausted) — restoring reproduces the exact hot/retired layout.
struct SnapshotBlockState {
  BlockId id = 0;
  double arrival_time = 0.0;
  double unlocked_fraction = 1.0;
  uint64_t version = 0;
  bool retired = false;
  uint64_t slot = 0;
  std::vector<double> capacity;
  std::vector<double> consumed;
};

// One pending task, exactly as queued (arrival order is the vector order).
struct SnapshotTaskState {
  TaskId id = 0;
  double weight = 1.0;
  double arrival_time = 0.0;
  double timeout = 0.0;  // +inf = never evicted, as in Task.
  std::vector<double> demand;
  std::vector<BlockId> blocks;
  uint64_t num_recent_blocks = 0;
};

// The derived clock of one shard of the round-robin partition (see
// src/block/sharded_block_manager.h): epoch = member count, version = sum of member block
// versions. Recomputable from the block states; stored so decoders can cross-check the two
// and reject snapshots whose block section was corrupted without tripping the checksum
// (e.g. a hand-edited JSON snapshot).
struct SnapshotShardClock {
  uint64_t epoch = 0;
  uint64_t version = 0;
};

// Cumulative AllocationMetrics state. Delays are the raw sample vector; the cycle-runtime
// accumulator is captured field-exact (Welford state is order-sensitive).
struct SnapshotMetricsState {
  uint64_t submitted = 0;
  uint64_t allocated = 0;
  uint64_t evicted = 0;
  double submitted_weight = 0.0;
  double allocated_weight = 0.0;
  uint64_t submitted_fair_share = 0;
  uint64_t allocated_fair_share = 0;
  std::vector<double> delay_samples;
  RunningStat::State cycle_runtime;
};

// Where in the run the snapshot was taken, plus the scheduling configuration the state is
// only meaningful under (validated against the resuming run's config).
struct SnapshotMeta {
  uint64_t cycles_completed = 0;   // Scheduling cycles fully executed before the capture.
  double checkpoint_time = 0.0;    // Virtual time of the capture; arrivals <= this are in.
  double next_cycle_time = 0.0;    // Exact instant of the first cycle still to run.
  double period = 1.0;
  int64_t unlock_steps = 1;
  int64_t fair_share_n = 0;
  uint64_t num_shards = 1;         // Engine shape at capture (1 = single-shard).
  bool async = false;
};

struct ClusterSnapshot {
  SnapshotMeta meta;
  // Block-manager identity: the alpha grid and the global guarantee blocks derive from.
  std::vector<double> grid_orders;
  double eps_g = 0.0;
  double delta_g = 0.0;
  uint64_t manager_epoch = 0;
  std::vector<SnapshotBlockState> blocks;
  std::vector<SnapshotShardClock> shard_clocks;  // meta.num_shards entries.
  std::vector<SnapshotTaskState> pending;
  SnapshotMetricsState metrics;
};

// Result of decoding: on failure `ok` is false and `error` names the offending field or
// corruption; `snapshot` is only meaningful when `ok`.
struct SnapshotParseResult {
  bool ok = false;
  std::string error;
  ClusterSnapshot snapshot;
};

// --- Capture ------------------------------------------------------------------------------

// Snapshots the cluster state: `blocks` (all block state + epoch + grid + guarantee),
// `pending` (the online driver's queue, in order), `metrics`, and `meta`. The per-shard
// clocks are derived from the block states under the round-robin partition with
// meta.num_shards shards — equal to what a freshly Sync()ed ShardedBlockManager would
// report, which is exactly the state a cold restored engine rebuilds.
ClusterSnapshot CaptureSnapshot(const BlockManager& blocks, std::span<const Task> pending,
                                const AllocationMetrics& metrics, const SnapshotMeta& meta);

// --- Codecs -------------------------------------------------------------------------------

std::string EncodeSnapshotBinary(const ClusterSnapshot& snapshot);
SnapshotParseResult DecodeSnapshotBinary(std::string_view bytes);

std::string EncodeSnapshotJson(const ClusterSnapshot& snapshot);
SnapshotParseResult DecodeSnapshotJson(std::string_view text);

// Dispatches on the leading bytes (binary magic vs '{').
SnapshotParseResult DecodeSnapshot(std::string_view bytes);

// Structural validation shared by both decoders: dense ordered block ids, curve sizes
// matching the grid, fractions in range, no NaNs where semantics forbid them, shard clocks
// consistent with the block states, metrics internally consistent. Returns "" when valid,
// else a diagnostic. Public so hand-built snapshots (tests, tools) can be checked too.
std::string ValidateSnapshot(const ClusterSnapshot& snapshot);

// --- Restore ------------------------------------------------------------------------------

// Rebuilds the byte-identical block manager. `grid` must match the snapshot's orders; pass
// nullptr to create a grid from them. The snapshot must have passed ValidateSnapshot
// (decoders guarantee this; DPACK_CHECKs back the contract for hand-built snapshots).
BlockManager RestoreBlockManager(const ClusterSnapshot& snapshot, AlphaGridPtr grid = nullptr);

// Rebuilds the pending queue on `grid` (same contract as RestoreBlockManager).
std::vector<Task> RestorePendingTasks(const ClusterSnapshot& snapshot,
                                      AlphaGridPtr grid = nullptr);

// Rebuilds the cumulative metrics accumulator.
AllocationMetrics RestoreMetrics(const SnapshotMetricsState& state);

}  // namespace dpack

#endif  // SRC_ORCHESTRATOR_CHECKPOINT_H_
