#include "src/orchestrator/state_store.h"

#include <chrono>
#include <thread>

#include "src/common/check.h"

namespace dpack {

SimulatedStateStore::SimulatedStateStore(double latency_us) : latency_us_(latency_us) {
  DPACK_CHECK(latency_us >= 0.0);
}

void SimulatedStateStore::RoundTrip(uint64_t ops) {
  operations_.fetch_add(ops, std::memory_order_relaxed);
  if (latency_us_ <= 0.0 || ops == 0) {
    return;
  }
  auto total = std::chrono::duration<double, std::micro>(latency_us_ * static_cast<double>(ops));
  std::this_thread::sleep_for(total);
}

}  // namespace dpack
