#include "src/orchestrator/state_store.h"

#include <chrono>
#include <thread>

#include "src/common/check.h"

namespace dpack {

SimulatedStateStore::SimulatedStateStore(double latency_us) : latency_us_(latency_us) {
  DPACK_CHECK(latency_us >= 0.0);
}

void SimulatedStateStore::RoundTrip(uint64_t ops) {
  operations_.fetch_add(ops, std::memory_order_relaxed);
  if (latency_us_ <= 0.0 || ops == 0) {
    return;
  }
  auto total = std::chrono::duration<double, std::micro>(latency_us_ * static_cast<double>(ops));
  std::this_thread::sleep_for(total);
}

void SimulatedStateStore::Put(const std::string& key, std::string value) {
  uint64_t size = static_cast<uint64_t>(value.size());
  uint64_t chunks = size == 0 ? 1 : (size + kPutChunkBytes - 1) / kPutChunkBytes;
  bytes_written_.fetch_add(size, std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    values_[key] = std::move(value);
  }
  RoundTrip(chunks);
}

std::optional<std::string> SimulatedStateStore::Get(const std::string& key) {
  RoundTrip(1);
  MutexLock lock(mu_);
  auto it = values_.find(key);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace dpack
