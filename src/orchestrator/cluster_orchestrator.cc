#include "src/orchestrator/cluster_orchestrator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <thread>

#include "src/common/check.h"
#include "src/common/log.h"

namespace dpack {

namespace {

AlphaGridPtr GridOrDefault(const OrchestratorConfig& config) {
  return config.grid != nullptr ? config.grid : AlphaGrid::Default();
}

}  // namespace

ClusterOrchestrator::ClusterOrchestrator(std::unique_ptr<Scheduler> scheduler,
                                         OrchestratorConfig config)
    : config_(std::move(config)), scheduler_(std::move(scheduler)) {
  DPACK_CHECK(scheduler_ != nullptr);
  DPACK_CHECK(config_.period > 0.0);
  DPACK_CHECK(config_.unlock_steps >= 1);
  DPACK_CHECK(config_.offline_blocks + config_.online_blocks > 0);
}

OrchestratorRunResult ClusterOrchestrator::RunOfflinePass(std::vector<Task> tasks) {
  DPACK_CHECK_MSG(scheduler_ != nullptr, "orchestrator scheduler missing (mid-run reentry?)");
  auto run_start = std::chrono::steady_clock::now();
  SimulatedStateStore store(config_.store_latency_us);
  BlockManager blocks(GridOrDefault(config_), config_.eps_g, config_.delta_g);
  size_t total_blocks = config_.offline_blocks + config_.online_blocks;
  for (size_t b = 0; b < total_blocks; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }

  OnlineSchedulerConfig online_config;
  online_config.period = config_.period;
  online_config.unlock_steps = 1;  // Offline: everything unlocked.
  online_config.num_shards = config_.num_shards;
  online_config.async = config_.async;
  OnlineScheduler online(std::move(scheduler_), &blocks, online_config);
  ScheduleContextStats stats_at_entry;
  if (const ScheduleContextStats* stats = online.context_stats()) {
    stats_at_entry = *stats;
  }

  // Client side: claim creation traffic (not charged to scheduler runtime).
  for (Task& task : tasks) {
    store.RoundTrip(1);
    online.Submit(std::move(task));
  }

  // One scheduling pass, timed with its state-store traffic.
  auto start = std::chrono::steady_clock::now();
  store.RoundTrip(config_.store_ops_per_cycle);
  size_t granted = online.RunCycle(0.0);
  store.RoundTrip(config_.store_ops_per_task * granted);
  double pass_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  OrchestratorRunResult result;
  result.metrics = online.metrics();
  result.metrics.RecordCycleRuntime(pass_seconds);  // Full pass incl. store traffic.
  if (const ScheduleContextStats* stats = online.context_stats()) {
    result.scheduler_stats = stats->Delta(stats_at_entry);
  }
  result.store_operations = store.operations();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start).count();
  result.cycles = 1;
  // Take the scheduler back so a later Run* call does not dereference a moved-from
  // scheduler; its engine caches (bound to this run's manager) are invalidated.
  scheduler_ = online.ReleaseInner();
  return result;
}

OrchestratorRunResult ClusterOrchestrator::RunOnline(std::vector<Task> tasks) {
  DPACK_CHECK_MSG(scheduler_ != nullptr, "orchestrator scheduler missing (mid-run reentry?)");
  auto run_start = std::chrono::steady_clock::now();
  SimulatedStateStore store(config_.store_latency_us);
  BlockManager blocks(GridOrDefault(config_), config_.eps_g, config_.delta_g);
  for (size_t b = 0; b < config_.offline_blocks; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }

  OnlineSchedulerConfig online_config;
  online_config.period = config_.period;
  online_config.unlock_steps = config_.unlock_steps;
  online_config.num_shards = config_.num_shards;
  online_config.async = config_.async;
  OnlineScheduler online(std::move(scheduler_), &blocks, online_config);
  ScheduleContextStats stats_at_entry;
  if (const ScheduleContextStats* stats = online.context_stats()) {
    stats_at_entry = *stats;
  }

  double last_arrival = 0.0;
  for (const Task& task : tasks) {
    last_arrival = std::max(last_arrival, task.arrival_time);
  }
  double online_span = static_cast<double>(config_.online_blocks);
  double end_virtual = std::max(last_arrival, online_span) +
                       config_.period * static_cast<double>(config_.unlock_steps + 1);

  std::atomic<double> clock{0.0};
  std::atomic<bool> producer_done{false};
  std::atomic<bool> stop{false};

  // Submission queue shared between the producer and the scheduler thread. Block arrivals
  // are communicated as a pending counter so all BlockManager mutation happens on the
  // scheduler thread.
  std::mutex mu;
  std::vector<Task> submission_queue;
  size_t blocks_released = 0;  // Online blocks whose arrival time has passed.

  std::thread timekeeper([&] {
    auto unit = std::chrono::duration<double, std::milli>(config_.virtual_unit_wall_ms);
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(unit);
      double now = clock.load(std::memory_order_relaxed) + 1.0;
      clock.store(now, std::memory_order_release);
      std::lock_guard<std::mutex> lock(mu);
      blocks_released = std::min<size_t>(config_.online_blocks,
                                         static_cast<size_t>(std::floor(now)));
    }
  });

  std::thread producer([&] {
    for (Task& task : tasks) {
      while (clock.load(std::memory_order_acquire) < task.arrival_time &&
             !stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      store.RoundTrip(1);  // Claim creation.
      std::lock_guard<std::mutex> lock(mu);
      submission_queue.push_back(std::move(task));
    }
    producer_done.store(true, std::memory_order_release);
  });

  size_t cycles = 0;
  size_t blocks_added = 0;
  double next_cycle = 0.0;
  while (true) {
    double now = clock.load(std::memory_order_acquire);
    if (now < next_cycle) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config_.virtual_unit_wall_ms / 4.0));
      continue;
    }
    // Materialize newly arrived blocks and drain the submission queue.
    std::vector<Task> batch;
    size_t release_target = 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      batch.swap(submission_queue);
      release_target = blocks_released;
    }
    while (blocks_added < release_target) {
      ++blocks_added;
      blocks.AddBlock(static_cast<double>(blocks_added));
    }
    for (Task& task : batch) {
      online.Submit(std::move(task));
    }

    store.RoundTrip(config_.store_ops_per_cycle);
    size_t granted = online.RunCycle(now);
    store.RoundTrip(config_.store_ops_per_task * granted);
    ++cycles;
    next_cycle += config_.period;

    if (producer_done.load(std::memory_order_acquire) && now >= end_virtual) {
      break;
    }
  }
  stop.store(true, std::memory_order_release);
  producer.join();
  timekeeper.join();

  OrchestratorRunResult result;
  result.metrics = online.metrics();
  if (const ScheduleContextStats* stats = online.context_stats()) {
    result.scheduler_stats = stats->Delta(stats_at_entry);
  }
  result.store_operations = store.operations();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start).count();
  result.cycles = cycles;
  scheduler_ = online.ReleaseInner();
  return result;
}

}  // namespace dpack
