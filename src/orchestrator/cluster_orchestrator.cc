#include "src/orchestrator/cluster_orchestrator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/common/thread_annotations.h"

namespace dpack {

namespace {

AlphaGridPtr GridOrDefault(const OrchestratorConfig& config) {
  return config.grid != nullptr ? config.grid : AlphaGrid::Default();
}

}  // namespace

ClusterOrchestrator::ClusterOrchestrator(std::unique_ptr<Scheduler> scheduler,
                                         OrchestratorConfig config)
    : config_(std::move(config)), scheduler_(std::move(scheduler)) {
  DPACK_CHECK(scheduler_ != nullptr);
  DPACK_CHECK(config_.period > 0.0);
  DPACK_CHECK(config_.unlock_steps >= 1);
  DPACK_CHECK(config_.offline_blocks + config_.online_blocks > 0);
}

OrchestratorRunResult ClusterOrchestrator::RunOfflinePass(std::vector<Task> tasks) {
  DPACK_CHECK_MSG(scheduler_ != nullptr, "orchestrator scheduler missing (mid-run reentry?)");
  auto run_start = std::chrono::steady_clock::now();
  SimulatedStateStore store(config_.store_latency_us);
  BlockManager blocks(GridOrDefault(config_), config_.eps_g, config_.delta_g);
  size_t total_blocks = config_.offline_blocks + config_.online_blocks;
  for (size_t b = 0; b < total_blocks; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }

  OnlineSchedulerConfig online_config;
  online_config.period = config_.period;
  online_config.unlock_steps = 1;  // Offline: everything unlocked.
  online_config.num_shards = config_.num_shards;
  online_config.async = config_.async;
  OnlineScheduler online(std::move(scheduler_), &blocks, online_config);
  ScheduleContextStats stats_at_entry;
  if (const ScheduleContextStats* stats = online.context_stats()) {
    stats_at_entry = *stats;
  }

  // Client side: claim creation traffic (not charged to scheduler runtime).
  for (Task& task : tasks) {
    store.RoundTrip(1);
    online.Submit(std::move(task));
  }

  // One scheduling pass, timed with its state-store traffic.
  auto start = std::chrono::steady_clock::now();
  store.RoundTrip(config_.store_ops_per_cycle);
  size_t granted = online.RunCycle(0.0);
  store.RoundTrip(config_.store_ops_per_task * granted);
  double pass_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  OrchestratorRunResult result;
  result.metrics = online.metrics();
  result.metrics.RecordCycleRuntime(pass_seconds);  // Full pass incl. store traffic.
  if (const ScheduleContextStats* stats = online.context_stats()) {
    result.scheduler_stats = stats->Delta(stats_at_entry);
  }
  result.store_operations = store.operations();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start).count();
  result.cycles = 1;
  // Take the scheduler back so a later Run* call does not dereference a moved-from
  // scheduler; its engine caches (bound to this run's manager) are invalidated.
  scheduler_ = online.ReleaseInner();
  return result;
}

OrchestratorRunResult ClusterOrchestrator::RunOnline(std::vector<Task> tasks) {
  return RunOnlineInternal(nullptr, std::move(tasks));
}

OrchestratorRunResult ClusterOrchestrator::ResumeFrom(const ClusterSnapshot& snapshot,
                                                      std::vector<Task> tasks) {
  std::string validation = ValidateSnapshot(snapshot);
  DPACK_CHECK_MSG(validation.empty(), "ResumeFrom on an invalid snapshot: " << validation);
  DPACK_CHECK_MSG(snapshot.meta.period == config_.period &&
                      snapshot.meta.unlock_steps == config_.unlock_steps &&
                      snapshot.eps_g == config_.eps_g && snapshot.delta_g == config_.delta_g,
                  "ResumeFrom config does not match the snapshot's");
  DPACK_CHECK_MSG(snapshot.blocks.size() >= config_.offline_blocks &&
                      snapshot.blocks.size() <=
                          config_.offline_blocks + config_.online_blocks,
                  "snapshot block count outside this orchestrator's arrival process");
  return RunOnlineInternal(&snapshot, std::move(tasks));
}

OrchestratorRunResult ClusterOrchestrator::RunOnlineInternal(const ClusterSnapshot* snapshot,
                                                             std::vector<Task> tasks) {
  DPACK_CHECK_MSG(scheduler_ != nullptr, "orchestrator scheduler missing (mid-run reentry?)");
  auto run_start = std::chrono::steady_clock::now();
  SimulatedStateStore store(config_.store_latency_us);
  double start_virtual = snapshot != nullptr ? snapshot->meta.checkpoint_time : 0.0;
  AlphaGridPtr grid = GridOrDefault(config_);
  BlockManager blocks = snapshot != nullptr
                            ? RestoreBlockManager(*snapshot, grid)
                            : BlockManager(grid, config_.eps_g, config_.delta_g);
  if (snapshot == nullptr) {
    for (size_t b = 0; b < config_.offline_blocks; ++b) {
      blocks.AddBlock(0.0, /*unlocked=*/true);
    }
  }

  OnlineSchedulerConfig online_config;
  online_config.period = config_.period;
  online_config.unlock_steps = config_.unlock_steps;
  online_config.num_shards = config_.num_shards;
  online_config.async = config_.async;
  OnlineScheduler online(std::move(scheduler_), &blocks, online_config);
  if (snapshot != nullptr) {
    online.RestoreState(RestorePendingTasks(*snapshot, grid),
                        RestoreMetrics(snapshot->metrics));
  }
  ScheduleContextStats stats_at_entry;
  if (const ScheduleContextStats* stats = online.context_stats()) {
    stats_at_entry = *stats;
  }

  double last_arrival = 0.0;
  for (const Task& task : tasks) {
    last_arrival = std::max(last_arrival, task.arrival_time);
  }
  if (snapshot != nullptr) {
    // Claims at or before the checkpoint are the store's responsibility (granted, queued
    // in the snapshot, or lost in flight); only later arrivals are replayed. The horizon
    // still derives from the full workload, matching the original run's.
    auto kept = std::remove_if(tasks.begin(), tasks.end(), [&](const Task& task) {
      return task.arrival_time <= start_virtual;
    });
    tasks.erase(kept, tasks.end());
  }
  double online_span = static_cast<double>(config_.online_blocks);
  double end_virtual = std::max(last_arrival, online_span) +
                       config_.period * static_cast<double>(config_.unlock_steps + 1);

  std::atomic<double> clock{start_virtual};
  std::atomic<bool> producer_done{false};
  std::atomic<bool> stop{false};

  // Submission queue shared between the producer and the scheduler thread. Block arrivals
  // are communicated as a pending counter so all BlockManager mutation happens on the
  // scheduler thread.
  Mutex mu;
  std::vector<Task> submission_queue;
  size_t blocks_added =  // Online blocks already materialized (restored from the snapshot).
      snapshot != nullptr ? snapshot->blocks.size() - config_.offline_blocks : 0;
  size_t blocks_released = blocks_added;  // Online blocks whose arrival time has passed.

  std::thread timekeeper([&] {
    auto unit = std::chrono::duration<double, std::milli>(config_.virtual_unit_wall_ms);
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(unit);
      double now = clock.load(std::memory_order_relaxed) + 1.0;
      clock.store(now, std::memory_order_release);
      MutexLock lock(mu);
      blocks_released = std::max(blocks_released,
                                 std::min<size_t>(config_.online_blocks,
                                                  static_cast<size_t>(std::floor(now))));
    }
  });

  std::thread producer([&] {
    for (Task& task : tasks) {
      while (clock.load(std::memory_order_acquire) < task.arrival_time &&
             !stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      store.RoundTrip(1);  // Claim creation.
      MutexLock lock(mu);
      submission_queue.push_back(std::move(task));
    }
    producer_done.store(true, std::memory_order_release);
  });

  OrchestratorRunResult result;
  size_t cycles = snapshot != nullptr ? static_cast<size_t>(snapshot->meta.cycles_completed)
                                      : 0;
  double next_cycle = snapshot != nullptr ? snapshot->meta.next_cycle_time : 0.0;
  while (true) {
    double now = clock.load(std::memory_order_acquire);
    if (now < next_cycle) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config_.virtual_unit_wall_ms / 4.0));
      continue;
    }
    // Materialize newly arrived blocks and drain the submission queue.
    std::vector<Task> batch;
    size_t release_target = 0;
    {
      MutexLock lock(mu);
      batch.swap(submission_queue);
      release_target = blocks_released;
    }
    while (blocks_added < release_target) {
      ++blocks_added;
      blocks.AddBlock(static_cast<double>(blocks_added));
    }
    for (Task& task : batch) {
      online.Submit(std::move(task));
    }

    store.RoundTrip(config_.store_ops_per_cycle);
    size_t granted = online.RunCycle(now);
    store.RoundTrip(config_.store_ops_per_task * granted);
    ++cycles;
    next_cycle += config_.period;

    if (config_.checkpoint_every_cycles > 0 &&
        cycles % config_.checkpoint_every_cycles == 0) {
      // The capture runs on the scheduler thread, which owns the manager and the queue.
      // The clock races ahead of the drain, so a freshly drained claim can carry an
      // arrival time past the `now` this cycle read — stamp the checkpoint at the latest
      // state it actually covers.
      double checkpoint_time = now;
      for (const Task& task : online.pending()) {
        checkpoint_time = std::max(checkpoint_time, task.arrival_time);
      }
      SnapshotMeta meta;
      meta.cycles_completed = cycles;
      meta.checkpoint_time = checkpoint_time;
      meta.next_cycle_time = std::max(next_cycle, checkpoint_time);
      meta.period = config_.period;
      meta.unlock_steps = config_.unlock_steps;
      meta.fair_share_n = online.config().fair_share_n;
      // Already resolved (>= 1) by the driver's constructor — the single "0 = auto" point.
      meta.num_shards = online.config().num_shards;
      meta.async = config_.async;
      std::string encoded = EncodeSnapshotBinary(
          CaptureSnapshot(blocks, online.pending(), online.metrics(), meta));
      result.last_checkpoint = encoded;
      store.Put(kCheckpointKey, std::move(encoded));
      ++result.checkpoints_taken;
    }

    if (producer_done.load(std::memory_order_acquire) && now >= end_virtual) {
      break;
    }
  }
  stop.store(true, std::memory_order_release);
  producer.join();
  timekeeper.join();

  result.metrics = online.metrics();
  if (const ScheduleContextStats* stats = online.context_stats()) {
    result.scheduler_stats = stats->Delta(stats_at_entry);
  }
  result.store_operations = store.operations();
  result.store_bytes_written = store.bytes_written();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start).count();
  result.cycles = cycles;
  scheduler_ = online.ReleaseInner();
  return result;
}

}  // namespace dpack
