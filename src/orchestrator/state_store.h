// A simulated cluster state store standing in for the Kubernetes API server / etcd used by
// the paper's PrivateKube deployment (§6.4; see DESIGN.md, substitution 2).
//
// PrivateKube represents tasks ("claims") and privacy blocks as custom resources; every
// scheduling decision costs API-server round trips, and the paper reports that these system
// overheads dominate scheduler runtime. This store injects a configurable latency per
// operation and counts traffic so the orchestrator benchmarks exercise the same
// overhead-dominated regime.
//
// Beyond pure latency simulation, the store now holds real bytes: Put/Get persist opaque
// values (the checkpoint subsystem's snapshots) under string keys, charging one round trip
// per kPutChunkBytes written — large snapshots cost proportionally more API-server traffic,
// which is how checkpoint overhead lands in the Q4 accounting.

#ifndef SRC_ORCHESTRATOR_STATE_STORE_H_
#define SRC_ORCHESTRATOR_STATE_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/common/thread_annotations.h"

namespace dpack {

class SimulatedStateStore {
 public:
  // Values are written in chunks of this many bytes, one simulated round trip per chunk
  // (etcd bounds request sizes; a snapshot spanning many chunks costs many trips).
  static constexpr uint64_t kPutChunkBytes = 64 * 1024;

  // `latency_us` is the simulated per-operation round-trip latency in microseconds (>= 0).
  explicit SimulatedStateStore(double latency_us);

  // Performs `ops` synchronous round trips (blocking the calling thread for ops * latency).
  void RoundTrip(uint64_t ops = 1);

  // Persists `value` under `key` (overwriting), blocking for ceil(size / kPutChunkBytes)
  // round trips (at least one). Thread-safe against concurrent Put/Get/RoundTrip.
  void Put(const std::string& key, std::string value);

  // Reads the value stored under `key` (one round trip), or nullopt when absent.
  std::optional<std::string> Get(const std::string& key);

  uint64_t operations() const { return operations_.load(std::memory_order_relaxed); }
  // Cumulative bytes written through Put (overwrites both count).
  uint64_t bytes_written() const { return bytes_written_.load(std::memory_order_relaxed); }
  double latency_us() const { return latency_us_; }

 private:
  double latency_us_;
  std::atomic<uint64_t> operations_{0};
  std::atomic<uint64_t> bytes_written_{0};
  Mutex mu_;
  std::map<std::string, std::string> values_ GUARDED_BY(mu_);
};

}  // namespace dpack

#endif  // SRC_ORCHESTRATOR_STATE_STORE_H_
