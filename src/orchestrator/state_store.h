// A simulated cluster state store standing in for the Kubernetes API server / etcd used by
// the paper's PrivateKube deployment (§6.4; see DESIGN.md, substitution 2).
//
// PrivateKube represents tasks ("claims") and privacy blocks as custom resources; every
// scheduling decision costs API-server round trips, and the paper reports that these system
// overheads dominate scheduler runtime. This store injects a configurable latency per
// operation and counts traffic so the orchestrator benchmarks exercise the same
// overhead-dominated regime.

#ifndef SRC_ORCHESTRATOR_STATE_STORE_H_
#define SRC_ORCHESTRATOR_STATE_STORE_H_

#include <atomic>
#include <cstdint>

namespace dpack {

class SimulatedStateStore {
 public:
  // `latency_us` is the simulated per-operation round-trip latency in microseconds (>= 0).
  explicit SimulatedStateStore(double latency_us);

  // Performs `ops` synchronous round trips (blocking the calling thread for ops * latency).
  void RoundTrip(uint64_t ops = 1);

  uint64_t operations() const { return operations_.load(std::memory_order_relaxed); }
  double latency_us() const { return latency_us_; }

 private:
  double latency_us_;
  std::atomic<uint64_t> operations_{0};
};

}  // namespace dpack

#endif  // SRC_ORCHESTRATOR_STATE_STORE_H_
