// In-process cluster orchestrator reproducing the paper's Kubernetes deployment (§6.4).
//
// Architecture (mirroring PrivateKube's control loop):
//   - clients submit tasks into a thread-safe queue (concurrent with scheduling);
//   - a timekeeper thread advances a virtual clock (wall-paced) and adds privacy blocks;
//   - a scheduler thread wakes every period T (virtual), drains the submission queue,
//     performs simulated state-store round trips per task and per cycle (claim reads, status
//     updates, budget commits), runs the batch scheduling algorithm, and records metrics.
//
// Scheduler runtime is measured in wall-clock seconds and includes the store traffic, which
// dominates — the paper's Q4 observation. Scheduling delay is measured in virtual time and
// excludes scheduler runtime, as in Fig. 8(b).

#ifndef SRC_ORCHESTRATOR_CLUSTER_ORCHESTRATOR_H_
#define SRC_ORCHESTRATOR_CLUSTER_ORCHESTRATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/block/block_manager.h"
#include "src/core/metrics.h"
#include "src/core/online_scheduler.h"
#include "src/core/scheduler.h"
#include "src/core/task.h"
#include "src/orchestrator/checkpoint.h"
#include "src/orchestrator/state_store.h"
#include "src/rdp/alpha_grid.h"

namespace dpack {

struct OrchestratorConfig {
  AlphaGridPtr grid;                 // Defaults to AlphaGrid::Default() when null.
  double eps_g = 10.0;
  double delta_g = 1e-7;
  double period = 5.0;               // Scheduling period T (virtual time units).
  int64_t unlock_steps = 50;         // Unlocking denominator N.
  size_t offline_blocks = 10;        // Blocks present (fully unlocked) at start.
  size_t online_blocks = 20;         // Blocks arriving one per virtual time unit.
  double virtual_unit_wall_ms = 10;  // Wall milliseconds per virtual time unit.
  double store_latency_us = 150.0;   // Simulated API-server round-trip latency.
  uint64_t store_ops_per_task = 3;   // Claim read + status update + budget commit.
  uint64_t store_ops_per_cycle = 4;  // Block list + lease renewal traffic.
  // When > 0 and the scheduler is a GreedyScheduler, reshard its incremental engine
  // (parallel scoring across this many block/task shards); 0 leaves it as constructed.
  size_t num_shards = 0;
  // When set and the scheduler is a GreedyScheduler, run its incremental engine on the
  // async per-shard scheduler threads (same grants; see src/core/async_schedule_engine.h).
  bool async = false;
  // When > 0, RunOnline/ResumeFrom serialize a full cluster snapshot every this-many
  // cycles and Put it into the run's SimulatedStateStore under kCheckpointKey — the write
  // blocks the scheduler loop for one round trip per 64 KiB chunk, so checkpoint
  // persistence cost lands in the same Q4 overhead accounting as the claim traffic.
  size_t checkpoint_every_cycles = 0;
};

struct OrchestratorRunResult {
  AllocationMetrics metrics;
  uint64_t store_operations = 0;
  double wall_seconds = 0.0;
  size_t cycles = 0;
  // Checkpointing activity of this run (zeros when checkpoint_every_cycles == 0).
  uint64_t checkpoints_taken = 0;
  uint64_t store_bytes_written = 0;
  // The last snapshot persisted during the run, still in its binary wire encoding; empty
  // when no checkpoint was taken. Decode with DecodeSnapshot and hand to ResumeFrom to
  // continue a killed run.
  std::string last_checkpoint;
  // Incremental-engine counters covering exactly this run (zeros when the scheduler does
  // not run on an incremental engine). The engine survives every cycle of the run — and the
  // scheduler survives across runs — so the run-entry snapshot is subtracted to isolate
  // this run's cache behavior. `shards` is the engine's shard count, not a delta.
  ScheduleContextStats scheduler_stats;
};

class ClusterOrchestrator {
 public:
  // The store key checkpoints are persisted under (one key, overwritten per checkpoint —
  // the latest snapshot is the only one recovery needs, as with a compacted etcd key).
  static constexpr const char* kCheckpointKey = "dpack/checkpoint";

  ClusterOrchestrator(std::unique_ptr<Scheduler> scheduler, OrchestratorConfig config);

  // Offline measurement (Fig. 8(a) methodology): all blocks present and unlocked, all of
  // `tasks` submitted up front, one scheduling pass. Returns metrics whose cycle runtime is
  // the wall time of that pass including store traffic.
  OrchestratorRunResult RunOfflinePass(std::vector<Task> tasks);

  // Online run (Fig. 8(b), Tab. 2): spawns timekeeper, producer, and scheduler threads and
  // processes the workload end to end; returns aggregate metrics. Tasks must be sorted by
  // arrival_time (virtual units).
  OrchestratorRunResult RunOnline(std::vector<Task> tasks);

  // Crash recovery (§6.4): continues a killed online run from a snapshot persisted by a
  // previous RunOnline with checkpoint_every_cycles > 0. Restores the block manager, the
  // pending claims, and the cumulative metrics, then resumes the clock at the checkpoint's
  // virtual time; `tasks` must be the full original workload — claims whose arrival time
  // is at or before the checkpoint are the store's responsibility (already granted,
  // pending, or lost in flight mid-submission, exactly as a real API-server crash leaves
  // them), so only later arrivals are replayed. The scheduler's engine caches start cold;
  // the restored state's version invariant makes the first cycle's grants consistent with
  // an uninterrupted run of the same (wall-clock-raced) submission sequence.
  OrchestratorRunResult ResumeFrom(const ClusterSnapshot& snapshot, std::vector<Task> tasks);

  // All run entry points lend the scheduler to the run's online driver and take it back
  // (with its incremental caches invalidated — they are bound to the run's block manager)
  // when the run finishes, so an orchestrator can execute any sequence of runs.

  const OrchestratorConfig& config() const { return config_; }

 private:
  // Shared body of RunOnline and ResumeFrom: `snapshot` == nullptr starts fresh.
  OrchestratorRunResult RunOnlineInternal(const ClusterSnapshot* snapshot,
                                          std::vector<Task> tasks);

  OrchestratorConfig config_;
  std::unique_ptr<Scheduler> scheduler_;
};

}  // namespace dpack

#endif  // SRC_ORCHESTRATOR_CLUSTER_ORCHESTRATOR_H_
