// Umbrella header: the full public API of the dpack library.
//
// Link against the CMake target `dpack::dpack` and include this header to use the scheduler,
// RDP accounting, workload generators, simulator, and orchestrator.
//
// Scheduling engine architecture
// ------------------------------
// Batch scheduling runs on an incremental engine (src/core/schedule_context.h) layered over
// versioned block state:
//
//   - `PrivacyBlock::version()` is a monotonic counter bumped on every state change that
//     can alter the block's available capacity: each `Commit` and each effective unlock
//     increase. Invariant: equal versions observed at two points in time imply bit-identical
//     `AvailableCurve()` results.
//   - `BlockManager::epoch()` is a monotonic counter bumped on every block arrival.
//     Invariant: unchanged epoch plus unchanged per-block versions imply the manager's
//     whole capacity state is bit-identical. `Clone()` preserves both, so observations made
//     against the original remain valid against the clone.
//   - `ScheduleContext` (owned by `GreedyScheduler`, persistent across cycles inside
//     `OnlineScheduler`, the sim driver, and the orchestrator) uses those counters to
//     detect exactly which blocks changed between scheduling cycles, rescoring only the
//     tasks that touch them, keeping scored entries in a lazily-revalidated heap, and
//     skipping CANRUN filter scans for tasks whose blocks provably did not change since
//     their last rejection. Grants are identical to the recompute-from-scratch reference
//     path (`RecomputeScheduleBatch`), which remains available via
//     `GreedySchedulerOptions::incremental = false` and is pinned against the engine by
//     tests/core/incremental_equivalence_test.cc.
//   - Sharding (`GreedySchedulerOptions::num_shards > 1`, threaded through
//     `OnlineSchedulerConfig`, `SimConfig`, and `OrchestratorConfig`): a
//     `ShardedBlockManager` (src/block/sharded_block_manager.h) partitions blocks
//     round-robin — block g belongs to shard g mod N, giving each shard its own arrival
//     epoch and a monotone version sum over its members, the per-shard restriction of the
//     invariant above ("unchanged shard (epoch, version) => the shard's capacity state is
//     bit-identical"). `ShardedScheduleContext` (src/core/sharded_schedule_context.h) gives
//     every shard its own ScheduleContext slice — owned-block dirty tracking and best-alpha
//     solves, plus the score cache and score heap of the tasks whose id hashes to the shard
//     — and runs the per-cycle refresh and rescoring phases on a worker pool. The
//     deterministic merge rule: every score is computed by the same function on
//     bit-identical snapshot state as the single-shard engine, and the per-shard heaps are
//     combined by an N-way merge under the strict total order (score desc, arrival asc,
//     id asc), so the merged allocation order — and therefore the grant sequence — is
//     byte-identical to the single-shard engine's for every shard count and thread timing.
//     The CANRUN allocation walk stays sequential (its commits are order-dependent).
//
// Consumers adding new block mutations must route them through `Commit` /
// `SetUnlockedFraction` / `AddBlock*` (or bump the counters equivalently); a mutation that
// bypasses the version counters silently breaks every incremental consumer — single-shard
// and sharded alike.

#ifndef SRC_DPACK_DPACK_H_
#define SRC_DPACK_DPACK_H_

#include "src/block/block_manager.h"
#include "src/block/privacy_block.h"
#include "src/block/sharded_block_manager.h"
#include "src/common/csv.h"
#include "src/common/distributions.h"
#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/async_schedule_engine.h"
#include "src/core/compute_aware.h"
#include "src/core/efficiency.h"
#include "src/core/fairness.h"
#include "src/core/metrics.h"
#include "src/core/online_scheduler.h"
#include "src/core/schedule_context.h"
#include "src/core/scheduler.h"
#include "src/core/sharded_schedule_context.h"
#include "src/core/task.h"
#include "src/knapsack/privacy_knapsack.h"
#include "src/knapsack/single_dim.h"
#include "src/orchestrator/cluster_orchestrator.h"
#include "src/orchestrator/state_store.h"
#include "src/rdp/accountant.h"
#include "src/rdp/alpha_grid.h"
#include "src/rdp/mechanisms.h"
#include "src/rdp/rdp_curve.h"
#include "src/service/client.h"
#include "src/service/grant_service.h"
#include "src/service/net_transport.h"
#include "src/service/service_scheduler.h"
#include "src/sim/service_sim.h"
#include "src/sim/sim_driver.h"
#include "src/sim/simulation.h"
#include "src/workload/alibaba.h"
#include "src/workload/amazon.h"
#include "src/workload/curve_pool.h"
#include "src/workload/microbenchmark.h"
#include "src/workload/scenario.h"
#include "src/workload/trace_io.h"
#include "src/workload/workload_stats.h"

#endif  // SRC_DPACK_DPACK_H_
