// Umbrella header: the full public API of the dpack library.
//
// Link against the CMake target `dpack::dpack` and include this header to use the scheduler,
// RDP accounting, workload generators, simulator, and orchestrator.

#ifndef SRC_DPACK_DPACK_H_
#define SRC_DPACK_DPACK_H_

#include "src/block/block_manager.h"
#include "src/block/privacy_block.h"
#include "src/common/csv.h"
#include "src/common/distributions.h"
#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/compute_aware.h"
#include "src/core/efficiency.h"
#include "src/core/fairness.h"
#include "src/core/metrics.h"
#include "src/core/online_scheduler.h"
#include "src/core/scheduler.h"
#include "src/core/task.h"
#include "src/knapsack/privacy_knapsack.h"
#include "src/knapsack/single_dim.h"
#include "src/orchestrator/cluster_orchestrator.h"
#include "src/orchestrator/state_store.h"
#include "src/rdp/accountant.h"
#include "src/rdp/alpha_grid.h"
#include "src/rdp/mechanisms.h"
#include "src/rdp/rdp_curve.h"
#include "src/sim/sim_driver.h"
#include "src/sim/simulation.h"
#include "src/workload/alibaba.h"
#include "src/workload/amazon.h"
#include "src/workload/curve_pool.h"
#include "src/workload/microbenchmark.h"
#include "src/workload/trace_io.h"
#include "src/workload/workload_stats.h"

#endif  // SRC_DPACK_DPACK_H_
