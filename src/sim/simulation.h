// Discrete-event simulation engine with virtual time (§5's simulator substrate).
//
// Events fire in (time, priority, insertion order) order; priorities break same-timestamp
// ties so that, e.g., block arrivals are visible to the scheduling cycle that runs at the
// same instant. Arbitrary callbacks may schedule further events.

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dpack {

// Standard event priorities: lower value fires first at equal timestamps.
enum class EventPriority : int {
  kBlockArrival = 0,
  kTaskArrival = 1,
  kScheduling = 2,
  kReporting = 3,
};

class Simulation {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }
  size_t events_processed() const { return events_processed_; }

  // Schedules `fn` at absolute virtual time `time` (>= now).
  void At(double time, EventPriority priority, Callback fn);

  // Schedules `fn` at now + delay (delay >= 0).
  void After(double delay, EventPriority priority, Callback fn);

  // Runs until the event queue drains. Returns the final virtual time.
  double Run();

  // Runs until the queue drains or virtual time would exceed `horizon`; events scheduled
  // after the horizon remain unprocessed.
  double RunUntil(double horizon);

 private:
  struct Event {
    double time;
    int priority;
    uint64_t sequence;
    Callback fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      if (a.priority != b.priority) {
        return a.priority > b.priority;
      }
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  double now_ = 0.0;
  uint64_t next_sequence_ = 0;
  size_t events_processed_ = 0;
};

}  // namespace dpack

#endif  // SRC_SIM_SIMULATION_H_
