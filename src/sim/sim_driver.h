// Online simulation driver: wires a workload (tasks with arrival times) and a block arrival
// process into the event engine and the online batch scheduler, reproducing the paper's
// simulator setup (§5, §6.3): one block arrives per virtual time unit, a scheduling cycle
// runs every T, budget unlocks in 1/N steps, and the run drains after the last arrival until
// all budget is unlocked and a final cycle has run.
//
// Runs can be split at any cycle boundary (checkpoint/recovery, ISSUE 4): stopping a run
// after k cycles captures a ClusterSnapshot, and ResumeOnlineSimulation continues from it —
// replaying only the arrivals after the checkpoint and the remaining cycles at their exact
// original instants — with byte-identical grants and deterministic metrics to the
// uninterrupted run (pinned by tests/orchestrator/recovery_test.cc).

#ifndef SRC_SIM_SIM_DRIVER_H_
#define SRC_SIM_SIM_DRIVER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/block/block_manager.h"
#include "src/core/metrics.h"
#include "src/core/online_scheduler.h"
#include "src/core/scheduler.h"
#include "src/core/task.h"
#include "src/orchestrator/checkpoint.h"
#include "src/rdp/alpha_grid.h"

namespace dpack {

struct SimConfig {
  AlphaGridPtr grid;                 // Defaults to AlphaGrid::Default() when null.
  double eps_g = 10.0;               // Global DP guarantee per block.
  double delta_g = 1e-7;
  size_t num_blocks = 90;            // Blocks arriving at t = 0, 1, ..., num_blocks - 1.
  double block_interval = 1.0;
  // Explicit block-arrival instants (non-negative, sorted ascending). When non-empty this
  // overrides the fixed-interval process above (num_blocks / block_interval are ignored):
  // scenario workloads with batched cohorts or jittered streams drive the simulation
  // through this schedule (src/workload/scenario.h). A resumed run derives the same
  // schedule, so checkpoint/recovery equivalence holds for generated streams too.
  std::vector<double> block_arrival_times;
  double period = 1.0;               // Scheduling period T.
  int64_t unlock_steps = 50;         // Unlocking denominator N.
  int64_t fair_share_n = 0;          // Fairness denominator; 0 -> unlock_steps.
  double drain_margin = 1.0;         // Extra periods after full unlock before stopping.
  // When > 0, stop scheduling cycles at this virtual time instead of draining until all
  // budget has unlocked. The paper's online runs measure the stream steady state (blocks
  // keep arriving as the run ends), not a fully drained system.
  double horizon_override = 0.0;
  // When > 0 and the scheduler is a GreedyScheduler, reshard its incremental engine
  // (parallel scoring across this many block/task shards); 0 leaves it as constructed.
  size_t num_shards = 0;
  // When set and the scheduler is a GreedyScheduler, run its incremental engine on the
  // async per-shard scheduler threads (same grants; see src/core/async_schedule_engine.h).
  bool async = false;
  // When > 0, simulate a crash after this many scheduling cycles (clamped to the run's
  // total cycle count): the run stops there and SimResult::snapshot holds the captured
  // cluster state. Pass the snapshot (and the same workload and config) to
  // ResumeOnlineSimulation to continue the run.
  size_t stop_after_cycles = 0;
  // With stop_after_cycles = k: also process every arrival at the (k+1)-th cycle instant
  // and capture the snapshot just *before* that cycle runs (the "mid-submission-drain"
  // kill point — freshly submitted tasks sit in the queue, the cycle that would schedule
  // them has not happened). Resume then executes that cycle first.
  bool stop_mid_drain = false;
  // When set, SimResult::grant_trace records the granted task ids of every cycle this
  // process ran, in grant order — the byte-comparable signal the recovery proofs diff.
  bool record_grant_trace = false;
  // Admission bound for the online driver (OnlineSchedulerConfig::admission_queue_capacity):
  // when > 0, arrivals finding the pending queue at this size are rejected and counted in
  // SimResult::admission_rejected instead of queued. 0 = unbounded (every prior workload).
  size_t admission_queue_capacity = 0;
};

struct SimResult {
  AllocationMetrics metrics;
  size_t blocks_created = 0;
  // Blocks compacted into the retired tier by the end of the run (exhausted with the full
  // budget unlocked; see BlockManager::RetireNewlyExhausted).
  size_t retired_at_end = 0;
  double end_time = 0.0;
  size_t cycles_run = 0;
  size_t pending_at_end = 0;
  // Incremental-engine counters of the run's scheduler (zeros when the scheduler does not
  // run on a ScheduleContext). The scheduler instance persists across every cycle of the
  // simulation, so the context's caches survive between batches.
  ScheduleContextStats scheduler_stats;
  // Granted task ids per executed cycle (only when SimConfig::record_grant_trace). A
  // resumed run records only its own cycles; prefix + suffix must equal the uninterrupted
  // run's trace.
  std::vector<std::vector<TaskId>> grant_trace;
  // Arrivals rejected by the admission bound (0 unless admission_queue_capacity > 0).
  uint64_t admission_rejected = 0;
  // The captured cluster state when SimConfig::stop_after_cycles ended the run early.
  std::optional<ClusterSnapshot> snapshot;
};

// The three deterministic schedules RunOnlineSimulation derives from a config — exported so
// other drivers of the same event semantics (checkpoint resume, and the remote client edge,
// which replays this exact cycle structure over a socket; see src/service/client.h) compute
// bit-identical instants from the same config.
//
// Block-arrival instants: the explicit schedule when one is set (validated sorted and
// non-negative), otherwise the fixed-interval process. Both the uninterrupted and the
// resumed run derive the schedule from the same config, so block arrivals stay
// bit-identical across a checkpoint split.
std::vector<double> BlockArrivalSchedule(const SimConfig& config);

// The run's scheduling horizon, a function of the FULL workload (a resumed run must derive
// the same horizon the uninterrupted run used, so it receives the full task vector too).
double SimulationHorizon(const SimConfig& config, const std::vector<Task>& tasks,
                         const std::vector<double>& block_schedule);

// Every cycle instant in [0, horizon], generated by the same repeated addition both the
// uninterrupted and the resumed run perform — bit-identical instants are what make
// UpdateUnlocks (and hence grants) reproducible across a split. `next_after_horizon`
// receives the first accumulated instant past the horizon.
std::vector<double> CycleInstants(const SimConfig& config, double horizon,
                                  double* next_after_horizon);

// Runs one online simulation of `scheduler` over `tasks` (arrival times set by the workload
// generator). Tasks with empty `blocks` and positive `num_recent_blocks` are resolved to the
// most recent blocks at submission, as in the paper's workloads.
SimResult RunOnlineSimulation(std::unique_ptr<Scheduler> scheduler, std::vector<Task> tasks,
                              const SimConfig& config);

// Continues a run from `snapshot` (captured by a stop_after_cycles run with the same
// workload and config): restores the block manager, the pending queue, and the cumulative
// metrics, then replays the arrivals strictly after the checkpoint time and the remaining
// scheduling cycles at their exact original instants. Pass the FULL original workload —
// already-absorbed tasks are filtered by arrival time. The scheduler starts with cold
// engine caches; grants are byte-identical to the uninterrupted run regardless.
SimResult ResumeOnlineSimulation(std::unique_ptr<Scheduler> scheduler,
                                 const ClusterSnapshot& snapshot, std::vector<Task> tasks,
                                 const SimConfig& config);

// Offline convenience: every block present and fully unlocked at t = 0, one scheduling shot.
// Returns the same metrics structure (delays are all zero).
SimResult RunOfflineSchedule(Scheduler& scheduler, std::vector<Task> tasks,
                             const SimConfig& config);

}  // namespace dpack

#endif  // SRC_SIM_SIM_DRIVER_H_
