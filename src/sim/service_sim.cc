#include "src/sim/service_sim.h"

#include <memory>
#include <utility>

namespace dpack {

ServiceSimResult RunServiceSimulation(GreedyMetric metric, std::vector<Task> tasks,
                                      const SimConfig& sim_config,
                                      ServiceConfig service_config) {
  ServiceSimResult result;
  // The sim driver destroys the scheduler (fleet shutdown included) before returning, so
  // the counters arrive through the sink, at final values.
  service_config.counters_sink = &result.counters;
  auto scheduler = std::make_unique<ServiceScheduler>(metric, service_config);
  result.sim = RunOnlineSimulation(std::move(scheduler), std::move(tasks), sim_config);
  result.counters.admission_rejects = result.sim.admission_rejected;
  return result;
}

ServiceSimResult ResumeServiceSimulation(GreedyMetric metric, const ClusterSnapshot& snapshot,
                                         std::vector<Task> tasks, const SimConfig& sim_config,
                                         ServiceConfig service_config) {
  ServiceSimResult result;
  service_config.counters_sink = &result.counters;
  auto scheduler = std::make_unique<ServiceScheduler>(metric, service_config);
  result.sim =
      ResumeOnlineSimulation(std::move(scheduler), snapshot, std::move(tasks), sim_config);
  result.counters.admission_rejects = result.sim.admission_rejected;
  return result;
}

}  // namespace dpack
