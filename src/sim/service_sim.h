// Service-mode simulation driver: runs the standard online simulation (sim_driver.h) with
// the multi-process ServiceScheduler as the engine, returning both the usual SimResult and
// the service's deterministic transport counters. One wrapper for uninterrupted runs and
// one for checkpoint resume — a ServiceScheduler is an ordinary Scheduler, so the whole
// checkpoint/recovery machinery composes with the process fleet unchanged.
//
// This is what the differential suites and the CI kill harness drive: the same workload
// through the in-process engines and through the service (optionally with a worker SIGKILL
// injected mid-run) must produce byte-identical grant traces.

#ifndef SRC_SIM_SERVICE_SIM_H_
#define SRC_SIM_SERVICE_SIM_H_

#include <vector>

#include "src/core/task.h"
#include "src/service/service_scheduler.h"
#include "src/sim/sim_driver.h"

namespace dpack {

struct ServiceSimResult {
  SimResult sim;
  // Final transport/service counters (admission_rejects mirrored from the online driver).
  ServiceCounters counters;
};

// Runs one online simulation on a ServiceScheduler fleet. `service_config.counters_sink`
// is managed internally (any caller-provided sink is ignored).
ServiceSimResult RunServiceSimulation(GreedyMetric metric, std::vector<Task> tasks,
                                      const SimConfig& sim_config,
                                      ServiceConfig service_config);

// Resumes a checkpointed run (same contract as ResumeOnlineSimulation) on a fresh fleet.
ServiceSimResult ResumeServiceSimulation(GreedyMetric metric, const ClusterSnapshot& snapshot,
                                         std::vector<Task> tasks, const SimConfig& sim_config,
                                         ServiceConfig service_config);

}  // namespace dpack

#endif  // SRC_SIM_SERVICE_SIM_H_
