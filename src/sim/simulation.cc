#include "src/sim/simulation.h"

#include "src/common/check.h"

namespace dpack {

void Simulation::At(double time, EventPriority priority, Callback fn) {
  DPACK_CHECK_MSG(time >= now_, "cannot schedule events in the past");
  queue_.push(Event{time, static_cast<int>(priority), next_sequence_++, std::move(fn)});
}

void Simulation::After(double delay, EventPriority priority, Callback fn) {
  DPACK_CHECK(delay >= 0.0);
  At(now_ + delay, priority, std::move(fn));
}

double Simulation::Run() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
  return now_;
}

double Simulation::RunUntil(double horizon) {
  while (!queue_.empty() && queue_.top().time <= horizon) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
  if (now_ < horizon) {
    now_ = horizon;
  }
  return now_;
}

}  // namespace dpack
