#include "src/sim/sim_driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/core/fairness.h"
#include "src/sim/simulation.h"

namespace dpack {

namespace {

AlphaGridPtr GridOrDefault(const SimConfig& config) {
  return config.grid != nullptr ? config.grid : AlphaGrid::Default();
}

}  // namespace

std::vector<double> BlockArrivalSchedule(const SimConfig& config) {
  if (!config.block_arrival_times.empty()) {
    for (size_t b = 0; b < config.block_arrival_times.size(); ++b) {
      DPACK_CHECK_MSG(config.block_arrival_times[b] >= 0.0,
                      "block_arrival_times must be non-negative");
      DPACK_CHECK_MSG(b == 0 ||
                          config.block_arrival_times[b - 1] <= config.block_arrival_times[b],
                      "block_arrival_times must be sorted ascending");
    }
    return config.block_arrival_times;
  }
  DPACK_CHECK(config.num_blocks > 0);
  DPACK_CHECK(config.block_interval > 0.0);
  std::vector<double> schedule;
  schedule.reserve(config.num_blocks);
  for (size_t b = 0; b < config.num_blocks; ++b) {
    schedule.push_back(static_cast<double>(b) * config.block_interval);
  }
  return schedule;
}

double SimulationHorizon(const SimConfig& config, const std::vector<Task>& tasks,
                         const std::vector<double>& block_schedule) {
  double last_arrival = 0.0;
  for (const Task& task : tasks) {
    last_arrival = std::max(last_arrival, task.arrival_time);
  }
  double last_block_arrival = block_schedule.back();
  double horizon = std::max(last_arrival, last_block_arrival) +
                   config.period * static_cast<double>(config.unlock_steps) +
                   config.period * config.drain_margin;
  if (config.horizon_override > 0.0) {
    horizon = config.horizon_override;
  }
  return horizon;
}

std::vector<double> CycleInstants(const SimConfig& config, double horizon,
                                  double* next_after_horizon) {
  std::vector<double> instants;
  double t = 0.0;
  while (t <= horizon) {
    instants.push_back(t);
    t += config.period;
  }
  *next_after_horizon = t;
  return instants;
}

namespace {

OnlineSchedulerConfig OnlineConfigFor(const SimConfig& config) {
  OnlineSchedulerConfig online_config;
  online_config.period = config.period;
  online_config.unlock_steps = config.unlock_steps;
  online_config.fair_share_n = config.fair_share_n;
  online_config.num_shards = config.num_shards;
  online_config.async = config.async;
  online_config.admission_queue_capacity = config.admission_queue_capacity;
  return online_config;
}

}  // namespace

SimResult RunOnlineSimulation(std::unique_ptr<Scheduler> scheduler, std::vector<Task> tasks,
                              const SimConfig& config) {
  DPACK_CHECK(scheduler != nullptr);
  std::vector<double> block_schedule = BlockArrivalSchedule(config);

  BlockManager blocks(GridOrDefault(config), config.eps_g, config.delta_g);
  OnlineScheduler online(std::move(scheduler), &blocks, OnlineConfigFor(config));

  double horizon = SimulationHorizon(config, tasks, block_schedule);
  double next_after_horizon = 0.0;
  std::vector<double> cycle_instants = CycleInstants(config, horizon, &next_after_horizon);

  // A crash point k splits the schedule: run cycles [0, k), absorb arrivals up to the
  // capture instant, snapshot, stop. Arrivals at the capture instant itself are included
  // only for the mid-drain kill (they sit in the queue with their cycle unrun). A k at or
  // past the final cycle clamps to it — the snapshot then captures the fully-run state and
  // a resume simply submits any post-horizon stragglers without scheduling them, exactly
  // as the uninterrupted run would have.
  bool capturing = config.stop_after_cycles > 0;
  size_t cycle_limit =
      capturing ? std::min(config.stop_after_cycles, cycle_instants.size())
                : cycle_instants.size();
  double next_cycle_time =
      cycle_limit < cycle_instants.size() ? cycle_instants[cycle_limit] : next_after_horizon;
  double arrival_cutoff = std::numeric_limits<double>::infinity();  // Everything.
  if (capturing) {
    arrival_cutoff =
        config.stop_mid_drain ? next_cycle_time : cycle_instants[cycle_limit - 1];
  }
  double checkpoint_time = capturing ? arrival_cutoff : 0.0;

  SimResult result;
  Simulation sim;
  // Block arrivals.
  for (double t : block_schedule) {
    if (t > arrival_cutoff) {
      continue;
    }
    sim.At(t, EventPriority::kBlockArrival, [&blocks, &sim] { blocks.AddBlock(sim.now()); });
  }
  // Task arrivals.
  for (Task& task : tasks) {
    double t = task.arrival_time;
    if (t > arrival_cutoff) {
      continue;
    }
    Task* task_ptr = &task;
    sim.At(t, EventPriority::kTaskArrival,
           [&online, task_ptr] { online.Submit(std::move(*task_ptr)); });
  }
  // Scheduling cycles.
  size_t cycles = 0;
  for (size_t c = 0; c < cycle_limit; ++c) {
    sim.At(cycle_instants[c], EventPriority::kScheduling, [&online, &sim, &cycles, &result,
                                                          &config] {
      online.RunCycle(sim.now());
      ++cycles;
      if (config.record_grant_trace) {
        result.grant_trace.push_back(online.last_granted());
      }
    });
  }
  double end_time = sim.Run();

  if (capturing) {
    SnapshotMeta meta;
    meta.cycles_completed = cycles;
    meta.checkpoint_time = checkpoint_time;
    meta.next_cycle_time = next_cycle_time;
    meta.period = config.period;
    meta.unlock_steps = config.unlock_steps;
    meta.fair_share_n = online.config().fair_share_n;
    // Already resolved (>= 1) by the driver's constructor — the single "0 = auto" point.
    meta.num_shards = online.config().num_shards;
    meta.async = config.async;
    result.snapshot = CaptureSnapshot(blocks, online.pending(), online.metrics(), meta);
  }

  result.metrics = online.metrics();
  if (const ScheduleContextStats* stats = online.context_stats()) {
    result.scheduler_stats = *stats;
  }
  result.blocks_created = blocks.block_count();
  result.retired_at_end = blocks.retired_count();
  result.end_time = end_time;
  result.cycles_run = cycles;
  result.pending_at_end = online.pending_count();
  result.admission_rejected = online.admission_rejected();
  return result;
}

SimResult ResumeOnlineSimulation(std::unique_ptr<Scheduler> scheduler,
                                 const ClusterSnapshot& snapshot, std::vector<Task> tasks,
                                 const SimConfig& config) {
  DPACK_CHECK(scheduler != nullptr);
  std::vector<double> block_schedule = BlockArrivalSchedule(config);
  DPACK_CHECK_MSG(config.stop_after_cycles == 0,
                  "chained checkpoints are not supported; resume runs to completion");
  std::string validation = ValidateSnapshot(snapshot);
  DPACK_CHECK_MSG(validation.empty(), "resume from an invalid snapshot: " << validation);
  // The snapshot is only meaningful under the configuration it was captured with.
  DPACK_CHECK_MSG(snapshot.meta.period == config.period &&
                      snapshot.meta.unlock_steps == config.unlock_steps &&
                      snapshot.eps_g == config.eps_g && snapshot.delta_g == config.delta_g,
                  "resume config does not match the snapshot's");
  double checkpoint_time = snapshot.meta.checkpoint_time;
  size_t blocks_before = 0;
  for (double t : block_schedule) {
    if (t <= checkpoint_time) {
      ++blocks_before;
    }
  }
  DPACK_CHECK_MSG(blocks_before == snapshot.blocks.size(),
                  "snapshot block count does not match the config's arrival process");

  AlphaGridPtr grid = GridOrDefault(config);
  BlockManager blocks = RestoreBlockManager(snapshot, grid);
  OnlineScheduler online(std::move(scheduler), &blocks, OnlineConfigFor(config));
  online.RestoreState(RestorePendingTasks(snapshot, grid),
                      RestoreMetrics(snapshot.metrics));

  double horizon = SimulationHorizon(config, tasks, block_schedule);

  SimResult result;
  Simulation sim;
  // Arrivals strictly after the checkpoint: everything at or before it is already in the
  // snapshot (block arrivals and submissions fire before the scheduling cycle the capture
  // followed, and the mid-drain capture point is defined to include its instant's arrivals).
  for (double t : block_schedule) {
    if (t <= checkpoint_time) {
      continue;
    }
    sim.At(t, EventPriority::kBlockArrival, [&blocks, &sim] { blocks.AddBlock(sim.now()); });
  }
  for (Task& task : tasks) {
    double t = task.arrival_time;
    if (t <= checkpoint_time) {
      continue;
    }
    Task* task_ptr = &task;
    sim.At(t, EventPriority::kTaskArrival,
           [&online, task_ptr] { online.Submit(std::move(*task_ptr)); });
  }
  // Remaining cycles, continuing the uninterrupted run's exact instant sequence.
  size_t cycles = 0;
  for (double t = snapshot.meta.next_cycle_time; t <= horizon; t += config.period) {
    sim.At(t, EventPriority::kScheduling, [&online, &sim, &cycles, &result, &config] {
      online.RunCycle(sim.now());
      ++cycles;
      if (config.record_grant_trace) {
        result.grant_trace.push_back(online.last_granted());
      }
    });
  }
  double end_time = sim.Run();

  result.metrics = online.metrics();
  if (const ScheduleContextStats* stats = online.context_stats()) {
    result.scheduler_stats = *stats;
  }
  result.blocks_created = blocks.block_count();
  result.retired_at_end = blocks.retired_count();
  result.end_time = std::max(end_time, checkpoint_time);
  result.cycles_run = static_cast<size_t>(snapshot.meta.cycles_completed) + cycles;
  result.pending_at_end = online.pending_count();
  result.admission_rejected = online.admission_rejected();
  return result;
}

SimResult RunOfflineSchedule(Scheduler& scheduler, std::vector<Task> tasks,
                             const SimConfig& config) {
  size_t num_blocks = config.block_arrival_times.empty() ? config.num_blocks
                                                         : config.block_arrival_times.size();
  DPACK_CHECK(num_blocks > 0);
  BlockManager blocks(GridOrDefault(config), config.eps_g, config.delta_g);
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  int64_t fair_n = config.fair_share_n > 0 ? config.fair_share_n : config.unlock_steps;

  SimResult result;
  for (Task& task : tasks) {
    if (task.blocks.empty() && task.num_recent_blocks > 0) {
      task.blocks = blocks.MostRecentBlocks(task.num_recent_blocks);
    }
    result.metrics.RecordSubmission(task.weight, IsFairShareTask(task, blocks, fair_n));
  }
  auto start = std::chrono::steady_clock::now();
  std::vector<size_t> granted = scheduler.ScheduleBatch(tasks, blocks);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.metrics.RecordCycleRuntime(seconds);
  for (size_t idx : granted) {
    result.metrics.RecordAllocation(tasks[idx].weight, 0.0,
                                    IsFairShareTask(tasks[idx], blocks, fair_n));
  }
  result.blocks_created = blocks.block_count();
  result.end_time = 0.0;
  result.cycles_run = 1;
  result.pending_at_end = tasks.size() - granted.size();
  return result;
}

}  // namespace dpack
