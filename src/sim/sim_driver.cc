#include "src/sim/sim_driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/common/check.h"
#include "src/core/fairness.h"
#include "src/sim/simulation.h"

namespace dpack {

namespace {

AlphaGridPtr GridOrDefault(const SimConfig& config) {
  return config.grid != nullptr ? config.grid : AlphaGrid::Default();
}

}  // namespace

SimResult RunOnlineSimulation(std::unique_ptr<Scheduler> scheduler, std::vector<Task> tasks,
                              const SimConfig& config) {
  DPACK_CHECK(scheduler != nullptr);
  DPACK_CHECK(config.num_blocks > 0);
  DPACK_CHECK(config.block_interval > 0.0);

  BlockManager blocks(GridOrDefault(config), config.eps_g, config.delta_g);
  OnlineSchedulerConfig online_config;
  online_config.period = config.period;
  online_config.unlock_steps = config.unlock_steps;
  online_config.fair_share_n = config.fair_share_n;
  online_config.num_shards = config.num_shards;
  online_config.async = config.async;
  OnlineScheduler online(std::move(scheduler), &blocks, online_config);

  Simulation sim;
  // Block arrivals.
  for (size_t b = 0; b < config.num_blocks; ++b) {
    double t = static_cast<double>(b) * config.block_interval;
    sim.At(t, EventPriority::kBlockArrival, [&blocks, &sim] { blocks.AddBlock(sim.now()); });
  }
  // Task arrivals.
  double last_arrival = 0.0;
  for (Task& task : tasks) {
    last_arrival = std::max(last_arrival, task.arrival_time);
  }
  for (Task& task : tasks) {
    double t = task.arrival_time;
    Task* task_ptr = &task;
    sim.At(t, EventPriority::kTaskArrival,
           [&online, task_ptr] { online.Submit(std::move(*task_ptr)); });
  }
  // Scheduling cycles: every `period` from t = 0 until every block is fully unlocked and the
  // last arrival has been seen, plus a drain margin.
  double last_block_arrival = static_cast<double>(config.num_blocks - 1) * config.block_interval;
  double horizon = std::max(last_arrival, last_block_arrival) +
                   config.period * static_cast<double>(config.unlock_steps) +
                   config.period * config.drain_margin;
  if (config.horizon_override > 0.0) {
    horizon = config.horizon_override;
  }
  size_t cycles = 0;
  for (double t = 0.0; t <= horizon; t += config.period) {
    sim.At(t, EventPriority::kScheduling, [&online, &sim, &cycles] {
      online.RunCycle(sim.now());
      ++cycles;
    });
  }
  double end_time = sim.Run();

  SimResult result;
  result.metrics = online.metrics();
  if (const ScheduleContextStats* stats = online.context_stats()) {
    result.scheduler_stats = *stats;
  }
  result.blocks_created = blocks.block_count();
  result.end_time = end_time;
  result.cycles_run = cycles;
  result.pending_at_end = online.pending_count();
  return result;
}

SimResult RunOfflineSchedule(Scheduler& scheduler, std::vector<Task> tasks,
                             const SimConfig& config) {
  DPACK_CHECK(config.num_blocks > 0);
  BlockManager blocks(GridOrDefault(config), config.eps_g, config.delta_g);
  for (size_t b = 0; b < config.num_blocks; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  int64_t fair_n = config.fair_share_n > 0 ? config.fair_share_n : config.unlock_steps;

  SimResult result;
  for (Task& task : tasks) {
    if (task.blocks.empty() && task.num_recent_blocks > 0) {
      task.blocks = blocks.MostRecentBlocks(task.num_recent_blocks);
    }
    result.metrics.RecordSubmission(task.weight, IsFairShareTask(task, blocks, fair_n));
  }
  auto start = std::chrono::steady_clock::now();
  std::vector<size_t> granted = scheduler.ScheduleBatch(tasks, blocks);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.metrics.RecordCycleRuntime(seconds);
  for (size_t idx : granted) {
    result.metrics.RecordAllocation(tasks[idx].weight, 0.0,
                                    IsFairShareTask(tasks[idx], blocks, fair_n));
  }
  result.blocks_created = blocks.block_count();
  result.end_time = 0.0;
  result.cycles_run = 1;
  result.pending_at_end = tasks.size() - granted.size();
  return result;
}

}  // namespace dpack
