#include "src/block/block_manager.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace dpack {

BlockManager::BlockManager(AlphaGridPtr grid, double eps_g, double delta_g)
    : grid_(std::move(grid)),
      eps_g_(eps_g),
      delta_g_(delta_g),
      version_tree_(std::make_unique<BlockVersionTree>()) {
  DPACK_CHECK(grid_ != nullptr);
}

BlockId BlockManager::AddBlock(double arrival_time, bool unlocked) {
  return AddBlockWithCapacity(BlockCapacityCurve(grid_, eps_g_, delta_g_), arrival_time,
                              unlocked);
}

BlockId BlockManager::AddBlockWithCapacity(RdpCurve capacity, double arrival_time,
                                           bool unlocked) {
  DPACK_CHECK_MSG(SameGrid(capacity.grid(), grid_), "capacity grid mismatch");
  BlockId id = static_cast<BlockId>(slot_of_id_.size());
  hot_.push_back(
      PrivacyBlock(id, std::move(capacity), arrival_time, unlocked ? 1.0 : 0.0));
  hot_.back().set_version_sink(version_tree_.get());
  version_tree_->Track(id);
  slot_of_id_.push_back(hot_.size() - 1);
  if (!unlocked) {
    unlocking_ids_.push_back(id);
  }
  ++epoch_;
  return id;
}

PrivacyBlock& BlockManager::block(BlockId id) {
  DPACK_CHECK(id >= 0 && static_cast<size_t>(id) < slot_of_id_.size());
  uint64_t slot = slot_of_id_[static_cast<size_t>(id)];
  return (slot & kRetiredTierBit) != 0 ? retired_[slot & ~kRetiredTierBit] : hot_[slot];
}

const PrivacyBlock& BlockManager::block(BlockId id) const {
  DPACK_CHECK(id >= 0 && static_cast<size_t>(id) < slot_of_id_.size());
  uint64_t slot = slot_of_id_[static_cast<size_t>(id)];
  return (slot & kRetiredTierBit) != 0 ? retired_[slot & ~kRetiredTierBit] : hot_[slot];
}

bool BlockManager::retired(BlockId id) const {
  DPACK_CHECK(id >= 0 && static_cast<size_t>(id) < slot_of_id_.size());
  return (slot_of_id_[static_cast<size_t>(id)] & kRetiredTierBit) != 0;
}

BlockPlacement BlockManager::placement_of(BlockId id) const {
  DPACK_CHECK(id >= 0 && static_cast<size_t>(id) < slot_of_id_.size());
  uint64_t slot = slot_of_id_[static_cast<size_t>(id)];
  return BlockPlacement{(slot & kRetiredTierBit) != 0, slot & ~kRetiredTierBit};
}

std::vector<BlockId> BlockManager::MostRecentBlocks(size_t n) const {
  // Ids are dense and assigned in arrival order, so the most recent n are the last n ids —
  // O(n), independent of the total block count (pinned by block_manager_test).
  size_t total = slot_of_id_.size();
  size_t count = std::min(n, total);
  std::vector<BlockId> ids;
  ids.reserve(count);
  for (size_t i = total - count; i < total; ++i) {
    ids.push_back(static_cast<BlockId>(i));
  }
  return ids;
}

BlockManager BlockManager::Clone() const {
  BlockManager copy(grid_, eps_g_, delta_g_);
  copy.epoch_ = epoch_;
  *copy.version_tree_ = *version_tree_;
  copy.hot_ = hot_;          // Element copies detach from this manager's tree...
  copy.retired_ = retired_;
  for (PrivacyBlock& block : copy.hot_) {
    block.set_version_sink(copy.version_tree_.get());  // ...and re-attach to the clone's.
  }
  for (PrivacyBlock& block : copy.retired_) {
    block.set_version_sink(copy.version_tree_.get());
  }
  copy.slot_of_id_ = slot_of_id_;
  copy.unlocking_ids_ = unlocking_ids_;
  copy.retire_group_seen_ = retire_group_seen_;
  return copy;
}

BlockManager BlockManager::Restore(AlphaGridPtr grid, double eps_g, double delta_g,
                                   uint64_t epoch, std::vector<PrivacyBlock> blocks,
                                   std::vector<BlockPlacement> placements) {
  DPACK_CHECK_MSG(epoch == blocks.size(), "restore epoch must equal the block count");
  if (placements.empty()) {
    placements.assign(blocks.size(), BlockPlacement{});
    for (size_t i = 0; i < placements.size(); ++i) {
      placements[i].slot = i;
    }
  }
  DPACK_CHECK_MSG(placements.size() == blocks.size(),
                  "restore placements must parallel the blocks");

  BlockManager manager(std::move(grid), eps_g, delta_g);
  manager.epoch_ = epoch;

  // Each tier's slots must form a dense permutation; invert them to place blocks.
  size_t hot_count = 0;
  for (const BlockPlacement& p : placements) {
    hot_count += p.retired ? 0 : 1;
  }
  std::vector<size_t> id_at_hot_slot(hot_count, blocks.size());
  std::vector<size_t> id_at_retired_slot(blocks.size() - hot_count, blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    DPACK_CHECK_MSG(blocks[i].id() == static_cast<BlockId>(i),
                    "restore block ids must be dense and ordered");
    DPACK_CHECK_MSG(SameGrid(blocks[i].grid(), manager.grid_),
                    "restore block grid mismatch");
    std::vector<size_t>& tier = placements[i].retired ? id_at_retired_slot : id_at_hot_slot;
    DPACK_CHECK_MSG(placements[i].slot < tier.size(),
                    "restore placement slot out of range");
    DPACK_CHECK_MSG(tier[placements[i].slot] == blocks.size(),
                    "restore placement slots must be unique per tier");
    tier[placements[i].slot] = i;
  }

  manager.hot_.reserve(hot_count);
  for (size_t slot = 0; slot < id_at_hot_slot.size(); ++slot) {
    manager.hot_.push_back(std::move(blocks[id_at_hot_slot[slot]]));
    manager.hot_.back().set_version_sink(manager.version_tree_.get());
  }
  manager.retired_.reserve(id_at_retired_slot.size());
  for (size_t slot = 0; slot < id_at_retired_slot.size(); ++slot) {
    manager.retired_.push_back(std::move(blocks[id_at_retired_slot[slot]]));
    manager.retired_.back().set_version_sink(manager.version_tree_.get());
  }

  manager.slot_of_id_.resize(blocks.size());
  for (size_t i = 0; i < placements.size(); ++i) {
    manager.slot_of_id_[i] =
        placements[i].retired ? (kRetiredTierBit | placements[i].slot) : placements[i].slot;
  }

  // Rebuild the derived state in id order so it is deterministic: the version tree's sums
  // (a pure function of block versions), the unlock work list, and the retirement sweep's
  // group observations. Seeding retire_group_seen_ with the current sums makes the first
  // post-restore sweep behave exactly like the next sweep of the uninterrupted run: the
  // snapshot was captured after a sweep, so no unchanged group holds an eligible block.
  for (size_t i = 0; i < manager.slot_of_id_.size(); ++i) {
    BlockId id = static_cast<BlockId>(i);
    manager.version_tree_->SeedVersion(id, manager.block(id).version());
    if (manager.block(id).unlocked_fraction() < 1.0) {
      manager.unlocking_ids_.push_back(id);
    }
  }
  manager.retire_group_seen_.resize(manager.version_tree_->group_count());
  for (size_t g = 0; g < manager.retire_group_seen_.size(); ++g) {
    manager.retire_group_seen_[g] = manager.version_tree_->group_sum(g);
  }
  return manager;
}

void BlockManager::UpdateUnlocks(double now, double period, int64_t unlock_steps) {
  DPACK_CHECK(period > 0.0);
  DPACK_CHECK(unlock_steps >= 1);
  // Only blocks still below full unlock can change; the rule is per-block and monotone, so
  // processing the work list in any order gives the same state and the same version bumps.
  for (size_t i = 0; i < unlocking_ids_.size();) {
    PrivacyBlock& block = this->block(unlocking_ids_[i]);
    double age = now - block.arrival_time();
    if (age >= 0.0) {
      // Number of scheduling steps the block has witnessed, including the current one: a
      // block arriving at a cycle instant counts that cycle (floor(age/T) + 1), matching the
      // paper's ceil((t - t_j)/T) convention for blocks arriving strictly between cycles.
      int64_t steps = static_cast<int64_t>(std::floor(age / period)) + 1;
      steps = std::min(steps, unlock_steps);
      block.SetUnlockedFraction(static_cast<double>(steps) /
                                static_cast<double>(unlock_steps));
    }
    if (block.unlocked_fraction() >= 1.0) {
      unlocking_ids_[i] = unlocking_ids_.back();  // Fully unlocked: leaves the list forever.
      unlocking_ids_.pop_back();
    } else {
      ++i;
    }
  }
}

void BlockManager::RetireHotSlot(size_t slot) {
  size_t last = hot_.size() - 1;
  if (slot != last) {
    std::swap(hot_[slot], hot_[last]);
    slot_of_id_[static_cast<size_t>(hot_[slot].id())] = slot;
  }
  slot_of_id_[static_cast<size_t>(hot_[last].id())] =
      kRetiredTierBit | static_cast<uint64_t>(retired_.size());
  retired_.push_back(std::move(hot_[last]));
  hot_.pop_back();
}

size_t BlockManager::RetireNewlyExhausted() {
  retire_group_seen_.resize(version_tree_->group_count(), 0);
  size_t retired_now = 0;
  size_t total = slot_of_id_.size();
  for (size_t g = 0; g < retire_group_seen_.size(); ++g) {
    uint64_t sum = version_tree_->group_sum(g);
    if (sum == retire_group_seen_[g]) {
      continue;  // No member version advanced, so no member became eligible.
    }
    retire_group_seen_[g] = sum;
    size_t begin = g << BlockVersionTree::kGroupShift;
    size_t end = std::min(begin + (size_t{1} << BlockVersionTree::kGroupShift), total);
    for (size_t i = begin; i < end; ++i) {
      uint64_t slot = slot_of_id_[i];
      if ((slot & kRetiredTierBit) != 0) {
        continue;
      }
      const PrivacyBlock& candidate = hot_[slot];
      // Retire only when no future mutation is possible: fully unlocked (unlocking is
      // monotone and capped) and exhausted at every usable order (consumption only grows).
      if (candidate.unlocked_fraction() >= 1.0 && candidate.Exhausted()) {
        RetireHotSlot(slot);
        ++retired_now;
      }
    }
  }
  return retired_now;
}

}  // namespace dpack
