#include "src/block/block_manager.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace dpack {

BlockManager::BlockManager(AlphaGridPtr grid, double eps_g, double delta_g)
    : grid_(std::move(grid)), eps_g_(eps_g), delta_g_(delta_g) {
  DPACK_CHECK(grid_ != nullptr);
}

BlockId BlockManager::AddBlock(double arrival_time, bool unlocked) {
  BlockId id = static_cast<BlockId>(blocks_.size());
  blocks_.push_back(std::make_unique<PrivacyBlock>(id, grid_, eps_g_, delta_g_, arrival_time,
                                                   unlocked ? 1.0 : 0.0));
  ++epoch_;
  return id;
}

BlockId BlockManager::AddBlockWithCapacity(RdpCurve capacity, double arrival_time,
                                           bool unlocked) {
  DPACK_CHECK_MSG(SameGrid(capacity.grid(), grid_), "capacity grid mismatch");
  BlockId id = static_cast<BlockId>(blocks_.size());
  blocks_.push_back(std::make_unique<PrivacyBlock>(id, std::move(capacity), arrival_time,
                                                   unlocked ? 1.0 : 0.0));
  ++epoch_;
  return id;
}

PrivacyBlock& BlockManager::block(BlockId id) {
  DPACK_CHECK(id >= 0 && static_cast<size_t>(id) < blocks_.size());
  return *blocks_[static_cast<size_t>(id)];
}

const PrivacyBlock& BlockManager::block(BlockId id) const {
  DPACK_CHECK(id >= 0 && static_cast<size_t>(id) < blocks_.size());
  return *blocks_[static_cast<size_t>(id)];
}

std::vector<BlockId> BlockManager::MostRecentBlocks(size_t n) const {
  size_t count = std::min(n, blocks_.size());
  std::vector<BlockId> ids;
  ids.reserve(count);
  for (size_t i = blocks_.size() - count; i < blocks_.size(); ++i) {
    ids.push_back(static_cast<BlockId>(i));
  }
  return ids;
}

BlockManager BlockManager::Clone() const {
  BlockManager copy(grid_, eps_g_, delta_g_);
  copy.epoch_ = epoch_;
  copy.blocks_.reserve(blocks_.size());
  for (const auto& block : blocks_) {
    copy.blocks_.push_back(std::make_unique<PrivacyBlock>(*block));
  }
  return copy;
}

BlockManager BlockManager::Restore(AlphaGridPtr grid, double eps_g, double delta_g,
                                   uint64_t epoch, std::vector<PrivacyBlock> blocks) {
  DPACK_CHECK_MSG(epoch == blocks.size(), "restore epoch must equal the block count");
  BlockManager manager(std::move(grid), eps_g, delta_g);
  manager.epoch_ = epoch;
  manager.blocks_.reserve(blocks.size());
  for (PrivacyBlock& block : blocks) {
    DPACK_CHECK_MSG(block.id() == static_cast<BlockId>(manager.blocks_.size()),
                    "restore block ids must be dense and ordered");
    DPACK_CHECK_MSG(SameGrid(block.grid(), manager.grid_), "restore block grid mismatch");
    manager.blocks_.push_back(std::make_unique<PrivacyBlock>(std::move(block)));
  }
  return manager;
}

void BlockManager::UpdateUnlocks(double now, double period, int64_t unlock_steps) {
  DPACK_CHECK(period > 0.0);
  DPACK_CHECK(unlock_steps >= 1);
  for (auto& block : blocks_) {
    double age = now - block->arrival_time();
    if (age < 0.0) {
      continue;  // Not yet arrived (should not happen, but harmless).
    }
    // Number of scheduling steps the block has witnessed, including the current one: a block
    // arriving at a cycle instant counts that cycle (floor(age/T) + 1), matching the paper's
    // ceil((t - t_j)/T) convention for blocks arriving strictly between cycles.
    int64_t steps = static_cast<int64_t>(std::floor(age / period)) + 1;
    steps = std::min(steps, unlock_steps);
    block->SetUnlockedFraction(static_cast<double>(steps) / static_cast<double>(unlock_steps));
  }
}

}  // namespace dpack
