// Two-level version clock over the block population (ISSUE 6): the root is the sum of all
// block versions, the inner level sums versions per group of 64 consecutive ids. Every
// version bump (Commit, effective unlock) is pushed into the tree by the block itself, so
// consumers detect "anything changed?" in O(1) and locate the changed blocks in
// O(groups + changed) instead of scanning every block's version each cycle.
//
// Invariant: group_sum(g) == sum of version() over blocks with id >> kGroupShift == g, and
// total() == sum of all group sums. Versions are monotone, so the sums are monotone and a
// group-sum change is equivalent to "some member's version advanced" — no cancellation is
// possible. BlockManager maintains the invariant across AddBlock, Clone, and Restore
// (restored blocks carry nonzero versions, which are folded into the sums), which makes the
// tree a pure function of block state: identical across engines, clones, and resumed runs.

#ifndef SRC_BLOCK_VERSION_TREE_H_
#define SRC_BLOCK_VERSION_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dpack {

class BlockVersionTree {
 public:
  // 64 blocks per group: at 1M blocks the per-consumer scan is ~16k group sums (one cache
  // line covers 8), and a single dirty block narrows the drill-down to 64 candidates.
  static constexpr size_t kGroupShift = 6;

  static constexpr size_t GroupOf(int64_t id) {
    return static_cast<size_t>(id) >> kGroupShift;
  }

  // Grows the group array to cover `id`. Called on every AddBlock before the block can bump.
  void Track(int64_t id) {
    size_t group = GroupOf(id);
    if (group >= groups_.size()) {
      groups_.resize(group + 1, 0);
    }
  }

  // Records one version bump of block `id`. Requires Track(id) to have been called.
  void OnBump(int64_t id) {
    ++groups_[GroupOf(id)];
    ++total_;
  }

  // Folds a restored block's pre-existing version into the sums (Restore only), keeping the
  // sum-of-versions invariant for managers rebuilt from checkpoints.
  void SeedVersion(int64_t id, uint64_t version) {
    Track(id);
    groups_[GroupOf(id)] += version;
    total_ += version;
  }

  uint64_t total() const { return total_; }
  size_t group_count() const { return groups_.size(); }
  uint64_t group_sum(size_t group) const { return groups_[group]; }

 private:
  std::vector<uint64_t> groups_;
  uint64_t total_ = 0;
};

}  // namespace dpack

#endif  // SRC_BLOCK_VERSION_TREE_H_
