// Registry of live privacy blocks with online arrival and budget unlocking (§3.4).
//
// Storage is a two-tier slab (ISSUE 6): blocks live densely in a hot vector until they are
// retired — provably unable to ever change again (Exhausted() with the full budget
// unlocked) — at which point they compact into a retired slab. A per-id slot table keeps
// block(id) O(1) and id-stable across compaction, so retirement is invisible to every
// consumer that addresses blocks by id: scheduling outcomes, versions, and ids are
// byte-identical whether or not a block has been retired. The hot slab is what scans touch
// (unlock sweeps, refresh drill-downs), so its density is what keeps per-cycle cost
// proportional to the live population, not to history.
//
// Change detection is hierarchical: every version bump is reported to a BlockVersionTree
// (src/block/version_tree.h), so consumers locate changed blocks by scanning group sums
// (64 ids per group) instead of every block's version.

#ifndef SRC_BLOCK_BLOCK_MANAGER_H_
#define SRC_BLOCK_BLOCK_MANAGER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/block/privacy_block.h"
#include "src/block/version_tree.h"

namespace dpack {

// Where a block lives in the two-tier slab: its tier and its dense slot within that tier.
// Captured into checkpoints so a restored manager reproduces the exact layout.
struct BlockPlacement {
  bool retired = false;
  uint64_t slot = 0;
};

class BlockManager {
 public:
  // Blocks created by this manager share `grid` and derive capacity from (eps_g, delta_g).
  BlockManager(AlphaGridPtr grid, double eps_g, double delta_g);

  // The slabs hold blocks by value and the tree is heap-pinned; moving the manager keeps
  // every block's sink pointer valid, but copying must go through Clone() (re-sinks).
  BlockManager(BlockManager&&) = default;
  BlockManager& operator=(BlockManager&&) = default;

  const AlphaGridPtr& grid() const { return grid_; }
  double eps_g() const { return eps_g_; }
  double delta_g() const { return delta_g_; }

  // Adds a new block arriving at `arrival_time`; returns its id (dense, starting at 0).
  // In the online setting the block starts fully locked; UpdateUnlocks opens budget.
  // In the offline setting call with unlocked=true to make the whole budget available.
  BlockId AddBlock(double arrival_time, bool unlocked = false);

  // Adds a block with an explicit per-order capacity curve (must share this manager's grid)
  // instead of the derived (eps_g, delta_g) capacity. Used for synthetic instances.
  BlockId AddBlockWithCapacity(RdpCurve capacity, double arrival_time, bool unlocked = false);

  size_t block_count() const { return slot_of_id_.size(); }
  size_t hot_count() const { return hot_.size(); }
  size_t retired_count() const { return retired_.size(); }

  // References are invalidated by AddBlock* and RetireNewlyExhausted (slab growth and
  // compaction move blocks); hold them only within a scheduling cycle.
  PrivacyBlock& block(BlockId id);
  const PrivacyBlock& block(BlockId id) const;

  bool retired(BlockId id) const;
  BlockPlacement placement_of(BlockId id) const;

  // Monotonic arrival epoch, bumped whenever a block is added. Combined with the per-block
  // versions this gives consumers an exact change signal: if the epoch and every block
  // version are unchanged since the last observation, the manager's capacity state is
  // bit-identical. Clone() preserves the epoch and all versions so a clone's observations
  // remain comparable to the original's.
  uint64_t epoch() const { return epoch_; }

  // The hierarchical version clock: group sums change exactly when a member block's version
  // advances. Consumers diff group sums against their last observation to find changed
  // blocks in O(groups + changed).
  const BlockVersionTree& version_tree() const { return *version_tree_; }

  // Ids of the `n` most recent blocks (or all if fewer exist), most recent last. Ids are
  // dense, so this is O(n) regardless of the total block count, and retirement does not
  // change what it returns.
  std::vector<BlockId> MostRecentBlocks(size_t n) const;

  // Applies the paper's unlocking rule at scheduling time `now`: every block's unlocked
  // fraction becomes min(ceil((now - t_j) / period), unlock_steps) / unlock_steps.
  // Requires period > 0 and unlock_steps >= 1. O(still-unlocking blocks): fully-unlocked
  // blocks leave the work list permanently (the rule is monotone and capped at 1).
  void UpdateUnlocks(double now, double period, int64_t unlock_steps);

  // Retires every hot block that can provably never change again: Exhausted() with the full
  // budget unlocked (so no future unlock or admissible commit can touch it). Scans only
  // groups whose version sum advanced since the previous sweep — a block becomes eligible
  // only at a version bump, so an unchanged group cannot contain a newly eligible block.
  // Retirement order is id order within a sweep, which makes the slab layout a deterministic
  // function of the commit/unlock history (identical across engines and across
  // checkpoint/resume). Returns the number of blocks retired by this sweep.
  size_t RetireNewlyExhausted();

  // Deep copy of the manager and all block states (capacities, consumption, unlocking).
  // Used by schedulers that need to trial-run allocation without committing budget.
  BlockManager Clone() const;

  // Rebuilds a manager from checkpointed state (see src/orchestrator/checkpoint.h):
  // `blocks` must carry dense ids 0..n-1 in order, on `grid`, and `epoch` must equal the
  // block count (the epoch only ever advances on AddBlock*). `placements` (parallel to
  // `blocks`; empty means every block is hot in id order) reproduces the captured slab
  // layout — each tier's slots must form a dense permutation. The result is byte-identical
  // to the captured manager — including the epoch, every block's version, and the
  // hot/retired placement — so change signals observed against the restored manager compare
  // exactly like the original's.
  static BlockManager Restore(AlphaGridPtr grid, double eps_g, double delta_g,
                              uint64_t epoch, std::vector<PrivacyBlock> blocks,
                              std::vector<BlockPlacement> placements = {});

 private:
  static constexpr uint64_t kRetiredTierBit = uint64_t{1} << 63;

  // Moves hot slot `slot` into the retired slab (swap-pop compaction).
  void RetireHotSlot(size_t slot);

  AlphaGridPtr grid_;
  double eps_g_;
  double delta_g_;
  uint64_t epoch_ = 0;
  std::vector<PrivacyBlock> hot_;
  std::vector<PrivacyBlock> retired_;
  // Indexed by id: slot within hot_, or (kRetiredTierBit | slot within retired_).
  std::vector<uint64_t> slot_of_id_;
  // Ids with unlocked_fraction < 1 — UpdateUnlocks' work list. Membership is a set (the
  // unlock rule is per-block and order-independent); ids swap-pop out on reaching 1.
  std::vector<BlockId> unlocking_ids_;
  // Version-tree group sums at the last retirement sweep.
  std::vector<uint64_t> retire_group_seen_;
  // Heap-pinned so block sink pointers survive manager moves.
  std::unique_ptr<BlockVersionTree> version_tree_;
};

}  // namespace dpack

#endif  // SRC_BLOCK_BLOCK_MANAGER_H_
