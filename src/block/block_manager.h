// Registry of live privacy blocks with online arrival and budget unlocking (§3.4).

#ifndef SRC_BLOCK_BLOCK_MANAGER_H_
#define SRC_BLOCK_BLOCK_MANAGER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/block/privacy_block.h"

namespace dpack {

class BlockManager {
 public:
  // Blocks created by this manager share `grid` and derive capacity from (eps_g, delta_g).
  BlockManager(AlphaGridPtr grid, double eps_g, double delta_g);

  const AlphaGridPtr& grid() const { return grid_; }
  double eps_g() const { return eps_g_; }
  double delta_g() const { return delta_g_; }

  // Adds a new block arriving at `arrival_time`; returns its id (dense, starting at 0).
  // In the online setting the block starts fully locked; UpdateUnlocks opens budget.
  // In the offline setting call with unlocked=true to make the whole budget available.
  BlockId AddBlock(double arrival_time, bool unlocked = false);

  // Adds a block with an explicit per-order capacity curve (must share this manager's grid)
  // instead of the derived (eps_g, delta_g) capacity. Used for synthetic instances.
  BlockId AddBlockWithCapacity(RdpCurve capacity, double arrival_time, bool unlocked = false);

  size_t block_count() const { return blocks_.size(); }
  PrivacyBlock& block(BlockId id);
  const PrivacyBlock& block(BlockId id) const;

  // Monotonic arrival epoch, bumped whenever a block is added. Combined with the per-block
  // versions this gives consumers an exact change signal: if the epoch and every block
  // version are unchanged since the last observation, the manager's capacity state is
  // bit-identical. Clone() preserves the epoch and all versions so a clone's observations
  // remain comparable to the original's.
  uint64_t epoch() const { return epoch_; }

  // Ids of the `n` most recent blocks (or all if fewer exist), most recent last.
  std::vector<BlockId> MostRecentBlocks(size_t n) const;

  // Applies the paper's unlocking rule at scheduling time `now`: every block's unlocked
  // fraction becomes min(ceil((now - t_j) / period), unlock_steps) / unlock_steps.
  // Requires period > 0 and unlock_steps >= 1.
  void UpdateUnlocks(double now, double period, int64_t unlock_steps);

  // Deep copy of the manager and all block states (capacities, consumption, unlocking).
  // Used by schedulers that need to trial-run allocation without committing budget.
  BlockManager Clone() const;

  // Rebuilds a manager from checkpointed state (see src/orchestrator/checkpoint.h):
  // `blocks` must carry dense ids 0..n-1 in order, on `grid`, and `epoch` must equal the
  // block count (the epoch only ever advances on AddBlock*). The result is byte-identical
  // to the captured manager — including the epoch and every block's version — so change
  // signals observed against the restored manager compare exactly like the original's.
  static BlockManager Restore(AlphaGridPtr grid, double eps_g, double delta_g,
                              uint64_t epoch, std::vector<PrivacyBlock> blocks);

 private:
  AlphaGridPtr grid_;
  double eps_g_;
  double delta_g_;
  uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<PrivacyBlock>> blocks_;
};

}  // namespace dpack

#endif  // SRC_BLOCK_BLOCK_MANAGER_H_
