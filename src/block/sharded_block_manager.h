// Shard partition over a BlockManager: assigns every block to one of N shards and gives
// each shard its own epoch/version space, extending PR 1's change-detection invariant to
// shard granularity so consumers (the sharded scheduling engine, future per-shard scheduler
// threads) can detect *which* partition of the capacity state changed, in O(blocks) counter
// reads and without touching any curve.
//
// Partitioning schemes (BlockPartition, chosen at construction):
//   - kRoundRobin: block g belongs to shard g mod N, local index g / N. Global ids are
//     dense and arrival-ordered, so shards stay balanced block-by-block under online
//     arrival (members of shard s, in id order, are exactly {s, s + N, s + 2N, ...}).
//   - kIdRange: 64-block chunks (the BlockVersionTree group size, so a version-tree group
//     never straddles shards) dealt round-robin — shard(g) = (g / 64) mod N, local index
//     (g / 64 / N) * 64 + g mod 64. Consecutive ids land on the same shard, so a shard's
//     refresh walks contiguous block state (cache/NUMA locality, ROADMAP item 2); balance
//     is per-chunk instead of per-block.
// Under both schemes local indices are dense per shard (ids are dense and only the
// globally-last chunk is partial), so per-shard arrays sized by shard_members(s).size()
// are indexed by LocalIndex directly. The partition only redistributes *block ownership*
// (refresh/solve work); the scheduling engines' task-side sharding and merge order never
// read it, which is why grants are byte-identical across partition modes (pinned by
// tests/integration/scenario_matrix_test.cc).
//
// Per-shard clocks, mirroring the manager-level invariant (see src/dpack/dpack.h):
//   - shard_epoch(s): number of blocks absorbed into shard s — the shard's own arrival
//     epoch. Sum over shards equals the number of blocks the partition has absorbed.
//   - shard_version(s): sum of the member blocks' monotonic versions at the last Sync().
//     Versions only grow, so the sum is monotone, and an unchanged (epoch, version) pair
//     proves every block in the shard bit-identical — the per-shard restriction of the
//     manager's "unchanged (epoch, versions) => bit-identical capacity state".
//
// The clocks are atomics so per-shard scheduler threads (AsyncScheduleEngine) can read them
// lock-free while the driver thread runs Sync(): a thread stamps (epoch, version) when it
// starts working against the shard's state and revalidates the stamp when it publishes,
// proving no Sync intervened — the engine's quiesce check. Sync() itself is still
// single-writer (release stores); only the reads are concurrent.
//
// The partition is a passive overlay: it never mutates the manager, and it observes
// arrivals only at Sync(), which callers run once per scheduling cycle (single-threaded)
// before fanning work out per shard.

#ifndef SRC_BLOCK_SHARDED_BLOCK_MANAGER_H_
#define SRC_BLOCK_SHARDED_BLOCK_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/block/block_manager.h"

namespace dpack {

// How blocks are assigned to shards; see the file comment. Grant sequences are identical
// under either mode — the choice trades per-block balance (kRoundRobin) for contiguous
// per-shard id ranges (kIdRange).
enum class BlockPartition {
  kRoundRobin,
  kIdRange,
};

class ShardedBlockManager {
 public:
  // Chunk size of the kIdRange scheme: the BlockVersionTree group size, so one version-tree
  // group is always owned by one shard.
  static constexpr size_t kRangeChunkShift = BlockVersionTree::kGroupShift;

  // `blocks` must outlive this object; `num_shards` >= 1. Existing blocks are absorbed by
  // the first Sync().
  ShardedBlockManager(BlockManager* blocks, size_t num_shards,
                      BlockPartition partition = BlockPartition::kRoundRobin);

  BlockManager& manager() { return *blocks_; }
  const BlockManager& manager() const { return *blocks_; }

  size_t num_shards() const { return shards_.size(); }
  BlockPartition partition() const { return partition_; }
  size_t ShardOf(BlockId id) const {
    uint64_t g = static_cast<uint64_t>(id);
    if (partition_ == BlockPartition::kIdRange) {
      g >>= kRangeChunkShift;
    }
    return static_cast<size_t>(g % shards_.size());
  }
  // Index of block `id` within its shard's member list (dense under both schemes).
  size_t LocalIndex(BlockId id) const {
    uint64_t g = static_cast<uint64_t>(id);
    if (partition_ == BlockPartition::kIdRange) {
      constexpr uint64_t kMask = (uint64_t{1} << kRangeChunkShift) - 1;
      return static_cast<size_t>(((g >> kRangeChunkShift) / shards_.size())
                                     << kRangeChunkShift) +
             static_cast<size_t>(g & kMask);
    }
    return static_cast<size_t>(g / shards_.size());
  }

  // Member block ids of shard `s`, in increasing (arrival) order.
  const std::vector<BlockId>& shard_members(size_t s) const { return shards_[s].members; }
  // Lock-free clock reads (acquire): safe from per-shard scheduler threads concurrently
  // with a Sync() on the driver thread.
  uint64_t shard_epoch(size_t s) const {
    return shards_[s].epoch.load(std::memory_order_acquire);
  }
  uint64_t shard_version(size_t s) const {
    return shards_[s].version.load(std::memory_order_acquire);
  }
  // True when the last Sync() advanced shard `s`'s epoch or version — some member block's
  // capacity state changed (or arrived) since the previous Sync. Note this covers *capacity*
  // changes only; requester-set (membership) changes live outside the block layer.
  bool shard_dirty(size_t s) const { return shards_[s].dirty; }

  // Member ids of shard `s` whose version advanced between the previous Sync and the last
  // one, in increasing id order — the exact set a consumer must refresh. Blocks absorbed by
  // the last Sync are *not* listed (they are new, not changed; consumers see them through
  // the epoch/member list). Stable until the next Sync; readable from parallel phases.
  const std::vector<BlockId>& shard_changed(size_t s) const { return shards_[s].changed; }

  // Blocks absorbed so far (= the manager's block_count() at the last Sync).
  size_t known_blocks() const { return known_; }

  // Absorbs blocks added to the manager since the last Sync (per the partition scheme) and
  // refreshes every shard's version sum, changed list, and dirty flag. Returns the number of
  // new blocks. Not thread-safe; run between parallel phases.
  //
  // O(arrivals + changed) via the manager's BlockVersionTree: only groups whose version sum
  // advanced are drilled into, and within them only blocks whose recorded version moved are
  // charged to their shard. The shard version sums stay exactly "sum of member versions"
  // (the checkpoint codec re-derives and cross-checks them), updated by per-block deltas.
  size_t Sync();

 private:
  struct Shard {
    std::vector<BlockId> members;
    // Changed (not new) member ids from the last Sync; see shard_changed().
    std::vector<BlockId> changed;
    // The per-shard clocks. Atomics for lock-free reads from scheduler threads; all writes
    // happen in Sync() on the driver thread (single writer, release stores).
    std::atomic<uint64_t> epoch{0};    // Arrivals absorbed into this shard.
    std::atomic<uint64_t> version{0};  // Sum of member versions at the last Sync.
    bool dirty = false;  // Epoch or version advanced in the last Sync.
  };

  BlockManager* blocks_;
  BlockPartition partition_;
  // Sized once at construction and never resized (Shard holds atomics, so the vector's
  // elements must stay in place).
  std::vector<Shard> shards_;
  size_t known_ = 0;
  // Per-id version recorded when the block was last absorbed or refreshed by Sync.
  std::vector<uint64_t> last_block_version_;
  // Version-tree group sums at the last Sync — the drill-down filter.
  std::vector<uint64_t> group_seen_;
};

}  // namespace dpack

#endif  // SRC_BLOCK_SHARDED_BLOCK_MANAGER_H_
