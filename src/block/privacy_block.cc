#include "src/block/privacy_block.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/block/version_tree.h"
#include "src/common/check.h"

namespace dpack {

PrivacyBlock::PrivacyBlock(BlockId id, RdpCurve capacity, double arrival_time,
                           double initial_unlocked)
    : id_(id),
      capacity_(std::move(capacity)),
      consumed_(capacity_.grid()),
      arrival_time_(arrival_time),
      unlocked_fraction_(initial_unlocked) {
  DPACK_CHECK(initial_unlocked >= 0.0 && initial_unlocked <= 1.0);
}

PrivacyBlock::PrivacyBlock(BlockId id, const AlphaGridPtr& grid, double eps_g, double delta_g,
                           double arrival_time, double initial_unlocked)
    : PrivacyBlock(id, BlockCapacityCurve(grid, eps_g, delta_g), arrival_time,
                   initial_unlocked) {}

PrivacyBlock PrivacyBlock::Restore(BlockId id, RdpCurve capacity, double arrival_time,
                                   double unlocked_fraction, RdpCurve consumed,
                                   uint64_t version) {
  DPACK_CHECK_MSG(SameGrid(consumed.grid(), capacity.grid()), "restore grid mismatch");
  for (size_t i = 0; i < consumed.size(); ++i) {
    double eps = consumed.epsilon(i);
    DPACK_CHECK_MSG(eps >= 0.0 && !std::isnan(eps), "restore consumed out of range");
  }
  PrivacyBlock block(id, std::move(capacity), arrival_time, unlocked_fraction);
  block.consumed_ = std::move(consumed);
  block.version_ = version;
  return block;
}

PrivacyBlock::PrivacyBlock(const PrivacyBlock& other)
    : id_(other.id_),
      capacity_(other.capacity_),
      consumed_(other.consumed_),
      arrival_time_(other.arrival_time_),
      unlocked_fraction_(other.unlocked_fraction_),
      version_(other.version_),
      sink_(nullptr) {}

PrivacyBlock& PrivacyBlock::operator=(const PrivacyBlock& other) {
  id_ = other.id_;
  capacity_ = other.capacity_;
  consumed_ = other.consumed_;
  arrival_time_ = other.arrival_time_;
  unlocked_fraction_ = other.unlocked_fraction_;
  version_ = other.version_;
  sink_ = nullptr;
  return *this;
}

void PrivacyBlock::BumpVersion() {
  ++version_;
  if (sink_ != nullptr) {
    sink_->OnBump(id_);
  }
}

void PrivacyBlock::SetUnlockedFraction(double fraction) {
  DPACK_CHECK(fraction >= 0.0 && fraction <= 1.0);
  // Unlocking is monotone: budget never re-locks, so stale (smaller) updates are ignored.
  // Only an effective increase changes the available capacity, hence the version.
  if (fraction > unlocked_fraction_) {
    unlocked_fraction_ = fraction;
    BumpVersion();
  }
}

double PrivacyBlock::UnlockedCapacityAt(size_t alpha_index) const {
  return unlocked_fraction_ * capacity_.epsilon(alpha_index);
}

double PrivacyBlock::AvailableAt(size_t alpha_index) const {
  return std::max(0.0, UnlockedCapacityAt(alpha_index) - consumed_.epsilon(alpha_index));
}

RdpCurve PrivacyBlock::AvailableCurve() const {
  std::vector<double> available(capacity_.size());
  for (size_t i = 0; i < capacity_.size(); ++i) {
    available[i] = AvailableAt(i);
  }
  return RdpCurve(capacity_.grid(), std::move(available));
}

bool PrivacyBlock::CanAccept(const RdpCurve& demand) const {
  DPACK_CHECK_MSG(SameGrid(demand.grid(), capacity_.grid()), "grid mismatch");
  for (size_t i = 0; i < capacity_.size(); ++i) {
    double cap = UnlockedCapacityAt(i);
    if (cap <= 0.0) {
      continue;  // Order unusable under the global guarantee.
    }
    // Tiny relative slack absorbs accumulation round-off (e.g. N equal demands summing to
    // exactly the capacity); the 1e-9-level overshoot is immaterial to the DP guarantee.
    double slack = 1e-9 * (1.0 + cap);
    if (consumed_.epsilon(i) + demand.epsilon(i) <= cap + slack) {
      return true;
    }
  }
  return false;
}

void PrivacyBlock::Commit(const RdpCurve& demand) {
  DPACK_CHECK_MSG(CanAccept(demand), "Commit on a demand the filter rejects");
  consumed_.Accumulate(demand);
  BumpVersion();
}

bool PrivacyBlock::Exhausted() const {
  for (size_t i = 0; i < capacity_.size(); ++i) {
    double cap = capacity_.epsilon(i);
    if (cap <= 0.0) {
      continue;  // Order unusable under the global guarantee.
    }
    // Same tolerance as CanAccept: remaining capacity within the admission slack cannot
    // accept any meaningful demand, so a block consumed to within float noise of capacity
    // is retired rather than kept alive forever.
    double slack = 1e-9 * (1.0 + cap);
    if (consumed_.epsilon(i) + slack < cap) {
      return false;
    }
  }
  return true;
}

std::string PrivacyBlock::DebugString() const {
  std::ostringstream os;
  os << "PrivacyBlock{id=" << id_ << ", unlocked=" << unlocked_fraction_
     << ", consumed=" << consumed_.DebugString() << ", capacity=" << capacity_.DebugString()
     << "}";
  return os.str();
}

}  // namespace dpack
