#include "src/block/sharded_block_manager.h"

#include "src/common/check.h"

namespace dpack {

ShardedBlockManager::ShardedBlockManager(BlockManager* blocks, size_t num_shards,
                                         BlockPartition partition)
    : blocks_(blocks), partition_(partition), shards_(num_shards) {
  DPACK_CHECK(blocks_ != nullptr);
  DPACK_CHECK_MSG(num_shards >= 1, "ShardedBlockManager needs at least one shard");
}

size_t ShardedBlockManager::Sync() {
  size_t count = blocks_->block_count();
  DPACK_CHECK_MSG(count >= known_, "blocks disappeared: use a fresh partition per manager");
  for (Shard& shard : shards_) {
    shard.dirty = false;
    shard.changed.clear();
  }
  // Per-shard version-sum deltas accumulated this Sync (applied with one release store
  // each, keeping "shard version == sum of member versions" exact).
  std::vector<uint64_t> delta(shards_.size(), 0);

  size_t added = count - known_;
  last_block_version_.resize(count, 0);
  for (size_t g = known_; g < count; ++g) {
    Shard& shard = shards_[ShardOf(static_cast<BlockId>(g))];
    shard.members.push_back(static_cast<BlockId>(g));
    shard.epoch.store(shard.epoch.load(std::memory_order_relaxed) + 1,
                      std::memory_order_release);
    shard.dirty = true;
    // Record the version at absorption (nonzero when the partition was built over a
    // restored manager) so the group drill-down below does not re-report arrivals.
    uint64_t version = blocks_->block(static_cast<BlockId>(g)).version();
    last_block_version_[g] = version;
    delta[ShardOf(static_cast<BlockId>(g))] += version;
  }
  known_ = count;

  // Drill into groups whose version sum advanced; within them, only blocks whose recorded
  // version moved are changed. O(groups + changed) instead of O(members) per shard.
  const BlockVersionTree& tree = blocks_->version_tree();
  group_seen_.resize(tree.group_count(), 0);
  for (size_t g = 0; g < group_seen_.size(); ++g) {
    uint64_t sum = tree.group_sum(g);
    if (sum == group_seen_[g]) {
      continue;
    }
    group_seen_[g] = sum;
    size_t begin = g << BlockVersionTree::kGroupShift;
    size_t end = std::min(begin + (size_t{1} << BlockVersionTree::kGroupShift), count);
    for (size_t i = begin; i < end; ++i) {
      uint64_t version = blocks_->block(static_cast<BlockId>(i)).version();
      if (version == last_block_version_[i]) {
        continue;
      }
      size_t s = ShardOf(static_cast<BlockId>(i));
      delta[s] += version - last_block_version_[i];
      last_block_version_[i] = version;
      shards_[s].changed.push_back(static_cast<BlockId>(i));
      shards_[s].dirty = true;
    }
  }

  for (size_t s = 0; s < shards_.size(); ++s) {
    if (delta[s] != 0) {
      shards_[s].version.store(shards_[s].version.load(std::memory_order_relaxed) + delta[s],
                               std::memory_order_release);
    }
  }
  return added;
}

}  // namespace dpack
