#include "src/block/sharded_block_manager.h"

#include "src/common/check.h"

namespace dpack {

ShardedBlockManager::ShardedBlockManager(BlockManager* blocks, size_t num_shards)
    : blocks_(blocks), shards_(num_shards) {
  DPACK_CHECK(blocks_ != nullptr);
  DPACK_CHECK_MSG(num_shards >= 1, "ShardedBlockManager needs at least one shard");
}

size_t ShardedBlockManager::Sync() {
  size_t count = blocks_->block_count();
  DPACK_CHECK_MSG(count >= known_, "blocks disappeared: use a fresh partition per manager");
  for (Shard& shard : shards_) {
    shard.dirty = false;
  }
  size_t added = count - known_;
  for (size_t g = known_; g < count; ++g) {
    Shard& shard = shards_[ShardOf(static_cast<BlockId>(g))];
    shard.members.push_back(static_cast<BlockId>(g));
    shard.epoch.store(shard.epoch.load(std::memory_order_relaxed) + 1,
                      std::memory_order_release);
    shard.dirty = true;
  }
  known_ = count;
  for (Shard& shard : shards_) {
    uint64_t version = 0;
    for (BlockId g : shard.members) {
      version += blocks_->block(g).version();
    }
    if (version != shard.version.load(std::memory_order_relaxed)) {
      shard.version.store(version, std::memory_order_release);
      shard.dirty = true;
    }
  }
  return added;
}

}  // namespace dpack
