// A privacy block: a data partition with a finite, non-replenishable RDP budget guarded by a
// Rényi privacy filter (§2.3, §3.4).
//
// The block's total per-order capacity is derived from the global (eps_g, delta_g)-DP
// guarantee via `BlockCapacityCurve`. A demand is admissible if, after charging it, the
// cumulative consumption stays within capacity for *at least one* Rényi order — the
// "exists alpha" semantic of the privacy knapsack (Eq. 5) and of Rényi filters, which is what
// lets translation to traditional DP pick the single best order.
//
// For online scheduling, only a fraction of the capacity is unlocked at a time
// (min(ceil((t - t_j)/T), N)/N, §3.4); admission during scheduling is checked against the
// unlocked capacity, which is always <= total capacity, so the filter guarantee is preserved.

#ifndef SRC_BLOCK_PRIVACY_BLOCK_H_
#define SRC_BLOCK_PRIVACY_BLOCK_H_

#include <cstdint>
#include <string>

#include "src/rdp/rdp_curve.h"

namespace dpack {

using BlockId = int64_t;

class BlockVersionTree;

class PrivacyBlock {
 public:
  // A block with explicit per-order capacity, arriving at `arrival_time` (virtual time).
  // `initial_unlocked` in [0, 1] sets the starting unlocked fraction: 1 for offline systems,
  // 0 for online blocks whose budget unlocks over time.
  PrivacyBlock(BlockId id, RdpCurve capacity, double arrival_time,
               double initial_unlocked = 1.0);

  // Convenience: capacity derived from a global (eps_g, delta_g)-DP guarantee.
  PrivacyBlock(BlockId id, const AlphaGridPtr& grid, double eps_g, double delta_g,
               double arrival_time, double initial_unlocked = 1.0);

  // Rebuilds a block from checkpointed state, byte-identically: the consumed curve and the
  // monotonic version counter are restored exactly as captured, so a restored manager's
  // change-detection clocks stay comparable with the uninterrupted run's. Requires
  // `consumed` on the capacity's grid with non-negative, non-NaN entries (checkpoint
  // restore validates structure before calling; these checks are the last line of defense).
  static PrivacyBlock Restore(BlockId id, RdpCurve capacity, double arrival_time,
                              double unlocked_fraction, RdpCurve consumed, uint64_t version);

  // A copy is a detached trial state (e.g. BlockManager::Clone before re-sinking): it keeps
  // the version but reports bumps to no tree until its owner re-attaches one. A move keeps
  // the sink — slab reallocation and retirement compaction move blocks that stay managed.
  PrivacyBlock(const PrivacyBlock& other);
  PrivacyBlock& operator=(const PrivacyBlock& other);
  PrivacyBlock(PrivacyBlock&&) = default;
  PrivacyBlock& operator=(PrivacyBlock&&) = default;

  BlockId id() const { return id_; }
  double arrival_time() const { return arrival_time_; }
  const AlphaGridPtr& grid() const { return capacity_.grid(); }

  const RdpCurve& capacity() const { return capacity_; }
  const RdpCurve& consumed() const { return consumed_; }

  // Fraction of the total capacity currently unlocked, in [0, 1]. Starts fully unlocked
  // (offline setting); the online scheduler drives it via SetUnlockedFraction.
  double unlocked_fraction() const { return unlocked_fraction_; }
  void SetUnlockedFraction(double fraction);

  // Monotonic state version, bumped on every state change that can alter the available
  // capacity: each Commit and each *effective* unlock increase (SetUnlockedFraction calls
  // that do not raise the fraction leave it untouched). Invariant: equal versions observed
  // at two points in time imply bit-identical AvailableCurve() results, which is what lets
  // the incremental scheduling engine (ScheduleContext) skip rescoring tasks whose blocks
  // did not change between cycles.
  uint64_t version() const { return version_; }

  // Attaches the version tree every future bump is reported to (nullptr detaches). Owned by
  // the managing BlockManager; the block never outlives it.
  void set_version_sink(BlockVersionTree* sink) { sink_ = sink; }

  // Unlocked capacity at order `alpha_index`: unlocked_fraction * capacity(alpha).
  double UnlockedCapacityAt(size_t alpha_index) const;

  // Remaining unlocked capacity at one order, clamped at zero — AvailableCurve's per-order
  // value without materializing the curve.
  double AvailableAt(size_t alpha_index) const;

  // Remaining unlocked capacity per order, clamped at zero:
  // max(0, unlocked_fraction * capacity(alpha) - consumed(alpha)). This is the c_j(alpha)
  // that scheduling heuristics normalize demands by.
  RdpCurve AvailableCurve() const;

  // Filter admission check: true iff there exists an order alpha with
  // consumed(alpha) + demand(alpha) <= unlocked capacity(alpha).
  bool CanAccept(const RdpCurve& demand) const;

  // Charges `demand` to the block. Requires CanAccept(demand).
  void Commit(const RdpCurve& demand);

  // True when every usable order's remaining *total* capacity is within CanAccept's
  // admission tolerance (1e-9 * (1 + cap)); the block can never admit another meaningful
  // demand and may be retired (§2.3).
  bool Exhausted() const;

  std::string DebugString() const;

 private:
  // Bumps version_ and reports it to the attached tree.
  void BumpVersion();

  BlockId id_;
  RdpCurve capacity_;
  RdpCurve consumed_;
  double arrival_time_;
  double unlocked_fraction_ = 1.0;
  uint64_t version_ = 0;
  BlockVersionTree* sink_ = nullptr;
};

}  // namespace dpack

#endif  // SRC_BLOCK_PRIVACY_BLOCK_H_
