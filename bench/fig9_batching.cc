// Fig. 9 reproduction (appendix): impact of the batching period T on global efficiency (a)
// and scheduling delay (b), on the online Alibaba-DP workload.
// Expected shape: beyond a small batch size the prioritizing schedulers are insensitive to
// T; delays grow with T; DPack consistently outperforms DPF.

#include <cstdio>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

void Run(Scale scale) {
  double f = ScaleFactor(scale);
  size_t num_tasks = static_cast<size_t>(8000 * f);
  const size_t num_blocks = 60;

  AlibabaConfig config;
  config.num_tasks = num_tasks;
  config.arrival_span = static_cast<double>(num_blocks);
  config.seed = 29;
  std::vector<Task> tasks = GenerateAlibabaDp(SharedPool(), config);

  CsvTable alloc({"T", "DPack", "DPF", "FCFS", "DPack/DPF"});
  CsvTable delay({"T", "DPack_median_delay", "DPF_median_delay", "FCFS_median_delay"});
  for (double period : {1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0}) {
    size_t counts[3];
    double medians[3];
    int i = 0;
    for (SchedulerKind kind :
         {SchedulerKind::kDpack, SchedulerKind::kDpf, SchedulerKind::kFcfs}) {
      SimConfig sim;
      sim.num_blocks = num_blocks;
      sim.unlock_steps = 50;
      sim.period = period;
      SimResult result = RunOnlineSimulation(CreateScheduler(kind), tasks, sim);
      counts[i] = result.metrics.allocated();
      medians[i] = result.metrics.delays().count() > 0 ? result.metrics.delays().median() : 0;
      ++i;
    }
    alloc.NewRow().Add(period).Add(counts[0]).Add(counts[1]).Add(counts[2]).Add(
        static_cast<double>(counts[0]) / static_cast<double>(counts[1]));
    delay.NewRow().Add(period).Add(medians[0]).Add(medians[1]).Add(medians[2]);
  }
  alloc.Print("Fig. 9(a): allocated tasks vs batching period T");
  delay.Print("Fig. 9(b): median scheduling delay (virtual time) vs T");
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Banner("Fig. 9: sensitivity to the batching period T", "paper appendix A");
  Run(ParseScale(argc, argv));
  return 0;
}
