// Fig. 8 + Tab. 2 reproduction (Q4): the cluster-orchestrator deployment (our in-process
// Kubernetes substitute; see DESIGN.md).
//   (a) scheduler runtime as a function of submitted tasks in an emulated offline pass —
//       DPack is modestly slower than DPF, and simulated state-store traffic dominates;
//   (b) scheduling-delay CDF in an online run with T = 5 — near-identical across policies;
//   Tab. 2: online efficiency — DPack allocates more tasks than DPF (paper: 1269 vs 1100).

#include <cstdio>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

std::vector<Task> Workload(size_t num_tasks, double span) {
  AlibabaConfig config;
  config.num_tasks = num_tasks;
  config.arrival_span = span;
  config.seed = 23;
  return GenerateAlibabaDp(SharedPool(), config);
}

OrchestratorConfig BaseConfig() {
  OrchestratorConfig config;
  config.offline_blocks = 10;
  config.online_blocks = 20;
  config.unlock_steps = 30;
  config.store_latency_us = 150.0;
  return config;
}

void OfflineRuntime(Scale scale) {
  double f = ScaleFactor(scale);
  CsvTable table({"submitted", "DPack_runtime_s", "DPF_runtime_s", "DPack_store_ops",
                  "DPF_store_ops"});
  for (size_t base : {1000, 2000, 4000}) {
    size_t n = static_cast<size_t>(static_cast<double>(base) * f);
    std::vector<Task> tasks = Workload(n, 30.0);
    double runtime[2];
    uint64_t ops[2];
    int i = 0;
    for (SchedulerKind kind : {SchedulerKind::kDpack, SchedulerKind::kDpf}) {
      OrchestratorConfig config = BaseConfig();
      config.period = 25.0;  // Large T emulates the offline setting, as in the paper.
      ClusterOrchestrator orchestrator(CreateScheduler(kind), config);
      OrchestratorRunResult result = orchestrator.RunOfflinePass(tasks);
      runtime[i] = result.metrics.total_runtime_seconds();
      ops[i] = result.store_operations;
      ++i;
    }
    table.NewRow().Add(n).Add(runtime[0]).Add(runtime[1]).Add(ops[0]).Add(ops[1]);
  }
  table.Print("Fig. 8(a): offline-pass scheduler runtime (includes simulated store traffic)");
}

void OnlineDelaysAndEfficiency(Scale scale) {
  double f = ScaleFactor(scale);
  size_t n = static_cast<size_t>(4000 * f);
  std::vector<Task> tasks = Workload(n, 20.0);

  CsvTable efficiency({"scheduler", "allocated", "cycles", "median_delay", "p90_delay"});
  CsvTable cdf({"delay", "DPack_cdf", "DPF_cdf"});
  SampleSet delay_sets[2];
  int i = 0;
  for (SchedulerKind kind : {SchedulerKind::kDpack, SchedulerKind::kDpf}) {
    OrchestratorConfig config = BaseConfig();
    config.period = 5.0;
    config.virtual_unit_wall_ms = 4.0;
    ClusterOrchestrator orchestrator(CreateScheduler(kind), config);
    OrchestratorRunResult result = orchestrator.RunOnline(tasks);
    const AllocationMetrics& m = result.metrics;
    efficiency.NewRow()
        .Add(SchedulerKindName(kind))
        .Add(m.allocated())
        .Add(result.cycles)
        .Add(m.delays().count() > 0 ? m.delays().median() : 0.0)
        .Add(m.delays().count() > 0 ? m.delays().Quantile(0.9) : 0.0);
    delay_sets[i] = m.delays();
    ++i;
  }
  efficiency.Print("Tab. 2: online efficiency on the orchestrator (T = 5)");

  for (double d : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 7.5, 10.0, 15.0, 20.0, 30.0}) {
    cdf.NewRow().Add(d).Add(delay_sets[0].CdfAt(d)).Add(delay_sets[1].CdfAt(d));
  }
  cdf.Print("Fig. 8(b): scheduling-delay CDF (virtual time, excludes scheduler runtime)");
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Scale scale = ParseScale(argc, argv);
  Banner("Fig. 8 / Tab. 2: orchestrator deployment", "paper §6.4, Q4");
  OfflineRuntime(scale);
  OnlineDelaysAndEfficiency(scale);
  return 0;
}
