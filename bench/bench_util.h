// Shared plumbing for the experiment harnesses: scale flags and common fixtures.
//
// Every figure/table binary accepts `--quick` (shrink workloads ~4x for smoke runs) and
// `--full` (paper-scale). The default is a medium scale that reproduces every qualitative
// shape in minutes on a laptop.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <string>

#include "src/dpack/dpack.h"

namespace dpack::bench {

enum class Scale { kQuick, kDefault, kFull };

// Parses --quick / --full from argv (anything else is ignored).
Scale ParseScale(int argc, char** argv);

// Multiplier applied to workload sizes: 0.25 for quick, 1 for default, 4 for full.
double ScaleFactor(Scale scale);

// The reference block budget used across all experiments: (eps_g = 10, delta_g = 1e-7), the
// microbenchmark's setting (§6.2).
constexpr double kEpsG = 10.0;
constexpr double kDeltaG = 1e-7;

// Builds the shared curve pool against the reference budget.
const CurvePool& SharedPool();

// Prints a one-line banner for an experiment.
void Banner(const std::string& experiment, const std::string& paper_reference);

// The steady-state online regime used by the incremental-vs-recompute comparisons
// (fig5 addendum and micro_scheduler's BM_*Steady*): a persistent pending queue that is
// rescheduled every cycle while a small fraction of blocks is dirtied between cycles.
constexpr size_t kSteadyStateBlocks = 20;

// Oversized (never-granted) tasks over `kSteadyStateBlocks` blocks: scoring cost is
// exercised every cycle, grants never shrink the queue. Deterministic (fixed seed), so
// every harness measures the same workload.
std::vector<Task> SteadyStateTasks(size_t n);

// A demand small enough to commit thousands of times without exhausting a block; used to
// dirty blocks between cycles the way a real cycle's grants would.
RdpCurve SteadyStateTinyDemand();

// One entry for WriteBenchCountersJson: a benchmark name plus numeric fields, emitted in
// insertion order.
struct BenchJsonEntry {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

// Writes entries in google-benchmark's {"benchmarks": [...]} JSON shape — the single
// encoding scripts/check_bench_regression.py parses. fig5 and fig10 share this writer so
// the CI gate's producers cannot drift apart. Returns false on I/O failure (callers must
// propagate it: a missing counters file should fail the bench step, not the gate step).
bool WriteBenchCountersJson(const std::string& path,
                            const std::vector<BenchJsonEntry>& entries);

}  // namespace dpack::bench

#endif  // BENCH_BENCH_UTIL_H_
