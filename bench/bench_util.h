// Shared plumbing for the experiment harnesses: scale flags and common fixtures.
//
// Every figure/table binary accepts `--quick` (shrink workloads ~4x for smoke runs) and
// `--full` (paper-scale). The default is a medium scale that reproduces every qualitative
// shape in minutes on a laptop.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <string>

#include "src/dpack/dpack.h"

namespace dpack::bench {

enum class Scale { kQuick, kDefault, kFull };

// Parses --quick / --full from argv (anything else is ignored).
Scale ParseScale(int argc, char** argv);

// Multiplier applied to workload sizes: 0.25 for quick, 1 for default, 4 for full.
double ScaleFactor(Scale scale);

// The reference block budget used across all experiments: (eps_g = 10, delta_g = 1e-7), the
// microbenchmark's setting (§6.2).
constexpr double kEpsG = 10.0;
constexpr double kDeltaG = 1e-7;

// Builds the shared curve pool against the reference budget.
const CurvePool& SharedPool();

// Prints a one-line banner for an experiment.
void Banner(const std::string& experiment, const std::string& paper_reference);

}  // namespace dpack::bench

#endif  // BENCH_BENCH_UTIL_H_
