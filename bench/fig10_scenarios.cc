// Scenario sweep (ISSUE 5): steady-state engine-work counters and allocation outcomes per
// registered scenario family. Complements fig5 (which measures one synthetic steady-state
// regime) by recording how the incremental engine's reuse/rescore behavior responds to the
// workload *shape*: bursty arrivals dirty more blocks per cycle, hot-spot block lists
// concentrate rescoring, batched cohorts arrive as refresh spikes, tiny-demand trickles
// drain queues and leave little to reuse.
//
// --json <path> emits deterministic work counters for a fixed subset of representative
// scenarios in google-benchmark's {"benchmarks": [...]} shape, consumed by the CI
// regression gate (scripts/check_bench_regression.py against bench/baseline.json). The
// counters are exact functions of (scenario, seed, engine), so they are stable across
// machines; wall time rides along for humans and is never gated. Only the subset is dumped
// because the gate requires every dumped benchmark to have a baseline entry — extend
// kGatedScenarios together with scripts/update_bench_baseline.sh when promoting a scenario
// into the gate.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

constexpr uint64_t kScenarioSeed = 1234;

// Scenarios gated by CI (a representative third of the registry: the stochastic baseline,
// the bursty/hot-spot stress, and the cohort/skew stress).
const char* const kGatedScenarios[] = {"steady_poisson", "bursty_hotspot", "cohort_skew"};

struct ScenarioOutcome {
  SimResult result;
  size_t num_tasks = 0;
  double wall_ms = 0.0;
};

ScenarioOutcome RunScenario(const std::string& name, GreedyMetric metric, uint64_t seed) {
  ScenarioWorkload workload = GenerateScenario(SharedPool(), ScenarioByName(name, seed));
  ScenarioOutcome outcome;
  outcome.num_tasks = workload.tasks.size();
  auto scheduler = std::make_unique<GreedyScheduler>(
      metric, GreedySchedulerOptions{.eta = 0.05, .incremental = true});
  outcome.result =
      RunOnlineSimulation(std::move(scheduler), std::move(workload.tasks), workload.sim);
  outcome.wall_ms = 1e3 * outcome.result.metrics.total_runtime_seconds();
  return outcome;
}

void RunSweep() {
  CsvTable table({"scenario", "metric", "tasks", "cycles", "allocated", "evicted",
                  "pending_end", "rescored_per_cycle", "reused_per_cycle",
                  "refreshed_per_cycle", "sched_ms"});
  for (const std::string& name : ScenarioRegistryNames()) {
    for (GreedyMetric metric :
         {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea}) {
      ScenarioOutcome outcome = RunScenario(name, metric, kScenarioSeed);
      const ScheduleContextStats& stats = outcome.result.scheduler_stats;
      double cycles = static_cast<double>(outcome.result.cycles_run);
      GreedyScheduler named(metric);
      table.NewRow()
          .Add(name)
          .Add(named.name())
          .Add(outcome.num_tasks)
          .Add(outcome.result.cycles_run)
          .Add(outcome.result.metrics.allocated())
          .Add(outcome.result.metrics.evicted())
          .Add(outcome.result.pending_at_end)
          .Add(FormatDouble(static_cast<double>(stats.tasks_rescored) / cycles))
          .Add(FormatDouble(static_cast<double>(stats.tasks_reused) / cycles))
          .Add(FormatDouble(static_cast<double>(stats.blocks_refreshed) / cycles))
          .Add(FormatDouble(outcome.wall_ms));
    }
  }
  table.Print("Fig. 10: incremental-engine work per scenario family (seed " +
              std::to_string(kScenarioSeed) + ")");
}

bool DumpCountersJson(const std::string& path) {
  std::vector<BenchJsonEntry> entries;
  for (const char* name : kGatedScenarios) {
    for (GreedyMetric metric : {GreedyMetric::kDpack, GreedyMetric::kDpf}) {
      ScenarioOutcome outcome = RunScenario(name, metric, kScenarioSeed);
      const ScheduleContextStats& stats = outcome.result.scheduler_stats;
      double cycles = static_cast<double>(outcome.result.cycles_run);
      GreedyScheduler named(metric);
      entries.push_back(BenchJsonEntry{
          "fig10_scenarios/" + std::string(name) + "/" + named.name(),
          {{"wall_ms", outcome.wall_ms},
           {"rescored_per_cycle", static_cast<double>(stats.tasks_rescored) / cycles},
           {"reused_per_cycle", static_cast<double>(stats.tasks_reused) / cycles},
           {"blocks_refreshed_per_cycle",
            static_cast<double>(stats.blocks_refreshed) / cycles},
           {"best_alpha_per_cycle",
            static_cast<double>(stats.best_alpha_recomputes) / cycles},
           {"allocated_per_cycle",
            static_cast<double>(outcome.result.metrics.allocated()) / cycles},
           {"full_recomputes", static_cast<double>(stats.full_recomputes)}}});
    }
  }
  return WriteBenchCountersJson(path, entries);
}

std::string ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return "";
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Banner("Fig. 10: engine work across the scenario registry", "ISSUE 5, beyond the paper");
  std::string json_path = ParseJsonPath(argc, argv);
  if (!json_path.empty()) {
    // A failed dump must fail the CI step here, not two steps later when the regression
    // gate cannot find the file.
    return DumpCountersJson(json_path) ? 0 : 1;
  }
  RunSweep();
  return 0;
}
