// §6.3 efficiency-fairness trade-off reproduction: Alibaba-DP with the DPF fair share set
// to 1/50 of the epsilon-normalized block budget.
// Paper: 41% of submitted tasks qualify as fair-share; DPF's allocation is 90% fair-share
// tasks, DPack's only 60% — but DPack allocates 45% more tasks.

#include <cstdio>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

void Run(Scale scale) {
  double f = ScaleFactor(scale);
  size_t num_tasks = static_cast<size_t>(15000 * f);
  const size_t num_blocks = 90;

  AlibabaConfig config;
  config.num_tasks = num_tasks;
  config.arrival_span = static_cast<double>(num_blocks);
  config.seed = 11;
  std::vector<Task> tasks = GenerateAlibabaDp(SharedPool(), config);

  CsvTable table({"scheduler", "allocated", "fair_share_fraction_of_allocated",
                  "submitted_fair_share_fraction"});
  size_t dpack_allocated = 0;
  size_t dpf_allocated = 0;
  for (SchedulerKind kind : {SchedulerKind::kDpack, SchedulerKind::kDpf}) {
    SimConfig sim;
    sim.num_blocks = num_blocks;
    sim.unlock_steps = 50;
    sim.fair_share_n = 50;
    SimResult result = RunOnlineSimulation(CreateScheduler(kind), tasks, sim);
    if (kind == SchedulerKind::kDpack) {
      dpack_allocated = result.metrics.allocated();
    } else {
      dpf_allocated = result.metrics.allocated();
    }
    table.NewRow()
        .Add(SchedulerKindName(kind))
        .Add(result.metrics.allocated())
        .Add(result.metrics.AllocatedFairShareFraction())
        .Add(static_cast<double>(result.metrics.submitted_fair_share()) /
             static_cast<double>(result.metrics.submitted()));
  }
  table.Print("Efficiency-fairness trade-off (fair share = 1/50)");
  std::printf("\nDPack allocates %.0f%% more tasks than DPF (paper: +45%%) while a smaller\n"
              "fraction of its grants are fair-share tasks (paper: 60%% vs 90%%).\n",
              100.0 * (static_cast<double>(dpack_allocated) /
                           static_cast<double>(dpf_allocated) -
                       1.0));
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Banner("Efficiency-fairness trade-off on Alibaba-DP", "paper §6.3");
  Run(ParseScale(argc, argv));
  return 0;
}
