// Ablation (DESIGN.md §4.4): where do DPack's gains come from?
// Compares four orderings through the identical allocation loop:
//   DPF   — inverse dominant share (no block-area, no best-alpha awareness);
//   Area  — Eq. 4 (block-area aware, sums every order);
//   DPack — Eq. 6 (block-area aware at each block's best alpha only);
//   FCFS  — arrival order (no prioritization).
// Run on both microbenchmark regimes: block heterogeneity (where Area ~ DPack, both beat
// DPF — the §3.1 effect) and best-alpha heterogeneity (where DPack beats Area — the §3.2
// effect), plus the online Alibaba-DP mix.

#include <cstdio>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

size_t Offline(SchedulerKind kind, const std::vector<Task>& tasks, size_t blocks) {
  SimConfig sim;
  sim.num_blocks = blocks;
  auto scheduler = CreateScheduler(kind);
  return RunOfflineSchedule(*scheduler, tasks, sim).metrics.allocated();
}

void BlockHeterogeneity(Scale scale) {
  MicrobenchmarkConfig config;
  config.num_tasks = static_cast<size_t>(300 * ScaleFactor(scale));
  config.num_blocks = 20;
  config.mu_blocks = 10.0;
  config.sigma_blocks = 3.0;
  config.sigma_alpha = 0.0;
  config.eps_min = 0.1;
  config.seed = 31;
  std::vector<Task> tasks = GenerateMicrobenchmark(SharedPool(), config);
  CsvTable table({"metric", "allocated"});
  for (SchedulerKind kind : {SchedulerKind::kDpack, SchedulerKind::kArea, SchedulerKind::kDpf,
                             SchedulerKind::kFcfs}) {
    table.NewRow().Add(SchedulerKindName(kind)).Add(Offline(kind, tasks, 20));
  }
  table.Print("Ablation 1: block heterogeneity only (sigma_blocks=3, sigma_alpha=0)");
}

void AlphaHeterogeneity(Scale scale) {
  MicrobenchmarkConfig config;
  config.num_tasks = static_cast<size_t>(600 * ScaleFactor(scale));
  config.num_blocks = 1;
  config.mu_blocks = 1.0;
  config.sigma_blocks = 0.0;
  config.sigma_alpha = 6.0;
  config.eps_min = 0.005;
  config.seed = 31;
  std::vector<Task> tasks = GenerateMicrobenchmark(SharedPool(), config);
  CsvTable table({"metric", "allocated"});
  for (SchedulerKind kind : {SchedulerKind::kDpack, SchedulerKind::kArea, SchedulerKind::kDpf,
                             SchedulerKind::kFcfs}) {
    table.NewRow().Add(SchedulerKindName(kind)).Add(Offline(kind, tasks, 1));
  }
  table.Print("Ablation 2: best-alpha heterogeneity only (single block, sigma_alpha=6)");
}

void AlibabaMix(Scale scale) {
  AlibabaConfig config;
  config.num_tasks = static_cast<size_t>(10000 * ScaleFactor(scale));
  config.arrival_span = 60.0;
  config.seed = 31;
  std::vector<Task> tasks = GenerateAlibabaDp(SharedPool(), config);
  CsvTable table({"metric", "allocated"});
  for (SchedulerKind kind : {SchedulerKind::kDpack, SchedulerKind::kArea, SchedulerKind::kDpf,
                             SchedulerKind::kFcfs}) {
    SimConfig sim;
    sim.num_blocks = 60;
    sim.unlock_steps = 50;
    SimResult result = RunOnlineSimulation(CreateScheduler(kind), tasks, sim);
    table.NewRow().Add(SchedulerKindName(kind)).Add(result.metrics.allocated());
  }
  table.Print("Ablation 3: online Alibaba-DP mix (both heterogeneity dimensions)");
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Scale scale = ParseScale(argc, argv);
  Banner("Ablation: decomposing DPack's efficiency metric", "DESIGN.md §4");
  BlockHeterogeneity(scale);
  AlphaHeterogeneity(scale);
  AlibabaMix(scale);
  return 0;
}
