// Scheduler-cycle microbenchmarks (google-benchmark): per-batch cost of each policy as the
// batch grows, isolating the Alg. 1 overheads (DPack's per-(block, order) knapsacks vs
// DPF's dominant-share sort).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

std::vector<Task> BatchTasks(size_t n) {
  MicrobenchmarkConfig config;
  config.num_tasks = n;
  config.num_blocks = 20;
  config.mu_blocks = 5.0;
  config.sigma_blocks = 3.0;
  config.sigma_alpha = 4.0;
  config.eps_min = 0.01;
  config.seed = 9;
  std::vector<Task> tasks = GenerateMicrobenchmark(SharedPool(), config);
  return tasks;
}

void RunBatch(benchmark::State& state, SchedulerKind kind) {
  std::vector<Task> tasks = BatchTasks(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    BlockManager blocks(AlphaGrid::Default(), kEpsG, kDeltaG);
    for (int b = 0; b < 20; ++b) {
      blocks.AddBlock(0.0, /*unlocked=*/true);
    }
    auto scheduler = CreateScheduler(kind);
    state.ResumeTiming();
    benchmark::DoNotOptimize(scheduler->ScheduleBatch(tasks, blocks));
  }
}

void BM_DpackBatch(benchmark::State& state) { RunBatch(state, SchedulerKind::kDpack); }
BENCHMARK(BM_DpackBatch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_DpfBatch(benchmark::State& state) { RunBatch(state, SchedulerKind::kDpf); }
BENCHMARK(BM_DpfBatch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_AreaBatch(benchmark::State& state) { RunBatch(state, SchedulerKind::kArea); }
BENCHMARK(BM_AreaBatch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_FcfsBatch(benchmark::State& state) { RunBatch(state, SchedulerKind::kFcfs); }
BENCHMARK(BM_FcfsBatch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dpack::bench
