// Scheduler-cycle microbenchmarks (google-benchmark): per-batch cost of each policy as the
// batch grows, isolating the Alg. 1 overheads (DPack's per-(block, order) knapsacks vs
// DPF's dominant-share sort).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

std::vector<Task> BatchTasks(size_t n) {
  MicrobenchmarkConfig config;
  config.num_tasks = n;
  config.num_blocks = 20;
  config.mu_blocks = 5.0;
  config.sigma_blocks = 3.0;
  config.sigma_alpha = 4.0;
  config.eps_min = 0.01;
  config.seed = 9;
  std::vector<Task> tasks = GenerateMicrobenchmark(SharedPool(), config);
  return tasks;
}

void RunBatch(benchmark::State& state, SchedulerKind kind) {
  std::vector<Task> tasks = BatchTasks(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    BlockManager blocks(AlphaGrid::Default(), kEpsG, kDeltaG);
    for (int b = 0; b < 20; ++b) {
      blocks.AddBlock(0.0, /*unlocked=*/true);
    }
    auto scheduler = CreateScheduler(kind);
    state.ResumeTiming();
    benchmark::DoNotOptimize(scheduler->ScheduleBatch(tasks, blocks));
  }
}

void BM_DpackBatch(benchmark::State& state) { RunBatch(state, SchedulerKind::kDpack); }
BENCHMARK(BM_DpackBatch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_DpfBatch(benchmark::State& state) { RunBatch(state, SchedulerKind::kDpf); }
BENCHMARK(BM_DpfBatch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_AreaBatch(benchmark::State& state) { RunBatch(state, SchedulerKind::kArea); }
BENCHMARK(BM_AreaBatch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_FcfsBatch(benchmark::State& state) { RunBatch(state, SchedulerKind::kFcfs); }
BENCHMARK(BM_FcfsBatch)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

// --- Incremental engine vs recompute in the online steady state ---------------------------
//
// The regime of the tentpole claim: a persistent scheduler sees the same large pending queue
// cycle after cycle while only a small fraction of blocks (1/20 = 5% here) changes between
// cycles. The recompute path rescores everything; the incremental engine rescores only the
// tasks touching the dirtied block. The workload (bench_util's SteadyStateTasks) is shared
// with the fig5 addendum so both harnesses measure the same scenario.
//
// The steady benchmarks run a fixed iteration count (a multiple of the 20-block dirty
// rotation) and report the engine's work counters per cycle. Unlike wall time, the counters
// are deterministic for a fixed workload, which is what the CI bench-artifact job's
// regression gate compares against bench/baseline.json.

constexpr int kSteadyIterations = 60;  // 3 full rotations of the dirty-block cursor.

// Attaches the engine's per-cycle work counters (deltas across the timed loop) to the
// benchmark so they land in the JSON artifact. No-op for the recompute path (no engine).
// `include_ring` adds the async publication/pinning counters; only the async benchmarks
// set it, so the sync legs' baselines stay free of fields their engines never touch.
void ReportEngineCounters(benchmark::State& state, const GreedyScheduler& scheduler,
                          const ScheduleContextStats& at_entry,
                          bool include_ring = false) {
  const ScheduleEngine* engine = scheduler.engine();
  if (engine == nullptr || state.iterations() == 0) {
    return;
  }
  ScheduleContextStats delta = engine->stats().Delta(at_entry);
  double cycles = static_cast<double>(state.iterations());
  state.counters["rescored_per_cycle"] = static_cast<double>(delta.tasks_rescored) / cycles;
  state.counters["reused_per_cycle"] = static_cast<double>(delta.tasks_reused) / cycles;
  state.counters["blocks_refreshed_per_cycle"] =
      static_cast<double>(delta.blocks_refreshed) / cycles;
  state.counters["best_alpha_per_cycle"] =
      static_cast<double>(delta.best_alpha_recomputes) / cycles;
  state.counters["early_scores_per_cycle"] =
      static_cast<double>(delta.async_early_scores) / cycles;
  state.counters["full_recomputes"] = static_cast<double>(delta.full_recomputes);
  // Gated at zero: the merge's ping-pong buffers persist across cycles, so steady-state
  // cycles must not grow them (see ScheduleContextStats::merge_allocs).
  state.counters["merge_allocs"] = static_cast<double>(delta.merge_allocs);
  if (include_ring) {
    state.counters["ring_publishes_per_cycle"] =
        static_cast<double>(delta.ring_publishes) / cycles;
    // Both gated at zero: a driver that drains every cycle never fills a ring, and the
    // pinned legs only ever pick cores PickShardCore reported as allowed.
    state.counters["ring_retries"] = static_cast<double>(delta.ring_retries);
    state.counters["pin_failures"] = static_cast<double>(delta.pin_failures);
  }
}

void RunSteadyState(benchmark::State& state, GreedyMetric metric, bool incremental) {
  std::vector<Task> tasks = SteadyStateTasks(static_cast<size_t>(state.range(0)));
  BlockManager blocks(AlphaGrid::Default(), kEpsG, kDeltaG);
  for (size_t b = 0; b < kSteadyStateBlocks; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  RdpCurve tiny = SteadyStateTinyDemand();
  GreedyScheduler scheduler(metric, GreedySchedulerOptions{.incremental = incremental});
  scheduler.ScheduleBatch(tasks, blocks);  // Warm the cache: steady state, not first cycle.
  size_t dirty_cursor = 0;
  // Second warm-up with a dirty block: the merge ping-pongs between two persistent
  // buffers, and only a re-run with fresh entries fills the second one. After this,
  // steady-state cycles perform zero merge allocations (merge_allocs delta below).
  blocks.block(static_cast<BlockId>(dirty_cursor++ % kSteadyStateBlocks)).Commit(tiny);
  scheduler.ScheduleBatch(tasks, blocks);
  ScheduleContextStats at_entry;
  if (scheduler.engine() != nullptr) {
    at_entry = scheduler.engine()->stats();
  }
  for (auto _ : state) {
    state.PauseTiming();
    // Dirty 1 of 20 blocks (5%) per cycle, as a real cycle's commits would.
    blocks.block(static_cast<BlockId>(dirty_cursor++ % kSteadyStateBlocks)).Commit(tiny);
    state.ResumeTiming();
    benchmark::DoNotOptimize(scheduler.ScheduleBatch(tasks, blocks));
  }
  ReportEngineCounters(state, scheduler, at_entry);
}

void BM_DpackSteadyIncremental(benchmark::State& state) {
  RunSteadyState(state, GreedyMetric::kDpack, true);
}
BENCHMARK(BM_DpackSteadyIncremental)
    ->Arg(1000)
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_DpackSteadyRecompute(benchmark::State& state) {
  RunSteadyState(state, GreedyMetric::kDpack, false);
}
BENCHMARK(BM_DpackSteadyRecompute)
    ->Arg(1000)
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_DpfSteadyIncremental(benchmark::State& state) {
  RunSteadyState(state, GreedyMetric::kDpf, true);
}
BENCHMARK(BM_DpfSteadyIncremental)
    ->Arg(1000)
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_DpfSteadyRecompute(benchmark::State& state) {
  RunSteadyState(state, GreedyMetric::kDpf, false);
}
BENCHMARK(BM_DpfSteadyRecompute)
    ->Arg(1000)
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_AreaSteadyIncremental(benchmark::State& state) {
  RunSteadyState(state, GreedyMetric::kArea, true);
}
BENCHMARK(BM_AreaSteadyIncremental)
    ->Arg(1000)
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_AreaSteadyRecompute(benchmark::State& state) {
  RunSteadyState(state, GreedyMetric::kArea, false);
}
BENCHMARK(BM_AreaSteadyRecompute)
    ->Arg(1000)
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

// --- Shard-count sweep (sharded + async engines, same steady-state regime) ----------------
//
// Args: {pending tasks, num_shards}. num_shards = 1 runs the single-shard ScheduleContext
// (sync) or one scheduler thread (async); higher counts run the fork-join worker pool
// (sync) or the persistent per-shard scheduler threads with snapshot publication (async).
// Same grants by construction — see the sharded and async differential suites. The speedup
// scales with the cores actually available — on a single-core host the sweep only measures
// each driver's coordination overhead (two barriers per cycle for sync, dispatch + one
// fence + publication for async).

void RunSteadyStateEngine(benchmark::State& state, GreedyMetric metric, bool async,
                          HeapPublishMode publish = HeapPublishMode::kRing,
                          bool pin_threads = true) {
  std::vector<Task> tasks = SteadyStateTasks(static_cast<size_t>(state.range(0)));
  size_t num_shards = static_cast<size_t>(state.range(1));
  BlockManager blocks(AlphaGrid::Default(), kEpsG, kDeltaG);
  for (size_t b = 0; b < kSteadyStateBlocks; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  RdpCurve tiny = SteadyStateTinyDemand();
  GreedyScheduler scheduler(metric, GreedySchedulerOptions{.incremental = true,
                                                           .num_shards = num_shards,
                                                           .async = async,
                                                           .publish = publish,
                                                           .pin_threads = pin_threads});
  scheduler.ScheduleBatch(tasks, blocks);  // Warm the cache: steady state, not first cycle.
  size_t dirty_cursor = 0;
  // Second warm-up with a dirty block fills the merge's second ping-pong buffer (see
  // RunSteadyState) so the timed cycles' merge_allocs delta is zero.
  blocks.block(static_cast<BlockId>(dirty_cursor++ % kSteadyStateBlocks)).Commit(tiny);
  scheduler.ScheduleBatch(tasks, blocks);
  ScheduleContextStats at_entry = scheduler.engine()->stats();
  for (auto _ : state) {
    state.PauseTiming();
    blocks.block(static_cast<BlockId>(dirty_cursor++ % kSteadyStateBlocks)).Commit(tiny);
    state.ResumeTiming();
    benchmark::DoNotOptimize(scheduler.ScheduleBatch(tasks, blocks));
  }
  ReportEngineCounters(state, scheduler, at_entry, /*include_ring=*/async);
}

void BM_DpackSteadySharded(benchmark::State& state) {
  RunSteadyStateEngine(state, GreedyMetric::kDpack, /*async=*/false);
}
BENCHMARK(BM_DpackSteadySharded)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_DpfSteadySharded(benchmark::State& state) {
  RunSteadyStateEngine(state, GreedyMetric::kDpf, /*async=*/false);
}
BENCHMARK(BM_DpfSteadySharded)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_AreaSteadySharded(benchmark::State& state) {
  RunSteadyStateEngine(state, GreedyMetric::kArea, /*async=*/false);
}
BENCHMARK(BM_AreaSteadySharded)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_DpackSteadyAsync(benchmark::State& state) {
  RunSteadyStateEngine(state, GreedyMetric::kDpack, /*async=*/true);
}
BENCHMARK(BM_DpackSteadyAsync)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_DpfSteadyAsync(benchmark::State& state) {
  RunSteadyStateEngine(state, GreedyMetric::kDpf, /*async=*/true);
}
BENCHMARK(BM_DpfSteadyAsync)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_AreaSteadyAsync(benchmark::State& state) {
  RunSteadyStateEngine(state, GreedyMetric::kArea, /*async=*/true);
}
BENCHMARK(BM_AreaSteadyAsync)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

// Publication/pinning ablations against BM_DpackSteadyAsync/1000/4 (the ring + pinned
// default): the mutex/condvar handoff the ring replaced, and the counted-fallback unpinned
// run. Identical work counters by construction — only the publication mechanism and thread
// placement differ, which is exactly what the wall-time comparison isolates.
void BM_DpackSteadyAsyncMutex(benchmark::State& state) {
  RunSteadyStateEngine(state, GreedyMetric::kDpack, /*async=*/true,
                       HeapPublishMode::kMutex);
}
BENCHMARK(BM_DpackSteadyAsyncMutex)
    ->Args({1000, 4})
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

void BM_DpackSteadyAsyncUnpinned(benchmark::State& state) {
  RunSteadyStateEngine(state, GreedyMetric::kDpack, /*async=*/true,
                       HeapPublishMode::kRing, /*pin_threads=*/false);
}
BENCHMARK(BM_DpackSteadyAsyncUnpinned)
    ->Args({1000, 4})
    ->Iterations(kSteadyIterations)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dpack::bench
