// Fig. 7 reproduction: the Amazon-Reviews-style workload from PrivateKube.
//   (a) unweighted: low heterogeneity, so all schedulers perform largely the same;
//   (b) task weights added: DPack outperforms DPF on the sum of allocated weights
//       (paper: 9-50%).

#include <cstdio>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

void Sweep(Scale scale, bool weighted) {
  double f = ScaleFactor(scale);
  const size_t num_blocks = 20;

  // Weighted efficiency is sensitive to which heavy tasks land near budget boundaries, so
  // every point averages several workload seeds.
  const uint64_t kSeeds[] = {17, 18, 19};
  CsvTable table({"mean_tasks_per_block", "DPack", "DPF", "FCFS", "DPack/DPF"});
  for (double base_rate : {250.0, 500.0, 1000.0, 1500.0}) {
    double rate = base_rate * f;
    double totals[3] = {0.0, 0.0, 0.0};
    for (uint64_t seed : kSeeds) {
      AmazonConfig config;
      config.mean_tasks_per_block = rate;
      config.arrival_span = static_cast<double>(num_blocks);
      config.weighted = weighted;
      config.seed = seed;
      std::vector<Task> tasks = GenerateAmazon(SharedPool(), config);

      auto run = [&](SchedulerKind kind) {
        SimConfig sim;
        sim.num_blocks = num_blocks;
        sim.unlock_steps = 50;
        SimResult result = RunOnlineSimulation(CreateScheduler(kind), tasks, sim);
        return weighted ? result.metrics.allocated_weight()
                        : static_cast<double>(result.metrics.allocated());
      };
      totals[0] += run(SchedulerKind::kDpack);
      totals[1] += run(SchedulerKind::kDpf);
      totals[2] += run(SchedulerKind::kFcfs);
    }
    for (double& t : totals) {
      t /= static_cast<double>(std::size(kSeeds));
    }
    table.NewRow().Add(base_rate).Add(totals[0]).Add(totals[1]).Add(totals[2]).Add(
        totals[0] / totals[1]);
  }
  table.Print(weighted
                  ? "Fig. 7(b): sum of allocated weights vs load (weighted tasks)"
                  : "Fig. 7(a): allocated tasks vs load (original unweighted workload)");
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Scale scale = ParseScale(argc, argv);
  Banner("Fig. 7: Amazon Reviews workload", "paper §6.3");
  Sweep(scale, /*weighted=*/false);
  Sweep(scale, /*weighted=*/true);
  return 0;
}
