// Fig. 6 reproduction (Q3): online Alibaba-DP efficiency.
//   (a) allocated tasks vs submitted tasks (90 blocks);
//   (b) allocated tasks vs available blocks (fixed submitted count).
// Expected shape: DPack allocates the most tasks at every point, with a 1.3-1.7x (paper)
// gap over DPF that widens with load; FCFS never prioritizes low-demand tasks. See
// EXPERIMENTS.md for the FCFS deviation discussion (our retry-under-unlocking FCFS is
// stronger than the paper's).

#include <cstdio>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

size_t RunOne(SchedulerKind kind, const std::vector<Task>& tasks, size_t num_blocks) {
  SimConfig sim;
  sim.num_blocks = num_blocks;
  sim.unlock_steps = 50;
  SimResult result = RunOnlineSimulation(CreateScheduler(kind), tasks, sim);
  return result.metrics.allocated();
}

void SweepSubmitted(Scale scale) {
  double f = ScaleFactor(scale);
  const size_t num_blocks = 90;
  CsvTable table({"submitted", "DPack", "DPF", "FCFS", "DPack/DPF"});
  for (size_t base : {5000, 10000, 20000, 40000}) {
    size_t n = static_cast<size_t>(static_cast<double>(base) * f);
    AlibabaConfig config;
    config.num_tasks = n;
    config.arrival_span = static_cast<double>(num_blocks);
    config.seed = 11;
    std::vector<Task> tasks = GenerateAlibabaDp(SharedPool(), config);
    size_t dpack = RunOne(SchedulerKind::kDpack, tasks, num_blocks);
    size_t dpf = RunOne(SchedulerKind::kDpf, tasks, num_blocks);
    size_t fcfs = RunOne(SchedulerKind::kFcfs, tasks, num_blocks);
    table.NewRow().Add(n).Add(dpack).Add(dpf).Add(fcfs).Add(
        static_cast<double>(dpack) / static_cast<double>(dpf));
  }
  table.Print("Fig. 6(a): allocated vs submitted tasks (90 blocks, online)");
}

void SweepBlocks(Scale scale) {
  double f = ScaleFactor(scale);
  size_t n = static_cast<size_t>(15000 * f);
  CsvTable table({"blocks", "DPack", "DPF", "FCFS", "DPack/DPF"});
  for (size_t num_blocks : {30, 60, 90, 120, 180}) {
    AlibabaConfig config;
    config.num_tasks = n;
    config.arrival_span = static_cast<double>(num_blocks);
    config.seed = 13;
    std::vector<Task> tasks = GenerateAlibabaDp(SharedPool(), config);
    size_t dpack = RunOne(SchedulerKind::kDpack, tasks, num_blocks);
    size_t dpf = RunOne(SchedulerKind::kDpf, tasks, num_blocks);
    size_t fcfs = RunOne(SchedulerKind::kFcfs, tasks, num_blocks);
    table.NewRow().Add(num_blocks).Add(dpack).Add(dpf).Add(fcfs).Add(
        static_cast<double>(dpack) / static_cast<double>(dpf));
  }
  table.Print("Fig. 6(b): allocated vs available blocks (fixed submitted count, online)");
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Scale scale = ParseScale(argc, argv);
  Banner("Fig. 6: online efficiency on Alibaba-DP", "paper §6.3, Q3");
  SweepSubmitted(scale);
  SweepBlocks(scale);
  return 0;
}
