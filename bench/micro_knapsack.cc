// Component microbenchmarks (google-benchmark): single-dimension knapsack solvers and the
// exact privacy-knapsack branch-and-bound. Quantifies the solver choices DESIGN.md calls
// out: the max-cardinality fast path vs FPTAS vs greedy, FPTAS cost vs eta, and the B&B's
// growth with instance size.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

std::vector<KnapsackItem> RandomItems(size_t n, bool uniform_profits, uint64_t seed) {
  Rng rng(seed);
  std::vector<KnapsackItem> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    items.push_back({uniform_profits ? 1.0 : rng.Uniform(1.0, 100.0), rng.Uniform(0.0, 1.0)});
  }
  return items;
}

void BM_MaxCardinality(benchmark::State& state) {
  auto items = RandomItems(static_cast<size_t>(state.range(0)), true, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxCardinalityKnapsack(items, 10.0));
  }
}
BENCHMARK(BM_MaxCardinality)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GreedyDensity(benchmark::State& state) {
  auto items = RandomItems(static_cast<size_t>(state.range(0)), false, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyDensityKnapsack(items, 10.0));
  }
}
BENCHMARK(BM_GreedyDensity)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FptasEtaSweep(benchmark::State& state) {
  auto items = RandomItems(200, false, 3);
  double eta = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FptasKnapsack(items, 10.0, eta));
  }
}
BENCHMARK(BM_FptasEtaSweep)->Arg(2)->Arg(10)->Arg(50);

void BM_ExactSingleDim(benchmark::State& state) {
  auto items = RandomItems(static_cast<size_t>(state.range(0)), false, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactKnapsack(items, 5.0));
  }
}
BENCHMARK(BM_ExactSingleDim)->Arg(20)->Arg(50)->Arg(100);

PkInstance RandomInstance(size_t tasks, size_t blocks, size_t orders, uint64_t seed) {
  Rng rng(seed);
  PkInstance instance;
  instance.num_blocks = blocks;
  instance.num_orders = orders;
  instance.capacity.assign(blocks * orders, 3.0);
  for (size_t i = 0; i < tasks; ++i) {
    PkTask task;
    task.weight = 1.0;
    size_t k = static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(blocks)));
    task.blocks = rng.SampleWithoutReplacement(blocks, k);
    task.demand.resize(orders);
    for (double& d : task.demand) {
      d = rng.Uniform(0.05, 1.0);
    }
    instance.tasks.push_back(std::move(task));
  }
  return instance;
}

void BM_PrivacyKnapsackExact(benchmark::State& state) {
  PkInstance instance =
      RandomInstance(static_cast<size_t>(state.range(0)), 4, 4, 5);
  PkOptions options;
  options.time_limit_seconds = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolvePrivacyKnapsackExact(instance, options));
  }
}
BENCHMARK(BM_PrivacyKnapsackExact)->Arg(20)->Arg(40)->Arg(60)->Unit(benchmark::kMillisecond);

void BM_SubsampledGaussianCurve(benchmark::State& state) {
  AlphaGridPtr grid = AlphaGrid::Default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubsampledGaussianCurve(grid, 1.5, 0.01));
  }
}
BENCHMARK(BM_SubsampledGaussianCurve);

}  // namespace
}  // namespace dpack::bench
