#include "bench/bench_util.h"

#include <cstdio>
#include <cstring>

namespace dpack::bench {

Scale ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      return Scale::kQuick;
    }
    if (std::strcmp(argv[i], "--full") == 0) {
      return Scale::kFull;
    }
  }
  return Scale::kDefault;
}

double ScaleFactor(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return 0.25;
    case Scale::kDefault:
      return 1.0;
    case Scale::kFull:
      return 4.0;
  }
  return 1.0;
}

const CurvePool& SharedPool() {
  static const CurvePool* pool = new CurvePool(
      AlphaGrid::Default(), BlockCapacityCurve(AlphaGrid::Default(), kEpsG, kDeltaG));
  return *pool;
}

std::vector<Task> SteadyStateTasks(size_t n) {
  Rng rng(17);
  RdpCurve capacity = BlockCapacityCurve(AlphaGrid::Default(), kEpsG, kDeltaG);
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Task task(static_cast<TaskId>(i), 1.0, capacity.Scaled(rng.Uniform(1.5, 3.0)));
    size_t count = static_cast<size_t>(rng.UniformInt(1, 5));
    for (size_t idx : rng.SampleWithoutReplacement(kSteadyStateBlocks, count)) {
      task.blocks.push_back(static_cast<BlockId>(idx));
    }
    tasks.push_back(std::move(task));
  }
  return tasks;
}

RdpCurve SteadyStateTinyDemand() {
  return BlockCapacityCurve(AlphaGrid::Default(), kEpsG, kDeltaG).Scaled(1e-9);
}

bool WriteBenchCountersJson(const std::string& path,
                            const std::vector<BenchJsonEntry>& entries) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"benchmarks\": [\n");
  for (size_t e = 0; e < entries.size(); ++e) {
    std::fprintf(out, "    {\"name\": \"%s\"", entries[e].name.c_str());
    for (const auto& [key, value] : entries[e].fields) {
      std::fprintf(out, ", \"%s\": %.4f", key.c_str(), value);
    }
    std::fprintf(out, "}%s\n", e + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote engine counters to %s\n", path.c_str());
  return true;
}

void Banner(const std::string& experiment, const std::string& paper_reference) {
  std::printf("\n================================================================\n");
  std::printf("%s  (%s)\n", experiment.c_str(), paper_reference.c_str());
  std::printf("================================================================\n");
  std::fflush(stdout);
}

}  // namespace dpack::bench
