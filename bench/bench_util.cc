#include "bench/bench_util.h"

#include <cstdio>
#include <cstring>

namespace dpack::bench {

Scale ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      return Scale::kQuick;
    }
    if (std::strcmp(argv[i], "--full") == 0) {
      return Scale::kFull;
    }
  }
  return Scale::kDefault;
}

double ScaleFactor(Scale scale) {
  switch (scale) {
    case Scale::kQuick:
      return 0.25;
    case Scale::kDefault:
      return 1.0;
    case Scale::kFull:
      return 4.0;
  }
  return 1.0;
}

const CurvePool& SharedPool() {
  static const CurvePool* pool = new CurvePool(
      AlphaGrid::Default(), BlockCapacityCurve(AlphaGrid::Default(), kEpsG, kDeltaG));
  return *pool;
}

void Banner(const std::string& experiment, const std::string& paper_reference) {
  std::printf("\n================================================================\n");
  std::printf("%s  (%s)\n", experiment.c_str(), paper_reference.c_str());
  std::printf("================================================================\n");
  std::fflush(stdout);
}

}  // namespace dpack::bench
