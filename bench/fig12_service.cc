// Multi-process grant service: transport counters across fleet shapes and crash-recovery
// legs (ISSUE 8, beyond the paper). Each leg runs a registry scenario through the daemon +
// worker fleet — some legs SIGKILL a worker mid-run — and self-checks that the grant trace
// is byte-identical to the in-process engine before reporting anything: a counter dump over
// a wrong schedule would gate CI on garbage.
//
// --json <path> emits the per-cycle message/byte/recovery counters in google-benchmark's
// {"benchmarks": [...]} shape for scripts/check_bench_regression.py. Every gated field is
// an exact function of the fixed workload and the protocol (messages and bytes per cycle,
// score rounds, recoveries) — never timing. ring_stalls is reported for humans but not
// gated: it counts producer back-off, which depends on OS scheduling.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

constexpr uint64_t kScenarioSeed = 21;

struct ServiceLeg {
  const char* scenario;
  size_t workers;
  size_t shards;
  uint64_t kill_round;  // 0 = no kill.
  size_t kill_worker;
  ServiceRecovery recovery;
};

constexpr ServiceLeg kLegs[] = {
    {"steady_poisson", 2, 2, 0, 0, ServiceRecovery::kReassign},
    {"steady_poisson", 4, 4, 0, 0, ServiceRecovery::kReassign},
    {"steady_poisson", 4, 4, 2, 1, ServiceRecovery::kReassign},
    {"steady_poisson", 4, 4, 2, 1, ServiceRecovery::kRespawn},
    {"bursty_hotspot", 2, 4, 0, 0, ServiceRecovery::kReassign},
    {"bursty_hotspot", 2, 4, 3, 0, ServiceRecovery::kRespawn},
};

std::string LegName(const ServiceLeg& leg) {
  std::string name = "fig12_service/" + std::string(leg.scenario) +
                     "/workers:" + std::to_string(leg.workers) +
                     "/shards:" + std::to_string(leg.shards);
  if (leg.kill_round == 0) {
    name += "/healthy";
  } else {
    name += "/kill:" + std::to_string(leg.kill_worker) + "@" +
            std::to_string(leg.kill_round) +
            (leg.recovery == ServiceRecovery::kRespawn ? "/respawn" : "/reassign");
  }
  return name;
}

struct LegResult {
  ServiceCounters counters;
  size_t cycles = 0;
  double wall_ms = 0.0;
  bool trace_ok = false;
};

LegResult RunLeg(const ServiceLeg& leg) {
  AlphaGridPtr grid = AlphaGrid::Default();
  CurvePool pool(grid, BlockCapacityCurve(grid, kEpsG, kDeltaG));
  ScenarioWorkload workload =
      GenerateScenario(pool, ScenarioByName(leg.scenario, kScenarioSeed));
  workload.sim.record_grant_trace = true;

  auto reference_scheduler = std::make_unique<GreedyScheduler>(
      GreedyMetric::kDpack, GreedySchedulerOptions{.eta = 0.05, .incremental = true});
  SimResult reference =
      RunOnlineSimulation(std::move(reference_scheduler), workload.tasks, workload.sim);

  ServiceConfig config;
  config.num_workers = leg.workers;
  config.num_shards = leg.shards;
  config.recovery = leg.recovery;
  config.kill_at_round = leg.kill_round;
  config.kill_worker = leg.kill_worker;
  auto start = std::chrono::steady_clock::now();
  ServiceSimResult service =
      RunServiceSimulation(GreedyMetric::kDpack, workload.tasks, workload.sim, config);
  auto end = std::chrono::steady_clock::now();

  LegResult result;
  result.counters = service.counters;
  result.cycles = service.sim.cycles_run;
  result.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  result.trace_ok = service.sim.grant_trace == reference.grant_trace &&
                    (leg.kill_round == 0 || service.counters.recoveries > 0);
  if (!result.trace_ok) {
    std::fprintf(stderr,
                 "EQUIVALENCE VIOLATION: %s — service grants differ from the in-process "
                 "engine (or a requested kill never recovered)\n",
                 LegName(leg).c_str());
  }
  return result;
}

std::vector<std::pair<std::string, double>> GatedCounters(const LegResult& result) {
  double cycles = static_cast<double>(result.cycles);
  const ServiceCounters& c = result.counters;
  return {
      {"messages_sent_per_cycle", static_cast<double>(c.messages_sent) / cycles},
      {"messages_received_per_cycle", static_cast<double>(c.messages_received) / cycles},
      {"bytes_sent_per_cycle", static_cast<double>(c.bytes_sent) / cycles},
      {"bytes_received_per_cycle", static_cast<double>(c.bytes_received) / cycles},
      {"score_rounds_per_cycle", static_cast<double>(c.score_rounds) / cycles},
      {"recoveries_per_cycle", static_cast<double>(c.recoveries) / cycles},
      {"respawns_per_cycle", static_cast<double>(c.respawns) / cycles},
      {"state_replays_per_cycle", static_cast<double>(c.state_replays) / cycles},
  };
}

bool RunTable() {
  CsvTable table({"leg", "cycles", "msgs_sent/cycle", "msgs_recv/cycle", "bytes_sent/cycle",
                  "recoveries", "respawns", "ring_stalls", "wall_ms"});
  bool ok = true;
  for (const ServiceLeg& leg : kLegs) {
    LegResult result = RunLeg(leg);
    ok = result.trace_ok && ok;
    double cycles = static_cast<double>(result.cycles);
    table.NewRow()
        .Add(LegName(leg))
        .Add(result.cycles)
        .Add(FormatDouble(static_cast<double>(result.counters.messages_sent) / cycles))
        .Add(FormatDouble(static_cast<double>(result.counters.messages_received) / cycles))
        .Add(FormatDouble(static_cast<double>(result.counters.bytes_sent) / cycles))
        .Add(result.counters.recoveries)
        .Add(result.counters.respawns)
        .Add(result.counters.ring_stalls)
        .Add(FormatDouble(result.wall_ms));
  }
  table.Print("Fig. 12: grant-service transport counters across fleet and crash legs");
  std::printf("equivalence: %s — every leg %s the in-process grant trace\n",
              ok ? "OK" : "VIOLATED", ok ? "matches" : "DIVERGES FROM");
  return ok;
}

bool DumpCountersJson(const std::string& path) {
  std::vector<BenchJsonEntry> entries;
  bool ok = true;
  for (const ServiceLeg& leg : kLegs) {
    LegResult result = RunLeg(leg);
    ok = result.trace_ok && ok;
    BenchJsonEntry entry;
    entry.name = LegName(leg);
    entry.fields.push_back({"wall_ms", result.wall_ms});
    entry.fields.push_back({"ring_stalls_total", static_cast<double>(result.counters.ring_stalls)});
    for (const auto& field : GatedCounters(result)) {
      entry.fields.push_back(field);
    }
    entries.push_back(std::move(entry));
  }
  return WriteBenchCountersJson(path, entries) && ok;
}

std::string ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return "";
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Banner("Fig. 12: multi-process grant service, fleet + crash-recovery legs",
         "ISSUE 8, beyond the paper");
  std::string json_path = ParseJsonPath(argc, argv);
  if (!json_path.empty()) {
    return DumpCountersJson(json_path) ? 0 : 1;
  }
  return RunTable() ? 0 : 1;
}
