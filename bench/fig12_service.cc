// Multi-process grant service: transport counters across fleet shapes and crash-recovery
// legs (ISSUE 8, beyond the paper). Each leg runs a registry scenario through the daemon +
// worker fleet — some legs SIGKILL a worker mid-run — and self-checks that the grant trace
// is byte-identical to the in-process engine before reporting anything: a counter dump over
// a wrong schedule would gate CI on garbage.
//
// The fig12_service_net legs (ISSUE 10) repeat the exercise through the socket edge: a
// daemon forked onto a Unix socket, this process driving the workload as a remote tenant
// (src/service/client.h), gating the client's frame/byte counters per cycle.
//
// --json <path> emits the per-cycle message/byte/recovery counters in google-benchmark's
// {"benchmarks": [...]} shape for scripts/check_bench_regression.py. Every gated field is
// an exact function of the fixed workload and the protocol (messages and bytes per cycle,
// score rounds, recoveries) — never timing. ring_stalls is reported for humans but not
// gated: it counts producer back-off, which depends on OS scheduling.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/subprocess.h"

namespace dpack::bench {
namespace {

constexpr uint64_t kScenarioSeed = 21;

struct ServiceLeg {
  const char* scenario;
  size_t workers;
  size_t shards;
  uint64_t kill_round;  // 0 = no kill.
  size_t kill_worker;
  ServiceRecovery recovery;
};

constexpr ServiceLeg kLegs[] = {
    {"steady_poisson", 2, 2, 0, 0, ServiceRecovery::kReassign},
    {"steady_poisson", 4, 4, 0, 0, ServiceRecovery::kReassign},
    {"steady_poisson", 4, 4, 2, 1, ServiceRecovery::kReassign},
    {"steady_poisson", 4, 4, 2, 1, ServiceRecovery::kRespawn},
    {"bursty_hotspot", 2, 4, 0, 0, ServiceRecovery::kReassign},
    {"bursty_hotspot", 2, 4, 3, 0, ServiceRecovery::kRespawn},
};

std::string LegName(const ServiceLeg& leg) {
  std::string name = "fig12_service/" + std::string(leg.scenario) +
                     "/workers:" + std::to_string(leg.workers) +
                     "/shards:" + std::to_string(leg.shards);
  if (leg.kill_round == 0) {
    name += "/healthy";
  } else {
    name += "/kill:" + std::to_string(leg.kill_worker) + "@" +
            std::to_string(leg.kill_round) +
            (leg.recovery == ServiceRecovery::kRespawn ? "/respawn" : "/reassign");
  }
  return name;
}

struct LegResult {
  ServiceCounters counters;
  size_t cycles = 0;
  double wall_ms = 0.0;
  bool trace_ok = false;
};

LegResult RunLeg(const ServiceLeg& leg) {
  AlphaGridPtr grid = AlphaGrid::Default();
  CurvePool pool(grid, BlockCapacityCurve(grid, kEpsG, kDeltaG));
  ScenarioWorkload workload =
      GenerateScenario(pool, ScenarioByName(leg.scenario, kScenarioSeed));
  workload.sim.record_grant_trace = true;

  auto reference_scheduler = std::make_unique<GreedyScheduler>(
      GreedyMetric::kDpack, GreedySchedulerOptions{.eta = 0.05, .incremental = true});
  SimResult reference =
      RunOnlineSimulation(std::move(reference_scheduler), workload.tasks, workload.sim);

  ServiceConfig config;
  config.num_workers = leg.workers;
  config.num_shards = leg.shards;
  config.recovery = leg.recovery;
  config.kill_at_round = leg.kill_round;
  config.kill_worker = leg.kill_worker;
  auto start = std::chrono::steady_clock::now();
  ServiceSimResult service =
      RunServiceSimulation(GreedyMetric::kDpack, workload.tasks, workload.sim, config);
  auto end = std::chrono::steady_clock::now();

  LegResult result;
  result.counters = service.counters;
  result.cycles = service.sim.cycles_run;
  result.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  result.trace_ok = service.sim.grant_trace == reference.grant_trace &&
                    (leg.kill_round == 0 || service.counters.recoveries > 0);
  if (!result.trace_ok) {
    std::fprintf(stderr,
                 "EQUIVALENCE VIOLATION: %s — service grants differ from the in-process "
                 "engine (or a requested kill never recovered)\n",
                 LegName(leg).c_str());
  }
  return result;
}

// Remote-client legs (ISSUE 10): the same scenarios driven through the socket edge — a
// forked daemon on a Unix socket, the bench process as the tenant client. The self-check
// diffs the remotely observed grant trace against the in-process engine; the reported
// frame/byte counters are the client's, which are exact functions of the workload and the
// wire schema (doubles travel as fixed-width bits), so they gate like every other counter.
constexpr ServiceLeg kNetLegs[] = {
    {"steady_poisson", 2, 2, 0, 0, ServiceRecovery::kReassign},
    {"steady_poisson", 4, 4, 2, 1, ServiceRecovery::kRespawn},
    {"bursty_hotspot", 2, 4, 0, 0, ServiceRecovery::kReassign},
};

std::string NetLegName(const ServiceLeg& leg) {
  std::string name = LegName(leg);
  name.replace(0, std::string("fig12_service").size(), "fig12_service_net");
  return name;
}

struct NetLegResult {
  NetCounters client;
  size_t cycles = 0;
  double wall_ms = 0.0;
  bool trace_ok = false;
};

NetLegResult RunNetLeg(const ServiceLeg& leg, size_t index) {
  AlphaGridPtr grid = AlphaGrid::Default();
  CurvePool pool(grid, BlockCapacityCurve(grid, kEpsG, kDeltaG));
  ScenarioWorkload workload =
      GenerateScenario(pool, ScenarioByName(leg.scenario, kScenarioSeed));
  workload.sim.record_grant_trace = true;

  auto reference_scheduler = std::make_unique<GreedyScheduler>(
      GreedyMetric::kDpack, GreedySchedulerOptions{.eta = 0.05, .incremental = true});
  SimResult reference =
      RunOnlineSimulation(std::move(reference_scheduler), workload.tasks, workload.sim);

  const std::string socket_path =
      "/tmp/dpack_fig12_net_" + std::to_string(getpid()) + "_" + std::to_string(index) +
      ".sock";
  SimConfig sim = workload.sim;
  ServiceConfig service_config;
  service_config.num_workers = leg.workers;
  service_config.num_shards = leg.shards;
  service_config.recovery = leg.recovery;
  service_config.kill_at_round = leg.kill_round;
  service_config.kill_worker = leg.kill_worker;
  pid_t daemon = SpawnChild([socket_path, sim, service_config]() -> int {
    AlphaGridPtr child_grid = AlphaGrid::Default();
    BlockManager blocks(child_grid, sim.eps_g, sim.delta_g);
    GrantServiceConfig config;
    config.service = service_config;
    config.admission_queue_capacity = sim.admission_queue_capacity;
    config.period = sim.period;
    config.unlock_steps = sim.unlock_steps;
    config.fair_share_n = sim.fair_share_n;
    GrantService service(GreedyMetric::kDpack, &blocks, config);
    std::vector<double> schedule = BlockArrivalSchedule(sim);
    size_t next_block = 0;
    NetAddress address;
    address.is_unix = true;
    address.path = socket_path;
    NetFrontConfig front_config;
    front_config.serve_idle_budget = 400000;  // An orphaned daemon exits, never leaks.
    NetServiceFront front(&service, &blocks, child_grid,
                          std::make_unique<NetListener>(address), front_config,
                          [&blocks, &schedule, &next_block](double now) {
                            while (next_block < schedule.size() &&
                                   schedule[next_block] <= now) {
                              blocks.AddBlock(schedule[next_block]);
                              ++next_block;
                            }
                          });
    return front.ServeUntilShutdown() ? 0 : 3;
  });

  NetLegResult result;
  auto start = std::chrono::steady_clock::now();
  ServiceClient client;
  std::string error;
  RemoteRunResult remote;
  bool ran = client.Connect("unix:" + socket_path, &error) &&
             RunRemoteWorkload(client, workload.tasks, workload.sim, &remote, &error);
  if (ran) {
    ran = client.SendShutdown(&error);
  }
  auto end = std::chrono::steady_clock::now();
  result.client = client.counters();
  client.Close();
  ChildStatus status = WaitChild(daemon);

  result.cycles = remote.cycles_run;
  result.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  result.trace_ok = ran && remote.grant_trace == reference.grant_trace &&
                    status.state == ChildState::kExited && status.exit_code == 0;
  if (!result.trace_ok) {
    std::fprintf(stderr,
                 "EQUIVALENCE VIOLATION: %s — %s\n", NetLegName(leg).c_str(),
                 !ran ? error.c_str()
                      : "remote grants differ from the in-process engine (or the daemon "
                        "exited uncleanly)");
  }
  return result;
}

std::vector<std::pair<std::string, double>> GatedNetCounters(const NetLegResult& result) {
  double cycles = static_cast<double>(result.cycles);
  const NetCounters& c = result.client;
  return {
      {"net_frames_sent_per_cycle", static_cast<double>(c.frames_sent) / cycles},
      {"net_frames_received_per_cycle", static_cast<double>(c.frames_received) / cycles},
      {"net_bytes_sent_per_cycle", static_cast<double>(c.bytes_sent) / cycles},
      {"net_bytes_received_per_cycle", static_cast<double>(c.bytes_received) / cycles},
  };
}

std::vector<std::pair<std::string, double>> GatedCounters(const LegResult& result) {
  double cycles = static_cast<double>(result.cycles);
  const ServiceCounters& c = result.counters;
  return {
      {"messages_sent_per_cycle", static_cast<double>(c.messages_sent) / cycles},
      {"messages_received_per_cycle", static_cast<double>(c.messages_received) / cycles},
      {"bytes_sent_per_cycle", static_cast<double>(c.bytes_sent) / cycles},
      {"bytes_received_per_cycle", static_cast<double>(c.bytes_received) / cycles},
      {"score_rounds_per_cycle", static_cast<double>(c.score_rounds) / cycles},
      {"recoveries_per_cycle", static_cast<double>(c.recoveries) / cycles},
      {"respawns_per_cycle", static_cast<double>(c.respawns) / cycles},
      {"state_replays_per_cycle", static_cast<double>(c.state_replays) / cycles},
  };
}

bool RunTable() {
  CsvTable table({"leg", "cycles", "msgs_sent/cycle", "msgs_recv/cycle", "bytes_sent/cycle",
                  "recoveries", "respawns", "ring_stalls", "wall_ms"});
  bool ok = true;
  for (const ServiceLeg& leg : kLegs) {
    LegResult result = RunLeg(leg);
    ok = result.trace_ok && ok;
    double cycles = static_cast<double>(result.cycles);
    table.NewRow()
        .Add(LegName(leg))
        .Add(result.cycles)
        .Add(FormatDouble(static_cast<double>(result.counters.messages_sent) / cycles))
        .Add(FormatDouble(static_cast<double>(result.counters.messages_received) / cycles))
        .Add(FormatDouble(static_cast<double>(result.counters.bytes_sent) / cycles))
        .Add(result.counters.recoveries)
        .Add(result.counters.respawns)
        .Add(result.counters.ring_stalls)
        .Add(FormatDouble(result.wall_ms));
  }
  table.Print("Fig. 12: grant-service transport counters across fleet and crash legs");

  CsvTable net_table({"leg", "cycles", "frames_sent/cycle", "frames_recv/cycle",
                      "bytes_sent/cycle", "bytes_recv/cycle", "wall_ms"});
  for (size_t i = 0; i < std::size(kNetLegs); ++i) {
    NetLegResult result = RunNetLeg(kNetLegs[i], i);
    ok = result.trace_ok && ok;
    double cycles = static_cast<double>(result.cycles);
    net_table.NewRow()
        .Add(NetLegName(kNetLegs[i]))
        .Add(result.cycles)
        .Add(FormatDouble(static_cast<double>(result.client.frames_sent) / cycles))
        .Add(FormatDouble(static_cast<double>(result.client.frames_received) / cycles))
        .Add(FormatDouble(static_cast<double>(result.client.bytes_sent) / cycles))
        .Add(FormatDouble(static_cast<double>(result.client.bytes_received) / cycles))
        .Add(FormatDouble(result.wall_ms));
  }
  net_table.Print("Fig. 12 addendum: remote-client legs over the checksummed socket edge");
  std::printf("equivalence: %s — every leg %s the in-process grant trace\n",
              ok ? "OK" : "VIOLATED", ok ? "matches" : "DIVERGES FROM");
  return ok;
}

bool DumpCountersJson(const std::string& path) {
  std::vector<BenchJsonEntry> entries;
  bool ok = true;
  for (const ServiceLeg& leg : kLegs) {
    LegResult result = RunLeg(leg);
    ok = result.trace_ok && ok;
    BenchJsonEntry entry;
    entry.name = LegName(leg);
    entry.fields.push_back({"wall_ms", result.wall_ms});
    entry.fields.push_back({"ring_stalls_total", static_cast<double>(result.counters.ring_stalls)});
    for (const auto& field : GatedCounters(result)) {
      entry.fields.push_back(field);
    }
    entries.push_back(std::move(entry));
  }
  for (size_t i = 0; i < std::size(kNetLegs); ++i) {
    NetLegResult result = RunNetLeg(kNetLegs[i], i);
    ok = result.trace_ok && ok;
    BenchJsonEntry entry;
    entry.name = NetLegName(kNetLegs[i]);
    entry.fields.push_back({"wall_ms", result.wall_ms});
    for (const auto& field : GatedNetCounters(result)) {
      entry.fields.push_back(field);
    }
    entries.push_back(std::move(entry));
  }
  return WriteBenchCountersJson(path, entries) && ok;
}

std::string ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return "";
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Banner("Fig. 12: multi-process grant service, fleet + crash-recovery legs",
         "ISSUE 8, beyond the paper");
  std::string json_path = ParseJsonPath(argc, argv);
  if (!json_path.empty()) {
    return DumpCountersJson(json_path) ? 0 : 1;
  }
  return RunTable() ? 0 : 1;
}
