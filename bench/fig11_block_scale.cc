// Block-scale sweep (ISSUE 6): proves the scheduling hot path is O(changed), not O(blocks).
// The block population grows 10k -> 1M while the per-cycle change set stays fixed (a small
// window of pending tasks plus a few dozen dirtied blocks), so every steady-state work
// counter — blocks refreshed, tasks rescored/reused, best-alpha recomputes, merge
// allocations — must be *flat* across the sweep. Anything that scales with the population
// (a full version scan, a snapshot rebuild, a heap realloc) shows up as a counter that
// grows with N and fails both the built-in flatness check and the CI gate.
//
// --json <path> emits the counters for every (engine, scale) point in google-benchmark's
// {"benchmarks": [...]} shape, consumed by scripts/check_bench_regression.py against
// bench/baseline.json. The counters are exact functions of the fixed workload (no
// randomness, no timing), so they are stable across machines; wall time rides along for
// humans and is never gated. The dump itself fails (non-zero exit) if any gated counter is
// not identical across scales — O(changed) is enforced even before the baseline diff.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

// The population sweep: 100x from first to last point. Fixed regardless of --quick/--full
// so the JSON dump always covers every baseline entry (the gate reports a missing sweep
// point explicitly otherwise).
constexpr size_t kScales[] = {10'000, 100'000, 1'000'000};

// The fixed change set, independent of the population size. Tasks draw blocks from the
// most-recent kWindow ids (the paper's RangeSelector shape); each cycle dirties kDirty of
// them. Offsets are chosen so the window's alignment to the version tree's groups and to
// the shard partition (id % shards) is identical at every scale (all kScales and kWindow
// are multiples of 64 and of every shard count used here).
constexpr size_t kWindow = 512;
constexpr size_t kTasks = 256;
constexpr size_t kBlocksPerTask = 4;
constexpr size_t kDirty = 32;
constexpr size_t kMeasuredCycles = 8;

// A 4-order grid keeps a million-block manager (two curves per block) small enough to sweep
// in memory; the hot-path machinery under test is order-count agnostic.
AlphaGridPtr SweepGrid() {
  static const AlphaGridPtr grid = AlphaGrid::Create({2.0, 4.0, 8.0, 16.0});
  return grid;
}

RdpCurve CapacityFraction(double fraction) {
  return BlockCapacityCurve(SweepGrid(), kEpsG, kDeltaG).Scaled(fraction);
}

struct EngineLeg {
  const char* label;
  size_t shards;
  bool async;
};

constexpr EngineLeg kEngineLegs[] = {
    {"incremental", 1, false}, {"sharded4", 4, false}, {"async4", 4, true}};

struct SweepPoint {
  size_t num_blocks = 0;
  ScheduleContextStats delta;  // Work over the measured cycles only (warm-up excluded).
  double wall_ms = 0.0;
};

// Oversized tasks (never granted) over the most-recent window: the pending queue is stable
// across cycles, so the only work left is what the dirty blocks induce.
std::vector<Task> WindowTasks(size_t num_blocks) {
  const int64_t window_start = static_cast<int64_t>(num_blocks - kWindow);
  std::vector<Task> pending;
  pending.reserve(kTasks);
  for (TaskId i = 0; i < static_cast<TaskId>(kTasks); ++i) {
    Task task(i, 1.0, CapacityFraction(2.0));
    for (size_t j = 0; j < kBlocksPerTask; ++j) {
      task.blocks.push_back(window_start +
                            static_cast<int64_t>((kBlocksPerTask * i + j) % kWindow));
    }
    pending.push_back(std::move(task));
  }
  return pending;
}

// Dirties kDirty window blocks with a demand far too small to ever exhaust one. The stride
// (7, coprime to kWindow) spreads the commits across the window so consecutive cycles touch
// different blocks.
void DirtyCycle(BlockManager& blocks, size_t num_blocks, size_t cycle,
                const RdpCurve& tiny) {
  const int64_t window_start = static_cast<int64_t>(num_blocks - kWindow);
  for (size_t j = 0; j < kDirty; ++j) {
    int64_t offset = static_cast<int64_t>(((cycle * kDirty + j) * 7) % kWindow);
    blocks.block(window_start + offset).Commit(tiny);
  }
}

SweepPoint RunPoint(const EngineLeg& leg, size_t num_blocks) {
  BlockManager blocks(SweepGrid(), kEpsG, kDeltaG);
  for (size_t j = 0; j < num_blocks; ++j) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  std::vector<Task> pending = WindowTasks(num_blocks);
  const RdpCurve tiny = CapacityFraction(1e-5);

  GreedyScheduler scheduler(GreedyMetric::kDpack,
                            GreedySchedulerOptions{.eta = 0.05,
                                                   .incremental = true,
                                                   .num_shards = leg.shards,
                                                   .async = leg.async});
  // Two warm-up cycles: the first pays the one-time population sync and scores everything;
  // the second fills the N-way merge's second ping-pong buffer so the measured cycles
  // perform zero merge allocations.
  scheduler.ScheduleBatch(pending, blocks);
  DirtyCycle(blocks, num_blocks, /*cycle=*/0, tiny);
  scheduler.ScheduleBatch(pending, blocks);

  const ScheduleContextStats before = scheduler.engine()->stats();
  auto start = std::chrono::steady_clock::now();
  for (size_t cycle = 1; cycle <= kMeasuredCycles; ++cycle) {
    DirtyCycle(blocks, num_blocks, cycle, tiny);
    scheduler.ScheduleBatch(pending, blocks);
  }
  auto stop = std::chrono::steady_clock::now();

  SweepPoint point;
  point.num_blocks = num_blocks;
  point.delta = scheduler.engine()->stats().Delta(before);
  point.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  return point;
}

// The gated counters, as (name, per-cycle value) pairs. Exact functions of the fixed
// change set, so they must be identical at every scale.
std::vector<std::pair<std::string, double>> GatedCounters(const SweepPoint& point) {
  double cycles = static_cast<double>(kMeasuredCycles);
  const ScheduleContextStats& d = point.delta;
  return {{"blocks_refreshed_per_cycle", static_cast<double>(d.blocks_refreshed) / cycles},
          {"rescored_per_cycle", static_cast<double>(d.tasks_rescored) / cycles},
          {"reused_per_cycle", static_cast<double>(d.tasks_reused) / cycles},
          {"best_alpha_per_cycle", static_cast<double>(d.best_alpha_recomputes) / cycles},
          {"merge_allocs", static_cast<double>(d.merge_allocs)},
          {"full_recomputes", static_cast<double>(d.full_recomputes)}};
}

// O(changed) means counter values do not depend on the population size. Returns false (and
// says which counter broke) if any gated counter differs between sweep points of one engine.
bool CheckFlatAcrossScales(const EngineLeg& leg, const std::vector<SweepPoint>& points) {
  if (points.empty()) {
    return true;
  }
  std::vector<std::pair<std::string, double>> reference = GatedCounters(points.front());
  for (const SweepPoint& point : points) {
    std::vector<std::pair<std::string, double>> counters = GatedCounters(point);
    for (size_t c = 0; c < reference.size(); ++c) {
      if (counters[c].second != reference[c].second) {
        std::fprintf(stderr,
                     "FLATNESS VIOLATION: %s/%s is %g at %zu blocks but %g at %zu blocks "
                     "— the hot path scales with the population, not with the change set\n",
                     leg.label, counters[c].first.c_str(), counters[c].second,
                     point.num_blocks, reference[c].second, points.front().num_blocks);
        return false;
      }
    }
  }
  return true;
}

bool RunSweep() {
  CsvTable table({"engine", "blocks", "refreshed_per_cycle", "rescored_per_cycle",
                  "reused_per_cycle", "best_alpha_per_cycle", "merge_allocs",
                  "full_recomputes", "wall_ms"});
  bool flat = true;
  for (const EngineLeg& leg : kEngineLegs) {
    std::vector<SweepPoint> points;
    for (size_t num_blocks : kScales) {
      points.push_back(RunPoint(leg, num_blocks));
      const SweepPoint& point = points.back();
      CsvTable& row = table.NewRow().Add(leg.label).Add(point.num_blocks);
      for (const auto& [name, value] : GatedCounters(point)) {
        row.Add(FormatDouble(value));
      }
      row.Add(FormatDouble(point.wall_ms));
    }
    flat = CheckFlatAcrossScales(leg, points) && flat;
  }
  table.Print("Fig. 11: steady-state engine work vs block population (fixed change set)");
  std::printf("flatness: %s — gated counters %s across the 100x population sweep\n",
              flat ? "OK" : "VIOLATED", flat ? "identical" : "DIFFER");
  return flat;
}

bool DumpCountersJson(const std::string& path) {
  std::vector<BenchJsonEntry> entries;
  bool flat = true;
  for (const EngineLeg& leg : kEngineLegs) {
    std::vector<SweepPoint> points;
    for (size_t num_blocks : kScales) {
      points.push_back(RunPoint(leg, num_blocks));
      const SweepPoint& point = points.back();
      BenchJsonEntry entry;
      entry.name = "fig11_block_scale/dpack/" + std::string(leg.label) +
                   "/blocks:" + std::to_string(num_blocks);
      entry.fields.push_back({"wall_ms", point.wall_ms});
      for (const auto& field : GatedCounters(point)) {
        entry.fields.push_back(field);
      }
      entries.push_back(std::move(entry));
    }
    flat = CheckFlatAcrossScales(leg, points) && flat;
  }
  return WriteBenchCountersJson(path, entries) && flat;
}

std::string ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return "";
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Banner("Fig. 11: O(changed) block-scale sweep, 10k -> 1M blocks",
         "ISSUE 6, beyond the paper");
  std::string json_path = ParseJsonPath(argc, argv);
  if (!json_path.empty()) {
    return DumpCountersJson(json_path) ? 0 : 1;
  }
  return RunSweep() ? 0 : 1;
}
