// Fig. 2 reproduction: RDP curves of three mechanisms and their composition (a), and the
// translation to traditional DP with per-mechanism best alphas (b).
//
// The paper plots Gaussian / subsampled Gaussian / Laplace. The qualitative content to
// reproduce: the curves are non-linear with different shapes; the subsampled Gaussian is
// tightest at low orders and the Laplace at high orders; each mechanism's best alpha
// differs; and composing in RDP then translating once beats translating each mechanism
// separately and adding the epsilons.

#include <cstdio>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

void Run() {
  Banner("Fig. 2: RDP curves and DP translation", "paper §3.2, Fig. 2");
  AlphaGridPtr grid = AlphaGrid::Default();
  const double delta = 1e-6;

  RdpCurve gaussian = GaussianCurve(grid, /*sigma=*/2.0);
  RdpCurve subsampled = SubsampledGaussianCurve(grid, /*sigma=*/1.0, /*q=*/0.2);
  RdpCurve laplace = LaplaceCurve(grid, /*b=*/2.0);
  RdpCurve composition = gaussian + subsampled + laplace;

  // (a) The RDP curves.
  CsvTable curves({"alpha", "gaussian", "subsampled_gaussian", "laplace", "composition"});
  for (size_t i = 0; i < grid->size(); ++i) {
    curves.NewRow()
        .Add(grid->order(i))
        .Add(gaussian.epsilon(i))
        .Add(subsampled.epsilon(i))
        .Add(laplace.epsilon(i))
        .Add(composition.epsilon(i));
  }
  curves.Print("Fig. 2(a): RDP epsilon by order (sigma/b as in caption)");

  // (b) Translation to (eps, 1e-6)-DP: per-alpha translated epsilon for the composition,
  // plus each curve's best alpha.
  CsvTable translation({"mechanism", "best_alpha", "eps_dp_at_best_alpha"});
  auto add_row = [&](const std::string& name, const RdpCurve& curve) {
    DpTranslation t = curve.ToDp(delta);
    translation.NewRow().Add(name).Add(t.alpha).Add(t.epsilon);
    return t;
  };
  DpTranslation tg = add_row("gaussian", gaussian);
  DpTranslation ts = add_row("subsampled_gaussian", subsampled);
  DpTranslation tl = add_row("laplace", laplace);
  DpTranslation tc = add_row("composition (via RDP)", composition);
  translation.NewRow()
      .Add(std::string("naive sum of translations"))
      .Add(std::string("-"))
      .Add(tg.epsilon + ts.epsilon + tl.epsilon);
  translation.Print("Fig. 2(b): translation to (eps, 1e-6)-DP");

  std::printf(
      "\nShape check: subsampled best alpha (%g) < gaussian best alpha (%g) <= laplace "
      "best alpha (%g);\nRDP composition eps %.2f < naive sum %.2f.\n",
      ts.alpha, tg.alpha, tl.alpha, tc.epsilon, tg.epsilon + ts.epsilon + tl.epsilon);
}

}  // namespace
}  // namespace dpack::bench

int main() {
  dpack::bench::Run();
  return 0;
}
