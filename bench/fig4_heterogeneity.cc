// Fig. 4 reproduction (Q1): offline microbenchmark efficiency as workload heterogeneity
// grows, for DPack, DPF, and the exact Optimal privacy-knapsack solver.
//   (a) sweep sigma_blocks with mu_blocks = 10, sigma_alpha = 0, eps_min = 0.1;
//   (b) sweep sigma_alpha with all tasks on one block, eps_min = 0.005.
// Expected shape: all three comparable at zero heterogeneity; DPack tracks Optimal closely
// (paper: within 23%) and pulls away from DPF as either knob grows (paper: up to 161% (a)
// and 67% (b)).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

size_t RunScheduler(SchedulerKind kind, const std::vector<Task>& tasks, size_t num_blocks,
                    double time_limit, bool* optimal_flag = nullptr) {
  SimConfig sim;
  sim.num_blocks = num_blocks;
  sim.eps_g = kEpsG;
  sim.delta_g = kDeltaG;
  PkOptions options;
  options.time_limit_seconds = time_limit;
  std::unique_ptr<Scheduler> scheduler = CreateScheduler(kind, 0.05, options);
  SimResult result = RunOfflineSchedule(*scheduler, tasks, sim);
  if (optimal_flag != nullptr) {
    auto* optimal = dynamic_cast<OptimalScheduler*>(scheduler.get());
    *optimal_flag = optimal == nullptr || optimal->last_solve_optimal();
  }
  return result.metrics.allocated();
}

void SweepBlocks(Scale scale) {
  double f = ScaleFactor(scale);
  size_t num_tasks = static_cast<size_t>(500 * f);
  size_t num_blocks = 30;

  CsvTable table({"sigma_blocks", "Optimal", "DPack", "DPF", "optimal_proven"});
  for (double sigma : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    MicrobenchmarkConfig config;
    config.num_tasks = num_tasks;
    config.num_blocks = num_blocks;
    config.mu_blocks = 10.0;
    config.sigma_blocks = sigma;
    config.sigma_alpha = 0.0;
    config.eps_min = 0.1;
    config.seed = 42;
    std::vector<Task> tasks = GenerateMicrobenchmark(SharedPool(), config);

    bool proven = false;
    size_t optimal = RunScheduler(SchedulerKind::kOptimal, tasks, num_blocks, 30.0, &proven);
    size_t dpack = RunScheduler(SchedulerKind::kDpack, tasks, num_blocks, 30.0);
    size_t dpf = RunScheduler(SchedulerKind::kDpf, tasks, num_blocks, 30.0);
    table.NewRow().Add(sigma).Add(optimal).Add(dpack).Add(dpf).Add(
        std::string(proven ? "yes" : "no (time limit)"));
  }
  table.Print("Fig. 4(a): allocated tasks vs sigma_blocks (mu_blocks=10, eps_min=0.1)");
}

void SweepAlpha(Scale scale) {
  double f = ScaleFactor(scale);
  size_t num_tasks = static_cast<size_t>(600 * f);

  CsvTable table({"sigma_alpha", "Optimal", "DPack", "DPF"});
  for (double sigma : {0.0, 1.0, 2.0, 4.0, 6.0, 8.0}) {
    MicrobenchmarkConfig config;
    config.num_tasks = num_tasks;
    config.num_blocks = 1;
    config.mu_blocks = 1.0;
    config.sigma_blocks = 0.0;
    config.sigma_alpha = sigma;
    config.eps_min = 0.005;
    config.seed = 42;
    std::vector<Task> tasks = GenerateMicrobenchmark(SharedPool(), config);

    size_t optimal = RunScheduler(SchedulerKind::kOptimal, tasks, 1, 30.0);
    size_t dpack = RunScheduler(SchedulerKind::kDpack, tasks, 1, 30.0);
    size_t dpf = RunScheduler(SchedulerKind::kDpf, tasks, 1, 30.0);
    table.NewRow().Add(sigma).Add(optimal).Add(dpack).Add(dpf);
  }
  table.Print("Fig. 4(b): allocated tasks vs sigma_alpha (single block, eps_min=0.005)");
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Scale scale = ParseScale(argc, argv);
  Banner("Fig. 4: DPack vs DPF vs Optimal under variable heterogeneity", "paper §6.2, Q1");
  SweepBlocks(scale);
  SweepAlpha(scale);
  return 0;
}
