// Fig. 5 reproduction (Q2): scheduler runtime (a) and efficiency (b) under increasing load,
// single-threaded, offline. Microbenchmark with sigma_alpha = 4, mu_blocks = 1,
// sigma_blocks = 10, eps_min = 0.01, 7 available blocks.
// Expected shape: Optimal hits a tractability wall after a few hundred tasks (the paper
// stops its line at 200 because Gurobi "never finishes"); DPack runs slightly slower than
// DPF (it solves single-block knapsacks) but both stay practical; DPack matches Optimal
// while it lasts and plateaus as the task pool saturates.

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace dpack::bench {
namespace {

struct RunOutcome {
  size_t allocated = 0;
  double seconds = 0.0;
  bool proven_optimal = true;
};

RunOutcome RunOne(SchedulerKind kind, const std::vector<Task>& tasks, double time_limit) {
  SimConfig sim;
  sim.num_blocks = 7;
  PkOptions options;
  options.time_limit_seconds = time_limit;
  std::unique_ptr<Scheduler> scheduler = CreateScheduler(kind, 0.05, options);
  auto start = std::chrono::steady_clock::now();
  SimResult result = RunOfflineSchedule(*scheduler, tasks, sim);
  RunOutcome outcome;
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  outcome.allocated = result.metrics.allocated();
  if (auto* optimal = dynamic_cast<OptimalScheduler*>(scheduler.get())) {
    outcome.proven_optimal = optimal->last_solve_optimal();
  }
  return outcome;
}

void Run(Scale scale) {
  double f = ScaleFactor(scale);
  const double optimal_time_limit = 20.0;
  // Optimal is dropped from the sweep once it fails to prove optimality in the time limit,
  // mirroring the paper's "its execution never finishes" cutoff at 200 tasks.
  bool optimal_alive = true;

  CsvTable table({"submitted", "Optimal_alloc", "DPack_alloc", "DPF_alloc", "Optimal_s",
                  "DPack_s", "DPF_s"});
  for (size_t n : {50, 100, 200, 500, 1000, 2000, 5000}) {
    size_t num_tasks = static_cast<size_t>(static_cast<double>(n) * f);
    if (num_tasks == 0) {
      continue;
    }
    MicrobenchmarkConfig config;
    config.num_tasks = num_tasks;
    config.num_blocks = 7;
    config.mu_blocks = 1.0;
    config.sigma_blocks = 10.0;
    config.sigma_alpha = 4.0;
    config.eps_min = 0.01;
    config.seed = 7;
    std::vector<Task> tasks = GenerateMicrobenchmark(SharedPool(), config);

    RunOutcome dpack = RunOne(SchedulerKind::kDpack, tasks, optimal_time_limit);
    RunOutcome dpf = RunOne(SchedulerKind::kDpf, tasks, optimal_time_limit);
    RunOutcome optimal;
    std::string optimal_alloc = "-";
    std::string optimal_seconds = "-";
    if (optimal_alive) {
      optimal = RunOne(SchedulerKind::kOptimal, tasks, optimal_time_limit);
      if (optimal.proven_optimal) {
        optimal_alloc = std::to_string(optimal.allocated);
        optimal_seconds = FormatDouble(optimal.seconds);
      } else {
        optimal_alloc = "timeout";
        optimal_seconds = ">" + FormatDouble(optimal_time_limit);
        optimal_alive = false;  // The intractability wall: stop the line here.
      }
    }
    table.NewRow()
        .Add(num_tasks)
        .Add(optimal_alloc)
        .Add(dpack.allocated)
        .Add(dpf.allocated)
        .Add(optimal_seconds)
        .Add(dpack.seconds)
        .Add(dpf.seconds);
  }
  table.Print("Fig. 5: allocated tasks and scheduler runtime vs offered load (7 blocks)");
}

// --- Incremental engine vs recompute baseline (§6.4 Q4) -----------------------------------
//
// Steady-state online trace (bench_util's SteadyStateTasks, shared with micro_scheduler's
// BM_*Steady* so both harnesses measure the same scenario): a persistent queue of oversized
// (never-granted) pending tasks is rescheduled every cycle while exactly 1 of 20 blocks
// (5%) receives a commit between cycles. The recompute baseline rescores the whole queue
// every cycle; the incremental engine rescores only tasks touching the dirtied block. Same
// grants by construction (see tests/core/incremental_equivalence_test.cc); this measures
// the cycle-time win.

struct EngineTuning {
  BlockPartition partition = BlockPartition::kRoundRobin;
  HeapPublishMode publish = HeapPublishMode::kRing;
  bool pin_threads = true;
};

double SteadyStateMsPerCycle(GreedyMetric metric, bool incremental,
                             const std::vector<Task>& tasks, size_t num_blocks,
                             size_t cycles, size_t num_shards = 1, bool async = false,
                             ScheduleContextStats* stats_out = nullptr,
                             EngineTuning tuning = {}) {
  BlockManager blocks(AlphaGrid::Default(), kEpsG, kDeltaG);
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }
  RdpCurve tiny = SteadyStateTinyDemand();
  GreedyScheduler scheduler(metric, GreedySchedulerOptions{.incremental = incremental,
                                                           .num_shards = num_shards,
                                                           .async = async,
                                                           .partition = tuning.partition,
                                                           .publish = tuning.publish,
                                                           .pin_threads = tuning.pin_threads});
  scheduler.ScheduleBatch(tasks, blocks);  // Warm-up: measure the steady state.
  ScheduleContextStats at_entry;
  if (scheduler.engine() != nullptr) {
    at_entry = scheduler.engine()->stats();
  }
  double seconds = 0.0;
  for (size_t c = 0; c < cycles; ++c) {
    blocks.block(static_cast<BlockId>(c % num_blocks)).Commit(tiny);  // 1/20 dirty.
    auto start = std::chrono::steady_clock::now();
    scheduler.ScheduleBatch(tasks, blocks);
    seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }
  if (stats_out != nullptr && scheduler.engine() != nullptr) {
    // The timed loop's counter deltas: deterministic for the fixed workload and cycle
    // count, unlike the wall time — the CI regression gate compares these.
    *stats_out = scheduler.engine()->stats().Delta(at_entry);
  }
  return 1e3 * seconds / static_cast<double>(cycles);
}

void RunIncrementalComparison(Scale scale) {
  double f = ScaleFactor(scale);
  size_t num_tasks = static_cast<size_t>(1000.0 * f);
  if (num_tasks == 0) {
    return;
  }
  constexpr size_t kBlocks = kSteadyStateBlocks;
  constexpr size_t kCycles = 20;
  std::vector<Task> tasks = SteadyStateTasks(num_tasks);
  CsvTable table({"metric", "recompute_ms", "incremental_ms", "speedup"});
  for (GreedyMetric metric : {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea}) {
    double recompute_ms = SteadyStateMsPerCycle(metric, false, tasks, kBlocks, kCycles);
    double incremental_ms = SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles);
    GreedyScheduler named(metric);
    table.NewRow()
        .Add(named.name())
        .Add(FormatDouble(recompute_ms))
        .Add(FormatDouble(incremental_ms))
        .Add(FormatDouble(recompute_ms / incremental_ms));
  }
  table.Print("Fig. 5 addendum: per-cycle cost, incremental engine vs recompute (" +
              std::to_string(num_tasks) + " pending tasks, 5% blocks dirty per cycle)");
}

// --- Shard-count sweep (sharded engine on the same steady-state regime) -------------------
//
// ShardedScheduleContext partitions blocks and tasks across N shards and rescoring across a
// worker pool; grants are byte-identical to the single-shard engine (pinned by the sharded
// differential suite). This sweep reports per-cycle cost per shard count and the speedup
// over 1 shard. The parallel phases scale with the cores actually available — a single-core
// host measures only the pool's coordination overhead.

void RunShardSweep(Scale scale) {
  double f = ScaleFactor(scale);
  size_t num_tasks = static_cast<size_t>(1000.0 * f);
  if (num_tasks == 0) {
    return;
  }
  constexpr size_t kBlocks = kSteadyStateBlocks;
  constexpr size_t kCycles = 20;
  std::vector<Task> tasks = SteadyStateTasks(num_tasks);
  CsvTable table({"metric", "shards_1_ms", "shards_2_ms", "shards_4_ms", "speedup_4x"});
  for (GreedyMetric metric : {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea}) {
    double ms1 = SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, 1);
    double ms2 = SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, 2);
    double ms4 = SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, 4);
    GreedyScheduler named(metric);
    table.NewRow()
        .Add(named.name())
        .Add(FormatDouble(ms1))
        .Add(FormatDouble(ms2))
        .Add(FormatDouble(ms4))
        .Add(FormatDouble(ms1 / ms4));
  }
  table.Print("Fig. 5 addendum: per-cycle cost vs shard count, sharded engine (" +
              std::to_string(num_tasks) + " pending tasks, 5% blocks dirty per cycle)");
}

// --- Async engine sweep (per-shard scheduler threads, same steady-state regime) -----------
//
// AsyncScheduleEngine replaces the fork-join cycle with persistent per-shard scheduler
// threads: rescoring overlaps the other shards' block refreshes (the early-score share
// below), and a cycle only merges the published heap snapshots and walks CANRUN. Grants
// stay byte-identical (async differential suite). On a single-core host the sweep measures
// only the dispatch/fence/publication overhead.

void RunAsyncSweep(Scale scale) {
  double f = ScaleFactor(scale);
  size_t num_tasks = static_cast<size_t>(1000.0 * f);
  if (num_tasks == 0) {
    return;
  }
  constexpr size_t kBlocks = kSteadyStateBlocks;
  constexpr size_t kCycles = 20;
  std::vector<Task> tasks = SteadyStateTasks(num_tasks);
  CsvTable table({"metric", "async_1_ms", "async_2_ms", "async_4_ms", "sync_4_ms",
                  "early_score_share_4"});
  for (GreedyMetric metric : {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea}) {
    ScheduleContextStats stats4;
    double a1 = SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, 1, true);
    double a2 = SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, 2, true);
    double a4 = SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, 4, true,
                                      &stats4);
    double s4 = SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, 4);
    double early_share =
        stats4.tasks_rescored > 0
            ? static_cast<double>(stats4.async_early_scores) /
                  static_cast<double>(stats4.tasks_rescored)
            : 0.0;
    GreedyScheduler named(metric);
    table.NewRow()
        .Add(named.name())
        .Add(FormatDouble(a1))
        .Add(FormatDouble(a2))
        .Add(FormatDouble(a4))
        .Add(FormatDouble(s4))
        .Add(FormatDouble(early_share));
  }
  table.Print("Fig. 5 addendum: per-cycle cost, async per-shard scheduler threads (" +
              std::to_string(num_tasks) + " pending tasks, 5% blocks dirty per cycle)");
}

// --- Ring-vs-mutex publication and pinned-vs-unpinned legs (async engine) -----------------
//
// The async engine's heap publication is a per-shard lock-free SPSC ring by default; the
// pre-ring mutex/condvar handoff is kept as a comparison leg. Shard threads pin themselves
// to allowed cores at startup (first-touch placement keeps each shard's heap/cache slices
// core-local); the unpinned leg measures the same engine with pinning disabled. Grants are
// byte-identical across all legs (scenario_matrix_test) — only the handoff and placement
// change. ring_publishes counts one push per shard per dispatched cycle; ring_retries and
// pin_failures are zero by construction here (the driver drains every cycle; PickShardCore
// only returns allowed cores).

void RunPublishAndPinSweep(Scale scale) {
  double f = ScaleFactor(scale);
  size_t num_tasks = static_cast<size_t>(1000.0 * f);
  if (num_tasks == 0) {
    return;
  }
  constexpr size_t kBlocks = kSteadyStateBlocks;
  constexpr size_t kCycles = 20;
  constexpr size_t kShards = 4;
  std::vector<Task> tasks = SteadyStateTasks(num_tasks);
  CsvTable table({"metric", "ring_pinned_ms", "ring_unpinned_ms", "mutex_pinned_ms",
                  "ring_publishes", "ring_retries", "pin_failures"});
  for (GreedyMetric metric : {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea}) {
    ScheduleContextStats ring_stats;
    double ring_pinned =
        SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, kShards, true,
                              &ring_stats, EngineTuning{});
    double ring_unpinned =
        SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, kShards, true,
                              nullptr, EngineTuning{.pin_threads = false});
    double mutex_pinned =
        SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, kShards, true,
                              nullptr, EngineTuning{.publish = HeapPublishMode::kMutex});
    GreedyScheduler named(metric);
    table.NewRow()
        .Add(named.name())
        .Add(FormatDouble(ring_pinned))
        .Add(FormatDouble(ring_unpinned))
        .Add(FormatDouble(mutex_pinned))
        .Add(ring_stats.ring_publishes)
        .Add(ring_stats.ring_retries)
        .Add(ring_stats.pin_failures);
  }
  table.Print("Fig. 5 addendum: async heap publication (ring vs mutex) and shard pinning (" +
              std::to_string(num_tasks) + " pending tasks, " + std::to_string(kShards) +
              " shards)");
}

// --- Deterministic counter dump for the CI regression gate (--json <path>) ----------------
//
// Emits the steady-state engine counters in the same {"benchmarks": [...]} shape as
// google-benchmark's JSON so scripts/check_bench_regression.py can gate both artifacts with
// one parser. Only counters are compared by the gate; the *_ms fields ride along for
// humans. Counters are exact functions of (workload seed, task count, cycle count, engine),
// so they are stable across machines — unlike wall time on shared runners.

bool DumpCountersJson(Scale scale, const std::string& path) {
  double f = ScaleFactor(scale);
  size_t num_tasks = static_cast<size_t>(1000.0 * f);
  if (num_tasks == 0) {
    return true;
  }
  constexpr size_t kBlocks = kSteadyStateBlocks;
  constexpr size_t kCycles = 20;
  std::vector<Task> tasks = SteadyStateTasks(num_tasks);
  struct Leg {
    const char* label;
    size_t shards;
    bool async;
    EngineTuning tuning;
  };
  // The async legs cross the publication mode (ring vs mutex) and pinning (pinned vs
  // unpinned); the ring/pin counters are exact (one publish per shard per cycle, zero
  // retries, zero pin failures — PickShardCore only returns allowed cores), so the gate
  // pins the publication protocol itself.
  const Leg legs[] = {
      {"sync", 1, false, {}},
      {"sync", 4, false, {}},
      {"async", 1, true, {}},
      {"async", 4, true, {}},
      {"async-unpinned", 4, true, {.pin_threads = false}},
      {"async-mutex", 4, true, {.publish = HeapPublishMode::kMutex}},
      {"async-range", 4, true, {.partition = BlockPartition::kIdRange}},
  };
  std::vector<BenchJsonEntry> entries;
  for (GreedyMetric metric : {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea}) {
    GreedyScheduler named(metric);
    for (const Leg& leg : legs) {
      ScheduleContextStats stats;
      double ms = SteadyStateMsPerCycle(metric, true, tasks, kBlocks, kCycles, leg.shards,
                                        leg.async, &stats, leg.tuning);
      BenchJsonEntry entry{
          "fig5_steady/" + named.name() + "/" + leg.label +
              "/shards:" + std::to_string(leg.shards),
          {{"wall_ms", ms},
           {"rescored_per_cycle", static_cast<double>(stats.tasks_rescored) / kCycles},
           {"reused_per_cycle", static_cast<double>(stats.tasks_reused) / kCycles},
           {"blocks_refreshed_per_cycle",
            static_cast<double>(stats.blocks_refreshed) / kCycles},
           {"best_alpha_per_cycle",
            static_cast<double>(stats.best_alpha_recomputes) / kCycles},
           {"early_scores_per_cycle",
            static_cast<double>(stats.async_early_scores) / kCycles},
           {"full_recomputes", static_cast<double>(stats.full_recomputes)}}};
      if (leg.async) {
        entry.fields.emplace_back(
            "ring_publishes_per_cycle",
            static_cast<double>(stats.ring_publishes) / kCycles);
        entry.fields.emplace_back("ring_retries",
                                  static_cast<double>(stats.ring_retries));
        entry.fields.emplace_back("pin_failures",
                                  static_cast<double>(stats.pin_failures));
      }
      entries.push_back(std::move(entry));
    }
  }
  return WriteBenchCountersJson(path, entries);
}

std::string ParseJsonPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return "";
}

}  // namespace
}  // namespace dpack::bench

int main(int argc, char** argv) {
  using namespace dpack::bench;
  Banner("Fig. 5: scalability under increasing load", "paper §6.2, Q2");
  Scale scale = ParseScale(argc, argv);
  std::string json_path = ParseJsonPath(argc, argv);
  if (!json_path.empty()) {
    // Counter-dump mode (the CI regression gate): only the JSON consumer exists, so skip
    // the human-readable sweeps — they would re-measure the same legs for nobody. A
    // failed dump must fail this step, not the gate step two steps later.
    return DumpCountersJson(scale, json_path) ? 0 : 1;
  }
  Run(scale);
  RunIncrementalComparison(scale);
  RunShardSweep(scale);
  RunAsyncSweep(scale);
  RunPublishAndPinSweep(scale);
  return 0;
}
