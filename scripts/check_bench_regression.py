#!/usr/bin/env python3
"""Gate CI on the steady-state engine counters of the bench artifacts.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [CURRENT2.json ...]

Every file holds a {"benchmarks": [...]} array — google-benchmark's JSON output
(bench_micro_scheduler) and fig5's --json dump share that shape. Benchmarks are matched by
"name". Only the *work counters* are compared (fields named *_per_cycle plus
full_recomputes, merge_allocs, ring_retries, and pin_failures): they are exact functions
of the fixed workload and the engine's reuse/rescore logic, so they are stable across
machines (ring_retries and pin_failures are zero by construction — a driver that drains
every cycle never fills a ring, and the bench legs that pin run where PickShardCore only
returns allowed cores; nonzero means the publication protocol or the fallback broke). Wall/CPU time fields are ignored —
they are noise on shared runners.

A counter regresses when it drifts more than TOLERANCE (25%) from the baseline in either
direction: more work per cycle means the incremental engine lost reuse; much less usually
means a benchmark stopped exercising what it claims to. Zero-valued baseline counters
(merge_allocs, full_recomputes in steady state) use an absolute tolerance instead — a
relative tolerance on zero is either meaningless or an exact-match trap for float dumps. A
baseline benchmark missing from the current run also fails (coverage loss; sweep points
like .../blocks:N get an explicit message, since a silently shrunken sweep would otherwise
look like a pass), and so does any current counter with no entry in the baseline ("missing
baseline key"): an untracked counter is a gate with a hole in it, so new
benchmarks/counters must land together with a regenerated baseline
(scripts/update_bench_baseline.sh).
"""

import json
import sys

TOLERANCE = 0.25
# Counters whose baseline is exactly zero (e.g. merge_allocs: steady-state cycles must not
# allocate) are compared absolutely: anything beyond this is real work appearing on a path
# proven to do none.
ZERO_TOLERANCE = 1e-6
COUNTER_FIELDS = ("_per_cycle", "full_recomputes", "merge_allocs", "ring_retries",
                  "pin_failures")
# Never gate on time: wall/CPU time is what the tolerance exists to avoid.
TIME_FIELDS = ("time", "wall", "_ms")


def counters(entry):
    out = {}
    for key, value in entry.items():
        if not isinstance(value, (int, float)):
            continue
        if any(f in key for f in TIME_FIELDS):
            continue
        if any(key.endswith(f) or f in key for f in COUNTER_FIELDS):
            out[key] = float(value)
    return out


def load_benchmarks(path):
    with open(path) as fh:
        data = json.load(fh)
    return {entry["name"]: entry for entry in data.get("benchmarks", [])}


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline = load_benchmarks(argv[1])
    current = {}
    for path in argv[2:]:
        current.update(load_benchmarks(path))

    failures = []
    compared = 0
    for name, base_entry in sorted(baseline.items()):
        base_counters = counters(base_entry)
        if not base_counters:
            continue
        cur_entry = current.get(name)
        if cur_entry is None:
            if "/blocks:" in name:
                failures.append(
                    f"{name}: sweep point missing from the current run — the bench did "
                    f"not emit this population scale (shrunken sweep or aborted run), so "
                    f"the flatness gate has no data for it")
            else:
                failures.append(
                    f"{name}: present in baseline but missing from the current run")
            continue
        cur_counters = counters(cur_entry)
        for key in sorted(set(cur_counters) - set(base_counters)):
            failures.append(
                f"{name}: missing baseline key {key} (counter exists in the current run "
                f"but not in the baseline; run scripts/update_bench_baseline.sh)")
        for key, base_value in sorted(base_counters.items()):
            if key not in cur_counters:
                failures.append(f"{name}: counter {key} missing from the current run")
                continue
            cur_value = cur_counters[key]
            compared += 1
            if base_value == 0.0:
                drift = abs(cur_value)
                ok = drift <= ZERO_TOLERANCE
            else:
                drift = abs(cur_value - base_value) / abs(base_value)
                ok = drift <= TOLERANCE
            status = "ok" if ok else "REGRESSION"
            print(f"{status:>10}  {name} {key}: baseline={base_value:g} "
                  f"current={cur_value:g} drift={drift:.1%}")
            if not ok:
                failures.append(
                    f"{name}: {key} drifted {drift:.1%} (baseline {base_value:g}, "
                    f"current {cur_value:g}, tolerance {TOLERANCE:.0%})")

    for name in sorted(set(current) - set(baseline)):
        if counters(current[name]):
            failures.append(
                f"{name}: missing baseline key (benchmark has counters but no baseline "
                f"entry; run scripts/update_bench_baseline.sh)")
            print(f"   MISSING  {name} (counters present but no baseline entry)")

    print(f"\n{compared} counters compared against {argv[1]}")
    if failures:
        print(f"{len(failures)} failure(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("no counter regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
