#!/usr/bin/env python3
"""dpack-lint: static determinism & concurrency rules the differential suites can only sample.

The engine-matrix tests prove byte-identical grants for the interleavings and hash orders a
run happens to explore; these rules reject the *sources* of nondeterminism at review time,
on every line of the scheduling paths. Rules (scoped to the grant-ordering directories
src/core, src/block, and src/service unless noted):

  raw-mutex                (all of src/, tests/, bench/, examples/) std::mutex,
                           std::condition_variable, std::lock_guard, std::unique_lock &
                           friends are banned everywhere except
                           src/common/thread_annotations.h — every lock must go through the
                           annotated Mutex/MutexLock/CondVar wrappers so clang's
                           -Wthread-safety analysis sees it.
  raw-affinity             (all of src/, tests/, bench/, examples/) raw affinity syscalls —
                           pthread_setaffinity_np/pthread_getaffinity_np and
                           sched_setaffinity/sched_getaffinity — are banned everywhere
                           except src/common/cpu_affinity.{h,cc}: pinning must go through
                           PinCurrentThreadToCore/AllowedCores so the cpuset-aware fallback
                           (and its pin_failures accounting) cannot be bypassed.
  unordered-iteration      Iterating an unordered container on a grant-ordering path:
                           iteration order is hash-seed/pointer dependent, so any grant
                           decision derived from it differs run to run. Lookups are fine;
                           iteration is not.
  unordered-member         Any unordered_map/unordered_set declaration in scope must carry
                           an explicit justification:
                             // dpack-lint: allow(unordered-member): lookup-only — <why>
                           which is the reviewed proof that no iteration order escapes.
  nondeterministic-source  rand()/srand/std::random_device (unseeded randomness),
                           time()/clock()/*_clock::now() (wall clock) in engine code. The
                           blessed randomness source is src/common/rng.h (seeded, logged);
                           wall-clock reads are allowed only for metrics with an allow
                           annotation.
  pointer-keyed-order      Containers ordered or hashed by pointer keys (std::map<T*, ...>,
                           std::set<T*>, std::hash<T*>): address-dependent order leaks ASLR
                           into grant decisions.
  float-equality           (grant-ordering dirs + src/workload) Bare ==/!= on budget
                           quantities (demand/budget/consumed/unlocked/capacity/eps).
                           Budget feasibility must go through the blessed tolerance helpers
                           (PrivacyBlock::CanAccept/CanCharge and their 1e-9*(1+cap)
                           slack); exact float equality is a representation-dependent trap.
                           src/workload is in scope because trace readers compare reparsed
                           doubles against grid values — those must compare bit patterns
                           (BitsOfDouble), not float ==, or a text roundtrip silently
                           accepts a neighboring grid. Ordering comparators on scores
                           use </> tie-breaks and are out of scope by construction.

Suppression: `// dpack-lint: allow(<rule>): <reason>` on the offending line or the line
above. The reason is mandatory — an allow is a reviewed claim, not an escape hatch.

Exit status: 0 clean, 1 findings, 2 usage/tool error.

Usage:
  dpack_lint.py --root REPO                 lint the tree (the CI gate)
  dpack_lint.py --root REPO --fixture F --as src/core/f.cc
                                            lint one file as if at the given repo path
                                            (the tests/lint fixture self-test)
  dpack_lint.py --root REPO --clang-query -p BUILD_DIR
                                            additionally run the clang-query AST matchers
                                            (needs clang-query + compile_commands.json)
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

# Directories whose code decides or orders grants: hash-order and clock nondeterminism
# here changes the grant sequence, which the whole reproduction pins byte-for-byte.
# src/service is in scope because the daemon's merge and the workers' scoring replicas are
# grant-ordering code too — a hash-order or wall-clock leak there breaks the multi-process
# grant-equivalence proof the same way it would in-process (deadlines in the service are
# iteration budgets, not clocks, precisely so this rule can hold there).
GRANT_ORDERING_DIRS = ("src/core", "src/block", "src/service")
# float-equality reaches further: trace I/O reparses budget doubles from text, where a bare
# == against a grid value is the same representation trap (the other grant-ordering rules
# stay scoped — workload generation may iterate its own maps without ordering grants).
FLOAT_EQ_DIRS = GRANT_ORDERING_DIRS + ("src/workload",)
# raw-mutex applies everywhere C++ lives; the annotations header is the one sanctioned home.
ALL_CODE_DIRS = ("src", "tests", "bench", "examples")
THREAD_ANNOTATIONS_HEADER = "src/common/thread_annotations.h"
# raw-affinity likewise: the helper pair is the one sanctioned home for affinity syscalls.
CPU_AFFINITY_SOURCES = ("src/common/cpu_affinity.h", "src/common/cpu_affinity.cc")

ALLOW_RE = re.compile(r"//\s*dpack-lint:\s*allow\(([a-z-]+)\)\s*:\s*\S")

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_mutex|"
    r"shared_timed_mutex|condition_variable|condition_variable_any|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock)\b")
RAW_AFFINITY_RE = re.compile(
    r"\b(pthread_[gs]etaffinity_np|sched_[gs]etaffinity)\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"\bstd::(unordered_map|unordered_set|unordered_multimap|unordered_multiset)\s*<")
# A (member) declaration we can harvest a variable name from:
#   std::unordered_map<K, V> name_;   std::unordered_set<T> name;
UNORDERED_NAME_RE = re.compile(
    r"\bstd::unordered_(?:multi)?(?:map|set)\s*<[^;{]*>\s+(\w+)\s*[;={]")
NONDET_RES = (
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand() (use src/common/rng.h)"),
    (re.compile(r"\bstd::rand\b|\bstd::srand\b"), "std::rand/std::srand (use src/common/rng.h)"),
    (re.compile(r"\brandom_device\b"), "std::random_device (unseeded entropy)"),
    (re.compile(r"\b\w*_clock::now\b"), "wall-clock read"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|0|NULL)\s*\)"), "time()"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock()"),
)
POINTER_KEY_RES = (
    (re.compile(r"\bstd::(map|set|multimap|multiset)\s*<[^,>]*\*"), "pointer-ordered container"),
    (re.compile(r"\bstd::hash\s*<[^>]*\*"), "pointer hash"),
    (re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\s*<[^,>]*\*"),
     "pointer-keyed unordered container"),
)
# Budget quantities whose comparisons must go through the tolerance helpers.
BUDGET_TOKEN = r"(?:demand|budget|consumed|unlocked|capacity|eps_g|epsilon|remaining)"
FLOAT_EQ_RE = re.compile(
    r"(?:[\w.\]\)]*" + BUDGET_TOKEN + r"[\w.\[\(\]\)]*\s*(?:==|!=)\s*[^=;]"
    r"|[^=!<>;]\s*(?:==|!=)\s*[\w.\(]*" + BUDGET_TOKEN + r")")
# Comparison shapes float-equality must ignore: iterator/lookup results, null checks,
# size_t bookkeeping through .size()/.capacity()/.count(), and scoped-enum dispatch against
# a Type::kConstant (e.g. spec.demand == DemandDistribution::kZipfEpsMin) — none of them
# are budget doubles.
FLOAT_EQ_BLANK_RES = (
    re.compile(r"[\w.\->]*(?:\.|->)c?(?:end|begin|find|count|size|capacity)\s*\([^)]*\)"),
    re.compile(r"(?:==|!=)\s*nullptr|nullptr\s*(?:==|!=)"),
    re.compile(r"(?:==|!=)\s*\w+(?:::\w+)*::k\w+|\w+(?:::\w+)*::k\w+\s*(?:==|!=)"),
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([^)]+)\)")
# Iterator walks need a begin(); a bare end() is the find()-sentinel lookup idiom.
ITER_BEGIN_RE = re.compile(r"(\w+)\s*(?:\.|->)\s*c?r?begin\s*\(")

# clang-query AST matchers: the precise, type-resolved versions of the source rules. Run
# opportunistically (--clang-query) over compile_commands.json; the source rules above are
# the deterministic gate, these catch what text-level matching cannot (typedefs, auto).
CLANG_QUERY_MATCHERS = [
    ("unordered-iteration",
     'match cxxForRangeStmt(hasRangeInit(expr(hasType(qualType(hasDeclaration(namedDecl('
     'matchesName("unordered_(map|set)"))))))))'),
    ("raw-mutex",
     'match varDecl(hasType(qualType(hasDeclaration(namedDecl(hasAnyName('
     '"std::mutex", "std::condition_variable"))))))'),
]


def strip_code(text):
    """Blanks comments and string/char literal bodies, preserving line structure."""
    out = []
    i = 0
    n = len(text)
    state = None  # None | 'line' | 'block' | 'str' | 'chr' | 'raw'
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
            elif c == "R" and nxt == '"':
                close = text.find("(", i + 2)
                if close == -1:
                    out.append(c)
                    i += 1
                    continue
                raw_delim = ")" + text[i + 2:close] + '"'
                state = "raw"
                out.append(" " * (close + 1 - i))
                i = close + 1
            elif c == '"':
                state = "str"
                out.append(c)
                i += 1
            elif c == "'":
                state = "chr"
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = None
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = None
                out.append(c)
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed(raw_lines, lineno, rule):
    """True when line `lineno` (1-based) or the line above carries an allow for `rule`."""
    for ln in (lineno, lineno - 1):
        if 1 <= ln <= len(raw_lines):
            m = ALLOW_RE.search(raw_lines[ln - 1])
            if m and m.group(1) == rule:
                return True
    return False


def in_scope(rel, dirs):
    rel = rel.replace(os.sep, "/")
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


def lint_file(rel, text):
    findings = []
    raw_lines = text.splitlines()
    stripped = strip_code(text)
    lines = stripped.splitlines()
    rel_posix = rel.replace(os.sep, "/")

    def add(lineno, rule, message):
        if not allowed(raw_lines, lineno, rule):
            findings.append(Finding(rel_posix, lineno, rule, message))

    # raw-mutex: everywhere except the annotations header itself.
    if in_scope(rel_posix, ALL_CODE_DIRS) and rel_posix != THREAD_ANNOTATIONS_HEADER:
        for idx, line in enumerate(lines, 1):
            m = RAW_MUTEX_RE.search(line)
            if m:
                add(idx, "raw-mutex",
                    f"std::{m.group(1)} outside {THREAD_ANNOTATIONS_HEADER}; use the "
                    f"annotated Mutex/MutexLock/CondVar wrappers so -Wthread-safety "
                    f"checks the lock discipline")

    # raw-affinity: everywhere except the cpu_affinity helper pair itself.
    if in_scope(rel_posix, ALL_CODE_DIRS) and rel_posix not in CPU_AFFINITY_SOURCES:
        for idx, line in enumerate(lines, 1):
            m = RAW_AFFINITY_RE.search(line)
            if m:
                add(idx, "raw-affinity",
                    f"{m.group(1)} outside src/common/cpu_affinity.*; use "
                    f"PinCurrentThreadToCore/AllowedCores so the cpuset-aware fallback "
                    f"and pin_failures accounting apply")

    in_grant_scope = in_scope(rel_posix, GRANT_ORDERING_DIRS)
    in_float_eq_scope = in_scope(rel_posix, FLOAT_EQ_DIRS)
    if not in_grant_scope and not in_float_eq_scope:
        return findings

    if in_grant_scope:
        # Harvest unordered-declared names for the iteration rule, and enforce the
        # justification annotation on every unordered declaration.
        unordered_names = set()
        for idx, line in enumerate(lines, 1):
            m = UNORDERED_NAME_RE.search(line)
            if m:
                unordered_names.add(m.group(1))
            if UNORDERED_DECL_RE.search(line):
                if not allowed(raw_lines, idx, "unordered-member"):
                    findings.append(Finding(
                        rel_posix, idx, "unordered-member",
                        "unordered container in grant-ordering code needs a reviewed "
                        "justification: '// dpack-lint: allow(unordered-member): "
                        "lookup-only — <why no iteration order escapes>'"))

        # unordered-iteration: range-for or begin()/end() over a name declared unordered in
        # this file (declaration-local heuristic; the clang-query matcher is the
        # type-resolved version).
        for idx, line in enumerate(lines, 1):
            m = RANGE_FOR_RE.search(line)
            if m:
                range_expr = m.group(1)
                for name in unordered_names:
                    if re.search(r"\b" + re.escape(name) + r"\b", range_expr):
                        add(idx, "unordered-iteration",
                            f"iteration over unordered container '{name}' on a "
                            f"grant-ordering path: hash order is seed/pointer dependent "
                            f"and would leak into the grant sequence")
            m = ITER_BEGIN_RE.search(line)
            if m and m.group(1) in unordered_names:
                add(idx, "unordered-iteration",
                    f"iterator walk over unordered container '{m.group(1)}' on a "
                    f"grant-ordering path")

    for idx, line in enumerate(lines, 1):
        if in_grant_scope:
            for pattern, what in NONDET_RES:
                if pattern.search(line):
                    add(idx, "nondeterministic-source",
                        f"{what} in engine code; grant paths must be pure functions of "
                        f"(workload, seed, block state)")
            for pattern, what in POINTER_KEY_RES:
                if pattern.search(line):
                    add(idx, "pointer-keyed-order",
                        f"{what}: address-dependent order leaks ASLR into grant decisions")
        if in_float_eq_scope:
            eq_line = line
            for blank in FLOAT_EQ_BLANK_RES:
                eq_line = blank.sub(" ", eq_line)
            if FLOAT_EQ_RE.search(eq_line):
                add(idx, "float-equality",
                    "bare ==/!= on a budget quantity; use the blessed tolerance helpers "
                    "(PrivacyBlock::CanAccept/CanCharge, 1e-9*(1+cap) slack), bit-pattern "
                    "comparison (BitsOfDouble) for exact-roundtrip checks, or an ordered "
                    "</> comparison")

    return findings


def iter_tree(root):
    for base in ALL_CODE_DIRS:
        top = os.path.join(root, base)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(d for d in dirnames if d != "fixtures")
            for name in sorted(filenames):
                if name.endswith((".cc", ".h", ".cpp", ".hpp")):
                    yield os.path.join(dirpath, name)


def run_clang_query(root, build_dir):
    """Runs the AST matchers over every translation unit in compile_commands.json."""
    binary = shutil.which("clang-query")
    if binary is None:
        print("dpack-lint: clang-query not on PATH", file=sys.stderr)
        return None
    sources = [p for p in iter_tree(root)
               if p.endswith(".cc") and in_scope(os.path.relpath(p, root), ("src",))]
    with tempfile.NamedTemporaryFile("w", suffix=".cq", delete=False) as fh:
        fh.write("set bind-root true\n")
        for _, matcher in CLANG_QUERY_MATCHERS:
            fh.write(matcher + "\n")
        script = fh.name
    try:
        proc = subprocess.run(
            [binary, "-p", build_dir, "-f", script] + sources,
            capture_output=True, text=True)
    finally:
        os.unlink(script)
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        return None
    hits = []
    for line in proc.stdout.splitlines():
        # Matches print as "<path>:<line>:<col>: note: "root" binds here".
        m = re.match(r"(.+?):(\d+):\d+: note:", line)
        if m and THREAD_ANNOTATIONS_HEADER not in m.group(1):
            hits.append(Finding(os.path.relpath(m.group(1), root), int(m.group(2)),
                                "clang-query", "AST matcher hit (see rule list)"))
    return hits


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", required=True, help="repository root")
    parser.add_argument("--fixture", help="lint a single file instead of the tree")
    parser.add_argument("--as", dest="treat_as",
                        help="repo-relative path the fixture is linted as")
    parser.add_argument("--clang-query", action="store_true",
                        help="additionally run the clang-query AST matchers")
    parser.add_argument("-p", dest="build_dir", default="build",
                        help="compile_commands.json directory for --clang-query")
    args = parser.parse_args(argv[1:])

    findings = []
    if args.fixture:
        if not args.treat_as:
            parser.error("--fixture requires --as")
        with open(args.fixture) as fh:
            findings.extend(lint_file(args.treat_as, fh.read()))
    else:
        for path in iter_tree(args.root):
            rel = os.path.relpath(path, args.root)
            with open(path) as fh:
                findings.extend(lint_file(rel, fh.read()))
        if args.clang_query:
            hits = run_clang_query(args.root, args.build_dir)
            if hits is None:
                return 2
            findings.extend(hits)

    for finding in findings:
        print(finding)
    if findings:
        print(f"dpack-lint: {len(findings)} finding(s)")
        return 1
    print("dpack-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
