#!/usr/bin/env bash
# Regenerates bench/baseline.json — the steady-state engine-counter baseline that CI's
# bench-artifacts job gates against (scripts/check_bench_regression.py).
#
# Run from the repository root after an intentional change to the engines' work counters:
#   ./scripts/update_bench_baseline.sh [build-dir]
#
# The baseline stores only deterministic work counters (reuse/rescore/refresh per cycle),
# never wall time, so it can be generated on any machine. CI runs the same commands
# (micro_scheduler filtered to the Steady benchmarks, fig5 at --quick scale); keep those in
# sync with .github/workflows/ci.yml if you change them here.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="bench/baseline.json"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

cmake --build "${BUILD_DIR}" \
  --target bench_micro_scheduler bench_fig5_scalability bench_fig10_scenarios \
  bench_fig11_block_scale bench_fig12_service -j"$(nproc)"

"./${BUILD_DIR}/bench_micro_scheduler" \
  --benchmark_filter=Steady \
  --benchmark_format=json \
  --benchmark_out="${TMP_DIR}/micro_scheduler.json" \
  --benchmark_out_format=json > /dev/null

"./${BUILD_DIR}/bench_fig5_scalability" --quick --json "${TMP_DIR}/fig5_counters.json" \
  > /dev/null

"./${BUILD_DIR}/bench_fig10_scenarios" --json "${TMP_DIR}/fig10_counters.json" > /dev/null

# fig11 exits non-zero if its counters are not flat across the population sweep — a
# baseline must never be regenerated over a broken O(changed) invariant.
"./${BUILD_DIR}/bench_fig11_block_scale" --json "${TMP_DIR}/fig11_counters.json" \
  > /dev/null

# fig12 exits non-zero unless every fleet/crash leg's grant trace matches the in-process
# engine — a baseline must never be regenerated over a diverging service.
"./${BUILD_DIR}/bench_fig12_service" --json "${TMP_DIR}/fig12_counters.json" > /dev/null

python3 - "${TMP_DIR}/micro_scheduler.json" "${TMP_DIR}/fig5_counters.json" \
  "${TMP_DIR}/fig10_counters.json" "${TMP_DIR}/fig11_counters.json" \
  "${TMP_DIR}/fig12_counters.json" "${OUT}" <<'EOF'
import json
import sys

merged = []
for path in sys.argv[1:-1]:
    with open(path) as fh:
        data = json.load(fh)
    for entry in data.get("benchmarks", []):
        # Keep only the identity and the deterministic counters; drop timing fields so the
        # checked-in baseline never churns from machine noise.
        kept = {"name": entry["name"]}
        for key, value in entry.items():
            if isinstance(value, (int, float)) and (
                    "per_cycle" in key or key in ("full_recomputes", "merge_allocs",
                                                  "ring_retries", "pin_failures")):
                kept[key] = value
        if len(kept) > 1:
            merged.append(kept)

with open(sys.argv[-1], "w") as fh:
    json.dump({"benchmarks": merged}, fh, indent=2, sort_keys=True)
    fh.write("\n")
print(f"wrote {len(merged)} benchmark baselines to {sys.argv[-1]}")
EOF
