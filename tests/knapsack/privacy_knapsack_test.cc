#include "src/knapsack/privacy_knapsack.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace dpack {
namespace {

// A 2-block, 2-order instance mirroring Fig. 3: only one order per block needs to fit.
TEST(PrivacyKnapsackTest, ExistsAlphaSemanticFig3) {
  PkInstance instance;
  instance.num_blocks = 2;
  instance.num_orders = 2;
  instance.capacity = {1.0, 1.0,   // Block 0: c at alpha1, alpha2.
                       1.0, 1.0};  // Block 1.
  // Four cheap tasks on block 0 that fit at alpha1 only (0.25 each at alpha1, 1.5 at
  // alpha2), plus a task that fits nowhere once they run.
  for (int i = 0; i < 4; ++i) {
    instance.tasks.push_back({1.0, {0}, {0.25, 1.5}});
  }
  // Two cheap tasks on block 1 fitting at alpha2 only.
  instance.tasks.push_back({1.0, {1}, {1.5, 0.5}});
  instance.tasks.push_back({1.0, {1}, {1.5, 0.5}});

  PkResult result = SolvePrivacyKnapsackExact(instance);
  EXPECT_TRUE(result.optimal);
  // All six fit: block 0 within budget at alpha1 (4 x 0.25 = 1.0), block 1 at alpha2 (1.0).
  EXPECT_DOUBLE_EQ(result.total_weight, 6.0);
}

TEST(PrivacyKnapsackTest, RespectsAllBlocksOfATask) {
  PkInstance instance;
  instance.num_blocks = 2;
  instance.num_orders = 1;
  instance.capacity = {1.0, 0.5};
  instance.tasks.push_back({5.0, {0, 1}, {0.8}});  // Needs 0.8 on both; block 1 only has 0.5.
  instance.tasks.push_back({1.0, {0}, {1.0}});
  PkResult result = SolvePrivacyKnapsackExact(instance);
  EXPECT_TRUE(result.optimal);
  EXPECT_DOUBLE_EQ(result.total_weight, 1.0);
  EXPECT_EQ(result.selected, (std::vector<size_t>{1}));
}

TEST(PrivacyKnapsackTest, ZeroCapacityOrdersAreUnusable) {
  PkInstance instance;
  instance.num_blocks = 1;
  instance.num_orders = 2;
  instance.capacity = {0.0, 1.0};
  // Zero demand at the zero-capacity order does not make a task feasible there.
  instance.tasks.push_back({1.0, {0}, {0.0, 2.0}});
  PkResult result = SolvePrivacyKnapsackExact(instance);
  EXPECT_TRUE(result.optimal);
  EXPECT_DOUBLE_EQ(result.total_weight, 0.0);
}

TEST(PrivacyKnapsackTest, WeightedPrefersHeavyTask) {
  PkInstance instance;
  instance.num_blocks = 1;
  instance.num_orders = 1;
  instance.capacity = {1.0};
  instance.tasks.push_back({10.0, {0}, {1.0}});
  instance.tasks.push_back({1.0, {0}, {0.5}});
  instance.tasks.push_back({1.0, {0}, {0.5}});
  PkResult result = SolvePrivacyKnapsackExact(instance);
  EXPECT_TRUE(result.optimal);
  EXPECT_DOUBLE_EQ(result.total_weight, 10.0);
}

TEST(PrivacyKnapsackTest, EmptyInstance) {
  PkInstance instance;
  instance.num_blocks = 1;
  instance.num_orders = 1;
  instance.capacity = {1.0};
  PkResult result = SolvePrivacyKnapsackExact(instance);
  EXPECT_TRUE(result.optimal);
  EXPECT_DOUBLE_EQ(result.total_weight, 0.0);
}

TEST(PrivacyKnapsackTest, NodeBudgetReportsNonOptimal) {
  // A deliberately hard instance (anti-correlated weights/demands across 3 blocks) with a
  // 1-node budget must stop early and flag it.
  Rng rng(7);
  PkInstance instance;
  instance.num_blocks = 3;
  instance.num_orders = 2;
  instance.capacity.assign(6, 10.0);
  for (int i = 0; i < 40; ++i) {
    PkTask task;
    task.weight = rng.Uniform(0.5, 2.0);
    task.blocks = {0, 1, 2};
    task.demand = {rng.Uniform(0.1, 2.0), rng.Uniform(0.1, 2.0)};
    instance.tasks.push_back(std::move(task));
  }
  PkOptions options;
  options.max_nodes = 1;
  PkResult result = SolvePrivacyKnapsackExact(instance, options);
  EXPECT_FALSE(result.optimal);
  EXPECT_GT(result.total_weight, 0.0);  // Greedy incumbent still returned.
}

// ---------------------------------------------------------------------------
// Property tests: branch-and-bound equals brute force on random instances, and the greedy
// incumbent is never better than the returned solution.
// ---------------------------------------------------------------------------

class PkPropertyTest : public testing::TestWithParam<uint64_t> {};

PkInstance RandomInstance(Rng& rng, size_t num_tasks, size_t num_blocks, size_t num_orders) {
  PkInstance instance;
  instance.num_blocks = num_blocks;
  instance.num_orders = num_orders;
  instance.capacity.resize(num_blocks * num_orders);
  for (double& c : instance.capacity) {
    // Some orders unusable (zero capacity) to exercise the filter semantics.
    c = rng.Bernoulli(0.2) ? 0.0 : rng.Uniform(0.5, 3.0);
  }
  for (size_t i = 0; i < num_tasks; ++i) {
    PkTask task;
    task.weight = rng.Bernoulli(0.5) ? 1.0 : rng.Uniform(0.5, 5.0);
    size_t k = static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(num_blocks)));
    std::vector<size_t> blocks = rng.SampleWithoutReplacement(num_blocks, k);
    task.blocks = blocks;
    task.demand.resize(num_orders);
    for (double& d : task.demand) {
      d = rng.Uniform(0.0, 1.5);
    }
    instance.tasks.push_back(std::move(task));
  }
  return instance;
}

TEST_P(PkPropertyTest, BranchAndBoundMatchesBruteForce) {
  Rng rng(GetParam());
  PkInstance instance = RandomInstance(rng, 12, 3, 3);
  PkResult exact = SolvePrivacyKnapsackExact(instance);
  PkResult brute = SolvePrivacyKnapsackBruteForce(instance);
  ASSERT_TRUE(exact.optimal);
  EXPECT_NEAR(exact.total_weight, brute.total_weight, 1e-9);
}

TEST_P(PkPropertyTest, SelectedSetIsFeasible) {
  Rng rng(GetParam() + 500);
  PkInstance instance = RandomInstance(rng, 14, 2, 4);
  PkResult result = SolvePrivacyKnapsackExact(instance);
  // Recompute feasibility of the returned set from scratch.
  std::vector<double> consumed(instance.num_blocks * instance.num_orders, 0.0);
  std::vector<bool> touched(instance.num_blocks, false);
  double weight = 0.0;
  for (size_t i : result.selected) {
    weight += instance.tasks[i].weight;
    for (size_t j : instance.tasks[i].blocks) {
      touched[j] = true;
      for (size_t a = 0; a < instance.num_orders; ++a) {
        consumed[j * instance.num_orders + a] += instance.tasks[i].demand[a];
      }
    }
  }
  EXPECT_NEAR(weight, result.total_weight, 1e-9);
  for (size_t j = 0; j < instance.num_blocks; ++j) {
    if (!touched[j]) {
      continue;
    }
    bool ok = false;
    for (size_t a = 0; a < instance.num_orders; ++a) {
      if (instance.CapacityAt(j, a) > 0.0 &&
          consumed[j * instance.num_orders + a] <= instance.CapacityAt(j, a) + 1e-12) {
        ok = true;
      }
    }
    EXPECT_TRUE(ok) << "block " << j << " infeasible at every order";
  }
}

TEST_P(PkPropertyTest, SingleBlockUniformFastPathMatchesBruteForce) {
  Rng rng(GetParam() + 900);
  PkInstance instance = RandomInstance(rng, 14, 1, 4);
  for (auto& task : instance.tasks) {
    task.weight = 1.0;
  }
  PkResult fast = SolvePrivacyKnapsackExact(instance);
  PkResult brute = SolvePrivacyKnapsackBruteForce(instance);
  ASSERT_TRUE(fast.optimal);
  EXPECT_NEAR(fast.total_weight, brute.total_weight, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PkPropertyTest, testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace dpack
