#include "src/knapsack/single_dim.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace dpack {
namespace {

double SelectedDemand(const KnapsackSolution& sol, std::span<const KnapsackItem> items) {
  double total = 0.0;
  for (size_t i : sol.selected) {
    total += items[i].demand;
  }
  return total;
}

double SelectedProfit(const KnapsackSolution& sol, std::span<const KnapsackItem> items) {
  double total = 0.0;
  for (size_t i : sol.selected) {
    total += items[i].profit;
  }
  return total;
}

TEST(MaxCardinalityTest, PacksSmallestDemandsFirst) {
  std::vector<KnapsackItem> items = {{1.0, 5.0}, {1.0, 1.0}, {1.0, 3.0}, {1.0, 2.0}};
  KnapsackSolution sol = MaxCardinalityKnapsack(items, 6.0);
  EXPECT_DOUBLE_EQ(sol.total_profit, 3.0);  // 1 + 2 + 3 fit; 5 does not.
  EXPECT_EQ(sol.selected, (std::vector<size_t>{1, 2, 3}));
}

TEST(MaxCardinalityTest, ZeroCapacityOnlyZeroDemands) {
  std::vector<KnapsackItem> items = {{1.0, 0.0}, {1.0, 0.1}};
  KnapsackSolution sol = MaxCardinalityKnapsack(items, 0.0);
  EXPECT_EQ(sol.selected, (std::vector<size_t>{0}));
}

TEST(MaxCardinalityTest, EmptyInput) {
  std::vector<KnapsackItem> items;
  KnapsackSolution sol = MaxCardinalityKnapsack(items, 10.0);
  EXPECT_TRUE(sol.selected.empty());
  EXPECT_DOUBLE_EQ(sol.total_profit, 0.0);
}

TEST(GreedyDensityTest, PrefersDenserItems) {
  std::vector<KnapsackItem> items = {{10.0, 10.0}, {9.0, 3.0}, {8.0, 3.0}};
  KnapsackSolution sol = GreedyDensityKnapsack(items, 10.0);
  // Density order: item1 (3), item2 (2.67), item0 (1). Greedy packs 1, 2 (demand 6), cannot
  // fit 0. Profit 17 beats best single (10).
  EXPECT_DOUBLE_EQ(sol.total_profit, 17.0);
}

TEST(GreedyDensityTest, BestSingleItemFixesGreedyTrap) {
  // Classic greedy trap: one dense small item blocks a big profitable one.
  std::vector<KnapsackItem> items = {{2.0, 1.0}, {100.0, 100.0}};
  KnapsackSolution sol = GreedyDensityKnapsack(items, 100.0);
  EXPECT_DOUBLE_EQ(sol.total_profit, 100.0);  // Single big item, not greedy's 2.
}

TEST(GreedyDensityTest, ZeroDemandItemsAlwaysPacked) {
  std::vector<KnapsackItem> items = {{5.0, 0.0}, {1.0, 2.0}};
  KnapsackSolution sol = GreedyDensityKnapsack(items, 1.0);
  EXPECT_DOUBLE_EQ(sol.total_profit, 5.0);
}

TEST(FractionalBoundTest, UpperBoundsExact) {
  std::vector<KnapsackItem> items = {{6.0, 4.0}, {5.0, 3.0}, {4.0, 3.0}};
  double bound = FractionalKnapsackBound(items, 6.0);
  KnapsackSolution exact = ExactKnapsack(items, 6.0);
  EXPECT_GE(bound, exact.total_profit - 1e-12);
}

TEST(ExactKnapsackTest, SolvesTextbookInstance) {
  std::vector<KnapsackItem> items = {{60.0, 10.0}, {100.0, 20.0}, {120.0, 30.0}};
  KnapsackSolution sol = ExactKnapsack(items, 50.0);
  EXPECT_DOUBLE_EQ(sol.total_profit, 220.0);
  EXPECT_EQ(sol.selected, (std::vector<size_t>{1, 2}));
}

TEST(FptasKnapsackTest, NearOptimalOnTextbookInstance) {
  std::vector<KnapsackItem> items = {{60.0, 10.0}, {100.0, 20.0}, {120.0, 30.0}};
  KnapsackSolution sol = FptasKnapsack(items, 50.0, 0.01);
  EXPECT_GE(sol.total_profit, 220.0 / 1.01 - 1e-9);
  EXPECT_LE(SelectedDemand(sol, items), 50.0 + 1e-12);
}

TEST(FptasKnapsackTest, FallsBackToGreedyWhenStateCapHit) {
  std::vector<KnapsackItem> items = {{60.0, 10.0}, {100.0, 20.0}, {120.0, 30.0}};
  KnapsackSolution sol = FptasKnapsack(items, 50.0, 0.01, /*max_states=*/4);
  // Greedy fallback is still a 1/2-approximation.
  EXPECT_GE(sol.total_profit, 110.0);
}

TEST(FptasKnapsackTest, NothingFits) {
  std::vector<KnapsackItem> items = {{5.0, 10.0}};
  KnapsackSolution sol = FptasKnapsack(items, 1.0, 0.1);
  EXPECT_TRUE(sol.selected.empty());
}

TEST(SolveSingleBlockTest, UniformProfitsUsesExactCardinality) {
  std::vector<KnapsackItem> items = {{1.0, 4.0}, {1.0, 1.0}, {1.0, 2.0}};
  KnapsackSolution sol = SolveSingleBlock(items, 3.0, 0.1);
  EXPECT_DOUBLE_EQ(sol.total_profit, 2.0);
}

// ---------------------------------------------------------------------------
// Property tests over random instances: exact vs brute-force optimality, the greedy 1/2
// bound, and the FPTAS (1 + eta) bound.
// ---------------------------------------------------------------------------

class SingleDimPropertyTest : public testing::TestWithParam<uint64_t> {};

std::vector<KnapsackItem> RandomItems(Rng& rng, size_t n) {
  std::vector<KnapsackItem> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    items.push_back({rng.Uniform(0.1, 10.0), rng.Uniform(0.0, 5.0)});
  }
  return items;
}

double BruteForceProfit(std::span<const KnapsackItem> items, double capacity) {
  size_t n = items.size();
  double best = 0.0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    double demand = 0.0;
    double profit = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        demand += items[i].demand;
        profit += items[i].profit;
      }
    }
    if (demand <= capacity) {
      best = std::max(best, profit);
    }
  }
  return best;
}

TEST_P(SingleDimPropertyTest, ExactMatchesBruteForce) {
  Rng rng(GetParam());
  std::vector<KnapsackItem> items = RandomItems(rng, 12);
  double capacity = rng.Uniform(1.0, 20.0);
  KnapsackSolution sol = ExactKnapsack(items, capacity);
  EXPECT_NEAR(sol.total_profit, BruteForceProfit(items, capacity), 1e-9);
  EXPECT_LE(SelectedDemand(sol, items), capacity + 1e-9);
  EXPECT_NEAR(SelectedProfit(sol, items), sol.total_profit, 1e-9);
}

TEST_P(SingleDimPropertyTest, GreedyIsHalfApproximation) {
  Rng rng(GetParam() + 1000);
  std::vector<KnapsackItem> items = RandomItems(rng, 14);
  double capacity = rng.Uniform(1.0, 20.0);
  double opt = BruteForceProfit(items, capacity);
  KnapsackSolution greedy = GreedyDensityKnapsack(items, capacity);
  EXPECT_GE(greedy.total_profit, 0.5 * opt - 1e-9);
  EXPECT_LE(greedy.total_profit, opt + 1e-9);
  EXPECT_LE(SelectedDemand(greedy, items), capacity + 1e-9);
}

TEST_P(SingleDimPropertyTest, FptasWithinEta) {
  Rng rng(GetParam() + 2000);
  std::vector<KnapsackItem> items = RandomItems(rng, 13);
  double capacity = rng.Uniform(1.0, 20.0);
  double opt = BruteForceProfit(items, capacity);
  for (double eta : {0.5, 0.1, 0.02}) {
    KnapsackSolution sol = FptasKnapsack(items, capacity, eta);
    EXPECT_GE(sol.total_profit, opt / (1.0 + eta) - 1e-9)
        << "eta=" << eta << " opt=" << opt;
    EXPECT_LE(SelectedDemand(sol, items), capacity + 1e-9);
  }
}

TEST_P(SingleDimPropertyTest, FractionalBoundDominatesExact) {
  Rng rng(GetParam() + 3000);
  std::vector<KnapsackItem> items = RandomItems(rng, 12);
  double capacity = rng.Uniform(1.0, 20.0);
  double bound = FractionalKnapsackBound(items, capacity);
  EXPECT_GE(bound, BruteForceProfit(items, capacity) - 1e-9);
}

TEST_P(SingleDimPropertyTest, MaxCardinalityIsOptimalForUniformProfits) {
  Rng rng(GetParam() + 4000);
  std::vector<KnapsackItem> items = RandomItems(rng, 12);
  for (auto& item : items) {
    item.profit = 1.0;
  }
  double capacity = rng.Uniform(1.0, 20.0);
  KnapsackSolution sol = MaxCardinalityKnapsack(items, capacity);
  EXPECT_NEAR(sol.total_profit, BruteForceProfit(items, capacity), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleDimPropertyTest, testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace dpack
