// The "num_shards == 0 means auto" convention has exactly one definition (ResolveNumShards)
// and exactly one application point (OnlineScheduler's constructor). Pin both: the rule
// itself on every machine via the hardware_hint override, and the funnel — a driver built
// with 0 exposes the resolved count through config() and its engine's stats, so no
// downstream reader (snapshot metadata, orchestrator results) ever sees a 0.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/block/block_manager.h"
#include "src/core/online_scheduler.h"
#include "src/core/scheduler.h"
#include "src/workload/curve_pool.h"

namespace dpack {
namespace {

TEST(NumShardsResolutionTest, ExplicitRequestWinsVerbatim) {
  EXPECT_EQ(ResolveNumShards(7, 3), 7u);
  EXPECT_EQ(ResolveNumShards(1, 0), 1u);
  EXPECT_EQ(ResolveNumShards(64, 1, /*hardware_hint=*/2), 64u);
}

TEST(NumShardsResolutionTest, AutoIsHardwareCappedByKnownBlocks) {
  EXPECT_EQ(ResolveNumShards(0, 3, /*hardware_hint=*/16), 3u);   // Block-bound.
  EXPECT_EQ(ResolveNumShards(0, 100, /*hardware_hint=*/4), 4u);  // Hardware-bound.
  EXPECT_EQ(ResolveNumShards(0, 4, /*hardware_hint=*/4), 4u);    // Exact fit.
}

TEST(NumShardsResolutionTest, AutoNeverResolvesBelowOne) {
  // An empty manager (every fresh simulation: the driver is built before blocks arrive)
  // resolves to 1, exactly as an explicit 1 would — never 0.
  EXPECT_EQ(ResolveNumShards(0, 0, /*hardware_hint=*/8), 1u);
  EXPECT_EQ(ResolveNumShards(0, 1, /*hardware_hint=*/8), 1u);
  // hardware_concurrency() may report 0 ("unknown"); the rule still floors at 1.
  EXPECT_GE(ResolveNumShards(0, 5), 1u);
}

TEST(NumShardsResolutionTest, DriverConstructorIsTheResolutionPoint) {
  AlphaGridPtr grid = AlphaGrid::Default();
  BlockManager blocks(grid, /*eps_g=*/10.0, /*delta_g=*/1e-7);
  for (int b = 0; b < 3; ++b) {
    blocks.AddBlock(0.0, /*unlocked=*/true);
  }

  OnlineSchedulerConfig config;
  config.num_shards = 0;  // Auto.
  OnlineScheduler online(std::make_unique<GreedyScheduler>(GreedyMetric::kDpack), &blocks,
                         config);

  size_t resolved = online.config().num_shards;
  EXPECT_EQ(resolved, ResolveNumShards(0, blocks.block_count()));
  EXPECT_GE(resolved, 1u);
  EXPECT_LE(resolved, 3u);  // Never more shards than blocks known at construction.

  // The resolved count was actually pushed into the scheduler, not just recorded: the
  // engine's stats report the same shard count (ScheduleContext defaults to 1, the sharded
  // engines stamp theirs at construction).
  ASSERT_NE(online.context_stats(), nullptr);
  EXPECT_EQ(online.context_stats()->shards, resolved);
}

TEST(NumShardsResolutionTest, ExplicitConfigPassesThroughTheDriver) {
  AlphaGridPtr grid = AlphaGrid::Default();
  BlockManager blocks(grid, /*eps_g=*/10.0, /*delta_g=*/1e-7);
  blocks.AddBlock(0.0, /*unlocked=*/true);

  OnlineSchedulerConfig config;
  config.num_shards = 5;  // Explicit: wins even though only one block exists.
  OnlineScheduler online(std::make_unique<GreedyScheduler>(GreedyMetric::kDpack), &blocks,
                         config);
  EXPECT_EQ(online.config().num_shards, 5u);
  ASSERT_NE(online.context_stats(), nullptr);
  EXPECT_EQ(online.context_stats()->shards, 5u);
}

}  // namespace
}  // namespace dpack
