#include "src/core/compute_aware.h"

#include <gtest/gtest.h>

#include "src/block/block_manager.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

Task FractionTask(TaskId id, double fraction) {
  RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  Task t(id, 1.0, capacity.Scaled(fraction));
  t.blocks = {0};
  return t;
}

class ComputeAwareTest : public testing::Test {
 protected:
  ComputeAwareTest() : blocks_(Grid(), 10.0, 1e-7) {
    blocks_.AddBlock(0.0, /*unlocked=*/true);
  }
  BlockManager blocks_;
  ComputeDemandMap demands_;
};

TEST_F(ComputeAwareTest, NoComputeDemandsBehavesLikeInner) {
  std::vector<Task> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back(FractionTask(i, 0.15));
  }
  ComputeAwareScheduler aware(CreateScheduler(SchedulerKind::kDpack), &demands_,
                              {/*gpu_hours_per_cycle=*/10.0});
  std::vector<size_t> granted = aware.ScheduleBatch(tasks, blocks_);
  EXPECT_EQ(granted.size(), 5u);
  EXPECT_DOUBLE_EQ(aware.last_cycle_gpu_hours(), 0.0);
  EXPECT_EQ(aware.last_cycle_compute_deferred(), 0u);
}

TEST_F(ComputeAwareTest, ComputeCapDefersTasks) {
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(FractionTask(i, 0.1));
    demands_.Set(i, 4.0);  // 4 GPU-hours each; cap 10 fits only 2.
  }
  ComputeAwareScheduler aware(CreateScheduler(SchedulerKind::kDpack), &demands_,
                              {/*gpu_hours_per_cycle=*/10.0});
  std::vector<size_t> granted = aware.ScheduleBatch(tasks, blocks_);
  EXPECT_EQ(granted.size(), 2u);
  EXPECT_DOUBLE_EQ(aware.last_cycle_gpu_hours(), 8.0);
  EXPECT_EQ(aware.last_cycle_compute_deferred(), 2u);
}

TEST_F(ComputeAwareTest, DeferredTasksKeepPrivacyBudget) {
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(FractionTask(i, 0.2));
    demands_.Set(i, 6.0);  // Cap 10: only one per cycle.
  }
  ComputeAwareScheduler aware(CreateScheduler(SchedulerKind::kDpack), &demands_,
                              {/*gpu_hours_per_cycle=*/10.0});
  std::vector<size_t> first = aware.ScheduleBatch(tasks, blocks_);
  EXPECT_EQ(first.size(), 1u);
  // Budget consumed only for the single grant: 0.2 of the block.
  size_t i64 = Grid()->IndexOf(64.0);
  EXPECT_NEAR(blocks_.block(0).consumed().epsilon(i64),
              0.2 * blocks_.block(0).capacity().epsilon(i64), 1e-9);
  // The deferred tasks run over subsequent cycles.
  std::vector<size_t> second = aware.ScheduleBatch(tasks, blocks_);
  EXPECT_EQ(second.size(), 1u);
}

TEST_F(ComputeAwareTest, MixedFreeAndGpuTasks) {
  std::vector<Task> tasks;
  tasks.push_back(FractionTask(0, 0.1));  // Statistic: no GPU.
  tasks.push_back(FractionTask(1, 0.1));
  demands_.Set(1, 50.0);  // Training beyond the per-cycle cap: always deferred.
  ComputeAwareScheduler aware(CreateScheduler(SchedulerKind::kDpf), &demands_,
                              {/*gpu_hours_per_cycle=*/10.0});
  std::vector<size_t> granted = aware.ScheduleBatch(tasks, blocks_);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(tasks[granted[0]].id, 0);
  EXPECT_EQ(aware.last_cycle_compute_deferred(), 1u);
}

TEST_F(ComputeAwareTest, NameReflectsComposition) {
  ComputeAwareScheduler aware(CreateScheduler(SchedulerKind::kDpack), &demands_, {10.0});
  EXPECT_EQ(aware.name(), "DPack+compute");
}

TEST(BlockManagerCloneTest, CloneIsIndependentDeepCopy) {
  BlockManager original(Grid(), 10.0, 1e-7);
  original.AddBlock(0.0, /*unlocked=*/true);
  RdpCurve demand = BlockCapacityCurve(Grid(), 10.0, 1e-7).Scaled(0.3);
  original.block(0).Commit(demand);

  BlockManager copy = original.Clone();
  ASSERT_EQ(copy.block_count(), 1u);
  size_t i64 = Grid()->IndexOf(64.0);
  EXPECT_DOUBLE_EQ(copy.block(0).consumed().epsilon(i64),
                   original.block(0).consumed().epsilon(i64));
  // Mutating the copy leaves the original untouched.
  copy.block(0).Commit(demand);
  EXPECT_NE(copy.block(0).consumed().epsilon(i64),
            original.block(0).consumed().epsilon(i64));
}

}  // namespace
}  // namespace dpack
