#include "src/core/scheduler.h"

#include <gtest/gtest.h>

#include "src/block/block_manager.h"
#include "src/common/rng.h"
#include "src/rdp/mechanisms.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

Task CapacityFractionTask(TaskId id, std::vector<BlockId> block_ids, double fraction,
                          double weight = 1.0) {
  RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  Task t(id, weight, capacity.Scaled(fraction));
  t.blocks = std::move(block_ids);
  return t;
}

class SchedulerTest : public testing::Test {
 protected:
  SchedulerTest() : blocks_(Grid(), 10.0, 1e-7) {
    for (int b = 0; b < 2; ++b) {
      blocks_.AddBlock(0.0, /*unlocked=*/true);
    }
  }
  BlockManager blocks_;
};

TEST_F(SchedulerTest, EmptyBatchIsNoop) {
  for (SchedulerKind kind : {SchedulerKind::kDpack, SchedulerKind::kDpf, SchedulerKind::kFcfs,
                             SchedulerKind::kOptimal, SchedulerKind::kArea}) {
    std::vector<Task> none;
    EXPECT_TRUE(CreateScheduler(kind)->ScheduleBatch(none, blocks_).empty());
  }
}

TEST_F(SchedulerTest, FcfsGrantsInArrivalOrder) {
  std::vector<Task> tasks;
  Task late = CapacityFractionTask(1, {0}, 0.6);
  late.arrival_time = 5.0;
  Task early = CapacityFractionTask(2, {0}, 0.6);
  early.arrival_time = 1.0;
  tasks.push_back(late);
  tasks.push_back(early);
  GreedyScheduler fcfs(GreedyMetric::kFcfs);
  std::vector<size_t> granted = fcfs.ScheduleBatch(tasks, blocks_);
  ASSERT_EQ(granted.size(), 1u);  // 0.6 + 0.6 > 1.0 of budget: only one fits.
  EXPECT_EQ(tasks[granted[0]].id, 2);
}

TEST_F(SchedulerTest, FcfsUsesAlgOneLoopAndSkipsInfeasible) {
  // Every policy shares Alg. 1's allocation loop ("if CANRUN then run"): FCFS walks arrival
  // order and skips tasks whose filters reject, rather than blocking the queue head.
  std::vector<Task> tasks;
  Task a = CapacityFractionTask(1, {0}, 0.7);
  a.arrival_time = 0.0;
  Task b = CapacityFractionTask(2, {0}, 0.7);
  b.arrival_time = 1.0;
  Task c = CapacityFractionTask(3, {0}, 0.2);
  c.arrival_time = 2.0;
  tasks = {a, b, c};
  GreedyScheduler fcfs(GreedyMetric::kFcfs);
  std::vector<size_t> granted = fcfs.ScheduleBatch(tasks, blocks_);
  ASSERT_EQ(granted.size(), 2u);
  EXPECT_EQ(tasks[granted[0]].id, 1);
  EXPECT_EQ(tasks[granted[1]].id, 3);
}

TEST_F(SchedulerTest, FcfsNeverBlocksOnQueueHead) {
  // Pinned semantics (Alg. 1, "if CANRUN then run"): FCFS walks arrival order and *skips*
  // infeasible tasks rather than stopping at the queue head — head-of-line blocking is not
  // the implemented behavior, on either engine path. A stuck oversized head must not starve
  // feasible later arrivals on a different block.
  std::vector<Task> tasks;
  Task stuck_head = CapacityFractionTask(1, {0}, 2.0);  // Never fits.
  stuck_head.arrival_time = 0.0;
  Task later_a = CapacityFractionTask(2, {1}, 0.3);
  later_a.arrival_time = 1.0;
  Task later_b = CapacityFractionTask(3, {0}, 0.3);
  later_b.arrival_time = 2.0;
  tasks = {stuck_head, later_a, later_b};
  for (bool incremental : {true, false}) {
    BlockManager fresh(Grid(), 10.0, 1e-7);
    fresh.AddBlock(0.0, true);
    fresh.AddBlock(0.0, true);
    GreedyScheduler fcfs(GreedyMetric::kFcfs,
                         GreedySchedulerOptions{.incremental = incremental});
    std::vector<size_t> granted = fcfs.ScheduleBatch(tasks, fresh);
    ASSERT_EQ(granted.size(), 2u);
    EXPECT_EQ(tasks[granted[0]].id, 2);
    EXPECT_EQ(tasks[granted[1]].id, 3);
  }
}

TEST_F(SchedulerTest, RecomputeAndIncrementalGrantIdentically) {
  Rng rng(21);
  std::vector<Task> tasks;
  for (int i = 0; i < 40; ++i) {
    std::vector<BlockId> ids =
        rng.Bernoulli(0.4) ? std::vector<BlockId>{0, 1}
                           : std::vector<BlockId>{static_cast<BlockId>(rng.UniformInt(0, 1))};
    tasks.push_back(CapacityFractionTask(i, std::move(ids), rng.Uniform(0.05, 0.4),
                                         rng.Uniform(0.5, 3.0)));
  }
  for (GreedyMetric metric : {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea,
                              GreedyMetric::kFcfs}) {
    BlockManager a(Grid(), 10.0, 1e-7);
    BlockManager b(Grid(), 10.0, 1e-7);
    for (int j = 0; j < 2; ++j) {
      a.AddBlock(0.0, true);
      b.AddBlock(0.0, true);
    }
    GreedyScheduler incremental(metric, GreedySchedulerOptions{.incremental = true});
    GreedyScheduler recompute(metric, GreedySchedulerOptions{.incremental = false});
    EXPECT_EQ(incremental.ScheduleBatch(tasks, a), recompute.ScheduleBatch(tasks, b));
  }
}

TEST_F(SchedulerTest, WeightsSteerDpackTowardUtility) {
  // One heavy task that fills a block vs two light ones that also fill it: DPack must pick
  // the weighted side.
  std::vector<Task> tasks;
  tasks.push_back(CapacityFractionTask(1, {0}, 0.9, /*weight=*/100.0));
  tasks.push_back(CapacityFractionTask(2, {0}, 0.45, /*weight=*/1.0));
  tasks.push_back(CapacityFractionTask(3, {0}, 0.45, /*weight=*/1.0));
  GreedyScheduler dpack(GreedyMetric::kDpack);
  std::vector<size_t> granted = dpack.ScheduleBatch(tasks, blocks_);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(tasks[granted[0]].id, 1);
}

TEST_F(SchedulerTest, GrantsNeverViolateFilters) {
  // Random soup of tasks; after scheduling, every block must still certify its guarantee at
  // some order (consumed <= capacity somewhere with positive capacity).
  Rng rng(3);
  std::vector<Task> tasks;
  for (int i = 0; i < 50; ++i) {
    double fraction = rng.Uniform(0.05, 0.8);
    std::vector<BlockId> ids;
    if (rng.Bernoulli(0.5)) {
      ids = {0};
    } else if (rng.Bernoulli(0.5)) {
      ids = {1};
    } else {
      ids = {0, 1};
    }
    tasks.push_back(CapacityFractionTask(i, std::move(ids), fraction));
  }
  GreedyScheduler dpack(GreedyMetric::kDpack);
  dpack.ScheduleBatch(tasks, blocks_);
  for (BlockId j = 0; j < 2; ++j) {
    const PrivacyBlock& block = blocks_.block(j);
    bool ok = false;
    for (size_t a = 0; a < Grid()->size(); ++a) {
      if (block.capacity().epsilon(a) > 0.0 &&
          block.consumed().epsilon(a) <= block.capacity().epsilon(a) + 1e-9) {
        ok = true;
      }
    }
    EXPECT_TRUE(ok);
  }
}

TEST_F(SchedulerTest, DeterministicAcrossRuns) {
  Rng rng(9);
  std::vector<Task> tasks;
  for (int i = 0; i < 30; ++i) {
    tasks.push_back(CapacityFractionTask(i, {static_cast<BlockId>(i % 2)},
                                         rng.Uniform(0.1, 0.5)));
  }
  GreedyScheduler a(GreedyMetric::kDpack);
  GreedyScheduler b(GreedyMetric::kDpack);
  BlockManager blocks2(Grid(), 10.0, 1e-7);
  blocks2.AddBlock(0.0, true);
  blocks2.AddBlock(0.0, true);
  EXPECT_EQ(a.ScheduleBatch(tasks, blocks_), b.ScheduleBatch(tasks, blocks2));
}

TEST_F(SchedulerTest, UnresolvedTasksAreSkipped) {
  std::vector<Task> tasks;
  Task unresolved(1, 1.0, BlockCapacityCurve(Grid(), 10.0, 1e-7).Scaled(0.1));
  unresolved.num_recent_blocks = 3;  // blocks left empty.
  tasks.push_back(unresolved);
  for (SchedulerKind kind : {SchedulerKind::kDpack, SchedulerKind::kDpf, SchedulerKind::kFcfs,
                             SchedulerKind::kOptimal}) {
    BlockManager fresh(Grid(), 10.0, 1e-7);
    fresh.AddBlock(0.0, true);
    EXPECT_TRUE(CreateScheduler(kind)->ScheduleBatch(tasks, fresh).empty());
  }
}

TEST_F(SchedulerTest, OptimalNeverWorseThanGreedies) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Task> tasks;
    for (int i = 0; i < 20; ++i) {
      std::vector<BlockId> ids = rng.Bernoulli(0.3)
                                     ? std::vector<BlockId>{0, 1}
                                     : std::vector<BlockId>{static_cast<BlockId>(
                                           rng.UniformInt(0, 1))};
      tasks.push_back(CapacityFractionTask(i, std::move(ids), rng.Uniform(0.1, 0.6)));
    }
    auto run = [&](SchedulerKind kind) {
      BlockManager fresh(Grid(), 10.0, 1e-7);
      fresh.AddBlock(0.0, true);
      fresh.AddBlock(0.0, true);
      return CreateScheduler(kind)->ScheduleBatch(tasks, fresh).size();
    };
    size_t optimal = run(SchedulerKind::kOptimal);
    EXPECT_GE(optimal, run(SchedulerKind::kDpack));
    EXPECT_GE(optimal, run(SchedulerKind::kDpf));
    EXPECT_GE(optimal, run(SchedulerKind::kFcfs));
  }
}

TEST_F(SchedulerTest, SchedulerNamesAndFactory) {
  EXPECT_EQ(CreateScheduler(SchedulerKind::kDpack)->name(), "DPack");
  EXPECT_EQ(CreateScheduler(SchedulerKind::kDpf)->name(), "DPF");
  EXPECT_EQ(CreateScheduler(SchedulerKind::kArea)->name(), "Area");
  EXPECT_EQ(CreateScheduler(SchedulerKind::kFcfs)->name(), "FCFS");
  EXPECT_EQ(CreateScheduler(SchedulerKind::kOptimal)->name(), "Optimal");
  EXPECT_EQ(SchedulerKindName(SchedulerKind::kDpack), "DPack");
}

TEST_F(SchedulerTest, MechanismDemandsScheduleEndToEnd) {
  // Realistic curves, not capacity multiples: a DP-SGD training and several statistics.
  std::vector<Task> tasks;
  RdpCurve training = SubsampledGaussianCurve(Grid(), 1.0, 0.01).Repeat(500);
  Task big(0, 1.0, training);
  big.blocks = {0, 1};
  tasks.push_back(big);
  for (int i = 1; i <= 6; ++i) {
    Task stat(i, 1.0, LaplaceCurve(Grid(), 20.0));
    stat.blocks = {static_cast<BlockId>(i % 2)};
    tasks.push_back(stat);
  }
  GreedyScheduler dpack(GreedyMetric::kDpack);
  std::vector<size_t> granted = dpack.ScheduleBatch(tasks, blocks_);
  EXPECT_GT(granted.size(), 0u);
}

}  // namespace
}  // namespace dpack
