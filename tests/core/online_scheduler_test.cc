#include "src/core/online_scheduler.h"

#include <gtest/gtest.h>

#include "src/rdp/rdp_curve.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

Task FractionTask(TaskId id, double fraction, size_t recent_blocks, double arrival) {
  RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  Task t(id, 1.0, capacity.Scaled(fraction));
  t.num_recent_blocks = recent_blocks;
  t.arrival_time = arrival;
  return t;
}

class OnlineSchedulerTest : public testing::Test {
 protected:
  OnlineSchedulerTest() : blocks_(Grid(), 10.0, 1e-7) {}

  OnlineScheduler MakeOnline(int64_t unlock_steps, double period = 1.0) {
    OnlineSchedulerConfig config;
    config.period = period;
    config.unlock_steps = unlock_steps;
    return OnlineScheduler(CreateScheduler(SchedulerKind::kDpack), &blocks_, config);
  }

  BlockManager blocks_;
};

TEST_F(OnlineSchedulerTest, ResolvesMostRecentBlocksAtSubmit) {
  blocks_.AddBlock(0.0);
  blocks_.AddBlock(1.0);
  blocks_.AddBlock(2.0);
  OnlineScheduler online = MakeOnline(1);
  online.Submit(FractionTask(1, 0.1, 2, 2.0));
  EXPECT_EQ(online.pending_count(), 1u);
  size_t granted = online.RunCycle(2.0);
  EXPECT_EQ(granted, 1u);
  // The two most recent blocks (1, 2) were charged; block 0 untouched.
  EXPECT_TRUE(blocks_.block(0).consumed().IsZero());
  EXPECT_FALSE(blocks_.block(1).consumed().IsZero());
  EXPECT_FALSE(blocks_.block(2).consumed().IsZero());
}

TEST_F(OnlineSchedulerTest, DeferredResolutionWhenNoBlocksYet) {
  OnlineScheduler online = MakeOnline(1);
  online.Submit(FractionTask(1, 0.1, 1, 0.0));
  EXPECT_EQ(online.RunCycle(0.0), 0u);  // No blocks: cannot run.
  blocks_.AddBlock(1.0);
  EXPECT_EQ(online.RunCycle(1.0), 1u);  // Resolved against the new block.
}

TEST_F(OnlineSchedulerTest, UnlockingGatesGrants) {
  blocks_.AddBlock(0.0);
  OnlineScheduler online = MakeOnline(/*unlock_steps=*/10);
  // 30% of the budget needs 3 unlock steps.
  online.Submit(FractionTask(1, 0.3, 1, 0.0));
  EXPECT_EQ(online.RunCycle(0.0), 0u);  // 10% unlocked.
  EXPECT_EQ(online.RunCycle(1.0), 0u);  // 20%.
  EXPECT_EQ(online.RunCycle(2.0), 1u);  // 30%.
}

TEST_F(OnlineSchedulerTest, UnusedUnlockedBudgetCarriesOver) {
  blocks_.AddBlock(0.0);
  OnlineScheduler online = MakeOnline(/*unlock_steps=*/4);
  // Nothing pending for two cycles; then a 50% task arrives and runs immediately because
  // 2/4 of the budget is already unlocked.
  online.RunCycle(0.0);
  online.RunCycle(1.0);
  online.Submit(FractionTask(1, 0.5, 1, 1.5));
  EXPECT_EQ(online.RunCycle(2.0), 1u);  // 3 steps unlocked = 75% >= 50%.
}

TEST_F(OnlineSchedulerTest, TimeoutEvictsWaitingTasks) {
  blocks_.AddBlock(0.0);
  OnlineScheduler online = MakeOnline(/*unlock_steps=*/100);
  Task big = FractionTask(1, 0.9, 1, 0.0);
  big.timeout = 2.0;
  online.Submit(std::move(big));
  online.RunCycle(0.0);
  online.RunCycle(1.0);
  EXPECT_EQ(online.pending_count(), 1u);
  online.RunCycle(3.0);  // Waited 3 > timeout 2: evicted.
  EXPECT_EQ(online.pending_count(), 0u);
  EXPECT_EQ(online.metrics().evicted(), 1u);
  EXPECT_EQ(online.metrics().allocated(), 0u);
}

TEST_F(OnlineSchedulerTest, MetricsTrackDelaysInVirtualTime) {
  blocks_.AddBlock(0.0);
  OnlineScheduler online = MakeOnline(/*unlock_steps=*/10);
  online.Submit(FractionTask(1, 0.3, 1, 0.0));
  online.RunCycle(0.0);
  online.RunCycle(1.0);
  online.RunCycle(2.0);  // Granted here: delay 2.
  ASSERT_EQ(online.metrics().allocated(), 1u);
  EXPECT_DOUBLE_EQ(online.metrics().delays().Quantile(0.5), 2.0);
}

TEST_F(OnlineSchedulerTest, PendingTasksRetryAcrossCycles) {
  blocks_.AddBlock(0.0);
  OnlineScheduler online = MakeOnline(/*unlock_steps=*/2);
  online.Submit(FractionTask(1, 0.6, 1, 0.0));
  online.Submit(FractionTask(2, 0.6, 1, 0.0));
  EXPECT_EQ(online.RunCycle(0.0), 0u);   // 50% unlocked: neither fits.
  EXPECT_EQ(online.RunCycle(1.0), 1u);   // 100%: one fits, the other must wait forever.
  EXPECT_EQ(online.pending_count(), 1u);
  EXPECT_EQ(online.RunCycle(2.0), 0u);
  EXPECT_EQ(online.metrics().allocated(), 1u);
  EXPECT_EQ(online.metrics().submitted(), 2u);
}

TEST_F(OnlineSchedulerTest, FairShareDefaultsToUnlockSteps) {
  OnlineSchedulerConfig config;
  config.unlock_steps = 25;
  OnlineScheduler online(CreateScheduler(SchedulerKind::kDpf), &blocks_, config);
  EXPECT_EQ(online.config().fair_share_n, 25);
}

}  // namespace
}  // namespace dpack
