#include "src/core/fairness.h"

#include <gtest/gtest.h>

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

TEST(FairnessTest, SmallTaskIsFairShare) {
  BlockManager blocks(Grid(), 10.0, 1e-7);
  blocks.AddBlock(0.0, true);
  RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  Task t(1, 1.0, capacity.Scaled(1.0 / 100.0));
  t.blocks = {0};
  EXPECT_TRUE(IsFairShareTask(t, blocks, 50));   // 1/100 <= 1/50.
  EXPECT_FALSE(IsFairShareTask(t, blocks, 200)); // 1/100 > 1/200.
}

TEST(FairnessTest, BoundaryExactlyFairShare) {
  BlockManager blocks(Grid(), 10.0, 1e-7);
  blocks.AddBlock(0.0, true);
  RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  Task t(1, 1.0, capacity.Scaled(1.0 / 50.0));
  t.blocks = {0};
  EXPECT_TRUE(IsFairShareTask(t, blocks, 50));
}

TEST(FairnessTest, EveryRequestedBlockMustBeWithinShare) {
  AlphaGridPtr grid = AlphaGrid::Create({4.0, 8.0});
  BlockManager blocks(grid, 10.0, 1e-7);
  blocks.AddBlockWithCapacity(RdpCurve(grid, {10.0, 10.0}), 0.0, true);
  blocks.AddBlockWithCapacity(RdpCurve(grid, {1.0, 1.0}), 0.0, true);
  Task t(1, 1.0, RdpCurve(grid, {0.2, 0.2}));
  t.blocks = {0};
  EXPECT_TRUE(IsFairShareTask(t, blocks, 10));  // 0.2 <= 10/10.
  t.blocks = {0, 1};
  EXPECT_FALSE(IsFairShareTask(t, blocks, 10));  // 0.2 > 1/10 on block 1.
}

TEST(FairnessTest, OnlyBestOrderNeedsToBeWithinShare) {
  AlphaGridPtr grid = AlphaGrid::Create({4.0, 8.0});
  BlockManager blocks(grid, 10.0, 1e-7);
  blocks.AddBlockWithCapacity(RdpCurve(grid, {10.0, 10.0}), 0.0, true);
  Task t(1, 1.0, RdpCurve(grid, {100.0, 0.5}));  // Huge at order 0, tiny at order 1.
  t.blocks = {0};
  EXPECT_TRUE(IsFairShareTask(t, blocks, 10));  // 0.5 <= 10/10 at order 1.
}

TEST(FairnessTest, UnresolvedTaskIsNotFairShare) {
  BlockManager blocks(Grid(), 10.0, 1e-7);
  blocks.AddBlock(0.0, true);
  Task t(1, 1.0, RdpCurve(Grid()));
  EXPECT_FALSE(IsFairShareTask(t, blocks, 50));
}

}  // namespace
}  // namespace dpack
