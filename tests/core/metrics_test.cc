#include "src/core/metrics.h"

#include <gtest/gtest.h>

namespace dpack {
namespace {

TEST(AllocationMetricsTest, CountsSubmissionsAllocationsEvictions) {
  AllocationMetrics metrics;
  metrics.RecordSubmission(1.0, true);
  metrics.RecordSubmission(2.0, false);
  metrics.RecordSubmission(3.0, true);
  metrics.RecordAllocation(1.0, 0.5, true);
  metrics.RecordEviction(2.0);
  EXPECT_EQ(metrics.submitted(), 3u);
  EXPECT_EQ(metrics.allocated(), 1u);
  EXPECT_EQ(metrics.evicted(), 1u);
  EXPECT_DOUBLE_EQ(metrics.submitted_weight(), 6.0);
  EXPECT_DOUBLE_EQ(metrics.allocated_weight(), 1.0);
  EXPECT_EQ(metrics.submitted_fair_share(), 2u);
  EXPECT_EQ(metrics.allocated_fair_share(), 1u);
}

TEST(AllocationMetricsTest, FairShareFraction) {
  AllocationMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.AllocatedFairShareFraction(), 0.0);
  metrics.RecordAllocation(1.0, 0.0, true);
  metrics.RecordAllocation(1.0, 0.0, false);
  metrics.RecordAllocation(1.0, 0.0, true);
  metrics.RecordAllocation(1.0, 0.0, true);
  EXPECT_DOUBLE_EQ(metrics.AllocatedFairShareFraction(), 0.75);
}

TEST(AllocationMetricsTest, DelayQuantiles) {
  AllocationMetrics metrics;
  for (double d : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    metrics.RecordAllocation(1.0, d, false);
  }
  EXPECT_DOUBLE_EQ(metrics.delays().median(), 3.0);
  EXPECT_DOUBLE_EQ(metrics.delays().Quantile(1.0), 5.0);
}

TEST(AllocationMetricsTest, RuntimeAccumulates) {
  AllocationMetrics metrics;
  metrics.RecordCycleRuntime(0.25);
  metrics.RecordCycleRuntime(0.75);
  EXPECT_DOUBLE_EQ(metrics.total_runtime_seconds(), 1.0);
  EXPECT_EQ(metrics.cycle_runtime_seconds().count(), 2u);
}

TEST(AllocationMetricsTest, SummaryMentionsCounts) {
  AllocationMetrics metrics;
  metrics.RecordSubmission(1.0, false);
  metrics.RecordAllocation(1.0, 2.0, false);
  std::string summary = metrics.Summary();
  EXPECT_NE(summary.find("submitted=1"), std::string::npos);
  EXPECT_NE(summary.find("allocated=1"), std::string::npos);
}

}  // namespace
}  // namespace dpack
