// Degenerate-configuration coverage for the sharded and async engines (ISSUE 4): shard
// counts exceeding the block and task populations, empty batches, and block-less managers
// were previously only hit incidentally by the randomized differential traces. These tests
// pin them directly: every shape must grant exactly what the recompute reference grants
// and leave the engines reusable for later, larger cycles.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/block/block_manager.h"
#include "src/core/online_scheduler.h"
#include "src/core/scheduler.h"
#include "src/rdp/rdp_curve.h"

namespace dpack {
namespace {

constexpr double kEpsG = 10.0;
constexpr double kDeltaG = 1e-7;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

Task FractionTask(TaskId id, double fraction, std::vector<BlockId> blocks) {
  RdpCurve capacity = BlockCapacityCurve(Grid(), kEpsG, kDeltaG);
  Task t(id, 1.0, capacity.Scaled(fraction));
  t.blocks = std::move(blocks);
  return t;
}

struct EngineShape {
  size_t num_shards;
  bool async;
};

const EngineShape kShapes[] = {
    {1, false}, {8, false}, {8, true}, {1, true},
};

class DegenerateConfigTest : public testing::TestWithParam<GreedyMetric> {};

TEST_P(DegenerateConfigTest, MoreShardsThanBlocksAndTasks) {
  // 8 shards over 2 blocks and 1-2 tasks: most shards own nothing and score nothing, and
  // must still merge cleanly into the reference grant order, cycle after cycle.
  for (const EngineShape& shape : kShapes) {
    GreedyScheduler engine(GetParam(),
                           GreedySchedulerOptions{.eta = 0.05,
                                                  .incremental = true,
                                                  .num_shards = shape.num_shards,
                                                  .async = shape.async});
    GreedyScheduler reference(GetParam(),
                              GreedySchedulerOptions{.eta = 0.05, .incremental = false});
    BlockManager engine_blocks(Grid(), kEpsG, kDeltaG);
    BlockManager reference_blocks(Grid(), kEpsG, kDeltaG);
    for (int b = 0; b < 2; ++b) {
      engine_blocks.AddBlock(0.0, /*unlocked=*/true);
      reference_blocks.AddBlock(0.0, /*unlocked=*/true);
    }
    for (int cycle = 0; cycle < 4; ++cycle) {
      std::vector<Task> pending;
      pending.push_back(FractionTask(cycle * 10, 0.2, {0, 1}));
      if (cycle % 2 == 0) {
        pending.push_back(FractionTask(cycle * 10 + 1, 0.3, {1}));
      }
      std::vector<size_t> got = engine.ScheduleBatch(pending, engine_blocks);
      std::vector<size_t> want = reference.ScheduleBatch(pending, reference_blocks);
      ASSERT_EQ(got, want) << "shards=" << shape.num_shards << " async=" << shape.async
                           << " cycle=" << cycle;
    }
  }
}

TEST_P(DegenerateConfigTest, EmptyBatchesAreNoOpsAndEnginesStayLive) {
  for (const EngineShape& shape : kShapes) {
    GreedyScheduler engine(GetParam(),
                           GreedySchedulerOptions{.eta = 0.05,
                                                  .incremental = true,
                                                  .num_shards = shape.num_shards,
                                                  .async = shape.async});
    BlockManager blocks(Grid(), kEpsG, kDeltaG);
    blocks.AddBlock(0.0, /*unlocked=*/true);
    // Several consecutive empty cycles, then a real one: the engine must neither crash on
    // zero pending tasks nor corrupt its caches for the later batch.
    for (int cycle = 0; cycle < 3; ++cycle) {
      EXPECT_TRUE(engine.ScheduleBatch({}, blocks).empty())
          << "shards=" << shape.num_shards << " async=" << shape.async;
    }
    std::vector<Task> pending;
    pending.push_back(FractionTask(1, 0.1, {0}));
    EXPECT_EQ(engine.ScheduleBatch(pending, blocks), (std::vector<size_t>{0}))
        << "shards=" << shape.num_shards << " async=" << shape.async;
  }
}

TEST_P(DegenerateConfigTest, ZeroBlocksGrantsNothing) {
  // A manager with no blocks at all: tasks with unresolved block requests are skipped,
  // nothing is granted, and the engines survive blocks arriving later.
  for (const EngineShape& shape : kShapes) {
    GreedyScheduler engine(GetParam(),
                           GreedySchedulerOptions{.eta = 0.05,
                                                  .incremental = true,
                                                  .num_shards = shape.num_shards,
                                                  .async = shape.async});
    BlockManager blocks(Grid(), kEpsG, kDeltaG);
    std::vector<Task> pending;
    RdpCurve capacity = BlockCapacityCurve(Grid(), kEpsG, kDeltaG);
    Task unresolved(1, 1.0, capacity.Scaled(0.2));
    unresolved.num_recent_blocks = 2;  // Unresolved: blocks stays empty.
    pending.push_back(std::move(unresolved));
    EXPECT_TRUE(engine.ScheduleBatch(pending, blocks).empty())
        << "shards=" << shape.num_shards << " async=" << shape.async;

    // Blocks arrive; the same engine (caches warm on an empty id space) now grants.
    blocks.AddBlock(0.0, /*unlocked=*/true);
    blocks.AddBlock(0.0, /*unlocked=*/true);
    pending[0].blocks = blocks.MostRecentBlocks(2);
    EXPECT_EQ(engine.ScheduleBatch(pending, blocks), (std::vector<size_t>{0}))
        << "shards=" << shape.num_shards << " async=" << shape.async;
  }
}

TEST_P(DegenerateConfigTest, OnlineDriverWithZeroBlockManagerCycles) {
  // The full online driver over a block-less manager: cycles run, nothing unlocks, tasks
  // wait (and can time out) without any grant — and the system recovers once blocks exist.
  for (const EngineShape& shape : kShapes) {
    BlockManager blocks(Grid(), kEpsG, kDeltaG);
    OnlineSchedulerConfig config;
    config.period = 1.0;
    config.unlock_steps = 2;
    config.num_shards = shape.num_shards;
    config.async = shape.async;
    OnlineScheduler online(
        std::make_unique<GreedyScheduler>(
            GetParam(), GreedySchedulerOptions{.eta = 0.05, .incremental = true}),
        &blocks, config);
    RdpCurve capacity = BlockCapacityCurve(Grid(), kEpsG, kDeltaG);
    Task task(1, 1.0, capacity.Scaled(0.1));
    task.num_recent_blocks = 1;
    online.Submit(std::move(task));
    EXPECT_EQ(online.RunCycle(0.0), 0u);
    EXPECT_EQ(online.RunCycle(1.0), 0u);
    EXPECT_EQ(online.pending_count(), 1u);
    blocks.AddBlock(2.0);
    EXPECT_EQ(online.RunCycle(2.0), 1u)
        << "shards=" << shape.num_shards << " async=" << shape.async;
    EXPECT_EQ(online.pending_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, DegenerateConfigTest,
                         testing::Values(GreedyMetric::kDpack, GreedyMetric::kDpf,
                                         GreedyMetric::kArea, GreedyMetric::kFcfs),
                         [](const testing::TestParamInfo<GreedyMetric>& param_info) {
                           switch (param_info.param) {
                             case GreedyMetric::kDpack:
                               return "DPack";
                             case GreedyMetric::kDpf:
                               return "DPF";
                             case GreedyMetric::kArea:
                               return "Area";
                             case GreedyMetric::kFcfs:
                               return "FCFS";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace dpack
