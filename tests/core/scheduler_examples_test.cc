// Reproductions of the paper's two worked examples:
//   Fig. 1 — DPF's multi-block inefficiency under (near-)traditional accounting: DPF
//            allocates 1 task where an efficient scheduler allocates 3.
//   Fig. 3 — DPF's best-alpha blindness under RDP accounting: DPF allocates 2 tasks where
//            an efficient scheduler allocates 4.

#include <algorithm>

#include <gtest/gtest.h>

#include "src/block/block_manager.h"
#include "src/core/scheduler.h"

namespace dpack {
namespace {

// --- Fig. 1 -------------------------------------------------------------------------------
// Three blocks; T1 demands 45% of each block's budget; T2-T4 demand 60% of one distinct
// block each. Demands are proportional to block capacity, so normalized shares are flat
// across orders (the traditional-DP setting of the figure).

struct Fig1Fixture {
  Fig1Fixture() : blocks(AlphaGrid::Default(), 10.0, 1e-7) {
    for (int b = 0; b < 3; ++b) {
      blocks.AddBlock(0.0, /*unlocked=*/true);
    }
    RdpCurve capacity = BlockCapacityCurve(AlphaGrid::Default(), 10.0, 1e-7);
    Task t1(1, 1.0, capacity.Scaled(0.45));
    t1.blocks = {0, 1, 2};
    tasks.push_back(t1);
    for (int i = 0; i < 3; ++i) {
      Task t(2 + i, 1.0, capacity.Scaled(0.60));
      t.blocks = {static_cast<BlockId>(i)};
      tasks.push_back(t);
    }
  }
  BlockManager blocks;
  std::vector<Task> tasks;
};

TEST(Fig1Test, DpfAllocatesOnlyTheMultiBlockTask) {
  Fig1Fixture fig;
  GreedyScheduler dpf(GreedyMetric::kDpf);
  std::vector<size_t> granted = dpf.ScheduleBatch(fig.tasks, fig.blocks);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(fig.tasks[granted[0]].id, 1);  // T1, the dominant-share minimizer.
}

TEST(Fig1Test, DpackAllocatesThreeSingleBlockTasks) {
  Fig1Fixture fig;
  GreedyScheduler dpack(GreedyMetric::kDpack);
  std::vector<size_t> granted = dpack.ScheduleBatch(fig.tasks, fig.blocks);
  ASSERT_EQ(granted.size(), 3u);
  for (size_t idx : granted) {
    EXPECT_NE(fig.tasks[idx].id, 1);
  }
}

TEST(Fig1Test, AreaMetricAlsoFixesTheInefficiency) {
  // §3.1: the area heuristic (Eq. 4) already handles multi-block heterogeneity.
  Fig1Fixture fig;
  GreedyScheduler area(GreedyMetric::kArea);
  EXPECT_EQ(area.ScheduleBatch(fig.tasks, fig.blocks).size(), 3u);
}

TEST(Fig1Test, OptimalAllocatesThree) {
  Fig1Fixture fig;
  OptimalScheduler optimal;
  EXPECT_EQ(optimal.ScheduleBatch(fig.tasks, fig.blocks).size(), 3u);
  EXPECT_TRUE(optimal.last_solve_optimal());
}

// --- Fig. 3 -------------------------------------------------------------------------------
// Two blocks with capacity exactly 1 at both of two RDP orders. Six single-block tasks:
//   block B0: T1 = (0.5, 1.5), T2 = (0.9, 0.9), T3 = (0.5, 1.5)   best order = alpha1
//   block B1: T4 = (0.9, 0.9), T5 = (1.5, 0.5), T6 = (1.5, 0.5)   best order = alpha2
// DPF sorts by dominant share (T2, T4 first at 0.9) and blocks both blocks after 2 grants;
// an efficient scheduler packs T1+T3 at alpha1 and T5+T6 at alpha2 — 4 grants.

std::vector<TaskId> RunFig3(GreedyMetric metric) {
  AlphaGridPtr grid = AlphaGrid::Create({4.0, 8.0});
  BlockManager blocks(grid, /*eps_g=*/10.0, /*delta_g=*/1e-7);  // Derivation unused below.
  RdpCurve unit(grid, {1.0, 1.0});
  blocks.AddBlockWithCapacity(unit, 0.0, /*unlocked=*/true);
  blocks.AddBlockWithCapacity(unit, 0.0, /*unlocked=*/true);

  std::vector<Task> tasks;
  auto add_task = [&](TaskId id, BlockId block, double d1, double d2) {
    Task t(id, 1.0, RdpCurve(grid, {d1, d2}));
    t.blocks = {block};
    tasks.push_back(t);
  };
  add_task(1, 0, 0.5, 1.5);
  add_task(2, 0, 0.9, 0.9);
  add_task(3, 0, 0.5, 1.5);
  add_task(4, 1, 0.9, 0.9);
  add_task(5, 1, 1.5, 0.5);
  add_task(6, 1, 1.5, 0.5);

  GreedyScheduler scheduler(metric);
  std::vector<size_t> granted = scheduler.ScheduleBatch(tasks, blocks);
  std::vector<TaskId> ids;
  ids.reserve(granted.size());
  for (size_t idx : granted) {
    ids.push_back(tasks[idx].id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(Fig3Test, DpfAllocatesTwoTasks) {
  // DPF takes the two dominant-share-0.9 tasks (one per block), blocking both blocks.
  EXPECT_EQ(RunFig3(GreedyMetric::kDpf), (std::vector<TaskId>{2, 4}));
}

TEST(Fig3Test, DpackAllocatesFourTasksAtBestAlphas) {
  EXPECT_EQ(RunFig3(GreedyMetric::kDpack), (std::vector<TaskId>{1, 3, 5, 6}));
}

TEST(Fig3Test, OptimalAlsoFindsFour) {
  AlphaGridPtr grid = AlphaGrid::Create({4.0, 8.0});
  BlockManager blocks(grid, 10.0, 1e-7);
  RdpCurve unit(grid, {1.0, 1.0});
  blocks.AddBlockWithCapacity(unit, 0.0, true);
  blocks.AddBlockWithCapacity(unit, 0.0, true);
  std::vector<Task> tasks;
  auto add_task = [&](TaskId id, BlockId block, double d1, double d2) {
    Task t(id, 1.0, RdpCurve(grid, {d1, d2}));
    t.blocks = {block};
    tasks.push_back(t);
  };
  add_task(1, 0, 0.5, 1.5);
  add_task(2, 0, 0.9, 0.9);
  add_task(3, 0, 0.5, 1.5);
  add_task(4, 1, 0.9, 0.9);
  add_task(5, 1, 1.5, 0.5);
  add_task(6, 1, 1.5, 0.5);
  OptimalScheduler optimal;
  EXPECT_EQ(optimal.ScheduleBatch(tasks, blocks).size(), 4u);
  EXPECT_TRUE(optimal.last_solve_optimal());
}

}  // namespace
}  // namespace dpack
