// Differential suite for the incremental scheduling engines: across randomized online
// traces the single-shard engine (ScheduleContext) and the sharded engine
// (ShardedScheduleContext, at several shard counts) must grant exactly the same task sets
// as the recompute-everything reference path, for every greedy metric. The traces exercise
// the full protocol the caches depend on: commits (via grants), stepwise budget unlocking,
// online block arrival, task arrival and eviction, late block resolution, and weighted as
// well as uniform-weight batches.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/block/block_manager.h"
#include "src/common/rng.h"
#include "src/core/scheduler.h"
#include "src/sim/sim_driver.h"
#include "src/workload/curve_pool.h"
#include "src/workload/microbenchmark.h"

namespace dpack {
namespace {

constexpr double kEpsG = 10.0;
constexpr double kDeltaG = 1e-7;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

struct TraceOptions {
  uint64_t seed = 1;
  size_t cycles = 40;
  size_t initial_blocks = 3;     // Unlocked at t = 0.
  size_t online_blocks = 20;     // One arrives per cycle, locked, unlocking over time.
  int64_t unlock_steps = 10;
  double max_tasks_per_cycle = 4.0;
  bool weighted = false;         // Random weights (FPTAS path) vs all-1 (max-cardinality).
  double evict_probability = 0.1;  // Per-cycle chance of dropping one random pending task.
  double unresolved_probability = 0.1;  // Tasks arriving before resolving their blocks.
  // Incremental engines under test, one per shard count: 1 = the single-shard
  // ScheduleContext, > 1 = ShardedScheduleContext with that many shards. Every engine must
  // produce byte-identical grants to the recompute reference each cycle.
  std::vector<size_t> shard_counts = {1};
  // Run the engines as AsyncScheduleEngine (persistent per-shard scheduler threads with
  // snapshot publication + quiesce) instead of the synchronous drivers. Applies to every
  // shard count, including 1.
  bool async = false;
};

// Runs the same randomized trace through the recompute reference and one incremental engine
// per requested shard count, each operating on identically-constructed block managers,
// asserting identical grants every cycle.
void RunDifferentialTrace(GreedyMetric metric, const TraceOptions& options) {
  GreedyScheduler recompute(metric, GreedySchedulerOptions{.eta = 0.05, .incremental = false});
  BlockManager rec_blocks(Grid(), kEpsG, kDeltaG);
  std::vector<std::unique_ptr<GreedyScheduler>> engines;
  std::vector<std::unique_ptr<BlockManager>> engine_blocks;
  for (size_t shards : options.shard_counts) {
    engines.push_back(std::make_unique<GreedyScheduler>(
        metric, GreedySchedulerOptions{.eta = 0.05,
                                       .incremental = true,
                                       .num_shards = shards,
                                       .async = options.async}));
    engine_blocks.push_back(std::make_unique<BlockManager>(Grid(), kEpsG, kDeltaG));
  }
  for (size_t b = 0; b < options.initial_blocks; ++b) {
    rec_blocks.AddBlock(0.0, /*unlocked=*/true);
    for (auto& blocks : engine_blocks) {
      blocks->AddBlock(0.0, /*unlocked=*/true);
    }
  }

  Rng rng(options.seed);
  RdpCurve capacity = BlockCapacityCurve(Grid(), kEpsG, kDeltaG);
  std::vector<Task> pending;
  TaskId next_id = 0;

  for (size_t cycle = 0; cycle < options.cycles; ++cycle) {
    double now = static_cast<double>(cycle);
    // Online block arrival: one per cycle while the arrival process lasts.
    if (cycle > 0 && cycle <= options.online_blocks) {
      rec_blocks.AddBlock(now);
      for (auto& blocks : engine_blocks) {
        blocks->AddBlock(now);
      }
    }
    rec_blocks.UpdateUnlocks(now, 1.0, options.unlock_steps);
    for (auto& blocks : engine_blocks) {
      blocks->UpdateUnlocks(now, 1.0, options.unlock_steps);
    }

    // Late resolution: unresolved tasks pick up the most recent blocks once any exist.
    for (Task& task : pending) {
      if (task.blocks.empty() && task.num_recent_blocks > 0) {
        task.blocks = rec_blocks.MostRecentBlocks(task.num_recent_blocks);
      }
    }

    // Random eviction (timeout stand-in): drops a pending task without any commit, so only
    // the membership signatures can catch it.
    if (!pending.empty() && rng.Bernoulli(options.evict_probability)) {
      size_t victim = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pending.size()) - 1));
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(victim));
    }

    // New arrivals.
    int64_t arrivals = rng.UniformInt(0, static_cast<int64_t>(options.max_tasks_per_cycle));
    for (int64_t k = 0; k < arrivals; ++k) {
      double weight = options.weighted ? rng.Uniform(0.5, 8.0) : 1.0;
      Task task(next_id++, weight, capacity.Scaled(rng.Uniform(0.02, 0.5)));
      task.arrival_time = now;
      if (rng.Bernoulli(options.unresolved_probability)) {
        task.num_recent_blocks = static_cast<size_t>(rng.UniformInt(1, 3));
      } else {
        size_t count = static_cast<size_t>(
            rng.UniformInt(1, std::min<int64_t>(4, static_cast<int64_t>(
                                                       rec_blocks.block_count()))));
        for (size_t idx : rng.SampleWithoutReplacement(rec_blocks.block_count(), count)) {
          task.blocks.push_back(static_cast<BlockId>(idx));
        }
      }
      pending.push_back(std::move(task));
    }

    std::vector<size_t> rec_granted = recompute.ScheduleBatch(pending, rec_blocks);
    for (size_t e = 0; e < engines.size(); ++e) {
      std::vector<size_t> granted = engines[e]->ScheduleBatch(pending, *engine_blocks[e]);
      ASSERT_EQ(granted, rec_granted)
          << "metric=" << static_cast<int>(metric) << " seed=" << options.seed
          << " cycle=" << cycle << " shards=" << options.shard_counts[e];
    }

    // Retire grants exactly as OnlineScheduler does (order-preserving compaction).
    std::vector<bool> taken(pending.size(), false);
    for (size_t idx : rec_granted) {
      taken[idx] = true;
    }
    std::vector<Task> rest;
    rest.reserve(pending.size());
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!taken[i]) {
        rest.push_back(std::move(pending[i]));
      }
    }
    pending = std::move(rest);
  }

  // Every manager consumed bit-identical budget.
  for (size_t e = 0; e < engines.size(); ++e) {
    ASSERT_EQ(engine_blocks[e]->block_count(), rec_blocks.block_count());
    for (size_t j = 0; j < rec_blocks.block_count(); ++j) {
      const RdpCurve& a = engine_blocks[e]->block(static_cast<BlockId>(j)).consumed();
      const RdpCurve& b = rec_blocks.block(static_cast<BlockId>(j)).consumed();
      for (size_t alpha = 0; alpha < a.size(); ++alpha) {
        ASSERT_EQ(a.epsilon(alpha), b.epsilon(alpha))
            << "shards=" << options.shard_counts[e] << " block " << j << " order " << alpha;
      }
    }
  }

  // The traces must have actually exercised the caches, not fallen back every cycle.
  for (size_t e = 0; e < engines.size(); ++e) {
    ASSERT_NE(engines[e]->engine(), nullptr);
    const ScheduleContextStats& stats = engines[e]->engine()->stats();
    // FCFS never scores, so its scheduler stays on the single-shard engine.
    size_t expected_shards = metric == GreedyMetric::kFcfs ? 1 : options.shard_counts[e];
    EXPECT_EQ(stats.shards, expected_shards);
    EXPECT_EQ(stats.full_recomputes, 0u);
    if (metric != GreedyMetric::kFcfs) {
      EXPECT_GT(stats.tasks_reused, 0u);
    }
    if (options.async && metric != GreedyMetric::kFcfs) {
      // The cycle protocol was honored, so no publication may ever fail quiesce validation.
      EXPECT_EQ(stats.async_stale_publishes, 0u);
      EXPECT_EQ(stats.async_wasted_rescores, 0u);
      // DPF scores read only total capacities, so every DPF rescore is an early
      // (pre-fence) one; the capacity-aware metrics early-score at most what they rescore.
      if (metric == GreedyMetric::kDpf) {
        EXPECT_EQ(stats.async_early_scores, stats.tasks_rescored);
      } else {
        EXPECT_LE(stats.async_early_scores, stats.tasks_rescored);
      }
    } else {
      EXPECT_EQ(stats.async_early_scores, 0u);
    }
  }
}

class IncrementalEquivalenceTest : public testing::TestWithParam<GreedyMetric> {};

TEST_P(IncrementalEquivalenceTest, UniformWeightTraces) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    TraceOptions options;
    options.seed = seed;
    options.weighted = false;
    RunDifferentialTrace(GetParam(), options);
  }
}

TEST_P(IncrementalEquivalenceTest, WeightedTraces) {
  for (uint64_t seed : {5u, 11u}) {
    TraceOptions options;
    options.seed = seed;
    options.weighted = true;
    RunDifferentialTrace(GetParam(), options);
  }
}

TEST_P(IncrementalEquivalenceTest, ShardedTracesMatchMonolithic) {
  // The sharded engine's acceptance sweep: byte-identical grant sequences across the whole
  // randomized protocol for every shard count, including a count (7) that does not divide
  // the block or task population evenly.
  TraceOptions options;
  options.seed = 17;
  options.shard_counts = {1, 2, 4, 7};
  RunDifferentialTrace(GetParam(), options);
}

TEST_P(IncrementalEquivalenceTest, AsyncTracesMatchMonolithic) {
  // The async engine's acceptance sweep (ISSUE 3): byte-identical grant sequences from the
  // persistent per-shard scheduler threads across the whole randomized protocol, for every
  // shard count including one that divides nothing evenly.
  TraceOptions options;
  options.seed = 17;
  options.shard_counts = {1, 2, 4, 7};
  options.async = true;
  RunDifferentialTrace(GetParam(), options);
}

TEST_P(IncrementalEquivalenceTest, AsyncWeightedHighContention) {
  // Weighted scoring under heavy contention on the async engine: most of the queue persists
  // across cycles while grants keep dirtying the few contended blocks, maximizing the
  // cross-shard (post-fence) scoring traffic.
  TraceOptions options;
  options.seed = 29;
  options.weighted = true;
  options.initial_blocks = 2;
  options.online_blocks = 3;
  options.max_tasks_per_cycle = 8.0;
  options.cycles = 50;
  options.shard_counts = {4};
  options.async = true;
  RunDifferentialTrace(GetParam(), options);
}

TEST_P(IncrementalEquivalenceTest, ShardedWeightedHighContention) {
  // Weighted scoring (FPTAS best-alpha path) under heavy contention, 4 shards: most of the
  // queue persists across cycles while grants keep dirtying the few contended blocks.
  TraceOptions options;
  options.seed = 29;
  options.weighted = true;
  options.initial_blocks = 2;
  options.online_blocks = 3;
  options.max_tasks_per_cycle = 8.0;
  options.cycles = 50;
  options.shard_counts = {4};
  RunDifferentialTrace(GetParam(), options);
}

TEST_P(IncrementalEquivalenceTest, HighContentionTrace) {
  // Few blocks, many tasks: most of the queue stays pending, maximizing cache reuse while
  // grants keep dirtying the contended blocks.
  TraceOptions options;
  options.seed = 13;
  options.initial_blocks = 2;
  options.online_blocks = 3;
  options.max_tasks_per_cycle = 8.0;
  options.cycles = 50;
  RunDifferentialTrace(GetParam(), options);
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, IncrementalEquivalenceTest,
                         testing::Values(GreedyMetric::kDpack, GreedyMetric::kDpf,
                                         GreedyMetric::kArea, GreedyMetric::kFcfs),
                         [](const testing::TestParamInfo<GreedyMetric>& param_info) {
                           switch (param_info.param) {
                             case GreedyMetric::kDpack:
                               return "DPack";
                             case GreedyMetric::kDpf:
                               return "DPF";
                             case GreedyMetric::kArea:
                               return "Area";
                             case GreedyMetric::kFcfs:
                               return "FCFS";
                           }
                           return "unknown";
                         });

// End-to-end: the full simulator pipeline (OnlineScheduler + sim driver + microbenchmark
// workload) reports identical allocation outcomes for both engines.
TEST(IncrementalEquivalenceTest, SimulatorEndToEndMatchesRecompute) {
  CurvePool pool(Grid(), BlockCapacityCurve(Grid(), kEpsG, kDeltaG));
  MicrobenchmarkConfig workload;
  workload.num_tasks = 150;
  workload.num_blocks = 10;
  workload.mu_blocks = 3.0;
  workload.sigma_blocks = 2.0;
  workload.sigma_alpha = 3.0;
  workload.eps_min = 0.05;
  workload.seed = 3;

  for (GreedyMetric metric : {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea,
                              GreedyMetric::kFcfs}) {
    std::vector<Task> tasks = GenerateMicrobenchmark(pool, workload);
    // Spread arrivals so multiple cycles run with a persistent queue, and switch the
    // offline-style explicit block lists to online-style most-recent requests (the offline
    // ids may not have arrived yet when the task does).
    for (size_t i = 0; i < tasks.size(); ++i) {
      tasks[i].arrival_time = static_cast<double>(i % 20);
      tasks[i].num_recent_blocks = std::max<size_t>(1, tasks[i].blocks.size() % 4);
      tasks[i].blocks.clear();
    }
    SimConfig sim;
    sim.num_blocks = 10;
    sim.unlock_steps = 10;

    SimResult inc = RunOnlineSimulation(
        std::make_unique<GreedyScheduler>(
            metric, GreedySchedulerOptions{.eta = 0.05, .incremental = true}),
        tasks, sim);
    SimResult rec = RunOnlineSimulation(
        std::make_unique<GreedyScheduler>(
            metric, GreedySchedulerOptions{.eta = 0.05, .incremental = false}),
        tasks, sim);
    SimConfig sharded_sim = sim;
    sharded_sim.num_shards = 4;  // Resharded through the SimConfig knob.
    SimResult sharded = RunOnlineSimulation(
        std::make_unique<GreedyScheduler>(
            metric, GreedySchedulerOptions{.eta = 0.05, .incremental = true}),
        tasks, sharded_sim);
    SimConfig async_sim = sharded_sim;
    async_sim.async = true;  // Async per-shard threads through the SimConfig knob.
    SimResult async = RunOnlineSimulation(
        std::make_unique<GreedyScheduler>(
            metric, GreedySchedulerOptions{.eta = 0.05, .incremental = true}),
        tasks, async_sim);

    EXPECT_EQ(inc.metrics.allocated(), rec.metrics.allocated());
    EXPECT_EQ(inc.metrics.allocated_weight(), rec.metrics.allocated_weight());
    EXPECT_EQ(inc.pending_at_end, rec.pending_at_end);
    EXPECT_EQ(sharded.metrics.allocated(), rec.metrics.allocated());
    EXPECT_EQ(sharded.metrics.allocated_weight(), rec.metrics.allocated_weight());
    EXPECT_EQ(sharded.pending_at_end, rec.pending_at_end);
    EXPECT_EQ(async.metrics.allocated(), rec.metrics.allocated());
    EXPECT_EQ(async.metrics.allocated_weight(), rec.metrics.allocated_weight());
    EXPECT_EQ(async.pending_at_end, rec.pending_at_end);
    if (metric != GreedyMetric::kFcfs) {
      EXPECT_EQ(sharded.scheduler_stats.shards, 4u);
      EXPECT_EQ(async.scheduler_stats.shards, 4u);
      EXPECT_EQ(async.scheduler_stats.async_stale_publishes, 0u);
    }
  }
}

}  // namespace
}  // namespace dpack
