// Unit tests for the incremental scheduling engine's cache behavior: which state changes
// dirty which blocks, which tasks get rescored, and when the engine falls back to the
// recompute path.

#include "src/core/schedule_context.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/block/block_manager.h"
#include "src/core/scheduler.h"

namespace dpack {
namespace {

constexpr double kEpsG = 10.0;
constexpr double kDeltaG = 1e-7;

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

RdpCurve CapacityFraction(double fraction) {
  return BlockCapacityCurve(Grid(), kEpsG, kDeltaG).Scaled(fraction);
}

// A task too large to ever be granted: scoring happens, commits never do, so the pending
// queue and the block state stay put between cycles unless the test dirties them.
Task OversizedTask(TaskId id, std::vector<BlockId> block_ids) {
  Task t(id, 1.0, CapacityFraction(2.0));
  t.blocks = std::move(block_ids);
  return t;
}

class ScheduleContextTest : public testing::Test {
 protected:
  ScheduleContextTest() : blocks_(Grid(), kEpsG, kDeltaG) {
    for (int b = 0; b < 4; ++b) {
      blocks_.AddBlock(0.0, /*unlocked=*/true);
    }
  }
  BlockManager blocks_;
};

TEST_F(ScheduleContextTest, SteadyStateReusesEveryScore) {
  for (GreedyMetric metric :
       {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea}) {
    ScheduleContext context(metric);
    std::vector<Task> pending;
    for (TaskId i = 0; i < 10; ++i) {
      pending.push_back(OversizedTask(i, {i % 4}));
    }
    EXPECT_TRUE(context.ScheduleBatch(pending, blocks_).empty());
    EXPECT_EQ(context.stats().tasks_rescored, 10u);
    EXPECT_EQ(context.stats().tasks_reused, 0u);

    // Nothing changed: the second cycle reuses all ten scores.
    EXPECT_TRUE(context.ScheduleBatch(pending, blocks_).empty());
    EXPECT_EQ(context.stats().tasks_rescored, 10u);
    EXPECT_EQ(context.stats().tasks_reused, 10u);
    EXPECT_EQ(context.stats().blocks_refreshed, 0u);
  }
}

TEST_F(ScheduleContextTest, SteadyStateCyclesDoZeroMergeAllocations) {
  // The N-way merge's scratch buffers persist across cycles: after warm-up, re-merging the
  // same-size batch must not allocate. merge_allocs counts scratch capacity growth and is
  // gated at zero per steady-state cycle in bench/baseline.json.
  for (GreedyMetric metric :
       {GreedyMetric::kDpack, GreedyMetric::kDpf, GreedyMetric::kArea}) {
    ScheduleContext context(metric);
    std::vector<Task> pending;
    for (TaskId i = 0; i < 12; ++i) {
      pending.push_back(OversizedTask(i, {i % 4}));
    }
    // Two warm-up merges: the merge ping-pongs between two persistent buffers, so both
    // reach full capacity only after the second cycle.
    EXPECT_TRUE(context.ScheduleBatch(pending, blocks_).empty());
    blocks_.block(3).Commit(CapacityFraction(0.001));
    EXPECT_TRUE(context.ScheduleBatch(pending, blocks_).empty());
    uint64_t warmup = context.stats().merge_allocs;
    for (int cycle = 0; cycle < 5; ++cycle) {
      // Dirty a block each cycle so the merge actually re-runs with fresh entries.
      blocks_.block(cycle % 4).Commit(CapacityFraction(0.001));
      EXPECT_TRUE(context.ScheduleBatch(pending, blocks_).empty());
      EXPECT_EQ(context.stats().merge_allocs, warmup)
          << "metric " << static_cast<int>(metric) << " cycle " << cycle;
    }
  }
}

TEST_F(ScheduleContextTest, CommitDirtiesOnlyTouchedBlocksTasks) {
  ScheduleContext context(GreedyMetric::kArea);
  std::vector<Task> pending;
  for (TaskId i = 0; i < 8; ++i) {
    pending.push_back(OversizedTask(i, {i % 4}));  // Two tasks per block.
  }
  context.ScheduleBatch(pending, blocks_);

  // A commit to block 1 must rescore exactly its two tasks.
  blocks_.block(1).Commit(CapacityFraction(0.01));
  context.ScheduleBatch(pending, blocks_);
  EXPECT_EQ(context.stats().blocks_refreshed, 1u);
  EXPECT_EQ(context.stats().tasks_rescored, 8u + 2u);
  EXPECT_EQ(context.stats().tasks_reused, 6u);
}

TEST_F(ScheduleContextTest, DpfScoresSurviveCommits) {
  // DPF normalizes against total capacity, so commits never invalidate its scores.
  ScheduleContext context(GreedyMetric::kDpf);
  std::vector<Task> pending;
  for (TaskId i = 0; i < 6; ++i) {
    pending.push_back(OversizedTask(i, {i % 4}));
  }
  context.ScheduleBatch(pending, blocks_);
  blocks_.block(0).Commit(CapacityFraction(0.05));
  context.ScheduleBatch(pending, blocks_);
  EXPECT_EQ(context.stats().tasks_rescored, 6u);
  EXPECT_EQ(context.stats().tasks_reused, 6u);
}

TEST_F(ScheduleContextTest, UnlockIncreaseDirtiesBlock) {
  BlockManager locked(Grid(), kEpsG, kDeltaG);
  locked.AddBlock(0.0);  // Starts locked.
  ScheduleContext context(GreedyMetric::kArea);
  std::vector<Task> pending = {OversizedTask(0, {0})};

  locked.UpdateUnlocks(0.0, 1.0, 4);
  context.ScheduleBatch(pending, locked);
  uint64_t scored_before = context.stats().tasks_rescored;

  locked.UpdateUnlocks(1.0, 1.0, 4);  // Unlocks another quarter: version bumps.
  context.ScheduleBatch(pending, locked);
  EXPECT_EQ(context.stats().tasks_rescored, scored_before + 1);

  locked.UpdateUnlocks(1.0, 1.0, 4);  // No-op update: no version bump, no rescore.
  context.ScheduleBatch(pending, locked);
  EXPECT_EQ(context.stats().tasks_rescored, scored_before + 1);
}

TEST_F(ScheduleContextTest, NewTaskRescoresItsBlocksPeersUnderDpack) {
  // DPack's best alpha for a block depends on who requests it: a new requester must rescore
  // the block's existing tasks too, but not tasks on untouched blocks.
  ScheduleContext context(GreedyMetric::kDpack);
  std::vector<Task> pending;
  pending.push_back(OversizedTask(0, {0}));
  pending.push_back(OversizedTask(1, {0}));
  pending.push_back(OversizedTask(2, {1}));
  context.ScheduleBatch(pending, blocks_);
  EXPECT_EQ(context.stats().tasks_rescored, 3u);

  pending.push_back(OversizedTask(3, {0}));  // New requester of block 0.
  context.ScheduleBatch(pending, blocks_);
  // Tasks 0, 1 (peers on block 0) and 3 (new) rescored; task 2 on block 1 reused.
  EXPECT_EQ(context.stats().tasks_rescored, 3u + 3u);
  EXPECT_EQ(context.stats().tasks_reused, 1u);
}

TEST_F(ScheduleContextTest, BestAlphaRecomputedOnlyForDirtyBlocks) {
  ScheduleContext context(GreedyMetric::kDpack);
  std::vector<Task> pending;
  for (TaskId i = 0; i < 4; ++i) {
    pending.push_back(OversizedTask(i, {i}));
  }
  context.ScheduleBatch(pending, blocks_);
  uint64_t first_cycle = context.stats().best_alpha_recomputes;
  EXPECT_EQ(first_cycle, 4u);  // All blocks new.

  blocks_.block(2).Commit(CapacityFraction(0.01));
  context.ScheduleBatch(pending, blocks_);
  EXPECT_EQ(context.stats().best_alpha_recomputes, first_cycle + 1);
}

TEST_F(ScheduleContextTest, LateBlockResolutionTriggersRescore) {
  ScheduleContext context(GreedyMetric::kArea);
  std::vector<Task> pending;
  Task unresolved(0, 1.0, CapacityFraction(2.0));
  unresolved.num_recent_blocks = 2;  // blocks empty for now.
  pending.push_back(unresolved);
  context.ScheduleBatch(pending, blocks_);
  EXPECT_EQ(context.stats().tasks_rescored, 1u);

  pending[0].blocks = {0, 1};  // Resolution changes the blocks signature.
  context.ScheduleBatch(pending, blocks_);
  EXPECT_EQ(context.stats().tasks_rescored, 2u);
}

TEST_F(ScheduleContextTest, DuplicateTaskIdsFallBackToRecompute) {
  ScheduleContext context(GreedyMetric::kDpack);
  std::vector<Task> pending;
  pending.push_back(OversizedTask(7, {0}));
  pending.push_back(OversizedTask(7, {1}));  // Same id.
  context.ScheduleBatch(pending, blocks_);
  EXPECT_EQ(context.stats().full_recomputes, 1u);
  EXPECT_EQ(context.stats().tasks_rescored, 0u);

  // The fallback still produces correct grants.
  std::vector<Task> grantable;
  grantable.push_back(OversizedTask(7, {0}));
  grantable.push_back(OversizedTask(7, {1}));
  grantable[0].demand = CapacityFraction(0.3);
  grantable[1].demand = CapacityFraction(0.3);
  std::vector<size_t> granted = context.ScheduleBatch(grantable, blocks_);
  EXPECT_EQ(granted.size(), 2u);
}

TEST_F(ScheduleContextTest, InvalidateRebuildsFromScratch) {
  ScheduleContext context(GreedyMetric::kArea);
  std::vector<Task> pending = {OversizedTask(0, {0}), OversizedTask(1, {1})};
  context.ScheduleBatch(pending, blocks_);
  context.ScheduleBatch(pending, blocks_);
  EXPECT_EQ(context.stats().tasks_reused, 2u);

  context.Invalidate();
  context.ScheduleBatch(pending, blocks_);
  EXPECT_EQ(context.stats().tasks_rescored, 4u);  // 2 initial + 2 after invalidation.
}

TEST_F(ScheduleContextTest, GrantedTasksLeaveTheCache) {
  ScheduleContext context(GreedyMetric::kArea);
  std::vector<Task> pending;
  Task small(0, 1.0, CapacityFraction(0.2));
  small.blocks = {0};
  pending.push_back(small);
  pending.push_back(OversizedTask(1, {1}));

  std::vector<size_t> granted = context.ScheduleBatch(pending, blocks_);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(pending[granted[0]].id, 0);

  // The grant's commit dirtied block 0, but the granted task is gone; only the survivor is
  // considered, and it is reused (its block 1 untouched). Moved, not copied — the cycle
  // protocol compacts the queue by moving tasks, which keeps their block buffers stable.
  std::vector<Task> rest;
  rest.push_back(std::move(pending[1]));
  EXPECT_TRUE(context.ScheduleBatch(rest, blocks_).empty());
  EXPECT_EQ(context.stats().tasks_reused, 1u);
}

TEST_F(ScheduleContextTest, VersionedManagersSurviveCloning) {
  // A context observing a clone of the manager it warmed up on stays exact: Clone preserves
  // the epoch and per-block versions, so unchanged state is not spuriously refreshed.
  ScheduleContext context(GreedyMetric::kArea);
  std::vector<Task> pending = {OversizedTask(0, {0})};
  context.ScheduleBatch(pending, blocks_);

  BlockManager clone = blocks_.Clone();
  EXPECT_EQ(clone.epoch(), blocks_.epoch());
  EXPECT_EQ(clone.block(0).version(), blocks_.block(0).version());
  context.ScheduleBatch(pending, clone);
  EXPECT_EQ(context.stats().blocks_refreshed, 0u);
  EXPECT_EQ(context.stats().tasks_reused, 1u);
}

}  // namespace
}  // namespace dpack
