// Soak test for AsyncScheduleEngine's thread lifecycle and publication protocol: randomized
// online traces that keep starting and stopping engines mid-trace (fresh thread spawn +
// join against live state), invalidating caches, evicting tasks and *requeueing* them later
// under the same id, while asserting every cycle's grants stay byte-identical to the
// recompute reference. Run under the TSan CI leg with `--repeat until-fail:3` to shake out
// schedule-dependent races (thread interleavings differ per run; the grant sequence must
// not).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/block/block_manager.h"
#include "src/common/rng.h"
#include "src/core/scheduler.h"
#include "src/workload/curve_pool.h"

namespace dpack {
namespace {

constexpr double kEpsG = 10.0;
constexpr double kDeltaG = 1e-7;

struct SoakOptions {
  uint64_t seed = 1;
  GreedyMetric metric = GreedyMetric::kDpack;
  size_t num_shards = 4;
  size_t cycles = 30;
  size_t initial_blocks = 3;
  size_t online_blocks = 12;
  double max_tasks_per_cycle = 5.0;
  double evict_probability = 0.25;   // Per-cycle chance of parking one pending task.
  double requeue_probability = 0.5;  // Per-cycle chance of re-submitting a parked task.
  double restart_probability = 0.1;  // Per-cycle chance of tearing the engine down.
  double invalidate_probability = 0.1;  // Per-cycle chance of dropping the caches.
};

std::unique_ptr<GreedyScheduler> MakeAsyncScheduler(const SoakOptions& options) {
  return std::make_unique<GreedyScheduler>(
      options.metric, GreedySchedulerOptions{.eta = 0.05,
                                             .incremental = true,
                                             .num_shards = options.num_shards,
                                             .async = true});
}

void RunSoakTrace(const SoakOptions& options) {
  AlphaGridPtr grid = AlphaGrid::Default();
  GreedyScheduler recompute(options.metric,
                            GreedySchedulerOptions{.eta = 0.05, .incremental = false});
  BlockManager rec_blocks(grid, kEpsG, kDeltaG);
  std::unique_ptr<GreedyScheduler> engine = MakeAsyncScheduler(options);
  BlockManager eng_blocks(grid, kEpsG, kDeltaG);
  for (size_t b = 0; b < options.initial_blocks; ++b) {
    rec_blocks.AddBlock(0.0, /*unlocked=*/true);
    eng_blocks.AddBlock(0.0, /*unlocked=*/true);
  }

  Rng rng(options.seed);
  RdpCurve capacity = BlockCapacityCurve(grid, kEpsG, kDeltaG);
  std::vector<Task> pending;
  std::vector<Task> parked;  // Evicted tasks awaiting requeue (same id, same blocks).
  TaskId next_id = 0;
  size_t restarts = 0;

  for (size_t cycle = 0; cycle < options.cycles; ++cycle) {
    double now = static_cast<double>(cycle);
    if (cycle > 0 && cycle <= options.online_blocks) {
      rec_blocks.AddBlock(now);
      eng_blocks.AddBlock(now);
    }
    rec_blocks.UpdateUnlocks(now, 1.0, /*unlock_steps=*/8);
    eng_blocks.UpdateUnlocks(now, 1.0, /*unlock_steps=*/8);

    // Stop/start: tear the engine's shard threads down mid-trace and spawn a fresh engine
    // against the same (live) manager. A cold cache must still reproduce the reference.
    if (rng.Bernoulli(options.restart_probability)) {
      engine = MakeAsyncScheduler(options);
      ++restarts;
    } else if (rng.Bernoulli(options.invalidate_probability)) {
      ASSERT_NE(engine->engine(), nullptr);
      engine->engine()->Invalidate();
    }

    // Eviction (timeout stand-in): park one random pending task without any commit.
    if (!pending.empty() && rng.Bernoulli(options.evict_probability)) {
      size_t victim = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pending.size()) - 1));
      parked.push_back(std::move(pending[victim]));
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    // Requeue: a parked task re-enters the queue under its original id and block list.
    if (!parked.empty() && rng.Bernoulli(options.requeue_probability)) {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(parked.size()) - 1));
      pending.push_back(std::move(parked[idx]));
      parked.erase(parked.begin() + static_cast<std::ptrdiff_t>(idx));
    }

    // New arrivals over random block subsets.
    int64_t arrivals = rng.UniformInt(0, static_cast<int64_t>(options.max_tasks_per_cycle));
    for (int64_t k = 0; k < arrivals; ++k) {
      Task task(next_id++, rng.Uniform(0.5, 4.0), capacity.Scaled(rng.Uniform(0.02, 0.4)));
      task.arrival_time = now;
      size_t count = static_cast<size_t>(rng.UniformInt(
          1, std::min<int64_t>(4, static_cast<int64_t>(rec_blocks.block_count()))));
      for (size_t idx : rng.SampleWithoutReplacement(rec_blocks.block_count(), count)) {
        task.blocks.push_back(static_cast<BlockId>(idx));
      }
      pending.push_back(std::move(task));
    }

    std::vector<size_t> rec_granted = recompute.ScheduleBatch(pending, rec_blocks);
    std::vector<size_t> granted = engine->ScheduleBatch(pending, eng_blocks);
    ASSERT_EQ(granted, rec_granted)
        << "metric=" << static_cast<int>(options.metric) << " seed=" << options.seed
        << " cycle=" << cycle << " shards=" << options.num_shards
        << " restarts=" << restarts;

    std::vector<bool> taken(pending.size(), false);
    for (size_t idx : rec_granted) {
      taken[idx] = true;
    }
    std::vector<Task> rest;
    rest.reserve(pending.size());
    for (size_t i = 0; i < pending.size(); ++i) {
      if (!taken[i]) {
        rest.push_back(std::move(pending[i]));
      }
    }
    pending = std::move(rest);
  }

  // Both managers consumed bit-identical budget, and the engine never tripped quiesce.
  ASSERT_EQ(eng_blocks.block_count(), rec_blocks.block_count());
  for (size_t j = 0; j < rec_blocks.block_count(); ++j) {
    const RdpCurve& a = eng_blocks.block(static_cast<BlockId>(j)).consumed();
    const RdpCurve& b = rec_blocks.block(static_cast<BlockId>(j)).consumed();
    for (size_t alpha = 0; alpha < a.size(); ++alpha) {
      ASSERT_EQ(a.epsilon(alpha), b.epsilon(alpha)) << "block " << j << " order " << alpha;
    }
  }
  ASSERT_NE(engine->engine(), nullptr);
  EXPECT_EQ(engine->engine()->stats().async_stale_publishes, 0u);
  EXPECT_EQ(engine->engine()->stats().full_recomputes, 0u);
}

class AsyncEngineSoakTest : public testing::TestWithParam<GreedyMetric> {};

TEST_P(AsyncEngineSoakTest, StartStopRequeueTraces) {
  for (uint64_t seed : {3u, 19u}) {
    SoakOptions options;
    options.metric = GetParam();
    options.seed = seed;
    // Vary the thread count with the seed, including a count that divides nothing evenly.
    options.num_shards = seed % 2 == 1 ? 5 : 3;
    RunSoakTrace(options);
  }
}

TEST_P(AsyncEngineSoakTest, SingleShardAsync) {
  // One persistent scheduler thread (the degenerate fence): lifecycle churn must still be
  // race-free and reference-identical.
  SoakOptions options;
  options.metric = GetParam();
  options.seed = 11;
  options.num_shards = 1;
  options.restart_probability = 0.2;
  RunSoakTrace(options);
}

INSTANTIATE_TEST_SUITE_P(AllScoredMetrics, AsyncEngineSoakTest,
                         testing::Values(GreedyMetric::kDpack, GreedyMetric::kDpf,
                                         GreedyMetric::kArea),
                         [](const testing::TestParamInfo<GreedyMetric>& param_info) {
                           switch (param_info.param) {
                             case GreedyMetric::kDpack:
                               return "DPack";
                             case GreedyMetric::kDpf:
                               return "DPF";
                             case GreedyMetric::kArea:
                               return "Area";
                             case GreedyMetric::kFcfs:
                               break;
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace dpack
