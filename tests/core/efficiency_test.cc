#include "src/core/efficiency.h"

#include <limits>

#include <gtest/gtest.h>

#include "src/block/block_manager.h"

namespace dpack {
namespace {

// Two-order grid with unit capacities keeps the arithmetic exact.
class EfficiencyTest : public testing::Test {
 protected:
  EfficiencyTest() : grid_(AlphaGrid::Create({4.0, 8.0})), blocks_(grid_, 10.0, 1e-7) {
    RdpCurve capacity(grid_, {1.0, 2.0});
    blocks_.AddBlockWithCapacity(capacity, 0.0, /*unlocked=*/true);
    blocks_.AddBlockWithCapacity(capacity, 0.0, /*unlocked=*/true);
  }

  Task MakeTask(TaskId id, std::vector<BlockId> block_ids, double d1, double d2,
                double weight = 1.0) {
    Task t(id, weight, RdpCurve(grid_, {d1, d2}));
    t.blocks = std::move(block_ids);
    return t;
  }

  AlphaGridPtr grid_;
  BlockManager blocks_;
};

TEST_F(EfficiencyTest, DominantShareIsMaxOverBlocksAndOrders) {
  CapacitySnapshot snapshot(blocks_);
  Task t = MakeTask(1, {0, 1}, 0.5, 1.0);
  // Shares: block 0 {0.5/1, 1.0/2} and block 1 {0.5, 0.5} -> max 0.5.
  EXPECT_DOUBLE_EQ(DominantShare(t, snapshot), 0.5);
  EXPECT_DOUBLE_EQ(DpfEfficiency(t, snapshot), 2.0);
}

TEST_F(EfficiencyTest, DpfEfficiencyScalesWithWeight) {
  CapacitySnapshot snapshot(blocks_);
  Task t = MakeTask(1, {0}, 0.5, 0.5, /*weight=*/4.0);
  EXPECT_DOUBLE_EQ(DpfEfficiency(t, snapshot), 8.0);
}

TEST_F(EfficiencyTest, AreaSumsAllOrders) {
  CapacitySnapshot snapshot(blocks_);
  Task t = MakeTask(1, {0, 1}, 0.5, 1.0);
  // Area = 2 blocks x (0.5/1 + 1.0/2) = 2.0 -> efficiency 0.5.
  EXPECT_DOUBLE_EQ(AreaEfficiency(t, snapshot), 0.5);
}

TEST_F(EfficiencyTest, DpackCountsOnlyBestAlpha) {
  CapacitySnapshot snapshot(blocks_);
  Task t = MakeTask(1, {0, 1}, 0.5, 1.0);
  std::vector<size_t> best_alpha = {0, 1};  // Block 0 at alpha1, block 1 at alpha2.
  // Cost = 0.5/1 (block 0, order 0) + 1.0/2 (block 1, order 1) = 1.0.
  EXPECT_DOUBLE_EQ(DpackEfficiency(t, snapshot, best_alpha), 1.0);
}

TEST_F(EfficiencyTest, DpackZeroWhenBestOrderDepleted) {
  blocks_.block(0).Commit(RdpCurve(grid_, {1.0, 0.0}));  // Deplete order 0 of block 0.
  CapacitySnapshot snapshot(blocks_);
  Task t = MakeTask(1, {0}, 0.5, 0.0);
  std::vector<size_t> best_alpha = {0, 0};
  EXPECT_DOUBLE_EQ(DpackEfficiency(t, snapshot, best_alpha), 0.0);
}

TEST_F(EfficiencyTest, ZeroDemandTasksAreInfinitelyEfficient) {
  CapacitySnapshot snapshot(blocks_);
  Task t = MakeTask(1, {0}, 0.0, 0.0);
  std::vector<size_t> best_alpha = {0, 0};
  EXPECT_EQ(DpfEfficiency(t, snapshot), std::numeric_limits<double>::infinity());
  EXPECT_EQ(AreaEfficiency(t, snapshot), std::numeric_limits<double>::infinity());
  EXPECT_EQ(DpackEfficiency(t, snapshot, best_alpha),
            std::numeric_limits<double>::infinity());
}

TEST_F(EfficiencyTest, DpfShareIsStaticUnderConsumption) {
  // PrivateKube's DPF computes dominant shares against the fixed global budget: consuming
  // budget does not change a task's share (the filter, not the metric, blocks allocation).
  Task t = MakeTask(1, {0}, 0.1, 0.1);
  CapacitySnapshot before(blocks_);
  double share_before = DominantShare(t, before);
  blocks_.block(0).Commit(RdpCurve(grid_, {1.0, 2.0}));  // Deplete block 0 entirely.
  CapacitySnapshot after(blocks_);
  EXPECT_DOUBLE_EQ(DominantShare(t, after), share_before);
}

TEST_F(EfficiencyTest, SnapshotReflectsUnlockedFractionAndConsumption) {
  blocks_.block(0).Commit(RdpCurve(grid_, {0.25, 0.0}));
  CapacitySnapshot snapshot(blocks_);
  EXPECT_DOUBLE_EQ(snapshot.available(0).epsilon(0), 0.75);
  EXPECT_DOUBLE_EQ(snapshot.available(0).epsilon(1), 2.0);
  EXPECT_DOUBLE_EQ(snapshot.available(1).epsilon(0), 1.0);
}

TEST_F(EfficiencyTest, ComputeBestAlphasPicksPackingOrder) {
  // Three tasks on block 0 fitting at order 0 (0.3 each <= 1.0) but only one at order 1
  // (1.9 each vs capacity 2.0).
  std::vector<Task> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back(MakeTask(i, {0}, 0.3, 1.9));
  }
  CapacitySnapshot snapshot(blocks_);
  std::vector<size_t> best = ComputeBestAlphas(tasks, snapshot, 0.05);
  EXPECT_EQ(best[0], 0u);
}

TEST_F(EfficiencyTest, ComputeBestAlphasWeighted) {
  // At order 0 only the light 0.9-demand task fits (weight 1); at order 1 the two heavy
  // tasks fit (total weight 10): best alpha must be order 1.
  std::vector<Task> tasks;
  tasks.push_back(MakeTask(0, {0}, 0.9, 2.5, /*weight=*/1.0));
  tasks.push_back(MakeTask(1, {0}, 0.8, 1.0, /*weight=*/5.0));
  tasks.push_back(MakeTask(2, {0}, 0.8, 1.0, /*weight=*/5.0));
  CapacitySnapshot snapshot(blocks_);
  std::vector<size_t> best = ComputeBestAlphas(tasks, snapshot, 0.05);
  EXPECT_EQ(best[0], 1u);
}

TEST_F(EfficiencyTest, ComputeBestAlphasUnrequestedBlockGetsLargestCapacity) {
  std::vector<Task> tasks;
  tasks.push_back(MakeTask(0, {0}, 0.3, 0.3));
  CapacitySnapshot snapshot(blocks_);
  std::vector<size_t> best = ComputeBestAlphas(tasks, snapshot, 0.05);
  EXPECT_EQ(best[1], 1u);  // Capacity 2.0 > 1.0.
}

TEST_F(EfficiencyTest, Property4SingleOrderDpackEqualsArea) {
  // Prop. 4: with one alpha dimension, DPack's metric reduces to the area metric (Eq. 4).
  AlphaGridPtr grid1 = AlphaGrid::TraditionalDp();
  BlockManager blocks(grid1, 10.0, 1e-7);
  blocks.AddBlockWithCapacity(RdpCurve(grid1, {2.0}), 0.0, true);
  blocks.AddBlockWithCapacity(RdpCurve(grid1, {4.0}), 0.0, true);
  CapacitySnapshot snapshot(blocks);
  std::vector<size_t> best_alpha = {0, 0};
  for (double d : {0.1, 0.5, 1.0, 1.9}) {
    Task t(0, 1.5, RdpCurve(grid1, {d}));
    t.blocks = {0, 1};
    EXPECT_DOUBLE_EQ(DpackEfficiency(t, snapshot, best_alpha), AreaEfficiency(t, snapshot));
  }
}

}  // namespace
}  // namespace dpack
