#include "src/workload/microbenchmark.h"

#include <set>

#include <gtest/gtest.h>

#include "src/workload/workload_stats.h"

namespace dpack {
namespace {

class MicrobenchmarkTest : public testing::Test {
 protected:
  MicrobenchmarkTest()
      : grid_(AlphaGrid::Default()),
        capacity_(BlockCapacityCurve(grid_, 10.0, 1e-7)),
        pool_(grid_, capacity_) {}

  AlphaGridPtr grid_;
  RdpCurve capacity_;
  CurvePool pool_;
};

TEST_F(MicrobenchmarkTest, GeneratesRequestedCount) {
  MicrobenchmarkConfig config;
  config.num_tasks = 100;
  std::vector<Task> tasks = GenerateMicrobenchmark(pool_, config);
  EXPECT_EQ(tasks.size(), 100u);
  for (const Task& t : tasks) {
    EXPECT_DOUBLE_EQ(t.weight, 1.0);
    EXPECT_DOUBLE_EQ(t.arrival_time, 0.0);
    EXPECT_FALSE(t.blocks.empty());
  }
}

TEST_F(MicrobenchmarkTest, ZeroSigmaBlocksGivesConstantBlockCount) {
  MicrobenchmarkConfig config;
  config.num_tasks = 50;
  config.mu_blocks = 10.0;
  config.sigma_blocks = 0.0;
  std::vector<Task> tasks = GenerateMicrobenchmark(pool_, config);
  for (const Task& t : tasks) {
    EXPECT_EQ(t.blocks.size(), 10u);
  }
}

TEST_F(MicrobenchmarkTest, SigmaBlocksIncreasesSpread) {
  MicrobenchmarkConfig narrow;
  narrow.num_tasks = 400;
  narrow.sigma_blocks = 0.0;
  MicrobenchmarkConfig wide = narrow;
  wide.sigma_blocks = 3.0;
  WorkloadStats s_narrow =
      ComputeWorkloadStats(GenerateMicrobenchmark(pool_, narrow), capacity_);
  WorkloadStats s_wide = ComputeWorkloadStats(GenerateMicrobenchmark(pool_, wide), capacity_);
  EXPECT_GT(s_wide.blocks_per_task.stddev(), s_narrow.blocks_per_task.stddev());
}

TEST_F(MicrobenchmarkTest, ZeroSigmaAlphaConcentratesOnCenterBucket) {
  MicrobenchmarkConfig config;
  config.num_tasks = 100;
  config.sigma_alpha = 0.0;
  config.center_alpha = 5.0;
  std::vector<Task> tasks = GenerateMicrobenchmark(pool_, config);
  WorkloadStats stats = ComputeWorkloadStats(tasks, capacity_);
  size_t idx5 = grid_->IndexOf(5.0);
  EXPECT_EQ(stats.best_alpha_counts[idx5], tasks.size());
}

TEST_F(MicrobenchmarkTest, SigmaAlphaSpreadsBestAlphas) {
  MicrobenchmarkConfig config;
  config.num_tasks = 500;
  config.sigma_alpha = 4.0;
  std::vector<Task> tasks = GenerateMicrobenchmark(pool_, config);
  WorkloadStats stats = ComputeWorkloadStats(tasks, capacity_);
  size_t distinct = 0;
  for (size_t count : stats.best_alpha_counts) {
    if (count > 0) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 4u);
}

TEST_F(MicrobenchmarkTest, EpsMinIsConstantAcrossTasks) {
  MicrobenchmarkConfig config;
  config.num_tasks = 80;
  config.sigma_alpha = 3.0;
  config.eps_min = 0.05;
  std::vector<Task> tasks = GenerateMicrobenchmark(pool_, config);
  for (const Task& t : tasks) {
    EXPECT_NEAR(pool_.NormalizedEpsMin(t.demand), 0.05, 1e-9);
  }
}

TEST_F(MicrobenchmarkTest, DeterministicForSeed) {
  MicrobenchmarkConfig config;
  config.num_tasks = 60;
  config.sigma_alpha = 2.0;
  config.sigma_blocks = 1.0;
  config.seed = 77;
  std::vector<Task> a = GenerateMicrobenchmark(pool_, config);
  std::vector<Task> b = GenerateMicrobenchmark(pool_, config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].blocks, b[i].blocks);
    EXPECT_EQ(a[i].demand.epsilons(), b[i].demand.epsilons());
  }
}

TEST_F(MicrobenchmarkTest, BlocksAreDistinctAndInRange) {
  MicrobenchmarkConfig config;
  config.num_tasks = 100;
  config.sigma_blocks = 5.0;
  config.num_blocks = 12;
  std::vector<Task> tasks = GenerateMicrobenchmark(pool_, config);
  for (const Task& t : tasks) {
    std::set<BlockId> unique(t.blocks.begin(), t.blocks.end());
    EXPECT_EQ(unique.size(), t.blocks.size());
    for (BlockId b : t.blocks) {
      EXPECT_GE(b, 0);
      EXPECT_LT(b, 12);
    }
  }
}

}  // namespace
}  // namespace dpack
