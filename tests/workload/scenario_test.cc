// Scenario generator determinism and registry contracts (ISSUE 5): same spec + seed must
// produce byte-identical task and block streams across repeated generations AND across a
// generate -> export -> reload cycle, every registered scenario must generate a well-formed
// workload (valid block references, arrival-sorted streams), and the registry must exercise
// the knob axes it claims (explicit lists, bursts, cohorts, timeouts, weighted tasks).

#include "src/workload/scenario.h"

#include <cmath>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "src/workload/curve_pool.h"
#include "src/workload/trace_io.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

const CurvePool& Pool() {
  static const CurvePool pool(Grid(), BlockCapacityCurve(Grid(), 10.0, 1e-7));
  return pool;
}

// Exact (bit-level) task equality: the determinism the differential harness builds on.
void ExpectTasksIdentical(const std::vector<Task>& a, const std::vector<Task>& b,
                          const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label << " task " << i;
    EXPECT_EQ(a[i].weight, b[i].weight) << label << " task " << i;
    EXPECT_EQ(a[i].arrival_time, b[i].arrival_time) << label << " task " << i;
    // Infinity compares equal to itself, so == covers the no-timeout case too.
    EXPECT_EQ(a[i].timeout, b[i].timeout) << label << " task " << i;
    EXPECT_EQ(a[i].blocks, b[i].blocks) << label << " task " << i;
    EXPECT_EQ(a[i].num_recent_blocks, b[i].num_recent_blocks) << label << " task " << i;
    EXPECT_EQ(a[i].demand.epsilons(), b[i].demand.epsilons()) << label << " task " << i;
  }
}

TEST(ScenarioDeterminismTest, SameSpecAndSeedIsByteIdenticalAcrossGenerations) {
  for (const std::string& name : ScenarioRegistryNames()) {
    ScenarioSpec spec = ScenarioByName(name, /*seed=*/42);
    ScenarioWorkload first = GenerateScenario(Pool(), spec);
    ScenarioWorkload second = GenerateScenario(Pool(), spec);
    ExpectTasksIdentical(first.tasks, second.tasks, name);
    EXPECT_EQ(first.sim.block_arrival_times, second.sim.block_arrival_times) << name;
    EXPECT_EQ(first.sim.unlock_steps, second.sim.unlock_steps) << name;
  }
}

TEST(ScenarioDeterminismTest, DifferentSeedsDiverge) {
  // Not a tautology: a generator that ignored its seed would still pass determinism.
  ScenarioWorkload a = GenerateScenario(Pool(), ScenarioByName("steady_poisson", 1));
  ScenarioWorkload b = GenerateScenario(Pool(), ScenarioByName("steady_poisson", 2));
  bool identical = a.tasks.size() == b.tasks.size();
  if (identical) {
    for (size_t i = 0; i < a.tasks.size(); ++i) {
      if (a.tasks[i].arrival_time != b.tasks[i].arrival_time ||
          a.tasks[i].demand.epsilons() != b.tasks[i].demand.epsilons()) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(ScenarioDeterminismTest, ExportReloadCycleIsExact) {
  // generate -> export -> reload preserves every field the stream is defined by, including
  // explicit block lists (the trace_io v2 column), so a scenario shipped as a portable CSV
  // trace replays the exact same workload.
  for (const std::string& name : ScenarioRegistryNames()) {
    ScenarioWorkload generated = GenerateScenario(Pool(), ScenarioByName(name, /*seed=*/7));
    std::stringstream buffer;
    ASSERT_TRUE(WriteTrace(buffer, generated.tasks, Grid())) << name;
    std::vector<Task> reloaded = ReadTrace(buffer, Grid());
    ExpectTasksIdentical(generated.tasks, reloaded, name);
  }
}

TEST(ScenarioDeterminismTest, ReExportIsByteIdentical) {
  // export(reload(export(w))) == export(w): the CSV encoding itself is canonical.
  ScenarioWorkload generated = GenerateScenario(Pool(), ScenarioByName("cohort_skew", 11));
  std::stringstream first;
  ASSERT_TRUE(WriteTrace(first, generated.tasks, Grid()));
  std::vector<Task> reloaded = ReadTrace(first, Grid());
  std::stringstream second;
  ASSERT_TRUE(WriteTrace(second, reloaded, Grid()));
  EXPECT_EQ(first.str(), second.str());
}

TEST(ScenarioRegistryTest, NamesAreUniqueAndResolvable) {
  std::vector<std::string> names = ScenarioRegistryNames();
  ASSERT_GE(names.size(), 5u);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const std::string& name : names) {
    ScenarioSpec spec = ScenarioByName(name, /*seed=*/3);
    EXPECT_EQ(spec.name, name);
    EXPECT_EQ(spec.seed, 3u);
  }
}

TEST(ScenarioRegistryTest, EveryScenarioGeneratesAWellFormedWorkload) {
  for (const std::string& name : ScenarioRegistryNames()) {
    ScenarioWorkload w = GenerateScenario(Pool(), ScenarioByName(name, /*seed=*/5));
    EXPECT_GT(w.tasks.size(), 10u) << name;
    ASSERT_FALSE(w.sim.block_arrival_times.empty()) << name;
    EXPECT_EQ(w.sim.num_blocks, w.sim.block_arrival_times.size()) << name;
    for (size_t b = 1; b < w.sim.block_arrival_times.size(); ++b) {
      EXPECT_LE(w.sim.block_arrival_times[b - 1], w.sim.block_arrival_times[b]) << name;
    }
    double prev_arrival = 0.0;
    for (const Task& task : w.tasks) {
      EXPECT_GE(task.arrival_time, prev_arrival) << name << " task " << task.id;
      prev_arrival = task.arrival_time;
      EXPECT_GT(task.weight, 0.0) << name;
      // Exactly one block-request convention per task: an explicit list (and no recent
      // count), or a positive most-recent count (and no list).
      EXPECT_EQ(task.blocks.empty(), task.num_recent_blocks > 0) << name;
      for (size_t b = 0; b < task.blocks.size(); ++b) {
        ASSERT_GE(task.blocks[b], 0) << name;
        ASSERT_LT(static_cast<size_t>(task.blocks[b]), w.sim.num_blocks) << name;
        if (b > 0) {
          EXPECT_LT(task.blocks[b - 1], task.blocks[b]) << name;  // Sorted, distinct.
        }
        // An explicit reference is only valid if the block has arrived by the task's
        // instant (block events fire first at equal timestamps).
        EXPECT_LE(w.sim.block_arrival_times[static_cast<size_t>(task.blocks[b])],
                  task.arrival_time)
            << name << " task " << task.id;
      }
    }
  }
}

TEST(ScenarioRegistryTest, RegistryCoversTheClaimedStressAxes) {
  // The registry's value is diversity; these assertions keep future edits from quietly
  // collapsing the axes the matrix suite believes it is sweeping.
  ScenarioWorkload hotspot = GenerateScenario(Pool(), ScenarioByName("bursty_hotspot", 5));
  size_t explicit_lists = 0;
  size_t finite_timeouts = 0;
  size_t weighted = 0;
  for (const Task& task : hotspot.tasks) {
    explicit_lists += task.blocks.empty() ? 0 : 1;
    finite_timeouts += std::isinf(task.timeout) ? 0 : 1;
    weighted += task.weight != 1.0 ? 1 : 0;
  }
  EXPECT_GT(explicit_lists, 0u);
  EXPECT_GT(finite_timeouts, 0u);
  EXPECT_GT(weighted, 0u);

  ScenarioWorkload cohorts = GenerateScenario(Pool(), ScenarioByName("cohort_skew", 5));
  std::set<double> cohort_instants(cohorts.sim.block_arrival_times.begin(),
                                   cohorts.sim.block_arrival_times.end());
  EXPECT_LT(cohort_instants.size(), cohorts.sim.block_arrival_times.size());

  ScenarioWorkload jittered = GenerateScenario(Pool(), ScenarioByName("jittered_heavy", 5));
  bool off_grid = false;
  for (size_t b = 0; b < jittered.sim.block_arrival_times.size(); ++b) {
    if (jittered.sim.block_arrival_times[b] != static_cast<double>(b)) {
      off_grid = true;
    }
  }
  EXPECT_TRUE(off_grid);
}

TEST(ScenarioRegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(ScenarioByName("no_such_scenario"), "unknown scenario");
}

}  // namespace
}  // namespace dpack
