#include "src/workload/alibaba.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/workload/workload_stats.h"

namespace dpack {
namespace {

class AlibabaTest : public testing::Test {
 protected:
  AlibabaTest()
      : grid_(AlphaGrid::Default()),
        capacity_(BlockCapacityCurve(grid_, 10.0, 1e-7)),
        pool_(grid_, capacity_) {}

  std::vector<Task> Generate(size_t n, uint64_t seed = 1) {
    AlibabaConfig config;
    config.num_tasks = n;
    config.arrival_span = 30.0;
    config.seed = seed;
    return GenerateAlibabaDp(pool_, config);
  }

  AlphaGridPtr grid_;
  RdpCurve capacity_;
  CurvePool pool_;
};

TEST_F(AlibabaTest, RespectsTruncationRules) {
  std::vector<Task> tasks = Generate(2000);
  for (const Task& t : tasks) {
    double eps_min = pool_.NormalizedEpsMin(t.demand);
    EXPECT_GE(eps_min, 0.001 - 1e-9);
    EXPECT_LE(eps_min, 1.0 + 1e-9);
    EXPECT_GE(t.num_recent_blocks, 1u);
    EXPECT_LE(t.num_recent_blocks, 100u);
  }
}

TEST_F(AlibabaTest, ArrivalsSortedWithinSpan) {
  std::vector<Task> tasks = Generate(500);
  EXPECT_TRUE(std::is_sorted(tasks.begin(), tasks.end(),
                             [](const Task& a, const Task& b) {
                               return a.arrival_time < b.arrival_time;
                             }));
  for (const Task& t : tasks) {
    EXPECT_GE(t.arrival_time, 0.0);
    EXPECT_LT(t.arrival_time, 30.0);
  }
}

TEST_F(AlibabaTest, HeavyTailedDemands) {
  // Memory -> epsilon proxy: many small demands, a long tail of large ones.
  std::vector<Task> tasks = Generate(5000);
  WorkloadStats stats = ComputeWorkloadStats(tasks, capacity_);
  EXPECT_LT(stats.eps_min.mean(), 0.2);  // Mostly small.
  double max_eps = 0.0;
  for (const Task& t : tasks) {
    max_eps = std::max(max_eps, pool_.NormalizedEpsMin(t.demand));
  }
  EXPECT_GT(max_eps, 0.5);  // But a heavy tail exists.
}

TEST_F(AlibabaTest, BlockRequestHeterogeneity) {
  // The property DPack exploits: substantial variance in requested block counts.
  std::vector<Task> tasks = Generate(5000);
  WorkloadStats stats = ComputeWorkloadStats(tasks, capacity_);
  EXPECT_GT(stats.blocks_per_task.variation_coefficient(), 0.5);
  EXPECT_GT(stats.FractionRequestingAtMost(2), 0.3);  // Many small requests.
}

TEST_F(AlibabaTest, BestAlphaHeterogeneity) {
  // CPU (Laplace/Gaussian) and GPU (subsampled compositions) mechanisms spread best alphas
  // over several orders.
  std::vector<Task> tasks = Generate(3000);
  WorkloadStats stats = ComputeWorkloadStats(tasks, capacity_);
  size_t distinct = 0;
  for (size_t count : stats.best_alpha_counts) {
    if (count > 20) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 3u);
}

TEST_F(AlibabaTest, DeterministicForSeed) {
  std::vector<Task> a = Generate(300, 42);
  std::vector<Task> b = Generate(300, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].num_recent_blocks, b[i].num_recent_blocks);
    EXPECT_EQ(a[i].demand.epsilons(), b[i].demand.epsilons());
  }
}

TEST_F(AlibabaTest, SeedsProduceDifferentWorkloads) {
  std::vector<Task> a = Generate(100, 1);
  std::vector<Task> b = Generate(100, 2);
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].num_recent_blocks != b[i].num_recent_blocks) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace dpack
