#include "src/workload/amazon.h"

#include <set>

#include <gtest/gtest.h>

#include "src/workload/workload_stats.h"

namespace dpack {
namespace {

class AmazonTest : public testing::Test {
 protected:
  AmazonTest()
      : grid_(AlphaGrid::Default()),
        capacity_(BlockCapacityCurve(grid_, 10.0, 1e-7)),
        pool_(grid_, capacity_) {}

  std::vector<Task> Generate(double rate, bool weighted, uint64_t seed = 1) {
    AmazonConfig config;
    config.mean_tasks_per_block = rate;
    config.arrival_span = 10.0;
    config.weighted = weighted;
    config.seed = seed;
    return GenerateAmazon(pool_, config);
  }

  AlphaGridPtr grid_;
  RdpCurve capacity_;
  CurvePool pool_;
};

TEST(AmazonCatalogTest, Has42TypesWithPaperSplit) {
  std::vector<AmazonTaskType> catalog = AmazonTaskCatalog();
  ASSERT_EQ(catalog.size(), 42u);
  size_t large = 0;
  for (const auto& type : catalog) {
    if (type.is_large) {
      ++large;
    }
    EXPECT_GE(type.num_recent_blocks, 1u);
    EXPECT_LE(type.num_recent_blocks, 50u);
  }
  EXPECT_EQ(large, 24u);  // 24 NN types, 18 statistics types.
}

TEST(AmazonCatalogTest, StatisticsAreSingleBlockLaplace) {
  for (const auto& type : AmazonTaskCatalog()) {
    if (!type.is_large) {
      EXPECT_EQ(type.mechanism.type, MechanismType::kLaplace);
      EXPECT_EQ(type.num_recent_blocks, 1u);
    } else {
      EXPECT_EQ(type.mechanism.type, MechanismType::kComposedSubsampledGaussian);
    }
  }
}

TEST_F(AmazonTest, ArrivalRateApproximatelyCorrect) {
  std::vector<Task> tasks = Generate(500.0, false);
  // 500/block over 10 blocks: ~5000 tasks (Poisson).
  EXPECT_GT(tasks.size(), 4500u);
  EXPECT_LT(tasks.size(), 5500u);
}

TEST_F(AmazonTest, BlockRequestSkewMatchesPaper) {
  // ~63% request 1 block, >= 90% request <= 5, max 50 (§6.3).
  std::vector<Task> tasks = Generate(400.0, false);
  WorkloadStats stats = ComputeWorkloadStats(tasks, capacity_);
  EXPECT_NEAR(stats.FractionRequestingAtMost(1), 0.63, 0.08);
  EXPECT_GT(stats.FractionRequestingAtMost(5), 0.88);
  EXPECT_LE(stats.blocks_per_task.max(), 50.0);
}

TEST_F(AmazonTest, BestAlphasConcentrateOnMidOrders) {
  // The paper reports best alphas in {4, 5} with 81% at 5; our analytic curves concentrate
  // on the mid orders 4-6. Verify concentration (>= 80% within {4, 5, 6}).
  std::vector<Task> tasks = Generate(400.0, false);
  WorkloadStats stats = ComputeWorkloadStats(tasks, capacity_);
  size_t mid = stats.best_alpha_counts[grid_->IndexOf(4.0)] +
               stats.best_alpha_counts[grid_->IndexOf(5.0)] +
               stats.best_alpha_counts[grid_->IndexOf(6.0)];
  EXPECT_GT(static_cast<double>(mid) / static_cast<double>(tasks.size()), 0.8);
}

TEST_F(AmazonTest, UnweightedTasksHaveWeightOne) {
  for (const Task& t : Generate(100.0, false)) {
    EXPECT_DOUBLE_EQ(t.weight, 1.0);
  }
}

TEST_F(AmazonTest, WeightsDrawnFromPaperGrids) {
  std::set<double> allowed = {1.0, 5.0, 10.0, 50.0, 100.0, 500.0};
  std::set<double> seen;
  for (const Task& t : Generate(300.0, true)) {
    EXPECT_TRUE(allowed.count(t.weight)) << t.weight;
    seen.insert(t.weight);
  }
  EXPECT_GE(seen.size(), 4u);  // Both grids are exercised.
}

TEST_F(AmazonTest, WeightingAddsUtilityHeterogeneity) {
  // §6.3: random weights give tasks heterogeneous utility (unweighted tasks have none).
  std::vector<Task> unweighted = Generate(300.0, false);
  std::vector<Task> weighted = Generate(300.0, true);
  auto weight_cv = [](const std::vector<Task>& tasks) {
    RunningStat stat;
    for (const Task& t : tasks) {
      stat.Add(t.weight);
    }
    return stat.variation_coefficient();
  };
  EXPECT_DOUBLE_EQ(weight_cv(unweighted), 0.0);
  EXPECT_GT(weight_cv(weighted), 0.5);
}

TEST_F(AmazonTest, DeterministicForSeed) {
  std::vector<Task> a = Generate(100.0, true, 5);
  std::vector<Task> b = Generate(100.0, true, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
  }
}

}  // namespace
}  // namespace dpack
