#include "src/workload/trace_io.h"

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "src/workload/alibaba.h"
#include "src/workload/curve_pool.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

std::vector<Task> SampleWorkload(size_t n) {
  CurvePool pool(Grid(), BlockCapacityCurve(Grid(), 10.0, 1e-7));
  AlibabaConfig config;
  config.num_tasks = n;
  config.arrival_span = 10.0;
  config.seed = 3;
  return GenerateAlibabaDp(pool, config);
}

TEST(TraceIoTest, RoundTripsTasksExactly) {
  std::vector<Task> tasks = SampleWorkload(50);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(buffer, tasks, Grid()));
  std::vector<Task> loaded = ReadTrace(buffer, Grid());
  ASSERT_EQ(loaded.size(), tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(loaded[i].id, tasks[i].id);
    EXPECT_DOUBLE_EQ(loaded[i].weight, tasks[i].weight);
    EXPECT_DOUBLE_EQ(loaded[i].arrival_time, tasks[i].arrival_time);
    EXPECT_EQ(loaded[i].num_recent_blocks, tasks[i].num_recent_blocks);
    EXPECT_EQ(loaded[i].demand.epsilons(), tasks[i].demand.epsilons());
  }
}

TEST(TraceIoTest, InfiniteTimeoutRoundTrips) {
  std::vector<Task> tasks = SampleWorkload(3);
  tasks[0].timeout = std::numeric_limits<double>::infinity();
  tasks[1].timeout = 12.5;
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(buffer, tasks, Grid()));
  std::vector<Task> loaded = ReadTrace(buffer, Grid());
  EXPECT_TRUE(std::isinf(loaded[0].timeout));
  EXPECT_DOUBLE_EQ(loaded[1].timeout, 12.5);
}

TEST(TraceIoTest, FileRoundTrip) {
  std::vector<Task> tasks = SampleWorkload(10);
  std::string path = testing::TempDir() + "/dpack_trace_test.csv";
  ASSERT_TRUE(WriteTraceFile(path, tasks, Grid()));
  std::vector<Task> loaded = ReadTraceFile(path, Grid());
  EXPECT_EQ(loaded.size(), tasks.size());
  std::remove(path.c_str());
}

TEST(TraceIoDeathTest, RejectsWrongMagic) {
  std::stringstream buffer("not_a_trace,1.5\nheader\n");
  EXPECT_DEATH(ReadTrace(buffer, Grid()), "not a dpack trace");
}

TEST(TraceIoDeathTest, RejectsGridMismatch) {
  std::vector<Task> tasks;
  Task t(0, 1.0, RdpCurve(AlphaGrid::TraditionalDp()));
  t.num_recent_blocks = 1;
  tasks.push_back(t);
  std::stringstream buffer;
  WriteTrace(buffer, tasks, AlphaGrid::TraditionalDp());
  EXPECT_DEATH(ReadTrace(buffer, Grid()), "grid");
}

TEST(TraceIoTest, ResolvedBlockListsExportAsRecentCount) {
  std::vector<Task> tasks = SampleWorkload(1);
  tasks[0].blocks = {0, 1, 2};  // Resolved list exports as a count of 3.
  std::stringstream buffer;
  WriteTrace(buffer, tasks, Grid());
  std::vector<Task> loaded = ReadTrace(buffer, Grid());
  EXPECT_TRUE(loaded[0].blocks.empty());
  EXPECT_EQ(loaded[0].num_recent_blocks, 3u);
}

}  // namespace
}  // namespace dpack
