#include "src/workload/trace_io.h"

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "src/workload/alibaba.h"
#include "src/workload/curve_pool.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

std::vector<Task> SampleWorkload(size_t n) {
  CurvePool pool(Grid(), BlockCapacityCurve(Grid(), 10.0, 1e-7));
  AlibabaConfig config;
  config.num_tasks = n;
  config.arrival_span = 10.0;
  config.seed = 3;
  return GenerateAlibabaDp(pool, config);
}

TEST(TraceIoTest, RoundTripsTasksExactly) {
  std::vector<Task> tasks = SampleWorkload(50);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(buffer, tasks, Grid()));
  std::vector<Task> loaded = ReadTrace(buffer, Grid());
  ASSERT_EQ(loaded.size(), tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(loaded[i].id, tasks[i].id);
    EXPECT_DOUBLE_EQ(loaded[i].weight, tasks[i].weight);
    EXPECT_DOUBLE_EQ(loaded[i].arrival_time, tasks[i].arrival_time);
    EXPECT_EQ(loaded[i].num_recent_blocks, tasks[i].num_recent_blocks);
    EXPECT_EQ(loaded[i].demand.epsilons(), tasks[i].demand.epsilons());
  }
}

TEST(TraceIoTest, InfiniteTimeoutRoundTrips) {
  std::vector<Task> tasks = SampleWorkload(3);
  tasks[0].timeout = std::numeric_limits<double>::infinity();
  tasks[1].timeout = 12.5;
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(buffer, tasks, Grid()));
  std::vector<Task> loaded = ReadTrace(buffer, Grid());
  EXPECT_TRUE(std::isinf(loaded[0].timeout));
  EXPECT_DOUBLE_EQ(loaded[1].timeout, 12.5);
}

TEST(TraceIoTest, FileRoundTrip) {
  std::vector<Task> tasks = SampleWorkload(10);
  std::string path = testing::TempDir() + "/dpack_trace_test.csv";
  ASSERT_TRUE(WriteTraceFile(path, tasks, Grid()));
  std::vector<Task> loaded = ReadTraceFile(path, Grid());
  EXPECT_EQ(loaded.size(), tasks.size());
  std::remove(path.c_str());
}

TEST(TraceIoDeathTest, RejectsWrongMagic) {
  std::stringstream buffer("not_a_trace,1.5\nheader\n");
  EXPECT_DEATH(ReadTrace(buffer, Grid()), "not a dpack trace");
}

TEST(TraceIoDeathTest, RejectsGridMismatch) {
  std::vector<Task> tasks;
  Task t(0, 1.0, RdpCurve(AlphaGrid::TraditionalDp()));
  t.num_recent_blocks = 1;
  tasks.push_back(t);
  std::stringstream buffer;
  WriteTrace(buffer, tasks, AlphaGrid::TraditionalDp());
  EXPECT_DEATH(ReadTrace(buffer, Grid()), "grid");
}

TEST(TraceIoTest, ExplicitBlockListsRoundTripExactly) {
  // The v2 format's reason to exist (ISSUE 5): explicit per-task block lists — what the
  // scenario generator's uniform/hot-spot selection policies emit — survive export/reload
  // bit-exactly instead of degrading to a most-recent count.
  std::vector<Task> tasks = SampleWorkload(3);
  tasks[0].blocks = {0, 1, 2};
  tasks[0].num_recent_blocks = 0;
  tasks[1].blocks = {7};
  tasks[1].num_recent_blocks = 0;
  // tasks[2] stays on the most-recent convention; both kinds share one file.
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(buffer, tasks, Grid()));
  std::vector<Task> loaded = ReadTrace(buffer, Grid());
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].blocks, (std::vector<BlockId>{0, 1, 2}));
  EXPECT_EQ(loaded[0].num_recent_blocks, 0u);
  EXPECT_EQ(loaded[1].blocks, (std::vector<BlockId>{7}));
  EXPECT_TRUE(loaded[2].blocks.empty());
  EXPECT_EQ(loaded[2].num_recent_blocks, tasks[2].num_recent_blocks);
}

TEST(TraceIoTest, V1TracesStillLoad) {
  // Round-trip a v2 write, then rewrite its header to the v1 layout (drop the blocks
  // column) and check the legacy path parses it with most-recent semantics.
  std::vector<Task> tasks = SampleWorkload(2);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::string text = v2.str();
  size_t magic = text.find("dpack_trace_v2");
  ASSERT_NE(magic, std::string::npos);
  text.replace(magic, 14, "dpack_trace_v1");
  size_t blocks_col = text.find(",blocks");
  ASSERT_NE(blocks_col, std::string::npos);
  text.erase(blocks_col, 7);
  // v2 rows of most-recent tasks have an empty blocks cell (",,"): collapse it to v1 rows.
  size_t pos;
  while ((pos = text.find(",,")) != std::string::npos) {
    text.erase(pos, 1);
  }
  std::stringstream v1(text);
  std::vector<Task> loaded = ReadTrace(v1, Grid());
  ASSERT_EQ(loaded.size(), tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(loaded[i].num_recent_blocks, tasks[i].num_recent_blocks);
    EXPECT_TRUE(loaded[i].blocks.empty());
    EXPECT_EQ(loaded[i].demand.epsilons(), tasks[i].demand.epsilons());
  }
}

TEST(TraceIoDeathTest, RejectsV1TraceClaimingExplicitLists) {
  // A v1 magic with a blocks column is a confused producer: v1 never defined explicit-list
  // semantics, and guessing the row layout could misread a privacy demand.
  std::vector<Task> tasks = SampleWorkload(1);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::string text = v2.str();
  text.replace(text.find("dpack_trace_v2"), 14, "dpack_trace_v1");
  std::stringstream tampered(text);
  EXPECT_DEATH(ReadTrace(tampered, Grid()), "v1 trace cannot carry explicit block lists");
}

TEST(TraceIoDeathTest, RejectsV2TraceWithoutBlocksColumn) {
  std::vector<Task> tasks = SampleWorkload(1);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::string text = v2.str();
  size_t blocks_col = text.find(",blocks");
  ASSERT_NE(blocks_col, std::string::npos);
  text.erase(blocks_col, 7);
  std::stringstream tampered(text);
  EXPECT_DEATH(ReadTrace(tampered, Grid()), "v2 trace missing the blocks column");
}

TEST(TraceIoDeathTest, RejectsMalformedBlocksCell) {
  std::vector<Task> tasks = SampleWorkload(1);
  tasks[0].blocks = {0, 1};
  tasks[0].num_recent_blocks = 0;
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::string text = v2.str();
  size_t cell = text.find(",0;1,");
  ASSERT_NE(cell, std::string::npos);
  {
    std::string bad = text;
    bad.replace(cell, 5, ",0;x,");  // Non-numeric id.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    std::string bad = text;
    bad.replace(cell, 5, ",0;;1,");  // Empty token.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    std::string bad = text;
    bad.replace(cell, 5, ",-1;1,");  // Negative id.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    // Duplicate id: loading it would double-commit the demand to block 0 on grant,
    // silently overcharging its privacy budget.
    std::string bad = text;
    bad.replace(cell, 5, ",0;0,");
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    std::string bad = text;
    bad.replace(cell, 5, ",1;0,");  // Out of order.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    // An id too long for int64: must be rejected as malformed, not crash in stoll.
    std::string bad = text;
    bad.replace(cell, 5, ",0;9223372036854775808,");
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    std::string bad = text;
    bad.replace(cell, 5, ",0;1;,");  // Trailing separator: non-canonical encoding.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    std::string bad = text;
    bad.replace(cell, 5, ",00;1,");  // Leading zero: non-canonical encoding.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
}

TEST(TraceIoDeathTest, RejectsReorderedColumnHeader) {
  // The row parse is positional; a header whose fixed columns moved must be rejected, not
  // silently read with a demand or block list pulled from the wrong cell.
  std::vector<Task> tasks = SampleWorkload(1);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::string text = v2.str();
  size_t prefix = text.find("num_recent_blocks,blocks");
  ASSERT_NE(prefix, std::string::npos);
  text.replace(prefix, 24, "blocks,num_recent_blocks");
  std::stringstream tampered(text);
  EXPECT_DEATH(ReadTrace(tampered, Grid()), "trace column header mismatch");
}

}  // namespace
}  // namespace dpack
