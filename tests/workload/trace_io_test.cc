#include "src/workload/trace_io.h"

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "src/workload/alibaba.h"
#include "src/workload/curve_pool.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

std::vector<Task> SampleWorkload(size_t n) {
  CurvePool pool(Grid(), BlockCapacityCurve(Grid(), 10.0, 1e-7));
  AlibabaConfig config;
  config.num_tasks = n;
  config.arrival_span = 10.0;
  config.seed = 3;
  return GenerateAlibabaDp(pool, config);
}

TEST(TraceIoTest, RoundTripsTasksExactly) {
  std::vector<Task> tasks = SampleWorkload(50);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(buffer, tasks, Grid()));
  std::vector<Task> loaded = ReadTrace(buffer, Grid());
  ASSERT_EQ(loaded.size(), tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(loaded[i].id, tasks[i].id);
    EXPECT_DOUBLE_EQ(loaded[i].weight, tasks[i].weight);
    EXPECT_DOUBLE_EQ(loaded[i].arrival_time, tasks[i].arrival_time);
    EXPECT_EQ(loaded[i].num_recent_blocks, tasks[i].num_recent_blocks);
    EXPECT_EQ(loaded[i].demand.epsilons(), tasks[i].demand.epsilons());
  }
}

TEST(TraceIoTest, InfiniteTimeoutRoundTrips) {
  std::vector<Task> tasks = SampleWorkload(3);
  tasks[0].timeout = std::numeric_limits<double>::infinity();
  tasks[1].timeout = 12.5;
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(buffer, tasks, Grid()));
  std::vector<Task> loaded = ReadTrace(buffer, Grid());
  EXPECT_TRUE(std::isinf(loaded[0].timeout));
  EXPECT_DOUBLE_EQ(loaded[1].timeout, 12.5);
}

TEST(TraceIoTest, FileRoundTrip) {
  std::vector<Task> tasks = SampleWorkload(10);
  std::string path = testing::TempDir() + "/dpack_trace_test.csv";
  ASSERT_TRUE(WriteTraceFile(path, tasks, Grid()));
  std::vector<Task> loaded = ReadTraceFile(path, Grid());
  EXPECT_EQ(loaded.size(), tasks.size());
  std::remove(path.c_str());
}

TEST(TraceIoDeathTest, RejectsWrongMagic) {
  std::stringstream buffer("not_a_trace,1.5\nheader\n");
  EXPECT_DEATH(ReadTrace(buffer, Grid()), "not a dpack trace");
}

TEST(TraceIoDeathTest, RejectsGridMismatch) {
  std::vector<Task> tasks;
  Task t(0, 1.0, RdpCurve(AlphaGrid::TraditionalDp()));
  t.num_recent_blocks = 1;
  tasks.push_back(t);
  std::stringstream buffer;
  WriteTrace(buffer, tasks, AlphaGrid::TraditionalDp());
  EXPECT_DEATH(ReadTrace(buffer, Grid()), "grid");
}

TEST(TraceIoTest, ExplicitBlockListsRoundTripExactly) {
  // The v2 format's reason to exist (ISSUE 5): explicit per-task block lists — what the
  // scenario generator's uniform/hot-spot selection policies emit — survive export/reload
  // bit-exactly instead of degrading to a most-recent count.
  std::vector<Task> tasks = SampleWorkload(3);
  tasks[0].blocks = {0, 1, 2};
  tasks[0].num_recent_blocks = 0;
  tasks[1].blocks = {7};
  tasks[1].num_recent_blocks = 0;
  // tasks[2] stays on the most-recent convention; both kinds share one file.
  std::stringstream buffer;
  ASSERT_TRUE(WriteTrace(buffer, tasks, Grid()));
  std::vector<Task> loaded = ReadTrace(buffer, Grid());
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].blocks, (std::vector<BlockId>{0, 1, 2}));
  EXPECT_EQ(loaded[0].num_recent_blocks, 0u);
  EXPECT_EQ(loaded[1].blocks, (std::vector<BlockId>{7}));
  EXPECT_TRUE(loaded[2].blocks.empty());
  EXPECT_EQ(loaded[2].num_recent_blocks, tasks[2].num_recent_blocks);
}

TEST(TraceIoTest, V1TracesStillLoad) {
  // Round-trip a v2 write, then rewrite its header to the v1 layout (drop the blocks
  // column) and check the legacy path parses it with most-recent semantics.
  std::vector<Task> tasks = SampleWorkload(2);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::string text = v2.str();
  size_t magic = text.find("dpack_trace_v2");
  ASSERT_NE(magic, std::string::npos);
  text.replace(magic, 14, "dpack_trace_v1");
  size_t blocks_col = text.find(",blocks");
  ASSERT_NE(blocks_col, std::string::npos);
  text.erase(blocks_col, 7);
  // v2 rows of most-recent tasks have an empty blocks cell (",,"): collapse it to v1 rows.
  size_t pos;
  while ((pos = text.find(",,")) != std::string::npos) {
    text.erase(pos, 1);
  }
  std::stringstream v1(text);
  std::vector<Task> loaded = ReadTrace(v1, Grid());
  ASSERT_EQ(loaded.size(), tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(loaded[i].num_recent_blocks, tasks[i].num_recent_blocks);
    EXPECT_TRUE(loaded[i].blocks.empty());
    EXPECT_EQ(loaded[i].demand.epsilons(), tasks[i].demand.epsilons());
  }
}

TEST(TraceIoDeathTest, RejectsV1TraceClaimingExplicitLists) {
  // A v1 magic with a blocks column is a confused producer: v1 never defined explicit-list
  // semantics, and guessing the row layout could misread a privacy demand.
  std::vector<Task> tasks = SampleWorkload(1);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::string text = v2.str();
  text.replace(text.find("dpack_trace_v2"), 14, "dpack_trace_v1");
  std::stringstream tampered(text);
  EXPECT_DEATH(ReadTrace(tampered, Grid()), "v1 trace cannot carry explicit block lists");
}

TEST(TraceIoDeathTest, RejectsV2TraceWithoutBlocksColumn) {
  std::vector<Task> tasks = SampleWorkload(1);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::string text = v2.str();
  size_t blocks_col = text.find(",blocks");
  ASSERT_NE(blocks_col, std::string::npos);
  text.erase(blocks_col, 7);
  std::stringstream tampered(text);
  EXPECT_DEATH(ReadTrace(tampered, Grid()), "v2 trace missing the blocks column");
}

TEST(TraceIoDeathTest, RejectsMalformedBlocksCell) {
  std::vector<Task> tasks = SampleWorkload(1);
  tasks[0].blocks = {0, 1};
  tasks[0].num_recent_blocks = 0;
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::string text = v2.str();
  size_t cell = text.find(",0;1,");
  ASSERT_NE(cell, std::string::npos);
  {
    std::string bad = text;
    bad.replace(cell, 5, ",0;x,");  // Non-numeric id.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    std::string bad = text;
    bad.replace(cell, 5, ",0;;1,");  // Empty token.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    std::string bad = text;
    bad.replace(cell, 5, ",-1;1,");  // Negative id.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    // Duplicate id: loading it would double-commit the demand to block 0 on grant,
    // silently overcharging its privacy budget.
    std::string bad = text;
    bad.replace(cell, 5, ",0;0,");
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    std::string bad = text;
    bad.replace(cell, 5, ",1;0,");  // Out of order.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    // An id too long for int64: must be rejected as malformed, not crash in stoll.
    std::string bad = text;
    bad.replace(cell, 5, ",0;9223372036854775808,");
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    std::string bad = text;
    bad.replace(cell, 5, ",0;1;,");  // Trailing separator: non-canonical encoding.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
  {
    std::string bad = text;
    bad.replace(cell, 5, ",00;1,");  // Leading zero: non-canonical encoding.
    std::stringstream in(bad);
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed blocks cell");
  }
}

// Replaces one CSV cell of the trace text, addressed by the same 1-based (row, column)
// coordinates the reader's malformed-cell diagnostics name.
std::string ReplaceCell(const std::string& text, size_t row, size_t column,
                        const std::string& replacement) {
  std::istringstream lines(text);
  std::string line, out;
  size_t r = 0;
  bool replaced = false;
  while (std::getline(lines, line)) {
    if (++r == row) {
      std::vector<std::string> cells;
      std::string cell;
      std::istringstream split(line);
      while (std::getline(split, cell, ',')) {
        cells.push_back(cell);
      }
      cells.at(column - 1) = replacement;
      line.clear();
      for (size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) {
          line += ',';
        }
        line += cells[i];
      }
      replaced = true;
    }
    out += line;
    out += '\n';
  }
  EXPECT_TRUE(replaced) << "row " << row << " not present in trace text";
  return out;
}

TEST(TraceIoDeathTest, RejectsMalformedNumericCells) {
  // A bare std::stod on any of these would throw an uncaught exception — a crash, not the
  // diagnostic rejection malformed traces are promised. Every double-valued column
  // (weight=2, arrival_time=3, timeout=4, first demand=7) must fail through the checked
  // parse, naming the exact row and column.
  std::vector<Task> tasks = SampleWorkload(2);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  const std::string text = v2.str();
  for (size_t column : {size_t{2}, size_t{3}, size_t{4}, size_t{7}}) {
    for (const char* bad : {"abc", "1.5x", " 1.5", "", "1e999"}) {
      SCOPED_TRACE(std::string("column ") + std::to_string(column) + " cell '" + bad + "'");
      std::stringstream in(ReplaceCell(text, 3, column, bad));
      EXPECT_DEATH(ReadTrace(in, Grid()),
                   "malformed numeric cell at trace row 3 column " + std::to_string(column));
    }
  }
  // The second data row reports its own coordinates.
  std::stringstream in(ReplaceCell(text, 4, 2, "nope"));
  EXPECT_DEATH(ReadTrace(in, Grid()), "malformed numeric cell at trace row 4 column 2");
}

TEST(TraceIoDeathTest, RejectsMalformedIdCell) {
  std::vector<Task> tasks = SampleWorkload(1);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  const std::string text = v2.str();
  // "abc"/"12x"/" 7"/empty are junk; the last is one past int64 max (stoll would throw
  // std::out_of_range, strtoll reports ERANGE).
  for (const char* bad : {"abc", "12x", " 7", "", "9223372036854775808"}) {
    SCOPED_TRACE(std::string("cell '") + bad + "'");
    std::stringstream in(ReplaceCell(text, 3, 1, bad));
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed integer cell at trace row 3 column 1");
  }
}

TEST(TraceIoDeathTest, RejectsMalformedCountCell) {
  std::vector<Task> tasks = SampleWorkload(1);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  const std::string text = v2.str();
  // "-1" matters most: strtoull silently wraps it to 18446744073709551615, which would turn
  // into an absurd most-recent-blocks request instead of a rejection. The last is one past
  // uint64 max (ERANGE).
  for (const char* bad : {"-1", "3.5", "abc", "", "18446744073709551616"}) {
    SCOPED_TRACE(std::string("cell '") + bad + "'");
    std::stringstream in(ReplaceCell(text, 3, 5, bad));
    EXPECT_DEATH(ReadTrace(in, Grid()), "malformed count cell at trace row 3 column 5");
  }
}

TEST(TraceIoDeathTest, RejectsMalformedGridOrderHeaderCell) {
  std::vector<Task> tasks = SampleWorkload(1);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::stringstream in(ReplaceCell(v2.str(), 1, 2, "abc"));
  EXPECT_DEATH(ReadTrace(in, Grid()), "malformed numeric cell at trace row 1 column 2");
}

TEST(TraceIoDeathTest, RejectsPerturbedGridOrderHeaderCell) {
  // A syntactically valid order one ulp off the grid's must be rejected by the bit-pattern
  // comparison — a tolerance here would silently accept a neighboring grid, and every
  // demand in the file would be charged at the wrong Renyi order.
  std::vector<Task> tasks = SampleWorkload(1);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::ostringstream perturbed;
  perturbed.precision(17);
  perturbed << std::nextafter(Grid()->order(0), std::numeric_limits<double>::infinity());
  std::stringstream in(ReplaceCell(v2.str(), 1, 2, perturbed.str()));
  EXPECT_DEATH(ReadTrace(in, Grid()), "trace grid order mismatch");
}

TEST(TraceIoDeathTest, RejectsReorderedColumnHeader) {
  // The row parse is positional; a header whose fixed columns moved must be rejected, not
  // silently read with a demand or block list pulled from the wrong cell.
  std::vector<Task> tasks = SampleWorkload(1);
  std::stringstream v2;
  ASSERT_TRUE(WriteTrace(v2, tasks, Grid()));
  std::string text = v2.str();
  size_t prefix = text.find("num_recent_blocks,blocks");
  ASSERT_NE(prefix, std::string::npos);
  text.replace(prefix, 24, "blocks,num_recent_blocks");
  std::stringstream tampered(text);
  EXPECT_DEATH(ReadTrace(tampered, Grid()), "trace column header mismatch");
}

}  // namespace
}  // namespace dpack
