#include "src/workload/curve_pool.h"

#include <set>

#include <gtest/gtest.h>

namespace dpack {
namespace {

class CurvePoolTest : public testing::Test {
 protected:
  CurvePoolTest()
      : grid_(AlphaGrid::Default()),
        pool_(grid_, BlockCapacityCurve(grid_, 10.0, 1e-7)) {}

  AlphaGridPtr grid_;
  CurvePool pool_;
};

TEST_F(CurvePoolTest, Has620Curves) { EXPECT_EQ(pool_.size(), 620u); }

TEST_F(CurvePoolTest, BucketsContainNonOutlierCurves) {
  // Buckets exclude outliers (raw normalized eps_min < 0.05, the paper's rule) but must
  // still cover a substantial part of the pool.
  size_t total = 0;
  for (size_t b = 0; b < pool_.bucket_count(); ++b) {
    total += pool_.bucket(b).size();
    for (size_t idx : pool_.bucket(b)) {
      EXPECT_GE(pool_.NormalizedEpsMin(pool_.curve(idx)), 0.05);
    }
  }
  EXPECT_LE(total, pool_.size());
  EXPECT_GE(total, pool_.size() / 4);
}

TEST_F(CurvePoolTest, CoversTheUsableAlphaRange) {
  // §6.2 requires at least one curve with best alpha at each usable order
  // {3, 4, 5, 6, 8, 16, 32, 64} for the (10, 1e-7) budget.
  std::set<double> bucket_alphas;
  for (size_t b = 0; b < pool_.bucket_count(); ++b) {
    bucket_alphas.insert(pool_.bucket_alpha(b));
  }
  for (double alpha : {3.0, 4.0, 5.0, 6.0, 8.0, 16.0, 32.0, 64.0}) {
    EXPECT_TRUE(bucket_alphas.count(alpha)) << "no curve has best alpha " << alpha;
  }
}

TEST_F(CurvePoolTest, BestAlphaIsArgminOfNormalizedDemand) {
  const RdpCurve& capacity = pool_.capacity();
  for (size_t i = 0; i < pool_.size(); i += 13) {
    size_t best = pool_.BestAlphaIndex(i);
    double best_share = pool_.curve(i).epsilon(best) / capacity.epsilon(best);
    for (size_t a = 0; a < grid_->size(); ++a) {
      if (capacity.epsilon(a) <= 0.0) {
        continue;
      }
      EXPECT_LE(best_share, pool_.curve(i).epsilon(a) / capacity.epsilon(a) + 1e-12);
    }
  }
}

TEST_F(CurvePoolTest, ScalingHitsTargetEpsMinAndPreservesBestAlpha) {
  for (size_t i = 0; i < pool_.size(); i += 37) {
    for (double target : {0.005, 0.1, 0.9}) {
      RdpCurve scaled = pool_.ScaledToEpsMin(i, target);
      EXPECT_NEAR(pool_.NormalizedEpsMin(scaled), target, 1e-9);
      // Multiplicative scaling preserves the argmin.
      double best_share = scaled.epsilon(pool_.BestAlphaIndex(i)) /
                          pool_.capacity().epsilon(pool_.BestAlphaIndex(i));
      EXPECT_NEAR(best_share, target, 1e-9);
    }
  }
}

TEST_F(CurvePoolTest, ShiftingHitsTargetPreservesBestAlphaAndGaps) {
  const RdpCurve& capacity = pool_.capacity();
  for (size_t b = 0; b < pool_.bucket_count(); ++b) {
    size_t i = pool_.bucket(b)[0];
    for (double target : {0.005, 0.1}) {
      RdpCurve shifted = pool_.ShiftedToEpsMin(i, target);
      EXPECT_NEAR(pool_.NormalizedEpsMin(shifted), target, 1e-9);
      size_t best = pool_.BestAlphaIndex(i);
      // The best alpha stays the argmin of the shifted curve.
      EXPECT_NEAR(shifted.epsilon(best) / capacity.epsilon(best), target, 1e-9);
      // Absolute share gaps to other orders are preserved where no clamping occurred.
      double raw_min = pool_.NormalizedEpsMin(pool_.curve(i));
      for (size_t a = 0; a < capacity.size(); ++a) {
        if (capacity.epsilon(a) <= 0.0) {
          continue;
        }
        double raw_gap = pool_.curve(i).epsilon(a) / capacity.epsilon(a) - raw_min;
        double new_gap = shifted.epsilon(a) / capacity.epsilon(a) - target;
        if (shifted.epsilon(a) > 0.0) {
          EXPECT_NEAR(new_gap, raw_gap, 1e-9);
        }
      }
    }
  }
}

TEST_F(CurvePoolTest, BucketNearestAlpha) {
  size_t b5 = pool_.BucketNearestAlpha(5.0);
  EXPECT_DOUBLE_EQ(pool_.bucket_alpha(b5), 5.0);
  // 64 is the largest usable order.
  size_t btop = pool_.BucketNearestAlpha(1000.0);
  EXPECT_DOUBLE_EQ(pool_.bucket_alpha(btop), 64.0);
}

TEST_F(CurvePoolTest, BucketMembersShareBestAlpha) {
  for (size_t b = 0; b < pool_.bucket_count(); ++b) {
    for (size_t idx : pool_.bucket(b)) {
      EXPECT_EQ(pool_.BestAlphaIndex(idx), pool_.bucket_order_index(b));
    }
  }
}

TEST_F(CurvePoolTest, AllFiveFamiliesPlusCalibratedPresent) {
  std::set<MechanismType> types;
  for (size_t i = 0; i < pool_.size(); ++i) {
    types.insert(pool_.spec(i).type);
  }
  EXPECT_EQ(types.size(), 6u);  // 5 analytic families + calibrated coverage curves.
  EXPECT_TRUE(types.count(MechanismType::kCalibratedVShape));
}

}  // namespace
}  // namespace dpack
