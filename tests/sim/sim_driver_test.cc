#include "src/sim/sim_driver.h"

#include <gtest/gtest.h>

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

Task FractionTask(TaskId id, double fraction, size_t recent, double arrival) {
  RdpCurve capacity = BlockCapacityCurve(Grid(), 10.0, 1e-7);
  Task t(id, 1.0, capacity.Scaled(fraction));
  t.num_recent_blocks = recent;
  t.arrival_time = arrival;
  return t;
}

SimConfig SmallConfig() {
  SimConfig config;
  config.num_blocks = 5;
  config.unlock_steps = 4;
  config.period = 1.0;
  return config;
}

TEST(SimDriverTest, OnlineAllocatesEverythingWhenBudgetAmple) {
  std::vector<Task> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back(FractionTask(i, 0.01, 2, static_cast<double>(i % 5)));
  }
  SimResult result = RunOnlineSimulation(CreateScheduler(SchedulerKind::kDpack), tasks,
                                         SmallConfig());
  EXPECT_EQ(result.metrics.submitted(), 10u);
  EXPECT_EQ(result.metrics.allocated(), 10u);
  EXPECT_EQ(result.blocks_created, 5u);
  EXPECT_EQ(result.pending_at_end, 0u);
}

TEST(SimDriverTest, ContendedBudgetLimitsAllocations) {
  // 20 tasks each wanting 30% of one block's budget: at most 3 fit per block.
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back(FractionTask(i, 0.30, 1, 0.1));
  }
  SimConfig config = SmallConfig();
  config.num_blocks = 1;
  SimResult result = RunOnlineSimulation(CreateScheduler(SchedulerKind::kDpack), tasks, config);
  EXPECT_EQ(result.metrics.allocated(), 3u);
  EXPECT_EQ(result.pending_at_end, 17u);
}

TEST(SimDriverTest, DelaysReflectUnlocking) {
  // A single task wanting 100% of a block must wait for the final unlock step.
  std::vector<Task> tasks = {FractionTask(0, 1.0, 1, 0.0)};
  SimConfig config = SmallConfig();
  config.num_blocks = 1;
  config.unlock_steps = 4;
  SimResult result = RunOnlineSimulation(CreateScheduler(SchedulerKind::kDpack), tasks, config);
  ASSERT_EQ(result.metrics.allocated(), 1u);
  EXPECT_DOUBLE_EQ(result.metrics.delays().Quantile(0.5), 3.0);  // Unlocked at cycle t = 3.
}

TEST(SimDriverTest, DeterministicAcrossRuns) {
  std::vector<Task> tasks;
  for (int i = 0; i < 30; ++i) {
    tasks.push_back(FractionTask(i, 0.2, 2, static_cast<double>(i) / 7.0));
  }
  SimResult a = RunOnlineSimulation(CreateScheduler(SchedulerKind::kDpf), tasks, SmallConfig());
  SimResult b = RunOnlineSimulation(CreateScheduler(SchedulerKind::kDpf), tasks, SmallConfig());
  EXPECT_EQ(a.metrics.allocated(), b.metrics.allocated());
  EXPECT_EQ(a.cycles_run, b.cycles_run);
}

TEST(SimDriverTest, OfflineScheduleGrantsImmediately) {
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(FractionTask(i, 0.2, 3, 0.0));
  }
  auto scheduler = CreateScheduler(SchedulerKind::kDpack);
  SimResult result = RunOfflineSchedule(*scheduler, tasks, SmallConfig());
  EXPECT_EQ(result.metrics.allocated(), 4u);
  EXPECT_EQ(result.cycles_run, 1u);
}

TEST(SimDriverTest, TimeoutsEvict) {
  std::vector<Task> tasks;
  Task hopeless = FractionTask(0, 0.9, 1, 0.0);
  hopeless.timeout = 1.0;
  tasks.push_back(hopeless);
  SimConfig config = SmallConfig();
  config.num_blocks = 1;
  config.unlock_steps = 100;  // Unlocks far too slowly for a 90% task within the horizon.
  SimResult result = RunOnlineSimulation(CreateScheduler(SchedulerKind::kFcfs), tasks, config);
  EXPECT_EQ(result.metrics.allocated(), 0u);
  EXPECT_EQ(result.metrics.evicted(), 1u);
}

}  // namespace
}  // namespace dpack
