#include "src/sim/simulation.h"

#include <vector>

#include <gtest/gtest.h>

namespace dpack {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> fired;
  sim.At(3.0, EventPriority::kTaskArrival, [&] { fired.push_back(3); });
  sim.At(1.0, EventPriority::kTaskArrival, [&] { fired.push_back(1); });
  sim.At(2.0, EventPriority::kTaskArrival, [&] { fired.push_back(2); });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulationTest, PriorityBreaksTimestampTies) {
  Simulation sim;
  std::vector<int> fired;
  sim.At(1.0, EventPriority::kScheduling, [&] { fired.push_back(2); });
  sim.At(1.0, EventPriority::kBlockArrival, [&] { fired.push_back(0); });
  sim.At(1.0, EventPriority::kTaskArrival, [&] { fired.push_back(1); });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
}

TEST(SimulationTest, InsertionOrderBreaksFullTies) {
  Simulation sim;
  std::vector<int> fired;
  sim.At(1.0, EventPriority::kTaskArrival, [&] { fired.push_back(1); });
  sim.At(1.0, EventPriority::kTaskArrival, [&] { fired.push_back(2); });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(SimulationTest, CallbacksMayScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) {
      sim.After(1.0, EventPriority::kScheduling, tick);
    }
  };
  sim.At(0.0, EventPriority::kScheduling, tick);
  sim.Run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(SimulationTest, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.At(1.0, EventPriority::kScheduling, [&] { ++fired; });
  sim.At(10.0, EventPriority::kScheduling, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulationDeathTest, SchedulingInThePastAborts) {
  Simulation sim;
  sim.At(2.0, EventPriority::kScheduling, [] {});
  sim.Run();
  EXPECT_DEATH(sim.At(1.0, EventPriority::kScheduling, [] {}), "past");
}

}  // namespace
}  // namespace dpack
