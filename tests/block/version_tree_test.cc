// Unit pins for the two-level version clock (ISSUE 6): group sums must equal the sum of
// member versions under every mutation path — commits, unlocks, restore seeding, clones,
// and slab compaction — because every O(changed) consumer (ScheduleContext,
// ShardedBlockManager::Sync) trusts the sums to locate dirty blocks without a full scan.

#include "src/block/version_tree.h"

#include <gtest/gtest.h>

#include "src/block/block_manager.h"

namespace dpack {
namespace {

AlphaGridPtr Grid() { return AlphaGrid::Default(); }

// The invariant every consumer relies on: group_sum(g) == sum of member versions, and
// total() == sum of group sums.
void ExpectTreeMatchesBlocks(const BlockManager& manager) {
  const BlockVersionTree& tree = manager.version_tree();
  std::vector<uint64_t> expected(tree.group_count(), 0);
  uint64_t total = 0;
  for (size_t j = 0; j < manager.block_count(); ++j) {
    uint64_t version = manager.block(static_cast<BlockId>(j)).version();
    size_t group = BlockVersionTree::GroupOf(static_cast<int64_t>(j));
    ASSERT_LT(group, expected.size());
    expected[group] += version;
    total += version;
  }
  EXPECT_EQ(tree.total(), total);
  for (size_t g = 0; g < tree.group_count(); ++g) {
    EXPECT_EQ(tree.group_sum(g), expected[g]) << "group " << g;
  }
}

TEST(BlockVersionTreeTest, GroupOfPartitionsIdsInRunsOf64) {
  EXPECT_EQ(BlockVersionTree::GroupOf(0), 0u);
  EXPECT_EQ(BlockVersionTree::GroupOf(63), 0u);
  EXPECT_EQ(BlockVersionTree::GroupOf(64), 1u);
  EXPECT_EQ(BlockVersionTree::GroupOf(1000000), 1000000u >> BlockVersionTree::kGroupShift);
}

TEST(BlockVersionTreeTest, BumpsAccumulateIntoTheOwningGroup) {
  BlockVersionTree tree;
  tree.Track(0);
  tree.Track(70);
  tree.OnBump(0);
  tree.OnBump(0);
  tree.OnBump(70);
  EXPECT_EQ(tree.total(), 3u);
  EXPECT_EQ(tree.group_sum(0), 2u);
  EXPECT_EQ(tree.group_sum(1), 1u);
}

TEST(BlockVersionTreeTest, SeedVersionFoldsRestoredVersions) {
  BlockVersionTree tree;
  tree.SeedVersion(5, 17);
  tree.SeedVersion(66, 4);
  EXPECT_EQ(tree.total(), 21u);
  EXPECT_EQ(tree.group_sum(0), 17u);
  EXPECT_EQ(tree.group_sum(1), 4u);
}

TEST(BlockVersionTreeTest, ManagerMaintainsSumsAcrossCommitsAndUnlocks) {
  BlockManager manager(Grid(), 10.0, 1e-7);
  for (int i = 0; i < 130; ++i) {  // Spans three groups.
    manager.AddBlock(static_cast<double>(i) * 0.1);
  }
  ExpectTreeMatchesBlocks(manager);

  manager.UpdateUnlocks(/*now=*/5.0, /*period=*/1.0, /*unlock_steps=*/4);
  ExpectTreeMatchesBlocks(manager);

  // Charge a small uniform demand to a few blocks across different groups.
  std::vector<double> eps(Grid()->orders().size(), 0.01);
  RdpCurve small(Grid(), eps);
  for (BlockId id : {BlockId{0}, BlockId{63}, BlockId{64}, BlockId{129}}) {
    if (manager.block(id).CanAccept(small)) {
      manager.block(id).Commit(small);
    }
  }
  ExpectTreeMatchesBlocks(manager);
}

TEST(BlockVersionTreeTest, CloneAndRestoreReproduceTheSums) {
  BlockManager manager(Grid(), 10.0, 1e-7);
  for (int i = 0; i < 70; ++i) {
    manager.AddBlock(0.0, /*unlocked=*/true);
  }
  std::vector<double> eps(Grid()->orders().size(), 0.05);
  RdpCurve small(Grid(), eps);
  manager.block(3).Commit(small);
  manager.block(68).Commit(small);

  BlockManager clone = manager.Clone();
  ExpectTreeMatchesBlocks(clone);
  EXPECT_EQ(clone.version_tree().total(), manager.version_tree().total());

  // A clone's bumps flow into the clone's tree, not the original's.
  clone.block(3).Commit(small);
  ExpectTreeMatchesBlocks(clone);
  ExpectTreeMatchesBlocks(manager);
  EXPECT_EQ(clone.version_tree().total(), manager.version_tree().total() + 1);
}

TEST(BlockVersionTreeTest, SumsSurviveSlabCompaction) {
  BlockManager manager(Grid(), 10.0, 1e-7);
  for (int i = 0; i < 10; ++i) {
    manager.AddBlock(0.0, /*unlocked=*/true);
  }
  // Exhaust a few blocks exactly: capacity-proportional demand, two halves.
  std::vector<double> half = manager.block(0).capacity().epsilons();
  for (double& e : half) {
    e *= 0.5;
  }
  RdpCurve half_curve(Grid(), half);
  for (BlockId id : {BlockId{2}, BlockId{7}}) {
    manager.block(id).Commit(half_curve);
    manager.block(id).Commit(half_curve);
    EXPECT_TRUE(manager.block(id).Exhausted());
  }
  EXPECT_EQ(manager.RetireNewlyExhausted(), 2u);
  EXPECT_EQ(manager.retired_count(), 2u);
  ExpectTreeMatchesBlocks(manager);
}

}  // namespace
}  // namespace dpack
